package cache

import "fmt"

// MemOp is a request the hierarchy sends to the memory system on misses and
// writebacks.
type MemOp struct {
	Addr    uint64
	IsWrite bool
	// Sectors is the sector bitmap of the line the op concerns (writes of
	// partially dirty strided lines keep their shape so the controller can
	// use sstore).
	Sectors  uint64
	Sectored bool
}

// AccessResult summarizes one hierarchy access.
type AccessResult struct {
	// HitLevel is 1..len(levels) for a cache hit, 0 for a miss to memory.
	HitLevel int
	// Latency is the CPU-cycle cost of the levels traversed (memory time
	// is added by the simulator from the controller's completion).
	Latency int
	// MemOps lists line fills and writebacks that must go to memory.
	MemOps []MemOp
}

// Hierarchy is one core's view of the cache system: private upper levels
// plus a shared last level. Fills propagate to every level (allocate-all);
// dirty evictions write back to the next level down and, from the last
// level, to memory.
type Hierarchy struct {
	levels []*Cache // levels[0] = L1, last = LLC (possibly shared)
	// flushSeen is the dedup scratch for FlushDirty, owned by the
	// hierarchy and cleared per call instead of reallocated — the access
	// path is single-threaded per engine.
	flushSeen map[uint64]bool
}

// NewHierarchy builds a hierarchy from outermost private to shared last
// level. All levels must agree on line size.
func NewHierarchy(levels ...*Cache) *Hierarchy {
	if len(levels) == 0 {
		panic("cache: empty hierarchy")
	}
	lb := levels[0].Config().LineBytes
	for _, l := range levels[1:] {
		if l.Config().LineBytes != lb {
			panic(fmt.Sprintf("cache: mixed line sizes %d vs %d", l.Config().LineBytes, lb))
		}
	}
	return &Hierarchy{levels: levels}
}

// Levels returns the number of levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Level returns level i (0-based).
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// LLC returns the last level.
func (h *Hierarchy) LLC() *Cache { return h.levels[len(h.levels)-1] }

// Access performs a demand access of size bytes at addr. Regular accesses
// fill whole lines; pass sectored=true for strided data, which fills only
// the touched sectors (the sector-cache behaviour of Section 5.1).
func (h *Hierarchy) Access(addr uint64, size int, write, sectored bool) AccessResult {
	var res AccessResult
	hitAt := 0
	for i, lvl := range h.levels {
		res.Latency += lvl.hitLat
		switch lvl.Access(addr, size, write) {
		case Hit:
			hitAt = i + 1
		case SectorMiss, LineMiss:
			continue
		}
		break
	}
	res.HitLevel = hitAt

	if hitAt == 0 {
		// Miss everywhere: fetch from memory and allocate in every level.
		llc := h.LLC()
		var sectors uint64
		if sectored {
			sectors = llc.sectorMask(addr, size)
		} else {
			sectors = llc.FullSectorMask()
		}
		res.MemOps = append(res.MemOps, MemOp{Addr: llc.lineAddr(addr), Sectors: sectors, Sectored: sectored})
		h.fillAll(addr, sectored, write, size, &res)
		return res
	}
	// Hit at a lower level: allocate upward into the missed upper levels.
	for i := hitAt - 2; i >= 0; i-- {
		h.fillLevel(i, addr, sectored, write, size, &res)
	}
	return res
}

// fillAll allocates the accessed data into every level, collecting
// writebacks.
func (h *Hierarchy) fillAll(addr uint64, sectored, write bool, size int, res *AccessResult) {
	for i := len(h.levels) - 1; i >= 0; i-- {
		h.fillLevel(i, addr, sectored, write, size, res)
	}
}

func (h *Hierarchy) fillLevel(i int, addr uint64, sectored, write bool, size int, res *AccessResult) {
	lvl := h.levels[i]
	var sectors uint64
	if sectored {
		sectors = lvl.sectorMask(addr, size)
	} else {
		sectors = lvl.FullSectorMask()
	}
	h.fillLevelSectors(i, addr, sectors, write, sectored, res)
}

// FillLine installs the given sectors of a line into every level without a
// demand access — the sibling fills of a strided fetch, which brings the
// same-offset sector of Reach lines in one burst. It returns any memory
// writebacks the allocations displaced.
func (h *Hierarchy) FillLine(addr uint64, sectors uint64, sectored bool) []MemOp {
	var res AccessResult
	for i := len(h.levels) - 1; i >= 0; i-- {
		h.fillLevelSectors(i, addr, sectors, false, sectored, &res)
	}
	return res.MemOps
}

func (h *Hierarchy) fillLevelSectors(i int, addr uint64, sectors uint64, write, sectored bool, res *AccessResult) {
	lvl := h.levels[i]
	ev, dirty := lvl.Fill(addr, sectors, write, sectored)
	if !dirty {
		return
	}
	lvl.Stats.WritebacksToBelow++
	if i == len(h.levels)-1 {
		res.MemOps = append(res.MemOps, MemOp{Addr: ev.LineAddr, IsWrite: true, Sectors: ev.Dirty, Sectored: ev.Sectored})
		return
	}
	// Push the dirty line into the next level down.
	below := h.levels[i+1]
	ev2, dirty2 := below.Fill(ev.LineAddr, ev.Dirty, true, ev.Sectored)
	if dirty2 {
		below.Stats.WritebacksToBelow++
		if i+1 == len(h.levels)-1 {
			res.MemOps = append(res.MemOps, MemOp{Addr: ev2.LineAddr, IsWrite: true, Sectors: ev2.Dirty, Sectored: ev2.Sectored})
		} else {
			// Deeper cascades are rare with growing level sizes; recurse.
			h.pushDown(i+2, ev2, res)
		}
	}
}

func (h *Hierarchy) pushDown(i int, ev Eviction, res *AccessResult) {
	if i >= len(h.levels) {
		res.MemOps = append(res.MemOps, MemOp{Addr: ev.LineAddr, IsWrite: true, Sectors: ev.Dirty, Sectored: ev.Sectored})
		return
	}
	ev2, dirty := h.levels[i].Fill(ev.LineAddr, ev.Dirty, true, ev.Sectored)
	if dirty {
		h.levels[i].Stats.WritebacksToBelow++
		h.pushDown(i+1, ev2, res)
	}
}

// FlushDirty writes every dirty line in every level back to memory,
// returning the writeback ops (used at end of a workload phase so write
// traffic is fully accounted).
func (h *Hierarchy) FlushDirty() []MemOp {
	var ops []MemOp
	for li := len(h.levels) - 1; li >= 0; li-- {
		lvl := h.levels[li]
		// Walk the directory in set-index order (not backing/touch order)
		// so the writeback op sequence — which feeds the memory system —
		// is independent of the sets' first-touch history.
		for s := range lvl.setOff {
			set := lvl.peek(s)
			for w := range set {
				ln := &set[w]
				if ln.valid != 0 && ln.dirty != 0 {
					addr := (ln.tag<<lvl.setBits() | uint64(s)) << lvl.lineBits
					ops = append(ops, MemOp{Addr: addr, IsWrite: true, Sectors: ln.dirty, Sectored: ln.sectored})
					ln.dirty = 0
				}
			}
		}
	}
	// Deduplicate lines dirty in several levels (upper level is newest, but
	// tag-only modeling makes them equivalent; keep the first occurrence).
	if h.flushSeen == nil {
		h.flushSeen = make(map[uint64]bool, len(ops))
	} else {
		clear(h.flushSeen)
	}
	seen := h.flushSeen
	out := ops[:0]
	for _, op := range ops {
		if !seen[op.Addr] {
			seen[op.Addr] = true
			out = append(out, op)
		}
	}
	return out
}

// InvalidateAll clears every level.
func (h *Hierarchy) InvalidateAll() {
	for _, l := range h.levels {
		l.InvalidateAll()
	}
}

// lineAddr exposes line alignment for MemOps.
func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr &^ (1<<c.lineBits - 1)
}
