package cache

import "fmt"

// MDA implements the multi-dimensional-access cache the paper weighs
// against the sector cache (Section 5.1.1, citing MDACache): strided data
// is cached as dedicated *column lines* — one line holding the same-offset
// sectors of a gather group — in a separate structure from the regular
// row-wise lines. The same bytes can therefore live in both views, and
// keeping them coherent is MDA's known weakness: every write to one view
// must invalidate the overlapping lines of the other.
//
// The paper picks the sector cache because IMDB scans reuse data too
// little for MDA's duplication to pay; this model exists so the trade-off
// is measurable rather than asserted.
type MDA struct {
	rows *Cache // regular row-wise lines
	cols *Cache // column lines, tagged by (group base, sector index)

	lineBytes   int
	sectorBytes int
	reach       int

	Stats MDAStats
}

// MDAStats counts MDA-specific events.
type MDAStats struct {
	RowHits, RowMisses uint64
	ColHits, ColMisses uint64
	// CoherenceInvalidations counts cross-view invalidations on writes —
	// the overhead that motivates the paper's sector-cache choice.
	CoherenceInvalidations uint64
	DuplicatedFills        uint64
}

// NewMDA builds an MDA cache. Half the capacity backs each view.
func NewMDA(sizeBytes, lineBytes, ways, sectorBytes, reach, hitLatency int) *MDA {
	if sectorBytes <= 0 || reach <= 0 || sectorBytes*reach > lineBytes*reach {
		panic(fmt.Sprintf("cache: bad MDA geometry sector=%d reach=%d", sectorBytes, reach))
	}
	mk := func(name string) *Cache {
		return New(Config{
			Name: name, SizeBytes: sizeBytes / 2, LineBytes: lineBytes,
			Ways: ways, Sectors: 1, HitLatency: hitLatency,
		})
	}
	return &MDA{
		rows:        mk("mda-rows"),
		cols:        mk("mda-cols"),
		lineBytes:   lineBytes,
		sectorBytes: sectorBytes,
		reach:       reach,
	}
}

// colLineAddr derives the synthetic address of the column line holding
// addr's sector view: the gather group's base line, offset by the sector
// index so distinct sectors get distinct column lines.
func (m *MDA) colLineAddr(addr uint64) uint64 {
	group := addr / (uint64(m.lineBytes) * uint64(m.reach))
	sector := (addr % uint64(m.lineBytes)) / uint64(m.sectorBytes)
	// Column lines live in their own tag space; fold group and sector into
	// a line-aligned address with a high marker bit to avoid aliasing the
	// row view's tags (both caches are separate anyway; the marker keeps
	// diagnostics unambiguous).
	return (1<<62 | group*uint64(m.lineBytes)*16 + sector*uint64(m.lineBytes))
}

// AccessStrided probes the column view for a strided access; on a miss the
// caller fetches the group and calls FillStrided.
func (m *MDA) AccessStrided(addr uint64, write bool) bool {
	ca := m.colLineAddr(addr)
	hit := m.cols.Access(ca, 8, write) == Hit
	if hit {
		m.Stats.ColHits++
		if write {
			m.coherenceInvalidateRow(addr)
		}
	} else {
		m.Stats.ColMisses++
	}
	return hit
}

// FillStrided installs the column line for addr's group/sector.
func (m *MDA) FillStrided(addr uint64, write bool) {
	m.cols.Fill(m.colLineAddr(addr), 1, write, true)
	m.Stats.DuplicatedFills++
	if write {
		m.coherenceInvalidateRow(addr)
	}
}

// AccessRow probes the row view; on a miss the caller fills with FillRow.
func (m *MDA) AccessRow(addr uint64, size int, write bool) bool {
	hit := m.rows.Access(addr, size, write) == Hit
	if hit {
		m.Stats.RowHits++
		if write {
			m.coherenceInvalidateCols(addr)
		}
	} else {
		m.Stats.RowMisses++
	}
	return hit
}

// FillRow installs the row line containing addr.
func (m *MDA) FillRow(addr uint64, write bool) {
	m.rows.Fill(addr, 1, write, false)
	if write {
		m.coherenceInvalidateCols(addr)
	}
}

// coherenceInvalidateCols drops every column line overlapping a row line
// write (one per sector of the written line).
func (m *MDA) coherenceInvalidateCols(addr uint64) {
	base := addr &^ uint64(m.lineBytes-1)
	for s := 0; s < m.lineBytes/m.sectorBytes; s++ {
		ca := m.colLineAddr(base + uint64(s*m.sectorBytes))
		if m.cols.Contains(ca, 8) {
			m.cols.invalidateLine(ca)
			m.Stats.CoherenceInvalidations++
		}
	}
}

// coherenceInvalidateRow drops every row line overlapping a column-line
// write (one per member of the gather group).
func (m *MDA) coherenceInvalidateRow(addr uint64) {
	groupBase := addr / (uint64(m.lineBytes) * uint64(m.reach)) * uint64(m.lineBytes) * uint64(m.reach)
	for i := 0; i < m.reach; i++ {
		ra := groupBase + uint64(i*m.lineBytes)
		if m.rows.Contains(ra, 8) {
			m.rows.invalidateLine(ra)
			m.Stats.CoherenceInvalidations++
		}
	}
}

// invalidateLine drops one line (no writeback — MDA coherence is modeled
// as invalidate-on-write; a production design would forward dirty data).
func (c *Cache) invalidateLine(addr uint64) {
	setIdx, tag := c.locate(addr)
	set := c.peek(setIdx)
	for i := range set {
		ln := &set[i]
		if ln.valid != 0 && ln.tag == tag {
			*ln = line{}
			return
		}
	}
}
