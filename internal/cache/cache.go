// Package cache implements the sector-cache hierarchy of Section 5.1: set
// associative write-back caches whose lines are divided into 16B sectors
// with independent valid and dirty bits, so SAM's strided data (one chipkill
// codeword's worth per line) can live in the hierarchy without dragging
// whole cachelines around.
//
// The caches are timing/traffic models: they track tags and sector state,
// not payload bytes (the functional data path lives in dram.SparseMem and is
// validated separately).
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	Sectors    int // sectors per line; 1 disables sectoring
	HitLatency int // CPU cycles for a hit at this level
}

// Validate checks the level geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 || c.Sectors <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways", c.SizeBytes)
	case c.LineBytes%c.Sectors != 0:
		return fmt.Errorf("cache: %d sectors do not divide %dB line", c.Sectors, c.LineBytes)
	case c.Sectors > 64:
		return fmt.Errorf("cache: sector bitmap limited to 64, got %d", c.Sectors)
	}
	return nil
}

// Stats counts per-level activity.
type Stats struct {
	Hits, Misses       uint64
	SectorHits         uint64 // hit on line, fill avoided by sector validity
	SectorMisses       uint64 // line present but sector invalid
	Evictions          uint64
	DirtyEvictions     uint64
	FillsFromBelow     uint64
	WritebacksToBelow  uint64
	StridedLineInserts uint64
}

type line struct {
	tag      uint64
	valid    uint64 // sector valid bitmap
	dirty    uint64 // sector dirty bitmap
	sectored bool   // filled by a strided access (affects writeback shape)
	lru      uint64
}

// Cache is one level.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	secBytes int
	clock    uint64
	Stats    Stats
}

// New builds a level; it panics on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: %s set count %d not a power of two", cfg.Name, nSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, nSets),
		setMask:  uint64(nSets - 1),
		lineBits: lineBits,
		secBytes: cfg.LineBytes / cfg.Sectors,
	}
	// One flat backing array sliced per set: building an LLC is 2 allocations
	// instead of 1+nSets (16k sets dominated the per-run allocation profile).
	backing := make([]line, nSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c
}

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// SectorBytes returns the sector granularity.
func (c *Cache) SectorBytes() int { return c.secBytes }

func (c *Cache) setBits() uint {
	var n uint
	for 1<<n <= int(c.setMask) {
		n++
	}
	return n
}

func (c *Cache) locate(addr uint64) (setIdx int, tag uint64) {
	lineAddr := addr >> c.lineBits
	return int(lineAddr & c.setMask), lineAddr >> c.setBits()
}

func (c *Cache) sectorOf(addr uint64) int {
	return int(addr&(1<<c.lineBits-1)) / c.secBytes
}

// sectorMask returns the bitmap of sectors an access [addr, addr+size)
// touches within its line.
func (c *Cache) sectorMask(addr uint64, size int) uint64 {
	first := c.sectorOf(addr)
	last := c.sectorOf(addr + uint64(size) - 1)
	var m uint64
	for s := first; s <= last; s++ {
		m |= 1 << s
	}
	return m
}

// Outcome classifies one access at this level.
type Outcome int

// Access outcomes.
const (
	Hit Outcome = iota
	SectorMiss
	LineMiss
)

// Eviction describes a line pushed out to make room.
type Eviction struct {
	LineAddr uint64
	Dirty    uint64 // dirty sector bitmap (0 = clean eviction)
	Sectored bool
}

// Access probes the level for [addr, addr+size). On a line miss the caller
// must Fill before the data is usable; on a sector miss the line exists but
// the touched sectors are invalid. Write hits mark sectors dirty.
func (c *Cache) Access(addr uint64, size int, write bool) Outcome {
	if size <= 0 || uint64(size) > uint64(c.cfg.LineBytes)-(addr&(1<<c.lineBits-1)) {
		panic(fmt.Sprintf("cache: access [%x,+%d) crosses a line boundary", addr, size))
	}
	setIdx, tag := c.locate(addr)
	mask := c.sectorMask(addr, size)
	c.clock++
	for i := range c.sets[setIdx] {
		ln := &c.sets[setIdx][i]
		if ln.valid != 0 && ln.tag == tag {
			if ln.valid&mask == mask {
				ln.lru = c.clock
				if write {
					ln.dirty |= mask
				}
				c.Stats.Hits++
				return Hit
			}
			c.Stats.SectorMisses++
			c.Stats.Misses++
			return SectorMiss
		}
	}
	c.Stats.Misses++
	return LineMiss
}

// Fill installs (or widens) the line containing addr with the given sector
// bitmap, returning an eviction if a victim was displaced. markDirty sets
// the filled sectors dirty (write-allocate); sectored tags the line as
// strided-filled.
func (c *Cache) Fill(addr uint64, sectors uint64, markDirty, sectored bool) (ev Eviction, evicted bool) {
	setIdx, tag := c.locate(addr)
	c.clock++
	set := c.sets[setIdx]
	// Widen an existing line.
	for i := range set {
		ln := &set[i]
		if ln.valid != 0 && ln.tag == tag {
			ln.valid |= sectors
			if markDirty {
				ln.dirty |= sectors
			}
			ln.sectored = ln.sectored || sectored
			ln.lru = c.clock
			return Eviction{}, false
		}
	}
	// Find a victim: invalid way first, else LRU.
	victim := 0
	for i := range set {
		if set[i].valid == 0 {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ln := &set[victim]
	if ln.valid != 0 {
		c.Stats.Evictions++
		if ln.dirty != 0 {
			c.Stats.DirtyEvictions++
		}
		ev = Eviction{
			LineAddr: ((ln.tag<<c.setBits() | uint64(setIdx)) << c.lineBits),
			Dirty:    ln.dirty,
			Sectored: ln.sectored,
		}
		evicted = ln.dirty != 0
	}
	*ln = line{tag: tag, valid: sectors, lru: c.clock, sectored: sectored}
	if markDirty {
		ln.dirty = sectors
	}
	c.Stats.FillsFromBelow++
	if sectored {
		c.Stats.StridedLineInserts++
	}
	return ev, evicted
}

// Contains reports whether the full sector mask for [addr,addr+size) is
// resident and valid.
func (c *Cache) Contains(addr uint64, size int) bool {
	setIdx, tag := c.locate(addr)
	mask := c.sectorMask(addr, size)
	for i := range c.sets[setIdx] {
		ln := &c.sets[setIdx][i]
		if ln.valid != 0 && ln.tag == tag {
			return ln.valid&mask == mask
		}
	}
	return false
}

// InvalidateAll clears the cache (used between experiment phases).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
}

// FullSectorMask returns the bitmap covering every sector of a line.
func (c *Cache) FullSectorMask() uint64 {
	return 1<<uint(c.cfg.Sectors) - 1
}
