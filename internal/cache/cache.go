// Package cache implements the sector-cache hierarchy of Section 5.1: set
// associative write-back caches whose lines are divided into 16B sectors
// with independent valid and dirty bits, so SAM's strided data (one chipkill
// codeword's worth per line) can live in the hierarchy without dragging
// whole cachelines around.
//
// The caches are timing/traffic models: they track tags and sector state,
// not payload bytes (the functional data path lives in dram.SparseMem and is
// validated separately).
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	Sectors    int // sectors per line; 1 disables sectoring
	HitLatency int // CPU cycles for a hit at this level
}

// Validate checks the level geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 || c.Sectors <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways", c.SizeBytes)
	case c.LineBytes%c.Sectors != 0:
		return fmt.Errorf("cache: %d sectors do not divide %dB line", c.Sectors, c.LineBytes)
	case c.Sectors > 64:
		return fmt.Errorf("cache: sector bitmap limited to 64, got %d", c.Sectors)
	}
	return nil
}

// Stats counts per-level activity.
type Stats struct {
	Hits, Misses       uint64
	SectorHits         uint64 // hit on line, fill avoided by sector validity
	SectorMisses       uint64 // line present but sector invalid
	Evictions          uint64
	DirtyEvictions     uint64
	FillsFromBelow     uint64
	WritebacksToBelow  uint64
	StridedLineInserts uint64
}

type line struct {
	tag      uint64
	valid    uint64 // sector valid bitmap
	dirty    uint64 // sector dirty bitmap
	sectored bool   // filled by a strided access (affects writeback shape)
	lru      uint64
}

// Cache is one level. Sets are allocated lazily: the directory maps each
// set index to its way array inside one flat, pointer-free backing slice,
// carved out on the set's first Fill. Building (and flushing) a large,
// mostly untouched level therefore costs the int32 directory only, not
// SizeBytes/LineBytes lines of zeroed backing — and the GC never scans
// per-set slice headers.
type Cache struct {
	cfg      Config
	setOff   []int32 // per set: 1 + backing offset of its ways; 0 = untouched
	backing  []line  // way arrays of touched sets, in first-touch order
	setMask  uint64
	lineBits uint
	setShift uint
	secBytes int
	hitLat   int
	clock    uint64
	Stats    Stats
}

// New builds a level; it panics on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: %s set count %d not a power of two", cfg.Name, nSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	setShift := uint(0)
	for 1<<setShift < nSets {
		setShift++
	}
	return &Cache{
		cfg:      cfg,
		setOff:   make([]int32, nSets),
		setMask:  uint64(nSets - 1),
		lineBits: lineBits,
		setShift: setShift,
		secBytes: cfg.LineBytes / cfg.Sectors,
		hitLat:   cfg.HitLatency,
	}
}

// peek returns set idx's way array, or nil while the set is untouched.
func (c *Cache) peek(idx int) []line {
	off := c.setOff[idx]
	if off == 0 {
		return nil
	}
	b := int(off - 1)
	return c.backing[b : b+c.cfg.Ways]
}

// set returns set idx's way array, carving it from the backing on first use.
func (c *Cache) set(idx int) []line {
	if s := c.peek(idx); s != nil {
		return s
	}
	w := c.cfg.Ways
	base := len(c.backing)
	if cap(c.backing)-base < w {
		newCap := 4 * cap(c.backing)
		if min := base + w; newCap < min {
			newCap = min
		}
		if newCap < 64*w {
			newCap = 64 * w
		}
		nb := make([]line, base, newCap)
		copy(nb, c.backing)
		c.backing = nb
	}
	c.backing = c.backing[:base+w]
	s := c.backing[base : base+w]
	// InvalidateAll retracts len but keeps cap, so re-exposed lines may hold
	// stale state.
	clear(s)
	c.setOff[idx] = int32(base) + 1
	return s
}

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// SectorBytes returns the sector granularity.
func (c *Cache) SectorBytes() int { return c.secBytes }

func (c *Cache) setBits() uint { return c.setShift }

func (c *Cache) locate(addr uint64) (setIdx int, tag uint64) {
	lineAddr := addr >> c.lineBits
	return int(lineAddr & c.setMask), lineAddr >> c.setBits()
}

func (c *Cache) sectorOf(addr uint64) int {
	return int(addr&(1<<c.lineBits-1)) / c.secBytes
}

// sectorMask returns the bitmap of sectors an access [addr, addr+size)
// touches within its line.
func (c *Cache) sectorMask(addr uint64, size int) uint64 {
	first := c.sectorOf(addr)
	last := c.sectorOf(addr + uint64(size) - 1)
	var m uint64
	for s := first; s <= last; s++ {
		m |= 1 << s
	}
	return m
}

// Outcome classifies one access at this level.
type Outcome int

// Access outcomes.
const (
	Hit Outcome = iota
	SectorMiss
	LineMiss
)

// Eviction describes a line pushed out to make room.
type Eviction struct {
	LineAddr uint64
	Dirty    uint64 // dirty sector bitmap (0 = clean eviction)
	Sectored bool
}

// Access probes the level for [addr, addr+size). On a line miss the caller
// must Fill before the data is usable; on a sector miss the line exists but
// the touched sectors are invalid. Write hits mark sectors dirty.
func (c *Cache) Access(addr uint64, size int, write bool) Outcome {
	if size <= 0 || uint64(size) > uint64(c.cfg.LineBytes)-(addr&(1<<c.lineBits-1)) {
		panic(fmt.Sprintf("cache: access [%x,+%d) crosses a line boundary", addr, size))
	}
	setIdx, tag := c.locate(addr)
	mask := c.sectorMask(addr, size)
	c.clock++
	set := c.peek(setIdx)
	for i := range set {
		ln := &set[i]
		if ln.valid != 0 && ln.tag == tag {
			if ln.valid&mask == mask {
				ln.lru = c.clock
				if write {
					ln.dirty |= mask
				}
				c.Stats.Hits++
				return Hit
			}
			c.Stats.SectorMisses++
			c.Stats.Misses++
			return SectorMiss
		}
	}
	c.Stats.Misses++
	return LineMiss
}

// Fill installs (or widens) the line containing addr with the given sector
// bitmap, returning an eviction if a victim was displaced. markDirty sets
// the filled sectors dirty (write-allocate); sectored tags the line as
// strided-filled.
func (c *Cache) Fill(addr uint64, sectors uint64, markDirty, sectored bool) (ev Eviction, evicted bool) {
	setIdx, tag := c.locate(addr)
	c.clock++
	set := c.set(setIdx)
	// One pass: widen an existing line if present, otherwise remember the
	// victim (first invalid way, else LRU).
	victim, invalid := 0, -1
	for i := range set {
		ln := &set[i]
		if ln.valid == 0 {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if ln.tag == tag {
			ln.valid |= sectors
			if markDirty {
				ln.dirty |= sectors
			}
			ln.sectored = ln.sectored || sectored
			ln.lru = c.clock
			return Eviction{}, false
		}
		if ln.lru < set[victim].lru {
			victim = i
		}
	}
	if invalid >= 0 {
		victim = invalid
	}
	ln := &set[victim]
	if ln.valid != 0 {
		c.Stats.Evictions++
		if ln.dirty != 0 {
			c.Stats.DirtyEvictions++
		}
		ev = Eviction{
			LineAddr: ((ln.tag<<c.setBits() | uint64(setIdx)) << c.lineBits),
			Dirty:    ln.dirty,
			Sectored: ln.sectored,
		}
		evicted = ln.dirty != 0
	}
	*ln = line{tag: tag, valid: sectors, lru: c.clock, sectored: sectored}
	if markDirty {
		ln.dirty = sectors
	}
	c.Stats.FillsFromBelow++
	if sectored {
		c.Stats.StridedLineInserts++
	}
	return ev, evicted
}

// Contains reports whether the full sector mask for [addr,addr+size) is
// resident and valid.
func (c *Cache) Contains(addr uint64, size int) bool {
	setIdx, tag := c.locate(addr)
	mask := c.sectorMask(addr, size)
	set := c.peek(setIdx)
	for i := range set {
		ln := &set[i]
		if ln.valid != 0 && ln.tag == tag {
			return ln.valid&mask == mask
		}
	}
	return false
}

// InvalidateAll clears the cache (used between experiment phases): every
// set returns to the untouched state and the backing is retracted for
// reuse.
func (c *Cache) InvalidateAll() {
	clear(c.setOff)
	c.backing = c.backing[:0]
}

// FullSectorMask returns the bitmap covering every sector of a line.
func (c *Cache) FullSectorMask() uint64 {
	return 1<<uint(c.cfg.Sectors) - 1
}
