package cache

import (
	"math/rand"
	"testing"
)

func newTestMDA() *MDA {
	return NewMDA(8<<10, 64, 4, 8, 8, 4)
}

func TestMDAColumnViewHits(t *testing.T) {
	m := newTestMDA()
	// First strided touch misses; after the fill, every member of the same
	// (group, sector) hits the shared column line.
	addr := uint64(0x10000 + 3*8) // group 0x10000/512, sector 3
	if m.AccessStrided(addr, false) {
		t.Fatal("cold strided access hit")
	}
	m.FillStrided(addr, false)
	for line := 0; line < 8; line++ {
		member := uint64(0x10000) + uint64(line*64) + 3*8
		if !m.AccessStrided(member, false) {
			t.Fatalf("group member line %d missed the column line", line)
		}
	}
	// A different sector of the same group is a different column line.
	if m.AccessStrided(uint64(0x10000+4*8), false) {
		t.Fatal("other sector aliased")
	}
}

func TestMDARowViewIndependent(t *testing.T) {
	m := newTestMDA()
	if m.AccessRow(0x2000, 8, false) {
		t.Fatal("cold row access hit")
	}
	m.FillRow(0x2000, false)
	if !m.AccessRow(0x2010, 8, false) {
		t.Fatal("row line not resident")
	}
	// Row residency does not satisfy strided probes (the duplication MDA
	// pays for).
	if m.AccessStrided(0x2000, false) {
		t.Fatal("row fill leaked into the column view")
	}
}

func TestMDAWriteCoherenceRowToCols(t *testing.T) {
	m := newTestMDA()
	// Column line resident; a row-wise write to an overlapping line must
	// invalidate it.
	m.FillStrided(0x4000+2*8, false)
	if !m.AccessStrided(0x4000+2*8, false) {
		t.Fatal("column line not resident")
	}
	m.FillRow(0x4000, true) // write fill of row line 0 of the group
	if m.AccessStrided(0x4000+2*8, false) {
		t.Fatal("stale column line survived a row write")
	}
	if m.Stats.CoherenceInvalidations == 0 {
		t.Fatal("coherence invalidation not counted")
	}
}

func TestMDAWriteCoherenceColsToRow(t *testing.T) {
	m := newTestMDA()
	m.FillRow(0x8040, false) // line 1 of group at 0x8000
	if !m.AccessRow(0x8040, 8, false) {
		t.Fatal("row line not resident")
	}
	// Strided write to the group's sector overlapping that line.
	m.FillStrided(0x8000+5*8, true)
	if m.AccessRow(0x8040, 8, false) {
		t.Fatal("stale row line survived a strided write")
	}
}

func TestMDADuplicationCounted(t *testing.T) {
	m := newTestMDA()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		addr := uint64(rng.Intn(1 << 20))
		if !m.AccessStrided(addr, false) {
			m.FillStrided(addr, false)
		}
	}
	if m.Stats.DuplicatedFills == 0 || m.Stats.ColMisses == 0 {
		t.Fatalf("stats not tracked: %+v", m.Stats)
	}
}

func TestMDAVsSectorCacheOnScanWorkload(t *testing.T) {
	// The paper's §5.1.1 argument, measured: on a low-reuse scan the MDA
	// cache provides no more hits than the sector cache, while paying
	// coherence invalidations on updates.
	sector := New(Config{Name: "sec", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Sectors: 8, HitLatency: 4})
	mda := NewMDA(8<<10, 64, 4, 8, 8, 4)

	rng := rand.New(rand.NewSource(7))
	var sectorHits, mdaHits int
	const n = 4000
	for i := 0; i < n; i++ {
		// The 512B group stride aliases to few cache sets, so keep the hot
		// set small enough for both caches to retain it.
		rec := i % 8
		addr := uint64(rec)*512 + uint64(rec%8)*8 // fixed sector per record group
		write := rng.Intn(10) == 0

		if sector.Access(addr, 8, write) == Hit {
			sectorHits++
		} else {
			sector.Fill(addr, 1<<((addr%64)/8), write, true)
		}
		if mda.AccessStrided(addr, write) {
			mdaHits++
		} else {
			mda.FillStrided(addr, write)
		}
	}
	if mda.Stats.CoherenceInvalidations != 0 && mdaHits > sectorHits*2 {
		t.Fatalf("unexpected MDA dominance: %d vs %d hits", mdaHits, sectorHits)
	}
	// Both caches should see some reuse on the second pass over records.
	if sectorHits == 0 || mdaHits == 0 {
		t.Fatalf("degenerate workload: sector=%d mda=%d", sectorHits, mdaHits)
	}
}

func TestMDAGeometryPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad MDA geometry accepted")
		}
	}()
	NewMDA(4096, 64, 4, 0, 8, 4)
}
