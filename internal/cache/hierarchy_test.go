package cache

import (
	"math/rand"
	"testing"
)

func testHierarchy(sectors int) *Hierarchy {
	l1 := New(Config{Name: "L1", SizeBytes: 1 << 10, LineBytes: 64, Ways: 2, Sectors: sectors, HitLatency: 4})
	l2 := New(Config{Name: "L2", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Sectors: sectors, HitLatency: 12})
	llc := New(Config{Name: "LLC", SizeBytes: 16 << 10, LineBytes: 64, Ways: 8, Sectors: sectors, HitLatency: 38})
	return NewHierarchy(l1, l2, llc)
}

func TestHierarchyMissFillsAllLevels(t *testing.T) {
	h := testHierarchy(1)
	res := h.Access(0x1000, 8, false, false)
	if res.HitLevel != 0 {
		t.Fatalf("cold access hit level %d", res.HitLevel)
	}
	if len(res.MemOps) != 1 || res.MemOps[0].IsWrite {
		t.Fatalf("cold access memops: %+v", res.MemOps)
	}
	if res.Latency != 4+12+38 {
		t.Fatalf("miss latency %d, want full traversal", res.Latency)
	}
	res = h.Access(0x1000, 8, false, false)
	if res.HitLevel != 1 || len(res.MemOps) != 0 {
		t.Fatalf("second access: %+v", res)
	}
	if res.Latency != 4 {
		t.Fatalf("L1 hit latency %d", res.Latency)
	}
}

func TestHierarchyL2HitRefillsL1(t *testing.T) {
	h := testHierarchy(1)
	h.Access(0x1000, 8, false, false)
	// Evict from tiny L1 (2 ways, 8 sets -> same set every 64*8 bytes).
	step := uint64(64 * 8)
	h.Access(0x1000+step, 8, false, false)
	h.Access(0x1000+2*step, 8, false, false)
	res := h.Access(0x1000, 8, false, false)
	if res.HitLevel != 2 && res.HitLevel != 3 {
		t.Fatalf("expected lower-level hit, got level %d", res.HitLevel)
	}
	if len(res.MemOps) != 0 {
		t.Fatalf("lower-level hit generated memops: %+v", res.MemOps)
	}
	// Now it must be back in L1.
	res = h.Access(0x1000, 8, false, false)
	if res.HitLevel != 1 {
		t.Fatalf("refill into L1 failed, hit level %d", res.HitLevel)
	}
}

func TestHierarchySectoredFillOnlyTouchedSectors(t *testing.T) {
	h := testHierarchy(4)
	res := h.Access(0x2010, 8, false, true) // sector 1 only
	if res.HitLevel != 0 {
		t.Fatal("expected cold miss")
	}
	if res.MemOps[0].Sectors != 0b0010 || !res.MemOps[0].Sectored {
		t.Fatalf("sectored fill shape: %+v", res.MemOps[0])
	}
	// Same sector hits; neighbour sector misses.
	if r := h.Access(0x2010, 8, false, true); r.HitLevel != 1 {
		t.Fatal("sector re-access missed")
	}
	if r := h.Access(0x2020, 8, false, true); r.HitLevel != 0 {
		t.Fatal("other sector should miss to memory")
	}
}

func TestHierarchyDirtyWritebackReachesMemory(t *testing.T) {
	h := testHierarchy(1)
	h.Access(0x0, 8, true, false) // dirty in all levels
	// Thrash the LLC set: LLC has 32 sets, 8 ways -> same set every 64*32.
	step := uint64(64 * 32)
	var wbs []MemOp
	for i := uint64(1); i <= 20; i++ {
		res := h.Access(i*step, 8, false, false)
		for _, op := range res.MemOps {
			if op.IsWrite {
				wbs = append(wbs, op)
			}
		}
	}
	// The dirty line may still be resident (push-downs refresh its LRU);
	// either way it must reach memory by flush time, exactly once.
	wbs = append(wbs, h.FlushDirty()...)
	found := 0
	for _, wb := range wbs {
		if wb.Addr == 0 {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("dirty line 0 written back %d times, want 1 (wbs=%v)", found, wbs)
	}
}

func TestHierarchyFlushDirty(t *testing.T) {
	h := testHierarchy(4)
	h.Access(0x1008, 8, true, true)
	h.Access(0x5000, 8, true, false)
	ops := h.FlushDirty()
	if len(ops) != 2 {
		t.Fatalf("flush produced %d ops, want 2: %+v", len(ops), ops)
	}
	addrs := map[uint64]MemOp{}
	for _, op := range ops {
		if !op.IsWrite {
			t.Fatalf("flush produced a read: %+v", op)
		}
		addrs[op.Addr] = op
	}
	if op, ok := addrs[0x1000]; !ok || op.Sectors != 0b0001 || !op.Sectored {
		t.Fatalf("strided dirty line flushed wrong: %+v", op)
	}
	if _, ok := addrs[0x5000]; !ok {
		t.Fatal("regular dirty line not flushed")
	}
	// Second flush is a no-op.
	if again := h.FlushDirty(); len(again) != 0 {
		t.Fatalf("second flush not empty: %+v", again)
	}
}

func TestHierarchyMixedLineSizesPanic(t *testing.T) {
	l1 := New(Config{Name: "a", SizeBytes: 1024, LineBytes: 64, Ways: 2, Sectors: 1, HitLatency: 1})
	l2 := New(Config{Name: "b", SizeBytes: 4096, LineBytes: 128, Ways: 2, Sectors: 1, HitLatency: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("mixed line sizes accepted")
		}
	}()
	NewHierarchy(l1, l2)
}

// TestHierarchyNoLostDirtyData is the tag-level version of invariant 5: a
// reference model tracks which lines hold unwritten-back modifications;
// every dirty line must either still be resident somewhere or have produced
// a memory writeback.
func TestHierarchyNoLostDirtyData(t *testing.T) {
	h := testHierarchy(4)
	rng := rand.New(rand.NewSource(21))
	dirtyLines := map[uint64]bool{}
	writtenBack := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1<<16)) &^ 7
		write := rng.Intn(3) == 0
		sectored := rng.Intn(2) == 0
		res := h.Access(addr, 8, write, sectored)
		if write {
			dirtyLines[addr&^63] = true
			delete(writtenBack, addr&^63)
		}
		for _, op := range res.MemOps {
			if op.IsWrite {
				writtenBack[op.Addr] = true
			}
		}
	}
	for _, op := range h.FlushDirty() {
		writtenBack[op.Addr] = true
	}
	for line := range dirtyLines {
		if !writtenBack[line] {
			t.Fatalf("dirty line %x vanished without a writeback", line)
		}
	}
}

func TestHierarchyStridedAndRegularInterleave(t *testing.T) {
	// A strided fill followed by a regular full-line access must widen the
	// line, not alias or duplicate it.
	h := testHierarchy(4)
	h.Access(0x4010, 8, false, true) // sector 1
	res := h.Access(0x4000, 64, false, false)
	if res.HitLevel != 0 {
		t.Fatalf("full-line access over partial line: hit level %d, want memory fill", res.HitLevel)
	}
	res = h.Access(0x4000, 64, false, false)
	if res.HitLevel != 1 {
		t.Fatalf("widened line not resident: %+v", res)
	}
}
