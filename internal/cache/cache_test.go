package cache

import (
	"math/rand"
	"testing"
)

func smallCache(sectors int) *Cache {
	return New(Config{
		Name: "test", SizeBytes: 4096, LineBytes: 64, Ways: 4,
		Sectors: sectors, HitLatency: 4,
	})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4, Sectors: 1},
		{SizeBytes: 4096, LineBytes: 64, Ways: 3, Sectors: 1},
		{SizeBytes: 4096, LineBytes: 64, Ways: 4, Sectors: 7},
		{SizeBytes: 4096, LineBytes: 64, Ways: 4, Sectors: 128},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := Config{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Sectors: 4, HitLatency: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(1)
	if got := c.Access(0x1000, 8, false); got != LineMiss {
		t.Fatalf("first access = %v, want LineMiss", got)
	}
	c.Fill(0x1000, c.FullSectorMask(), false, false)
	if got := c.Access(0x1000, 8, false); got != Hit {
		t.Fatalf("after fill = %v, want Hit", got)
	}
	if got := c.Access(0x1038, 8, false); got != Hit {
		t.Fatalf("same line different offset = %v, want Hit", got)
	}
}

func TestSectorMiss(t *testing.T) {
	c := smallCache(4)
	c.Fill(0x1000, 0b0001, false, true) // only sector 0 valid
	if got := c.Access(0x1000, 8, false); got != Hit {
		t.Fatalf("sector 0 = %v, want Hit", got)
	}
	if got := c.Access(0x1010, 8, false); got != SectorMiss {
		t.Fatalf("sector 1 = %v, want SectorMiss", got)
	}
	c.Fill(0x1010, 0b0010, false, true)
	if got := c.Access(0x1010, 8, false); got != Hit {
		t.Fatalf("sector 1 after widen = %v, want Hit", got)
	}
	if c.Stats.SectorMisses != 1 {
		t.Fatalf("sector miss count = %d", c.Stats.SectorMisses)
	}
}

func TestAccessSpanningSectors(t *testing.T) {
	c := smallCache(4)
	c.Fill(0x1000, 0b0011, false, true)
	// [0x100c, 0x1014) touches sectors 0 and 1, both valid.
	if got := c.Access(0x100c, 8, false); got != Hit {
		t.Fatalf("cross-sector access = %v, want Hit", got)
	}
	// [0x101c, 0x1024) touches sectors 1 and 2; 2 invalid.
	if got := c.Access(0x101c, 8, false); got != SectorMiss {
		t.Fatalf("cross into invalid sector = %v, want SectorMiss", got)
	}
}

func TestAccessCrossingLinePanics(t *testing.T) {
	c := smallCache(1)
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing access did not panic")
		}
	}()
	c.Access(0x103c, 16, false)
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(1)
	// 16 sets; same set = addresses 64*16 apart. Fill 5 lines in one set.
	base := uint64(0)
	step := uint64(64 * 16)
	for i := uint64(0); i < 4; i++ {
		c.Fill(base+i*step, 1, false, false)
	}
	// Touch line 0 so line 1 is LRU.
	c.Access(base, 8, false)
	ev, dirty := c.Fill(base+4*step, 1, false, false)
	if dirty {
		t.Fatal("clean eviction flagged dirty")
	}
	if ev.LineAddr != base+1*step {
		t.Fatalf("evicted %x, want LRU line %x", ev.LineAddr, base+step)
	}
	if c.Contains(base+step, 8) {
		t.Fatal("evicted line still present")
	}
	if !c.Contains(base, 8) {
		t.Fatal("recently used line evicted")
	}
}

func TestDirtyEvictionCarriesSectorShape(t *testing.T) {
	c := smallCache(4)
	base := uint64(0)
	step := uint64(64 * 16)
	c.Fill(base, 0b0100, true, true) // strided dirty sector 2
	for i := uint64(1); i < 4; i++ {
		c.Fill(base+i*step, c.FullSectorMask(), false, false)
	}
	ev, dirty := c.Fill(base+4*step, c.FullSectorMask(), false, false)
	if !dirty {
		t.Fatal("dirty line evicted silently")
	}
	if ev.Dirty != 0b0100 || !ev.Sectored {
		t.Fatalf("eviction lost sector shape: %+v", ev)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := smallCache(4)
	c.Fill(0x2000, c.FullSectorMask(), false, false)
	c.Access(0x2010, 8, true)
	// Evict it and check dirty bitmap has sector 1.
	step := uint64(64 * 16)
	for i := uint64(1); i <= 4; i++ {
		c.Fill(0x2000+i*step, c.FullSectorMask(), false, false)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestEvictionAddressReconstruction(t *testing.T) {
	c := smallCache(1)
	rng := rand.New(rand.NewSource(3))
	step := uint64(64 * 16)
	for trial := 0; trial < 100; trial++ {
		c.InvalidateAll()
		addr := uint64(rng.Intn(1<<20)) &^ 63
		c.Fill(addr, 1, true, false)
		var ev Eviction
		var got bool
		for i := uint64(1); i <= 4 && !got; i++ {
			ev, got = c.Fill(addr+i*step, 1, false, false)
		}
		if !got {
			t.Fatal("victim never evicted")
		}
		if ev.LineAddr != addr {
			t.Fatalf("reconstructed %x, want %x", ev.LineAddr, addr)
		}
	}
}

func TestInvalidateAll(t *testing.T) {
	c := smallCache(1)
	c.Fill(0x3000, 1, false, false)
	c.InvalidateAll()
	if c.Contains(0x3000, 8) {
		t.Fatal("line survived invalidate")
	}
}
