package obs_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sam/internal/core"
	"sam/internal/obs"
	"sam/internal/runner"
	"sam/internal/stats"
)

// parseLog decodes a JSONL event stream.
func parseLog(t *testing.T, data []byte) []obs.Event {
	t.Helper()
	var events []obs.Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestEventLogReconciles is the acceptance test: summing the job-span
// durations and memo attributions out of the JSONL event log reproduces
// the tracker's registry snapshot and the memo cache's counters exactly,
// for a fig12 run at 1 and at 8 workers.
func TestEventLogReconciles(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var log bytes.Buffer
			tr := obs.NewTracker(obs.Config{Log: &log})
			cache := core.NewMemo(core.MemoOptions{})
			par := core.Par{Workers: workers, Memo: cache, Observer: tr.Hooks("fig12")}
			fig, err := core.Fig12(context.Background(), core.SmallWorkload(), par)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("tracker close: %v", err)
			}
			events := parseLog(t, log.Bytes())

			var enq, started uint64
			finished := map[string]uint64{} // memo outcome -> count (finish events)
			var failed uint64
			var runSum, queueSum, finCount uint64
			startSeen := map[int]bool{}
			var summary *obs.SummaryEvent
			for _, e := range events {
				switch e.Ev {
				case "enqueue":
					enq += uint64(e.Jobs)
				case "start":
					started++
					if startSeen[e.Job] {
						t.Fatalf("job %d started twice", e.Job)
					}
					startSeen[e.Job] = true
				case "finish", "fail":
					if !startSeen[e.Job] {
						t.Fatalf("job %d finished without starting", e.Job)
					}
					delete(startSeen, e.Job)
					runSum += uint64(e.RunNS)
					queueSum += uint64(e.QueueNS)
					finCount++
					if e.Ev == "fail" {
						failed++
					} else {
						finished[e.Memo]++
					}
				case "summary":
					summary = e.Summary
				}
			}
			if len(startSeen) != 0 {
				t.Fatalf("%d jobs started but never finished", len(startSeen))
			}
			if summary == nil {
				t.Fatal("no summary event in log")
			}

			snap := tr.Snapshot()
			wantJobs := len(core.Benchmark()) * (1 + 8) // queries x (baseline + evaluated designs)
			if enq != uint64(wantJobs) {
				t.Fatalf("log enqueued %d jobs, want %d", enq, wantJobs)
			}
			for name, want := range map[string]uint64{
				"obs.jobs.enqueued": enq,
				"obs.jobs.started":  started,
				"obs.jobs.finished": finCount - failed,
				"obs.jobs.failed":   failed,
			} {
				if got := snap.Counters[name]; got != want {
					t.Errorf("%s: registry %d, log %d", name, got, want)
				}
			}
			for outcome, n := range finished {
				if outcome == "" {
					t.Errorf("%d finish events without memo attribution", n)
					continue
				}
				if got := snap.Counters["obs.memo."+outcome]; got != n {
					t.Errorf("obs.memo.%s: registry %d, log %d", outcome, got, n)
				}
			}
			run := snap.Histograms["obs.job.run_ns"]
			if run.Sum != runSum || run.Total != finCount {
				t.Errorf("run_ns histogram (sum %d n %d) != log (sum %d n %d)",
					run.Sum, run.Total, runSum, finCount)
			}
			queue := snap.Histograms["obs.job.queue_ns"]
			if queue.Sum != queueSum || queue.Total != finCount {
				t.Errorf("queue_ns histogram (sum %d n %d) != log (sum %d n %d)",
					queue.Sum, queue.Total, queueSum, finCount)
			}
			// Cold cache: every job's lookup was a miss or a dedup of a
			// concurrent miss; the cache counters must match the per-job
			// attribution exactly.
			ct := cache.Counters()
			if finished["miss"] != ct.Misses || finished["dedup"] != ct.InflightDedup ||
				finished["hit"] != ct.Hits || finished["disk-hit"] != ct.DiskHits {
				t.Errorf("memo attribution (miss %d dedup %d hit %d disk %d) != cache counters %+v",
					finished["miss"], finished["dedup"], finished["hit"], finished["disk-hit"], ct)
			}
			// The summary's counter snapshot is the registry's.
			for name, v := range summary.Counters {
				if snap.Counters[name] != v {
					t.Errorf("summary counter %s = %d, registry %d", name, v, snap.Counters[name])
				}
			}

			// Progress must agree the sweep is complete.
			rep := tr.Progress()
			if len(rep.Sweeps) != 1 || rep.Sweeps[0].Done != wantJobs || rep.Sweeps[0].Running != 0 {
				t.Errorf("progress report incomplete: %+v", rep.Sweeps)
			}

			if workers != 8 {
				return
			}
			// Warm re-run against the same cache under a fresh tracker:
			// every job must attribute as a cache hit, and the figure must
			// be identical to the cold run.
			var log2 bytes.Buffer
			tr2 := obs.NewTracker(obs.Config{Log: &log2})
			par2 := core.Par{Workers: workers, Memo: cache, Observer: tr2.Hooks("fig12")}
			fig2, err := core.Fig12(context.Background(), core.SmallWorkload(), par2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fig.Cells, fig2.Cells) {
				t.Error("observed warm re-run changed the figure")
			}
			snap2 := tr2.Snapshot()
			if hits := snap2.Counters["obs.memo.hit"]; hits != uint64(wantJobs) {
				t.Errorf("warm run attributed %d hits, want %d (misses %d)",
					hits, wantJobs, snap2.Counters["obs.memo.miss"])
			}
		})
	}
}

// TestObserverDoesNotPerturbResults pins the one-way contract at the
// driver level: the same sweep with and without an observer produces
// byte-identical figures.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	w := core.SmallWorkload()
	plain, err := core.Fig12(context.Background(), w, core.Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracker(obs.Config{})
	observed, err := core.Fig12(context.Background(), w, core.Par{Workers: 4, Observer: tr.Hooks("fig12")})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Cells, observed.Cells) {
		t.Error("attaching the observer changed figure results")
	}
}

// TestConcurrentScrape hammers the tracker from 8 worker goroutines while
// scraping /metrics and /progress — the -race test for the lock
// discipline between job callbacks and HTTP reads.
func TestConcurrentScrape(t *testing.T) {
	tr := obs.NewTracker(obs.Config{Log: io.Discard})
	srv := obs.NewServer(tr)
	srv.AddSource(func() *stats.Snapshot {
		return &stats.Snapshot{Counters: map[string]uint64{"sim.shard.epochs": 42}}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers, jobsPer = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			span := tr.Hooks(fmt.Sprintf("sweep-%d", w)).SweepStarted(jobsPer)
			for i := 0; i < jobsPer; i++ {
				span.JobStarted(i, w)
				span.JobAnnotate(i, "memo", "miss")
				tr.DomainPulse(w)
				span.JobFinished(i, w, nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	client := ts.Client()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		for _, path := range []string{"/metrics", "/progress", "/healthz"} {
			resp, err := client.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if path == "/metrics" && !strings.Contains(string(body), "sam_obs_jobs_enqueued_total") {
				t.Fatalf("metrics scrape missing obs families:\n%s", body)
			}
		}
	}
	snap := tr.Snapshot()
	want := uint64(workers * jobsPer)
	if snap.Counters["obs.jobs.finished"] != want || snap.Counters["obs.memo.miss"] != want {
		t.Fatalf("lost updates under concurrency: %v", snap.Counters)
	}
	// Final progress JSON must be complete and well-formed.
	resp, err := client.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sw := range rep.Sweeps {
		total += sw.Done
	}
	if total != workers*jobsPer {
		t.Fatalf("progress reports %d done, want %d", total, workers*jobsPer)
	}
}

// TestStallWatchdog drives the watchdog with an injected clock: a running
// job beyond max(floor, factor x median) is flagged exactly once, the
// stalled gauge tracks it, and /healthz flips to 503 and back.
func TestStallWatchdog(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	var log bytes.Buffer
	tr := obs.NewTracker(obs.Config{
		Log:         &log,
		Clock:       clock,
		StallFactor: 2,
		StallFloor:  time.Millisecond,
	})
	srv := obs.NewServer(tr)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	span := tr.Hooks("sweep").SweepStarted(3)
	// Complete one job in 10ms -> median 10ms -> threshold 20ms.
	span.JobStarted(0, 0)
	now = now.Add(10 * time.Millisecond)
	span.JobFinished(0, 0, nil)

	span.JobStarted(1, 0)
	now = now.Add(15 * time.Millisecond)
	if n := tr.CheckStalls(); n != 0 {
		t.Fatalf("job under threshold flagged stalled (n=%d)", n)
	}
	now = now.Add(10 * time.Millisecond) // running 25ms > 20ms threshold
	if n := tr.CheckStalls(); n != 1 {
		t.Fatalf("stalled job not flagged (n=%d)", n)
	}
	if n := tr.CheckStalls(); n != 1 {
		t.Fatalf("second check changed the count (n=%d)", n)
	}
	if got := tr.Snapshot().Counters["obs.stalls"]; got != 1 {
		t.Fatalf("obs.stalls = %d, want 1 (stall must log once)", got)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz with a stalled job = %d, want 503", resp.StatusCode)
	}
	span.JobFinished(1, 0, nil)
	if n := tr.CheckStalls(); n != 0 {
		t.Fatalf("finished job still counted stalled (n=%d)", n)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after recovery = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(log.Bytes(), []byte(`"ev":"stall"`)) {
		t.Error("no stall event in the log")
	}
}

// TestMetricsParse exercises the full merged scrape (tracker + sources +
// derived gauges) through the stats exposition writer and checks the
// required families appear and parse.
func TestMetricsParse(t *testing.T) {
	tr := obs.NewTracker(obs.Config{})
	finish := tr.Single("one")
	finish(nil)
	srv := obs.NewServer(tr)
	srv.AddSource(func() *stats.Snapshot {
		return &stats.Snapshot{Counters: map[string]uint64{"sim.shard.runs": 3, "sim.shard.epochs": 9}}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func() string {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	get() // first scrape establishes the rate baseline
	body := get()
	for _, want := range []string{
		"# TYPE sam_obs_jobs_enqueued_total counter",
		"# TYPE sam_obs_job_run_ns histogram",
		"sam_obs_job_run_ns_bucket{le=\"+Inf\"} 1",
		"# TYPE sam_obs_jobs_inflight gauge",
		"sam_sim_shard_epochs_total 9",
		"sam_obs_rate_jobs_per_s",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// The span bracketed no annotation; counters must still be coherent.
	if !strings.Contains(body, "sam_obs_jobs_finished_total 1") {
		t.Errorf("single span not counted:\n%s", body)
	}
}

// TestRunnerAnnotateNoObserver pins that Annotate without an observed
// context is a safe no-op (the nil-observer fast path).
func TestRunnerAnnotateNoObserver(t *testing.T) {
	runner.Annotate(context.Background(), "memo", "miss")
	_, err := runner.Map(context.Background(), []int{1, 2, 3}, runner.Options{Workers: 2},
		func(ctx context.Context, _ int, v int) (int, error) {
			runner.Annotate(ctx, "memo", "miss")
			return v, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
