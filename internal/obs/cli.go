package obs

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"sam/internal/runner"
	"sam/internal/sim"
	"sam/internal/stats"
)

// This file is the one-call wiring every command shares: RegisterFlags
// adds -obs-listen/-obs-log to a FlagSet, Start stands the plane up (or
// returns a nil *Plane when both flags are empty — every Plane method is
// nil-safe, so call sites need no branching), and Close tears it down,
// closing the event log and reporting the first write error. The log is
// written one complete line per event, unbuffered, so a run killed
// mid-sweep leaves a parseable log (missing only the summary record);
// Close is idempotent, letting commands close the plane on their
// os.Exit error paths and still defer it for the normal return.

// CLI holds the parsed observability flags.
type CLI struct {
	Listen string
	Log    string
}

// RegisterFlags adds the observability flags to fs.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.Listen, "obs-listen", "", "serve live telemetry (/metrics, /progress, /healthz, /debug/pprof) on this address while the run executes (e.g. 127.0.0.1:9915)")
	fs.StringVar(&c.Log, "obs-log", "", "append the structured JSONL run-lifecycle event log to this file")
	return c
}

// Plane is a started observability plane. The zero of the type is never
// used — a disabled plane is a nil *Plane, and every method tolerates
// that, so call sites wire hooks unconditionally.
type Plane struct {
	Tracker *Tracker
	server  *Server
	logFile *os.File
	stop    func() // watchdog
	stderr  io.Writer

	closeOnce sync.Once
	closeErr  error
}

// Start stands the plane up: tracker (+ stall watchdog), optional HTTP
// server, optional event log, with the sharded-engine counters and any
// extra sources (memo caches, tool registries) attached to /metrics and
// the domain-worker heartbeat installed. Returns (nil, nil) when both
// flags are empty. stderr receives the one-line "serving on ..." notice
// (nil silences it).
func (c *CLI) Start(stderr io.Writer, sources ...func() *stats.Snapshot) (*Plane, error) {
	if c == nil || (c.Listen == "" && c.Log == "") {
		return nil, nil
	}
	p := &Plane{stderr: stderr}
	cfg := Config{}
	if c.Log != "" {
		f, err := os.Create(c.Log)
		if err != nil {
			return nil, fmt.Errorf("obs: event log: %w", err)
		}
		p.logFile = f
		cfg.Log = f
	}
	p.Tracker = NewTracker(cfg)
	p.stop = p.Tracker.Watch(2 * time.Second)
	sim.SetDomainPulse(p.Tracker.DomainPulse)
	if c.Listen != "" {
		p.server = NewServer(p.Tracker)
		p.server.AddSource(sim.ShardObsSnapshot)
		for _, src := range sources {
			p.server.AddSource(src)
		}
		addr, err := p.server.Listen(c.Listen)
		if err != nil {
			p.shutdown()
			return nil, fmt.Errorf("obs: %w", err)
		}
		if stderr != nil {
			fmt.Fprintf(stderr, "obs: serving /metrics /progress /healthz /debug/pprof on http://%s\n", addr)
		}
	}
	return p, nil
}

// Hooks returns the sweep observer for label (nil observer when the
// plane is disabled — the worker pool's zero-overhead path).
func (p *Plane) Hooks(label string) runner.SweepObserver {
	if p == nil {
		return nil
	}
	return p.Tracker.Hooks(label)
}

// Single opens a one-job span; the returned finish callback is a no-op
// when the plane is disabled.
func (p *Plane) Single(label string) func(err error) {
	if p == nil {
		return func(error) {}
	}
	return p.Tracker.Single(label)
}

// AddSource attaches an extra /metrics snapshot source (no-op when the
// plane or its server is disabled).
func (p *Plane) AddSource(fn func() *stats.Snapshot) {
	if p == nil || p.server == nil {
		return
	}
	p.server.AddSource(fn)
}

// shutdown releases everything except the log-close path.
func (p *Plane) shutdown() {
	if p.stop != nil {
		p.stop()
	}
	sim.SetDomainPulse(nil)
	if p.server != nil {
		_ = p.server.Close()
	}
}

// Close stops the watchdog and server, writes the summary event, closes
// the log, and returns the first error the event log hit. Idempotent:
// later calls return the first call's result.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	p.closeOnce.Do(func() {
		p.shutdown()
		err := p.Tracker.Close()
		if p.logFile != nil {
			err = errors.Join(err, p.logFile.Close())
		}
		p.closeErr = err
	})
	return p.closeErr
}
