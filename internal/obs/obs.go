// Package obs is the live telemetry plane: a stdlib-only observability
// layer the long-running pipelines (samfig campaigns, samsim sweeps)
// expose while they run. It has three faces:
//
//   - Tracker: run-lifecycle accounting fed by the worker pool's
//     SweepObserver hooks (internal/runner) — job spans with queue-wait
//     and run-duration histograms, memo hit/miss attribution, worker
//     occupancy, and sharded-engine heartbeats — all recorded into an
//     internal/stats registry guarded by the tracker's own mutex.
//   - Server (server.go): an HTTP endpoint serving /metrics (Prometheus
//     text exposition rendered live from registry snapshots), /progress
//     (per-sweep JSON with ETA), /healthz, and /debug/pprof.
//   - a structured JSONL event log: every job span is appended to
//     Config.Log as one Event per transition (enqueue/start/finish/fail,
//     plus stall and summary records), exact enough that replaying the
//     log reproduces the registry's histograms and memo counters
//     bit-for-bit (TestEventLogReconciles).
//
// Observation is strictly one-way: nothing here feeds back into
// scheduling or simulation, so figures stay byte-identical with the
// plane attached — the same contract the memo cache pins.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"sam/internal/runner"
	"sam/internal/stats"
)

// Instrument names the tracker registers. The obscheck validator and the
// golden exposition test pin their rendered (sam_obs_*) forms.
const (
	cEnqueued = "obs.jobs.enqueued"
	cStarted  = "obs.jobs.started"
	cFinished = "obs.jobs.finished"
	cFailed   = "obs.jobs.failed"
	cStalls   = "obs.stalls"
	cMemoPfx  = "obs.memo." // + memo.Outcome.String(): miss/hit/disk-hit/dedup
	cPulses   = "obs.domain.pulses"

	hQueueNS = "obs.job.queue_ns"
	hRunNS   = "obs.job.run_ns"

	gInflight   = "obs.jobs.inflight"
	gQueued     = "obs.jobs.queued"
	gStalled    = "obs.jobs.stalled"
	gWorkersMax = "obs.workers.max"
	gDomWorkers = "obs.domain.workers"
)

// jobLatencyBounds are the queue/run histogram bucket upper bounds in
// nanoseconds: 1ms, 10ms, 100ms, 1s, 10s, 60s (+Inf implicit).
var jobLatencyBounds = []uint64{1e6, 1e7, 1e8, 1e9, 1e10, 6e10}

// Config configures a Tracker. The zero value is valid: no event log,
// wall-clock time, default watchdog thresholds.
type Config struct {
	// Log, when non-nil, receives the JSONL event stream (one Event per
	// line). Writes happen under the tracker's lock in job-transition
	// order; the first write error is kept and returned by Close.
	Log io.Writer
	// Clock overrides time.Now — injectable for watchdog tests.
	Clock func() time.Time
	// StallFactor scales the stall threshold: a running job is stalled
	// once its duration exceeds StallFactor x the median completed run
	// duration. <= 0 means 8.
	StallFactor float64
	// StallFloor is the minimum stall threshold, so early jobs (no
	// median yet) and fast sweeps don't false-positive. <= 0 means 30s.
	StallFloor time.Duration
}

// jobState is one job's lifecycle position.
type jobState uint8

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
)

// job is one sweep item's span.
type job struct {
	enq, start, end time.Time
	worker          int
	state           jobState
	memo            string
	stalled         bool
}

// sweepScope accumulates every Map/Grid call sharing one label (nested
// sweeps reuse their figure's label); each call appends a block of jobs
// at its base offset, so job indices in the event log are scope-wide.
type sweepScope struct {
	label  string
	jobs   []job
	done   int
	failed int
}

// Tracker is the run-lifecycle accountant. All methods are goroutine-safe
// (one mutex guards the registry, the scopes, and the event log), which is
// what lets worker goroutines feed it directly and HTTP scrapes snapshot
// it concurrently.
type Tracker struct {
	cfg Config

	mu        sync.Mutex
	reg       *stats.Registry
	start     time.Time
	scopes    map[string]*sweepScope
	order     []string
	durs      []time.Duration // completed run durations (median source)
	inflight  int
	queuedN   int
	maxWorker int // highest observed pool worker slot + 1
	domBeats  map[int]time.Time
	logErr    error
}

// NewTracker builds a tracker.
func NewTracker(cfg Config) *Tracker {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.StallFactor <= 0 {
		cfg.StallFactor = 8
	}
	if cfg.StallFloor <= 0 {
		cfg.StallFloor = 30 * time.Second
	}
	t := &Tracker{
		cfg:      cfg,
		reg:      stats.NewRegistry(),
		scopes:   make(map[string]*sweepScope),
		domBeats: make(map[int]time.Time),
	}
	t.start = cfg.Clock()
	// Register the fixed-name instruments up front so even an idle scrape
	// exposes the full family set.
	for _, c := range []string{cEnqueued, cStarted, cFinished, cFailed, cStalls, cPulses} {
		t.reg.Counter(c)
	}
	t.reg.Histogram(hQueueNS, jobLatencyBounds...)
	t.reg.Histogram(hRunNS, jobLatencyBounds...)
	for _, g := range []string{gInflight, gQueued, gStalled, gWorkersMax, gDomWorkers} {
		t.reg.Gauge(g)
	}
	return t
}

// Event is one JSONL log record. Ev selects the shape:
//
//	enqueue  sweep, jobs, base        — a Map/Grid call enqueued jobs
//	start    sweep, job, worker       — job began executing
//	finish   sweep, job, worker, queue_ns, run_ns, memo
//	fail     finish fields + err
//	annotate sweep, job, key, value   — non-memo in-flight attribution
//	stall    sweep, job, run_ns, threshold_ns, median_ns
//	summary  summary                  — final totals, written by Close
type Event struct {
	T           int64         `json:"t_ns"`
	Ev          string        `json:"ev"`
	Sweep       string        `json:"sweep,omitempty"`
	Job         int           `json:"job"`
	Worker      int           `json:"worker"`
	Jobs        int           `json:"jobs,omitempty"`
	Base        int           `json:"base,omitempty"`
	QueueNS     int64         `json:"queue_ns,omitempty"`
	RunNS       int64         `json:"run_ns,omitempty"`
	Memo        string        `json:"memo,omitempty"`
	Key         string        `json:"key,omitempty"`
	Value       string        `json:"value,omitempty"`
	Err         string        `json:"err,omitempty"`
	ThresholdNS int64         `json:"threshold_ns,omitempty"`
	MedianNS    int64         `json:"median_ns,omitempty"`
	Summary     *SummaryEvent `json:"summary,omitempty"`
}

// SweepSummary is one sweep's final tally inside the summary event.
type SweepSummary struct {
	Sweep  string `json:"sweep"`
	Jobs   int    `json:"jobs"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
}

// SummaryEvent closes the event log: per-sweep tallies plus the final
// counter snapshot (the reconciliation test's right-hand side).
type SummaryEvent struct {
	Sweeps   []SweepSummary    `json:"sweeps"`
	Counters map[string]uint64 `json:"counters"`
}

// writeEvent appends one record to the log. Caller holds t.mu.
func (t *Tracker) writeEvent(e *Event) {
	if t.cfg.Log == nil || t.logErr != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.logErr = err
		return
	}
	b = append(b, '\n')
	if _, err := t.cfg.Log.Write(b); err != nil {
		t.logErr = err
	}
}

// Hooks returns the worker-pool observer feeding this tracker under the
// given sweep label — the value for runner.Options.Observer / core
// Par.Observer. One tracker serves any number of labels concurrently.
func (t *Tracker) Hooks(label string) runner.SweepObserver {
	return scopedObserver{t: t, label: label}
}

type scopedObserver struct {
	t     *Tracker
	label string
}

func (o scopedObserver) SweepStarted(total int) runner.SweepSpan {
	return o.t.sweepStarted(o.label, total)
}

// sweepStarted opens one Map/Grid call's block of jobs.
func (t *Tracker) sweepStarted(label string, total int) runner.SweepSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Clock()
	s := t.scopes[label]
	if s == nil {
		s = &sweepScope{label: label}
		t.scopes[label] = s
		t.order = append(t.order, label)
	}
	base := len(s.jobs)
	for i := 0; i < total; i++ {
		s.jobs = append(s.jobs, job{enq: now})
	}
	t.queuedN += total
	t.reg.Counter(cEnqueued).Add(uint64(total))
	t.writeEvent(&Event{T: now.UnixNano(), Ev: "enqueue", Sweep: label, Jobs: total, Base: base})
	return &span{t: t, s: s, base: base}
}

// span is one Map/Grid call's SweepSpan.
type span struct {
	t    *Tracker
	s    *sweepScope
	base int
}

func (sp *span) JobStarted(i, worker int) {
	t := sp.t
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Clock()
	j := &sp.s.jobs[sp.base+i]
	j.start = now
	j.worker = worker
	j.state = jobRunning
	t.queuedN--
	t.inflight++
	if worker+1 > t.maxWorker {
		t.maxWorker = worker + 1
	}
	t.reg.Counter(cStarted).Inc()
	t.writeEvent(&Event{T: now.UnixNano(), Ev: "start", Sweep: sp.s.label, Job: sp.base + i, Worker: worker})
}

func (sp *span) JobAnnotate(i int, key, value string) {
	t := sp.t
	t.mu.Lock()
	defer t.mu.Unlock()
	j := &sp.s.jobs[sp.base+i]
	if key == "memo" {
		j.memo = value
		t.reg.Counter(cMemoPfx + value).Inc()
		return
	}
	t.writeEvent(&Event{
		T: t.cfg.Clock().UnixNano(), Ev: "annotate",
		Sweep: sp.s.label, Job: sp.base + i, Worker: j.worker, Key: key, Value: value,
	})
}

func (sp *span) JobFinished(i, worker int, err error) {
	t := sp.t
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Clock()
	j := &sp.s.jobs[sp.base+i]
	j.end = now
	queue := j.start.Sub(j.enq)
	run := now.Sub(j.start)
	t.inflight--
	t.durs = append(t.durs, run)
	// The histogram observations and the logged durations are the same
	// values — replaying the log reproduces the registry exactly.
	t.reg.Histogram(hQueueNS).Observe(uint64(queue))
	t.reg.Histogram(hRunNS).Observe(uint64(run))
	e := &Event{
		T: now.UnixNano(), Ev: "finish", Sweep: sp.s.label, Job: sp.base + i, Worker: worker,
		QueueNS: int64(queue), RunNS: int64(run), Memo: j.memo,
	}
	if err != nil {
		j.state = jobFailed
		sp.s.failed++
		t.reg.Counter(cFailed).Inc()
		e.Ev = "fail"
		e.Err = err.Error()
	} else {
		j.state = jobDone
		sp.s.done++
		t.reg.Counter(cFinished).Inc()
	}
	t.writeEvent(e)
}

// Single opens a one-job span (for tools whose unit of work is a single
// replay or query rather than a sweep) and returns its finish callback.
func (t *Tracker) Single(label string) func(err error) {
	sp := t.Hooks(label).SweepStarted(1)
	sp.JobStarted(0, 0)
	return func(err error) { sp.JobFinished(0, 0, err) }
}

// DomainPulse is the sharded engine's lane-worker heartbeat (wired
// through sim.SetDomainPulse): one call per executed replay batch.
func (t *Tracker) DomainPulse(worker int) {
	t.mu.Lock()
	t.reg.Counter(cPulses).Inc()
	t.domBeats[worker] = t.cfg.Clock()
	t.mu.Unlock()
}

// medianRunLocked returns the median completed run duration (0 with no
// completions). Caller holds t.mu.
func (t *Tracker) medianRunLocked() time.Duration {
	n := len(t.durs)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), t.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[n/2]
}

// stallThresholdLocked computes the current watchdog threshold:
// max(StallFloor, StallFactor x median completed run). Caller holds t.mu.
func (t *Tracker) stallThresholdLocked() (time.Duration, time.Duration) {
	med := t.medianRunLocked()
	thr := t.cfg.StallFloor
	if med > 0 {
		if scaled := time.Duration(t.cfg.StallFactor * float64(med)); scaled > thr {
			thr = scaled
		}
	}
	return thr, med
}

// CheckStalls runs one watchdog pass: every running job past the
// threshold is marked stalled (once — with a stall event and counter
// increment), and the stalled gauge is set to the count of currently
// running stalled jobs. Returns that count. Watch calls this on a
// ticker; tests call it directly with an injected clock.
func (t *Tracker) CheckStalls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Clock()
	thr, med := t.stallThresholdLocked()
	stalled := 0
	for _, label := range t.order {
		s := t.scopes[label]
		for i := range s.jobs {
			j := &s.jobs[i]
			if j.state != jobRunning {
				continue
			}
			run := now.Sub(j.start)
			if run <= thr {
				continue
			}
			stalled++
			if !j.stalled {
				j.stalled = true
				t.reg.Counter(cStalls).Inc()
				t.writeEvent(&Event{
					T: now.UnixNano(), Ev: "stall", Sweep: label, Job: i, Worker: j.worker,
					RunNS: int64(run), ThresholdNS: int64(thr), MedianNS: int64(med),
				})
			}
		}
	}
	t.reg.Gauge(gStalled).Set(float64(stalled))
	return stalled
}

// Watch runs CheckStalls every interval on a background goroutine until
// the returned stop function is called.
func (t *Tracker) Watch(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.CheckStalls()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Snapshot freezes the tracker's registry, refreshing the derived gauges
// (inflight, queued, stalled-running, worker high-water, live domain
// workers) first. Safe to call concurrently with job callbacks.
func (t *Tracker) Snapshot() *stats.Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg.Gauge(gInflight).Set(float64(t.inflight))
	t.reg.Gauge(gQueued).Set(float64(t.queuedN))
	t.reg.Gauge(gWorkersMax).Set(float64(t.maxWorker))
	t.reg.Gauge(gDomWorkers).Set(float64(len(t.domBeats)))
	return t.reg.Snapshot()
}

// SweepProgress is one sweep's live state in the /progress report.
type SweepProgress struct {
	Sweep       string `json:"sweep"`
	Total       int    `json:"total"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	Done        int    `json:"done"`
	Failed      int    `json:"failed"`
	MedianRunNS int64  `json:"median_run_ns"`
	// ETANS estimates time to finish the sweep's remaining jobs:
	// remaining x (tracker-wide median completed run) / observed worker
	// high-water. 0 until a median exists.
	ETANS int64 `json:"eta_ns"`
}

// Report is the /progress JSON document.
type Report struct {
	UptimeNS int64           `json:"uptime_ns"`
	Workers  int             `json:"workers"`
	Inflight int             `json:"inflight"`
	Stalled  int             `json:"stalled"`
	Sweeps   []SweepProgress `json:"sweeps"`
}

// Progress builds the live per-sweep report.
func (t *Tracker) Progress() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Clock()
	med := t.medianRunLocked()
	r := Report{
		UptimeNS: int64(now.Sub(t.start)),
		Workers:  t.maxWorker,
		Inflight: t.inflight,
	}
	for _, label := range t.order {
		s := t.scopes[label]
		p := SweepProgress{Sweep: label, Total: len(s.jobs), Done: s.done, Failed: s.failed, MedianRunNS: int64(med)}
		for i := range s.jobs {
			switch s.jobs[i].state {
			case jobQueued:
				p.Queued++
			case jobRunning:
				p.Running++
				if s.jobs[i].stalled {
					r.Stalled++
				}
			}
		}
		if remaining := p.Queued + p.Running; remaining > 0 && med > 0 {
			workers := t.maxWorker
			if workers < 1 {
				workers = 1
			}
			p.ETANS = int64(med) * int64(remaining) / int64(workers)
		}
		r.Sweeps = append(r.Sweeps, p)
	}
	return r
}

// Close writes the summary event and returns the first event-log write
// error, if any. The tracker remains usable (Close is about the log).
func (t *Tracker) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sum := &SummaryEvent{Counters: t.reg.Snapshot().Counters}
	for _, label := range t.order {
		s := t.scopes[label]
		sum.Sweeps = append(sum.Sweeps, SweepSummary{
			Sweep: label, Jobs: len(s.jobs), Done: s.done, Failed: s.failed,
		})
	}
	t.writeEvent(&Event{T: t.cfg.Clock().UnixNano(), Ev: "summary", Summary: sum})
	return t.logErr
}
