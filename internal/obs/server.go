package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"sam/internal/stats"
)

// Server exposes one Tracker (plus any extra snapshot sources — the memo
// cache, the sharded-engine counters) over HTTP:
//
//	/metrics      Prometheus text exposition (namespace "sam"), rendered
//	              live from merged registry snapshots plus derived gauges
//	              (memo hit ratio, scrape-to-scrape jobs/s and epochs/s).
//	/progress     Tracker.Progress as JSON — per-sweep job states + ETA.
//	/healthz      200 "ok", or 503 "stalled" while the watchdog sees
//	              stalled running jobs.
//	/debug/pprof  the standard runtime profiles.
//
// Every handler reads snapshots (plain values), so scraping never blocks
// job callbacks beyond the tracker's brief snapshot lock.
type Server struct {
	t *Tracker

	mu      sync.Mutex
	sources []func() *stats.Snapshot
	prev    *stats.Snapshot
	prevAt  time.Time

	srv *http.Server
	ln  net.Listener
}

// NewServer wraps a tracker. Add extra snapshot sources with AddSource
// before or after Listen; Listen starts serving.
func NewServer(t *Tracker) *Server {
	return &Server{t: t}
}

// AddSource registers an extra snapshot producer merged into every
// /metrics scrape. fn must be goroutine-safe; it is called per scrape.
func (s *Server) AddSource(fn func() *stats.Snapshot) {
	s.mu.Lock()
	s.sources = append(s.sources, fn)
	s.mu.Unlock()
}

// Handler returns the endpoint mux (exported so tests can drive the
// surface with httptest instead of a real socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.AttachTo(mux)
	return mux
}

// AttachTo registers the telemetry endpoints on an existing mux — the
// seam that lets a host daemon (cmd/samd) serve /metrics, /progress,
// /healthz, and /debug/pprof alongside its own API on one listener.
func (s *Server) AttachTo(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/progress", s.progress)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// merged snapshots the tracker and every source into one Snapshot, then
// layers on the derived gauges. The previous scrape's snapshot (kept
// under s.mu) supplies the counter deltas behind the rate gauges.
func (s *Server) merged() *stats.Snapshot {
	out := s.t.Snapshot()
	s.mu.Lock()
	sources := s.sources
	s.mu.Unlock()
	for _, src := range sources {
		// Source snapshots are independent registries; a bounds mismatch
		// would mean two sources reused one histogram name, which the
		// fixed instrument naming (obs.*, memo.*, sim.shard.*) rules out.
		_ = out.Merge(src())
	}
	now := time.Now()
	s.mu.Lock()
	d := out.Delta(s.prev)
	elapsed := now.Sub(s.prevAt)
	first := s.prev == nil
	s.prev = out
	s.prevAt = now
	s.mu.Unlock()

	if out.Gauges == nil {
		out.Gauges = make(map[string]stats.GaugeSnap)
	}
	// Memo hit ratio over the tracker's own attribution counters — the
	// per-job view (the memo.* source counts lookups cache-side).
	var hits, lookups uint64
	for _, outc := range []string{"hit", "disk-hit", "dedup", "miss"} {
		v := out.Counters[cMemoPfx+outc]
		lookups += v
		if outc != "miss" {
			hits += v
		}
	}
	if lookups > 0 {
		out.Gauges["obs.memo.hit_ratio"] = stats.GaugeSnap{Cur: float64(hits) / float64(lookups)}
	}
	// Scrape-to-scrape rates. The first scrape has no baseline interval,
	// so rates start at 0 rather than reporting since-process-start.
	if !first && elapsed > 0 {
		per := func(name string) float64 {
			return float64(d.Counters[name]) / elapsed.Seconds()
		}
		out.Gauges["obs.rate.jobs_per_s"] = stats.GaugeSnap{Cur: per(cFinished)}
		if _, ok := out.Counters["sim.shard.epochs"]; ok {
			out.Gauges["obs.rate.epochs_per_s"] = stats.GaugeSnap{Cur: per("sim.shard.epochs")}
		}
	}
	return out
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = stats.WriteProm(w, "sam", s.merged())
}

func (s *Server) progress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.t.Progress())
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	if n := s.t.CheckStalls(); n > 0 {
		http.Error(w, fmt.Sprintf("stalled: %d jobs past watchdog threshold", n), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// Listen binds addr (e.g. "127.0.0.1:9915", or ":0" for an ephemeral
// port) and serves in the background. Returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener (no-op if Listen was never called).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
