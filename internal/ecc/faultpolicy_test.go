package ecc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestChipkillDecodeWrongGeometry pins the bugfix: a burst whose chip count
// does not match the scheme must come back as ErrGeometry, not a panic.
func TestChipkillDecodeWrongGeometry(t *testing.T) {
	for _, s := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(s)
		for _, chips := range []int{0, 1, 4, c.Chips() - 1, c.Chips() + 1, 72} {
			b := NewBurst(chips)
			data, corrected, err := c.Decode(b)
			if !errors.Is(err, ErrGeometry) {
				t.Errorf("%v: Decode(%d-chip burst) err = %v, want ErrGeometry", s, chips, err)
			}
			if data != nil || corrected != 0 {
				t.Errorf("%v: Decode(%d-chip burst) = (%v, %d), want (nil, 0)", s, chips, data, corrected)
			}
			if c.IntegrityOK(b) {
				t.Errorf("%v: IntegrityOK(%d-chip burst) = true", s, chips)
			}
		}
		// The matching geometry still round-trips.
		payload := make([]byte, c.DataBytes())
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		data, corrected, err := c.Decode(c.Encode(payload))
		if err != nil || corrected != 0 || !bytes.Equal(data, payload) {
			t.Errorf("%v: clean round trip broken: corrected=%d err=%v", s, corrected, err)
		}
	}
}

// TestExtendedDecodeWrongGeometry covers the same bug in the large-codeword
// codec.
func TestExtendedDecodeWrongGeometry(t *testing.T) {
	e := NewExtended()
	if _, _, err := e.Decode(NewBurst(4)); !errors.Is(err, ErrGeometry) {
		t.Fatalf("Extended.Decode(4-chip burst) err = %v, want ErrGeometry", err)
	}
}

// TestBurstBitBounds pins the Bit/SetBit argument validation: out-of-range
// chip, beat, or dq must fail loudly with a descriptive panic instead of a
// raw index error (or, worse, silently aliasing another bit).
func TestBurstBitBounds(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "ecc: bit") {
				t.Errorf("%s: panic %v, want descriptive ecc bounds message", name, r)
			}
		}()
		fn()
	}
	b := NewBurst(SSCChips)
	mustPanic("chip high", func() { b.Bit(SSCChips, 0, 0) })
	mustPanic("chip negative", func() { b.Bit(-1, 0, 0) })
	mustPanic("beat high", func() { b.Bit(0, 8, 0) })
	mustPanic("beat negative", func() { b.SetBit(0, -1, 0, 1) })
	mustPanic("dq high", func() { b.SetBit(0, 0, 4, 1) })
	mustPanic("dq negative", func() { b.Bit(0, 0, -1) })
	// In-range corners stay usable.
	b.SetBit(SSCChips-1, 7, 3, 1)
	if b.Bit(SSCChips-1, 7, 3) != 1 {
		t.Fatal("corner bit did not round-trip")
	}
}

// TestChipkillInconsistentCorrectionsDetected pins the burst-level policy:
// two single-symbol errors that land in *different* codewords are each
// individually correctable, but they name two different chips — outside the
// single-failing-device model — so Decode must refuse with ErrDetected
// rather than correct them.
func TestChipkillInconsistentCorrectionsDetected(t *testing.T) {
	for _, s := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(s)
		payload := make([]byte, c.DataBytes())
		for i := range payload {
			payload[i] = byte(i ^ 0x5A)
		}
		b := c.Encode(payload)
		// One bit of chip 2 in codeword 0, one bit of chip 9 in codeword 1.
		switch s {
		case SchemeSSC, SchemeSSCDSD:
			b.Chips[2][0] ^= 0x01 // byte j carries codeword j's symbol
			b.Chips[9][1] ^= 0x01
		case SchemeSSCVariant:
			b.SetBit(2, 0, 0, b.Bit(2, 0, 0)^1) // DQ j carries codeword j's symbol
			b.SetBit(9, 0, 1, b.Bit(9, 0, 1)^1)
		}
		if _, _, err := c.Decode(b); !errors.Is(err, ErrDetected) {
			t.Errorf("%v: cross-chip corrections err = %v, want ErrDetected", s, err)
		}
		// The same two errors on ONE chip stay correctable.
		b = c.Encode(payload)
		switch s {
		case SchemeSSC, SchemeSSCDSD:
			b.Chips[2][0] ^= 0x01
			b.Chips[2][1] ^= 0x01
		case SchemeSSCVariant:
			b.SetBit(2, 0, 0, b.Bit(2, 0, 0)^1)
			b.SetBit(2, 0, 1, b.Bit(2, 0, 1)^1)
		}
		data, corrected, err := c.Decode(b)
		if err != nil || corrected != 2 || !bytes.Equal(data, payload) {
			t.Errorf("%v: same-chip corrections: corrected=%d err=%v", s, corrected, err)
		}
	}
}
