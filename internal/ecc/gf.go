// Package ecc implements the error-correcting codes the paper's memory
// system depends on: Hamming SEC-DED(72,64) for desktop parts, and the
// chipkill family — SSC (single-symbol-correct) and SSC-DSD (single-symbol-
// correct double-symbol-detect) — built on Reed-Solomon codes over GF(2^8),
// plus the codeword<->burst layout schemes of Fig. 4 (a/b/c) that determine
// whether a memory design keeps codeword integrity under strided access.
package ecc

// GF256 is the finite field GF(2^8) with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by standard
// Reed-Solomon chipkill constructions.
type GF256 struct {
	exp [512]byte // exp[i] = alpha^i, doubled to avoid mod in Mul
	log [256]byte // log[exp[i]] = i; log[0] unused
}

// gf256 is the shared table instance. The tables are immutable after
// construction, so every RS code in the process can use one copy instead of
// rebuilding 768 bytes of tables per codec (which NewRS used to do once per
// fault injector per channel per run).
var gf256 = NewGF256()

// NewGF256 builds the log/antilog tables.
func NewGF256() *GF256 {
	f := &GF256{}
	x := 1
	for i := 0; i < 255; i++ {
		f.exp[i] = byte(x)
		f.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		f.exp[i] = f.exp[i-255]
	}
	return f
}

// Add returns a + b (XOR in characteristic 2).
func (f *GF256) Add(a, b byte) byte { return a ^ b }

// Mul returns a * b.
func (f *GF256) Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Div returns a / b; it panics on division by zero.
func (f *GF256) Div(a, b byte) byte {
	if b == 0 {
		panic("ecc: GF(2^8) division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+255-int(f.log[b])]
}

// Inv returns the multiplicative inverse of a; it panics on zero.
func (f *GF256) Inv(a byte) byte {
	if a == 0 {
		panic("ecc: GF(2^8) inverse of zero")
	}
	return f.exp[255-int(f.log[a])]
}

// Exp returns alpha^i for any non-negative i.
func (f *GF256) Exp(i int) byte { return f.exp[i%255] }

// Log returns log_alpha(a) in [0,255); it panics on zero.
func (f *GF256) Log(a byte) int {
	if a == 0 {
		panic("ecc: GF(2^8) log of zero")
	}
	return int(f.log[a])
}

// Pow returns a^n.
func (f *GF256) Pow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	if n == 0 {
		return 1
	}
	l := (int(f.log[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return f.exp[l]
}

// GF16 is GF(2^4) with primitive polynomial x^4 + x + 1 (0x13). The 4-bit
// chip symbols of SSC-DSD live in this field; pairs of them are packed into
// GF(2^8) symbols for the RS code, mirroring how real x4 chipkill gathers a
// chip's two beats into one code symbol.
type GF16 struct {
	exp [30]byte
	log [16]byte
}

// NewGF16 builds the log/antilog tables for GF(2^4).
func NewGF16() *GF16 {
	f := &GF16{}
	x := 1
	for i := 0; i < 15; i++ {
		f.exp[i] = byte(x)
		f.log[x] = byte(i)
		x <<= 1
		if x&0x10 != 0 {
			x ^= 0x13
		}
	}
	for i := 15; i < 30; i++ {
		f.exp[i] = f.exp[i-15]
	}
	return f
}

// Add returns a + b in GF(2^4).
func (f *GF16) Add(a, b byte) byte { return (a ^ b) & 0xF }

// Mul returns a * b in GF(2^4).
func (f *GF16) Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a&0xF])+int(f.log[b&0xF])]
}

// Inv returns the inverse of a in GF(2^4); it panics on zero.
func (f *GF16) Inv(a byte) byte {
	if a&0xF == 0 {
		panic("ecc: GF(2^4) inverse of zero")
	}
	return f.exp[15-int(f.log[a&0xF])]
}
