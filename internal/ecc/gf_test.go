package ecc

import (
	"testing"
	"testing/quick"
)

func TestGF256TableConsistency(t *testing.T) {
	f := NewGF256()
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := f.Exp(i)
		if v == 0 {
			t.Fatalf("alpha^%d = 0", i)
		}
		if seen[v] {
			t.Fatalf("alpha^%d repeats value %d", i, v)
		}
		seen[v] = true
		if f.Log(v) != i {
			t.Fatalf("log(exp(%d)) = %d", i, f.Log(v))
		}
	}
	if len(seen) != 255 {
		t.Fatalf("exp table covers %d values, want 255", len(seen))
	}
}

func TestGF256MulProperties(t *testing.T) {
	f := NewGF256()
	// Commutativity and associativity.
	if err := quick.Check(func(a, b, c byte) bool {
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}, nil); err != nil {
		t.Error(err)
	}
	// Distributivity over addition.
	if err := quick.Check(func(a, b, c byte) bool {
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}, nil); err != nil {
		t.Error(err)
	}
	// Identity and zero.
	for a := 0; a < 256; a++ {
		if f.Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for %d", a)
		}
		if f.Mul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for %d", a)
		}
	}
}

func TestGF256Inverse(t *testing.T) {
	f := NewGF256()
	for a := 1; a < 256; a++ {
		inv := f.Inv(byte(a))
		if f.Mul(byte(a), inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d (inv=%d)", a, inv)
		}
		if f.Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,a) != Inv(a) for a=%d", a)
		}
	}
}

func TestGF256DivMulRoundTrip(t *testing.T) {
	f := NewGF256()
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return f.Mul(f.Div(a, b), b) == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGF256Pow(t *testing.T) {
	f := NewGF256()
	for a := 0; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := f.Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = f.Mul(want, byte(a))
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 should be 1 by convention")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 should be 0")
	}
}

func TestGF256PanicsOnZeroDivision(t *testing.T) {
	f := NewGF256()
	for name, fn := range map[string]func(){
		"Div": func() { f.Div(3, 0) },
		"Inv": func() { f.Inv(0) },
		"Log": func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGF16FieldAxioms(t *testing.T) {
	f := NewGF16()
	for a := byte(0); a < 16; a++ {
		if f.Mul(a, 1) != a {
			t.Fatalf("a*1 != a for %d", a)
		}
		for b := byte(0); b < 16; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			for c := byte(0); c < 16; c++ {
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
	for a := byte(1); a < 16; a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("inverse fails for %d", a)
		}
	}
}

func TestGF16GeneratorOrder(t *testing.T) {
	f := NewGF16()
	seen := make(map[byte]bool)
	for i := 0; i < 15; i++ {
		seen[f.exp[i]] = true
	}
	if len(seen) != 15 {
		t.Fatalf("generator generates %d elements, want 15", len(seen))
	}
}
