package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPayload(rng *rand.Rand, n int) []byte {
	p := make([]byte, n)
	rng.Read(p)
	return p
}

func TestChipkillRoundTripAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, scheme := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(scheme)
		for trial := 0; trial < 100; trial++ {
			data := randomPayload(rng, c.DataBytes())
			b := c.Encode(data)
			got, corrected, err := c.Decode(b)
			if err != nil {
				t.Fatalf("%v trial %d: %v", scheme, trial, err)
			}
			if corrected != 0 {
				t.Fatalf("%v trial %d: spurious corrections", scheme, trial)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v trial %d: data mismatch", scheme, trial)
			}
		}
	}
}

func TestChipkillSurvivesDeadChip(t *testing.T) {
	// The chipkill promise: kill any ONE chip's contribution to a burst and
	// every scheme still recovers the data exactly.
	rng := rand.New(rand.NewSource(13))
	for _, scheme := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(scheme)
		for chip := 0; chip < c.Chips(); chip++ {
			data := randomPayload(rng, c.DataBytes())
			b := c.Encode(data)
			b.CorruptChip(chip, byte(1+rng.Intn(255)))
			got, corrected, err := c.Decode(b)
			if err != nil {
				t.Fatalf("%v chip %d: decode failed: %v", scheme, chip, err)
			}
			if corrected == 0 {
				t.Fatalf("%v chip %d: corruption went unnoticed", scheme, chip)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v chip %d: wrong data after correction", scheme, chip)
			}
		}
	}
}

func TestChipkillDetectsTwoDeadChipsDSD(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewChipkill(SchemeSSCDSD)
	for trial := 0; trial < 50; trial++ {
		data := randomPayload(rng, c.DataBytes())
		b := c.Encode(data)
		c1 := rng.Intn(c.Chips())
		c2 := (c1 + 1 + rng.Intn(c.Chips()-1)) % c.Chips()
		b.CorruptChip(c1, byte(1+rng.Intn(255)))
		b.CorruptChip(c2, byte(1+rng.Intn(255)))
		_, _, err := c.Decode(b)
		if err != ErrDetected {
			t.Fatalf("trial %d: two dead chips not detected (err=%v)", trial, err)
		}
	}
}

func TestChipkillVariantSurvivesAllDQFailure(t *testing.T) {
	// Fig. 4c's selling point: with lane-wise symbols, one chip failing on
	// ALL four DQs puts exactly one bad symbol in each of the four
	// codewords, so the burst corrects four symbol errors total.
	rng := rand.New(rand.NewSource(19))
	c := NewChipkill(SchemeSSCVariant)
	data := randomPayload(rng, 64)
	b := c.Encode(data)
	b.CorruptChip(7, 0xA5)
	got, corrected, err := c.Decode(b)
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if corrected != 4 {
		t.Fatalf("corrected %d symbols, want 4 (one per codeword)", corrected)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data")
	}
}

func TestGSDRAMStridedBurstBreaksIntegrity(t *testing.T) {
	// Executable version of Section 3.3.1: gather 16 different rows'
	// same-chip data into one burst and the codewords no longer verify,
	// because the check chips can only speak for one row.
	rng := rand.New(rand.NewSource(23))
	c := NewChipkill(SchemeSSC)
	rows := make([]*Burst, SSCDataChips)
	for i := range rows {
		rows[i] = c.Encode(randomPayload(rng, 64))
	}
	gathered := GSDRAMStridedBurst(rows)
	if c.IntegrityOK(gathered) {
		t.Fatal("GS-DRAM strided burst unexpectedly passed chipkill verification")
	}
	// Whereas a straight single-row burst verifies.
	if !c.IntegrityOK(rows[3]) {
		t.Fatal("single-row burst should verify")
	}
}

func TestGSDRAMStridedBurstIdenticalRowsDegenerate(t *testing.T) {
	// Degenerate sanity case: if all sixteen rows hold identical data the
	// gathered burst is a real codeword again.
	c := NewChipkill(SchemeSSC)
	data := bytes.Repeat([]byte{0x5A}, 64)
	rows := make([]*Burst, SSCDataChips)
	for i := range rows {
		rows[i] = c.Encode(data)
	}
	if !c.IntegrityOK(GSDRAMStridedBurst(rows)) {
		t.Fatal("identical-row gather should trivially verify")
	}
}

func TestBurstBitAccessors(t *testing.T) {
	b := NewBurst(18)
	for chip := 0; chip < 18; chip += 5 {
		for beat := 0; beat < 8; beat++ {
			for dq := 0; dq < 4; dq++ {
				b.SetBit(chip, beat, dq, 1)
				if b.Bit(chip, beat, dq) != 1 {
					t.Fatalf("bit chip=%d beat=%d dq=%d not set", chip, beat, dq)
				}
				b.SetBit(chip, beat, dq, 0)
				if b.Bit(chip, beat, dq) != 0 {
					t.Fatalf("bit chip=%d beat=%d dq=%d not cleared", chip, beat, dq)
				}
			}
		}
	}
}

func TestChipkillVariantLayoutIsTransposed(t *testing.T) {
	// In the variant layout, codeword j must occupy DQ j: flipping a single
	// DQ lane bit corrupts exactly one codeword.
	c := NewChipkill(SchemeSSCVariant)
	data := make([]byte, 64)
	b := c.Encode(data)
	b.SetBit(4, 3, 2, 1) // chip 4, beat 3, DQ 2
	bad := 0
	for j := 0; j < 4; j++ {
		syn := c.rs.Syndromes(c.extractCodeword(b, j))
		for _, s := range syn {
			if s != 0 {
				bad++
				break
			}
		}
	}
	if bad != 1 {
		t.Fatalf("single DQ-lane flip corrupted %d codewords, want exactly 1", bad)
	}
}

func TestChipkillPropertySingleChipAnyScheme(t *testing.T) {
	type input struct {
		Seed int64
		Chip uint8
		Junk byte
	}
	for _, scheme := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(scheme)
		f := func(in input) bool {
			if in.Junk == 0 {
				return true
			}
			rng := rand.New(rand.NewSource(in.Seed))
			data := randomPayload(rng, c.DataBytes())
			b := c.Encode(data)
			b.CorruptChip(int(in.Chip)%c.Chips(), in.Junk)
			got, _, err := c.Decode(b)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[Scheme]string{
		SchemeSSC:        "SSC",
		SchemeSSCVariant: "SSC-variant",
		SchemeSSCDSD:     "SSC-DSD",
		Scheme(99):       "Scheme(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func BenchmarkChipkillEncodeSSC(b *testing.B) {
	c := NewChipkill(SchemeSSC)
	data := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkChipkillDecodeDeadChip(b *testing.B) {
	c := NewChipkill(SchemeSSC)
	data := make([]byte, 64)
	clean := c.Encode(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		burst := NewBurst(c.Chips())
		copy(burst.Chips, clean.Chips)
		burst.CorruptChip(9, 0x3C)
		if _, _, err := c.Decode(burst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChipkillEncodeIntoSSC(b *testing.B) {
	c := NewChipkill(SchemeSSC)
	data := make([]byte, 64)
	burst := NewBurst(c.Chips())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(burst, data)
	}
}

func BenchmarkChipkillDecodeIntoDeadChip(b *testing.B) {
	c := NewChipkill(SchemeSSC)
	data := make([]byte, 64)
	clean := c.Encode(data)
	burst := NewBurst(c.Chips())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(burst.Chips, clean.Chips)
		burst.CorruptChip(9, 0x3C)
		if _, err := c.DecodeInto(data, burst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExtendedRoundTrip(t *testing.T) {
	e := NewExtended()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		data := randomPayload(rng, 64)
		got, n, err := e.Decode(e.Encode(data))
		if err != nil || n != 0 || !bytes.Equal(got, data) {
			t.Fatalf("trial %d: n=%d err=%v", trial, n, err)
		}
	}
}

func TestExtendedSurvivesDeadChip(t *testing.T) {
	// The large codeword's selling point: a dead chip is four symbol
	// errors in ONE codeword, and distance 9 corrects all four at once.
	e := NewExtended()
	rng := rand.New(rand.NewSource(43))
	for chip := 0; chip < SSCChips; chip++ {
		data := randomPayload(rng, 64)
		b := e.Encode(data)
		b.CorruptChip(chip, byte(1+rng.Intn(255)))
		got, n, err := e.Decode(b)
		if err != nil {
			t.Fatalf("chip %d: %v", chip, err)
		}
		if n == 0 || n > 4 {
			t.Fatalf("chip %d: corrected %d symbols", chip, n)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("chip %d: wrong data", chip)
		}
	}
}

func TestExtendedBeyondOneChipDetected(t *testing.T) {
	// Two dead chips = 8 symbol errors > t=4: must be detected, never
	// miscorrected silently.
	e := NewExtended()
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		data := randomPayload(rng, 64)
		b := e.Encode(data)
		c1 := rng.Intn(SSCChips)
		c2 := (c1 + 1 + rng.Intn(SSCChips-1)) % SSCChips
		b.CorruptChip(c1, byte(1+rng.Intn(255)))
		b.CorruptChip(c2, byte(1+rng.Intn(255)))
		got, _, err := e.Decode(b)
		if err == nil && !bytes.Equal(got, data) {
			t.Fatalf("trial %d: silent miscorrection", trial)
		}
	}
}
