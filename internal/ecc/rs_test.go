package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRSEncodeProducesValidCodeword(t *testing.T) {
	rs := NewRS(18, 16, 1)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 16)
		rng.Read(data)
		cw := rs.Encode(data)
		if len(cw) != 18 {
			t.Fatalf("codeword length %d, want 18", len(cw))
		}
		if !bytes.Equal(cw[:16], data) {
			t.Fatal("code is not systematic")
		}
		for i, s := range rs.Syndromes(cw) {
			if s != 0 {
				t.Fatalf("syndrome %d nonzero for fresh codeword", i)
			}
		}
	}
}

func TestRSCorrectsSingleSymbol(t *testing.T) {
	rs := NewRS(18, 16, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, 16)
		rng.Read(data)
		cw := rs.Encode(data)
		orig := append([]byte(nil), cw...)
		pos := rng.Intn(18)
		cw[pos] ^= byte(1 + rng.Intn(255))
		n, err := rs.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d: decode failed: %v", trial, err)
		}
		if n != 1 {
			t.Fatalf("trial %d: corrected %d symbols, want 1", trial, n)
		}
		if !bytes.Equal(cw, orig) {
			t.Fatalf("trial %d: decode did not restore codeword", trial)
		}
	}
}

func TestRSDetectsDoubleSymbolUnderPolicy(t *testing.T) {
	// MaxCorrect=1 with 2 check symbols: two-symbol errors must never be
	// silently "corrected" into the wrong codeword... with only d=3 a
	// 2-error can alias to a different codeword's 1-error ball, so we only
	// require that it never returns the original data unchanged silently.
	rs := NewRS(36, 32, 1) // d=5: two errors are always detectable with t=1 policy
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		cw := rs.Encode(data)
		p1 := rng.Intn(36)
		p2 := (p1 + 1 + rng.Intn(35)) % 36
		cw[p1] ^= byte(1 + rng.Intn(255))
		cw[p2] ^= byte(1 + rng.Intn(255))
		_, err := rs.Decode(cw)
		if err != ErrDetected {
			t.Fatalf("trial %d: double-symbol error not detected (err=%v)", trial, err)
		}
	}
}

func TestRSFullPowerCorrectsTwoSymbols(t *testing.T) {
	rs := NewRS(36, 32, 0) // full power: t = 2
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, 32)
		rng.Read(data)
		cw := rs.Encode(data)
		orig := append([]byte(nil), cw...)
		p1 := rng.Intn(36)
		p2 := (p1 + 1 + rng.Intn(35)) % 36
		cw[p1] ^= byte(1 + rng.Intn(255))
		cw[p2] ^= byte(1 + rng.Intn(255))
		n, err := rs.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d: decode failed: %v", trial, err)
		}
		if n != 2 {
			t.Fatalf("trial %d: corrected %d, want 2", trial, n)
		}
		if !bytes.Equal(cw, orig) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestRSZeroErrorFastPath(t *testing.T) {
	rs := NewRS(18, 16, 1)
	data := make([]byte, 16)
	cw := rs.Encode(data)
	n, err := rs.Decode(cw)
	if n != 0 || err != nil {
		t.Fatalf("clean codeword: n=%d err=%v", n, err)
	}
}

func TestRSPropertyRoundTrip(t *testing.T) {
	rs := NewRS(18, 16, 1)
	f := func(data [16]byte, pos uint8, flip byte) bool {
		cw := rs.Encode(data[:])
		if flip == 0 {
			n, err := rs.Decode(cw)
			return n == 0 && err == nil && bytes.Equal(cw[:16], data[:])
		}
		cw[int(pos)%18] ^= flip
		n, err := rs.Decode(cw)
		return err == nil && n == 1 && bytes.Equal(cw[:16], data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRSGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{16, 16}, {10, 12}, {300, 200}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRS(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewRS(bad[0], bad[1], 1)
		}()
	}
}

func TestRSEncodeLengthValidation(t *testing.T) {
	rs := NewRS(18, 16, 1)
	defer func() {
		if recover() == nil {
			t.Error("Encode with wrong length did not panic")
		}
	}()
	rs.Encode(make([]byte, 10))
}

func BenchmarkRSEncodeSSC(b *testing.B) {
	rs := NewRS(18, 16, 1)
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i * 37)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs.Encode(data)
	}
}

func BenchmarkRSDecodeSingleError(b *testing.B) {
	rs := NewRS(18, 16, 1)
	data := make([]byte, 16)
	cw := rs.Encode(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cw[5] ^= 0x42
		if _, err := rs.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
