package ecc

import "math/bits"

// SECDED implements the (72,64) single-error-correct double-error-detect
// Hamming code used by desktop ECC DIMMs (Fig. 4a): 8 check bits protect a
// 64-bit word. The construction is an extended Hamming code — check bits
// c0..c6 at power-of-two positions of a 127-bit layout plus an overall
// parity bit for double-error detection.
type SECDED struct{}

// dataPos[i] is the 1-based Hamming position of data bit i in the 72-bit
// layout (positions that are not powers of two).
var dataPos [64]int

func init() {
	idx := 0
	for pos := 1; idx < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two -> check bit
			continue
		}
		dataPos[idx] = pos
		idx++
	}
}

// Codeword72 is a SEC-DED codeword: 64 data bits plus 8 check bits.
type Codeword72 struct {
	Data  uint64
	Check uint8 // bit 0..6: Hamming checks c1,c2,c4,...; bit 7: overall parity
}

// Encode computes the check byte for the data word.
func (SECDED) Encode(data uint64) Codeword72 {
	var check uint8
	for c := 0; c < 7; c++ {
		mask := 1 << c
		var p uint
		for i := 0; i < 64; i++ {
			if dataPos[i]&mask != 0 {
				p ^= uint(data>>i) & 1
			}
		}
		check |= uint8(p) << c
	}
	// Overall parity over data + hamming checks (even parity).
	overall := uint(bits.OnesCount64(data)+bits.OnesCount8(check)) & 1
	check |= uint8(overall) << 7
	return Codeword72{Data: data, Check: check}
}

// DecodeResult describes the outcome of a SEC-DED decode.
type DecodeResult int

// Decode outcomes.
const (
	NoError DecodeResult = iota
	CorrectedSingle
	DetectedDouble
)

// Decode checks and (for single-bit errors) corrects the codeword in place.
func (s SECDED) Decode(cw *Codeword72) DecodeResult {
	// Syndrome: Hamming checks recomputed from received data vs. received
	// check bits. Total parity: over the entire received 72-bit word — odd
	// means an odd number of flips (single-correctable), even with nonzero
	// syndrome means a double error.
	var recomputed uint8
	for c := 0; c < 7; c++ {
		mask := 1 << c
		var p uint
		for i := 0; i < 64; i++ {
			if dataPos[i]&mask != 0 {
				p ^= uint(cw.Data>>i) & 1
			}
		}
		recomputed |= uint8(p) << c
	}
	syndrome := (recomputed ^ cw.Check) & 0x7F
	parityErr := (bits.OnesCount64(cw.Data)+bits.OnesCount8(cw.Check))&1 != 0

	switch {
	case syndrome == 0 && !parityErr:
		return NoError
	case syndrome == 0 && parityErr:
		// Overall parity bit itself flipped.
		cw.Check ^= 0x80
		return CorrectedSingle
	case parityErr:
		// Odd number of flips with nonzero syndrome: single-bit error.
		pos := int(syndrome)
		if pos&(pos-1) == 0 {
			// A check bit flipped.
			c := bits.TrailingZeros(uint(pos))
			cw.Check ^= 1 << c
			return CorrectedSingle
		}
		for i := 0; i < 64; i++ {
			if dataPos[i] == pos {
				cw.Data ^= 1 << i
				return CorrectedSingle
			}
		}
		return DetectedDouble // syndrome points outside the layout
	default:
		// Nonzero syndrome with even parity: double-bit error.
		return DetectedDouble
	}
}
