package ecc

import (
	"bytes"
	"testing"
)

// fuzzPayload expands a seed into a deterministic payload (splitmix64).
func fuzzPayload(seed uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = byte(z ^ (z >> 31))
	}
	return out
}

// FuzzChipkillDecode throws arbitrary corruption at every chipkill scheme and
// checks the decode contract:
//   - never panics, whatever the corruption;
//   - clean bursts round-trip with zero corrections;
//   - a single corrupted chip is always corrected back to the payload;
//   - within SSC-DSD's guaranteed envelope (distance 5, up to 3 chips hit,
//     MaxCorrect=1) a multi-chip error is NEVER silently miscorrected: the
//     decoder errors or returns the exact payload;
//   - for the distance-3 SSC layouts, 2-chip detection is only
//     probabilistic — a 2-symbol error can be byte-identical to "other
//     codeword + 1 symbol error" (~7% of patterns), which no decoder can
//     distinguish. The oracle instead pins what IS guaranteed: whenever
//     Decode accepts a burst, the data it returns must be self-consistent,
//     i.e. re-encoding it reproduces the received burst up to the single
//     chip the decoder claims to have corrected. A violation means a real
//     decoder bug (bad Forney magnitude, wrong position, missed residual
//     check), not an inherent code limit.
func FuzzChipkillDecode(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint8(0), uint8(0), byte(0), byte(0), []byte{})
	f.Add(uint8(0), uint64(2), uint8(3), uint8(3), byte(0xA5), byte(0), []byte{})
	f.Add(uint8(1), uint64(3), uint8(7), uint8(9), byte(0x01), byte(0x80), []byte{})
	f.Add(uint8(2), uint64(4), uint8(35), uint8(0), byte(0xFF), byte(0x10), []byte{1, 0, 0, 0, 2})
	f.Add(uint8(2), uint64(5), uint8(11), uint8(12), byte(0x42), byte(0x42), []byte{0xFF})
	f.Fuzz(func(t *testing.T, schemeSel uint8, seed uint64, c0, c1 uint8, g0, g1 byte, raw []byte) {
		scheme := Scheme(int(schemeSel) % 3)
		codec := NewChipkill(scheme)
		payload := fuzzPayload(seed, codec.DataBytes())
		clean := codec.Encode(payload)
		b := codec.Encode(payload)

		// Structured whole-chip corruption plus arbitrary byte-level XOR.
		if g0 != 0 {
			b.CorruptChip(int(c0)%codec.Chips(), g0)
		}
		if g1 != 0 {
			b.CorruptChip(int(c1)%codec.Chips(), g1)
		}
		span := codec.Chips() * BytesPerChip
		for i, v := range raw {
			if i >= span {
				break
			}
			b.Chips[i/BytesPerChip][i%BytesPerChip] ^= v
		}

		// Ground truth: which chips actually differ from the clean burst.
		hit := 0
		for ch := range b.Chips {
			if b.Chips[ch] != clean.Chips[ch] {
				hit++
			}
		}

		data, corrected, err := codec.Decode(b)
		switch {
		case hit == 0:
			if err != nil || corrected != 0 || !bytes.Equal(data, payload) {
				t.Fatalf("%v: clean burst: corrected=%d err=%v", scheme, corrected, err)
			}
		case hit == 1:
			if err != nil {
				t.Fatalf("%v: single corrupted chip not corrected: %v", scheme, err)
			}
			if !bytes.Equal(data, payload) {
				t.Fatalf("%v: single corrupted chip decoded to wrong data", scheme)
			}
		default:
			if err == nil && !bytes.Equal(data, payload) {
				if scheme == SchemeSSCDSD && hit <= 3 {
					t.Fatalf("%v: silent miscorrection with %d chips hit — inside the distance-5 guarantee", scheme, hit)
				}
				// Inherent-miscorrection envelope: the accepted data must
				// still be explainable as at most one chip error on the
				// burst we handed in.
				enc := codec.Encode(data)
				diff := 0
				for ch := range enc.Chips {
					if enc.Chips[ch] != b.Chips[ch] {
						diff++
					}
				}
				if diff > 1 {
					t.Fatalf("%v: accepted data is %d chips away from the received burst, want <= 1", scheme, diff)
				}
			}
		}
	})
}

// FuzzRSDecode drives the raw RS decoder (all three deployed geometries) with
// arbitrary received words: it must never panic, never accept an invalid
// codeword, never claim more corrections than its policy allows, and always
// round-trip freshly encoded data.
func FuzzRSDecode(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{1, 2, 3})
	f.Add(uint8(2), bytes.Repeat([]byte{0xAB}, 72))
	f.Fuzz(func(t *testing.T, geom uint8, raw []byte) {
		var r *RS
		switch geom % 3 {
		case 0:
			r = NewRS(SSCChips, SSCDataChips, 1)
		case 1:
			r = NewRS(SSCDSDChips, SSCDSDDataChips, 1)
		case 2:
			r = NewRS(72, 64, 4) // the Extended large-codeword geometry
		}
		recv := make([]byte, r.N())
		copy(recv, raw)
		orig := append([]byte(nil), recv...)

		corrected, err := r.Decode(recv)
		if err == nil {
			if corrected > r.MaxCorrect {
				t.Fatalf("corrected %d > MaxCorrect %d", corrected, r.MaxCorrect)
			}
			for _, s := range r.Syndromes(recv) {
				if s != 0 {
					t.Fatal("Decode accepted a word with nonzero residual syndromes")
				}
			}
			diff := 0
			for i := range recv {
				if recv[i] != orig[i] {
					diff++
				}
			}
			if diff != corrected {
				t.Fatalf("changed %d symbols but reported %d corrections", diff, corrected)
			}
		}

		// Clean encode/decode round trip from the same fuzz bytes.
		data := make([]byte, r.K())
		copy(data, raw)
		cw := r.Encode(data)
		n, err := r.Decode(cw)
		if n != 0 || err != nil {
			t.Fatalf("fresh codeword: corrected=%d err=%v", n, err)
		}
		if !bytes.Equal(cw[:r.K()], data) {
			t.Fatal("fresh codeword data slot mutated")
		}
	})
}
