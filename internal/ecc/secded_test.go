package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSECDEDCleanWord(t *testing.T) {
	var s SECDED
	for _, v := range []uint64{0, 1, ^uint64(0), 0xDEADBEEFCAFEF00D} {
		cw := s.Encode(v)
		if r := s.Decode(&cw); r != NoError {
			t.Fatalf("clean word %x decoded as %v", v, r)
		}
		if cw.Data != v {
			t.Fatalf("clean decode changed data")
		}
	}
}

func TestSECDEDCorrectsEverySingleDataBit(t *testing.T) {
	var s SECDED
	v := uint64(0x0123456789ABCDEF)
	for bit := 0; bit < 64; bit++ {
		cw := s.Encode(v)
		cw.Data ^= 1 << bit
		if r := s.Decode(&cw); r != CorrectedSingle {
			t.Fatalf("bit %d: result %v, want CorrectedSingle", bit, r)
		}
		if cw.Data != v {
			t.Fatalf("bit %d: data not restored", bit)
		}
	}
}

func TestSECDEDCorrectsEveryCheckBit(t *testing.T) {
	var s SECDED
	v := uint64(0xFEDCBA9876543210)
	for bit := 0; bit < 8; bit++ {
		cw := s.Encode(v)
		cw.Check ^= 1 << bit
		if r := s.Decode(&cw); r != CorrectedSingle {
			t.Fatalf("check bit %d: result %v, want CorrectedSingle", bit, r)
		}
		if cw.Data != v {
			t.Fatalf("check bit %d: data corrupted", bit)
		}
		want := s.Encode(v)
		if cw.Check != want.Check {
			t.Fatalf("check bit %d: check not restored", bit)
		}
	}
}

func TestSECDEDDetectsDoubleBit(t *testing.T) {
	var s SECDED
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		v := rng.Uint64()
		cw := s.Encode(v)
		// Flip two distinct bits anywhere in the 72-bit codeword.
		b1 := rng.Intn(72)
		b2 := (b1 + 1 + rng.Intn(71)) % 72
		flip := func(b int) {
			if b < 64 {
				cw.Data ^= 1 << b
			} else {
				cw.Check ^= 1 << (b - 64)
			}
		}
		flip(b1)
		flip(b2)
		if r := s.Decode(&cw); r != DetectedDouble {
			t.Fatalf("trial %d (bits %d,%d): result %v, want DetectedDouble", trial, b1, b2, r)
		}
	}
}

func TestSECDEDPropertySingleBit(t *testing.T) {
	var s SECDED
	f := func(v uint64, bit uint8) bool {
		cw := s.Encode(v)
		b := int(bit) % 72
		if b < 64 {
			cw.Data ^= 1 << b
		} else {
			cw.Check ^= 1 << (b - 64)
		}
		return s.Decode(&cw) == CorrectedSingle && cw.Data == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSECDEDCheckBitsDifferAcrossData(t *testing.T) {
	// Distinct single-bit data patterns must yield distinct syndromes;
	// this is what makes single-bit correction unambiguous.
	var s SECDED
	seen := make(map[uint8]int)
	for bit := 0; bit < 64; bit++ {
		cw := s.Encode(1 << bit)
		base := s.Encode(0)
		syn := (cw.Check ^ base.Check) & 0x7F
		if prev, dup := seen[syn]; dup {
			t.Fatalf("bits %d and %d share syndrome %02x", prev, bit, syn)
		}
		seen[syn] = bit
	}
}

func BenchmarkSECDEDEncode(b *testing.B) {
	var s SECDED
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
}
