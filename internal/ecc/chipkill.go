package ecc

import (
	"errors"
	"fmt"
)

// This file models how chipkill codewords are laid out across the chips and
// beats of a memory burst (Fig. 4), which is the crux of the paper's
// reliability argument: a design is chipkill-compatible exactly when every
// burst it produces carries whole codewords.
//
// A burst is what one BL8 transfer delivers: for a rank of x4 chips, each
// chip contributes 4 bits x 8 beats = 32 bits. We model it as a per-chip
// 4-byte word with bit (beat*4 + dq) of the word carrying DQ dq at beat.

// Burst geometry for the SSC rank (16 data + 2 check chips).
const (
	SSCChips     = 18
	SSCDataChips = 16
	// SSCDSDChips is the doubled-channel geometry (32 data + 4 check).
	SSCDSDChips     = 36
	SSCDSDDataChips = 32
	BytesPerChip    = 4 // 4 DQ x 8 beats = 32 bits
)

// Burst holds the raw bits one BL8 transfer moves, per chip.
type Burst struct {
	Chips [][BytesPerChip]byte
}

// NewBurst allocates an all-zero burst for the given chip count.
func NewBurst(chips int) *Burst {
	return &Burst{Chips: make([][BytesPerChip]byte, chips)}
}

// Reset zeroes every chip plane, returning the burst to its freshly
// allocated state. Decode mutates bursts in place (corrections) and fault
// injection corrupts them, so any reuse path must Reset first — a recycled
// burst otherwise leaks the previous transfer's fault pattern into the next
// decode.
func (b *Burst) Reset() {
	for i := range b.Chips {
		b.Chips[i] = [BytesPerChip]byte{}
	}
}

// BurstPool is a free list of Bursts keyed by chip count, for steady-state
// burst reuse on the fault-injection and rank-model hot paths. Get returns a
// zeroed burst (recycled bursts carry the prior transfer's corruption, so
// the Get path always Resets); Put recycles a burst of any geometry. The
// pool is not goroutine-safe: like the codecs, one pool belongs to one
// injector or rank model.
type BurstPool struct {
	free map[int][]*Burst
}

// Get returns an all-zero burst with the given chip count, reusing a
// recycled one when available.
func (p *BurstPool) Get(chips int) *Burst {
	if list := p.free[chips]; len(list) > 0 {
		b := list[len(list)-1]
		p.free[chips] = list[:len(list)-1]
		b.Reset()
		return b
	}
	return NewBurst(chips)
}

// Put recycles a burst for a later Get of the same chip count.
func (p *BurstPool) Put(b *Burst) {
	if b == nil {
		return
	}
	if p.free == nil {
		p.free = make(map[int][]*Burst)
	}
	p.free[len(b.Chips)] = append(p.free[len(b.Chips)], b)
}

// checkBit validates a (chip, beat, dq) coordinate against the burst shape:
// 8 beats and 4 DQs per chip, chip within the burst's rank width.
func (b *Burst) checkBit(chip, beat, dq int) {
	if chip < 0 || chip >= len(b.Chips) || beat < 0 || beat >= 8 || dq < 0 || dq >= 4 {
		panic(fmt.Sprintf("ecc: bit (chip=%d, beat=%d, dq=%d) outside %d-chip BL8 burst",
			chip, beat, dq, len(b.Chips)))
	}
}

// Bit returns DQ dq of chip at the given beat.
func (b *Burst) Bit(chip, beat, dq int) byte {
	b.checkBit(chip, beat, dq)
	idx := beat*4 + dq
	return (b.Chips[chip][idx/8] >> (idx % 8)) & 1
}

// SetBit sets DQ dq of chip at the given beat.
func (b *Burst) SetBit(chip, beat, dq int, v byte) {
	b.checkBit(chip, beat, dq)
	idx := beat*4 + dq
	if v&1 != 0 {
		b.Chips[chip][idx/8] |= 1 << (idx % 8)
	} else {
		b.Chips[chip][idx/8] &^= 1 << (idx % 8)
	}
}

// CorruptChip overwrites every bit a chip contributes, simulating a dead
// chip for the burst (the chipkill failure model).
func (b *Burst) CorruptChip(chip int, garbage byte) {
	for i := range b.Chips[chip] {
		b.Chips[chip][i] ^= garbage
		garbage = garbage<<1 | garbage>>7 // vary per byte, never identity for nonzero
	}
}

// Scheme identifies a codeword layout from Fig. 4.
type Scheme int

// Layout schemes.
const (
	// SchemeSSC (Fig. 4b): one 8-bit symbol per chip per two beats; a burst
	// carries four 18-symbol codewords; the default server layout with
	// critical-word-first.
	SchemeSSC Scheme = iota
	// SchemeSSCVariant (Fig. 4c): one 8-bit symbol per DQ across the whole
	// burst (lane-wise); the layout SAM-IO's transposed data uses.
	SchemeSSCVariant
	// SchemeSSCDSD: doubled channel of 36 x4 chips; 4-bit beat symbols,
	// paired across two beats into GF(2^8) RS symbols; corrects one chip,
	// detects two.
	SchemeSSCDSD
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeSSC:
		return "SSC"
	case SchemeSSCVariant:
		return "SSC-variant"
	case SchemeSSCDSD:
		return "SSC-DSD"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Chipkill encodes/decodes bursts under one of the Fig. 4 layouts.
//
// The codec owns a codeword scratch buffer (and its RS code owns the
// decoder workspaces), so EncodeInto/DecodeInto are allocation-free — and a
// Chipkill is therefore NOT goroutine-safe. One codec per injector/channel,
// per rank model, or per goroutine.
type Chipkill struct {
	Scheme Scheme
	rs     *RS
	cw     []byte // codeword scratch, n symbols
}

// NewChipkill builds a codec for the scheme.
func NewChipkill(s Scheme) *Chipkill {
	c := &Chipkill{Scheme: s}
	switch s {
	case SchemeSSC, SchemeSSCVariant:
		c.rs = NewRS(SSCChips, SSCDataChips, 1)
	case SchemeSSCDSD:
		c.rs = NewRS(SSCDSDChips, SSCDSDDataChips, 1)
	default:
		panic("ecc: unknown chipkill scheme")
	}
	c.cw = make([]byte, c.rs.N())
	return c
}

// DataBytes returns the data payload a single burst carries under the
// scheme (64 for single-width SSC layouts, 128 for the doubled channel).
func (c *Chipkill) DataBytes() int {
	if c.Scheme == SchemeSSCDSD {
		return 128
	}
	return 64
}

// Chips returns the rank width in chips.
func (c *Chipkill) Chips() int {
	if c.Scheme == SchemeSSCDSD {
		return SSCDSDChips
	}
	return SSCChips
}

// CodewordsPerBurst returns how many codewords one burst carries (4 for
// every scheme here).
func (c *Chipkill) CodewordsPerBurst() int { return 4 }

// Encode lays out data (len == DataBytes()) plus freshly computed check
// symbols into a burst.
func (c *Chipkill) Encode(data []byte) *Burst {
	b := NewBurst(c.Chips())
	c.EncodeInto(b, data)
	return b
}

// EncodeInto is Encode with a caller-provided burst: it lays data plus
// freshly computed check symbols into b, overwriting every bit, with no
// allocation. b must carry the scheme's chip count.
func (c *Chipkill) EncodeInto(b *Burst, data []byte) {
	if len(data) != c.DataBytes() {
		panic(fmt.Sprintf("ecc: Encode wants %d bytes, got %d", c.DataBytes(), len(data)))
	}
	if len(b.Chips) != c.Chips() {
		panic(fmt.Sprintf("ecc: EncodeInto wants a %d-chip burst, got %d", c.Chips(), len(b.Chips)))
	}
	k := c.rs.K()
	for j := 0; j < c.CodewordsPerBurst(); j++ {
		c.rs.EncodeInto(c.cw, data[j*k:(j+1)*k])
		c.placeCodeword(b, j, c.cw)
	}
}

// ErrGeometry reports a burst whose chip count does not match the codec's
// scheme; such a burst cannot hold the scheme's codewords at all.
var ErrGeometry = errors.New("ecc: burst geometry does not match scheme")

// Decode extracts and corrects the burst's codewords, returning the data
// payload, the total number of corrected symbols, and ErrDetected when any
// codeword is uncorrectable under the scheme's policy.
//
// Policy: beyond the per-codeword MaxCorrect=1 bound, all corrections within
// one burst must name the same chip. The chipkill fault model is a single
// failing device; corrections scattered across different chips mean the burst
// was hit by something the model does not cover, and letting each codeword
// "fix" its own chip is exactly the miscorrection path a DUE should close.
// Inconsistent corrections therefore return ErrDetected.
func (c *Chipkill) Decode(b *Burst) (data []byte, corrected int, err error) {
	data = make([]byte, c.DataBytes())
	corrected, err = c.DecodeInto(data, b)
	if err != nil {
		return nil, corrected, err
	}
	return data, corrected, nil
}

// DecodeInto is Decode with a caller-provided payload buffer (len ==
// DataBytes()): it extracts and corrects the burst's codewords into data
// with no allocation, returning the total corrected symbol count and the
// same errors — ErrGeometry for a wrong-shape burst, ErrDetected under the
// burst-consistency policy documented on Decode. On error, data holds the
// partially scattered payload and must not be used.
func (c *Chipkill) DecodeInto(data []byte, b *Burst) (corrected int, err error) {
	if len(b.Chips) != c.Chips() {
		return 0, ErrGeometry
	}
	if len(data) != c.DataBytes() {
		panic(fmt.Sprintf("ecc: DecodeInto wants a %d-byte buffer, got %d", c.DataBytes(), len(data)))
	}
	errChip := -1
	for j := 0; j < c.CodewordsPerBurst(); j++ {
		c.extractCodewordInto(c.cw, b, j)
		pos, derr := c.rs.decodeReport(c.cw)
		if derr != nil {
			return corrected, derr
		}
		for _, p := range pos {
			// Codeword symbol index == chip index for every scheme here.
			if errChip == -1 {
				errChip = p
			} else if errChip != p {
				return corrected, ErrDetected
			}
		}
		corrected += len(pos)
		c.scatterData(data, j, c.cw)
	}
	return corrected, nil
}

// scatterData writes codeword j's (corrected) data symbols back into the
// payload buffer.
func (c *Chipkill) scatterData(data []byte, j int, cw []byte) {
	k := c.rs.K()
	copy(data[j*k:(j+1)*k], cw[:k])
}

// placeCodeword writes an n-symbol codeword into the burst per the scheme.
func (c *Chipkill) placeCodeword(b *Burst, j int, cw []byte) {
	switch c.Scheme {
	case SchemeSSC, SchemeSSCDSD:
		// Symbol of chip ch = its two beats 2j and 2j+1 (byte j of the
		// chip's 32-bit burst word).
		for ch := 0; ch < c.Chips(); ch++ {
			b.Chips[ch][j] = cw[ch]
		}
	case SchemeSSCVariant:
		// Symbol of chip ch in codeword j = DQ j of chip ch across beats.
		for ch := 0; ch < c.Chips(); ch++ {
			for beat := 0; beat < 8; beat++ {
				b.SetBit(ch, beat, j, (cw[ch]>>beat)&1)
			}
		}
	}
}

// extractCodeword reads codeword j back out of the burst into a fresh slice.
func (c *Chipkill) extractCodeword(b *Burst, j int) []byte {
	cw := make([]byte, c.Chips())
	c.extractCodewordInto(cw, b, j)
	return cw
}

// extractCodewordInto reads codeword j back out of the burst into cw
// (len == Chips()).
func (c *Chipkill) extractCodewordInto(cw []byte, b *Burst, j int) {
	switch c.Scheme {
	case SchemeSSC, SchemeSSCDSD:
		for ch := 0; ch < c.Chips(); ch++ {
			cw[ch] = b.Chips[ch][j]
		}
	case SchemeSSCVariant:
		for ch := 0; ch < c.Chips(); ch++ {
			var sym byte
			for beat := 0; beat < 8; beat++ {
				sym |= b.Bit(ch, beat, j) << beat
			}
			cw[ch] = sym
		}
	}
}

// GSDRAMStridedBurst models the Gather-Scatter layout under strided access:
// each chip returns data from a *different row*, so chip ch's symbols come
// from row ch's codeword while the check chips can only return one row's
// check symbols. The returned burst therefore mixes symbols from rows[0..15]
// with check symbols of rows[0] — the structural reason GS-DRAM cannot keep
// chipkill (Section 3.3.1). rows must contain 16 encoded single-row bursts.
func GSDRAMStridedBurst(rows []*Burst) *Burst {
	if len(rows) != SSCDataChips {
		panic("ecc: GSDRAMStridedBurst wants 16 row bursts")
	}
	out := NewBurst(SSCChips)
	for ch := 0; ch < SSCDataChips; ch++ {
		out.Chips[ch] = rows[ch].Chips[ch]
	}
	// The two check chips hold row 0's check symbols — matching only one of
	// the sixteen gathered rows.
	out.Chips[16] = rows[0].Chips[16]
	out.Chips[17] = rows[0].Chips[17]
	return out
}

// IntegrityOK reports whether a burst holds valid codewords (no error and
// no miscorrection) under the codec. A burst of the wrong geometry cannot
// hold the scheme's codewords, so it reports false.
func (c *Chipkill) IntegrityOK(b *Burst) bool {
	if len(b.Chips) != c.Chips() {
		return false
	}
	for j := 0; j < c.CodewordsPerBurst(); j++ {
		c.extractCodewordInto(c.cw, b, j)
		if !c.rs.syndromesInto(c.rs.syn, c.cw) {
			return false
		}
	}
	return true
}

// Extended holds the stronger codeword construction the paper cites as an
// extension of the SSC variant (Kim et al.'s Bamboo-style codes): one
// 512-bit codeword of 72 8-bit symbols — each symbol a DQ's whole burst —
// covering the entire 64B transfer. Four check-chip DQ symbols give
// distance 9: up to four symbol errors correctable, i.e. one fully dead
// chip per burst with a single decode, at the price of decoder latency.
// Like Chipkill, an Extended codec owns its codeword scratch and is NOT
// goroutine-safe.
type Extended struct {
	rs *RS
	cw []byte // codeword scratch, 72 symbols
}

// NewExtended builds the 72-symbol large-codeword codec.
func NewExtended() *Extended {
	// 72 DQ symbols = 18 chips x 4 DQ; 64 data symbols + 8 check symbols.
	return &Extended{rs: NewRS(72, 64, 4), cw: make([]byte, 72)}
}

// Encode lays out 64 data bytes as one codeword across all 72 DQ lanes of
// an 18-chip burst (check symbols occupy the two check chips' lanes).
func (e *Extended) Encode(data []byte) *Burst {
	b := NewBurst(SSCChips)
	e.EncodeInto(b, data)
	return b
}

// EncodeInto is Encode with a caller-provided 18-chip burst, overwriting
// every bit with no allocation.
func (e *Extended) EncodeInto(b *Burst, data []byte) {
	if len(data) != 64 {
		panic(fmt.Sprintf("ecc: Extended.Encode wants 64 bytes, got %d", len(data)))
	}
	if len(b.Chips) != SSCChips {
		panic(fmt.Sprintf("ecc: Extended.EncodeInto wants an %d-chip burst, got %d", SSCChips, len(b.Chips)))
	}
	e.rs.EncodeInto(e.cw, data)
	for i, sym := range e.cw {
		chip, dq := i/4, i%4
		for beat := 0; beat < 8; beat++ {
			b.SetBit(chip, beat, dq, (sym>>beat)&1)
		}
	}
}

// Decode extracts and corrects the large codeword.
func (e *Extended) Decode(b *Burst) (data []byte, corrected int, err error) {
	data = make([]byte, 64)
	corrected, err = e.DecodeInto(data, b)
	if err != nil {
		return nil, 0, err
	}
	return data, corrected, nil
}

// DecodeInto is Decode with a caller-provided 64-byte payload buffer,
// allocation-free at steady state.
func (e *Extended) DecodeInto(data []byte, b *Burst) (corrected int, err error) {
	if len(b.Chips) != SSCChips {
		return 0, ErrGeometry
	}
	if len(data) != 64 {
		panic(fmt.Sprintf("ecc: Extended.DecodeInto wants a 64-byte buffer, got %d", len(data)))
	}
	for i := range e.cw {
		chip, dq := i/4, i%4
		var sym byte
		for beat := 0; beat < 8; beat++ {
			sym |= b.Bit(chip, beat, dq) << beat
		}
		e.cw[i] = sym
	}
	pos, derr := e.rs.decodeReport(e.cw)
	if derr != nil {
		return 0, derr
	}
	copy(data, e.cw[:64])
	return len(pos), nil
}
