package ecc

import (
	"errors"
	"fmt"
)

// This file models how chipkill codewords are laid out across the chips and
// beats of a memory burst (Fig. 4), which is the crux of the paper's
// reliability argument: a design is chipkill-compatible exactly when every
// burst it produces carries whole codewords.
//
// A burst is what one BL8 transfer delivers: for a rank of x4 chips, each
// chip contributes 4 bits x 8 beats = 32 bits. We model it as a per-chip
// 4-byte word with bit (beat*4 + dq) of the word carrying DQ dq at beat.

// Burst geometry for the SSC rank (16 data + 2 check chips).
const (
	SSCChips     = 18
	SSCDataChips = 16
	// SSCDSDChips is the doubled-channel geometry (32 data + 4 check).
	SSCDSDChips     = 36
	SSCDSDDataChips = 32
	BytesPerChip    = 4 // 4 DQ x 8 beats = 32 bits
)

// Burst holds the raw bits one BL8 transfer moves, per chip.
type Burst struct {
	Chips [][BytesPerChip]byte
}

// NewBurst allocates an all-zero burst for the given chip count.
func NewBurst(chips int) *Burst {
	return &Burst{Chips: make([][BytesPerChip]byte, chips)}
}

// checkBit validates a (chip, beat, dq) coordinate against the burst shape:
// 8 beats and 4 DQs per chip, chip within the burst's rank width.
func (b *Burst) checkBit(chip, beat, dq int) {
	if chip < 0 || chip >= len(b.Chips) || beat < 0 || beat >= 8 || dq < 0 || dq >= 4 {
		panic(fmt.Sprintf("ecc: bit (chip=%d, beat=%d, dq=%d) outside %d-chip BL8 burst",
			chip, beat, dq, len(b.Chips)))
	}
}

// Bit returns DQ dq of chip at the given beat.
func (b *Burst) Bit(chip, beat, dq int) byte {
	b.checkBit(chip, beat, dq)
	idx := beat*4 + dq
	return (b.Chips[chip][idx/8] >> (idx % 8)) & 1
}

// SetBit sets DQ dq of chip at the given beat.
func (b *Burst) SetBit(chip, beat, dq int, v byte) {
	b.checkBit(chip, beat, dq)
	idx := beat*4 + dq
	if v&1 != 0 {
		b.Chips[chip][idx/8] |= 1 << (idx % 8)
	} else {
		b.Chips[chip][idx/8] &^= 1 << (idx % 8)
	}
}

// CorruptChip overwrites every bit a chip contributes, simulating a dead
// chip for the burst (the chipkill failure model).
func (b *Burst) CorruptChip(chip int, garbage byte) {
	for i := range b.Chips[chip] {
		b.Chips[chip][i] ^= garbage
		garbage = garbage<<1 | garbage>>7 // vary per byte, never identity for nonzero
	}
}

// Scheme identifies a codeword layout from Fig. 4.
type Scheme int

// Layout schemes.
const (
	// SchemeSSC (Fig. 4b): one 8-bit symbol per chip per two beats; a burst
	// carries four 18-symbol codewords; the default server layout with
	// critical-word-first.
	SchemeSSC Scheme = iota
	// SchemeSSCVariant (Fig. 4c): one 8-bit symbol per DQ across the whole
	// burst (lane-wise); the layout SAM-IO's transposed data uses.
	SchemeSSCVariant
	// SchemeSSCDSD: doubled channel of 36 x4 chips; 4-bit beat symbols,
	// paired across two beats into GF(2^8) RS symbols; corrects one chip,
	// detects two.
	SchemeSSCDSD
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeSSC:
		return "SSC"
	case SchemeSSCVariant:
		return "SSC-variant"
	case SchemeSSCDSD:
		return "SSC-DSD"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Chipkill encodes/decodes bursts under one of the Fig. 4 layouts.
type Chipkill struct {
	Scheme Scheme
	rs     *RS
}

// NewChipkill builds a codec for the scheme.
func NewChipkill(s Scheme) *Chipkill {
	c := &Chipkill{Scheme: s}
	switch s {
	case SchemeSSC, SchemeSSCVariant:
		c.rs = NewRS(SSCChips, SSCDataChips, 1)
	case SchemeSSCDSD:
		c.rs = NewRS(SSCDSDChips, SSCDSDDataChips, 1)
	default:
		panic("ecc: unknown chipkill scheme")
	}
	return c
}

// DataBytes returns the data payload a single burst carries under the
// scheme (64 for single-width SSC layouts, 128 for the doubled channel).
func (c *Chipkill) DataBytes() int {
	if c.Scheme == SchemeSSCDSD {
		return 128
	}
	return 64
}

// Chips returns the rank width in chips.
func (c *Chipkill) Chips() int {
	if c.Scheme == SchemeSSCDSD {
		return SSCDSDChips
	}
	return SSCChips
}

// CodewordsPerBurst returns how many codewords one burst carries (4 for
// every scheme here).
func (c *Chipkill) CodewordsPerBurst() int { return 4 }

// Encode lays out data (len == DataBytes()) plus freshly computed check
// symbols into a burst.
func (c *Chipkill) Encode(data []byte) *Burst {
	if len(data) != c.DataBytes() {
		panic(fmt.Sprintf("ecc: Encode wants %d bytes, got %d", c.DataBytes(), len(data)))
	}
	b := NewBurst(c.Chips())
	for j := 0; j < c.CodewordsPerBurst(); j++ {
		cw := c.rs.Encode(c.dataSymbols(data, j))
		c.placeCodeword(b, j, cw)
	}
	return b
}

// ErrGeometry reports a burst whose chip count does not match the codec's
// scheme; such a burst cannot hold the scheme's codewords at all.
var ErrGeometry = errors.New("ecc: burst geometry does not match scheme")

// Decode extracts and corrects the burst's codewords, returning the data
// payload, the total number of corrected symbols, and ErrDetected when any
// codeword is uncorrectable under the scheme's policy.
//
// Policy: beyond the per-codeword MaxCorrect=1 bound, all corrections within
// one burst must name the same chip. The chipkill fault model is a single
// failing device; corrections scattered across different chips mean the burst
// was hit by something the model does not cover, and letting each codeword
// "fix" its own chip is exactly the miscorrection path a DUE should close.
// Inconsistent corrections therefore return ErrDetected.
func (c *Chipkill) Decode(b *Burst) (data []byte, corrected int, err error) {
	if len(b.Chips) != c.Chips() {
		return nil, 0, ErrGeometry
	}
	data = make([]byte, c.DataBytes())
	errChip := -1
	for j := 0; j < c.CodewordsPerBurst(); j++ {
		cw := c.extractCodeword(b, j)
		pos, derr := c.rs.DecodeReport(cw)
		if derr != nil {
			return nil, corrected, derr
		}
		for _, p := range pos {
			// Codeword symbol index == chip index for every scheme here.
			if errChip == -1 {
				errChip = p
			} else if errChip != p {
				return nil, corrected, ErrDetected
			}
		}
		corrected += len(pos)
		c.scatterData(data, j, cw)
	}
	return data, corrected, nil
}

// dataSymbols picks codeword j's data symbols out of the payload.
func (c *Chipkill) dataSymbols(data []byte, j int) []byte {
	k := c.rs.K()
	syms := make([]byte, k)
	copy(syms, data[j*k:(j+1)*k])
	return syms
}

// scatterData writes codeword j's (corrected) data symbols back into the
// payload buffer.
func (c *Chipkill) scatterData(data []byte, j int, cw []byte) {
	k := c.rs.K()
	copy(data[j*k:(j+1)*k], cw[:k])
}

// placeCodeword writes an n-symbol codeword into the burst per the scheme.
func (c *Chipkill) placeCodeword(b *Burst, j int, cw []byte) {
	switch c.Scheme {
	case SchemeSSC, SchemeSSCDSD:
		// Symbol of chip ch = its two beats 2j and 2j+1 (byte j of the
		// chip's 32-bit burst word).
		for ch := 0; ch < c.Chips(); ch++ {
			b.Chips[ch][j] = cw[ch]
		}
	case SchemeSSCVariant:
		// Symbol of chip ch in codeword j = DQ j of chip ch across beats.
		for ch := 0; ch < c.Chips(); ch++ {
			for beat := 0; beat < 8; beat++ {
				b.SetBit(ch, beat, j, (cw[ch]>>beat)&1)
			}
		}
	}
}

// extractCodeword reads codeword j back out of the burst.
func (c *Chipkill) extractCodeword(b *Burst, j int) []byte {
	cw := make([]byte, c.Chips())
	switch c.Scheme {
	case SchemeSSC, SchemeSSCDSD:
		for ch := 0; ch < c.Chips(); ch++ {
			cw[ch] = b.Chips[ch][j]
		}
	case SchemeSSCVariant:
		for ch := 0; ch < c.Chips(); ch++ {
			var sym byte
			for beat := 0; beat < 8; beat++ {
				sym |= b.Bit(ch, beat, j) << beat
			}
			cw[ch] = sym
		}
	}
	return cw
}

// GSDRAMStridedBurst models the Gather-Scatter layout under strided access:
// each chip returns data from a *different row*, so chip ch's symbols come
// from row ch's codeword while the check chips can only return one row's
// check symbols. The returned burst therefore mixes symbols from rows[0..15]
// with check symbols of rows[0] — the structural reason GS-DRAM cannot keep
// chipkill (Section 3.3.1). rows must contain 16 encoded single-row bursts.
func GSDRAMStridedBurst(rows []*Burst) *Burst {
	if len(rows) != SSCDataChips {
		panic("ecc: GSDRAMStridedBurst wants 16 row bursts")
	}
	out := NewBurst(SSCChips)
	for ch := 0; ch < SSCDataChips; ch++ {
		out.Chips[ch] = rows[ch].Chips[ch]
	}
	// The two check chips hold row 0's check symbols — matching only one of
	// the sixteen gathered rows.
	out.Chips[16] = rows[0].Chips[16]
	out.Chips[17] = rows[0].Chips[17]
	return out
}

// IntegrityOK reports whether a burst holds valid codewords (no error and
// no miscorrection) under the codec. A burst of the wrong geometry cannot
// hold the scheme's codewords, so it reports false.
func (c *Chipkill) IntegrityOK(b *Burst) bool {
	if len(b.Chips) != c.Chips() {
		return false
	}
	for j := 0; j < c.CodewordsPerBurst(); j++ {
		syn := c.rs.Syndromes(c.extractCodeword(b, j))
		for _, s := range syn {
			if s != 0 {
				return false
			}
		}
	}
	return true
}

// Extended holds the stronger codeword construction the paper cites as an
// extension of the SSC variant (Kim et al.'s Bamboo-style codes): one
// 512-bit codeword of 72 8-bit symbols — each symbol a DQ's whole burst —
// covering the entire 64B transfer. Four check-chip DQ symbols give
// distance 9: up to four symbol errors correctable, i.e. one fully dead
// chip per burst with a single decode, at the price of decoder latency.
type Extended struct {
	rs *RS
}

// NewExtended builds the 72-symbol large-codeword codec.
func NewExtended() *Extended {
	// 72 DQ symbols = 18 chips x 4 DQ; 64 data symbols + 8 check symbols.
	return &Extended{rs: NewRS(72, 64, 4)}
}

// Encode lays out 64 data bytes as one codeword across all 72 DQ lanes of
// an 18-chip burst (check symbols occupy the two check chips' lanes).
func (e *Extended) Encode(data []byte) *Burst {
	if len(data) != 64 {
		panic(fmt.Sprintf("ecc: Extended.Encode wants 64 bytes, got %d", len(data)))
	}
	cw := e.rs.Encode(data)
	b := NewBurst(SSCChips)
	for i, sym := range cw {
		chip, dq := i/4, i%4
		for beat := 0; beat < 8; beat++ {
			b.SetBit(chip, beat, dq, (sym>>beat)&1)
		}
	}
	return b
}

// Decode extracts and corrects the large codeword.
func (e *Extended) Decode(b *Burst) (data []byte, corrected int, err error) {
	if len(b.Chips) != SSCChips {
		return nil, 0, ErrGeometry
	}
	cw := make([]byte, 72)
	for i := range cw {
		chip, dq := i/4, i%4
		var sym byte
		for beat := 0; beat < 8; beat++ {
			sym |= b.Bit(chip, beat, dq) << beat
		}
		cw[i] = sym
	}
	n, derr := e.rs.Decode(cw)
	if derr != nil {
		return nil, 0, derr
	}
	return cw[:64], n, nil
}
