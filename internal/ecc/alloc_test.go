package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeIntoDecodeIntoMatchAllocating pins the Into variants to the
// allocating API bit for bit: same burst layout from EncodeInto as Encode,
// same payload/corrected/error from DecodeInto as Decode — clean bursts and
// dead-chip bursts alike, for every scheme.
func TestEncodeIntoDecodeIntoMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, scheme := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(scheme)
		buf := NewBurst(c.Chips())
		payload := make([]byte, c.DataBytes())
		for trial := 0; trial < 50; trial++ {
			data := randomPayload(rng, c.DataBytes())
			want := c.Encode(data)
			c.EncodeInto(buf, data)
			for ch := range want.Chips {
				if want.Chips[ch] != buf.Chips[ch] {
					t.Fatalf("%v trial %d: EncodeInto chip %d differs from Encode", scheme, trial, ch)
				}
			}
			if trial%2 == 1 {
				chip := rng.Intn(c.Chips())
				garbage := byte(rng.Intn(255) + 1)
				want.CorruptChip(chip, garbage)
				buf.CorruptChip(chip, garbage)
			}
			wantData, wantCorr, wantErr := c.Decode(want)
			gotCorr, gotErr := c.DecodeInto(payload, buf)
			if wantErr != gotErr || wantCorr != gotCorr {
				t.Fatalf("%v trial %d: DecodeInto (%d,%v) vs Decode (%d,%v)",
					scheme, trial, gotCorr, gotErr, wantCorr, wantErr)
			}
			if wantErr == nil && !bytes.Equal(payload, wantData) {
				t.Fatalf("%v trial %d: DecodeInto payload differs from Decode", scheme, trial)
			}
		}
	}
}

// TestChipkillIntoZeroAllocs pins EncodeInto and DecodeInto — including a
// dead-chip correction, the worst decode path — at exactly zero allocations
// per op for every scheme.
func TestChipkillIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, scheme := range []Scheme{SchemeSSC, SchemeSSCVariant, SchemeSSCDSD} {
		c := NewChipkill(scheme)
		data := randomPayload(rng, c.DataBytes())
		b := NewBurst(c.Chips())
		payload := make([]byte, c.DataBytes())

		if n := testing.AllocsPerRun(200, func() {
			c.EncodeInto(b, data)
		}); n != 0 {
			t.Errorf("%v: EncodeInto allocates %.1f/op, want 0", scheme, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			c.EncodeInto(b, data)
			b.CorruptChip(3, 0x5A)
			if _, err := c.DecodeInto(payload, b); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%v: dead-chip DecodeInto allocates %.1f/op, want 0", scheme, n)
		}
	}
}

// TestExtendedIntoZeroAllocs gives the large-codeword codec the same pin;
// its 4-symbol correction power exercises the deepest Berlekamp-Massey path.
func TestExtendedIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	e := NewExtended()
	data := randomPayload(rng, 64)
	b := NewBurst(SSCChips)
	payload := make([]byte, 64)
	if n := testing.AllocsPerRun(100, func() {
		e.EncodeInto(b, data)
		b.CorruptChip(7, 0xA5)
		if _, err := e.DecodeInto(payload, b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Extended encode+dead-chip decode allocates %.1f/op, want 0", n)
	}
	if !bytes.Equal(payload, data) {
		t.Fatal("Extended round trip corrupted the payload")
	}
}

// TestBurstResetClearsEveryPlane: Reset must return a corrupted burst to the
// all-zero state.
func TestBurstResetClearsEveryPlane(t *testing.T) {
	b := NewBurst(SSCChips)
	for ch := range b.Chips {
		b.CorruptChip(ch, byte(ch+1))
	}
	b.Reset()
	for ch := range b.Chips {
		if b.Chips[ch] != [BytesPerChip]byte{} {
			t.Fatalf("chip %d not zeroed after Reset", ch)
		}
	}
}

// TestBurstPoolRecycledBurstIsClean is the regression test for the reuse
// bug class this PR closes: a burst that went through fault injection and
// decode-with-corrections must come back from the pool with no trace of the
// prior fault pattern, so a clean encode/decode cycle on it sees zero
// corrections.
func TestBurstPoolRecycledBurstIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := NewChipkill(SchemeSSC)
	var pool BurstPool
	payload := make([]byte, c.DataBytes())

	// Dirty a burst thoroughly: encode, kill a chip, decode (mutates in
	// place), corrupt again so it is NOT a valid codeword when recycled.
	dirty := pool.Get(c.Chips())
	c.EncodeInto(dirty, randomPayload(rng, c.DataBytes()))
	dirty.CorruptChip(5, 0x3C)
	if _, err := c.DecodeInto(payload, dirty); err != nil {
		t.Fatal(err)
	}
	dirty.CorruptChip(9, 0x77)
	pool.Put(dirty)

	got := pool.Get(c.Chips())
	if got != dirty {
		t.Fatal("pool did not recycle the burst (test needs the dirty one back)")
	}
	for ch := range got.Chips {
		if got.Chips[ch] != [BytesPerChip]byte{} {
			t.Fatalf("recycled burst leaks prior fault data on chip %d", ch)
		}
	}
	// And a clean encode/decode on the recycled burst sees zero corrections.
	data := randomPayload(rng, c.DataBytes())
	c.EncodeInto(got, data)
	n, err := c.DecodeInto(payload, got)
	if err != nil || n != 0 {
		t.Fatalf("clean decode on recycled burst: corrected=%d err=%v, want 0,nil", n, err)
	}
	if !bytes.Equal(payload, data) {
		t.Fatal("recycled burst round trip corrupted the payload")
	}
}

// TestBurstPoolKeyedByChipCount: recycling an SSC burst must not satisfy a
// DSD Get.
func TestBurstPoolKeyedByChipCount(t *testing.T) {
	var pool BurstPool
	pool.Put(NewBurst(SSCChips))
	b := pool.Get(SSCDSDChips)
	if len(b.Chips) != SSCDSDChips {
		t.Fatalf("Get(%d) returned a %d-chip burst", SSCDSDChips, len(b.Chips))
	}
	if list := pool.free[SSCChips]; len(list) != 1 {
		t.Fatalf("the %d-chip burst should still be pooled", SSCChips)
	}
}

// TestRSIntoZeroAllocs pins the raw RS paths the chipkill codecs sit on.
func TestRSIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	r := NewRS(18, 16, 1)
	data := randomPayload(rng, 16)
	out := make([]byte, 18)
	if n := testing.AllocsPerRun(200, func() {
		r.EncodeInto(out, data)
		out[4] ^= 0x1F
		if _, err := r.Decode(out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("RS EncodeInto+Decode allocates %.1f/op, want 0", n)
	}
}
