package ecc

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed-Solomon code over GF(2^8) with n total symbols
// and k data symbols (n-k check symbols), shortened from the natural length
// 255. The decoder corrects up to MaxCorrect symbol errors (defaulting to
// floor((n-k)/2)) and reports anything beyond as detected-uncorrectable.
//
// Chipkill instances:
//   - SSC:      NewRS(18, 16, 1) — 16 data chips + 2 check chips, 8-bit
//     symbols, corrects one dead chip per codeword.
//   - SSC-DSD:  NewRS(36, 32, 1) — doubled channel of x4 chips; 4 check
//     symbols give distance 5, but the deployed policy corrects one symbol
//     and *detects* multi-symbol faults (MaxCorrect=1).
//
// Every codec call runs on scratch buffers the RS owns (see DESIGN.md,
// "Codec scratch ownership"): encode/decode are allocation-free at steady
// state, and in exchange an RS value is NOT goroutine-safe. Build one codec
// per goroutine — which the system does anyway (one injector per channel,
// one rank model per test).
type RS struct {
	f          *GF256
	n, k       int
	MaxCorrect int
	gen        []byte // generator polynomial, degree n-k, gen[0] = x^(n-k) coeff = 1

	// Scratch workspaces, sized once in NewRS so the hot paths never make
	// or grow a slice. lambda/bpoly/tpoly carry the Berlekamp-Massey
	// polynomials, whose lengths stay well under the generous polyCap.
	rem       []byte
	syn       []byte
	lambda    []byte
	bpoly     []byte
	tpoly     []byte
	omega     []byte
	positions []int
}

// ErrDetected reports an error pattern the decode policy cannot correct but
// could detect; the memory system treats it as a fatal (machine-check) event.
var ErrDetected = errors.New("ecc: uncorrectable error detected")

// NewRS builds an RS(n,k) code. maxCorrect <= 0 selects the full correction
// power floor((n-k)/2). It panics on invalid geometry.
func NewRS(n, k, maxCorrect int) *RS {
	if n <= k || k <= 0 || n > 255 {
		panic(fmt.Sprintf("ecc: invalid RS geometry n=%d k=%d", n, k))
	}
	t := (n - k) / 2
	if maxCorrect <= 0 || maxCorrect > t {
		maxCorrect = t
	}
	r := &RS{f: gf256, n: n, k: k, MaxCorrect: maxCorrect}
	// g(x) = prod_{i=0}^{n-k-1} (x - alpha^i)
	g := []byte{1}
	for i := 0; i < n-k; i++ {
		root := r.f.Exp(i)
		next := make([]byte, len(g)+1)
		for j, c := range g {
			next[j] ^= r.f.Mul(c, root)
			next[j+1] ^= c
		}
		g = next
	}
	// store with highest degree first
	for i, j := 0, len(g)-1; i < j; i, j = i+1, j-1 {
		g[i], g[j] = g[j], g[i]
	}
	r.gen = g

	nc := n - k
	// The BM polynomials never exceed nc+1 coefficients plus the x^m shift
	// (m <= nc); 2*nc+2 bounds them, doubled for headroom.
	polyCap := 4*nc + 4
	r.rem = make([]byte, nc)
	r.syn = make([]byte, nc)
	r.lambda = make([]byte, 0, polyCap)
	r.bpoly = make([]byte, 0, polyCap)
	r.tpoly = make([]byte, 0, polyCap)
	r.omega = make([]byte, nc)
	r.positions = make([]int, 0, nc)
	return r
}

// N returns the codeword length in symbols.
func (r *RS) N() int { return r.n }

// K returns the number of data symbols.
func (r *RS) K() int { return r.k }

// Encode appends n-k check symbols to the k data symbols and returns the
// full n-symbol codeword (data first, systematic).
func (r *RS) Encode(data []byte) []byte {
	out := make([]byte, r.n)
	r.EncodeInto(out, data)
	return out
}

// EncodeInto writes the n-symbol codeword for data into out (len n), using
// the codec's own division scratch — no allocation.
func (r *RS) EncodeInto(out, data []byte) {
	if len(data) != r.k {
		panic(fmt.Sprintf("ecc: Encode wants %d data symbols, got %d", r.k, len(data)))
	}
	if len(out) != r.n {
		panic(fmt.Sprintf("ecc: EncodeInto wants a %d-symbol buffer, got %d", r.n, len(out)))
	}
	nc := r.n - r.k
	// Polynomial long division of data * x^(n-k) by gen.
	rem := r.rem[:nc]
	for i := range rem {
		rem[i] = 0
	}
	for _, d := range data {
		factor := d ^ rem[0]
		copy(rem, rem[1:])
		rem[nc-1] = 0
		if factor != 0 {
			for j := 1; j <= nc; j++ {
				rem[j-1] ^= r.f.Mul(r.gen[j], factor)
			}
		}
	}
	copy(out, data)
	copy(out[r.k:], rem)
}

// Syndromes computes the n-k syndromes of a received word; all-zero means
// the word is a valid codeword.
func (r *RS) Syndromes(recv []byte) []byte {
	syn := make([]byte, r.n-r.k)
	r.syndromesInto(syn, recv)
	return syn
}

// syndromesInto fills syn (len n-k) and reports whether every syndrome is
// zero (a valid codeword).
func (r *RS) syndromesInto(syn, recv []byte) (zero bool) {
	if len(recv) != r.n {
		panic(fmt.Sprintf("ecc: Syndromes wants %d symbols, got %d", r.n, len(recv)))
	}
	zero = true
	for i := range syn {
		// Evaluate the received polynomial at alpha^i. recv[0] holds the
		// highest-degree coefficient (degree n-1).
		var s byte
		x := r.f.Exp(i)
		for _, c := range recv {
			s = r.f.Mul(s, x) ^ c
		}
		syn[i] = s
		if s != 0 {
			zero = false
		}
	}
	return zero
}

// Decode corrects recv in place (up to MaxCorrect symbol errors) and returns
// the number of symbols corrected. It returns ErrDetected when the error
// pattern exceeds the correction policy but is detectable.
func (r *RS) Decode(recv []byte) (corrected int, err error) {
	pos, err := r.decodeReport(recv)
	return len(pos), err
}

// DecodeReport is Decode, additionally reporting which symbol indices were
// corrected (nil for a clean word). Callers that attribute errors to chips —
// or enforce cross-codeword consistency policies — need the positions, not
// just the count. The returned slice is freshly allocated (it does not alias
// the codec's scratch); internal callers use decodeReport directly.
func (r *RS) DecodeReport(recv []byte) (positions []int, err error) {
	pos, err := r.decodeReport(recv)
	if pos == nil {
		return nil, err
	}
	return append([]int(nil), pos...), err
}

// decodeReport is the scratch-backed decoder core. The returned positions
// slice aliases r.positions and is valid only until the next codec call.
func (r *RS) decodeReport(recv []byte) (positions []int, err error) {
	syn := r.syn[:r.n-r.k]
	if r.syndromesInto(syn, recv) {
		return nil, nil
	}
	lambda, errCount := r.berlekampMassey(syn)
	if errCount == 0 || errCount > r.MaxCorrect {
		return nil, ErrDetected
	}
	positions = r.chienSearch(lambda)
	if len(positions) != errCount {
		return nil, ErrDetected
	}
	r.forney(recv, syn, lambda, positions)
	// Verify: residual syndromes must vanish (syn is free for reuse here —
	// forney has already consumed it).
	if !r.syndromesInto(syn, recv) {
		return nil, ErrDetected
	}
	return positions, nil
}

// berlekampMassey returns the error-locator polynomial (lowest degree first)
// and its degree (the estimated error count). The returned slice aliases the
// codec's lambda scratch.
func (r *RS) berlekampMassey(syn []byte) (lambda []byte, deg int) {
	lambda = append(r.lambda[:0], 1)
	b := append(r.bpoly[:0], 1)
	var l, m int = 0, 1
	var bb byte = 1
	for n := 0; n < len(syn); n++ {
		var d byte = syn[n]
		for i := 1; i <= l && i < len(lambda); i++ {
			d ^= r.f.Mul(lambda[i], syn[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			t := append(r.tpoly[:0], lambda...)
			coef := r.f.Div(d, bb)
			lambda = polyAddShift(r.f, lambda, b, coef, m)
			l = n + 1 - l
			b = append(b[:0], t...)
			r.tpoly = t[:0]
			bb = d
			m = 1
		} else {
			coef := r.f.Div(d, bb)
			lambda = polyAddShift(r.f, lambda, b, coef, m)
			m++
		}
	}
	r.lambda, r.bpoly = lambda[:0], b[:0]
	return lambda, l
}

// polyAddShift returns a + coef * b * x^shift (polynomials lowest degree
// first), extending a in place. a and b must not alias; a's capacity must
// cover the result (guaranteed by the polyCap sizing in NewRS).
func polyAddShift(f *GF256, a, b []byte, coef byte, shift int) []byte {
	size := len(a)
	if len(b)+shift > size {
		size = len(b) + shift
	}
	for len(a) < size {
		a = append(a, 0)
	}
	for i, c := range b {
		a[i+shift] ^= f.Mul(c, coef)
	}
	return a
}

// chienSearch finds error positions (indices into the received word, 0 =
// highest-degree symbol = first byte) whose locators are roots of lambda.
// The returned slice aliases the codec's positions scratch.
func (r *RS) chienSearch(lambda []byte) []int {
	positions := r.positions[:0]
	for pos := 0; pos < r.n; pos++ {
		// Symbol at index pos has degree n-1-pos, locator X = alpha^(n-1-pos).
		// It is an error position iff lambda(X^-1) == 0.
		xInv := r.f.Exp((255 - (r.n - 1 - pos)) % 255)
		var v byte
		for i := len(lambda) - 1; i >= 0; i-- {
			v = r.f.Mul(v, xInv) ^ lambda[i]
		}
		if v == 0 {
			positions = append(positions, pos)
		}
	}
	r.positions = positions[:0]
	return positions
}

// forney computes error magnitudes and fixes recv in place.
func (r *RS) forney(recv, syn, lambda []byte, positions []int) {
	// Omega(x) = [S(x) * Lambda(x)] mod x^(n-k), with S(x) = sum syn[i] x^i.
	nc := r.n - r.k
	omega := r.omega[:nc]
	for i := 0; i < nc; i++ {
		omega[i] = 0
		for j := 0; j <= i && j < len(lambda); j++ {
			omega[i] ^= r.f.Mul(syn[i-j], lambda[j])
		}
	}
	// Lambda'(x): formal derivative — odd-degree terms survive.
	for _, pos := range positions {
		deg := r.n - 1 - pos
		xInv := r.f.Exp((255 - deg) % 255)
		// omega(xInv)
		var num byte
		for i := len(omega) - 1; i >= 0; i-- {
			num = r.f.Mul(num, xInv) ^ omega[i]
		}
		// lambda'(xInv)
		var den byte
		for i := 1; i < len(lambda); i += 2 {
			den ^= r.f.Mul(lambda[i], r.f.Pow(xInv, i-1))
		}
		if den == 0 {
			continue // degenerate; residual-syndrome check will flag it
		}
		// Forney with b=0 syndromes carries an X_j^(1-b) = X_j factor.
		mag := r.f.Mul(r.f.Exp(deg%255), r.f.Div(num, den))
		recv[pos] ^= mag
	}
}
