package design

import (
	"testing"
	"testing/quick"

	"sam/internal/imdb"
	"sam/internal/mc"
)

func taPlacer(kind Kind, records int) *Placer {
	return NewPlacer(New(kind, Options{}), imdb.Ta(records), 0, false)
}

func TestSeqLayoutAddresses(t *testing.T) {
	p := taPlacer(Baseline, 1024)
	if a := p.ReadField(0, 0).Addr; a != 0 {
		t.Fatalf("record 0 field 0 at %x", a)
	}
	if a := p.ReadField(2, 3).Addr; a != 2*1024+24 {
		t.Fatalf("record 2 field 3 at %x, want %x", a, 2*1024+24)
	}
}

func TestSeqLayoutInjective(t *testing.T) {
	p := taPlacer(Baseline, 256)
	seen := map[uint64]bool{}
	for r := 0; r < 256; r++ {
		for f := 0; f < 128; f += 7 {
			a := p.ReadField(r, f).Addr
			if seen[a] {
				t.Fatalf("address collision at rec %d field %d", r, f)
			}
			seen[a] = true
		}
	}
}

func TestColStoreLayout(t *testing.T) {
	d := New(Ideal, Options{})
	p := NewPlacer(d, imdb.Ta(1024), 0, true)
	// Same field of consecutive records is contiguous.
	a0 := p.ReadField(0, 5).Addr
	a1 := p.ReadField(1, 5).Addr
	if a1-a0 != imdb.FieldBytes {
		t.Fatalf("column store stride = %d, want %d", a1-a0, imdb.FieldBytes)
	}
	// Different fields are a full column apart.
	b := p.ReadField(0, 6).Addr
	if b-a0 != 1024*imdb.FieldBytes {
		t.Fatalf("column gap = %d", b-a0)
	}
}

func TestSlotSeparation(t *testing.T) {
	d := New(Baseline, Options{})
	p0 := NewPlacer(d, imdb.Ta(1024), 0, false)
	p1 := NewPlacer(d, imdb.Tb(1024), 1, false)
	if p0.ReadField(1023, 127).Addr >= p1.ReadField(0, 0).Addr {
		t.Fatal("table slots overlap")
	}
}

func TestStrideGroupConsecutiveForIOBufferDesigns(t *testing.T) {
	p := taPlacer(SAMEn, 1024)
	for _, rec := range []int{0, 5, 9, 1000} {
		members := p.groupMembers(rec)
		if len(members) != 8 {
			t.Fatalf("rec %d: group size %d, want reach 8", rec, len(members))
		}
		first := (rec / 8) * 8
		for i, m := range members {
			if m != first+i {
				t.Fatalf("rec %d: member %d = %d, want %d", rec, i, m, first+i)
			}
		}
	}
}

func TestStrideGroupCoversRequester(t *testing.T) {
	// Whatever the design, the group gathered for rec must include rec —
	// otherwise the fetch would not satisfy the miss.
	for _, kind := range []Kind{SAMEn, SAMSub, GSDRAM, RCNVMWd} {
		p := taPlacer(kind, 4096)
		f := func(rec uint16) bool {
			r := int(rec) % 4096
			for _, m := range p.groupMembers(r) {
				if m == r {
					return true
				}
			}
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestStrideGroupsPartitionRecords(t *testing.T) {
	// Group membership is an equivalence relation: every record belongs to
	// exactly one group, and all members agree on the group.
	for _, kind := range []Kind{SAMEn, SAMSub, RCNVMWd} {
		p := taPlacer(kind, 512)
		for rec := 0; rec < 512; rec += 13 {
			members := p.groupMembers(rec)
			for _, m := range members {
				again := p.groupMembers(m)
				if len(again) != len(members) {
					t.Fatalf("%v: asymmetric group size at %d/%d", kind, rec, m)
				}
				for i := range members {
					if again[i] != members[i] {
						t.Fatalf("%v: group differs between members %d and %d", kind, rec, m)
					}
				}
			}
		}
	}
}

func TestStrideGroupFillsMatchSectors(t *testing.T) {
	p := taPlacer(SAMEn, 1024)
	txn := p.ReadField(16, 10) // f10: byte 80 of the record
	if !txn.Sectored || txn.Group == nil {
		t.Fatal("strided design should emit sectored group transactions")
	}
	// All 8 members' f10 sectors must be covered by the fills.
	covered := map[uint64]uint64{}
	for _, f := range txn.Group.Fills {
		covered[f.LineAddr] |= f.Sectors
	}
	for _, m := range p.groupMembers(16) {
		addr := p.canonAddr(m, 10)
		line := p.lineOf(addr)
		bit := p.sectorBit(addr)
		if covered[line]&bit == 0 {
			t.Fatalf("member %d's f10 sector not filled", m)
		}
	}
}

func TestStrideGroupDegeneratesForTinyRecords(t *testing.T) {
	// 8B records: the whole group lives in one cacheline; the fetch is one
	// line's worth of sectors.
	d := New(SAMEn, Options{})
	p := NewPlacer(d, imdb.Schema{Name: "T", Fields: 1, Records: 256}, 0, false)
	txn := p.ReadField(0, 0)
	if len(txn.Group.Fills) != 1 {
		t.Fatalf("tiny records: %d fills, want 1", len(txn.Group.Fills))
	}
	if txn.Group.Fills[0].Sectors != 0xFF {
		t.Fatalf("tiny records: sector mask %x, want all 8", txn.Group.Fills[0].Sectors)
	}
}

func TestStripeLayoutRowSwitchCadence(t *testing.T) {
	// Column-engine layouts switch DRAM rows every ChunkRecords records —
	// the Qs penalty knob. Verify via decoded coordinates.
	d := New(SAMSub, Options{})
	p := NewPlacer(d, imdb.Tb(4096), 0, false)
	am := mc.NewAddrMap(d.Mem.Geometry)
	chunk := d.ChunkRecords
	prev := am.Decode(p.ReadField(0, 0).Addr)
	switches := 0
	for rec := 1; rec < 256; rec++ {
		co := am.Decode(p.ReadField(rec, 0).Addr)
		if co.Row != prev.Row {
			switches++
			if rec%chunk != 0 {
				t.Fatalf("row switch at record %d, not a multiple of chunk %d", rec, chunk)
			}
		}
		prev = co
	}
	if switches == 0 {
		t.Fatal("no row switches observed in stripe layout")
	}
}

func TestStripeLayoutSameBankWithinStripe(t *testing.T) {
	d := New(RCNVMWd, Options{})
	p := NewPlacer(d, imdb.Tb(4096), 0, false)
	am := mc.NewAddrMap(d.Mem.Geometry)
	// All records of one stripe share a bank (the paper's "multiple rows in
	// the same bank").
	first := am.Decode(p.ReadField(0, 0).Addr)
	for rec := 1; rec < p.recordsPerStripe && rec < 4096; rec++ {
		co := am.Decode(p.ReadField(rec, 0).Addr)
		if co.Rank != first.Rank || co.Group != first.Group || co.Bank != first.Bank {
			t.Fatalf("record %d left the stripe bank", rec)
		}
	}
}

func TestStripeColumnAddressesDisjointFromRowAddresses(t *testing.T) {
	// The synthetic column-direction rows must never collide with row-wise
	// data rows (they model a second decoder over the same cells).
	d := New(SAMSub, Options{})
	p := NewPlacer(d, imdb.Ta(2048), 0, false)
	am := mc.NewAddrMap(d.Mem.Geometry)
	rowRows := map[int]bool{}
	for rec := 0; rec < 2048; rec += 17 {
		rowRows[am.Decode(p.ReadField(rec, 0).Addr).Row] = true
	}
	for rec := 0; rec < 2048; rec += 17 {
		g := p.ReadField(rec, 3).Group
		if g == nil {
			t.Fatal("column engine without group")
		}
		if rowRows[am.Decode(g.ReqAddr).Row] {
			t.Fatalf("column-direction row collides with data row at rec %d", rec)
		}
	}
}

func TestStripeFieldSwitchChangesColumnRow(t *testing.T) {
	// Fields in different record lines must map to different column-
	// direction rows (the RC-NVM field-switch penalty); fields in the same
	// line share one.
	d := New(RCNVMWd, Options{})
	p := NewPlacer(d, imdb.Ta(2048), 0, false)
	am := mc.NewAddrMap(d.Mem.Geometry)
	rowOf := func(field int) int {
		return am.Decode(p.ReadField(64, field).Group.ReqAddr).Row
	}
	if rowOf(3) != rowOf(4) {
		t.Fatal("f3 and f4 share a record line; their gathers should share a column row")
	}
	if rowOf(3) == rowOf(10) {
		t.Fatal("f3 and f10 live in different record lines; gathers must differ")
	}
}

func TestRecordTxnsCoverWholeRecord(t *testing.T) {
	for _, kind := range []Kind{Baseline, SAMEn, RCNVMWd} {
		p := taPlacer(kind, 256)
		txns := p.ReadRecord(7)
		total := 0
		for _, txn := range txns {
			if txn.Write {
				t.Fatalf("%v: read record produced a write", kind)
			}
			total += txn.Size
		}
		if total != 1024 {
			t.Fatalf("%v: record txns cover %dB, want 1024", kind, total)
		}
	}
}

func TestRecordTxnsColumnStoreScatters(t *testing.T) {
	d := New(Ideal, Options{})
	p := NewPlacer(d, imdb.Ta(1024), 0, true)
	txns := p.ReadRecord(3)
	if len(txns) != 128 {
		t.Fatalf("column-store record read has %d txns, want one per field", len(txns))
	}
}

func TestWriteRecordMarksWrites(t *testing.T) {
	p := taPlacer(Baseline, 64)
	for _, txn := range p.WriteRecord(1) {
		if !txn.Write {
			t.Fatal("write record produced a read txn")
		}
	}
}

func TestLaneAssignment(t *testing.T) {
	p := taPlacer(SAMEn, 64)
	// Lane is derived from the sector index; different sectors of a line
	// should spread over the four Sx4_n modes.
	lanes := map[int]bool{}
	for f := 0; f < 8; f++ {
		lanes[p.ReadField(0, f).Group.Lane] = true
	}
	if len(lanes) < 2 {
		t.Fatalf("lane assignment degenerate: %v", lanes)
	}
	for l := range lanes {
		if l < 0 || l > 3 {
			t.Fatalf("lane %d out of Sx4 range", l)
		}
	}
}

func TestOversizeRecordPanics(t *testing.T) {
	d := New(Baseline, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("record larger than a row accepted")
		}
	}()
	NewPlacer(d, imdb.Schema{Name: "huge", Fields: 4096, Records: 4}, 0, false)
}

func TestFootprint(t *testing.T) {
	p := taPlacer(Baseline, 1000)
	if p.Footprint() != 1000*1024 {
		t.Fatalf("footprint = %d", p.Footprint())
	}
}

func TestECCReadCompanionNearby(t *testing.T) {
	p := taPlacer(GSDRAMecc, 256)
	g := p.ReadField(0, 10).Group
	companion := p.ECCReadCompanion(g)
	if companion == g.ReqAddr {
		t.Fatal("ECC companion must be a different line")
	}
	am := mc.NewAddrMap(p.D.Mem.Geometry)
	a, b := am.Decode(g.ReqAddr), am.Decode(companion)
	if a.Row != b.Row || a.Bank != b.Bank {
		t.Fatal("embedded ECC lives in the same page/row as its data")
	}
}

func TestSubFieldSplitBursts(t *testing.T) {
	bit := taPlacer(RCNVMBit, 256)
	wd := taPlacer(RCNVMWd, 256)
	if bit.ReadField(0, 3).Group.Bursts != 2*wd.ReadField(0, 3).Group.Bursts {
		t.Fatal("RC-NVM-bit should need twice the column bursts per gather")
	}
}

func TestHybridLayoutAddresses(t *testing.T) {
	d := New(Baseline, Options{})
	p := NewPlacerHybrid(d, imdb.Ta(1024), 0, []int{10, 3})
	if !p.Hybrid() {
		t.Fatal("not hybrid")
	}
	// Hot field 10 is column 0: consecutive records 8B apart.
	a0 := p.ReadField(0, 10).Addr
	a1 := p.ReadField(1, 10).Addr
	if a1-a0 != imdb.FieldBytes {
		t.Fatalf("hot column stride %d", a1-a0)
	}
	// Hot field 3 is column 1, a full column after.
	b0 := p.ReadField(0, 3).Addr
	if b0-a0 != 1024*imdb.FieldBytes {
		t.Fatalf("second hot column at +%d", b0-a0)
	}
	// Cold fields are packed into shrunken (126-field) records.
	c0 := p.ReadField(0, 0).Addr
	c1 := p.ReadField(1, 0).Addr
	if c1-c0 != 126*imdb.FieldBytes {
		t.Fatalf("cold record stride %d, want %d", c1-c0, 126*imdb.FieldBytes)
	}
	// Field 4 (cold) sits right after fields 0,1,2 (field 3 is hot).
	if p.ReadField(0, 4).Addr-c0 != 3*imdb.FieldBytes {
		t.Fatal("cold packing skipped hot fields incorrectly")
	}
}

func TestHybridLayoutInjective(t *testing.T) {
	d := New(Baseline, Options{})
	p := NewPlacerHybrid(d, imdb.Tb(512), 0, []int{10})
	seen := map[uint64]bool{}
	for rec := 0; rec < 512; rec++ {
		for f := 0; f < 16; f++ {
			a := p.ReadField(rec, f).Addr
			if seen[a] {
				t.Fatalf("hybrid collision at (%d,%d)", rec, f)
			}
			seen[a] = true
		}
	}
}

func TestHybridRecordTxnsDeterministic(t *testing.T) {
	d := New(Baseline, Options{})
	p := NewPlacerHybrid(d, imdb.Ta(64), 0, []int{10, 3, 77})
	a := p.ReadRecord(5)
	b := p.ReadRecord(5)
	if len(a) != len(b) {
		t.Fatal("txn counts differ")
	}
	total := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hybrid record txns nondeterministic")
		}
		total += a[i].Size
	}
	if total != 1024 {
		t.Fatalf("hybrid record covers %dB", total)
	}
}

func TestHybridNeverStrides(t *testing.T) {
	// Hybrid is a software layout: even on a SAM design it reads its hot
	// columns with regular accesses.
	d := New(SAMEn, Options{})
	p := NewPlacerHybrid(d, imdb.Ta(64), 0, []int{10})
	if txn := p.ReadField(0, 10); txn.Group != nil || txn.Sectored {
		t.Fatal("hybrid layout emitted strided transactions")
	}
}

func TestHybridValidation(t *testing.T) {
	d := New(Baseline, Options{})
	for _, bad := range [][]int{{-1}, {128}, {3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("hot fields %v accepted", bad)
				}
			}()
			NewPlacerHybrid(d, imdb.Ta(64), 0, bad)
		}()
	}
}
