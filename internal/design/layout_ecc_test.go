package design

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"sam/internal/ecc"
	"sam/internal/imdb"
)

// samKinds are the designs that keep rank-level chipkill while striding —
// the ones whose bursts must carry whole codewords (Section 4.4). GS-DRAM
// gathers across per-chip rows and structurally cannot (see
// ecc.GSDRAMStridedBurst), so it is excluded by design, not oversight.
var samKinds = []Kind{SAMSub, SAMIO, SAMEn}

var allGrans = []Granularity{Gran16, Gran8, Gran4}

// TestBurstSchemeOrientation pins the scheme-selection rule: only SAM-IO's
// transposed 8-bit-symbol layouts move to the Fig. 4c variant; 4-bit SSC-DSD
// and every Fig. 4b design keep the canonical orientation.
func TestBurstSchemeOrientation(t *testing.T) {
	for _, k := range []Kind{Baseline, Ideal, SAMSub, SAMIO, SAMEn, GSDRAMecc} {
		for _, g := range allGrans {
			d := New(k, Options{Gran: g})
			got := d.BurstScheme()
			want := d.Chipkill
			if k == SAMIO && d.Chipkill == ecc.SchemeSSC {
				want = ecc.SchemeSSCVariant
			}
			if got != want {
				t.Errorf("%v/%d-bit: BurstScheme %v, want %v", k, g.BitsPerChip, got, want)
			}
		}
	}
}

// TestStrideGeometryMatchesECC is the arithmetic cross-check between the
// granularity table (Fig. 14b) and the codec: one strided burst's gather —
// SectorBytes x Reach, doubled when the 4-bit granularity gangs both ranks —
// must exactly fill the burst scheme's data payload. A mismatch would mean
// strided bursts carry partial codewords and the design's chipkill claim is
// void.
func TestStrideGeometryMatchesECC(t *testing.T) {
	for _, k := range samKinds {
		for _, g := range allGrans {
			d := New(k, Options{Gran: g})
			codec := ecc.NewChipkill(d.BurstScheme())
			gather := d.Gran.SectorBytes * d.Gran.Reach
			if d.Gran.Gang {
				gather *= 2
			}
			if gather != codec.DataBytes() {
				t.Errorf("%v/%d-bit: gather %dB vs codeword payload %dB",
					k, g.BitsPerChip, gather, codec.DataBytes())
			}
			if want := d.Mem.Geometry.LineBytes / d.Gran.SectorBytes; d.SectorsPerLine() != want {
				t.Errorf("%v/%d-bit: SectorsPerLine %d, want %d", k, g.BitsPerChip, d.SectorsPerLine(), want)
			}
		}
	}
}

// TestStrideGroupFillsCodewordProperty quick.Checks the layout half of the
// chipkill argument over random (design, granularity, schema, record, field)
// points: the sectors a full strided group fills add up to exactly one
// rank's share of the burst payload, every fill stays inside its line, lanes
// stay in the 4-lane I/O-buffer range, and no line is filled twice.
func TestStrideGroupFillsCodewordProperty(t *testing.T) {
	prop := func(kindSel, granSel uint8, recU uint16, fieldU uint8, wide bool) bool {
		d := New(samKinds[int(kindSel)%len(samKinds)], Options{Gran: allGrans[int(granSel)%len(allGrans)]})
		schema := imdb.Tb(1 << 14)
		if wide {
			schema = imdb.Ta(1 << 12)
		}
		p := NewPlacer(d, schema, 0, false)
		field := int(fieldU) % schema.Fields
		// Keep the whole alignment group in range so the group is full.
		rec := int(recU) % (schema.Records - d.Gran.Reach*p.recordsPerRowPublicTestHook())

		g := p.strideGroup(rec, field)
		if g.Lane < 0 || g.Lane >= 4 {
			t.Logf("lane %d out of range", g.Lane)
			return false
		}
		if g.Gang != d.Gran.Gang || g.Bursts != d.SubFieldSplit {
			t.Logf("gang/bursts mismatch: %+v vs design %+v", g, d.Gran)
			return false
		}
		sectorsPerLine := d.SectorsPerLine()
		seen := map[uint64]bool{}
		total := 0
		for _, f := range g.Fills {
			if f.LineAddr%uint64(d.Mem.Geometry.LineBytes) != 0 {
				t.Logf("fill line %#x not line-aligned", f.LineAddr)
				return false
			}
			if seen[f.LineAddr] {
				t.Logf("line %#x filled twice", f.LineAddr)
				return false
			}
			seen[f.LineAddr] = true
			if f.Sectors == 0 || f.Sectors>>uint(sectorsPerLine) != 0 {
				t.Logf("fill sectors %#x outside %d sectors/line", f.Sectors, sectorsPerLine)
				return false
			}
			total += bits.OnesCount64(f.Sectors)
		}
		// A full group gathers Reach sectors: one rank's share of the burst
		// (the mirror rank contributes the other half when ganged).
		gatherBytes := total * d.Gran.SectorBytes
		want := ecc.NewChipkill(d.BurstScheme()).DataBytes()
		if d.Gran.Gang {
			want /= 2
		}
		if gatherBytes != want {
			t.Logf("%v/%d-bit rec %d field %d: gathered %dB, codeword share %dB",
				d.Kind, d.Gran.BitsPerChip, rec, field, gatherBytes, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 400,
		Rand:     rand.New(rand.NewSource(0x5A11A6E)),
	}); err != nil {
		t.Fatal(err)
	}
}

// recordsPerRowPublicTestHook bounds the group span for the property test:
// column engines deal records across a stripe, so the last safe record is
// conservatively a full stripe from the end; I/O-buffer designs only need
// the aligned Reach-record group in range.
func (p *Placer) recordsPerRowPublicTestHook() int {
	if p.D.ColumnEngine {
		return p.recordsPerStripe / p.D.Gran.Reach
	}
	return 1
}

// TestTransposedBurstsCarryWholeCodewords quick.Checks the ecc half: under
// every burst orientation a SAM design selects — SAM-en's Fig. 4b, SAM-IO's
// transposed Fig. 4c, and the ganged SSC-DSD geometry — an encoded burst
// holds valid codewords, and killing any single chip (the chipkill fault
// model) still round-trips the payload exactly. This is the property that
// makes the fault campaign's "zero silent corruptions" claim meaningful for
// the SAM layouts.
func TestTransposedBurstsCarryWholeCodewords(t *testing.T) {
	prop := func(kindSel, granSel uint8, seed int64, chipSel uint16, garbage byte) bool {
		d := New(samKinds[int(kindSel)%len(samKinds)], Options{Gran: allGrans[int(granSel)%len(allGrans)]})
		codec := ecc.NewChipkill(d.BurstScheme())

		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, codec.DataBytes())
		rng.Read(payload)

		b := codec.Encode(payload)
		if !codec.IntegrityOK(b) {
			t.Logf("%v: fresh encode fails integrity", d.Kind)
			return false
		}
		if garbage == 0 {
			garbage = 0xA5
		}
		chip := int(chipSel) % codec.Chips()
		b.CorruptChip(chip, garbage)

		data, corrected, err := codec.Decode(b)
		if err != nil {
			t.Logf("%v/%v: single dead chip %d uncorrectable: %v", d.Kind, codec.Scheme, chip, err)
			return false
		}
		if corrected == 0 {
			t.Logf("%v/%v: corruption of chip %d went unnoticed", d.Kind, codec.Scheme, chip)
			return false
		}
		for i := range data {
			if data[i] != payload[i] {
				t.Logf("%v/%v: payload byte %d corrupted after correction", d.Kind, codec.Scheme, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(0xC0DEC)),
	}); err != nil {
		t.Fatal(err)
	}
}
