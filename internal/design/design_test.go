package design

import (
	"testing"

	"sam/internal/dram"
	"sam/internal/ecc"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Baseline: "baseline", Ideal: "ideal", SAMSub: "SAM-sub", SAMIO: "SAM-IO",
		SAMEn: "SAM-en", GSDRAM: "GS-DRAM", GSDRAMecc: "GS-DRAM-ecc",
		RCNVMBit: "RC-NVM-bit", RCNVMWd: "RC-NVM-wd", Kind(99): "Kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d -> %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestGranularityDefaults(t *testing.T) {
	// Reach * SectorBytes must equal the cacheline for every sweep point,
	// so one strided burst carries exactly one line's worth of payload.
	for _, g := range []Granularity{Gran16, Gran8, Gran4} {
		if g.Reach*g.SectorBytes != 64 {
			t.Errorf("%d-bit: reach %d x sector %dB != 64B", g.BitsPerChip, g.Reach, g.SectorBytes)
		}
	}
	if !Gran4.Gang || Gran8.Gang || Gran16.Gang {
		t.Error("only 4-bit granularity gangs ranks")
	}
}

func TestDesignConstruction(t *testing.T) {
	for _, k := range append([]Kind{Baseline, Ideal}, AllEvaluated()...) {
		d := New(k, Options{})
		if err := d.Mem.Validate(); err != nil {
			t.Errorf("%v: invalid memory config: %v", k, err)
		}
		if err := d.Power.Validate(); err != nil {
			t.Errorf("%v: invalid power model: %v", k, err)
		}
		if d.SubFieldSplit < 1 {
			t.Errorf("%v: SubFieldSplit %d", k, d.SubFieldSplit)
		}
	}
}

func TestSubstrates(t *testing.T) {
	if New(RCNVMWd, Options{}).Mem.Name == "DDR4-2400" {
		t.Error("RC-NVM should default to NVM")
	}
	if New(SAMEn, Options{}).Mem.Name != "DDR4-2400" {
		t.Error("SAM should default to DRAM")
	}
	// Fig. 14a swap.
	swapped := New(SAMEn, Options{Substrate: NVM, SubstrateSet: true})
	if swapped.Mem.Timing.TRCD != 35 {
		t.Errorf("NVM-substrate SAM tRCD = %d, want RRAM's 35", swapped.Mem.Timing.TRCD)
	}
	dramRC := New(RCNVMWd, Options{Substrate: DRAM, SubstrateSet: true})
	if dramRC.Mem.Timing.TRCD <= dram.DDR4_2400().Timing.TRCD {
		t.Error("DRAM-substrate RC-NVM should keep its area-scaled timing inflation")
	}
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" {
		t.Error("substrate names")
	}
}

func TestTimingInflationApplied(t *testing.T) {
	base := dram.DDR4_2400().Timing
	if d := New(SAMSub, Options{}); d.Mem.Timing.TRCD <= base.TRCD {
		t.Error("SAM-sub timing not inflated by its 7.2% area")
	}
	if d := New(SAMIO, Options{}); d.Mem.Timing.TRCD != base.TRCD {
		t.Error("SAM-IO (<0.01% area) must keep baseline timing")
	}
}

func TestChipkillPairing(t *testing.T) {
	if d := New(SAMEn, Options{Gran: Gran4}); d.Chipkill != ecc.SchemeSSCDSD {
		t.Errorf("4-bit granularity pairs with SSC-DSD, got %v", d.Chipkill)
	}
	if d := New(SAMEn, Options{Gran: Gran8}); d.Chipkill != ecc.SchemeSSC {
		t.Errorf("8-bit granularity pairs with SSC, got %v", d.Chipkill)
	}
	if New(GSDRAM, Options{}).HasECC {
		t.Error("plain GS-DRAM must not claim ECC")
	}
	if !New(GSDRAMecc, Options{}).HasECC {
		t.Error("GS-DRAM-ecc must claim ECC")
	}
}

func TestSectorGeometry(t *testing.T) {
	if n := New(Baseline, Options{}).SectorsPerLine(); n != 1 {
		t.Errorf("baseline sectors/line = %d", n)
	}
	if n := New(SAMEn, Options{Gran: Gran4}).SectorsPerLine(); n != 8 {
		t.Errorf("4-bit SAM sectors/line = %d, want 8", n)
	}
	if n := New(SAMEn, Options{Gran: Gran16}).SectorsPerLine(); n != 2 {
		t.Errorf("16-bit SAM sectors/line = %d, want 2", n)
	}
}

func TestStrideSupportFlags(t *testing.T) {
	for k, want := range map[Kind]bool{
		Baseline: false, Ideal: false,
		SAMSub: true, SAMIO: true, SAMEn: true,
		GSDRAM: true, GSDRAMecc: true, RCNVMBit: true, RCNVMWd: true,
	} {
		if got := New(k, Options{}).SupportsStride(); got != want {
			t.Errorf("%v stride support = %v, want %v", k, got, want)
		}
	}
}

func TestCriticalWordFirst(t *testing.T) {
	// Table 1's CWF row: SAM-IO and GS-DRAM variants lose critical-word-
	// first; SAM-en's 2-D I/O buffer restores it.
	for k, lost := range map[Kind]bool{
		SAMIO: true, GSDRAM: true, GSDRAMecc: true,
		SAMEn: false, SAMSub: false, Baseline: false,
	} {
		if got := New(k, Options{}).NoCriticalWordFirst; got != lost {
			t.Errorf("%v NoCriticalWordFirst = %v, want %v", k, got, lost)
		}
	}
}

func TestGangOnlyForSAM(t *testing.T) {
	if !New(SAMEn, Options{Gran: Gran4}).Gran.Gang {
		t.Error("SAM-en at 4-bit granularity should gang ranks")
	}
	for _, k := range []Kind{GSDRAM, GSDRAMecc, RCNVMBit, RCNVMWd} {
		if New(k, Options{Gran: Gran4}).Gran.Gang {
			t.Errorf("%v must not gang ranks", k)
		}
	}
}

func TestRCNVMSmallRows(t *testing.T) {
	d := New(RCNVMWd, Options{})
	if d.Mem.Geometry.RowBytes >= dram.DDR4_2400().Geometry.RowBytes {
		t.Error("reshaped RC-NVM should have smaller rows than DDR4")
	}
	// Substrate-swapped (DRAM) RC-NVM keeps DRAM geometry.
	swap := New(RCNVMWd, Options{Substrate: DRAM, SubstrateSet: true})
	if swap.Mem.Geometry.RowBytes != dram.DDR4_2400().Geometry.RowBytes {
		t.Error("DRAM-substrate RC-NVM should use DRAM rows")
	}
}

func TestPowerPersonalities(t *testing.T) {
	samIO := New(SAMIO, Options{})
	if samIO.Power.Stride.IDD4R <= samIO.Power.Regular.IDD4R {
		t.Error("SAM-IO stride current should be x16-class (higher)")
	}
	samEn := New(SAMEn, Options{})
	if samEn.Power.Stride.IDD4R != samEn.Power.Regular.IDD4R {
		t.Error("SAM-en fine-grained activation should restore x4-class stride current")
	}
	if samEn.Power.ActChipFraction >= 1 {
		t.Error("SAM-en should activate a fraction of mats")
	}
	samSub := New(SAMSub, Options{})
	if samSub.Power.BackgroundScale <= 1 {
		t.Error("SAM-sub should carry the +2% background uplift")
	}
}

func TestAllEvaluatedSet(t *testing.T) {
	kinds := AllEvaluated()
	if len(kinds) != 8 {
		t.Fatalf("evaluated set has %d designs, want 8", len(kinds))
	}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate %v", k)
		}
		seen[k] = true
	}
	if seen[Baseline] {
		t.Error("baseline is the normalization target, not an evaluated design")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind accepted")
		}
	}()
	New(Kind(42), Options{})
}
