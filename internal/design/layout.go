package design

import (
	"fmt"

	"sam/internal/imdb"
	"sam/internal/mc"
)

// Txn is one CPU-visible memory touch the executor generates. The cache
// decides hit or miss; Group describes how a miss is served when the design
// fetches strided groups instead of single lines.
type Txn struct {
	Addr     uint64
	Size     int
	Write    bool
	Sectored bool
	Group    *StrideGroup
}

// LineFill names one cacheline (partially) filled by a strided fetch.
type LineFill struct {
	LineAddr uint64
	Sectors  uint64
}

// StrideGroup describes the memory-side strided fetch serving a miss: one
// (or SubFieldSplit) strided burst(s) at ReqAddr that fill the listed
// sectors, plus any embedded-ECC companion traffic.
type StrideGroup struct {
	ReqAddr uint64
	Lane    int
	Gang    bool
	Bursts  int // usually 1; RC-NVM-bit's sub-field gather needs more
	Fills   []LineFill
}

// Placer turns logical (record, field) coordinates into transactions under
// one design's data layout. A Placer is built per (design, table, store).
type Placer struct {
	D      *Design
	Schema imdb.Schema
	// ColStore lays the table out column-major (the ideal design's choice
	// for column-preferring queries).
	ColStore bool
	// Slot separates tables in the physical address space.
	Slot int

	amap      *mc.AddrMap
	base      uint64
	lineBytes int
	rowBytes  int

	// Hybrid layout state (nil unless built with NewPlacerHybrid).
	hotFields       []int
	hotIdx          map[int]int
	coldOff         map[int]int
	coldRecordBytes int
	coldBase        uint64

	// Stripe geometry (column engines).
	recordsPerStripe int
	totalBanks       int
	rowsPerBank      int
	stripeRowBase    int // row-wise rows, per-bank, where this table starts
	colRowBase       int // synthetic column-direction row space

	// Gather scratch. The Txn a ReadField/WriteField returns points at
	// scratchGroup, so the group is valid only until the next field call on
	// this Placer — the engine consumes each Txn synchronously, which is the
	// contract that lets field access be allocation-free.
	scratchGroup   StrideGroup
	scratchMembers []int
}

// slotBytes is the address-space stride between table slots.
const slotBytes = 1 << 30

// NewPlacer builds a placer; it panics on unusable geometry (records larger
// than a DRAM row are outside the paper's design space).
func NewPlacer(d *Design, schema imdb.Schema, slot int, colStore bool) *Placer {
	p := &Placer{
		D:         d,
		Schema:    schema,
		ColStore:  colStore,
		Slot:      slot,
		amap:      mc.NewAddrMap(d.Mem.Geometry),
		base:      uint64(slot) * slotBytes,
		lineBytes: d.Mem.Geometry.LineBytes,
		rowBytes:  d.Mem.Geometry.RowBytes,
	}
	if schema.RecordBytes() > p.rowBytes {
		panic(fmt.Sprintf("design: record %dB exceeds row %dB", schema.RecordBytes(), p.rowBytes))
	}
	if d.ColumnEngine {
		n := d.Gran.Reach
		p.recordsPerStripe = n * p.rowBytes / schema.RecordBytes()
		if p.recordsPerStripe < n {
			p.recordsPerStripe = n
		}
		p.totalBanks = d.Mem.Geometry.TotalBanks()
		p.rowsPerBank = d.Mem.Geometry.RowsPerBank()
		region := p.rowsPerBank / 8
		p.stripeRowBase = slot * region
		p.colRowBase = p.rowsPerBank/2 + slot*region
	}
	return p
}

// fieldOffset returns the byte offset of a field within its record.
func fieldOffset(field int) int { return field * imdb.FieldBytes }

// seqAddr is the plain row-store address.
func (p *Placer) seqAddr(rec, field int) uint64 {
	return p.base + uint64(rec)*uint64(p.Schema.RecordBytes()) + uint64(fieldOffset(field))
}

// colAddr is the column-store address (field-major).
func (p *Placer) colAddr(rec, field int) uint64 {
	return p.base + (uint64(field)*uint64(p.Schema.Records)+uint64(rec))*imdb.FieldBytes
}

// stripeCoords decomposes a record for the stripe layout of column-engine
// designs (Fig. 11a with RC-NVM's row-scale alignment): a stripe is Reach
// rows of one bank; records fill each row contiguously before moving to the
// next row of the same bank — so row-wise scans conflict at row boundaries
// in one bank, and the column direction gathers the same in-row position
// across the stripe's rows.
// Records are dealt to the stripe's rows in chunks of ChunkRecords, so a
// row-wise scan switches rows (same bank) every chunk; pos is the record's
// position within its row.
func (p *Placer) stripeCoords(rec int) (stripe, rowInStripe, pos int) {
	stripe = rec / p.recordsPerStripe
	r := rec % p.recordsPerStripe
	c := p.chunkRecords()
	n := p.D.Gran.Reach
	chunk, off := r/c, r%c
	rowInStripe = chunk % n
	pos = (chunk/n)*c + off
	return stripe, rowInStripe, pos
}

func (p *Placer) chunkRecords() int {
	c := p.D.ChunkRecords
	if c < 1 {
		c = 1
	}
	perRow := p.recordsPerRow()
	if c > perRow {
		c = perRow
	}
	return c
}

func (p *Placer) recordsPerRow() int {
	perRow := p.rowBytes / p.Schema.RecordBytes()
	if perRow < 1 {
		perRow = 1
	}
	return perRow
}

// stripeRowAddr is the row-wise (record-order) address in the stripe
// layout.
func (p *Placer) stripeRowAddr(rec, field int) uint64 {
	stripe, rowInStripe, pos := p.stripeCoords(rec)
	bank := stripe % p.totalBanks
	rowInBank := p.stripeRowBase + (stripe/p.totalBanks)*p.D.Gran.Reach + rowInStripe
	byteInRow := pos*p.Schema.RecordBytes() + fieldOffset(field)
	return p.encodeBankRow(bank, rowInBank, byteInRow)
}

// stripeColAddr is the synthetic column-direction address used for the
// timing of a strided gather: the "row" is (stripe, line-of-record), so
// scanning one field walks columns (row hits) while switching to a field in
// a different record line forces a row conflict in the same bank — the
// field-switch cost of Section 6.2.
func (p *Placer) stripeColAddr(rec, field int) uint64 {
	stripe, _, pos := p.stripeCoords(rec)
	bank := stripe % p.totalBanks
	fieldLine := fieldOffset(field) / p.lineBytes
	linesPerRecord := (p.Schema.RecordBytes() + p.lineBytes - 1) / p.lineBytes
	rowInBank := p.colRowBase + (stripe/p.totalBanks)*linesPerRecord + fieldLine
	byteInRow := (pos * p.lineBytes) % p.rowBytes
	return p.encodeBankRow(bank, rowInBank, byteInRow)
}

func (p *Placer) encodeBankRow(bank, row, byteInRow int) uint64 {
	g := p.D.Mem.Geometry
	co := mc.Coord{
		Rank:   bank / g.Banks(),
		Group:  (bank % g.Banks()) % g.BankGroups,
		Bank:   (bank % g.Banks()) / g.BankGroups,
		Row:    row,
		Col:    byteInRow / p.lineBytes,
		Offset: byteInRow % p.lineBytes,
	}
	return p.amap.Encode(co)
}

// canonAddr is the CPU-visible address of (rec, field) — what the cache is
// indexed by.
func (p *Placer) canonAddr(rec, field int) uint64 {
	switch {
	case p.hotIdx != nil:
		return p.hybridAddr(rec, field)
	case p.ColStore:
		return p.colAddr(rec, field)
	case p.D.ColumnEngine:
		return p.stripeRowAddr(rec, field)
	default:
		return p.seqAddr(rec, field)
	}
}

func (p *Placer) lineOf(addr uint64) uint64 {
	return addr &^ uint64(p.lineBytes-1)
}

func (p *Placer) sectorBit(addr uint64) uint64 {
	off := int(addr) & (p.lineBytes - 1)
	return 1 << uint(off/p.D.Gran.SectorBytes)
}

// groupMembers returns the records one strided burst gathers along with
// rec. For I/O-buffer designs that is Reach *consecutive* aligned records
// (Fig. 11a); for column engines it is the records at rec's in-row
// position across the stripe's Reach rows (the crossbar's column
// direction).
func (p *Placer) groupMembers(rec int) []int {
	return p.appendGroupMembers(make([]int, 0, p.D.Gran.Reach), rec)
}

// appendGroupMembers appends rec's gather group to members, letting the hot
// path reuse the placer's member scratch instead of allocating per access.
func (p *Placer) appendGroupMembers(members []int, rec int) []int {
	n := p.D.Gran.Reach
	if !p.D.ColumnEngine {
		first := (rec / n) * n
		for r := first; r < first+n && r < p.Schema.Records; r++ {
			members = append(members, r)
		}
		return members
	}
	stripe, _, pos := p.stripeCoords(rec)
	c := p.chunkRecords()
	slot, off := pos/c, pos%c
	for row := 0; row < n; row++ {
		chunk := slot*n + row
		r := stripe*p.recordsPerStripe + chunk*c + off
		if r < p.Schema.Records {
			members = append(members, r)
		}
	}
	return members
}

// strideGroup builds the gather serving field accesses of rec's alignment
// group: the same field sector of the group's records in one burst.
func (p *Placer) strideGroup(rec, field int) *StrideGroup {
	g := &p.scratchGroup
	*g = StrideGroup{
		Lane:   (fieldOffset(field) / p.D.Gran.SectorBytes) % 4,
		Gang:   p.D.Gran.Gang,
		Bursts: p.D.SubFieldSplit,
		Fills:  g.Fills[:0],
	}
	members := p.appendGroupMembers(p.scratchMembers[:0], rec)
	p.scratchMembers = members[:0]
	if p.D.ColumnEngine {
		g.ReqAddr = p.stripeColAddr(members[0], field)
	} else {
		g.ReqAddr = p.seqAddr(members[0], field)
	}
	// Collect the (line, sector) fills, merging records that share a line —
	// a linear scan keeps first-seen order and, with at most Reach members,
	// beats a map without allocating.
	for _, r := range members {
		addr := p.canonAddr(r, field)
		line := p.lineOf(addr)
		merged := false
		for i := range g.Fills {
			if g.Fills[i].LineAddr == line {
				g.Fills[i].Sectors |= p.sectorBit(addr)
				merged = true
				break
			}
		}
		if !merged {
			g.Fills = append(g.Fills, LineFill{LineAddr: line, Sectors: p.sectorBit(addr)})
		}
	}
	return g
}

// fieldTxn builds the transaction for one field access.
func (p *Placer) fieldTxn(rec, field int, write bool) Txn {
	t := Txn{
		Addr:  p.canonAddr(rec, field),
		Size:  imdb.FieldBytes,
		Write: write,
	}
	if p.D.SupportsStride() && !p.ColStore && p.hotIdx == nil {
		t.Sectored = true
		t.Group = p.strideGroup(rec, field)
	}
	return t
}

// ReadField returns the transaction reading one field.
func (p *Placer) ReadField(rec, field int) Txn { return p.fieldTxn(rec, field, false) }

// WriteField returns the transaction writing one field (sstore path on
// strided designs).
func (p *Placer) WriteField(rec, field int) Txn { return p.fieldTxn(rec, field, true) }

// recordTxns covers a whole record line by line (row-wise access).
func (p *Placer) recordTxns(rec int, write bool) []Txn {
	rb := p.Schema.RecordBytes()
	if p.hotIdx != nil {
		// Hybrid: hot fields scattered across their columns, cold fields in
		// one contiguous shrunken record.
		var txns []Txn
		for _, f := range p.hotFields {
			txns = append(txns, Txn{Addr: p.hybridAddr(rec, f), Size: imdb.FieldBytes, Write: write})
		}
		start := p.coldBase + uint64(rec)*uint64(p.coldRecordBytes)
		for off := 0; off < p.coldRecordBytes; {
			addr := start + uint64(off)
			span := p.lineBytes - int(addr)&(p.lineBytes-1)
			if span > p.coldRecordBytes-off {
				span = p.coldRecordBytes - off
			}
			txns = append(txns, Txn{Addr: addr, Size: span, Write: write})
			off += span
		}
		return txns
	}
	if p.ColStore {
		// Column store scatters the record across field columns.
		txns := make([]Txn, 0, p.Schema.Fields)
		for f := 0; f < p.Schema.Fields; f++ {
			txns = append(txns, Txn{Addr: p.colAddr(rec, f), Size: imdb.FieldBytes, Write: write})
		}
		return txns
	}
	var txns []Txn
	start := p.canonAddr(rec, 0)
	for off := 0; off < rb; {
		addr := start + uint64(off)
		span := p.lineBytes - int(addr)&(p.lineBytes-1)
		if span > rb-off {
			span = rb - off
		}
		txns = append(txns, Txn{Addr: addr, Size: span, Write: write})
		off += span
	}
	return txns
}

// ReadRecord returns the transactions reading a whole record.
func (p *Placer) ReadRecord(rec int) []Txn { return p.recordTxns(rec, false) }

// WriteRecord returns the transactions writing a whole record (INSERT).
func (p *Placer) WriteRecord(rec int) []Txn { return p.recordTxns(rec, true) }

// ECCReadCompanion returns the embedded-ECC read that accompanies every
// ECCReadPeriod-th strided fetch on GS-DRAM-ecc: the check bits live in the
// same page, one line over.
func (p *Placer) ECCReadCompanion(g *StrideGroup) uint64 {
	return g.ReqAddr + uint64(p.lineBytes)
}

// Footprint returns the table's byte footprint under this layout (used by
// capacity checks; stripe layouts are accounted in row regions instead).
func (p *Placer) Footprint() uint64 {
	return uint64(p.Schema.Records) * uint64(p.Schema.RecordBytes())
}

// Hybrid storage (the H2O/Peloton-style scenario Section 6.2's sweeps
// motivate): a chosen subset of hot fields is stored column-major while
// the remaining cold fields stay row-major. Scans of hot fields get
// column-store efficiency without SAM hardware; everything else pays the
// split-record cost.

// NewPlacerHybrid builds a placer whose hot fields are columnar. It panics
// if hotFields repeats or exceeds the schema.
func NewPlacerHybrid(d *Design, schema imdb.Schema, slot int, hotFields []int) *Placer {
	p := NewPlacer(d, schema, slot, false)
	seen := map[int]bool{}
	for _, f := range hotFields {
		if f < 0 || f >= schema.Fields || seen[f] {
			panic(fmt.Sprintf("design: bad hybrid hot field %d", f))
		}
		seen[f] = true
	}
	p.hotFields = append([]int(nil), hotFields...)
	p.hotIdx = make(map[int]int, len(hotFields))
	for i, f := range hotFields {
		p.hotIdx[f] = i
	}
	// Cold fields keep their relative order, packed into shrunken records.
	p.coldOff = make(map[int]int, schema.Fields-len(hotFields))
	off := 0
	for f := 0; f < schema.Fields; f++ {
		if !seen[f] {
			p.coldOff[f] = off
			off += imdb.FieldBytes
		}
	}
	p.coldRecordBytes = off
	p.coldBase = p.base + uint64(len(hotFields))*uint64(schema.Records)*imdb.FieldBytes
	return p
}

// Hybrid reports whether the placer uses the hybrid layout.
func (p *Placer) Hybrid() bool { return p.hotIdx != nil }

// hybridAddr resolves (rec, field) under the hybrid layout.
func (p *Placer) hybridAddr(rec, field int) uint64 {
	if i, hot := p.hotIdx[field]; hot {
		return p.base + (uint64(i)*uint64(p.Schema.Records)+uint64(rec))*imdb.FieldBytes
	}
	return p.coldBase + uint64(rec)*uint64(p.coldRecordBytes) + uint64(p.coldOff[field])
}
