// Package design defines the evaluated memory-design points — baseline
// row-store DRAM, the three SAM variants, GS-DRAM (with and without
// embedded ECC), the two RC-NVM variants, and the per-query ideal — as
// configuration over the dram/nvm timing models, the power models, the
// chipkill schemes, and the data-layout/access-generation rules each design
// imposes on the IMDB tables.
package design

import (
	"fmt"

	"sam/internal/area"
	"sam/internal/dram"
	"sam/internal/ecc"
	"sam/internal/nvm"
	"sam/internal/power"
)

// Kind enumerates the design points of the evaluation (Fig. 12).
type Kind int

// Design kinds.
const (
	Baseline Kind = iota // commodity DRAM, row store (normalization base)
	Ideal                // row- or column-store, whichever the query prefers
	SAMSub
	SAMIO
	SAMEn
	GSDRAM
	GSDRAMecc
	RCNVMBit
	RCNVMWd
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case Ideal:
		return "ideal"
	case SAMSub:
		return "SAM-sub"
	case SAMIO:
		return "SAM-IO"
	case SAMEn:
		return "SAM-en"
	case GSDRAM:
		return "GS-DRAM"
	case GSDRAMecc:
		return "GS-DRAM-ecc"
	case RCNVMBit:
		return "RC-NVM-bit"
	case RCNVMWd:
		return "RC-NVM-wd"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Granularity is the strided access granularity (Section 4.4 / Fig. 14b):
// how many bytes one chip-level symbol group contributes and how many
// consecutive cachelines one strided burst reaches.
type Granularity struct {
	BitsPerChip int  // 16, 8, or 4
	SectorBytes int  // strided datum (cache sector) size
	Reach       int  // cachelines gathered per strided burst
	Gang        bool // 4-bit granularity drives both ranks (Fig. 9e)
}

// Gran16, Gran8, Gran4 are the Fig. 14b sweep points. Gran4 matches the
// default SSC-DSD configuration of the evaluation.
var (
	Gran16 = Granularity{BitsPerChip: 16, SectorBytes: 32, Reach: 2}
	Gran8  = Granularity{BitsPerChip: 8, SectorBytes: 16, Reach: 4}
	Gran4  = Granularity{BitsPerChip: 4, SectorBytes: 8, Reach: 8, Gang: true}
)

// Design is one fully configured design point.
type Design struct {
	Kind Kind
	Name string

	Mem   dram.Config
	Power power.Model

	// Strided capability. Reach 0 means no strided support.
	Gran Granularity

	// ModeSwitch: accesses use SAM I/O modes (tRTR per switch). GS-DRAM
	// instead extends the command interface (no switch penalty, Table 1).
	ModeSwitch bool

	// ColumnEngine: strided data comes from a dual-addressed column
	// direction (SAM-sub, RC-NVM) rather than the I/O buffers, which also
	// forces the interleaved stripe record layout (and its Qs penalty).
	ColumnEngine bool

	// SubFieldSplit multiplies strided bursts (RC-NVM-bit's bit-level
	// symmetry gathers a field group in several narrower column accesses).
	SubFieldSplit int

	// ChunkRecords is the record-interleave unit of the stripe layout:
	// consecutive records switch to the next row of the same bank every
	// ChunkRecords records. Smaller chunks mean worse row locality for
	// row-wise (Qs) scans — RC-NVM's KB-scale alignment (2) hurts more
	// than SAM-sub's (8).
	ChunkRecords int

	// ECCReadPeriod: one extra embedded-ECC burst per this many strided
	// read bursts (GS-DRAM-ecc); 0 disables. ECCRegularPeriod does the same
	// for regular line fills (embedded ECC displaces data everywhere).
	// ECCWriteRMW adds an ECC read-modify-write pair per strided write
	// fetch period.
	ECCReadPeriod    int
	ECCRegularPeriod int
	ECCWriteRMW      bool

	// NoCriticalWordFirst marks layouts that cannot deliver the critical
	// word first (SAM-IO's transposed codewords, GS-DRAM's concentrated
	// words): the requested datum arrives at the end of the burst instead
	// of the start — a small (<1%) latency cost, per Section 4.2.2.
	NoCriticalWordFirst bool

	// Chipkill is the codeword scheme the design can sustain; HasECC is
	// false for plain GS-DRAM (its headline limitation).
	Chipkill ecc.Scheme
	HasECC   bool

	// Area is the silicon/storage overhead model (Fig. 14c).
	Area area.Overhead
}

// SupportsStride reports whether the design accelerates strided access.
func (d *Design) SupportsStride() bool { return d.Gran.Reach > 1 }

// BurstScheme returns the codeword-to-burst orientation the design's data
// path realizes at the DRAM burst boundary — the layout the fault injector
// must decode against. SAM-IO serializes each chip's I/O buffer over the
// beats, transposing the burst, so with 8-bit symbols its codewords land in
// the lane-wise Fig. 4c orientation; every other design (and the 4-bit
// SSC-DSD geometry, whose beat-pair symbols survive the transpose) keeps
// the scheme's canonical Fig. 4b mapping.
func (d *Design) BurstScheme() ecc.Scheme {
	if d.Kind == SAMIO && d.Chipkill == ecc.SchemeSSC {
		return ecc.SchemeSSCVariant
	}
	return d.Chipkill
}

// SectorsPerLine returns the sector-cache geometry the design needs.
func (d *Design) SectorsPerLine() int {
	if !d.SupportsStride() {
		return 1
	}
	return d.Mem.Geometry.LineBytes / d.Gran.SectorBytes
}

// Substrate selects the memory technology for the Fig. 14a swap study.
type Substrate int

// Substrates.
const (
	DRAM Substrate = iota
	NVM
)

// String names the substrate.
func (s Substrate) String() string {
	if s == NVM {
		return "NVM"
	}
	return "DRAM"
}

func baseConfig(s Substrate) dram.Config {
	if s == NVM {
		return dram.RRAM()
	}
	return dram.DDR4_2400()
}

func basePower(s Substrate, chips int) power.Model {
	if s == NVM {
		return power.RRAMModel(chips)
	}
	return power.DDR4Model(chips)
}

// Options tweak design construction.
type Options struct {
	Gran      Granularity // zero value selects the design default (Gran4)
	Substrate Substrate   // Fig. 14a swap; designs default to their paper substrate
	// SubstrateSet forces Substrate to be honored even for designs with a
	// fixed paper substrate.
	SubstrateSet bool
}

func (o Options) gran() Granularity {
	if o.Gran.Reach == 0 {
		return Gran4
	}
	return o.Gran
}

// Canon resolves the design defaults for kind into explicit option
// values: the zero granularity becomes Gran4 and the substrate becomes
// the design's paper substrate unless SubstrateSet forces it. Two
// Options values that build identical designs for a kind canonicalize
// identically — Options{} and {Substrate: DRAM, SubstrateSet: true} are
// the same design point for a DRAM-default kind — which is the property
// the memo cache keys on. New applies Canon itself, so Canon(Canon(o))
// == Canon(o) and canonical options always rebuild the same design.
func (o Options) Canon(kind Kind) Options {
	c := Options{Gran: o.gran(), SubstrateSet: true}
	switch kind {
	case RCNVMBit, RCNVMWd:
		c.Substrate = NVM
	}
	if o.SubstrateSet {
		c.Substrate = o.Substrate
	}
	return c
}

// chipsFor returns rank width for power accounting under the scheme.
func chipsFor(scheme ecc.Scheme) int {
	if scheme == ecc.SchemeSSCDSD {
		return ecc.SSCDSDChips
	}
	return ecc.SSCChips
}

// schemeFor maps granularity to the chipkill scheme it pairs with
// (Section 4.4: 4-bit symbols belong to SSC-DSD, 8-bit to SSC).
func schemeFor(g Granularity) ecc.Scheme {
	if g.BitsPerChip == 4 {
		return ecc.SchemeSSCDSD
	}
	return ecc.SchemeSSC
}

// New builds a design point.
func New(kind Kind, opts Options) *Design {
	opts = opts.Canon(kind)
	g := opts.Gran
	scheme := schemeFor(g)
	chips := chipsFor(scheme)
	sub := opts.Substrate

	d := &Design{
		Kind:     kind,
		Name:     kind.String(),
		Mem:      baseConfig(sub),
		Power:    basePower(sub, chips),
		Chipkill: scheme,
		HasECC:   true,
	}

	switch kind {
	case Baseline, Ideal:
		// No strided support; plain layouts.
	case SAMSub:
		d.Gran = g
		d.ColumnEngine = true
		d.ChunkRecords = 8
		d.ModeSwitch = true
		d.Area = area.SAMSub()
		d.Mem.Timing = d.Mem.Timing.Scale(area.TimingInflation(d.Area))
		d.Power.BackgroundScale = 1.02 // extra decode + SA logic (Section 6.1)
	case SAMIO:
		d.Gran = g
		d.ModeSwitch = true
		d.NoCriticalWordFirst = true
		d.Area = area.SAMIO()
		// Stride fetches energize the x16 datapath.
		if sub == DRAM {
			d.Power.Stride = power.DDR4x16()
		}
	case SAMEn:
		d.Gran = g
		d.ModeSwitch = true
		d.Area = area.SAMEn()
		d.Mem.Timing = d.Mem.Timing.Scale(area.TimingInflation(d.Area))
		// Fine-grained activation: only the mats holding requested data
		// open, restoring x4-class stride power and cheaper ACTs.
		d.Power.ActChipFraction = 0.25
	case GSDRAM:
		// GS-DRAM gathers across chips by driving different rows per chip,
		// so its reach matches SAM's without rank ganging — but it runs
		// without any ECC (its headline limitation).
		d.Gran = g
		d.Gran.Gang = false
		d.HasECC = false
		d.NoCriticalWordFirst = true
		d.Area = area.GSDRAM()
	case GSDRAMecc:
		d.Gran = g
		d.Gran.Gang = false
		d.NoCriticalWordFirst = true
		d.ECCReadPeriod = 2
		d.ECCRegularPeriod = 8
		d.ECCWriteRMW = true
		d.Area = area.GSDRAMecc()
	case RCNVMBit:
		d.Gran = g
		d.Gran.Gang = false
		d.ColumnEngine = true
		d.ChunkRecords = 2
		d.SubFieldSplit = 2
		if sub == NVM {
			d.Mem = nvm.ReshapedSquare()
		}
		d.Area = area.RCNVMBit()
		d.Mem.Timing = d.Mem.Timing.Scale(area.TimingInflation(d.Area))
	case RCNVMWd:
		d.Gran = g
		d.Gran.Gang = false
		d.ColumnEngine = true
		d.ChunkRecords = 2
		if sub == NVM {
			d.Mem = nvm.ReshapedSquare()
		}
		d.Area = area.RCNVMWord()
		d.Mem.Timing = d.Mem.Timing.Scale(area.TimingInflation(d.Area))
	default:
		panic(fmt.Sprintf("design: unknown kind %v", kind))
	}
	if d.SubFieldSplit == 0 {
		d.SubFieldSplit = 1
	}
	return d
}

// AllEvaluated returns the Fig. 12 comparison set in presentation order.
func AllEvaluated() []Kind {
	return []Kind{RCNVMBit, RCNVMWd, GSDRAM, GSDRAMecc, SAMSub, SAMIO, SAMEn, Ideal}
}
