package sim

import (
	"testing"

	"sam/internal/cache"
	"sam/internal/design"
	"sam/internal/imdb"
)

func engineFor(kind design.Kind) *engine {
	d := design.New(kind, design.Options{})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(64), 1), false)
	return newEngine(s)
}

func TestSpendAccumulatesFractions(t *testing.T) {
	e := engineFor(design.Baseline)
	// 1 CPU cycle = 0.3/4-core = 0.075 bus cycles; 40 of them = 3 cycles.
	for i := 0; i < 40; i++ {
		e.spend(1)
	}
	total := float64(e.clock) + e.frac
	if total < 2.999 || total > 3.001 {
		t.Fatalf("clock+frac = %v after 40x1 CPU cycles, want ~3", total)
	}
	if e.frac < 0 || e.frac >= 1 {
		t.Fatalf("fraction accumulator out of range: %v", e.frac)
	}
}

func TestMemOpRequestMapping(t *testing.T) {
	e := engineFor(design.SAMEn)
	// Sectored op on a strided design becomes a strided request.
	r := e.memOpRequest(cache.MemOp{Addr: 0x40, IsWrite: true, Sectored: true}, 2, true)
	if !r.Stride || !r.Gang || r.Lane != 2 || !r.IsWrite {
		t.Fatalf("strided writeback mapping: %+v", r)
	}
	// Non-sectored op stays regular even with gang requested.
	r = e.memOpRequest(cache.MemOp{Addr: 0x40}, 2, true)
	if r.Stride || r.Gang {
		t.Fatalf("regular op mapped strided: %+v", r)
	}
	// Baseline designs never stride.
	be := engineFor(design.Baseline)
	r = be.memOpRequest(cache.MemOp{Addr: 0x40, Sectored: true}, 0, false)
	if r.Stride {
		t.Fatal("baseline op mapped strided")
	}
}

func TestEngineRunRelativeBase(t *testing.T) {
	d := design.New(design.Baseline, design.Options{})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(64), 1), false)
	// Drive some traffic, then a fresh engine must snapshot a nonzero t0.
	if _, err := s.RunQuery("SELECT f1 FROM Ta WHERE f0 < 99", nil); err != nil {
		t.Fatal(err)
	}
	e := newEngine(s)
	if e.t0 == 0 {
		t.Fatal("second engine did not snapshot the warm timeline")
	}
	if e.devBase[0].Reads == 0 {
		t.Fatal("device stats baseline not captured")
	}
}

func TestInjectFaultPolicies(t *testing.T) {
	d := design.New(design.SAMEn, design.Options{})
	s := NewSystem(d)
	s.Faults = &FaultModel{DeadChip: 3, Seed: 9}
	s.AddTable(imdb.NewTable(imdb.Ta(64), 1), false)
	e := newEngine(s)
	for i := 0; i < faultVerifyBursts+10; i++ {
		e.injectFault()
	}
	if e.corrected != faultVerifyBursts+10 || e.uncorrectable != 0 {
		t.Fatalf("chipkill fault path: corrected=%d uncorrectable=%d", e.corrected, e.uncorrectable)
	}
	// GS-DRAM (no ECC): everything is uncorrectable.
	g := design.New(design.GSDRAM, design.Options{})
	gs := NewSystem(g)
	gs.Faults = &FaultModel{DeadChip: 3, Seed: 9}
	gs.AddTable(imdb.NewTable(imdb.Ta(64), 2), false)
	ge := newEngine(gs)
	ge.injectFault()
	if ge.uncorrectable != 1 || ge.corrected != 0 {
		t.Fatalf("no-ECC fault path: %d/%d", ge.corrected, ge.uncorrectable)
	}
}

func TestStatsDeltaHelpers(t *testing.T) {
	a := engineFor(design.Baseline)
	cur := a.sys.devices[0].Stats
	cur.Reads = 10
	cur.Acts = 4
	base := cur
	base.Reads = 3
	base.Acts = 1
	d := subDeviceStats(cur, base)
	if d.Reads != 7 || d.Acts != 3 {
		t.Fatalf("device delta: %+v", d)
	}
	var sum = d
	addDeviceStats(&sum, d)
	if sum.Reads != 14 {
		t.Fatalf("device sum: %+v", sum)
	}
}
