package sim

import (
	"encoding/json"
	"testing"

	"sam/internal/cache"
	"sam/internal/design"
	"sam/internal/dram"
	"sam/internal/imdb"
)

func engineFor(kind design.Kind) *engine {
	d := design.New(kind, design.Options{})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(64), 1), false)
	return newEngine(s)
}

func TestSpendAccumulatesFractions(t *testing.T) {
	e := engineFor(design.Baseline)
	// 1 CPU cycle = 0.3/4-core = 0.075 bus cycles; 40 of them = 3 cycles.
	for i := 0; i < 40; i++ {
		e.spend(1)
	}
	total := float64(e.clock) + e.frac
	if total < 2.999 || total > 3.001 {
		t.Fatalf("clock+frac = %v after 40x1 CPU cycles, want ~3", total)
	}
	if e.frac < 0 || e.frac >= 1 {
		t.Fatalf("fraction accumulator out of range: %v", e.frac)
	}
}

func TestMemOpRequestMapping(t *testing.T) {
	e := engineFor(design.SAMEn)
	// Sectored op on a strided design becomes a strided request.
	r := e.memOpRequest(cache.MemOp{Addr: 0x40, IsWrite: true, Sectored: true}, 2, true)
	if !r.Stride || !r.Gang || r.Lane != 2 || !r.IsWrite {
		t.Fatalf("strided writeback mapping: %+v", r)
	}
	// Non-sectored op stays regular even with gang requested.
	r = e.memOpRequest(cache.MemOp{Addr: 0x40}, 2, true)
	if r.Stride || r.Gang {
		t.Fatalf("regular op mapped strided: %+v", r)
	}
	// Baseline designs never stride.
	be := engineFor(design.Baseline)
	r = be.memOpRequest(cache.MemOp{Addr: 0x40, Sectored: true}, 0, false)
	if r.Stride {
		t.Fatal("baseline op mapped strided")
	}
}

func TestEngineRunRelativeBase(t *testing.T) {
	d := design.New(design.Baseline, design.Options{})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(64), 1), false)
	// Drive some traffic, then a fresh engine must snapshot a nonzero t0.
	if _, err := s.RunQuery("SELECT f1 FROM Ta WHERE f0 < 99", nil); err != nil {
		t.Fatal(err)
	}
	e := newEngine(s)
	if e.t0 == 0 {
		t.Fatal("second engine did not snapshot the warm timeline")
	}
	if e.devBase[0].Reads == 0 {
		t.Fatal("device stats baseline not captured")
	}
}

func TestFaultInjectorWiring(t *testing.T) {
	d := design.New(design.SAMEn, design.Options{})
	s := NewSystem(d)
	s.Faults = DeadChipFault(3, 9)
	s.AddTable(imdb.NewTable(imdb.Ta(64), 1), false)
	e := newEngine(s)
	if len(e.injectors) != s.Channels() {
		t.Fatalf("%d injectors for %d channels", len(e.injectors), s.Channels())
	}
	for ch := 0; ch < s.Channels(); ch++ {
		if s.devices[ch].Probe == nil {
			t.Fatalf("channel %d device has no probe", ch)
		}
		if v := e.injectors[ch].DataBurst(dram.Command{Kind: dram.CmdRD}, 0); v != dram.BurstCorrected {
			t.Fatalf("channel %d dead-chip burst verdict %v, want corrected", ch, v)
		}
	}
	// Channels must draw independent fault streams from one run seed.
	if s.Channels() > 1 && channelFaultSeed(9, 0) == channelFaultSeed(9, 1) {
		t.Fatal("channel fault seeds collide")
	}
	// A later clean engine on the same warm system detaches every probe.
	s.Faults = nil
	newEngine(s)
	for ch := 0; ch < s.Channels(); ch++ {
		if s.devices[ch].Probe != nil {
			t.Fatalf("channel %d probe survived a clean run", ch)
		}
	}

	// GS-DRAM (no ECC): every biting fault is silent corruption.
	g := design.New(design.GSDRAM, design.Options{})
	gs := NewSystem(g)
	gs.Faults = DeadChipFault(3, 9)
	gs.AddTable(imdb.NewTable(imdb.Ta(64), 2), false)
	ge := newEngine(gs)
	ge.injectors[0].DataBurst(dram.Command{Kind: dram.CmdRD}, 0)
	if c := ge.injectors[0].Counters; c.SilentCorruptions != 1 || c.CorrectedBursts != 0 {
		t.Fatalf("no-ECC fault path: %+v", c)
	}
}

func TestStatsDeltaHelpers(t *testing.T) {
	a := engineFor(design.Baseline)
	cur := a.sys.devices[0].Stats.Clone()
	cur.Reads = 10
	cur.Acts = 4
	cur.PerBank[0].Acts = 4
	base := cur.Clone()
	base.Reads = 3
	base.Acts = 1
	base.PerBank[0].Acts = 1
	d := cur.Sub(base)
	if d.Reads != 7 || d.Acts != 3 || d.PerBank[0].Acts != 3 {
		t.Fatalf("device delta: %+v", d)
	}
	sum := d.Clone()
	sum.Add(d)
	if sum.Reads != 14 || sum.PerBank[0].Acts != 6 {
		t.Fatalf("device sum: %+v", sum)
	}
	if base.PerBank[0].Acts != 1 {
		t.Fatalf("baseline aliased the per-bank slice: %+v", base.PerBank[0])
	}
}

func TestRunStatsObservability(t *testing.T) {
	d := design.New(design.SAMEn, design.Options{})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(512), 3), false)
	r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats
	if st.Metrics == nil {
		t.Fatal("run produced no metrics snapshot")
	}
	// The strided design issues both classes of read; every class that saw
	// traffic must be a registered histogram, and total latency
	// observations must cover every memory request.
	var latTotal uint64
	for _, name := range []string{
		"mc.lat.read.normal", "mc.lat.read.stride",
		"mc.lat.write.normal", "mc.lat.write.stride",
	} {
		h, ok := st.Metrics.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s not in snapshot (have %v)", name, st.Metrics.Names())
		}
		latTotal += h.Total
	}
	if latTotal != st.MemRequests {
		t.Fatalf("latency observations %d != memory requests %d", latTotal, st.MemRequests)
	}
	if st.Metrics.Histograms["mc.lat.read.stride"].Total == 0 {
		t.Fatal("SAM-en run recorded no strided reads")
	}
	// Per-bank accounting: sums must match the device-wide tallies, and
	// the per-bank energy split must cover the ActPre total.
	var acts, hits uint64
	for _, b := range st.Device.PerBank {
		acts += b.Acts
		hits += b.RowHits
	}
	if acts != st.Device.Acts {
		t.Fatalf("per-bank Acts sum %d != device Acts %d", acts, st.Device.Acts)
	}
	if acts > 0 && hits == 0 {
		t.Fatal("streaming scan recorded no per-bank row hits")
	}
	if len(st.BankActPreNJ) != len(st.Device.PerBank) {
		t.Fatalf("BankActPreNJ length %d != PerBank length %d", len(st.BankActPreNJ), len(st.Device.PerBank))
	}
	var bankE float64
	for _, e := range st.BankActPreNJ {
		bankE += e
	}
	if diff := bankE - st.Energy.ActPre; diff > 1e-6*st.Energy.ActPre || diff < -1e-6*st.Energy.ActPre {
		t.Fatalf("per-bank ActPre %v != breakdown ActPre %v", bankE, st.Energy.ActPre)
	}
	// The whole report must serialize to valid, round-trippable JSON.
	enc, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back RunStats
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("run stats JSON does not round-trip: %v", err)
	}
	if back.Metrics == nil || back.Metrics.Histograms["mc.lat.read.stride"].Total != st.Metrics.Histograms["mc.lat.read.stride"].Total {
		t.Fatal("metrics lost in JSON round trip")
	}
}
