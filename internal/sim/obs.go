package sim

import (
	"sync/atomic"

	"sam/internal/stats"
)

// Shard-engine observability: process-wide counters the live telemetry
// plane (internal/obs) scrapes while sweeps run. They are plain atomics —
// never read by the engine itself — so they cannot perturb the
// determinism contract, and incrementing them costs one uncontended
// atomic add per sharded run / epoch barrier (both far off the per-op
// hot path).
var (
	shardRuns   atomic.Uint64 // sharded runs started
	shardEpochs atomic.Uint64 // epoch barriers executed across all sharded runs
	domainPulse atomic.Pointer[func(worker int)]
)

// SetDomainPulse installs the process-wide domain-worker heartbeat: every
// lane worker of every subsequently started sharded run calls fn with its
// worker index after each executed batch. fn must be goroutine-safe and
// cheap. Passing nil uninstalls the heartbeat. Runs already in flight
// keep the hook they started with.
func SetDomainPulse(fn func(worker int)) {
	if fn == nil {
		domainPulse.Store(nil)
		return
	}
	domainPulse.Store(&fn)
}

// loadDomainPulse reads the installed heartbeat (nil when unset).
func loadDomainPulse() func(worker int) {
	if p := domainPulse.Load(); p != nil {
		return *p
	}
	return nil
}

// ShardObsSnapshot freezes the sharded-engine counters as an
// internal/stats snapshot (sim.shard.runs, sim.shard.epochs), ready to
// merge into a /metrics scrape. The snapshot is monotonic across calls,
// so scrape-to-scrape deltas yield the epoch rate.
func ShardObsSnapshot() *stats.Snapshot {
	return &stats.Snapshot{Counters: map[string]uint64{
		"sim.shard.runs":   shardRuns.Load(),
		"sim.shard.epochs": shardEpochs.Load(),
	}}
}
