package sim

import (
	"fmt"

	"sam/internal/cache"
	"sam/internal/design"
	"sam/internal/dram"
	"sam/internal/etrace"
	"sam/internal/fault"
	"sam/internal/mc"
	"sam/internal/power"
	"sam/internal/stats"
	"sam/internal/trace"
)

// engine drives one workload's transactions through the cache and memory
// system while advancing a simple-core clock: compute costs and cache-hit
// latencies move the clock directly, and a bounded window of outstanding
// read misses provides memory back-pressure, so steady-state throughput is
// governed by whichever of compute or memory is slower — the behaviour the
// paper's simple timing cores exhibit on these streaming workloads.
type engine struct {
	sys *System

	clock    dram.Cycle
	frac     float64 // sub-cycle compute accumulator
	busMHz   float64
	nextID   uint64
	inflight int
	nextChan int // round-robin service pointer across channels

	// Run-relative accounting: systems stay warm across queries (caches,
	// open rows, the controllers' timelines), so each run measures deltas
	// from these snapshots.
	t0      dram.Cycle
	devBase []dram.DeviceStats
	ctlBase []mc.Stats

	// sampleClock is the high-water completion time (absolute bus cycles)
	// driving the windowed sampler: completions across channels arrive out
	// of order, so the sampler is advanced on a ratcheted maximum.
	sampleClock dram.Cycle

	// reg collects this run's distribution instruments. A fresh registry
	// (and mc.Metrics) is attached per run, so histograms need no baseline
	// subtraction — they are exactly this run's observations.
	reg *stats.Registry
	// chanRegs holds the per-channel registries of a sharded run (each
	// domain observes into its own instruments; finish merges them — the
	// merge is commutative, so the result is bit-identical to the serial
	// engine's shared instruments). Nil on the serial path.
	chanRegs []*stats.Registry

	strideFetches uint64 // for the embedded-ECC read period
	regularFills  uint64 // for embedded-ECC overhead on regular fills

	// injectors holds the per-channel fault injectors of this run (nil
	// entries never occur; the slice is nil when injection is off).
	injectors []*fault.Injector

	// shard, when non-nil, runs this run's channels as parallel event
	// domains (see shard.go); the serial service loop is bypassed.
	shard *shardState
}

// channelFaultSeed derives channel ch's injector seed so every channel draws
// an independent fault stream while the whole run replays from one seed.
func channelFaultSeed(seed uint64, ch int) uint64 {
	return seed ^ (uint64(ch+1) * 0x9e3779b97f4a7c15)
}

func newEngine(s *System) *engine {
	e := &engine{sys: s, busMHz: s.Design.Mem.ClockMHz}
	// (Re)wire fault injection: the per-channel injectors live on the System
	// and are Reset to a fresh deterministic stream per run — same replay as
	// a fresh injector, but the codec scratch, burst workspace, and counters
	// stay warm across runs. Clearing stale probes keeps a later clean run
	// on the same warm system genuinely fault-free (and allocation-free).
	inject := s.Faults != nil && s.Faults.Active()
	// The retry budget is controller state SetMaxRetries mutates in place,
	// so it is re-applied on every run: a fault run always gets the model's
	// configured budget — including 0, which means poison on the first DUE —
	// and a fault-free run restores the default. Applying only positive
	// budgets used to let a previous run's budget leak into later campaign
	// points on a warm system.
	retries := mc.DefaultConfig().MaxRetries
	if inject {
		retries = s.Faults.MaxRetries
	}
	for ch := 0; ch < s.Channels(); ch++ {
		s.controllers[ch].SetMaxRetries(retries)
		if !inject {
			s.devices[ch].Probe = nil
			continue
		}
		cfg := *s.Faults
		cfg.Seed = channelFaultSeed(s.Faults.Seed, ch)
		if ch == len(s.runInjectors) {
			// Scheme and ECC presence are fixed by the design for the
			// system's lifetime, so a cached injector always matches.
			s.runInjectors = append(s.runInjectors, fault.New(cfg, s.Design.BurstScheme(), s.Design.HasECC))
		} else {
			s.runInjectors[ch].Reset(cfg)
		}
		in := s.runInjectors[ch]
		s.devices[ch].Probe = in
		e.injectors = s.runInjectors
	}
	e.reg = stats.NewRegistry()
	if w := s.shardWorkerPlan(); w > 0 {
		e.shard = newShardState(s, w)
	}
	if e.shard != nil {
		// Each event domain observes into its own registry so lane workers
		// never share instruments; finish merges them in channel order.
		e.chanRegs = make([]*stats.Registry, 0, s.Channels())
		for ch := 0; ch < s.Channels(); ch++ {
			reg := stats.NewRegistry()
			e.chanRegs = append(e.chanRegs, reg)
			s.controllers[ch].Metrics = mc.NewMetrics(reg)
		}
	} else {
		// All channels share one instrument set: the serial engine services
		// channels from a single goroutine, and a cross-channel latency
		// distribution is what the run-level histograms mean.
		m := mc.NewMetrics(e.reg)
		for ch := 0; ch < s.Channels(); ch++ {
			s.controllers[ch].Metrics = m
		}
	}
	if cap(s.devBase) < s.Channels() {
		s.devBase = make([]dram.DeviceStats, s.Channels())
		s.ctlBase = make([]mc.Stats, s.Channels())
	}
	e.devBase = s.devBase[:s.Channels()]
	e.ctlBase = s.ctlBase[:s.Channels()]
	for ch := 0; ch < s.Channels(); ch++ {
		cs := s.controllers[ch].Stats
		if cs.BusCycleOfLastAccess > e.t0 {
			e.t0 = cs.BusCycleOfLastAccess
		}
		// CloneInto: DeviceStats carries the per-bank slice, and an aliased
		// baseline would track the live stats and zero every delta.
		s.devices[ch].Stats.CloneInto(&e.devBase[ch])
		e.ctlBase[ch] = cs
	}
	return e
}

// spend advances the clock by a CPU-cycle cost.
func (e *engine) spend(cpuCycles float64) {
	e.frac += e.sys.CPU.BusCyclesPer(cpuCycles, e.busMHz)
	if e.frac >= 1 {
		whole := int64(e.frac)
		e.clock += whole
		e.frac -= float64(whole)
	}
}

// serviceOne retires one memory request from some channel (round-robin).
// The core clock is NOT lifted to the completion time: compute and memory
// service overlap fully across the pipelined cores, so the run's length is
// max(compute time, memory time), taken in finish(). Each controller's own
// timeline paces its channel.
func (e *engine) serviceOne() bool {
	n := e.sys.Channels()
	for i := 0; i < n; i++ {
		ctrl := e.sys.controllers[(e.nextChan+i)%n]
		comp, ok := ctrl.ServiceOne()
		if !ok {
			continue
		}
		e.nextChan = (e.nextChan + i + 1) % n
		if e.sys.Sampler != nil {
			e.noteTime(comp.DataEnd)
		}
		if !comp.Req.IsWrite {
			e.inflight--
		}
		return true
	}
	return false
}

// noteTime ratchets the sampler clock to a completion time and records a
// sample for every window boundary it crossed.
func (e *engine) noteTime(at dram.Cycle) {
	if at > e.sampleClock {
		e.sampleClock = at
	}
	sp := e.sys.Sampler
	for sp.Due(int64(e.sampleClock - e.t0)) {
		e.recordSample(sp.Advance())
	}
}

// recordSample snapshots the run-relative cumulative statistics (summed
// across channels) at boundary at. Queue depth and inflight are the levels
// at record time — sampled, like any profiler counter. The cross-channel
// delta accumulates on the system's scratch DeviceStats (AddSub applies
// per-bank deltas in place), so each sample clones one bank slice into the
// series instead of one per channel.
func (e *engine) recordSample(at int64) {
	dev := &e.sys.sampleScratch
	*dev = dram.DeviceStats{PerBank: dev.PerBank[:0]}
	var ctl mc.Stats
	queue := 0
	for ch := 0; ch < e.sys.Channels(); ch++ {
		dev.AddSub(e.sys.devices[ch].Stats, e.devBase[ch])
		ctl.Add(e.sys.controllers[ch].Stats.Sub(e.ctlBase[ch]))
		queue += e.sys.controllers[ch].Pending()
	}
	e.sys.Sampler.Record(etrace.Sample{
		At: at, Ctl: ctl, Dev: dev.Clone(), Queue: queue, Inflight: e.inflight,
	})
}

// enqueue pushes one request to its channel, applying window and queue
// back-pressure. Sharded runs stage the same sequence instead of executing
// it inline (see shard.go).
func (e *engine) enqueue(r mc.Request) {
	if e.shard != nil {
		e.shard.enqueue(e, r)
		return
	}
	ctrl := e.sys.controllers[e.sys.channelOf(r.Addr)]
	for !ctrl.CanAccept(r.IsWrite) {
		if !e.serviceOne() {
			panic("sim: controller full but idle")
		}
	}
	if !r.IsWrite {
		for e.inflight >= e.sys.CPU.WindowSize() {
			if !e.serviceOne() {
				panic("sim: window full but controller idle")
			}
		}
		e.inflight++
	}
	r.ID = e.nextID
	e.nextID++
	r.Arrival = e.t0 + e.clock
	if e.sys.TraceSink != nil {
		e.sys.TraceSink.Add(trace.FromRequest(r))
	}
	ctrl.Enqueue(r)
}

// memOpRequest converts a cache MemOp (line fill or writeback) into a
// controller request. Strided writebacks keep their shape (sstore).
func (e *engine) memOpRequest(op cache.MemOp, lane int, gang bool) mc.Request {
	return mc.Request{
		Addr:    op.Addr,
		IsWrite: op.IsWrite,
		Stride:  op.Sectored && e.sys.Design.SupportsStride(),
		Lane:    lane,
		Gang:    gang && op.Sectored,
	}
}

// do executes one transaction: cache access, miss handling (regular or
// strided group fetch), and writeback traffic.
//
// Latency handling: the core is out-of-order and the scans touch
// independent records, so access latency overlaps across the miss window;
// only a fraction of it (CPU.LatencyOverlap) is charged to throughput. The
// rest is absorbed by window back-pressure — the clock catches up to
// completions only when the window is full.
func (e *engine) do(t design.Txn) {
	res := e.sys.Hierarchy.Access(t.Addr, t.Size, t.Write, t.Sectored)
	e.spend(e.sys.CPU.ComputePerField + float64(res.Latency)*e.sys.CPU.LatencyOverlap)
	if res.HitLevel > 0 {
		return
	}
	gang := t.Group != nil && t.Group.Gang

	if t.Group == nil {
		// Plain line fill (plus any writebacks the fill displaced).
		for _, op := range res.MemOps {
			e.enqueue(e.memOpRequest(op, 0, false))
			if !op.IsWrite {
				e.regularFills++
				// Embedded ECC displaces data in every page, so regular
				// fills periodically drag their check-bit line along.
				if p := e.sys.Design.ECCRegularPeriod; p > 0 && e.regularFills%uint64(p) == 0 {
					e.enqueue(mc.Request{Addr: op.Addr + uint64(e.sys.Design.Mem.Geometry.LineBytes)})
				}
			}
		}
		return
	}

	// Strided group fetch: replace the access's own fill request with the
	// group request(s); keep writeback ops.
	for _, op := range res.MemOps {
		if op.IsWrite {
			e.enqueue(e.memOpRequest(op, t.Group.Lane, gang))
		}
	}
	if e.sys.Design.NoCriticalWordFirst {
		// The requested word lands at the end of the burst: the extra
		// serialization latency is charged like any other access latency.
		extraCPU := float64(e.sys.Design.Mem.Timing.TBL) * e.sys.CPU.ClockGHz * 1e3 / e.busMHz
		e.spend(extraCPU * e.sys.CPU.LatencyOverlap)
	}
	for b := 0; b < t.Group.Bursts; b++ {
		e.enqueue(mc.Request{
			Addr:   t.Group.ReqAddr + uint64(b*e.sys.Design.Mem.Geometry.LineBytes),
			Stride: true,
			Lane:   t.Group.Lane,
			Gang:   gang,
		})
	}
	e.strideFetches++
	// Embedded-ECC companion read (GS-DRAM-ecc).
	if p := e.sys.Design.ECCReadPeriod; p > 0 && e.strideFetches%uint64(p) == 0 {
		e.enqueue(mc.Request{Addr: t.Group.ReqAddr + uint64(e.sys.Design.Mem.Geometry.LineBytes), Stride: false})
	}
	// Embedded-ECC write read-modify-write, once per ECC line's worth of
	// strided write fetches.
	if p := e.sys.Design.ECCReadPeriod; t.Write && e.sys.Design.ECCWriteRMW && p > 0 && e.strideFetches%uint64(p) == 0 {
		base := t.Group.ReqAddr + 2*uint64(e.sys.Design.Mem.Geometry.LineBytes)
		e.enqueue(mc.Request{Addr: base})
		e.enqueue(mc.Request{Addr: base, IsWrite: true})
	}
	// Sibling fills: the burst delivered the same sector of every line in
	// the group.
	for _, f := range t.Group.Fills {
		for _, op := range e.sys.Hierarchy.FillLine(f.LineAddr, f.Sectors, true) {
			e.enqueue(e.memOpRequest(op, t.Group.Lane, gang))
		}
	}
}

// doAll executes a transaction batch.
func (e *engine) doAll(ts []design.Txn) {
	for _, t := range ts {
		e.do(t)
	}
}

// finish flushes dirty cache state, drains the controller, and builds the
// run statistics.
func (e *engine) finish() RunStats {
	for _, op := range e.sys.Hierarchy.FlushDirty() {
		e.enqueue(e.memOpRequest(op, 0, e.sys.Design.Gran.Gang))
	}
	if e.shard != nil {
		e.shard.drain(e)
	} else {
		for e.serviceOne() {
		}
	}
	end := e.t0 + e.clock
	var dev dram.DeviceStats
	var ctl mc.Stats
	for ch := 0; ch < e.sys.Channels(); ch++ {
		cs := e.sys.controllers[ch].Stats
		if cs.BusCycleOfLastAccess > end {
			end = cs.BusCycleOfLastAccess
		}
		dev.Add(e.sys.devices[ch].Stats.Sub(e.devBase[ch]))
		ctl.Add(cs.Sub(e.ctlBase[ch]))
	}
	if sp := e.sys.Sampler; sp != nil {
		rel := int64(end - e.t0)
		for sp.Due(rel) {
			e.recordSample(sp.Advance())
		}
		// A final flush sample at the run's end closes the last partial
		// window, so the series' cumulative totals equal the RunStats.
		if n := len(sp.Samples); n == 0 || sp.Samples[n-1].At < rel {
			e.recordSample(rel)
		}
	}
	end -= e.t0
	act := power.Activity{
		Acts:         dev.Acts,
		Reads:        dev.Reads,
		Writes:       dev.Writes,
		StrideReads:  dev.StrideReads,
		StrideWrites: dev.StrideWrites,
		Refreshes:    dev.Refs,
		// Background power burns in every channel's rank for the whole run.
		Cycles: uint64(end) * uint64(e.sys.Channels()),
	}
	energy := e.sys.Design.Power.Energy(act)
	rs := RunStats{
		Cycles:       end,
		MemRequests:  ctl.Reads + ctl.Writes,
		Energy:       energy,
		PowerMW:      e.sys.Design.Power.AveragePowerMW(energy, uint64(end)),
		Device:       dev,
		Controller:   ctl,
		BankActPreNJ: e.sys.Design.Power.PerBankActPre(dev.PerBankActs()),
	}
	if hits, misses := ctl.RowHits, ctl.RowMisses+ctl.RowEmpties; hits+misses > 0 {
		rs.RowHitRate = float64(hits) / float64(hits+misses)
	}
	if e.injectors != nil {
		rel := &fault.Counters{}
		for _, in := range e.injectors {
			rel.Add(in.Counters)
		}
		rs.Reliability = rel
		rs.CorrectedBursts = rel.CorrectedBursts
		rs.UncorrectableBursts = rel.DUEs + rel.SilentCorruptions
		// Mirror the block into the run's instrument registry — before the
		// single snapshot below — so JSON exports and profiles carry the
		// reliability outcome alongside the latency histograms.
		c := func(name string, v uint64) { e.reg.Counter("fault." + name).Add(v) }
		c("bursts", rel.Bursts)
		c("injected", rel.Injected)
		c("corrected_bursts", rel.CorrectedBursts)
		c("corrected_symbols", rel.CorrectedSymbols)
		c("dues", rel.DUEs)
		c("silent_corruptions", rel.SilentCorruptions)
		c("retries", ctl.Retries)
		c("poisoned", ctl.Poisoned)
		for chip, n := range rel.PerChip {
			if n != 0 {
				e.reg.Counter(fmt.Sprintf("fault.chip_%02d", chip)).Add(n)
			}
		}
	}
	snap := e.reg.Snapshot()
	// Sharded runs: fold each domain's instruments in channel order. The
	// merge sums histogram buckets and counters, so the result is
	// bit-identical to the serial engine's shared-instrument snapshot.
	for _, reg := range e.chanRegs {
		if err := snap.Merge(reg.Snapshot()); err != nil {
			panic("sim: per-channel metrics merge: " + err.Error())
		}
	}
	rs.Metrics = snap
	return rs
}
