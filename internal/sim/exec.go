package sim

import (
	"fmt"

	"sam/internal/sql"
)

// QueryResult is the functional output of a plan plus the run's statistics.
// Functional values come straight from the table contents (the design
// under test only changes *where* bytes live, never *what* they are), so
// results must be identical across designs — invariant 9.
type QueryResult struct {
	Rows        int       // records matched / returned / modified / inserted
	Aggregates  []float64 // one per AggSpec (global aggregates)
	Groups      map[uint64][]float64
	ArithChecks uint64 // xor-fold of arithmetic projection outputs
	ProjChecks  uint64 // xor-fold of projected values (order-insensitive)
	Stats       RunStats
}

// aggState accumulates one aggregate.
type aggState struct {
	sum   float64
	count int
	min   uint64
	max   uint64
	seen  bool
}

func (a *aggState) add(v uint64) {
	a.sum += float64(v)
	a.count++
	if !a.seen || v < a.min {
		a.min = v
	}
	if !a.seen || v > a.max {
		a.max = v
	}
	a.seen = true
}

func (a *aggState) value(kind string) float64 {
	switch kind {
	case "SUM":
		return a.sum
	case "AVG":
		if a.count == 0 {
			return 0
		}
		return a.sum / float64(a.count)
	case "COUNT":
		return float64(a.count)
	case "MIN":
		if !a.seen {
			return 0
		}
		return float64(a.min)
	case "MAX":
		if !a.seen {
			return 0
		}
		return float64(a.max)
	default:
		panic("sim: unknown aggregate " + kind)
	}
}

// InsertCount is how many rows a single INSERT plan is repeated for (the
// Qs5/Qs6 workloads insert a batch, like the LIMIT queries read one).
const InsertCount = 1024

// scanBatch is the vectorized execution batch: predicates and projections
// run column-at-a-time over this many records, the execution style of
// analytical engines (and what keeps SAM's I/O-mode switches rare, as
// Section 5.3 assumes).
const scanBatch = 256

// RunPlan executes a compiled plan on the system.
func (s *System) RunPlan(p *sql.Plan) (*QueryResult, error) {
	switch p.Kind {
	case sql.PlanScan, sql.PlanAggregate:
		return s.runScan(p)
	case sql.PlanUpdate:
		return s.runUpdate(p)
	case sql.PlanInsert:
		return s.runInsert(p)
	case sql.PlanJoin:
		return s.runJoin(p)
	default:
		return nil, fmt.Errorf("sim: cannot run plan kind %v", p.Kind)
	}
}

// RunQuery parses, compiles, and executes a query string.
func (s *System) RunQuery(query string, params sql.Params) (*QueryResult, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	plan, err := sql.Compile(stmt, params)
	if err != nil {
		return nil, err
	}
	return s.RunPlan(plan)
}

// scanContext drives one vectorized predicate scan over a table.
type scanContext struct {
	s     *System
	e     *engine
	plan  *sql.Plan
	table string
}

// forEachMatchBatch runs the predicate phase batch by batch, handing the
// matching record indices to visit. Limit counts matched records.
func (c *scanContext) forEachMatchBatch(visit func(matches []int)) error {
	t, err := c.s.Table(c.table)
	if err != nil {
		return err
	}
	pl := c.s.placers[c.table]
	limit := c.plan.Limit
	if limit < 0 {
		limit = t.Records()
	}
	taken := 0
	var matches []int
	for start := 0; start < t.Records() && taken < limit; start += scanBatch {
		end := start + scanBatch
		if end > t.Records() {
			end = t.Records()
		}
		stop := end
		if c.plan.FullScan {
			// Row-preferring execution: whole records up front. Predicate-
			// free LIMIT scans stop exactly at the limit.
			if rem := limit - taken; len(c.plan.Preds) == 0 && start+rem < stop {
				stop = start + rem
			}
			for rec := start; rec < stop; rec++ {
				c.e.doAll(pl.ReadRecord(rec))
			}
		} else {
			// Column-at-a-time predicate reads.
			for _, f := range c.plan.PredFields {
				for rec := start; rec < end; rec++ {
					c.e.do(pl.ReadField(rec, f))
				}
			}
		}
		matches = matches[:0]
		for rec := start; rec < stop && taken < limit; rec++ {
			if c.plan.Match(func(f int) uint64 { return t.Value(rec, f) }) {
				matches = append(matches, rec)
				taken++
				c.e.spend(c.s.CPU.ComputePerMatch)
			}
		}
		visit(matches)
	}
	return nil
}

func (s *System) runScan(p *sql.Plan) (*QueryResult, error) {
	t, err := s.Table(p.Table)
	if err != nil {
		return nil, err
	}
	pl := s.placers[p.Table]
	e := newEngine(s)
	res := &QueryResult{Aggregates: make([]float64, len(p.Aggs))}
	global := make([]aggState, len(p.Aggs))
	grouped := map[uint64][]aggState{}

	accumulate := func(rec int) {
		states := global
		if p.GroupBy >= 0 {
			key := t.Value(rec, p.GroupBy)
			if _, ok := grouped[key]; !ok {
				grouped[key] = make([]aggState, len(p.Aggs))
			}
			states = grouped[key]
		}
		for i, agg := range p.Aggs {
			if agg.Field < 0 { // COUNT(*)
				states[i].count++
				states[i].seen = true
				continue
			}
			states[i].add(t.Value(rec, agg.Field))
		}
	}

	ctx := &scanContext{s: s, e: e, plan: p, table: p.Table}
	err = ctx.forEachMatchBatch(func(matches []int) {
		if p.WholeRecord {
			for _, rec := range matches {
				if !p.FullScan {
					e.doAll(pl.ReadRecord(rec))
				}
				res.Rows++
				for f := 0; f < t.Fields(); f++ {
					res.ProjChecks ^= t.Value(rec, f)
				}
			}
			return
		}
		// Column-at-a-time projection over the batch's matches.
		for _, f := range p.ProjFields {
			for _, rec := range matches {
				e.do(pl.ReadField(rec, f))
			}
		}
		for _, rec := range matches {
			res.Rows++
			for _, f := range p.ProjFields {
				res.ProjChecks ^= t.Value(rec, f)
			}
			accumulate(rec)
			for _, group := range p.ArithGroups {
				var sum uint64
				for _, f := range group {
					sum += t.Value(rec, f)
				}
				res.ArithChecks ^= sum
			}
		}
	})
	if err != nil {
		return nil, err
	}
	// ProjChecks double-counts fields that are both projected and
	// aggregated; that is fine — it only needs to be deterministic.
	if p.GroupBy >= 0 && p.Kind == sql.PlanAggregate {
		res.Groups = make(map[uint64][]float64, len(grouped))
		for key, states := range grouped {
			vals := make([]float64, len(p.Aggs))
			for i, agg := range p.Aggs {
				vals[i] = states[i].value(agg.Kind)
				res.ProjChecks ^= key ^ uint64(int64(vals[i]))
			}
			res.Groups[key] = vals
		}
	} else {
		for i, agg := range p.Aggs {
			res.Aggregates[i] = global[i].value(agg.Kind)
		}
	}
	res.Stats = e.finish()
	return res, nil
}

func (s *System) runUpdate(p *sql.Plan) (*QueryResult, error) {
	t, err := s.Table(p.Table)
	if err != nil {
		return nil, err
	}
	pl := s.placers[p.Table]
	e := newEngine(s)
	res := &QueryResult{}
	ctx := &scanContext{s: s, e: e, plan: p, table: p.Table}
	err = ctx.forEachMatchBatch(func(matches []int) {
		// Column-at-a-time writes (the sstore path on strided designs).
		for _, set := range p.Sets {
			for _, rec := range matches {
				e.do(pl.WriteField(rec, set.Field))
				t.SetValue(rec, set.Field, set.Value)
			}
		}
		res.Rows += len(matches)
	})
	if err != nil {
		return nil, err
	}
	res.Stats = e.finish()
	return res, nil
}

func (s *System) runInsert(p *sql.Plan) (*QueryResult, error) {
	t, err := s.Table(p.Table)
	if err != nil {
		return nil, err
	}
	pl := s.placers[p.Table]
	if len(p.InsertValues) > t.Fields() {
		return nil, fmt.Errorf("sim: INSERT of %d values into %d-field table", len(p.InsertValues), t.Fields())
	}
	e := newEngine(s)
	res := &QueryResult{}
	row := make([]uint64, t.Fields())
	copy(row, p.InsertValues)
	for i := 0; i < InsertCount; i++ {
		row[0] = p.InsertValues[0] + uint64(i) // distinct rows
		rec := t.Append(row)
		e.spend(s.CPU.ComputePerMatch)
		e.doAll(pl.WriteRecord(rec))
		res.Rows++
	}
	res.Stats = e.finish()
	return res, nil
}

// runJoin executes a hash join: build on the inner table, probe with the
// outer, both scans vectorized column-at-a-time. The hash table itself is
// modeled as cache-resident (its traffic is negligible next to the scans
// at the paper's scale).
func (s *System) runJoin(p *sql.Plan) (*QueryResult, error) {
	outer, err := s.Table(p.Table)
	if err != nil {
		return nil, err
	}
	inner, err := s.Table(p.InnerTable)
	if err != nil {
		return nil, err
	}
	plOut, plIn := s.placers[p.Table], s.placers[p.InnerTable]

	var eqPred *sql.JoinPred
	var ineqPreds []sql.JoinPred
	for i := range p.JoinPreds {
		if p.JoinPreds[i].Op == "=" && eqPred == nil {
			eqPred = &p.JoinPreds[i]
		} else {
			ineqPreds = append(ineqPreds, p.JoinPreds[i])
		}
	}
	if eqPred == nil {
		return nil, fmt.Errorf("sim: join requires one equality predicate")
	}

	e := newEngine(s)
	res := &QueryResult{}

	// Build phase: column-at-a-time scan of the inner table.
	hash := make(map[uint64][]int)
	innerFields := dedup(append(append([]int{}, p.InnerPredFields...), p.InnerProj...))
	for start := 0; start < inner.Records(); start += scanBatch {
		end := start + scanBatch
		if end > inner.Records() {
			end = inner.Records()
		}
		for _, f := range innerFields {
			for rec := start; rec < end; rec++ {
				e.do(plIn.ReadField(rec, f))
			}
		}
		for rec := start; rec < end; rec++ {
			key := inner.Value(rec, eqPred.InnerField)
			hash[key] = append(hash[key], rec)
		}
	}

	// Probe phase: column-at-a-time scan of the outer table.
	outerFields := dedup(append(append([]int{}, p.OuterPredFields...), p.OuterProj...))
	for start := 0; start < outer.Records(); start += scanBatch {
		end := start + scanBatch
		if end > outer.Records() {
			end = outer.Records()
		}
		for _, f := range outerFields {
			for rec := start; rec < end; rec++ {
				e.do(plOut.ReadField(rec, f))
			}
		}
		for rec := start; rec < end; rec++ {
			key := outer.Value(rec, eqPred.OuterField)
			for _, in := range hash[key] {
				ok := true
				for _, jp := range ineqPreds {
					ov, iv := outer.Value(rec, jp.OuterField), inner.Value(in, jp.InnerField)
					switch jp.Op {
					case ">":
						ok = ov > iv
					case "<":
						ok = ov < iv
					case "=":
						ok = ov == iv
					}
					if !ok {
						break
					}
				}
				if !ok {
					continue
				}
				res.Rows++
				for _, f := range p.OuterProj {
					res.ProjChecks ^= outer.Value(rec, f)
				}
				for _, f := range p.InnerProj {
					res.ProjChecks ^= inner.Value(in, f)
				}
			}
		}
	}
	res.Stats = e.finish()
	return res, nil
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
