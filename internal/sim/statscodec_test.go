package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sam/internal/design"
)

// codecProbeResult runs a fault-injected query so the result exercises
// every optional block the disk format must carry: non-empty Metrics
// histograms, a Reliability counter block, retry/poison controller
// counters, and nonzero fault-adjudication stats.
func codecProbeResult(t *testing.T) *QueryResult {
	t.Helper()
	s := testSystem(design.SAMEn, 256, 256, false)
	s.Faults = DeadChipFault(7, 42)
	r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Metrics == nil || len(r.Stats.Metrics.Histograms) == 0 {
		t.Fatal("probe run carries no metrics histograms; codec test would be vacuous")
	}
	if r.Stats.Reliability == nil || r.Stats.Reliability.Injected == 0 {
		t.Fatal("probe run carries no reliability block; codec test would be vacuous")
	}
	return r
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := codecProbeResult(t)
	enc, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded result must be fully equivalent — including the nested
	// Metrics histogram snapshot and the Reliability counters, which the
	// figure pipelines and the reliability campaign read back out. (The
	// whole-snapshot comparison goes through maps that are populated;
	// DeepEqual on the snapshot itself would trip over omitempty turning
	// an empty Gauges map into a nil one — a distinction the encoding
	// correctly erases.)
	if !reflect.DeepEqual(dec.Stats.Metrics.Histograms, r.Stats.Metrics.Histograms) {
		t.Fatalf("metrics histograms did not round-trip:\n got %+v\nwant %+v",
			dec.Stats.Metrics.Histograms, r.Stats.Metrics.Histograms)
	}
	if !reflect.DeepEqual(dec.Stats.Metrics.Counters, r.Stats.Metrics.Counters) {
		t.Fatal("metrics counters did not round-trip")
	}
	if !reflect.DeepEqual(dec.Stats.Reliability, r.Stats.Reliability) {
		t.Fatalf("reliability block did not round-trip:\n got %+v\nwant %+v", dec.Stats.Reliability, r.Stats.Reliability)
	}
	if dec.Rows != r.Rows || dec.ProjChecks != r.ProjChecks || dec.ArithChecks != r.ArithChecks {
		t.Fatal("functional outputs did not round-trip")
	}
	if !reflect.DeepEqual(dec.Aggregates, r.Aggregates) {
		t.Fatal("aggregates did not round-trip")
	}
	if eq, err := ResultsEquivalent(dec, r); err != nil || !eq {
		t.Fatalf("ResultsEquivalent(decoded, original) = (%v, %v)", eq, err)
	}
	// Determinism: re-encoding either side yields identical bytes — the
	// property that makes warm-cache figure output byte-identical.
	enc2, err := EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding a decoded result changed the bytes")
	}
}

func TestResultCodecGroupedRoundTrip(t *testing.T) {
	s := testSystem(design.Baseline, 256, 512, false)
	r, err := s.RunQuery("SELECT COUNT(*), SUM(f1) FROM Tb GROUP BY f10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) == 0 {
		t.Fatal("probe run carries no groups")
	}
	enc, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Groups, r.Groups) {
		t.Fatal("group-by results did not round-trip")
	}
}

func TestResultCodecRejections(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Fatal("EncodeResult(nil) succeeded")
	}
	r := codecProbeResult(t)
	enc, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(nil); err == nil {
		t.Fatal("DecodeResult(nil) succeeded")
	}
	if _, err := DecodeResult(enc[:len(enc)/2]); err == nil {
		t.Fatal("decoding a truncated payload succeeded")
	}
	// A future-versioned envelope must be rejected, not misread.
	future := bytes.Replace(enc, []byte(`{"v":1,`), []byte(`{"v":2,`), 1)
	if bytes.Equal(future, enc) {
		t.Fatal("version field not found in envelope")
	}
	if _, err := DecodeResult(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v, want version mismatch", err)
	}
	if _, err := DecodeResult([]byte(`{"v":1}`)); err == nil {
		t.Fatal("envelope without result succeeded")
	}
}
