package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Run-result serialization: the stable encoding behind the memo cache's
// disk tier (internal/memo) and any other consumer that persists full
// QueryResults — including RunStats with its Metrics histogram snapshot,
// Reliability counter block, and per-bank accounting.
//
// The format is versioned JSON. JSON is the right stability/readability
// trade here: every field of QueryResult/RunStats is exported and
// JSON-clean (finite floats only — stats.Gauge rejects NaN/Inf by
// contract), Go marshals map keys in sorted order so the bytes are
// deterministic, and float64 values round-trip bit-exactly (Go emits the
// shortest representation that parses back to the same value). A decoded
// result is therefore semantically identical to the encoded one: every
// derived figure value (Speedup, EnergyEfficiency, table cells) is
// bit-identical, which is what lets a warm cache reproduce byte-identical
// figure output.
//
// resultCodecVersion only covers the *encoding*; simulator-semantics
// changes are the memo layer's business (memo.SchemaVersion).
const resultCodecVersion = 1

// codecEnvelope wraps the payload with its format version.
type codecEnvelope struct {
	Version int          `json:"v"`
	Result  *QueryResult `json:"result"`
}

// EncodeResult serializes a run result to its stable byte form.
// Encoding is deterministic: equal results produce equal bytes.
func EncodeResult(r *QueryResult) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("sim: cannot encode nil result")
	}
	return json.Marshal(codecEnvelope{Version: resultCodecVersion, Result: r})
}

// DecodeResult reverses EncodeResult. It rejects unknown versions and
// malformed payloads with an error (the memo disk tier converts that
// into a cache miss).
func DecodeResult(b []byte) (*QueryResult, error) {
	var env codecEnvelope
	dec := json.NewDecoder(bytes.NewReader(b))
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("sim: decode result: %w", err)
	}
	if env.Version != resultCodecVersion {
		return nil, fmt.Errorf("sim: result codec version %d, want %d", env.Version, resultCodecVersion)
	}
	if env.Result == nil {
		return nil, fmt.Errorf("sim: decoded envelope carries no result")
	}
	return env.Result, nil
}

// ResultsEquivalent reports whether two results are semantically equal:
// equal under the stable encoding. This is the right equality for cache
// verification — reflect.DeepEqual distinguishes nil from empty maps and
// slices, which the encoding (correctly) does not.
func ResultsEquivalent(a, b *QueryResult) (bool, error) {
	ea, err := EncodeResult(a)
	if err != nil {
		return false, err
	}
	eb, err := EncodeResult(b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ea, eb), nil
}
