package sim

import (
	"reflect"
	"testing"

	"sam/internal/design"
	"sam/internal/etrace"
	"sam/internal/fault"
	"sam/internal/imdb"
	"sam/internal/mc"
	"sam/internal/sql"
)

// shardDiffFaults is a two-chip persistent map plus a transient rate on an
// SSC-DSD layout: dead chip + stuck DQ exceed the codec's correction
// radius, so the run exercises the full DUE -> retry -> poison path, the
// most state-dependent behaviour the differential can pin.
func shardDiffFaults() *FaultModel {
	return &FaultModel{
		Seed:       0xD1FF5EED,
		Rate:       1e-3,
		DeadChips:  []fault.ChipFault{{Rank: -1, Chip: 2}},
		StuckDQs:   []fault.StuckDQ{{Rank: -1, Chip: 5, DQ: 1, Value: 1}},
		MaxRetries: 1,
	}
}

// shardDiffRun builds a fully instrumented system — audit, fault
// injection, event tracing — runs a strided scan plus an update on it
// warm, and returns the per-query results, the system, and the trace
// buffer for comparison.
func shardDiffRun(t *testing.T, channels, workers int) ([]*QueryResult, *System, *etrace.Buffer) {
	t.Helper()
	d := design.New(design.SAMEn, design.Options{Gran: design.Gran4})
	d.Mem.Geometry.Channels = channels
	s := NewSystem(d)
	s.Audit = true
	s.reset()
	s.ShardWorkers = workers
	s.Faults = shardDiffFaults()
	buf := etrace.NewBuffer(0)
	s.AttachEventTrace(buf, nil)
	s.AddTable(imdb.NewTable(imdb.Ta(1024), 0xABCD), false)
	s.AddTable(imdb.NewTable(imdb.Tb(256), 0xABCE), false)
	var out []*QueryResult
	for _, q := range []struct {
		query  string
		params sql.Params
	}{
		{"SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25()},
		{"UPDATE Tb SET f3 = x WHERE f10 = y", sql.Params{"x": 5, "y": 3}},
	} {
		r, err := s.RunQuery(q.query, q.params)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	if !s.AuditOK() {
		t.Fatalf("ch=%d workers=%d: protocol violations", channels, workers)
	}
	return out, s, buf
}

// TestShardedEngineDifferential is the sharded analogue of the scheduler's
// TestSchedulerDifferential: the serial engine (ShardWorkers=1, the
// unmodified pre-sharding service loop) is the frozen oracle, and the
// sharded engine must match it bit for bit — RunStats including the
// Metrics snapshot and Reliability counters, functional query results, the
// per-channel audited command streams, and the event-trace rings — for
// every worker count and channel count, with faults and tracing enabled.
func TestShardedEngineDifferential(t *testing.T) {
	for _, channels := range []int{1, 2, 4} {
		ref, refSys, refBuf := shardDiffRun(t, channels, 1)
		// The oracle must exercise the paths being differenced.
		if rs := ref[0].Stats; rs.Reliability == nil || rs.Reliability.DUEs == 0 ||
			rs.Controller.Retries == 0 || rs.Controller.Poisoned == 0 {
			t.Fatalf("ch=%d: reference run has no DUE/retry/poison traffic: %+v",
				channels, ref[0].Stats.Reliability)
		}
		for _, workers := range []int{1, 2, 8} {
			got, gotSys, gotBuf := shardDiffRun(t, channels, workers)
			for i := range ref {
				if !reflect.DeepEqual(ref[i], got[i]) {
					t.Errorf("ch=%d workers=%d query %d: results diverge from serial\nserial: %+v\nsharded: %+v",
						channels, workers, i, ref[i].Stats, got[i].Stats)
				}
			}
			for ch := 0; ch < channels; ch++ {
				refH := refSys.ChannelController(ch).Audit.History()
				gotH := gotSys.ChannelController(ch).Audit.History()
				if !reflect.DeepEqual(refH, gotH) {
					t.Errorf("ch=%d workers=%d: channel %d audited command stream diverges (%d vs %d commands)",
						channels, workers, ch, len(refH), len(gotH))
				}
			}
			if !reflect.DeepEqual(refBuf.Events(), gotBuf.Events()) {
				t.Errorf("ch=%d workers=%d: event-trace streams diverge (%d vs %d events)",
					channels, workers, refBuf.Len(), gotBuf.Len())
			}
		}
	}
}

// TestShardedSamplerReconciles pins the sampler contract under sharding:
// observation points move to epoch barriers (the ratcheted high-water
// completion clock), but the series stays strictly increasing and its
// final cumulative totals still equal the RunStats exactly.
func TestShardedSamplerReconciles(t *testing.T) {
	d := design.New(design.Baseline, design.Options{})
	d.Mem.Geometry.Channels = 4
	s := NewSystem(d)
	s.ShardWorkers = 4
	sp := etrace.NewSampler(256)
	s.AttachEventTrace(etrace.NewBuffer(0), sp)
	s.AddTable(imdb.NewTable(imdb.Ta(2048), 0xC0DE), false)
	r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	rs := r.Stats
	if len(sp.Samples) < 2 {
		t.Fatalf("sampler recorded %d samples", len(sp.Samples))
	}
	for i := 1; i < len(sp.Samples); i++ {
		if sp.Samples[i].At <= sp.Samples[i-1].At {
			t.Fatalf("sample times not strictly increasing at %d: %d then %d",
				i, sp.Samples[i-1].At, sp.Samples[i].At)
		}
	}
	last := sp.Samples[len(sp.Samples)-1]
	if last.At > int64(rs.Cycles) {
		t.Fatalf("last sample at %d beyond run end %d", last.At, rs.Cycles)
	}
	if last.Ctl != rs.Controller {
		t.Fatalf("final sample controller totals diverge from RunStats:\n%+v\n%+v", last.Ctl, rs.Controller)
	}
	if last.Dev.Acts != rs.Device.Acts || last.Dev.Reads != rs.Device.Reads ||
		last.Dev.Writes != rs.Device.Writes || last.Dev.Refs != rs.Device.Refs ||
		last.Dev.BusBusyCycles != rs.Device.BusBusyCycles {
		t.Fatalf("final sample device totals diverge from RunStats:\n%+v\n%+v", last.Dev, rs.Device)
	}
	if !reflect.DeepEqual(last.Dev.PerBank, rs.Device.PerBank) {
		t.Fatal("final sample per-bank totals diverge from RunStats")
	}
}

// TestWarmSystemRetryBudget is the regression test for the stale
// retry-budget bug: SetMaxRetries mutates controller state in place, and
// the engine used to apply it only for positive budgets — so running a
// budget-5 campaign point and then a budget-0 point ("poison immediately
// on the first DUE", per mc.Config) on the same warm system silently ran
// the second point with a budget of 5.
func TestWarmSystemRetryBudget(t *testing.T) {
	d := design.New(design.SAMEn, design.Options{Gran: design.Gran4})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(1024), 0xBEEF), false)
	s.AddTable(imdb.NewTable(imdb.Tb(1024), 0xBEF0), false)
	// Each campaign point scans a table the warm caches have not seen, so
	// every point drives real DRAM bursts through the injector.
	run := func(fm *FaultModel, query string) RunStats {
		s.Faults = fm
		r, err := s.RunQuery(query, sel25())
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}

	budget5 := shardDiffFaults()
	budget5.MaxRetries = 5
	a := run(budget5, "SELECT SUM(f9) FROM Ta WHERE f10 > x")
	if a.Reliability.DUEs == 0 || a.Controller.Retries == 0 {
		t.Fatalf("budget-5 run produced no DUE/retry traffic (DUEs=%d retries=%d): fault model too weak for the regression",
			a.Reliability.DUEs, a.Controller.Retries)
	}

	budget0 := shardDiffFaults()
	budget0.MaxRetries = 0
	b := run(budget0, "SELECT SUM(f9) FROM Tb WHERE f10 > x")
	if b.Reliability.DUEs == 0 {
		t.Fatalf("budget-0 run produced no DUEs")
	}
	if b.Controller.Retries != 0 {
		t.Fatalf("budget-0 warm run retried %d times: the previous run's budget leaked into it", b.Controller.Retries)
	}
	if b.Controller.Poisoned == 0 {
		t.Fatal("budget-0 run poisoned nothing: first DUEs must poison immediately")
	}

	// A fault-free run restores the controller default, so later fault runs
	// that rely on it start from a known budget.
	s.Faults = nil
	if _, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25()); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Controller.Config().MaxRetries, mc.DefaultConfig().MaxRetries; got != want {
		t.Fatalf("fault-free run left retry budget %d, want default %d", got, want)
	}
}
