// Package sim binds the substrates into a full system — query executor on
// top, sector-cache hierarchy, FR-FCFS controller, and the cycle-level
// device model underneath — and runs compiled SQL plans against a chosen
// memory design, producing both functional results (for correctness
// checks) and timing/energy statistics (for the paper's figures).
package sim

import (
	"fmt"

	"sam/internal/cache"
	"sam/internal/cpu"
	"sam/internal/design"
	"sam/internal/dram"
	"sam/internal/etrace"
	"sam/internal/fault"
	"sam/internal/imdb"
	"sam/internal/mc"
	"sam/internal/power"
	"sam/internal/stats"
	"sam/internal/trace"
)

// CacheParams size the hierarchy (Table 2: 32KB L1, 256KB L2, 8MB LLC).
type CacheParams struct {
	L1Bytes, L2Bytes, LLCBytes int
	Ways                       int
}

// DefaultCaches mirrors Table 2.
func DefaultCaches() CacheParams {
	return CacheParams{L1Bytes: 32 << 10, L2Bytes: 256 << 10, LLCBytes: 8 << 20, Ways: 8}
}

// System is one design point ready to run queries. Multi-channel
// configurations (Geometry.Channels > 1) get one controller+device pair
// per channel; Device/Controller alias channel 0 for single-channel use.
type System struct {
	Design *design.Design
	CPU    cpu.Params
	Caches CacheParams

	Device     *dram.Device
	Controller *mc.Controller
	Hierarchy  *cache.Hierarchy

	devices     []*dram.Device
	controllers []*mc.Controller
	route       *mc.AddrMap

	tables  map[string]*imdb.Table
	placers map[string]*design.Placer
	slots   int

	// Audit enables end-to-end protocol checking (slow; tests only).
	Audit bool

	// ShardWorkers selects the run engine's execution mode: 0 (default)
	// auto-shards multi-channel systems across min(Channels, GOMAXPROCS)
	// per-channel event-domain workers and keeps single-channel systems
	// serial; 1 forces the serial engine; >= 2 forces the sharded engine
	// with at most that many workers (clamped to the channel count).
	// Sharded runs produce bit-identical RunStats to serial runs for any
	// worker count (see shard.go's determinism contract); only the windowed
	// sampler's observation points differ (epoch barriers instead of every
	// completion).
	ShardWorkers int

	// Faults, when set and active, routes every data-carrying DRAM burst of
	// the run through the real chipkill codec with faults injected at the
	// device's burst boundary: persistent per-rank fault maps (dead chips,
	// stuck DQs) and seed-driven transients (bit flips, chip-wide garbage,
	// correlated runs). Designs with chipkill correct or detect them — the
	// controller retries detected-uncorrectable reads and poisons the line
	// when the retry budget runs out — while designs without ECC (plain
	// GS-DRAM) take silent data corruption. All outcomes land in
	// RunStats.Reliability.
	Faults *FaultModel

	// TraceSink, when set, records every memory request the run issues.
	TraceSink *trace.Trace

	// Events and Sampler are the cycle-accurate event-trace attachments
	// (set via AttachEventTrace): Events receives every request-lifecycle
	// and DRAM-command event, Sampler is fed windowed statistics snapshots
	// by the run engine. Use a fresh Sampler per run — its window clock is
	// run-relative.
	Events  *etrace.Buffer
	Sampler *etrace.Sampler

	// Run arenas, reused across Run invocations on this system so repeated
	// sweep points stop reallocating their world each run: the per-channel
	// fault injectors (codec scratch, burst workspace, counters — Reset to a
	// fresh deterministic stream each run) and the engine's run-relative
	// stat baselines.
	runInjectors []*fault.Injector
	devBase      []dram.DeviceStats
	ctlBase      []mc.Stats
	// sampleScratch accumulates the cross-channel device delta for one
	// windowed sample (engine.recordSample), reusing its per-bank backing
	// across samples and runs.
	sampleScratch dram.DeviceStats
}

// FaultModel configures fault injection; it is fault.Config verbatim (seed,
// transient rate and mix weights, per-rank dead-chip and stuck-DQ maps, and
// the read-retry budget). Each channel derives its own injector from Seed,
// so replay is deterministic regardless of how runs are parallelized.
type FaultModel = fault.Config

// DeadChipFault is the legacy single-dead-chip model (samsim -faultchip):
// chip dead on every rank, everything else default.
func DeadChipFault(chip int, seed uint64) *FaultModel {
	return &FaultModel{Seed: seed, DeadChips: []fault.ChipFault{{Rank: -1, Chip: chip}}}
}

// NewSystem builds a system for the design.
func NewSystem(d *design.Design) *System {
	s := &System{
		Design:  d,
		CPU:     cpu.Default(),
		Caches:  DefaultCaches(),
		tables:  make(map[string]*imdb.Table),
		placers: make(map[string]*design.Placer),
	}
	s.reset()
	return s
}

// reset rebuilds the memory-side state (between workloads).
func (s *System) reset() {
	nch := s.Design.Mem.Geometry.Channels
	s.devices = make([]*dram.Device, nch)
	s.controllers = make([]*mc.Controller, nch)
	for ch := 0; ch < nch; ch++ {
		s.devices[ch] = dram.NewDevice(s.Design.Mem)
		s.controllers[ch] = mc.NewController(s.devices[ch], mc.DefaultConfig())
		if s.Audit {
			s.controllers[ch].Audit = dram.NewAuditor(s.Design.Mem)
		}
	}
	s.Device = s.devices[0]
	s.Controller = s.controllers[0]
	s.wireEventTrace()
	s.route = mc.NewAddrMap(s.Design.Mem.Geometry)
	sectors := s.Design.SectorsPerLine()
	lb := s.Design.Mem.Geometry.LineBytes
	l1 := cache.New(cache.Config{Name: "L1", SizeBytes: s.Caches.L1Bytes, LineBytes: lb, Ways: s.Caches.Ways, Sectors: sectors, HitLatency: 4})
	l2 := cache.New(cache.Config{Name: "L2", SizeBytes: s.Caches.L2Bytes, LineBytes: lb, Ways: s.Caches.Ways, Sectors: sectors, HitLatency: 12})
	llc := cache.New(cache.Config{Name: "LLC", SizeBytes: s.Caches.LLCBytes, LineBytes: lb, Ways: s.Caches.Ways, Sectors: sectors, HitLatency: 38})
	s.Hierarchy = cache.NewHierarchy(l1, l2, llc)
}

// AttachEventTrace wires a cycle-accurate event trace into every channel:
// buf's per-channel tracers observe both the controller's request lifecycle
// and the device's command stream, and sp (optional) receives windowed
// statistics samples from the run engine. Passing a nil buf detaches
// tracing again. The attachment survives reset.
func (s *System) AttachEventTrace(buf *etrace.Buffer, sp *etrace.Sampler) {
	s.Events = buf
	s.Sampler = sp
	s.wireEventTrace()
}

// wireEventTrace applies the Events attachment to the current controller
// and device set (reset rebuilds them, so it re-runs there).
func (s *System) wireEventTrace() {
	for ch := range s.controllers {
		if s.Events != nil {
			t := s.Events.Channel(ch)
			s.controllers[ch].Trace = t
			s.devices[ch].Trace = t
		} else {
			s.controllers[ch].Trace = nil
			s.devices[ch].Trace = nil
		}
	}
}

// Channels returns the channel count.
func (s *System) Channels() int { return len(s.controllers) }

// ChannelController returns channel ch's controller.
func (s *System) ChannelController(ch int) *mc.Controller { return s.controllers[ch] }

// ChannelDevice returns channel ch's device.
func (s *System) ChannelDevice(ch int) *dram.Device { return s.devices[ch] }

// channelOf routes an address to its channel (a masked shift, not a full
// coordinate decode — this sits on the per-request enqueue path).
func (s *System) channelOf(addr uint64) int {
	if len(s.controllers) == 1 {
		return 0
	}
	return s.route.Channel(addr)
}

// AuditOK reports whether every channel's command stream was protocol
// clean (only meaningful with Audit set).
func (s *System) AuditOK() bool {
	for _, c := range s.controllers {
		if c.Audit != nil && !c.Audit.Ok() {
			return false
		}
	}
	return true
}

// AddTable registers a table; colStore selects column-major placement (the
// ideal design's choice for column-preferring queries).
func (s *System) AddTable(t *imdb.Table, colStore bool) {
	s.addTable(t, design.NewPlacer(s.Design, t.Schema, s.slots, colStore))
}

// AddTableHybrid registers a table under the hybrid layout: hotFields are
// stored column-major, everything else row-major (the software alternative
// the Fig. 15 sweeps motivate).
func (s *System) AddTableHybrid(t *imdb.Table, hotFields []int) {
	s.addTable(t, design.NewPlacerHybrid(s.Design, t.Schema, s.slots, hotFields))
}

func (s *System) addTable(t *imdb.Table, p *design.Placer) {
	if _, dup := s.tables[t.Schema.Name]; dup {
		panic(fmt.Sprintf("sim: duplicate table %q", t.Schema.Name))
	}
	s.tables[t.Schema.Name] = t
	s.placers[t.Schema.Name] = p
	s.slots++
}

// Table returns a registered table.
func (s *System) Table(name string) (*imdb.Table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown table %q", name)
	}
	return t, nil
}

// RunStats aggregates one run's observable behaviour.
type RunStats struct {
	Cycles      dram.Cycle
	MemRequests uint64
	RowHitRate  float64
	Energy      power.Breakdown // nanojoules
	PowerMW     power.Breakdown
	Device      dram.DeviceStats
	Controller  mc.Stats
	// BankActPreNJ is per-bank activation energy in nanojoules — the
	// spatial split of Energy.ActPre, indexed like Device.PerBank.
	BankActPreNJ []float64
	// Metrics is the run's instrument snapshot: per-class request-latency
	// and queue-occupancy histograms (see mc.NewMetrics for the names).
	Metrics *stats.Snapshot
	// Reliability is the fault campaign's full counter block (nil unless
	// System.Faults is active), summed across channels.
	Reliability *fault.Counters
	// Fault-injection outcomes (zero unless System.Faults is set):
	// CorrectedBursts are bursts the codec healed; UncorrectableBursts are
	// detected-uncorrectable decodes plus silent corruptions (no-ECC
	// designs).
	CorrectedBursts     uint64
	UncorrectableBursts uint64
}

// Seconds converts the run length to wall-clock seconds at the bus clock.
func (r RunStats) Seconds(clockMHz float64) float64 {
	return float64(r.Cycles) / (clockMHz * 1e6)
}

// EnergyEfficiency returns work-per-energy relative to a reference run of
// the same workload: (refEnergy/refTime) ... the paper's normalized energy
// efficiency is simply E_ref / E_design for identical work.
func EnergyEfficiency(ref, d RunStats) float64 {
	if d.Energy.Total() == 0 {
		return 0
	}
	return ref.Energy.Total() / d.Energy.Total()
}

// Speedup returns ref.Cycles / d.Cycles.
func Speedup(ref, d RunStats) float64 {
	if d.Cycles == 0 {
		return 0
	}
	return float64(ref.Cycles) / float64(d.Cycles)
}
