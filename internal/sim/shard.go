package sim

import (
	"runtime"

	"sam/internal/dram"
	"sam/internal/mc"
	"sam/internal/runner"
	"sam/internal/trace"
)

// This file is the sharded run engine: each channel runs as its own event
// domain — controller, device, fault injector, and etrace channel ring are
// already per-channel state — replayed by worker goroutines from a
// runner.Domains pool, while the workload goroutine keeps the compute
// clock, request IDs, arrival stamping, and cache state.
//
// # Determinism contract
//
// The sharded engine produces bit-identical RunStats to the serial engine
// for any worker count, by construction rather than by synchronization.
// The key observation is that the serial engine's cross-channel coupling is
// occupancy-only: which channel serviceOne picks depends on which
// controllers have pending requests and the round-robin pointer; whether a
// service retires a read or a write (which is what moves the inflight
// window) is Config.PickKind over that channel's queue occupancies and
// drain latch; and a request's Arrival/ID come from the compute clock,
// which no completion ever feeds back into. Timing results (completion
// cycles, row hits, retries) never influence the schedule.
//
// So the workload goroutine runs a count mirror — per-channel read/write
// occupancies plus the drain latch, stepped by the same mc.Config.PickKind
// the controller schedules by — and stages each channel's exact
// enqueue/service sequence as ops. Lane workers replay a channel's ops in
// order against the real controller; channels replay concurrently. Per
// channel, the replayed call sequence is identical to the serial engine's,
// so every per-channel artifact (controller/device stats, injector
// counters, audit history, trace ring) is bit-identical, and the
// cross-channel aggregations (Stats.Add, DeviceStats.Add, registry
// merging, fault.Counters.Add) are order-fixed sums over channels.
// Replay asserts each serviced completion's kind against the mirror's
// prediction, so any drift panics instead of silently diverging.
//
// One subtlety: the serial engine probes empty controllers (ServiceOne →
// pickQueue → nil), and those probes update the drain latch; replay skips
// them. With WriteDrainLow >= 1 the probes are no-ops — the latch is
// already clear whenever the write queue empties, because the service that
// took the queue to WriteDrainLow ran pickQueue first — so skipping them is
// exact. shardWorkerPlan therefore requires WriteDrainLow >= 1 and falls
// back to the serial engine otherwise.
//
// # Epoch barriers and clock ownership
//
// Staging is pipelined: ops are dispatched in batches with bounded queues,
// so replay overlaps the workload's compute side, and the run needs a full
// barrier only where channels genuinely couple:
//
//   - sampler boundaries: the windowed sampler reads live controller state,
//     so sampled runs barrier every shardSampleOps staged ops and advance
//     the ratcheted sample clock to the domains' high-water completion;
//   - finish(): one final barrier before aggregation, then the pool closes.
//
// The workload goroutine owns the compute clock (engine.clock) and the
// sample clock; each domain owns its controller's timeline (Controller.now)
// and its device clocks. No clock is shared across goroutines.
const (
	// shardBatchOps is the staged-op batch size handed to a lane worker per
	// dispatch: large enough to amortize the channel handoff, small enough
	// to keep lanes busy while the producer stages the next batch.
	shardBatchOps = 512
	// shardSampleOps bounds staged ops between epoch barriers when a
	// windowed sampler is attached, pacing how often the sampler can
	// observe live controller state.
	shardSampleOps = 4096
)

// shardOp is one staged operation of a channel's replay sequence: an
// enqueue carrying the fully-formed request, or a service of the channel's
// next scheduler pick with the mirror's predicted kind.
type shardOp struct {
	req     mc.Request
	service bool
	isWrite bool // service ops: the kind the mirror predicted
}

// shardDomain is one channel's event domain: the real controller the lane
// worker replays into, the occupancy mirror the producer schedules by, and
// the staging batch in flight between them.
type shardDomain struct {
	ctrl *mc.Controller
	cfg  mc.Config

	// Occupancy mirror (producer-owned).
	readN, writeN int
	draining      bool

	// Staging (producer-owned batch; free recycles consumed batches from
	// the lane worker, non-blocking on both sides).
	batch []shardOp
	free  chan []shardOp

	// maxEnd is the channel's high-water completion cycle (lane-owned
	// between barriers, producer-readable after one).
	maxEnd dram.Cycle
}

// shardState drives one sharded run.
type shardState struct {
	pool      *runner.Domains
	doms      []shardDomain
	sinceSync int // staged ops since the last barrier (sampler pacing)
}

// shardWorkerPlan resolves System.ShardWorkers into an effective worker
// count for this run: 0 means run the serial engine. The default (auto)
// shards multi-channel systems across min(Channels, GOMAXPROCS) workers;
// 1 forces serial; >= 2 forces sharding with at most that many workers
// (clamped to the channel count, which bounds useful parallelism).
func (s *System) shardWorkerPlan() int {
	w := s.ShardWorkers
	if w == 1 {
		return 0
	}
	n := s.Channels()
	if w <= 0 {
		if n < 2 {
			return 0
		}
		w = runtime.GOMAXPROCS(0)
		if w < 2 {
			return 0
		}
	}
	if w > n {
		w = n
	}
	for _, c := range s.controllers {
		// The empty-probe argument above needs WriteDrainLow >= 1, and the
		// mirror starts from empty queues; fall back to serial if either
		// precondition fails.
		if c.Config().WriteDrainLow < 1 || c.Pending() != 0 {
			return 0
		}
	}
	return w
}

// newShardState builds the run's domains and starts its worker pool. The
// pool is per-run (closed in finish), so systems never leak goroutines no
// matter how many runs a sweep performs.
func newShardState(s *System, workers int) *shardState {
	n := s.Channels()
	shardRuns.Add(1)
	st := &shardState{
		pool: runner.NewDomainsPulse(n, workers, loadDomainPulse()),
		doms: make([]shardDomain, n),
	}
	for ch := 0; ch < n; ch++ {
		d := &st.doms[ch]
		d.ctrl = s.controllers[ch]
		d.cfg = d.ctrl.Config()
		d.batch = make([]shardOp, 0, shardBatchOps)
		d.free = make(chan []shardOp, domainBatchRecycle)
	}
	return st
}

// domainBatchRecycle sizes each domain's batch free list: enough to hold
// every batch that can be in flight to one worker, so steady state recycles
// instead of allocating.
const domainBatchRecycle = 8

// canAccept mirrors Controller.CanAccept over the staged occupancies.
func (d *shardDomain) canAccept(isWrite bool) bool {
	if isWrite {
		return d.writeN < d.cfg.WriteQueueCap
	}
	return d.readN < d.cfg.ReadQueueCap
}

// enqueue is the sharded engine.enqueue: identical back-pressure and
// arrival stamping, with the controller calls staged instead of executed.
func (st *shardState) enqueue(e *engine, r mc.Request) {
	ch := e.sys.channelOf(r.Addr)
	d := &st.doms[ch]
	for !d.canAccept(r.IsWrite) {
		if !st.stageService(e) {
			panic("sim: controller full but idle")
		}
	}
	if !r.IsWrite {
		for e.inflight >= e.sys.CPU.WindowSize() {
			if !st.stageService(e) {
				panic("sim: window full but controller idle")
			}
		}
		e.inflight++
	}
	r.ID = e.nextID
	e.nextID++
	r.Arrival = e.t0 + e.clock
	if e.sys.TraceSink != nil {
		e.sys.TraceSink.Add(trace.FromRequest(r))
	}
	if r.IsWrite {
		d.writeN++
	} else {
		d.readN++
	}
	st.push(e, ch, shardOp{req: r})
}

// stageService mirrors engine.serviceOne: round-robin over the channels,
// stepping each probed channel's drain latch exactly as the controller's
// pickQueue would, and staging a service op on the first channel with
// pending work. Returns false when every mirror is empty.
func (st *shardState) stageService(e *engine) bool {
	n := len(st.doms)
	for i := 0; i < n; i++ {
		ch := (e.nextChan + i) % n
		d := &st.doms[ch]
		isWrite, _, draining, ok := d.cfg.PickKind(d.readN, d.writeN, d.draining)
		d.draining = draining
		if !ok {
			continue
		}
		e.nextChan = (e.nextChan + i + 1) % n
		if isWrite {
			d.writeN--
		} else {
			d.readN--
			e.inflight--
		}
		st.push(e, ch, shardOp{service: true, isWrite: isWrite})
		return true
	}
	return false
}

// push stages one op on channel ch, dispatching the batch when full and
// barriering for the sampler when due.
func (st *shardState) push(e *engine, ch int, op shardOp) {
	d := &st.doms[ch]
	d.batch = append(d.batch, op)
	if len(d.batch) >= shardBatchOps {
		st.flush(ch)
	}
	if e.sys.Sampler != nil {
		st.sinceSync++
		if st.sinceSync >= shardSampleOps {
			st.barrier(e)
		}
	}
}

// flush dispatches channel ch's staged batch to its lane worker.
func (st *shardState) flush(ch int) {
	d := &st.doms[ch]
	if len(d.batch) == 0 {
		return
	}
	batch := d.batch
	st.pool.Submit(ch, func() { d.replay(batch) })
	select {
	case recycled := <-d.free:
		d.batch = recycled[:0]
	default:
		d.batch = make([]shardOp, 0, shardBatchOps)
	}
}

// replay executes one staged batch against the real controller (on the
// channel's lane worker). Any divergence between the mirror's predicted
// schedule and the controller's actual pick is a bug in the determinism
// argument, and panics rather than silently corrupting the run.
func (d *shardDomain) replay(ops []shardOp) {
	for i := range ops {
		op := &ops[i]
		if !op.service {
			d.ctrl.Enqueue(op.req)
			continue
		}
		comp, ok := d.ctrl.ServiceOne()
		if !ok {
			panic("sim: staged service found the controller idle (occupancy mirror drift)")
		}
		if comp.Req.IsWrite != op.isWrite {
			panic("sim: staged service kind diverged from the scheduler (occupancy mirror drift)")
		}
		if comp.DataEnd > d.maxEnd {
			d.maxEnd = comp.DataEnd
		}
	}
	select {
	case d.free <- ops[:0]:
	default:
	}
}

// barrier flushes every domain's staged ops and waits for the lanes to
// quiesce; afterwards the producer may read live controller/device state.
// On sampled runs it then ratchets the sample clock to the domains'
// high-water completion, recording any crossed window boundaries.
func (st *shardState) barrier(e *engine) {
	for ch := range st.doms {
		st.flush(ch)
	}
	st.pool.Barrier()
	shardEpochs.Add(1)
	st.sinceSync = 0
	if e.sys.Sampler != nil {
		var hi dram.Cycle
		for i := range st.doms {
			if st.doms[i].maxEnd > hi {
				hi = st.doms[i].maxEnd
			}
		}
		if hi > 0 {
			e.noteTime(hi)
		}
	}
}

// drain stages services until every mirror is empty, runs the final
// barrier, and shuts the pool down — the sharded half of engine.finish.
func (st *shardState) drain(e *engine) {
	for st.stageService(e) {
	}
	st.barrier(e)
	st.pool.Close()
}
