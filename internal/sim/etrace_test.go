package sim

import (
	"bytes"
	"testing"

	"sam/internal/design"
	"sam/internal/etrace"
	"sam/internal/imdb"
	"sam/internal/mc"
	"sam/internal/stats"
)

// TestEventTraceReconciles is the tracing acceptance check: on an audited
// run, the per-request spans in the event buffer rebuild the controller's
// latency histograms exactly, the command events equal the auditor's
// history per channel, the sampler's final cumulative totals equal the
// RunStats, and the Chrome export passes schema validation.
func TestEventTraceReconciles(t *testing.T) {
	d := design.New(design.SAMEn, design.Options{})
	s := NewSystem(d)
	s.Audit = true
	s.reset()
	buf := etrace.NewBuffer(0)
	buf.Name = "SAM-en"
	sp := etrace.NewSampler(256)
	sp.Name = "SAM-en"
	s.AttachEventTrace(buf, sp)
	s.AddTable(imdb.NewTable(imdb.Ta(512), 7), false)
	s.AddTable(imdb.NewTable(imdb.Tb(512), 8), false)
	res, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}

	// 1. Latency histograms rebuilt from Complete spans match mc.Metrics.
	rebuilt := map[string]*stats.Histogram{
		"mc.lat.read.normal":  stats.NewHistogram(mc.LatencyBounds()...),
		"mc.lat.read.stride":  stats.NewHistogram(mc.LatencyBounds()...),
		"mc.lat.write.normal": stats.NewHistogram(mc.LatencyBounds()...),
		"mc.lat.write.stride": stats.NewHistogram(mc.LatencyBounds()...),
	}
	completes := 0
	for _, e := range buf.Events() {
		if e.Kind != etrace.KindComplete {
			continue
		}
		completes++
		name := "mc.lat."
		if e.Flags&etrace.FlagWrite != 0 {
			name += "write."
		} else {
			name += "read."
		}
		if e.Flags&etrace.FlagStride != 0 {
			name += "stride"
		} else {
			name += "normal"
		}
		rebuilt[name].Observe(uint64(e.DataEnd - e.Arrival))
	}
	if completes == 0 {
		t.Fatal("no completion events recorded")
	}
	for name, h := range rebuilt {
		snap, ok := res.Stats.Metrics.Histograms[name]
		if !ok {
			t.Fatalf("run metrics missing %s", name)
		}
		if h.Total() != snap.Total || h.Sum() != snap.Sum || h.Max() != snap.Max {
			t.Fatalf("%s: rebuilt total/sum/max %d/%d/%d vs metrics %d/%d/%d",
				name, h.Total(), h.Sum(), h.Max(), snap.Total, snap.Sum, snap.Max)
		}
		for i, c := range h.Counts() {
			if c != snap.Counts[i] {
				t.Fatalf("%s bucket %d: rebuilt %d vs metrics %d", name, i, c, snap.Counts[i])
			}
		}
	}

	// 2. Command events equal the auditor history, channel by channel.
	events := buf.Events()
	for ch := 0; ch < s.Channels(); ch++ {
		aud := s.ChannelController(ch).Audit
		hist := aud.History() // before Ok: validation sorts in place
		var i int
		for _, e := range events {
			if e.Kind != etrace.KindCommand || int(e.Chan) != ch {
				continue
			}
			if i >= len(hist) {
				t.Fatalf("ch%d: more command events than audited commands (%d)", ch, len(hist))
			}
			h := hist[i]
			if e.At != h.At || e.Cmd != h.Cmd.Kind ||
				int(e.Rank) != h.Cmd.Rank || int(e.Group) != h.Cmd.Group ||
				int(e.Bank) != h.Cmd.Bank || int(e.Row) != h.Cmd.Row || int(e.Col) != h.Cmd.Col {
				t.Fatalf("ch%d command %d: event %+v vs audited %+v at %d", ch, i, e, h.Cmd, h.At)
			}
			i++
		}
		if i != len(hist) {
			t.Fatalf("ch%d: %d command events vs %d audited commands", ch, i, len(hist))
		}
		if !aud.Ok() {
			t.Fatalf("ch%d: protocol violations: %v", ch, aud.Violations)
		}
	}

	// 3. Sampler: strictly increasing boundaries, final totals == RunStats.
	if len(sp.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for i := 1; i < len(sp.Samples); i++ {
		if sp.Samples[i].At <= sp.Samples[i-1].At {
			t.Fatalf("sample %d at %d not after %d", i, sp.Samples[i].At, sp.Samples[i-1].At)
		}
	}
	last := sp.Samples[len(sp.Samples)-1]
	if last.At > int64(res.Stats.Cycles) {
		t.Fatalf("last sample at %d beyond run end %d", last.At, res.Stats.Cycles)
	}
	if last.Ctl != res.Stats.Controller {
		t.Fatalf("final sample controller stats %+v != run stats %+v", last.Ctl, res.Stats.Controller)
	}
	ld, rd := last.Dev, res.Stats.Device
	if ld.Acts != rd.Acts || ld.Reads != rd.Reads || ld.Writes != rd.Writes ||
		ld.StrideReads != rd.StrideReads || ld.StrideWrites != rd.StrideWrites ||
		ld.Refs != rd.Refs || ld.BusBusyCycles != rd.BusBusyCycles {
		t.Fatalf("final sample device stats %+v != run stats %+v", ld, rd)
	}

	// 4. The export passes validation with one span per completion.
	var out bytes.Buffer
	if err := etrace.WriteChrome(&out, []*etrace.Buffer{buf}, []*etrace.Sampler{sp}); err != nil {
		t.Fatal(err)
	}
	sum, verr := etrace.ValidateChrome(out.Bytes())
	if verr != nil {
		t.Fatalf("export invalid: %v", verr)
	}
	if sum.Spans != completes {
		t.Fatalf("%d spans, want %d", sum.Spans, completes)
	}
}

// TestAttachEventTraceDetach verifies nil detaches cleanly and that the
// attachment survives reset.
func TestAttachEventTraceDetach(t *testing.T) {
	s := NewSystem(design.New(design.Baseline, design.Options{}))
	buf := etrace.NewBuffer(16)
	s.AttachEventTrace(buf, nil)
	for ch := 0; ch < s.Channels(); ch++ {
		if s.ChannelController(ch).Trace == nil || s.ChannelDevice(ch).Trace == nil {
			t.Fatalf("ch%d not wired", ch)
		}
	}
	s.reset()
	for ch := 0; ch < s.Channels(); ch++ {
		if s.ChannelController(ch).Trace == nil {
			t.Fatalf("ch%d wiring lost across reset", ch)
		}
	}
	s.AttachEventTrace(nil, nil)
	for ch := 0; ch < s.Channels(); ch++ {
		if s.ChannelController(ch).Trace != nil || s.ChannelDevice(ch).Trace != nil {
			t.Fatalf("ch%d still wired after detach", ch)
		}
	}
}
