package sim

import (
	"reflect"
	"testing"

	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/sql"
	"sam/internal/trace"
)

func testSystem(kind design.Kind, taRecords, tbRecords int, colStore bool) *System {
	d := design.New(kind, design.Options{})
	s := NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(taRecords), 0x5EED), colStore)
	s.AddTable(imdb.NewTable(imdb.Tb(tbRecords), 0x5EED+1), colStore)
	return s
}

func sel25() sql.Params { return sql.Params{"x": 2} }

func TestRunQueryBasics(t *testing.T) {
	s := testSystem(design.Baseline, 512, 512, false)
	r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows == 0 || r.Rows == 512 {
		t.Fatalf("25%% selectivity matched %d of 512", r.Rows)
	}
	if r.Aggregates[0] <= 0 {
		t.Fatal("sum aggregate not computed")
	}
	if r.Stats.Cycles <= 0 || r.Stats.MemRequests == 0 {
		t.Fatalf("stats empty: %+v", r.Stats)
	}
}

func TestFunctionalEquivalenceAcrossDesigns(t *testing.T) {
	// Invariant 9: every design returns identical results; only timing may
	// differ.
	queries := []struct {
		sql    string
		params sql.Params
	}{
		{"SELECT f3, f4 FROM Ta WHERE f10 > x", sel25()},
		{"SELECT SUM(f9) FROM Tb WHERE f10 > x", sel25()},
		{"SELECT AVG(f1) FROM Ta WHERE f10 > x", sel25()},
		{"SELECT f1 + f2 + f5 FROM Ta WHERE f0 < x", sql.Params{"x": imdb.Percentile(0.5)}},
		{"SELECT * FROM Tb WHERE f10 > x", sel25()},
		{"SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9", nil},
	}
	kinds := append([]design.Kind{design.Baseline}, design.AllEvaluated()...)
	for _, q := range queries {
		var ref *QueryResult
		for _, k := range kinds {
			s := testSystem(k, 256, 512, k == design.Ideal)
			r, err := s.RunQuery(q.sql, q.params)
			if err != nil {
				t.Fatalf("%v %q: %v", k, q.sql, err)
			}
			if ref == nil {
				ref = r
				continue
			}
			if r.Rows != ref.Rows || r.ProjChecks != ref.ProjChecks || r.ArithChecks != ref.ArithChecks {
				t.Fatalf("%v %q: functional mismatch (rows %d vs %d, proj %x vs %x)",
					k, q.sql, r.Rows, ref.Rows, r.ProjChecks, ref.ProjChecks)
			}
			if len(r.Aggregates) != len(ref.Aggregates) {
				t.Fatalf("%v: aggregate count mismatch", k)
			}
			for i := range r.Aggregates {
				if r.Aggregates[i] != ref.Aggregates[i] {
					t.Fatalf("%v: aggregate %d = %v vs %v", k, i, r.Aggregates[i], ref.Aggregates[i])
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Invariant 7: identical configuration -> identical cycles and energy.
	run := func() *QueryResult {
		s := testSystem(design.SAMEn, 256, 256, false)
		r, err := s.RunQuery("SELECT f3, f4 FROM Ta WHERE f10 > x", sel25())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Stats.Cycles, b.Stats.Cycles)
	}
	if a.Stats.Energy.Total() != b.Stats.Energy.Total() {
		t.Fatal("energy differs between identical runs")
	}
	if !reflect.DeepEqual(a.Stats.Device, b.Stats.Device) {
		t.Fatalf("device stats differ: %+v vs %+v", a.Stats.Device, b.Stats.Device)
	}
}

func TestProtocolAuditEndToEnd(t *testing.T) {
	// Invariant 6 at system level: a full query run issues only legal
	// command sequences, for a DRAM design and an NVM design.
	for _, k := range []design.Kind{design.SAMEn, design.RCNVMWd, design.Baseline, design.GSDRAMecc} {
		d := design.New(k, design.Options{})
		s := NewSystem(d)
		s.Audit = true
		s.reset()
		s.AddTable(imdb.NewTable(imdb.Ta(256), 7), false)
		s.AddTable(imdb.NewTable(imdb.Tb(256), 8), false)
		if _, err := s.RunQuery("SELECT f3, f4 FROM Ta WHERE f10 > x", sel25()); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if _, err := s.RunQuery("UPDATE Tb SET f3 = x WHERE f10 = y", sql.Params{"x": 5, "y": 3}); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !s.Controller.Audit.Ok() {
			t.Fatalf("%v: protocol violations; first: %s", k, s.Controller.Audit.Violations[0])
		}
	}
}

func TestUpdateWritesBack(t *testing.T) {
	s := testSystem(design.SAMEn, 128, 512, false)
	r, err := s.RunQuery("UPDATE Tb SET f3 = x, f4 = y WHERE f10 = z", sql.Params{"x": 42, "y": 43, "z": 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows == 0 {
		t.Fatal("update matched nothing")
	}
	tb, _ := s.Table("Tb")
	checked := 0
	for rec := 0; rec < tb.Records(); rec++ {
		if tb.Value(rec, 10) == 3 {
			if tb.Value(rec, 3) != 42 || tb.Value(rec, 4) != 43 {
				t.Fatalf("record %d not updated", rec)
			}
			checked++
		}
	}
	if checked != r.Rows {
		t.Fatalf("update reported %d rows, table shows %d", r.Rows, checked)
	}
	// Write traffic must have reached memory (sstore path).
	if s.Device.Stats.StrideWrites == 0 && s.Device.Stats.Writes == 0 {
		t.Fatal("no write bursts observed")
	}
}

func TestInsertAppendsRecords(t *testing.T) {
	s := testSystem(design.Baseline, 128, 256, false)
	before, _ := s.Table("Tb")
	n := before.Records()
	r, err := s.RunQuery("INSERT INTO Tb VALUES (7, 8, 9)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != InsertCount {
		t.Fatalf("insert rows = %d, want %d", r.Rows, InsertCount)
	}
	if before.Records() != n+InsertCount {
		t.Fatalf("table grew to %d, want %d", before.Records(), n+InsertCount)
	}
	if before.Value(n, 1) != 8 {
		t.Fatalf("inserted value wrong: %d", before.Value(n, 1))
	}
	if s.Device.Stats.Writes == 0 {
		t.Fatal("insert produced no write bursts")
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	s := testSystem(design.Baseline, 64, 96, false)
	r, err := s.RunQuery("SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f10 = Tb.f10", nil)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := s.Table("Ta")
	tb, _ := s.Table("Tb")
	want := 0
	var checks uint64
	for i := 0; i < ta.Records(); i++ {
		for j := 0; j < tb.Records(); j++ {
			if ta.Value(i, 10) == tb.Value(j, 10) {
				want++
				checks ^= ta.Value(i, 3)
				checks ^= tb.Value(j, 4)
			}
		}
	}
	if r.Rows != want {
		t.Fatalf("join rows = %d, brute force = %d", r.Rows, want)
	}
	if r.ProjChecks != checks {
		t.Fatal("join projection checksum mismatch")
	}
}

func TestLimitStopsScan(t *testing.T) {
	s := testSystem(design.Baseline, 4096, 256, false)
	r, err := s.RunQuery("SELECT * FROM Ta LIMIT 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 100 {
		t.Fatalf("limit returned %d rows", r.Rows)
	}
	// Traffic should be bounded by ~100 records, not the whole table.
	maxReqs := uint64(100*16 + 200)
	if r.Stats.MemRequests > maxReqs {
		t.Fatalf("LIMIT scan issued %d requests (> %d)", r.Stats.MemRequests, maxReqs)
	}
}

func TestFullScanFlagChangesTraffic(t *testing.T) {
	// FullScan (Qs-style) must read whole records; predicate-first must
	// read far fewer bytes on a strided design.
	mk := func(full bool) *QueryResult {
		s := testSystem(design.SAMEn, 512, 256, false)
		stmt, err := sql.Parse("SELECT * FROM Ta WHERE f10 > x")
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sql.Compile(stmt, sel25())
		if err != nil {
			t.Fatal(err)
		}
		plan.FullScan = full
		r, err := s.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	full, predFirst := mk(true), mk(false)
	if full.Rows != predFirst.Rows || full.ProjChecks != predFirst.ProjChecks {
		t.Fatal("scan modes disagree functionally")
	}
	if predFirst.Stats.MemRequests >= full.Stats.MemRequests {
		t.Fatalf("pred-first (%d reqs) should beat full scan (%d reqs) at 25%% selectivity",
			predFirst.Stats.MemRequests, full.Stats.MemRequests)
	}
}

func TestSpeedupAndEfficiencyHelpers(t *testing.T) {
	a := RunStats{Cycles: 1000}
	b := RunStats{Cycles: 250}
	if Speedup(a, b) != 4 {
		t.Fatal("speedup math")
	}
	if Speedup(a, RunStats{}) != 0 {
		t.Fatal("zero-cycle speedup should be 0")
	}
	a.Energy.RdWr = 100
	b.Energy.RdWr = 25
	if EnergyEfficiency(a, b) != 4 {
		t.Fatal("efficiency math")
	}
	if EnergyEfficiency(a, RunStats{}) != 0 {
		t.Fatal("zero-energy efficiency should be 0")
	}
	if s := (RunStats{Cycles: 1200}).Seconds(1200); s != 1e-6 {
		t.Fatalf("seconds conversion: %v", s)
	}
}

func TestStrideDesignsUseStrideBursts(t *testing.T) {
	s := testSystem(design.SAMEn, 512, 256, false)
	if _, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25()); err != nil {
		t.Fatal(err)
	}
	if s.Device.Stats.StrideReads == 0 {
		t.Fatal("SAM design issued no stride bursts on a column scan")
	}
	if s.Device.Stats.Reads > s.Device.Stats.StrideReads/4 {
		t.Fatalf("too many regular reads (%d) alongside %d stride reads",
			s.Device.Stats.Reads, s.Device.Stats.StrideReads)
	}

	base := testSystem(design.Baseline, 512, 256, false)
	if _, err := base.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25()); err != nil {
		t.Fatal(err)
	}
	if base.Device.Stats.StrideReads != 0 {
		t.Fatal("baseline must never issue stride bursts")
	}
}

func TestModeSwitchesAreRare(t *testing.T) {
	// Section 5.3's premise: with vectorized execution, mode switches are a
	// tiny fraction of accesses.
	s := testSystem(design.SAMEn, 1024, 256, false)
	r, err := s.RunQuery("SELECT f3, f4 FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	if sw := s.Device.Stats.ModeSwitches; sw*20 > r.Stats.MemRequests {
		t.Fatalf("mode switches too frequent: %d for %d requests", sw, r.Stats.MemRequests)
	}
}

func TestEnergyPositiveAndDecomposed(t *testing.T) {
	// Invariant 10 at system level.
	s := testSystem(design.SAMIO, 256, 256, false)
	r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	e := r.Stats.Energy
	if e.Total() <= 0 || e.Background <= 0 || e.RdWr <= 0 {
		t.Fatalf("energy breakdown empty: %+v", e)
	}
	sum := e.Background + e.ActPre + e.RdWr + e.Refresh
	if sum != e.Total() {
		t.Fatal("breakdown does not sum to total")
	}
}

func TestGSDRAMeccExtraTraffic(t *testing.T) {
	run := func(kind design.Kind) uint64 {
		s := testSystem(kind, 512, 256, false)
		r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.MemRequests
	}
	plain, withECC := run(design.GSDRAM), run(design.GSDRAMecc)
	if withECC <= plain {
		t.Fatalf("embedded ECC must add traffic: %d vs %d", withECC, plain)
	}
}

func TestUnknownTableError(t *testing.T) {
	s := testSystem(design.Baseline, 64, 64, false)
	if _, err := s.RunQuery("SELECT f1 FROM Nope WHERE f2 > 1", nil); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	s := testSystem(design.Baseline, 64, 64, false)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate table accepted")
		}
	}()
	s.AddTable(imdb.NewTable(imdb.Ta(10), 1), false)
}

func TestBadQueryErrors(t *testing.T) {
	s := testSystem(design.Baseline, 64, 64, false)
	for _, q := range []string{
		"SELECT FROM Ta",
		"SELECT f1 FROM Ta WHERE f2 > unbound",
		"INSERT INTO Tb VALUES (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)",
	} {
		if _, err := s.RunQuery(q, nil); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	// Join without equality predicate.
	if _, err := s.RunQuery("SELECT Ta.f1, Tb.f2 FROM Ta, Tb WHERE Ta.f1 > Tb.f1", nil); err == nil {
		t.Error("join without equality accepted")
	}
}

func TestMultiChannelScaling(t *testing.T) {
	// Doubling the channels must meaningfully speed a memory-bound scan and
	// preserve functional results; protocol legality holds per channel.
	run := func(channels int) *QueryResult {
		d := design.New(design.Baseline, design.Options{})
		d.Mem.Geometry.Channels = channels
		s := NewSystem(d)
		s.Audit = true
		s.reset()
		s.AddTable(imdb.NewTable(imdb.Ta(2048), 0xC0DE), false)
		s.AddTable(imdb.NewTable(imdb.Tb(256), 0xC0DF), false)
		r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
		if err != nil {
			t.Fatal(err)
		}
		if !s.AuditOK() {
			t.Fatalf("%d channels: protocol violations", channels)
		}
		if s.Channels() != channels {
			t.Fatalf("channel count %d", s.Channels())
		}
		return r
	}
	one, two := run(1), run(2)
	if one.Rows != two.Rows || one.ProjChecks != two.ProjChecks {
		t.Fatal("channel count changed functional results")
	}
	speedup := float64(one.Stats.Cycles) / float64(two.Stats.Cycles)
	if speedup < 1.3 {
		t.Fatalf("second channel bought only %.2fx on a memory-bound scan", speedup)
	}
	if one.Stats.MemRequests != two.Stats.MemRequests {
		t.Fatalf("request counts diverged: %d vs %d", one.Stats.MemRequests, two.Stats.MemRequests)
	}
}

func TestWarmSystemRunRelativeStats(t *testing.T) {
	// Repeated queries on one (warm) system report per-run deltas, and the
	// second run is faster (warm caches), never double-counted.
	s := testSystem(design.SAMEn, 512, 256, false)
	q := "SELECT SUM(f9) FROM Ta WHERE f10 > x"
	first, err := s.RunQuery(q, sel25())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunQuery(q, sel25())
	if err != nil {
		t.Fatal(err)
	}
	if second.Rows != first.Rows || second.Aggregates[0] != first.Aggregates[0] {
		t.Fatal("warm rerun changed the answer")
	}
	if second.Stats.MemRequests >= first.Stats.MemRequests/2 {
		t.Fatalf("warm rerun should mostly hit cache: %d vs %d requests",
			second.Stats.MemRequests, first.Stats.MemRequests)
	}
	if second.Stats.Cycles >= first.Stats.Cycles {
		t.Fatalf("warm rerun not faster: %d vs %d cycles", second.Stats.Cycles, first.Stats.Cycles)
	}
	if second.Stats.Device.StrideReads >= first.Stats.Device.StrideReads {
		t.Fatal("device stats not run-relative")
	}
}

func TestHybridTableFunctionalAndFast(t *testing.T) {
	// A hybrid layout with the scanned fields columnar must answer exactly
	// like the row store and scan faster on plain DRAM.
	query := "SELECT SUM(f9) FROM Ta WHERE f10 > x"
	row := testSystem(design.Baseline, 1024, 64, false)
	rowRes, err := row.RunQuery(query, sel25())
	if err != nil {
		t.Fatal(err)
	}

	d := design.New(design.Baseline, design.Options{})
	s := NewSystem(d)
	s.AddTableHybrid(imdb.NewTable(imdb.Ta(1024), 0x5EED), []int{9, 10})
	s.AddTable(imdb.NewTable(imdb.Tb(64), 0x5EED+1), false)
	hyRes, err := s.RunQuery(query, sel25())
	if err != nil {
		t.Fatal(err)
	}
	if hyRes.Rows != rowRes.Rows || hyRes.Aggregates[0] != rowRes.Aggregates[0] {
		t.Fatal("hybrid layout changed the answer")
	}
	if hyRes.Stats.Cycles >= rowRes.Stats.Cycles {
		t.Fatalf("hybrid columnar scan not faster: %d vs %d", hyRes.Stats.Cycles, rowRes.Stats.Cycles)
	}
	if hyRes.Stats.Device.StrideReads != 0 {
		t.Fatal("hybrid layout must not use stride bursts")
	}
}

func TestNewAggregates(t *testing.T) {
	s := testSystem(design.Baseline, 256, 512, false)
	tb, _ := s.Table("Tb")
	r, err := s.RunQuery("SELECT COUNT(*), MIN(f1), MAX(f1), AVG(f1) FROM Tb WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	// Reference computation.
	var count int
	var min, max uint64
	var sum float64
	for rec := 0; rec < tb.Records(); rec++ {
		if tb.Value(rec, 10) <= 2 {
			continue
		}
		v := tb.Value(rec, 1)
		if count == 0 || v < min {
			min = v
		}
		if count == 0 || v > max {
			max = v
		}
		sum += float64(v)
		count++
	}
	if int(r.Aggregates[0]) != count {
		t.Fatalf("COUNT(*) = %v, want %d", r.Aggregates[0], count)
	}
	if r.Aggregates[1] != float64(min) || r.Aggregates[2] != float64(max) {
		t.Fatalf("MIN/MAX = %v/%v, want %d/%d", r.Aggregates[1], r.Aggregates[2], min, max)
	}
	if r.Aggregates[3] != sum/float64(count) {
		t.Fatalf("AVG = %v", r.Aggregates[3])
	}
}

func TestGroupByAggregation(t *testing.T) {
	s := testSystem(design.SAMEn, 256, 1024, false)
	tb, _ := s.Table("Tb")
	r, err := s.RunQuery("SELECT COUNT(*), SUM(f1) FROM Tb GROUP BY f10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) != 4 {
		t.Fatalf("categorical f10 should form 4 groups, got %d", len(r.Groups))
	}
	// Cross-check each group against the table.
	total := 0
	for key, vals := range r.Groups {
		var count int
		var sum float64
		for rec := 0; rec < tb.Records(); rec++ {
			if tb.Value(rec, 10) == key {
				count++
				sum += float64(tb.Value(rec, 1))
			}
		}
		if int(vals[0]) != count || vals[1] != sum {
			t.Fatalf("group %d: got (%v,%v), want (%d,%v)", key, vals[0], vals[1], count, sum)
		}
		total += count
	}
	if total != tb.Records() {
		t.Fatalf("groups cover %d of %d records", total, tb.Records())
	}
	// Group-by results are design-independent too.
	base := testSystem(design.Baseline, 256, 1024, false)
	rb, err := base.RunQuery("SELECT COUNT(*), SUM(f1) FROM Tb GROUP BY f10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rb.ProjChecks != r.ProjChecks || len(rb.Groups) != len(r.Groups) {
		t.Fatal("grouped results differ across designs")
	}
}

func TestFaultInjectionChipkillVsGSDRAM(t *testing.T) {
	// Run the same query with a dead chip: chipkill designs correct every
	// burst (exercising the real RS decoder for the first bursts); plain
	// GS-DRAM, which gave up ECC, takes uncorrectable corruption.
	run := func(kind design.Kind) RunStats {
		s := testSystem(kind, 256, 256, false)
		s.Faults = DeadChipFault(7, 42)
		r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	sam := run(design.SAMEn)
	if sam.CorrectedBursts == 0 || sam.UncorrectableBursts != 0 {
		t.Fatalf("SAM-en under a dead chip: corrected=%d uncorrectable=%d",
			sam.CorrectedBursts, sam.UncorrectableBursts)
	}
	if rel := sam.Reliability; rel == nil || rel.SilentCorruptions != 0 ||
		rel.CorrectedBursts != rel.Injected || rel.Bursts == 0 {
		t.Fatalf("SAM-en reliability block: %+v", sam.Reliability)
	}
	gs := run(design.GSDRAM)
	if gs.UncorrectableBursts == 0 || gs.CorrectedBursts != 0 {
		t.Fatalf("GS-DRAM under a dead chip: corrected=%d uncorrectable=%d",
			gs.CorrectedBursts, gs.UncorrectableBursts)
	}
	if rel := gs.Reliability; rel == nil || rel.SilentCorruptions == 0 || rel.DUEs != 0 {
		t.Fatalf("GS-DRAM reliability block: %+v", gs.Reliability)
	}
	// Without fault injection, both counters stay zero.
	clean := testSystem(design.SAMEn, 64, 64, false)
	r, err := clean.RunQuery("SELECT SUM(f9) FROM Tb WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.CorrectedBursts != 0 || r.Stats.UncorrectableBursts != 0 || r.Stats.Reliability != nil {
		t.Fatal("fault counters nonzero without injection")
	}
}

func TestTraceSinkCapturesRequests(t *testing.T) {
	s := testSystem(design.SAMEn, 256, 64, false)
	s.TraceSink = &trace.Trace{}
	r, err := s.RunQuery("SELECT SUM(f9) FROM Ta WHERE f10 > x", sel25())
	if err != nil {
		t.Fatal(err)
	}
	if uint64(s.TraceSink.Len()) != r.Stats.MemRequests {
		t.Fatalf("trace has %d records, run issued %d requests", s.TraceSink.Len(), r.Stats.MemRequests)
	}
	// Arrivals are nondecreasing (single issue stream).
	for i := 1; i < s.TraceSink.Len(); i++ {
		if s.TraceSink.Records[i].Arrival < s.TraceSink.Records[i-1].Arrival {
			t.Fatal("trace arrivals not monotonic")
		}
	}
	// Strided requests dominate a SAM field scan.
	var strided int
	for _, rec := range s.TraceSink.Records {
		if rec.Stride {
			strided++
		}
	}
	if strided*2 < s.TraceSink.Len() {
		t.Fatalf("only %d of %d trace records strided", strided, s.TraceSink.Len())
	}
}
