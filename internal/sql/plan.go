package sql

import (
	"fmt"
	"sort"
)

// PlanKind classifies compiled plans.
type PlanKind int

// Plan kinds.
const (
	PlanScan PlanKind = iota // projection scan (with optional LIMIT)
	PlanAggregate
	PlanUpdate
	PlanInsert
	PlanJoin
)

// String names the plan kind.
func (k PlanKind) String() string {
	switch k {
	case PlanScan:
		return "scan"
	case PlanAggregate:
		return "aggregate"
	case PlanUpdate:
		return "update"
	case PlanInsert:
		return "insert"
	case PlanJoin:
		return "join"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// CompiledPred is a bound predicate on a single table.
type CompiledPred struct {
	Field int
	Op    string
	Value uint64
}

// Eval applies the predicate.
func (p CompiledPred) Eval(v uint64) bool {
	switch p.Op {
	case ">":
		return v > p.Value
	case "<":
		return v < p.Value
	case "=":
		return v == p.Value
	default:
		panic("sql: unknown operator " + p.Op)
	}
}

// JoinPred compares a field of the outer table with a field of the inner.
type JoinPred struct {
	OuterField, InnerField int
	Op                     string
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Kind  string // SUM, AVG, COUNT, MIN, MAX
	Field int    // -1 for COUNT(*)
}

// Plan is an executable query. Field lists are sorted and deduplicated.
type Plan struct {
	Kind  PlanKind
	Table string

	// PredFields are read for every record; ProjFields only for matches.
	PredFields []int
	ProjFields []int
	// WholeRecord marks SELECT * (every field read on match).
	WholeRecord bool
	// FullScan selects row-preferring execution: read whole records and
	// evaluate predicates from them, instead of the predicate-column scan
	// that fetches matching records afterwards. The harness sets it for the
	// Qs query class.
	FullScan bool
	Preds    []CompiledPred
	Aggs     []AggSpec
	// ArithGroups holds the arithmetic projection column groups (each
	// produces one output value per matching record).
	ArithGroups [][]int
	// GroupBy is the grouping field, or -1 for a global aggregate.
	GroupBy int
	Limit   int // -1 = unlimited

	// Update/Insert.
	Sets         []CompiledSet
	InsertValues []uint64 // resolved INSERT row

	// Join.
	InnerTable      string
	JoinPreds       []JoinPred
	OuterProj       []int
	InnerProj       []int
	OuterPredFields []int
	InnerPredFields []int
}

// CompiledSet is a bound assignment.
type CompiledSet struct {
	Field int
	Value uint64
}

// Params binds named query parameters (the x, y, z of Table 3).
type Params map[string]uint64

func (p Params) resolve(op Operand) (uint64, error) {
	switch {
	case op.IsLit:
		return op.Lit, nil
	case op.Param != "":
		v, ok := p[op.Param]
		if !ok {
			return 0, fmt.Errorf("sql: unbound parameter %q", op.Param)
		}
		return v, nil
	case op.Col != nil:
		return 0, fmt.Errorf("sql: column operand %v where a value is needed", *op.Col)
	default:
		return 0, fmt.Errorf("sql: empty operand")
	}
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Compile binds parameters and produces an executable plan.
func Compile(stmt Stmt, params Params) (*Plan, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return compileSelect(s, params)
	case *UpdateStmt:
		return compileUpdate(s, params)
	case *InsertStmt:
		return compileInsert(s, params)
	default:
		return nil, fmt.Errorf("sql: unknown statement type %T", stmt)
	}
}

func compileSelect(s *SelectStmt, params Params) (*Plan, error) {
	if len(s.Tables) == 2 {
		return compileJoin(s, params)
	}
	if len(s.Tables) != 1 {
		return nil, fmt.Errorf("sql: SELECT needs 1 or 2 tables, got %d", len(s.Tables))
	}
	p := &Plan{Kind: PlanScan, Table: s.Tables[0], Limit: s.Limit, GroupBy: -1}
	if s.GroupBy != nil {
		p.GroupBy = s.GroupBy.Field
		p.ProjFields = append(p.ProjFields, s.GroupBy.Field)
	}
	for _, item := range s.Items {
		switch {
		case item.Star:
			p.WholeRecord = true
		case item.Agg == "COUNT" && len(item.Cols) == 0:
			p.Kind = PlanAggregate
			p.Aggs = append(p.Aggs, AggSpec{Kind: item.Agg, Field: -1})
		case item.Agg != "":
			p.Kind = PlanAggregate
			p.Aggs = append(p.Aggs, AggSpec{Kind: item.Agg, Field: item.Cols[0].Field})
			p.ProjFields = append(p.ProjFields, item.Cols[0].Field)
		case len(item.Cols) > 1:
			group := make([]int, len(item.Cols))
			for i, c := range item.Cols {
				group[i] = c.Field
				p.ProjFields = append(p.ProjFields, c.Field)
			}
			p.ArithGroups = append(p.ArithGroups, group)
		default:
			p.ProjFields = append(p.ProjFields, item.Cols[0].Field)
		}
	}
	for _, w := range s.Where {
		v, err := params.resolve(w.Right)
		if err != nil {
			return nil, err
		}
		p.Preds = append(p.Preds, CompiledPred{Field: w.Left.Field, Op: w.Op, Value: v})
		p.PredFields = append(p.PredFields, w.Left.Field)
	}
	p.PredFields = dedupSorted(p.PredFields)
	p.ProjFields = dedupSorted(p.ProjFields)
	return p, nil
}

func compileJoin(s *SelectStmt, params Params) (*Plan, error) {
	outer, inner := s.Tables[0], s.Tables[1]
	if s.GroupBy != nil {
		return nil, fmt.Errorf("sql: GROUP BY is not supported on joins")
	}
	p := &Plan{Kind: PlanJoin, Table: outer, InnerTable: inner, Limit: s.Limit, GroupBy: -1}
	for _, item := range s.Items {
		if item.Star || item.Agg != "" || len(item.Cols) != 1 {
			return nil, fmt.Errorf("sql: join projections must be plain qualified columns")
		}
		c := item.Cols[0]
		switch c.Table {
		case outer:
			p.OuterProj = append(p.OuterProj, c.Field)
		case inner:
			p.InnerProj = append(p.InnerProj, c.Field)
		default:
			return nil, fmt.Errorf("sql: projection table %q not in FROM", c.Table)
		}
	}
	for _, w := range s.Where {
		if w.Right.Col == nil {
			// Single-table filter inside a join WHERE.
			v, err := params.resolve(w.Right)
			if err != nil {
				return nil, err
			}
			p.Preds = append(p.Preds, CompiledPred{Field: w.Left.Field, Op: w.Op, Value: v})
			switch w.Left.Table {
			case outer:
				p.OuterPredFields = append(p.OuterPredFields, w.Left.Field)
			case inner:
				p.InnerPredFields = append(p.InnerPredFields, w.Left.Field)
			default:
				return nil, fmt.Errorf("sql: predicate table %q not in FROM", w.Left.Table)
			}
			continue
		}
		l, r := w.Left, *w.Right.Col
		op := w.Op
		if l.Table == inner && r.Table == outer {
			l, r = r, l
			// Flip the comparison direction.
			switch op {
			case ">":
				op = "<"
			case "<":
				op = ">"
			}
		}
		if l.Table != outer || r.Table != inner {
			return nil, fmt.Errorf("sql: join predicate tables %q,%q do not match FROM", l.Table, r.Table)
		}
		p.JoinPreds = append(p.JoinPreds, JoinPred{OuterField: l.Field, InnerField: r.Field, Op: op})
		p.OuterPredFields = append(p.OuterPredFields, l.Field)
		p.InnerPredFields = append(p.InnerPredFields, r.Field)
	}
	p.OuterPredFields = dedupSorted(p.OuterPredFields)
	p.InnerPredFields = dedupSorted(p.InnerPredFields)
	p.OuterProj = dedupSorted(p.OuterProj)
	p.InnerProj = dedupSorted(p.InnerProj)
	return p, nil
}

func compileUpdate(s *UpdateStmt, params Params) (*Plan, error) {
	p := &Plan{Kind: PlanUpdate, Table: s.Table, Limit: -1, GroupBy: -1}
	for _, set := range s.Sets {
		v, err := params.resolve(set.Value)
		if err != nil {
			return nil, err
		}
		p.Sets = append(p.Sets, CompiledSet{Field: set.Field, Value: v})
		p.ProjFields = append(p.ProjFields, set.Field)
	}
	for _, w := range s.Where {
		v, err := params.resolve(w.Right)
		if err != nil {
			return nil, err
		}
		p.Preds = append(p.Preds, CompiledPred{Field: w.Left.Field, Op: w.Op, Value: v})
		p.PredFields = append(p.PredFields, w.Left.Field)
	}
	p.PredFields = dedupSorted(p.PredFields)
	p.ProjFields = dedupSorted(p.ProjFields)
	return p, nil
}

func compileInsert(s *InsertStmt, params Params) (*Plan, error) {
	p := &Plan{Kind: PlanInsert, Table: s.Table, Limit: -1, GroupBy: -1}
	for i, op := range s.Values {
		// The paper writes INSERT INTO Ta VALUES (f0, f1, ..., fp): field
		// names stand for "a value for that field". Columns resolve to a
		// deterministic placeholder; literals and params resolve normally.
		if op.Col != nil {
			p.InsertValues = append(p.InsertValues, uint64(op.Col.Field)*0x9E3779B97F4A7C15+uint64(i))
			continue
		}
		v, err := params.resolve(op)
		if err != nil {
			return nil, err
		}
		p.InsertValues = append(p.InsertValues, v)
	}
	return p, nil
}

// Match evaluates the plan's single-table predicates on field values
// supplied by the lookup function.
func (p *Plan) Match(value func(field int) uint64) bool {
	for _, pred := range p.Preds {
		if !pred.Eval(value(pred.Field)) {
			return false
		}
	}
	return true
}

// PrefersColumnStore reports whether the query touches a small subset of
// fields (and so benefits from column access), the heuristic separating Q
// from Qs queries.
func (p *Plan) PrefersColumnStore(tableFields int) bool {
	if p.WholeRecord || p.Kind == PlanInsert {
		return false
	}
	touched := len(p.PredFields) + len(p.ProjFields)
	return touched*2 < tableFields
}
