package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// ColRef names a column, optionally table-qualified (Ta.f3). Fields follow
// the paper's fN convention; Field is the parsed index.
type ColRef struct {
	Table string // empty when unqualified
	Field int
}

// String renders the reference in source form.
func (c ColRef) String() string {
	if c.Table != "" {
		return fmt.Sprintf("%s.f%d", c.Table, c.Field)
	}
	return fmt.Sprintf("f%d", c.Field)
}

// Operand is a predicate right-hand side: a column, a literal, or a named
// parameter bound at plan time.
type Operand struct {
	Col   *ColRef
	Lit   uint64
	IsLit bool
	Param string // non-empty for named parameters (x, y, z)
}

// Predicate is one comparison in a WHERE conjunction.
type Predicate struct {
	Left  ColRef
	Op    string // ">", "<", "="
	Right Operand
}

// SelectItem is one projection: *, an aggregate over a column (or COUNT of
// all), or a sum of columns (the arithmetic query's fi + fj + ... + fk).
type SelectItem struct {
	Star bool
	Agg  string   // "SUM", "AVG", "COUNT", "MIN", "MAX", or "" for plain
	Cols []ColRef // one entry normally; several for arithmetic expressions
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Items   []SelectItem
	Tables  []string
	Where   []Predicate
	GroupBy *ColRef // nil when absent
	Limit   int     // -1 when absent
}

// SetClause assigns a field in UPDATE.
type SetClause struct {
	Field int
	Value Operand
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where []Predicate
}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table  string
	Values []Operand
}

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

func (*SelectStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*InsertStmt) stmt() {}

// parseFieldName converts "f12" to 12.
func parseFieldName(name string) (int, error) {
	if len(name) < 2 || (name[0] != 'f' && name[0] != 'F') {
		return 0, fmt.Errorf("sql: %q is not a field name (want fN)", name)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sql: bad field index in %q", name)
	}
	return n, nil
}

// Parser consumes a token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses one statement.
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Stmt
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	default:
		return nil, fmt.Errorf("sql: statement must start with SELECT/UPDATE/INSERT, got %q", p.cur().Text)
	}
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, fmt.Errorf("sql: trailing input at %d: %q", p.cur().Pos, p.cur().Text)
	}
	return stmt, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return fmt.Errorf("sql: expected %s at %d, got %q", kw, p.cur().Pos, p.cur().Text)
	}
	p.next()
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.cur(); t.Kind == TokSymbol && t.Text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sql: expected %q at %d, got %q", s, p.cur().Pos, p.cur().Text)
	}
	return nil
}

// parseColRef parses f3 or Ta.f3.
func (p *parser) parseColRef() (ColRef, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return ColRef{}, fmt.Errorf("sql: expected column at %d, got %q", t.Pos, t.Text)
	}
	p.next()
	if p.acceptSymbol(".") {
		ft := p.next()
		if ft.Kind != TokIdent {
			return ColRef{}, fmt.Errorf("sql: expected field after %q.", t.Text)
		}
		f, err := parseFieldName(ft.Text)
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: t.Text, Field: f}, nil
	}
	f, err := parseFieldName(t.Text)
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Field: f}, nil
}

// parseOperand parses a predicate/assignment RHS: column, number, or
// parameter name.
func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseUint(t.Text, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("sql: bad number %q", t.Text)
		}
		return Operand{Lit: v, IsLit: true}, nil
	case TokIdent:
		// Field name, qualified column, or parameter.
		if _, err := parseFieldName(t.Text); err == nil || p.toks[p.pos+1].Text == "." {
			col, err := p.parseColRef()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Col: &col}, nil
		}
		p.next()
		return Operand{Param: t.Text}, nil
	default:
		return Operand{}, fmt.Errorf("sql: expected operand at %d, got %q", t.Pos, t.Text)
	}
}

func (p *parser) parseWhere() ([]Predicate, error) {
	if !p.peekKeyword("WHERE") {
		return nil, nil
	}
	p.next()
	var preds []Predicate
	for {
		left, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		op := p.cur()
		if op.Kind != TokSymbol || (op.Text != ">" && op.Text != "<" && op.Text != "=") {
			return nil, fmt.Errorf("sql: expected comparison at %d, got %q", op.Pos, op.Text)
		}
		p.next()
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		preds = append(preds, Predicate{Left: left, Op: op.Text, Right: right})
		if !p.peekKeyword("AND") {
			return preds, nil
		}
		p.next()
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.next() // SELECT
	s := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, fmt.Errorf("sql: expected table name at %d, got %q", t.Pos, t.Text)
		}
		s.Tables = append(s.Tables, t.Text)
		if !p.acceptSymbol(",") {
			break
		}
	}
	var err error
	if s.Where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if p.peekKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		s.GroupBy = &col
	}
	if p.peekKeyword("LIMIT") {
		p.next()
		t := p.next()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: LIMIT needs a number, got %q", t.Text)
		}
		n, _ := strconv.Atoi(t.Text)
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	if p.peekKeyword("SUM") || p.peekKeyword("AVG") || p.peekKeyword("COUNT") ||
		p.peekKeyword("MIN") || p.peekKeyword("MAX") {
		agg := p.next().Text
		if err := p.expectSymbol("("); err != nil {
			return SelectItem{}, err
		}
		if agg == "COUNT" && p.acceptSymbol("*") {
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg}, nil
		}
		col, err := p.parseColRef()
		if err != nil {
			return SelectItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: agg, Cols: []ColRef{col}}, nil
	}
	// Plain column or arithmetic sum fi + fj + ... + fk.
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Cols: []ColRef{col}}
	for p.acceptSymbol("+") {
		c, err := p.parseColRef()
		if err != nil {
			return SelectItem{}, err
		}
		item.Cols = append(item.Cols, c)
	}
	return item, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.next() // UPDATE
	t := p.next()
	if t.Kind != TokIdent {
		return nil, fmt.Errorf("sql: expected table after UPDATE, got %q", t.Text)
	}
	u := &UpdateStmt{Table: t.Text}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, SetClause{Field: col.Field, Value: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	var err error
	if u.Where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.Kind != TokIdent {
		return nil, fmt.Errorf("sql: expected table after INTO, got %q", t.Text)
	}
	ins := &InsertStmt{Table: t.Text}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		op, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, op)
		if p.acceptSymbol(")") {
			break
		}
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
	}
	return ins, nil
}

// MustParse parses or panics (for embedding the fixed benchmark queries).
func MustParse(src string) Stmt {
	s, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("sql: %v in %q", err, strings.TrimSpace(src)))
	}
	return s
}
