// Package sql implements the query dialect of the paper's benchmark
// (Table 3) plus the aggregates an analytical user expects: single-table
// scans, SUM/AVG/COUNT/MIN/MAX aggregates, GROUP BY, field-arithmetic
// projections, conjunctive predicates, two-table joins, UPDATE, INSERT and
// LIMIT. Queries parse to an AST and compile to executable plans over imdb
// tables; the harness embeds the paper's query text verbatim, so the
// workloads are derived from the SQL rather than hand-coded.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokKeyword
	TokSymbol
)

// Token is one lexeme.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"UPDATE": true, "SET": true, "INSERT": true, "INTO": true,
	"VALUES": true, "LIMIT": true, "SUM": true, "AVG": true,
	"COUNT": true, "MIN": true, "MAX": true, "GROUP": true, "BY": true,
}

// Lex splits src into tokens. It returns an error on any character outside
// the dialect.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',' || c == '(' || c == ')' || c == '*' || c == '+' ||
			c == '>' || c == '<' || c == '=' || c == '.':
			toks = append(toks, Token{TokSymbol, string(c), i})
			i++
		case unicode.IsDigit(c):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, Token{TokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, Token{TokKeyword, strings.ToUpper(word), i})
			} else {
				toks = append(toks, Token{TokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", len(src)})
	return toks, nil
}
