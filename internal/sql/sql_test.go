package sql

import (
	"reflect"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT f3, f4 FROM Ta WHERE f10 > 42")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokIdent, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokSymbol, TokNumber, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d kind %v, want %v (%q)", i, toks[i].Kind, k, toks[i].Text)
		}
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := Lex("SELECT @ FROM T"); err == nil {
		t.Fatal("lexer accepted @")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := MustParse("SELECT f3, f4 FROM Ta WHERE f10 > x").(*SelectStmt)
	if len(s.Items) != 2 || s.Items[0].Cols[0].Field != 3 || s.Items[1].Cols[0].Field != 4 {
		t.Fatalf("items: %+v", s.Items)
	}
	if len(s.Tables) != 1 || s.Tables[0] != "Ta" {
		t.Fatalf("tables: %v", s.Tables)
	}
	if len(s.Where) != 1 || s.Where[0].Left.Field != 10 || s.Where[0].Op != ">" || s.Where[0].Right.Param != "x" {
		t.Fatalf("where: %+v", s.Where)
	}
	if s.Limit != -1 {
		t.Fatal("limit should default to -1")
	}
}

func TestParseStarAndLimit(t *testing.T) {
	s := MustParse("SELECT * FROM Ta LIMIT 1024").(*SelectStmt)
	if !s.Items[0].Star || s.Limit != 1024 {
		t.Fatalf("%+v", s)
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("SELECT SUM(f9) FROM Ta WHERE f10 > x").(*SelectStmt)
	if s.Items[0].Agg != "SUM" || s.Items[0].Cols[0].Field != 9 {
		t.Fatalf("%+v", s.Items)
	}
	s = MustParse("SELECT AVG(f1), AVG(f7) FROM Ta WHERE f0 < x").(*SelectStmt)
	if len(s.Items) != 2 || s.Items[1].Agg != "AVG" || s.Items[1].Cols[0].Field != 7 {
		t.Fatalf("%+v", s.Items)
	}
}

func TestParseArithmetic(t *testing.T) {
	s := MustParse("SELECT f1 + f2 + f5 FROM Ta WHERE f0 < x").(*SelectStmt)
	if len(s.Items) != 1 || len(s.Items[0].Cols) != 3 {
		t.Fatalf("%+v", s.Items)
	}
	if s.Items[0].Cols[2].Field != 5 {
		t.Fatalf("%+v", s.Items[0])
	}
}

func TestParseJoin(t *testing.T) {
	s := MustParse("SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9").(*SelectStmt)
	if len(s.Tables) != 2 {
		t.Fatalf("tables: %v", s.Tables)
	}
	if s.Items[0].Cols[0].Table != "Ta" || s.Items[1].Cols[0].Table != "Tb" {
		t.Fatalf("items: %+v", s.Items)
	}
	if s.Where[1].Right.Col == nil || s.Where[1].Right.Col.Table != "Tb" {
		t.Fatalf("join predicate: %+v", s.Where[1])
	}
}

func TestParseUpdate(t *testing.T) {
	u := MustParse("UPDATE Tb SET f3 = x, f4 = y WHERE f10 = z").(*UpdateStmt)
	if u.Table != "Tb" || len(u.Sets) != 2 || u.Sets[1].Field != 4 {
		t.Fatalf("%+v", u)
	}
	if u.Sets[0].Value.Param != "x" || u.Where[0].Op != "=" {
		t.Fatalf("%+v", u)
	}
}

func TestParseInsert(t *testing.T) {
	i := MustParse("INSERT INTO Tb VALUES (f0, f1, f2)").(*InsertStmt)
	if i.Table != "Tb" || len(i.Values) != 3 {
		t.Fatalf("%+v", i)
	}
	i = MustParse("INSERT INTO Tb VALUES (1, 2, 300)").(*InsertStmt)
	if !i.Values[2].IsLit || i.Values[2].Lit != 300 {
		t.Fatalf("%+v", i)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE FROM Ta",
		"SELECT FROM Ta",
		"SELECT f1 FROM",
		"SELECT f1 FROM Ta WHERE",
		"SELECT f1 FROM Ta WHERE f2 >",
		"SELECT f1 FROM Ta WHERE q2 > 3",
		"SELECT f1 FROM Ta LIMIT x",
		"UPDATE Ta SET = 3",
		"INSERT INTO Ta VALUES 1, 2",
		"SELECT f1 FROM Ta extra garbage",
		"SELECT SUM(f1 FROM Ta",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestCompileScan(t *testing.T) {
	p, err := Compile(MustParse("SELECT f3, f4 FROM Ta WHERE f10 > x AND f10 < y"), Params{"x": 100, "y": 200})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanScan || p.Table != "Ta" {
		t.Fatalf("%+v", p)
	}
	if !reflect.DeepEqual(p.PredFields, []int{10}) {
		t.Fatalf("pred fields deduped wrong: %v", p.PredFields)
	}
	if !reflect.DeepEqual(p.ProjFields, []int{3, 4}) {
		t.Fatalf("proj fields: %v", p.ProjFields)
	}
	if !p.Match(func(f int) uint64 { return 150 }) {
		t.Fatal("150 should match (100,200)")
	}
	if p.Match(func(f int) uint64 { return 250 }) {
		t.Fatal("250 should fail < 200")
	}
}

func TestCompileUnboundParam(t *testing.T) {
	if _, err := Compile(MustParse("SELECT f1 FROM Ta WHERE f2 > x"), nil); err == nil {
		t.Fatal("unbound parameter accepted")
	}
}

func TestCompileAggregate(t *testing.T) {
	p, err := Compile(MustParse("SELECT AVG(f1) FROM Tb WHERE f10 > x"), Params{"x": 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanAggregate || p.Aggs[0].Kind != "AVG" || p.Aggs[0].Field != 1 {
		t.Fatalf("%+v", p)
	}
}

func TestCompileArithmeticGroups(t *testing.T) {
	p, err := Compile(MustParse("SELECT f1 + f2 + f3 FROM Ta WHERE f0 < x"), Params{"x": 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ArithGroups) != 1 || !reflect.DeepEqual(p.ArithGroups[0], []int{1, 2, 3}) {
		t.Fatalf("%+v", p.ArithGroups)
	}
}

func TestCompileJoinNormalizesDirection(t *testing.T) {
	// Predicate written inner-first must flip to outer-first with the
	// comparison reversed.
	p, err := Compile(MustParse("SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Tb.f1 < Ta.f1 AND Ta.f9 = Tb.f9"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanJoin || p.InnerTable != "Tb" {
		t.Fatalf("%+v", p)
	}
	if p.JoinPreds[0].Op != ">" || p.JoinPreds[0].OuterField != 1 {
		t.Fatalf("direction not normalized: %+v", p.JoinPreds[0])
	}
}

func TestCompileUpdateAndInsert(t *testing.T) {
	p, err := Compile(MustParse("UPDATE Tb SET f9 = x WHERE f10 = y"), Params{"x": 11, "y": 22})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanUpdate || p.Sets[0].Value != 11 || p.Preds[0].Value != 22 {
		t.Fatalf("%+v", p)
	}
	ins, err := Compile(MustParse("INSERT INTO Tb VALUES (5, 6)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Kind != PlanInsert || len(ins.InsertValues) != 2 || ins.InsertValues[1] != 6 {
		t.Fatalf("%+v", ins)
	}
}

func TestPrefersColumnStore(t *testing.T) {
	narrow, _ := Compile(MustParse("SELECT f3 FROM Ta WHERE f10 > x"), Params{"x": 0})
	if !narrow.PrefersColumnStore(128) {
		t.Fatal("narrow projection should prefer column store")
	}
	star, _ := Compile(MustParse("SELECT * FROM Ta WHERE f10 > x"), Params{"x": 0})
	if star.PrefersColumnStore(128) {
		t.Fatal("SELECT * should prefer row store")
	}
	wideOnNarrowTable, _ := Compile(MustParse("SELECT f1, f2, f3, f4, f5, f6, f7, f8 FROM Tb WHERE f10 > x"), Params{"x": 0})
	if wideOnNarrowTable.PrefersColumnStore(16) {
		t.Fatal("9 of 16 fields should prefer row store")
	}
}

func TestPlanKindString(t *testing.T) {
	for k, want := range map[PlanKind]string{
		PlanScan: "scan", PlanAggregate: "aggregate", PlanUpdate: "update",
		PlanInsert: "insert", PlanJoin: "join", PlanKind(42): "PlanKind(42)",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	cases := []struct {
		pred CompiledPred
		v    uint64
		want bool
	}{
		{CompiledPred{Op: ">", Value: 10}, 11, true},
		{CompiledPred{Op: ">", Value: 10}, 10, false},
		{CompiledPred{Op: "<", Value: 10}, 9, true},
		{CompiledPred{Op: "=", Value: 10}, 10, true},
		{CompiledPred{Op: "=", Value: 10}, 11, false},
	}
	for _, c := range cases {
		if c.pred.Eval(c.v) != c.want {
			t.Errorf("%+v eval(%d) != %v", c.pred, c.v, c.want)
		}
	}
}

func TestColRefString(t *testing.T) {
	if (ColRef{Field: 3}).String() != "f3" {
		t.Fatal("unqualified")
	}
	if (ColRef{Table: "Ta", Field: 3}).String() != "Ta.f3" {
		t.Fatal("qualified")
	}
}

func TestParseNewAggregates(t *testing.T) {
	s := MustParse("SELECT COUNT(f1), MIN(f2), MAX(f3) FROM Ta WHERE f0 < x").(*SelectStmt)
	if len(s.Items) != 3 || s.Items[0].Agg != "COUNT" || s.Items[1].Agg != "MIN" || s.Items[2].Agg != "MAX" {
		t.Fatalf("%+v", s.Items)
	}
	star := MustParse("SELECT COUNT(*) FROM Tb").(*SelectStmt)
	if star.Items[0].Agg != "COUNT" || len(star.Items[0].Cols) != 0 {
		t.Fatalf("%+v", star.Items[0])
	}
}

func TestParseGroupBy(t *testing.T) {
	s := MustParse("SELECT COUNT(*), AVG(f1) FROM Tb WHERE f9 > x GROUP BY f10").(*SelectStmt)
	if s.GroupBy == nil || s.GroupBy.Field != 10 {
		t.Fatalf("group by: %+v", s.GroupBy)
	}
	if _, err := Parse("SELECT COUNT(*) FROM Tb GROUP f10"); err == nil {
		t.Fatal("GROUP without BY accepted")
	}
}

func TestCompileGroupBy(t *testing.T) {
	p, err := Compile(MustParse("SELECT COUNT(*), MAX(f3) FROM Tb GROUP BY f10"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupBy != 10 {
		t.Fatalf("GroupBy = %d", p.GroupBy)
	}
	if p.Aggs[0].Field != -1 || p.Aggs[0].Kind != "COUNT" {
		t.Fatalf("count(*) spec: %+v", p.Aggs[0])
	}
	// GROUP BY reads the grouping field for every match.
	found := false
	for _, f := range p.ProjFields {
		if f == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("grouping field not in projection set")
	}
	// No grouping on joins.
	if _, err := Compile(MustParse("SELECT Ta.f1, Tb.f2 FROM Ta, Tb WHERE Ta.f3 = Tb.f3 GROUP BY f1"), nil); err == nil {
		t.Fatal("GROUP BY on join accepted")
	}
	// Ungrouped plans mark GroupBy = -1.
	scan, _ := Compile(MustParse("SELECT f1 FROM Ta"), nil)
	if scan.GroupBy != -1 {
		t.Fatal("scan GroupBy should be -1")
	}
}

func TestCompileJoinErrors(t *testing.T) {
	bad := []string{
		// Star/aggregate/arithmetic projections in joins.
		"SELECT * FROM Ta, Tb WHERE Ta.f1 = Tb.f1",
		"SELECT SUM(Ta.f1) FROM Ta, Tb WHERE Ta.f1 = Tb.f1",
		// Projection table not in FROM.
		"SELECT Tc.f1, Tb.f2 FROM Ta, Tb WHERE Ta.f1 = Tb.f1",
		// Filter predicate on a table not in FROM.
		"SELECT Ta.f1, Tb.f2 FROM Ta, Tb WHERE Ta.f1 = Tb.f1 AND Tc.f3 > 5",
		// Join predicate across wrong tables.
		"SELECT Ta.f1, Tb.f2 FROM Ta, Tb WHERE Tc.f1 = Td.f1",
		// GROUP BY on a join.
		"SELECT Ta.f1, Tb.f2 FROM Ta, Tb WHERE Ta.f1 = Tb.f1 GROUP BY f1",
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			continue // some are parse-time rejections, equally fine
		}
		if _, err := Compile(stmt, Params{"x": 1}); err == nil {
			t.Errorf("compiled %q", q)
		}
	}
	// Unbound parameter inside a join filter.
	stmt := MustParse("SELECT Ta.f1, Tb.f2 FROM Ta, Tb WHERE Ta.f1 = Tb.f1 AND Ta.f3 > q")
	if _, err := Compile(stmt, nil); err == nil {
		t.Error("unbound join filter parameter accepted")
	}
	// Three tables.
	if _, err := Compile(MustParse("SELECT f1 FROM Ta, Tb, Tc"), nil); err == nil {
		t.Error("three-table FROM accepted")
	}
}

func TestCompileInsertParamsAndErrors(t *testing.T) {
	p, err := Compile(MustParse("INSERT INTO Tb VALUES (x, 2)"), Params{"x": 77})
	if err != nil {
		t.Fatal(err)
	}
	if p.InsertValues[0] != 77 {
		t.Fatalf("param insert value: %v", p.InsertValues)
	}
	if _, err := Compile(MustParse("INSERT INTO Tb VALUES (y)"), nil); err == nil {
		t.Error("unbound insert parameter accepted")
	}
	// Column placeholders (the paper's f0, f1, ... style) are deterministic.
	a, _ := Compile(MustParse("INSERT INTO Tb VALUES (f0, f1)"), nil)
	b, _ := Compile(MustParse("INSERT INTO Tb VALUES (f0, f1)"), nil)
	for i := range a.InsertValues {
		if a.InsertValues[i] != b.InsertValues[i] {
			t.Fatal("placeholder values nondeterministic")
		}
	}
}

func TestStmtInterfaceCoverage(t *testing.T) {
	// The marker methods exist purely to seal the interface.
	var stmts = []Stmt{&SelectStmt{}, &UpdateStmt{}, &InsertStmt{}}
	for _, s := range stmts {
		s.stmt()
	}
}
