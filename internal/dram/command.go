package dram

import "fmt"

// CmdKind enumerates DRAM commands the controller can issue.
type CmdKind int

// Command kinds.
const (
	CmdACT CmdKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	// CmdMRS models a mode-register write (the paper configures SAM's
	// I/O modes through the existing MRS path, Section 5.3).
	CmdMRS
)

// String names the command kind.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	case CmdMRS:
		return "MRS"
	default:
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
}

// IOMode is the chip I/O configuration selected by the mode register
// (Fig. 7). Regular modes serialize one I/O buffer; stride modes fetch all
// four buffers and serialize one lane of each.
type IOMode int

// I/O modes.
const (
	ModeX4 IOMode = iota
	ModeX8
	ModeX16
	ModeStride0 // Sx4_0: lane 0 of each buffer
	ModeStride1
	ModeStride2
	ModeStride3
)

// IsStride reports whether the mode is one of the Sx4_n stride modes.
func (m IOMode) IsStride() bool { return m >= ModeStride0 }

// String names the I/O mode.
func (m IOMode) String() string {
	switch m {
	case ModeX4:
		return "x4"
	case ModeX8:
		return "x8"
	case ModeX16:
		return "x16"
	case ModeStride0, ModeStride1, ModeStride2, ModeStride3:
		return fmt.Sprintf("Sx4_%d", int(m-ModeStride0))
	default:
		return fmt.Sprintf("IOMode(%d)", int(m))
	}
}

// Command is one command on the C/A bus.
type Command struct {
	Kind CmdKind
	Rank int
	// Group and Bank are within the rank; Row within the bank; Col is the
	// cacheline-sized column within the row.
	Group, Bank int
	Row         int
	Col         int
	// Mode applies to RD/WR (the I/O mode the access requires) and MRS
	// (the mode being programmed).
	Mode IOMode
	// GangRanks marks a fine-granularity strided burst that drives both
	// ranks together to fill the channel (Section 4.4, Fig. 9e).
	GangRanks bool
	// AutoPrecharge closes the row after the column access completes.
	AutoPrecharge bool
}

// BankID flattens (rank, group, bank) into a per-channel bank index.
func (c Command) BankID(g Geometry) int {
	return (c.Rank*g.BankGroups+c.Group)*g.BanksPerGroup + c.Bank
}

// String renders the command for traces and error messages.
func (c Command) String() string {
	switch c.Kind {
	case CmdACT:
		return fmt.Sprintf("ACT r%d g%d b%d row%d", c.Rank, c.Group, c.Bank, c.Row)
	case CmdPRE:
		return fmt.Sprintf("PRE r%d g%d b%d", c.Rank, c.Group, c.Bank)
	case CmdRD, CmdWR:
		return fmt.Sprintf("%s r%d g%d b%d row%d col%d %s", c.Kind, c.Rank, c.Group, c.Bank, c.Row, c.Col, c.Mode)
	case CmdREF:
		return fmt.Sprintf("REF r%d", c.Rank)
	case CmdMRS:
		return fmt.Sprintf("MRS r%d %s", c.Rank, c.Mode)
	default:
		return c.Kind.String()
	}
}
