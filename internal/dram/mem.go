package dram

// SparseMem is the functional backing store of the simulated physical
// address space: a page-granular sparse byte array. The timing model and
// the functional model are deliberately separate — queries that only need
// timing never touch SparseMem, while correctness tests and the examples
// read and write real bytes.
type SparseMem struct {
	pageBits uint
	pages    map[uint64][]byte
}

// NewSparseMem builds a store with 4 KiB pages.
func NewSparseMem() *SparseMem {
	return &SparseMem{pageBits: 12, pages: make(map[uint64][]byte)}
}

func (m *SparseMem) page(addr uint64, create bool) ([]byte, uint64) {
	pn := addr >> m.pageBits
	p, ok := m.pages[pn]
	if !ok && create {
		p = make([]byte, 1<<m.pageBits)
		m.pages[pn] = p
	}
	return p, addr & (1<<m.pageBits - 1)
}

// Read copies n bytes at addr into a fresh slice; unbacked bytes read as 0.
func (m *SparseMem) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	m.ReadInto(addr, out)
	return out
}

// ReadInto fills dst from addr; unbacked bytes read as 0.
func (m *SparseMem) ReadInto(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p, off := m.page(addr, false)
		span := int(uint64(1)<<m.pageBits - off)
		if span > len(dst) {
			span = len(dst)
		}
		if p == nil {
			for i := 0; i < span; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:span], p[off:])
		}
		dst = dst[span:]
		addr += uint64(span)
	}
}

// Write stores src at addr, allocating pages as needed.
func (m *SparseMem) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		p, off := m.page(addr, true)
		span := int(uint64(1)<<m.pageBits - off)
		if span > len(src) {
			span = len(src)
		}
		copy(p[off:], src[:span])
		src = src[span:]
		addr += uint64(span)
	}
}

// ReadU64 reads a little-endian uint64 at addr.
func (m *SparseMem) ReadU64(addr uint64) uint64 {
	var buf [8]byte
	m.ReadInto(addr, buf[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// WriteU64 writes a little-endian uint64 at addr.
func (m *SparseMem) WriteU64(addr uint64, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	m.Write(addr, buf[:])
}

// PagesAllocated returns how many 4 KiB pages are backed.
func (m *SparseMem) PagesAllocated() int { return len(m.pages) }
