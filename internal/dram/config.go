// Package dram models a DDR4-class memory device at command/cycle level:
// channel/rank/bank-group/bank geometry, the JEDEC timing state machine,
// mode registers (including SAM's stride I/O modes), the common-die I/O
// buffer datapath (functional), and a sparse functional data store.
//
// All times are in memory bus clock cycles (DDR4-2400: 1200 MHz, so one
// cycle is 0.833 ns and a BL8 burst occupies tBL = 4 cycles of data bus).
package dram

import "fmt"

// Geometry describes the channel organization (Table 2 of the paper).
type Geometry struct {
	Channels         int // independent channels (the paper simulates 1)
	Ranks            int // ranks per channel
	BankGroups       int // bank groups per rank (DDR4: 4)
	BanksPerGroup    int // banks per bank group (DDR4: 4)
	SubarraysPerBank int
	RowsPerSubarray  int
	RowBytes         int // bytes a rank-level row holds (all chips combined)
	LineBytes        int // cacheline transfer size
	DataChips        int // data chips per rank (x4 server DIMM: 16)
	ECCChips         int // check chips per rank (SSC: 2)
}

// Banks returns banks per rank.
func (g Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// TotalBanks returns banks per channel.
func (g Geometry) TotalBanks() int { return g.Banks() * g.Ranks }

// RowsPerBank returns rows per bank.
func (g Geometry) RowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }

// LinesPerRow returns cachelines per row.
func (g Geometry) LinesPerRow() int { return g.RowBytes / g.LineBytes }

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0 || g.Ranks <= 0 || g.BankGroups <= 0 || g.BanksPerGroup <= 0:
		return fmt.Errorf("dram: non-positive channel geometry %+v", g)
	case g.RowBytes <= 0 || g.LineBytes <= 0 || g.RowBytes%g.LineBytes != 0:
		return fmt.Errorf("dram: row %dB not a multiple of line %dB", g.RowBytes, g.LineBytes)
	case g.SubarraysPerBank <= 0 || g.RowsPerSubarray <= 0:
		return fmt.Errorf("dram: non-positive subarray geometry %+v", g)
	case g.DataChips <= 0:
		return fmt.Errorf("dram: no data chips")
	}
	return nil
}

// Timing holds the JEDEC-style timing parameters in bus cycles.
type Timing struct {
	CL   int // read CAS latency
	CWL  int // write CAS latency
	TRCD int // ACT to RD/WR
	TRP  int // PRE to ACT
	TRAS int // ACT to PRE
	TWR  int // end of write data to PRE
	TRTP int // RD to PRE
	TBL  int // data burst length on the bus (BL8 = 4 cycles)
	// Bank-group aware column-to-column delays.
	TCCDS int // different bank group
	TCCDL int // same bank group
	TRRDS int // ACT to ACT, different bank group
	TRRDL int // ACT to ACT, same bank group
	TFAW  int // four-activate window per rank
	TRTR  int // rank-to-rank (and SAM I/O mode) switch
	TWTR  int // write-to-read turnaround (same rank)
	TRTW  int // read-to-write turnaround gap on the bus
	TREFI int // refresh interval per rank
	TRFC  int // refresh cycle time
	// TWRBurst is the minimum gap between write bursts to the same rank —
	// zero for DRAM, large for crossbar NVM whose write pulses occupy the
	// array far longer than the data burst.
	TWRBurst int
}

// Validate checks that mandatory parameters are positive.
func (t Timing) Validate() error {
	for _, p := range []struct {
		name string
		v    int
	}{
		{"CL", t.CL}, {"CWL", t.CWL}, {"tRCD", t.TRCD}, {"tRP", t.TRP},
		{"tRAS", t.TRAS}, {"tWR", t.TWR}, {"tBL", t.TBL},
		{"tCCD_S", t.TCCDS}, {"tCCD_L", t.TCCDL},
	} {
		if p.v <= 0 {
			return fmt.Errorf("dram: timing %s must be positive, got %d", p.name, p.v)
		}
	}
	return nil
}

// Scale returns a copy with array-latency parameters inflated by factor
// (the paper inflates tRCD, tRAS, etc. proportionally to area overhead,
// Section 6.1). Bus-side parameters (CL serialization, tBL, tRTR) and
// refresh cadence stay fixed.
func (t Timing) Scale(factor float64) Timing {
	s := t
	mul := func(v int) int {
		scaled := int(float64(v)*factor + 0.5)
		if scaled < 1 {
			scaled = 1
		}
		return scaled
	}
	s.TRCD = mul(t.TRCD)
	s.TRP = mul(t.TRP)
	s.TRAS = mul(t.TRAS)
	s.TWR = mul(t.TWR)
	s.TRTP = mul(t.TRTP)
	s.TRRDS = mul(t.TRRDS)
	s.TRRDL = mul(t.TRRDL)
	s.TFAW = mul(t.TFAW)
	return s
}

// Config couples geometry and timing for one memory device personality.
type Config struct {
	Name     string
	Geometry Geometry
	Timing   Timing
	// ClockMHz is the bus clock (DDR4-2400: 1200).
	ClockMHz float64
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("dram: clock must be positive, got %v", c.ClockMHz)
	}
	return nil
}

// CyclesToNs converts bus cycles to nanoseconds.
func (c Config) CyclesToNs(cycles uint64) float64 {
	return float64(cycles) * 1e3 / c.ClockMHz
}

// DDR4_2400 returns the paper's DRAM configuration (Table 2):
// DDR4-2400 x4, 1 channel, 2 ranks, 16 banks/rank, 256 subarrays of 512
// rows, CL-tRCD-tRP = 17-17-17, tRTR-tCCD_S-tCCD_L = 2-4-6. Parameters not
// in Table 2 use Micron 8Gb DDR4-2400 datasheet values.
func DDR4_2400() Config {
	return Config{
		Name:     "DDR4-2400",
		ClockMHz: 1200,
		Geometry: Geometry{
			Channels:         1,
			Ranks:            2,
			BankGroups:       4,
			BanksPerGroup:    4,
			SubarraysPerBank: 256,
			RowsPerSubarray:  512,
			RowBytes:         8192, // 4Kb local row buffer per x4 chip x 16 chips
			LineBytes:        64,
			DataChips:        16,
			ECCChips:         2,
		},
		Timing: Timing{
			CL: 17, CWL: 12,
			TRCD: 17, TRP: 17, TRAS: 39, TWR: 18, TRTP: 9,
			TBL:   4,
			TCCDS: 4, TCCDL: 6,
			TRRDS: 4, TRRDL: 6, TFAW: 26,
			TRTR: 2, TWTR: 9, TRTW: 8,
			TREFI: 9360, TRFC: 420,
		},
	}
}

// RRAM returns the paper's NVM configuration (Table 2): same DDR4-2400
// interface, CL-tRCD-tRP = 17-35-1 (slow activation, trivial precharge
// since reads are non-destructive), 128 subarrays of 2K rows with 2Kb
// local row buffers, and expensive writes (tWR modeled after crossbar RRAM
// write pulses).
func RRAM() Config {
	c := DDR4_2400()
	c.Name = "RRAM"
	c.Geometry.SubarraysPerBank = 128
	c.Geometry.RowsPerSubarray = 2048
	c.Geometry.RowBytes = 4096 // 2Kb local row buffer per chip x 16 chips
	c.Timing.TRCD = 35
	c.Timing.TRP = 1
	c.Timing.TRAS = 36
	c.Timing.TWR = 120
	c.Timing.TWRBurst = 40
	// Non-volatile: no refresh (deadline pushed past any simulated run).
	c.Timing.TREFI = 1 << 40
	return c
}

// DDR5_4800 is an extension beyond the paper's evaluation: the same SAM
// mechanisms on a DDR5-class device — doubled bus clock, two independent
// 32-bit sub-channels modeled as doubled bank groups, BL16 bursts (still 4
// bus cycles of 64B payload per sub-channel), and finer refresh. The
// common-die argument carries over: DDR5 x4 parts still fuse off the wider
// I/O configurations.
func DDR5_4800() Config {
	return Config{
		Name:     "DDR5-4800",
		ClockMHz: 2400,
		Geometry: Geometry{
			Channels:         1,
			Ranks:            2,
			BankGroups:       8,
			BanksPerGroup:    4,
			SubarraysPerBank: 256,
			RowsPerSubarray:  512,
			RowBytes:         8192,
			LineBytes:        64,
			DataChips:        16,
			ECCChips:         2,
		},
		Timing: Timing{
			CL: 40, CWL: 38,
			TRCD: 39, TRP: 39, TRAS: 77, TWR: 72, TRTP: 18,
			TBL:   4, // BL16 on a 32-bit sub-channel: same 64B per slot
			TCCDS: 8, TCCDL: 12,
			TRRDS: 8, TRRDL: 12, TFAW: 32,
			TRTR: 4, TWTR: 18, TRTW: 16,
			TREFI: 9360, TRFC: 660,
		},
	}
}
