package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sam/internal/ecc"
)

func filledRank(t *testing.T, rng *rand.Rand, scheme ecc.Scheme, rows, cols int) (*RankModel, [][]([]byte)) {
	t.Helper()
	codec := ecc.NewChipkill(scheme)
	r := NewRankModel(cols*codec.DataBytes(), scheme)
	stored := make([][]([]byte), rows)
	for row := 0; row < rows; row++ {
		stored[row] = make([][]byte, cols)
		for col := 0; col < cols; col++ {
			data := make([]byte, codec.DataBytes())
			rng.Read(data)
			r.WriteColumn(row, col, data)
			stored[row][col] = data
		}
	}
	return r, stored
}

func TestRankRegularReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	r, stored := filledRank(t, rng, ecc.SchemeSSC, 4, 8)
	for row := range stored {
		for col := range stored[row] {
			got, corrected, err := r.ReadColumn(row, col)
			if err != nil {
				t.Fatalf("(%d,%d): %v", row, col, err)
			}
			if corrected != 0 {
				t.Fatalf("(%d,%d): spurious correction", row, col)
			}
			if !bytes.Equal(got, stored[row][col]) {
				t.Fatalf("(%d,%d): data mismatch", row, col)
			}
		}
	}
}

func TestRankStrideReadMatchesIndependentGather(t *testing.T) {
	// Invariant 2 end to end: the Sx4_n datapath output equals a gather
	// computed without the I/O buffer model.
	rng := rand.New(rand.NewSource(103))
	r, _ := filledRank(t, rng, ecc.SchemeSSC, 2, 16)
	for row := 0; row < 2; row++ {
		for base := 0; base < 16; base += NumIOBuffers {
			for lane := 0; lane < LanesPerBuf; lane++ {
				got := r.ReadStride(row, base, lane)
				want := r.GatherExpected(row, base, lane)
				if !bytes.Equal(got, want) {
					t.Fatalf("row %d base %d lane %d: stride datapath diverges", row, base, lane)
				}
			}
		}
	}
}

func TestRankStrideGathersStoredBytes(t *testing.T) {
	// The strided payload must consist of the same-offset bytes of the
	// four gathered columns' stored payloads (for data chips; check chips
	// carry check symbols).
	rng := rand.New(rand.NewSource(107))
	codec := ecc.NewChipkill(ecc.SchemeSSC)
	r, stored := filledRank(t, rng, ecc.SchemeSSC, 1, 4)
	lane := 2
	got := r.ReadStride(0, 0, lane)
	// Chip c's stored byte at lane `lane` of column w is byte (lane) of
	// its 4-byte word; relate it back through the SSC layout: chip c holds
	// data[16*j + c] as byte j (codeword j of the burst).
	for c := 0; c < ecc.SSCDataChips; c++ {
		for w := 0; w < NumIOBuffers; w++ {
			want := stored[0][w][16*lane+c]
			if got[c*ecc.BytesPerChip+w] != want {
				t.Fatalf("chip %d col %d: %02x, want %02x", c, w, got[c*ecc.BytesPerChip+w], want)
			}
		}
	}
	_ = codec
}

func TestRankDeadChipCorrectedOnRegularRead(t *testing.T) {
	// Invariant 3: a dead chip is corrected on every column of the row.
	rng := rand.New(rand.NewSource(109))
	for _, scheme := range []ecc.Scheme{ecc.SchemeSSC, ecc.SchemeSSCDSD} {
		r, stored := filledRank(t, rng, scheme, 2, 4)
		dead := rng.Intn(r.Chips())
		r.CorruptChipRow(1, dead, 0x5A)
		for col := 0; col < 4; col++ {
			got, corrected, err := r.ReadColumnCorrected(1, col)
			if err != nil {
				t.Fatalf("%v col %d: %v", scheme, col, err)
			}
			if !corrected {
				t.Fatalf("%v col %d: corruption missed", scheme, col)
			}
			if !bytes.Equal(got, stored[1][col]) {
				t.Fatalf("%v col %d: wrong correction", scheme, col)
			}
		}
		// The untouched row still reads clean.
		if _, corrected, err := r.ReadColumn(0, 0); err != nil || corrected != 0 {
			t.Fatalf("%v: clean row disturbed (corrected=%v err=%v)", scheme, corrected, err)
		}
	}
}

func TestRankStrideLanePartition(t *testing.T) {
	// The four lanes of a stride group partition the four columns' bytes:
	// reading all four lanes reconstructs all four column words exactly.
	rng := rand.New(rand.NewSource(113))
	r, _ := filledRank(t, rng, ecc.SchemeSSC, 1, 4)
	rebuilt := make([][]byte, NumIOBuffers)
	for w := range rebuilt {
		rebuilt[w] = make([]byte, r.Chips()*ecc.BytesPerChip)
	}
	for lane := 0; lane < LanesPerBuf; lane++ {
		got := r.ReadStride(0, 0, lane)
		for c := 0; c < r.Chips(); c++ {
			for w := 0; w < NumIOBuffers; w++ {
				rebuilt[w][c*ecc.BytesPerChip+lane] = got[c*ecc.BytesPerChip+w]
			}
		}
	}
	for w := 0; w < NumIOBuffers; w++ {
		raw := r.readBurst(0, w)
		for c := 0; c < r.Chips(); c++ {
			if !bytes.Equal(rebuilt[w][c*ecc.BytesPerChip:(c+1)*ecc.BytesPerChip], raw.Chips[c][:]) {
				t.Fatalf("lane union does not rebuild column %d chip %d", w, c)
			}
		}
	}
}

func TestRankPropertyWriteReadAnyScheme(t *testing.T) {
	for _, scheme := range []ecc.Scheme{ecc.SchemeSSC, ecc.SchemeSSCVariant, ecc.SchemeSSCDSD} {
		codec := ecc.NewChipkill(scheme)
		r := NewRankModel(8*codec.DataBytes(), scheme)
		f := func(seed int64, row uint8, col uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			data := make([]byte, codec.DataBytes())
			rng.Read(data)
			ri, ci := int(row)%4, int(col)%8
			r.WriteColumn(ri, ci, data)
			got, _, err := r.ReadColumn(ri, ci)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

func TestRankGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned row size accepted")
		}
	}()
	NewRankModel(100, ecc.SchemeSSC)
}

func TestRankColumnBounds(t *testing.T) {
	r := NewRankModel(512, ecc.SchemeSSC)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-row column accepted")
		}
	}()
	r.WriteColumn(0, 99, make([]byte, 64))
}

func TestRankStrideBaseAlignment(t *testing.T) {
	r := NewRankModel(512, ecc.SchemeSSC)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned stride base accepted")
		}
	}()
	r.ReadStride(0, 1, 0)
}
