package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randWords(rng *rand.Rand) [NumIOBuffers][BufBytes]byte {
	var w [NumIOBuffers][BufBytes]byte
	for b := range w {
		for l := range w[b] {
			w[b][l] = byte(rng.Intn(256))
		}
	}
	return w
}

func TestSerializeRegularReturnsBufferZero(t *testing.T) {
	var io IOBuffer
	io.LoadRegular([BufBytes]byte{1, 2, 3, 4})
	if io.SerializeRegular() != [BufBytes]byte{1, 2, 3, 4} {
		t.Fatal("regular serialization mismatch")
	}
}

func TestSerializeStrideExtractsLane(t *testing.T) {
	// Invariant 2 (DESIGN.md): Sx4_n returns exactly lane n of each buffer,
	// i.e. the same-offset byte of four consecutive column words.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		var io IOBuffer
		words := randWords(rng)
		io.LoadWide(words)
		for lane := 0; lane < LanesPerBuf; lane++ {
			got := io.SerializeStride(lane)
			for b := 0; b < NumIOBuffers; b++ {
				if got[b] != words[b][lane] {
					t.Fatalf("lane %d buffer %d: got %02x want %02x", lane, b, got[b], words[b][lane])
				}
			}
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var io IOBuffer
		io.LoadWide(randWords(rng))
		return io.Transpose().Transpose() == io
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestYZReadEqualsTransposedXYRead(t *testing.T) {
	// The 2-D buffer symmetry of SAM-en (Fig. 8c/d): reading "buffer" i
	// through the added yz serializers equals reading buffer i of the
	// transposed cube through the normal path.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		var io IOBuffer
		io.LoadWide(randWords(rng))
		tr := io.Transpose()
		for i := 0; i < NumIOBuffers; i++ {
			if io.SerializeYZ(i) != tr.Buf[i] {
				t.Fatalf("yz read %d differs from transposed buffer", i)
			}
		}
	}
}

func TestYZAndStrideAgreeOnContent(t *testing.T) {
	// SerializeYZ(i)[l] and SerializeStride(l)[i] both name Buf[l][i]-ish
	// cells; pin the exact relationship so layout regressions are caught.
	rng := rand.New(rand.NewSource(41))
	var io IOBuffer
	io.LoadWide(randWords(rng))
	for i := 0; i < NumIOBuffers; i++ {
		yz := io.SerializeYZ(i)
		for l := 0; l < LanesPerBuf; l++ {
			if yz[l] != io.Buf[l][i] {
				t.Fatalf("yz(%d)[%d] != Buf[%d][%d]", i, l, l, i)
			}
		}
	}
}

func TestSerializeStrideFineInterleavesNibbles(t *testing.T) {
	var io IOBuffer
	var words [NumIOBuffers][BufBytes]byte
	// Distinct nibbles everywhere: buffer b lane l = (b<<4)|l replicated.
	for b := 0; b < NumIOBuffers; b++ {
		for l := 0; l < LanesPerBuf; l++ {
			words[b][l] = byte(b<<4 | l)
		}
	}
	io.LoadWide(words)
	out := io.SerializeStrideFine(0, false)
	// DQ0 low nibble = low nibble of Buf[0][0] = 0; high = low nibble of Buf[1][1] = 1.
	if out[0] != 0x10 {
		t.Fatalf("fine DQ0 = %02x, want 0x10", out[0])
	}
	// DQ1 low = low nibble of Buf[2][0] = 0, high = low nibble of Buf[3][1] = 1.
	if out[1] != 0x10 {
		t.Fatalf("fine DQ1 = %02x, want 0x10", out[1])
	}
	hi := io.SerializeStrideFine(1, true)
	// pair 1 -> lanes 2,3; high nibbles of Buf[0][2] (=0) and Buf[1][3] (=1).
	if hi[0] != 0x10 {
		t.Fatalf("fine hi DQ0 = %02x", hi[0])
	}
}

func TestSerializeBoundsPanic(t *testing.T) {
	var io IOBuffer
	for name, fn := range map[string]func(){
		"stride lane": func() { io.SerializeStride(4) },
		"yz buffer":   func() { io.SerializeYZ(-1) },
		"fine pair":   func() { io.SerializeStrideFine(2, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFuseConfigurations(t *testing.T) {
	cases := []struct {
		mode    IOMode
		buffers int
		drivers int
	}{
		{ModeX4, 1, 4},
		{ModeX8, 2, 8},
		{ModeX16, 4, 16},
		{ModeStride0, 4, 4},
		{ModeStride3, 4, 4},
	}
	for _, c := range cases {
		f := FuseFor(c.mode)
		if f.EnabledBuffers() != c.buffers {
			t.Errorf("%v: %d buffers, want %d", c.mode, f.EnabledBuffers(), c.buffers)
		}
		if f.EnabledDrivers() != c.drivers {
			t.Errorf("%v: %d drivers, want %d", c.mode, f.EnabledDrivers(), c.drivers)
		}
	}
	// Stride mode n enables drivers n, n+4, n+8, n+12 (Fig. 7 table).
	f := FuseFor(ModeStride2)
	for _, want := range []int{2, 6, 10, 14} {
		if !f.Drivers[want] {
			t.Errorf("Sx4_2 missing driver %d", want)
		}
	}
	if f.Drivers[0] || f.Drivers[3] {
		t.Error("Sx4_2 enables wrong drivers")
	}
}

func TestStrideModesCoverWholeBuffer(t *testing.T) {
	// The four stride modes together must read out every byte of the wide
	// fetch exactly once — no data is unreachable and none is duplicated.
	rng := rand.New(rand.NewSource(43))
	var io IOBuffer
	words := randWords(rng)
	io.LoadWide(words)
	seen := map[byte]int{}
	var total int
	for lane := 0; lane < LanesPerBuf; lane++ {
		out := io.SerializeStride(lane)
		for _, b := range out {
			seen[b]++
			total++
		}
	}
	if total != NumIOBuffers*LanesPerBuf {
		t.Fatalf("stride modes read %d bytes, want %d", total, NumIOBuffers*LanesPerBuf)
	}
	// Every source byte must be covered (values may repeat, so compare
	// multiset against the loaded words).
	want := map[byte]int{}
	for b := range words {
		for l := range words[b] {
			want[words[b][l]]++
		}
	}
	for v, n := range want {
		if seen[v] != n {
			t.Fatalf("byte %02x read %d times, want %d", v, seen[v], n)
		}
	}
}
