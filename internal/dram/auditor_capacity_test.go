package dram

import (
	"math/rand"
	"testing"
)

// auditDriver issues greedy protocol-clean accesses on one device,
// recording every command (same pattern as TestRandomScheduleAuditClean,
// minus refreshes) so capacity tests can drive the auditor in rounds.
type auditDriver struct {
	a    *Auditor
	d    *Device
	rng  *rand.Rand
	open map[[3]int]int
	now  Cycle
	all  []TimedCommand // full stream in issue order
}

func newAuditDriver(a *Auditor) *auditDriver {
	return &auditDriver{
		a:    a,
		d:    NewDevice(testCfg()),
		rng:  rand.New(rand.NewSource(0xCAFE)),
		open: map[[3]int]int{},
	}
}

func (dr *auditDriver) issue(cmd Command) {
	at := dr.d.EarliestIssue(cmd, dr.now)
	dr.d.Issue(cmd, at)
	dr.a.Record(cmd, at)
	dr.all = append(dr.all, TimedCommand{Cmd: cmd, At: at})
	dr.now = at
}

// drive issues n read accesses (with the PRE/ACT each needs).
func (dr *auditDriver) drive(n int) {
	for i := 0; i < n; i++ {
		k := [3]int{dr.rng.Intn(2), dr.rng.Intn(4), dr.rng.Intn(4)}
		row := dr.rng.Intn(64)
		if cur, ok := dr.open[k]; ok && cur != row {
			dr.issue(Command{Kind: CmdPRE, Rank: k[0], Group: k[1], Bank: k[2]})
			delete(dr.open, k)
		}
		if _, ok := dr.open[k]; !ok {
			dr.issue(Command{Kind: CmdACT, Rank: k[0], Group: k[1], Bank: k[2], Row: row})
			dr.open[k] = row
		}
		dr.issue(Command{Kind: CmdRD, Rank: k[0], Group: k[1], Bank: k[2], Row: dr.open[k], Col: dr.rng.Intn(32), Mode: ModeX4})
	}
}

// TestAuditorUnboundedDefault pins the default: without SetCapacity the
// auditor retains everything, which the differential tests depend on.
func TestAuditorUnboundedDefault(t *testing.T) {
	a := NewAuditor(testCfg())
	dr := newAuditDriver(a)
	dr.drive(500)
	if got := len(a.History()); got != len(dr.all) {
		t.Fatalf("retained %d of %d commands", got, len(dr.all))
	}
	if a.Dropped() != 0 {
		t.Fatalf("dropped %d with no capacity set", a.Dropped())
	}
	if !a.Ok() {
		t.Fatalf("violations: %v", a.Violations)
	}
}

// TestAuditorCapacityBoundsHistory checks the ring bound: the history
// never exceeds the capacity, the drop counter accounts for everything
// recorded, and the retained window is exactly the newest suffix of the
// stream.
func TestAuditorCapacityBoundsHistory(t *testing.T) {
	a := NewAuditor(testCfg())
	const capacity = 64
	a.SetCapacity(capacity)
	dr := newAuditDriver(a)
	dr.drive(500)

	hist := a.History()
	if len(hist) > capacity {
		t.Fatalf("retained %d commands, capacity %d", len(hist), capacity)
	}
	if a.Dropped() == 0 {
		t.Fatal("no drops after exceeding capacity")
	}
	if got, want := uint64(len(hist))+a.Dropped(), uint64(len(dr.all)); got != want {
		t.Fatalf("retained %d + dropped %d != recorded %d", len(hist), a.Dropped(), want)
	}
	tail := dr.all[len(dr.all)-len(hist):]
	for i, tc := range hist {
		if tc != tail[i] {
			t.Fatalf("retained[%d] = %v, want newest suffix %v", i, tc, tail[i])
		}
	}
	// Validation over the retained window alone must stay clean: the
	// stream was protocol-correct, and dropping a prefix cannot introduce
	// false violations.
	if !a.Ok() {
		t.Fatalf("violations on retained window: %v", a.Violations)
	}
}

// TestAuditorCapacityInterleavedValidate drops across repeated Validate
// calls: the checked watermark must track the shifted history so earlier
// work is neither lost nor double-counted.
func TestAuditorCapacityInterleavedValidate(t *testing.T) {
	a := NewAuditor(testCfg())
	a.SetCapacity(32)
	dr := newAuditDriver(a)
	for round := 0; round < 5; round++ {
		dr.drive(60)
		if !a.Ok() {
			t.Fatalf("round %d: violations: %v", round, a.Violations)
		}
	}
	if a.Dropped() == 0 {
		t.Fatal("expected drops across rounds")
	}
}

// TestAuditorSetCapacityNegative treats n <= 0 as unbounded.
func TestAuditorSetCapacityNegative(t *testing.T) {
	a := NewAuditor(testCfg())
	a.SetCapacity(-5)
	newAuditDriver(a).drive(200)
	if a.Dropped() != 0 {
		t.Fatalf("negative capacity dropped %d commands", a.Dropped())
	}
}
