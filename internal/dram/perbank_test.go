package dram

import "testing"

// issueAt sequences a command legally and returns the device's result.
func issueAt(d *Device, cmd Command, after Cycle) (IssueResult, Cycle) {
	at := d.EarliestIssue(cmd, after)
	return d.Issue(cmd, at), at
}

func TestPerBankAccounting(t *testing.T) {
	d := NewDevice(testCfg())
	g := testCfg().Geometry
	if want := g.Ranks * g.Banks(); len(d.Stats.PerBank) != want {
		t.Fatalf("PerBank sized %d, want %d", len(d.Stats.PerBank), want)
	}

	var now Cycle
	// Bank (0,0,0): one ACT, then three column reads on the open row — the
	// first is the demand miss the ACT served, the next two are row hits.
	_, now = issueAt(d, Command{Kind: CmdACT, Row: 3}, now)
	for _, col := range []int{0, 1, 1} {
		_, now = issueAt(d, Command{Kind: CmdRD, Row: 3, Col: col, Mode: ModeX4}, now)
	}
	b0 := d.Stats.PerBank[d.BankIndex(0, 0, 0)]
	if b0.Acts != 1 || b0.Reads != 3 || b0.RowMisses != 1 || b0.RowHits != 2 {
		t.Fatalf("bank (0,0,0): %+v", b0)
	}

	// Bank (0,1,0): ACT + auto-precharging write — Pres must count the
	// implicit precharge.
	_, now = issueAt(d, Command{Kind: CmdACT, Group: 1, Row: 7}, now)
	_, now = issueAt(d, Command{Kind: CmdWR, Group: 1, Row: 7, Mode: ModeX4, AutoPrecharge: true}, now)
	b1 := d.Stats.PerBank[d.BankIndex(0, 1, 0)]
	if b1.Acts != 1 || b1.Writes != 1 || b1.RowMisses != 1 || b1.Pres != 1 {
		t.Fatalf("bank (0,1,0): %+v", b1)
	}

	// Explicit precharge on the first bank.
	_, now = issueAt(d, Command{Kind: CmdPRE}, now)
	if got := d.Stats.PerBank[d.BankIndex(0, 0, 0)].Pres; got != 1 {
		t.Fatalf("bank (0,0,0) Pres = %d after explicit PRE", got)
	}

	// Per-bank activates must sum to the device-wide count.
	var acts uint64
	for _, b := range d.Stats.PerBank {
		acts += b.Acts
	}
	if acts != d.Stats.Acts {
		t.Fatalf("per-bank Acts sum %d != device Acts %d", acts, d.Stats.Acts)
	}
	if pb := d.Stats.PerBankActs(); len(pb) != len(d.Stats.PerBank) || pb[d.BankIndex(0, 1, 0)] != 1 {
		t.Fatalf("PerBankActs: %v", pb)
	}
}

func TestPerBankGangedActivate(t *testing.T) {
	// A ganged ACT opens the same (group,bank) row in every rank: each
	// rank's bank entry must count its own activation.
	d := NewDevice(testCfg())
	g := testCfg().Geometry
	if g.Ranks < 2 {
		t.Skip("config has a single rank")
	}
	issueAt(d, Command{Kind: CmdACT, Row: 5, GangRanks: true}, 0)
	for r := 0; r < g.Ranks; r++ {
		if got := d.Stats.PerBank[d.BankIndex(r, 0, 0)].Acts; got != 1 {
			t.Fatalf("rank %d bank (0,0) Acts = %d after ganged ACT", r, got)
		}
	}
	var acts uint64
	for _, b := range d.Stats.PerBank {
		acts += b.Acts
	}
	if acts != d.Stats.Acts {
		t.Fatalf("per-bank Acts sum %d != device Acts %d", acts, d.Stats.Acts)
	}
}
