package dram

import (
	"fmt"
	"math"
)

// Cycle is a point in time in bus clock cycles.
type Cycle = int64

// never is a sentinel meaning "this event has not happened"; constraints
// derived from it land far in the past.
const never Cycle = math.MinInt64 / 4

// BankStats is one bank's command accounting. Row hit/miss here is the
// device-level view: a column access is a RowHit when it reuses a row a
// previous column access already touched since its ACT, and a RowMiss when
// it is the first access the activation was opened for — so RowMisses
// tracks demanded activations and RowHits tracks row-buffer reuse,
// independent of the controller's request-level hit classification.
type BankStats struct {
	Acts      uint64
	Pres      uint64
	Reads     uint64 // column read bursts (normal and stride)
	Writes    uint64 // column write bursts (normal and stride)
	RowHits   uint64
	RowMisses uint64
}

// DeviceStats counts the command activity the power model consumes.
type DeviceStats struct {
	Acts, Pres, Refs     uint64
	Reads, Writes        uint64
	StrideReads          uint64
	StrideWrites         uint64
	GangedBursts         uint64
	ModeSwitches         uint64
	BusBusyCycles        uint64
	ColumnWordsFetched   uint64 // internal array words moved to I/O buffers
	ColumnWordsRequested uint64 // words actually sent on the channel
	// PerBank is per-bank accounting, indexed rank*BanksPerRank +
	// group*BanksPerGroup + bank (see Device.BankIndex).
	PerBank []BankStats
}

// Clone deep-copies the stats; plain struct assignment would alias the
// PerBank slice, so baseline snapshots must use Clone.
func (s DeviceStats) Clone() DeviceStats {
	s.PerBank = append([]BankStats(nil), s.PerBank...)
	return s
}

// CloneInto is Clone into a caller-owned destination, reusing dst's PerBank
// backing when its capacity allows — repeated runs on a warm system snapshot
// their baselines without reallocating.
func (s DeviceStats) CloneInto(dst *DeviceStats) {
	per := dst.PerBank
	*dst = s
	dst.PerBank = append(per[:0], s.PerBank...)
}

// Sub returns the per-run delta cur-minus-base.
func (s DeviceStats) Sub(base DeviceStats) DeviceStats {
	d := DeviceStats{
		Acts:                 s.Acts - base.Acts,
		Pres:                 s.Pres - base.Pres,
		Refs:                 s.Refs - base.Refs,
		Reads:                s.Reads - base.Reads,
		Writes:               s.Writes - base.Writes,
		StrideReads:          s.StrideReads - base.StrideReads,
		StrideWrites:         s.StrideWrites - base.StrideWrites,
		GangedBursts:         s.GangedBursts - base.GangedBursts,
		ModeSwitches:         s.ModeSwitches - base.ModeSwitches,
		BusBusyCycles:        s.BusBusyCycles - base.BusBusyCycles,
		ColumnWordsFetched:   s.ColumnWordsFetched - base.ColumnWordsFetched,
		ColumnWordsRequested: s.ColumnWordsRequested - base.ColumnWordsRequested,
		PerBank:              append([]BankStats(nil), s.PerBank...),
	}
	for i := range d.PerBank {
		if i >= len(base.PerBank) {
			break
		}
		b := base.PerBank[i]
		d.PerBank[i].Acts -= b.Acts
		d.PerBank[i].Pres -= b.Pres
		d.PerBank[i].Reads -= b.Reads
		d.PerBank[i].Writes -= b.Writes
		d.PerBank[i].RowHits -= b.RowHits
		d.PerBank[i].RowMisses -= b.RowMisses
	}
	return d
}

// Add accumulates o into s (cross-channel aggregation); per-bank entries
// add index-wise, growing s.PerBank as needed.
func (s *DeviceStats) Add(o DeviceStats) {
	s.Acts += o.Acts
	s.Pres += o.Pres
	s.Refs += o.Refs
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.StrideReads += o.StrideReads
	s.StrideWrites += o.StrideWrites
	s.GangedBursts += o.GangedBursts
	s.ModeSwitches += o.ModeSwitches
	s.BusBusyCycles += o.BusBusyCycles
	s.ColumnWordsFetched += o.ColumnWordsFetched
	s.ColumnWordsRequested += o.ColumnWordsRequested
	for len(s.PerBank) < len(o.PerBank) {
		s.PerBank = append(s.PerBank, BankStats{})
	}
	for i, b := range o.PerBank {
		s.PerBank[i].Acts += b.Acts
		s.PerBank[i].Pres += b.Pres
		s.PerBank[i].Reads += b.Reads
		s.PerBank[i].Writes += b.Writes
		s.PerBank[i].RowHits += b.RowHits
		s.PerBank[i].RowMisses += b.RowMisses
	}
}

// AddSub accumulates the delta cur-minus-base into s without allocating:
// Sub followed by Add, but the per-bank entries are applied in place,
// reusing s.PerBank's backing (grown only on first use). The run engine's
// windowed sampler uses this to build per-sample cross-channel deltas on a
// scratch DeviceStats instead of cloning every channel's bank slice per
// window.
func (s *DeviceStats) AddSub(cur, base DeviceStats) {
	s.Acts += cur.Acts - base.Acts
	s.Pres += cur.Pres - base.Pres
	s.Refs += cur.Refs - base.Refs
	s.Reads += cur.Reads - base.Reads
	s.Writes += cur.Writes - base.Writes
	s.StrideReads += cur.StrideReads - base.StrideReads
	s.StrideWrites += cur.StrideWrites - base.StrideWrites
	s.GangedBursts += cur.GangedBursts - base.GangedBursts
	s.ModeSwitches += cur.ModeSwitches - base.ModeSwitches
	s.BusBusyCycles += cur.BusBusyCycles - base.BusBusyCycles
	s.ColumnWordsFetched += cur.ColumnWordsFetched - base.ColumnWordsFetched
	s.ColumnWordsRequested += cur.ColumnWordsRequested - base.ColumnWordsRequested
	for len(s.PerBank) < len(cur.PerBank) {
		s.PerBank = append(s.PerBank, BankStats{})
	}
	for i, b := range cur.PerBank {
		if i < len(base.PerBank) {
			o := base.PerBank[i]
			b.Acts -= o.Acts
			b.Pres -= o.Pres
			b.Reads -= o.Reads
			b.Writes -= o.Writes
			b.RowHits -= o.RowHits
			b.RowMisses -= o.RowMisses
		}
		s.PerBank[i].Acts += b.Acts
		s.PerBank[i].Pres += b.Pres
		s.PerBank[i].Reads += b.Reads
		s.PerBank[i].Writes += b.Writes
		s.PerBank[i].RowHits += b.RowHits
		s.PerBank[i].RowMisses += b.RowMisses
	}
}

// PerBankActs extracts the per-bank activate counts (for the power model's
// per-bank activation energy).
func (s DeviceStats) PerBankActs() []uint64 {
	acts := make([]uint64, len(s.PerBank))
	for i, b := range s.PerBank {
		acts[i] = b.Acts
	}
	return acts
}

type bankState struct {
	open         bool
	row          int
	actAt        Cycle  // last ACT issue
	preDoneAt    Cycle  // precharge completes (ACT legal from here)
	lastRdAt     Cycle  // last RD issue to this bank
	wrDataEnd    Cycle  // last write burst's final data cycle
	colsSinceAct uint64 // column accesses served by the current activation
}

type groupState struct {
	lastColAt Cycle // last RD/WR issue in this bank group (tCCD_L)
	lastActAt Cycle // last ACT in this bank group (tRRD_L)
}

type rankState struct {
	banks  []bankState
	groups []groupState
	// lastColAt/lastActAt cover any bank group in the rank (tCCD_S/tRRD_S).
	lastColAt Cycle
	lastActAt Cycle
	// faw holds recent ACT times (order-robust: entries may be recorded
	// out of time order when the controller prepares banks ahead).
	faw       [8]Cycle
	mode      IOMode
	tfaw      Cycle
	refDueAt  Cycle
	refUntil  Cycle
	wrDataEnd Cycle // last write data end in rank (tWTR)
	rdDataEnd Cycle // last read data end in rank (tRTW bookkeeping)
	lastWrAt  Cycle // last WR issue in rank (NVM write pulse spacing)
}

// fawConstraint returns the earliest time a new ACT satisfies the
// four-activate window: at least tFAW after the fourth-most-recent ACT.
// The scan is over a small fixed ring, tolerating out-of-time-order entries.
func (rk *rankState) fawConstraint() Cycle {
	var sorted [len(rk.faw)]Cycle
	copy(sorted[:], rk.faw[:])
	// Insertion sort descending (n = 8).
	for i := 1; i < len(sorted); i++ {
		v := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < v {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = v
	}
	return sorted[3] + rk.tfaw
}

// recordAct inserts an ACT time, evicting the oldest entry.
func (rk *rankState) recordAct(at Cycle) {
	minIdx := 0
	for i, v := range rk.faw {
		if v < rk.faw[minIdx] {
			minIdx = i
		}
	}
	if at > rk.faw[minIdx] {
		rk.faw[minIdx] = at
	}
}

// CmdTracer observes every command the device applies, together with its
// issue time and result. It is the device-side event-tracing hook
// (implemented by internal/etrace); the field is consulted only when
// non-nil, so the disabled path costs one predictable branch.
type CmdTracer interface {
	CommandIssued(cmd Command, at Cycle, res IssueResult)
}

// BurstVerdict is a data burst's fate after ECC decode: the zero value means
// the burst arrived clean (or fault modeling is off entirely).
type BurstVerdict uint8

// Burst verdicts.
const (
	// BurstOK: no error, or nothing the consumer needs to act on.
	BurstOK BurstVerdict = iota
	// BurstCorrected: ECC corrected the burst in flight; data is good.
	BurstCorrected
	// BurstUncorrectable: a detected-uncorrectable error — the data is NOT
	// trustworthy and the controller must retry or poison the line.
	BurstUncorrectable
)

// String names the verdict.
func (v BurstVerdict) String() string {
	switch v {
	case BurstOK:
		return "ok"
	case BurstCorrected:
		return "corrected"
	case BurstUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("BurstVerdict(%d)", uint8(v))
	}
}

// BurstProbe observes every data-carrying burst (RD/WR column access) at the
// moment the device moves it, and rules on its integrity — the hook
// internal/fault implements to push each burst through chipkill
// encode/decode with injected faults. Like Trace, the field is consulted
// only when non-nil, keeping the fault-free fast path allocation- and
// call-free.
//
// Workspace contract: the device calls DataBurst synchronously, one burst at
// a time, and consumes only the returned verdict — so an implementation may
// (and the fault injector does) reuse one internal workspace per channel
// across calls: burst planes, codec scratch, decode buffers. A probe must
// finish adjudicating before returning; nothing it hands out may alias state
// the next call will overwrite.
type BurstProbe interface {
	DataBurst(cmd Command, at Cycle) BurstVerdict
}

// Device is one memory channel's worth of DRAM (or RRAM) state: per-bank
// timing, per-rank mode registers and refresh, and the shared data bus.
type Device struct {
	cfg   Config
	ranks []rankState
	// flatBanks indexes every bank by its flat BankIndex — the scheduler
	// polls OpenRowAt once per occupied bank per service, so the lookup
	// must be one load, not a div/mod re-derivation.
	flatBanks []*bankState
	// Data bus occupancy.
	busFreeAt    Cycle
	busOwnerRank int
	busOwnerMode IOMode
	busOwnerGang bool
	busEverUsed  bool
	Stats        DeviceStats

	// Trace, when set, receives every issued command (cycle-accurate event
	// tracing; see internal/etrace).
	Trace CmdTracer

	// Probe, when set, adjudicates every data burst the device moves
	// (fault injection + ECC decode; see internal/fault).
	Probe BurstProbe
}

// NewDevice builds a device for the configuration; it panics if the
// configuration is invalid (construction is programmer-controlled).
func NewDevice(cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{cfg: cfg, busOwnerRank: -1}
	d.Stats.PerBank = make([]BankStats, cfg.Geometry.Ranks*cfg.Geometry.Banks())
	d.ranks = make([]rankState, cfg.Geometry.Ranks)
	for r := range d.ranks {
		rs := &d.ranks[r]
		rs.banks = make([]bankState, cfg.Geometry.Banks())
		rs.groups = make([]groupState, cfg.Geometry.BankGroups)
		for b := range rs.banks {
			rs.banks[b] = bankState{actAt: never, preDoneAt: never, lastRdAt: never, wrDataEnd: never}
		}
		for g := range rs.groups {
			rs.groups[g] = groupState{lastColAt: never, lastActAt: never}
		}
		rs.lastColAt, rs.lastActAt = never, never
		for i := range rs.faw {
			rs.faw[i] = never
		}
		rs.lastWrAt = never
		rs.mode = ModeX4
		rs.tfaw = Cycle(cfg.Timing.TFAW)
		rs.refDueAt = Cycle(cfg.Timing.TREFI)
		rs.refUntil = never
		rs.wrDataEnd, rs.rdDataEnd = never, never
	}
	d.flatBanks = make([]*bankState, 0, cfg.Geometry.Ranks*cfg.Geometry.Banks())
	for r := range d.ranks {
		for b := range d.ranks[r].banks {
			d.flatBanks = append(d.flatBanks, &d.ranks[r].banks[b])
		}
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// RankMode returns rank r's current I/O mode.
func (d *Device) RankMode(r int) IOMode { return d.ranks[r].mode }

// BankOpenRow returns (row, true) if the addressed bank has an open row.
func (d *Device) BankOpenRow(rank, group, bank int) (int, bool) {
	b := &d.ranks[rank].banks[group*d.cfg.Geometry.BanksPerGroup+bank]
	return b.row, b.open
}

// RefreshDue reports the next refresh deadline for a rank.
func (d *Device) RefreshDue(rank int) Cycle { return d.ranks[rank].refDueAt }

func (d *Device) bank(c Command) *bankState {
	return &d.ranks[c.Rank].banks[c.Group*d.cfg.Geometry.BanksPerGroup+c.Bank]
}

// BankIndex flattens (rank, group, bank) into the PerBank index.
func (d *Device) BankIndex(rank, group, bank int) int {
	return rank*d.cfg.Geometry.Banks() + group*d.cfg.Geometry.BanksPerGroup + bank
}

// NumBanks returns the number of flat bank indices (Ranks x banks/rank) —
// the valid range of BankIndex and OpenRowAt.
func (d *Device) NumBanks() int {
	return d.cfg.Geometry.Ranks * d.cfg.Geometry.Banks()
}

// OpenRowAt is BankOpenRow addressed by the flat BankIndex — the cheap
// per-bank lookup the controller's scheduling index consults on its hot
// path (a single indexed load).
func (d *Device) OpenRowAt(idx int) (int, bool) {
	b := d.flatBanks[idx]
	return b.row, b.open
}

func (d *Device) bankStats(c Command) *BankStats {
	return &d.Stats.PerBank[d.BankIndex(c.Rank, c.Group, c.Bank)]
}

func max2(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}

func maxN(vals ...Cycle) Cycle {
	// Cycle values can be negative (the `never` sentinel), so seed from the
	// first element; an empty list yields 0 instead of panicking.
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// EarliestIssue returns the earliest cycle >= now at which cmd is legal.
func (d *Device) EarliestIssue(cmd Command, now Cycle) Cycle {
	t := d.cfg.Timing
	rk := &d.ranks[cmd.Rank]
	switch cmd.Kind {
	case CmdACT:
		bk := d.bank(cmd)
		gs := &rk.groups[cmd.Group]
		earliest := maxN(
			now,
			bk.preDoneAt,
			gs.lastActAt+Cycle(t.TRRDL),
			rk.lastActAt+Cycle(t.TRRDS),
			rk.fawConstraint(),
			rk.refUntil,
		)
		if cmd.GangRanks {
			earliest = d.gangConstrain(cmd, earliest, CmdACT)
		}
		return earliest
	case CmdPRE:
		bk := d.bank(cmd)
		return maxN(
			now,
			bk.actAt+Cycle(t.TRAS),
			bk.lastRdAt+Cycle(t.TRTP),
			bk.wrDataEnd+Cycle(t.TWR),
			rk.refUntil,
		)
	case CmdRD, CmdWR:
		return d.earliestColumn(cmd, now)
	case CmdREF:
		// All banks in the rank must be precharge-able and closed. The
		// implicit precharge happens tRP before the REF lands, so its
		// earliest time depends only on bank history, not on `now`.
		earliest := max2(now, rk.refUntil)
		for g := range rk.groups {
			for b := 0; b < d.cfg.Geometry.BanksPerGroup; b++ {
				bk := &rk.banks[g*d.cfg.Geometry.BanksPerGroup+b]
				if bk.open {
					preAt := maxN(bk.actAt+Cycle(t.TRAS), bk.lastRdAt+Cycle(t.TRTP), bk.wrDataEnd+Cycle(t.TWR))
					earliest = max2(earliest, preAt+Cycle(t.TRP))
				} else {
					earliest = max2(earliest, bk.preDoneAt)
				}
			}
		}
		return earliest
	case CmdMRS:
		return max2(now, rk.refUntil)
	default:
		panic(fmt.Sprintf("dram: EarliestIssue of unknown command %v", cmd.Kind))
	}
}

// earliestColumn computes the issue constraint for RD/WR including CCD,
// turnaround, data-bus occupancy, and mode/rank switch penalties.
func (d *Device) earliestColumn(cmd Command, now Cycle) Cycle {
	t := d.cfg.Timing
	rk := &d.ranks[cmd.Rank]
	bk := d.bank(cmd)
	gs := &rk.groups[cmd.Group]

	lat := Cycle(t.CL)
	if cmd.Kind == CmdWR {
		lat = Cycle(t.CWL)
	}
	earliest := maxN(
		now,
		bk.actAt+Cycle(t.TRCD),
		gs.lastColAt+Cycle(t.TCCDL),
		rk.lastColAt+Cycle(t.TCCDS),
		rk.refUntil,
	)
	if cmd.Kind == CmdRD {
		// Write-to-read turnaround in the same rank.
		earliest = max2(earliest, rk.wrDataEnd+Cycle(t.TWTR))
	} else if t.TWRBurst > 0 {
		// NVM write pulses occupy the array between write bursts.
		earliest = max2(earliest, rk.lastWrAt+Cycle(t.TWRBurst))
	}
	// Data bus: the burst must start after the bus frees, plus a switch gap
	// when ownership (rank or I/O mode) changes, plus read/write turnaround.
	busReady := d.busFreeAt
	if d.busEverUsed {
		// Rank-to-rank switch: ownership changes when the driving rank set
		// changes. Back-to-back ganged bursts share ownership.
		if d.busOwnerGang != cmd.GangRanks || (!cmd.GangRanks && d.busOwnerRank != cmd.Rank) {
			busReady += Cycle(t.TRTR)
		}
		if d.modeSwitchNeeded(cmd) {
			busReady += Cycle(t.TRTR)
		}
		if cmd.Kind == CmdWR && d.lastBusWasRead() {
			busReady += Cycle(t.TRTW)
		}
	}
	if dataStart := earliest + lat; dataStart < busReady {
		earliest = busReady - lat
	}
	if cmd.GangRanks {
		earliest = d.gangConstrain(cmd, earliest, cmd.Kind)
	}
	return earliest
}

// modeSwitchNeeded reports whether issuing cmd requires reprogramming the
// target rank's I/O mode register.
func (d *Device) modeSwitchNeeded(cmd Command) bool {
	if d.ranks[cmd.Rank].mode != cmd.Mode {
		return true
	}
	if cmd.GangRanks {
		for r := range d.ranks {
			if d.ranks[r].mode != cmd.Mode {
				return true
			}
		}
	}
	return false
}

func (d *Device) lastBusWasRead() bool {
	var lastRd, lastWr Cycle = never, never
	for r := range d.ranks {
		lastRd = max2(lastRd, d.ranks[r].rdDataEnd)
		lastWr = max2(lastWr, d.ranks[r].wrDataEnd)
	}
	return lastRd > lastWr
}

// gangConstrain folds in the mirror rank's refresh/ccd constraints for
// dual-rank ganged bursts (fine-granularity stride, Section 4.4). The
// mirror rank holds the same row open by construction (mirrored
// allocation), so only rank-global constraints apply.
func (d *Device) gangConstrain(cmd Command, earliest Cycle, kind CmdKind) Cycle {
	t := d.cfg.Timing
	for r := range d.ranks {
		if r == cmd.Rank {
			continue
		}
		o := &d.ranks[r]
		earliest = max2(earliest, o.refUntil)
		if kind == CmdRD || kind == CmdWR {
			earliest = max2(earliest, o.lastColAt+Cycle(t.TCCDS))
			if kind == CmdRD {
				earliest = max2(earliest, o.wrDataEnd+Cycle(t.TWTR))
			}
		}
	}
	return earliest
}

// IssueResult reports the consequences of a command.
type IssueResult struct {
	// DataStart/DataEnd bound the data burst on the bus (RD/WR only);
	// DataEnd is exclusive.
	DataStart, DataEnd Cycle
	// Done is when the command's effects complete (e.g. REF busy end).
	Done Cycle
	// ModeSwitched reports that the rank's I/O mode register changed.
	ModeSwitched bool
	// Fault is the Probe's ruling on the data burst (RD/WR only); BurstOK
	// whenever no probe is attached.
	Fault BurstVerdict
}

// Issue applies cmd at cycle at. It panics when the command is illegal
// (issued before EarliestIssue, or structurally invalid) — the controller
// is required to consult EarliestIssue first, and a violation is a
// simulator bug, not a runtime condition.
func (d *Device) Issue(cmd Command, at Cycle) IssueResult {
	res := d.apply(cmd, at)
	if d.Trace != nil {
		d.Trace.CommandIssued(cmd, at, res)
	}
	return res
}

// apply performs Issue's state transition and returns the result.
func (d *Device) apply(cmd Command, at Cycle) IssueResult {
	if e := d.EarliestIssue(cmd, at); e > at {
		panic(fmt.Sprintf("dram: %v issued at %d, legal at %d", cmd, at, e))
	}
	t := d.cfg.Timing
	rk := &d.ranks[cmd.Rank]
	switch cmd.Kind {
	case CmdACT:
		bk := d.bank(cmd)
		if bk.open {
			panic(fmt.Sprintf("dram: ACT to open bank: %v", cmd))
		}
		bk.open = true
		bk.row = cmd.Row
		bk.actAt = at
		bk.lastRdAt, bk.wrDataEnd = never, never
		bk.colsSinceAct = 0
		gs := &rk.groups[cmd.Group]
		gs.lastActAt = max2(gs.lastActAt, at)
		rk.lastActAt = max2(rk.lastActAt, at)
		rk.recordAct(at)
		d.Stats.Acts++
		d.bankStats(cmd).Acts++
		if cmd.GangRanks {
			d.Stats.Acts++ // mirror rank activates too
			for r := range d.ranks {
				if r != cmd.Rank {
					d.Stats.PerBank[d.BankIndex(r, cmd.Group, cmd.Bank)].Acts++
				}
			}
		}
		return IssueResult{Done: at + Cycle(t.TRCD)}
	case CmdPRE:
		bk := d.bank(cmd)
		if !bk.open {
			panic(fmt.Sprintf("dram: PRE to closed bank: %v", cmd))
		}
		bk.open = false
		bk.preDoneAt = at + Cycle(t.TRP)
		d.Stats.Pres++
		d.bankStats(cmd).Pres++
		return IssueResult{Done: bk.preDoneAt}
	case CmdRD, CmdWR:
		return d.issueColumn(cmd, at)
	case CmdREF:
		for b := range rk.banks {
			rk.banks[b].open = false
			rk.banks[b].preDoneAt = at
		}
		rk.refUntil = at + Cycle(t.TRFC)
		rk.refDueAt += Cycle(t.TREFI)
		d.Stats.Refs++
		return IssueResult{Done: rk.refUntil}
	case CmdMRS:
		switched := rk.mode != cmd.Mode
		rk.mode = cmd.Mode
		if switched {
			d.Stats.ModeSwitches++
		}
		return IssueResult{Done: at + Cycle(t.TRTR), ModeSwitched: switched}
	default:
		panic(fmt.Sprintf("dram: Issue of unknown command %v", cmd.Kind))
	}
}

func (d *Device) issueColumn(cmd Command, at Cycle) IssueResult {
	t := d.cfg.Timing
	rk := &d.ranks[cmd.Rank]
	bk := d.bank(cmd)
	if !bk.open || bk.row != cmd.Row {
		panic(fmt.Sprintf("dram: column access to wrong/closed row: %v (open=%v row=%d)", cmd, bk.open, bk.row))
	}
	lat := Cycle(t.CL)
	if cmd.Kind == CmdWR {
		lat = Cycle(t.CWL)
	}
	res := IssueResult{DataStart: at + lat}
	res.DataEnd = res.DataStart + Cycle(t.TBL)
	res.Done = res.DataEnd

	bs := d.bankStats(cmd)
	if bk.colsSinceAct > 0 {
		bs.RowHits++
	} else {
		bs.RowMisses++
	}
	bk.colsSinceAct++
	if cmd.Kind == CmdRD {
		bs.Reads++
	} else {
		bs.Writes++
	}

	if d.modeSwitchNeeded(cmd) {
		res.ModeSwitched = true
		rk.mode = cmd.Mode
		d.Stats.ModeSwitches++
		if cmd.GangRanks {
			for r := range d.ranks {
				d.ranks[r].mode = cmd.Mode
			}
		}
	}
	gs := &rk.groups[cmd.Group]
	gs.lastColAt = max2(gs.lastColAt, at)
	rk.lastColAt = max2(rk.lastColAt, at)
	if cmd.Kind == CmdRD {
		bk.lastRdAt = max2(bk.lastRdAt, at)
		rk.rdDataEnd = max2(rk.rdDataEnd, res.DataEnd)
		if cmd.Mode.IsStride() {
			d.Stats.StrideReads++
			// Stride fetch moves four column words into the I/O buffers
			// (all four, regardless of how many the channel sends).
			d.Stats.ColumnWordsFetched += 4
			d.Stats.ColumnWordsRequested++
		} else {
			d.Stats.Reads++
			d.Stats.ColumnWordsFetched++
			d.Stats.ColumnWordsRequested++
		}
	} else {
		bk.wrDataEnd = max2(bk.wrDataEnd, res.DataEnd)
		rk.wrDataEnd = max2(rk.wrDataEnd, res.DataEnd)
		rk.lastWrAt = max2(rk.lastWrAt, at)
		if cmd.Mode.IsStride() {
			d.Stats.StrideWrites++
			d.Stats.ColumnWordsFetched += 4
			d.Stats.ColumnWordsRequested++
		} else {
			d.Stats.Writes++
			d.Stats.ColumnWordsFetched++
			d.Stats.ColumnWordsRequested++
		}
	}
	if cmd.GangRanks {
		d.Stats.GangedBursts++
	}
	if cmd.AutoPrecharge {
		bk.open = false
		closeAt := maxN(at+Cycle(t.TRTP), bk.actAt+Cycle(t.TRAS), res.DataEnd+Cycle(t.TWR))
		bk.preDoneAt = closeAt + Cycle(t.TRP)
		d.Stats.Pres++
		bs.Pres++
	}
	d.Stats.BusBusyCycles += uint64(t.TBL)
	if res.DataEnd > d.busFreeAt {
		d.busFreeAt = res.DataEnd
		d.busOwnerRank = cmd.Rank
		d.busOwnerMode = cmd.Mode
		d.busOwnerGang = cmd.GangRanks
	}
	d.busEverUsed = true
	if d.Probe != nil {
		res.Fault = d.Probe.DataBurst(cmd, at)
	}
	return res
}
