package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseMemZeroFill(t *testing.T) {
	m := NewSparseMem()
	got := m.Read(0x123456, 16)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("unbacked memory should read zero")
	}
	if m.PagesAllocated() != 0 {
		t.Fatal("read allocated pages")
	}
}

func TestSparseMemRoundTrip(t *testing.T) {
	m := NewSparseMem()
	data := []byte("strided accesses ahoy")
	m.Write(0x7FF0, data) // crosses a page boundary
	if got := m.Read(0x7FF0, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
	if m.PagesAllocated() != 2 {
		t.Fatalf("pages = %d, want 2 (boundary cross)", m.PagesAllocated())
	}
}

func TestSparseMemU64(t *testing.T) {
	m := NewSparseMem()
	m.WriteU64(0x1000, 0x0807060504030201)
	if got := m.ReadU64(0x1000); got != 0x0807060504030201 {
		t.Fatalf("u64 round trip: %x", got)
	}
	// Little-endian layout.
	if b := m.Read(0x1000, 1)[0]; b != 0x01 {
		t.Fatalf("first byte %x, want little-endian 01", b)
	}
}

func TestSparseMemPropertyRoundTrip(t *testing.T) {
	m := NewSparseMem()
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		m.Write(uint64(addr), data)
		return bytes.Equal(m.Read(uint64(addr), len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSparseMemOverlappingWrites(t *testing.T) {
	m := NewSparseMem()
	ref := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		addr := rng.Intn(len(ref) - 64)
		n := 1 + rng.Intn(64)
		chunk := make([]byte, n)
		rng.Read(chunk)
		copy(ref[addr:], chunk)
		m.Write(uint64(addr), chunk)
	}
	if got := m.Read(0, len(ref)); !bytes.Equal(got, ref) {
		t.Fatal("sparse memory diverged from flat reference")
	}
}
