package dram

import (
	"fmt"

	"sam/internal/ecc"
)

// RankModel is the functional (bit-level) model of one memory rank: every
// chip stores its slice of each row, and reads flow through the real I/O
// buffer datapath — LoadRegular/SerializeRegular for x4 accesses,
// LoadWide/SerializeStride for the Sx4_n stride modes, and the transposed
// serializers for SAM-en. Combined with the ecc codecs it closes the loop
// on the paper's reliability claims: the bytes a strided burst delivers
// are exactly the bytes whole chipkill codewords occupy.
//
// The timing model (Device) and this functional model are deliberately
// independent; tests and the reliability example wire them together.
type RankModel struct {
	chips    int
	rowBytes int // rank-level row size
	rows     map[int][]chipRow
	scheme   ecc.Scheme
	codec    *ecc.Chipkill
	pool     ecc.BurstPool // burst free list; with the scratch codec, reads stop allocating bursts
}

type chipRow struct {
	data []byte // this chip's slice of the row, 4 bytes per burst column
}

// NewRankModel builds a functional rank for the chipkill scheme.
func NewRankModel(rowBytes int, scheme ecc.Scheme) *RankModel {
	codec := ecc.NewChipkill(scheme)
	if rowBytes%codec.DataBytes() != 0 {
		panic(fmt.Sprintf("dram: row %dB not a multiple of burst payload %dB", rowBytes, codec.DataBytes()))
	}
	return &RankModel{
		chips:    codec.Chips(),
		rowBytes: rowBytes,
		rows:     make(map[int][]chipRow),
		scheme:   scheme,
		codec:    codec,
	}
}

// Chips returns the rank width (data + check chips).
func (r *RankModel) Chips() int { return r.chips }

// ColumnsPerRow returns how many burst-sized columns one row holds.
func (r *RankModel) ColumnsPerRow() int { return r.rowBytes / r.codec.DataBytes() }

// chipRowBytes is each chip's share of a row: 4 bytes per column word.
func (r *RankModel) chipRowBytes() int { return r.ColumnsPerRow() * ecc.BytesPerChip }

func (r *RankModel) row(idx int, create bool) []chipRow {
	row, ok := r.rows[idx]
	if !ok && create {
		row = make([]chipRow, r.chips)
		for c := range row {
			row[c].data = make([]byte, r.chipRowBytes())
		}
		r.rows[idx] = row
	}
	return row
}

// WriteColumn encodes data (one burst payload) with fresh check symbols and
// stores it at (row, col) across the chips.
func (r *RankModel) WriteColumn(rowIdx, col int, data []byte) {
	if col < 0 || col >= r.ColumnsPerRow() {
		panic(fmt.Sprintf("dram: column %d out of row", col))
	}
	burst := r.pool.Get(r.chips)
	r.codec.EncodeInto(burst, data)
	row := r.row(rowIdx, true)
	off := col * ecc.BytesPerChip
	for c := 0; c < r.chips; c++ {
		copy(row[c].data[off:off+ecc.BytesPerChip], burst.Chips[c][:])
	}
	r.pool.Put(burst)
}

// readBurst gathers the raw burst stored at (row, col) into a pooled burst
// the caller must Put back; missing rows read as zero (a valid all-zero
// codeword region is NOT guaranteed, so callers should only read what they
// wrote).
func (r *RankModel) readBurst(rowIdx, col int) *ecc.Burst {
	b := r.pool.Get(r.chips)
	row := r.row(rowIdx, false)
	if row == nil {
		return b
	}
	off := col * ecc.BytesPerChip
	for c := 0; c < r.chips; c++ {
		copy(b.Chips[c][:], row[c].data[off:off+ecc.BytesPerChip])
	}
	return b
}

// ReadColumn performs a regular access: fetch the column through each
// chip's x4 path (buffer 0) and decode the chipkill codewords.
func (r *RankModel) ReadColumn(rowIdx, col int) (data []byte, corrected int, err error) {
	raw := r.readBurst(rowIdx, col)
	onBus := r.pool.Get(r.chips)
	for c := 0; c < r.chips; c++ {
		var io IOBuffer
		io.LoadRegular(raw.Chips[c])
		onBus.Chips[c] = io.SerializeRegular()
	}
	data, corrected, err = r.codec.Decode(onBus)
	r.pool.Put(raw)
	r.pool.Put(onBus)
	return data, corrected, err
}

// ReadStride performs an Sx4_lane access: each chip wide-fetches four
// consecutive columns starting at baseCol into its four I/O buffers and
// serializes lane `lane` of each — delivering the same-offset byte of four
// consecutive columns in one burst. The returned payload is the gathered
// strided data; under the SSC-variant layout it still decodes as whole
// codewords (the SAM-IO compatibility argument of Section 4.2.2).
func (r *RankModel) ReadStride(rowIdx, baseCol, lane int) []byte {
	if baseCol%NumIOBuffers != 0 {
		panic("dram: stride base column must be buffer-aligned")
	}
	out := make([]byte, r.chips*ecc.BytesPerChip)
	for c := 0; c < r.chips; c++ {
		var io IOBuffer
		var words [NumIOBuffers][BufBytes]byte
		for w := 0; w < NumIOBuffers; w++ {
			b := r.readBurst(rowIdx, baseCol+w)
			words[w] = b.Chips[c]
			r.pool.Put(b)
		}
		io.LoadWide(words)
		lanes := io.SerializeStride(lane)
		copy(out[c*ecc.BytesPerChip:], lanes[:])
	}
	return out
}

// GatherExpected computes, straight from the stored rows, the bytes a
// strided read *should* return: byte `lane` of chip c's word in each of
// the four columns. Tests compare ReadStride against this independent
// path.
func (r *RankModel) GatherExpected(rowIdx, baseCol, lane int) []byte {
	out := make([]byte, r.chips*ecc.BytesPerChip)
	for c := 0; c < r.chips; c++ {
		for w := 0; w < NumIOBuffers; w++ {
			b := r.readBurst(rowIdx, baseCol+w)
			out[c*ecc.BytesPerChip+w] = b.Chips[c][lane]
			r.pool.Put(b)
		}
	}
	return out
}

// CorruptChipRow simulates a dead chip for one whole row.
func (r *RankModel) CorruptChipRow(rowIdx, chip int, garbage byte) {
	row := r.row(rowIdx, true)
	for i := range row[chip].data {
		row[chip].data[i] ^= garbage
	}
}

// ReadColumnCorrected reads a column and reports whether ECC had to work.
func (r *RankModel) ReadColumnCorrected(rowIdx, col int) ([]byte, bool, error) {
	data, n, err := r.ReadColumn(rowIdx, col)
	return data, n > 0, err
}
