package dram

import (
	"math/rand"
	"testing"
)

func testCfg() Config { return DDR4_2400() }

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{DDR4_2400(), RRAM()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", cfg.Name, err)
		}
	}
	bad := DDR4_2400()
	bad.Geometry.LineBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero line size accepted")
	}
	bad = DDR4_2400()
	bad.Timing.CL = 0
	if bad.Validate() == nil {
		t.Fatal("zero CL accepted")
	}
	bad = DDR4_2400()
	bad.ClockMHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
}

func TestTimingScale(t *testing.T) {
	base := DDR4_2400().Timing
	s := base.Scale(1.072) // SAM-sub's 7.2% area overhead
	if s.TRCD <= base.TRCD || s.TRAS <= base.TRAS {
		t.Fatalf("scale did not inflate array timings: %+v", s)
	}
	if s.CL != base.CL || s.TBL != base.TBL || s.TRTR != base.TRTR {
		t.Fatal("scale must not touch bus-side parameters")
	}
	if same := base.Scale(1.0); same != base {
		t.Fatalf("identity scale changed timing: %+v vs %+v", same, base)
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DDR4_2400().Geometry
	if g.Banks() != 16 {
		t.Fatalf("banks/rank = %d, want 16", g.Banks())
	}
	if g.TotalBanks() != 32 {
		t.Fatalf("banks/channel = %d, want 32", g.TotalBanks())
	}
	if g.LinesPerRow() != 128 {
		t.Fatalf("lines/row = %d, want 128", g.LinesPerRow())
	}
	if g.RowsPerBank() != 256*512 {
		t.Fatalf("rows/bank = %d", g.RowsPerBank())
	}
}

func TestActToReadRespectsTRCD(t *testing.T) {
	d := NewDevice(testCfg())
	act := Command{Kind: CmdACT, Row: 5}
	rd := Command{Kind: CmdRD, Row: 5, Col: 0, Mode: ModeX4}
	at := d.EarliestIssue(act, 100)
	if at != 100 {
		t.Fatalf("first ACT delayed to %d", at)
	}
	d.Issue(act, at)
	e := d.EarliestIssue(rd, at)
	if want := at + Cycle(testCfg().Timing.TRCD); e != want {
		t.Fatalf("RD legal at %d, want %d", e, want)
	}
}

func TestReadDataTiming(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	rd := Command{Kind: CmdRD, Row: 1, Mode: ModeX4}
	at := d.EarliestIssue(rd, 0)
	res := d.Issue(rd, at)
	if res.DataStart != at+Cycle(cfg.Timing.CL) {
		t.Fatalf("data start %d, want issue+CL", res.DataStart)
	}
	if res.DataEnd-res.DataStart != Cycle(cfg.Timing.TBL) {
		t.Fatalf("burst occupies %d cycles, want tBL", res.DataEnd-res.DataStart)
	}
}

func TestSameGroupCCDL(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	rd := Command{Kind: CmdRD, Row: 1, Mode: ModeX4}
	a1 := d.EarliestIssue(rd, 0)
	d.Issue(rd, a1)
	rd.Col = 1
	a2 := d.EarliestIssue(rd, a1)
	if a2-a1 != Cycle(cfg.Timing.TCCDL) {
		t.Fatalf("same-group RD gap %d, want tCCD_L=%d", a2-a1, cfg.Timing.TCCDL)
	}
}

func TestCrossGroupCCDS(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Group: 0, Row: 1}, 0)
	d.Issue(Command{Kind: CmdACT, Group: 1, Row: 1}, d.EarliestIssue(Command{Kind: CmdACT, Group: 1, Row: 1}, 0))
	rd0 := Command{Kind: CmdRD, Group: 0, Row: 1, Mode: ModeX4}
	a1 := d.EarliestIssue(rd0, 50)
	d.Issue(rd0, a1)
	rd1 := Command{Kind: CmdRD, Group: 1, Row: 1, Mode: ModeX4}
	a2 := d.EarliestIssue(rd1, a1)
	if a2-a1 != Cycle(cfg.Timing.TCCDS) {
		t.Fatalf("cross-group RD gap %d, want tCCD_S=%d", a2-a1, cfg.Timing.TCCDS)
	}
}

func TestPrechargeRespectsTRAS(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 9}, 10)
	pre := Command{Kind: CmdPRE}
	if e := d.EarliestIssue(pre, 10); e != 10+Cycle(cfg.Timing.TRAS) {
		t.Fatalf("PRE legal at %d, want ACT+tRAS=%d", e, 10+cfg.Timing.TRAS)
	}
}

func TestWriteRecoveryBeforePrecharge(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 2}, 0)
	wr := Command{Kind: CmdWR, Row: 2, Mode: ModeX4}
	at := d.EarliestIssue(wr, 0)
	res := d.Issue(wr, at)
	e := d.EarliestIssue(Command{Kind: CmdPRE}, at)
	if want := res.DataEnd + Cycle(cfg.Timing.TWR); e != want {
		t.Fatalf("PRE after WR legal at %d, want %d", e, want)
	}
}

func TestFourActivateWindow(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	var issued []Cycle
	// Five ACTs to five different banks across groups (so tRRD_S, not
	// tRRD_L, is the pairwise limit).
	for i := 0; i < 5; i++ {
		cmd := Command{Kind: CmdACT, Group: i % 4, Bank: i / 4, Row: 1}
		at := d.EarliestIssue(cmd, 0)
		d.Issue(cmd, at)
		issued = append(issued, at)
	}
	if gap := issued[4] - issued[0]; gap < Cycle(cfg.Timing.TFAW) {
		t.Fatalf("5th ACT only %d after 1st, violates tFAW=%d", gap, cfg.Timing.TFAW)
	}
	if gap := issued[3] - issued[0]; gap >= Cycle(cfg.Timing.TFAW) {
		t.Fatalf("4th ACT waited for tFAW (%d) — should only bind the 5th", gap)
	}
}

func TestModeSwitchCostsTRTR(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	rd := Command{Kind: CmdRD, Row: 1, Mode: ModeX4}
	a1 := d.EarliestIssue(rd, 0)
	r1 := d.Issue(rd, a1)

	// Same mode: next burst back-to-back at tCCD_L (> tBL so CCD binds).
	a2 := d.EarliestIssue(rd, a1)
	d.Issue(rd, a2)
	r2end := a2 + Cycle(cfg.Timing.CL+cfg.Timing.TBL)

	// Different mode: data start must additionally clear busFree + tRTR.
	srd := Command{Kind: CmdRD, Row: 1, Mode: ModeStride2}
	a3 := d.EarliestIssue(srd, a2)
	res := d.Issue(srd, a3)
	if !res.ModeSwitched {
		t.Fatal("mode switch not reported")
	}
	if res.DataStart < r2end+Cycle(cfg.Timing.TRTR) {
		t.Fatalf("stride burst data at %d, want >= %d (prev end %d + tRTR)",
			res.DataStart, r2end+Cycle(cfg.Timing.TRTR), r2end)
	}
	if d.RankMode(0) != ModeStride2 {
		t.Fatalf("rank mode = %v after switch", d.RankMode(0))
	}
	_ = r1
	// Switching back also costs tRTR and counts.
	if d.Stats.ModeSwitches != 1 {
		t.Fatalf("mode switches = %d, want 1", d.Stats.ModeSwitches)
	}
}

func TestRankSwitchCostsTRTR(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Rank: 0, Row: 1}, 0)
	actR1 := Command{Kind: CmdACT, Rank: 1, Row: 1}
	d.Issue(actR1, d.EarliestIssue(actR1, 0))
	rd0 := Command{Kind: CmdRD, Rank: 0, Row: 1, Mode: ModeX4}
	a1 := d.EarliestIssue(rd0, 0)
	res1 := d.Issue(rd0, a1)
	rd1 := Command{Kind: CmdRD, Rank: 1, Row: 1, Mode: ModeX4}
	a2 := d.EarliestIssue(rd1, a1)
	res2 := d.Issue(rd1, a2)
	if res2.DataStart < res1.DataEnd+Cycle(cfg.Timing.TRTR) {
		t.Fatalf("rank-to-rank gap %d, want >= tRTR", res2.DataStart-res1.DataEnd)
	}
}

func TestStrideReadCountsWideFetch(t *testing.T) {
	d := NewDevice(testCfg())
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	srd := Command{Kind: CmdRD, Row: 1, Mode: ModeStride0}
	d.Issue(srd, d.EarliestIssue(srd, 0))
	if d.Stats.StrideReads != 1 || d.Stats.Reads != 0 {
		t.Fatalf("stride read miscounted: %+v", d.Stats)
	}
	if d.Stats.ColumnWordsFetched != 4 || d.Stats.ColumnWordsRequested != 1 {
		t.Fatalf("wide fetch accounting wrong: %+v", d.Stats)
	}
}

func TestAutoPrechargeClosesBank(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 3}, 0)
	rd := Command{Kind: CmdRD, Row: 3, Mode: ModeX4, AutoPrecharge: true}
	at := d.EarliestIssue(rd, 0)
	d.Issue(rd, at)
	if _, open := d.BankOpenRow(0, 0, 0); open {
		t.Fatal("bank still open after auto-precharge")
	}
	// Re-activation must wait for the implicit precharge to finish.
	act := Command{Kind: CmdACT, Row: 4}
	if e := d.EarliestIssue(act, at); e <= at+Cycle(cfg.Timing.TRTP) {
		t.Fatalf("re-ACT too early at %d", e)
	}
}

func TestRefreshBlocksAndRecurs(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	due := d.RefreshDue(0)
	if due != Cycle(cfg.Timing.TREFI) {
		t.Fatalf("first refresh due at %d", due)
	}
	ref := Command{Kind: CmdREF, Rank: 0}
	at := d.EarliestIssue(ref, due)
	res := d.Issue(ref, at)
	if res.Done != at+Cycle(cfg.Timing.TRFC) {
		t.Fatalf("refresh busy until %d", res.Done)
	}
	if d.RefreshDue(0) != due+Cycle(cfg.Timing.TREFI) {
		t.Fatal("refresh deadline did not advance")
	}
	// ACT during tRFC must be pushed out.
	act := Command{Kind: CmdACT, Row: 1}
	if e := d.EarliestIssue(act, at+1); e < res.Done {
		t.Fatalf("ACT allowed during refresh at %d", e)
	}
}

func TestRefreshWithOpenBankForcesPrecharge(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	ref := Command{Kind: CmdREF, Rank: 0}
	e := d.EarliestIssue(ref, 5)
	if e < 0+Cycle(cfg.Timing.TRAS+cfg.Timing.TRP) {
		t.Fatalf("REF at %d ignores open bank (tRAS+tRP=%d)", e, cfg.Timing.TRAS+cfg.Timing.TRP)
	}
	d.Issue(ref, e)
	if _, open := d.BankOpenRow(0, 0, 0); open {
		t.Fatal("refresh left bank open")
	}
}

func TestIllegalIssuePanics(t *testing.T) {
	cases := map[string]func(d *Device){
		"early RD": func(d *Device) {
			d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
			d.Issue(Command{Kind: CmdRD, Row: 1, Mode: ModeX4}, 1)
		},
		"RD closed bank": func(d *Device) { d.Issue(Command{Kind: CmdRD, Row: 1, Mode: ModeX4}, 100) },
		"RD wrong row": func(d *Device) {
			d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
			d.Issue(Command{Kind: CmdRD, Row: 2, Mode: ModeX4}, 100)
		},
		"ACT open bank": func(d *Device) {
			d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
			d.Issue(Command{Kind: CmdACT, Row: 2}, 200)
		},
		"PRE closed bank": func(d *Device) { d.Issue(Command{Kind: CmdPRE}, 100) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn(NewDevice(testCfg()))
		}()
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	wr := Command{Kind: CmdWR, Row: 1, Mode: ModeX4}
	at := d.EarliestIssue(wr, 0)
	res := d.Issue(wr, at)
	rd := Command{Kind: CmdRD, Row: 1, Mode: ModeX4}
	e := d.EarliestIssue(rd, at)
	if e < res.DataEnd+Cycle(cfg.Timing.TWTR) {
		t.Fatalf("RD after WR at %d, want >= write-end+tWTR=%d", e, res.DataEnd+Cycle(cfg.Timing.TWTR))
	}
}

// TestRandomScheduleAuditClean cross-validates Device's constraint engine
// against the independent Auditor: a greedy scheduler that always issues at
// EarliestIssue must produce a protocol-clean command stream.
func TestRandomScheduleAuditClean(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	a := NewAuditor(cfg)
	rng := rand.New(rand.NewSource(99))
	type bankKey struct{ rank, group, bank int }
	open := map[bankKey]int{}
	now := Cycle(0)
	for i := 0; i < 3000; i++ {
		k := bankKey{rng.Intn(2), rng.Intn(4), rng.Intn(4)}
		row := rng.Intn(64)
		mode := ModeX4
		if rng.Intn(4) == 0 {
			mode = ModeStride0 + IOMode(rng.Intn(4))
		}
		if cur, ok := open[k]; ok && cur != row {
			pre := Command{Kind: CmdPRE, Rank: k.rank, Group: k.group, Bank: k.bank}
			at := d.EarliestIssue(pre, now)
			d.Issue(pre, at)
			a.Record(pre, at)
			delete(open, k)
			now = at
		}
		if _, ok := open[k]; !ok {
			act := Command{Kind: CmdACT, Rank: k.rank, Group: k.group, Bank: k.bank, Row: row}
			at := d.EarliestIssue(act, now)
			d.Issue(act, at)
			a.Record(act, at)
			open[k] = row
			now = at
		}
		kind := CmdRD
		if rng.Intn(3) == 0 {
			kind = CmdWR
		}
		col := Command{Kind: kind, Rank: k.rank, Group: k.group, Bank: k.bank, Row: open[k], Col: rng.Intn(32), Mode: mode}
		at := d.EarliestIssue(col, now)
		d.Issue(col, at)
		a.Record(col, at)
		now = at
		// Occasionally refresh.
		if i%500 == 250 {
			ref := Command{Kind: CmdREF, Rank: rng.Intn(2)}
			at := d.EarliestIssue(ref, now)
			d.Issue(ref, at)
			a.Record(ref, at)
			for key := range open {
				if key.rank == ref.Rank {
					delete(open, key)
				}
			}
			now = at
		}
	}
	if !a.Ok() {
		t.Fatalf("auditor found %d violations; first: %s", len(a.Violations), a.Violations[0])
	}
}

func TestAuditorCatchesViolations(t *testing.T) {
	cfg := testCfg()
	a := NewAuditor(cfg)
	a.Record(Command{Kind: CmdACT, Row: 1}, 0)
	a.Record(Command{Kind: CmdRD, Row: 1, Mode: ModeX4}, 2) // violates tRCD=17
	if a.Ok() {
		t.Fatal("auditor missed a tRCD violation")
	}
	a2 := NewAuditor(cfg)
	a2.Record(Command{Kind: CmdACT, Row: 1}, 0)
	a2.Record(Command{Kind: CmdPRE}, 5) // violates tRAS
	if a2.Ok() {
		t.Fatal("auditor missed a tRAS violation")
	}
	a3 := NewAuditor(cfg)
	a3.Record(Command{Kind: CmdACT, Group: 0, Row: 1}, 0)
	a3.Record(Command{Kind: CmdACT, Group: 1, Bank: 1, Row: 1}, 1) // violates tRRD_S
	if a3.Ok() {
		t.Fatal("auditor missed a tRRD violation")
	}
}

func TestCommandStrings(t *testing.T) {
	cmds := []Command{
		{Kind: CmdACT, Rank: 1, Group: 2, Bank: 3, Row: 7},
		{Kind: CmdPRE},
		{Kind: CmdRD, Mode: ModeStride1},
		{Kind: CmdWR, Mode: ModeX4},
		{Kind: CmdREF},
		{Kind: CmdMRS, Mode: ModeX16},
	}
	for _, c := range cmds {
		if c.String() == "" {
			t.Errorf("empty string for %v", c.Kind)
		}
	}
	if ModeStride3.String() != "Sx4_3" || ModeX8.String() != "x8" {
		t.Fatal("IOMode strings")
	}
	if !ModeStride0.IsStride() || ModeX16.IsStride() {
		t.Fatal("IsStride classification")
	}
}

func TestBankIDFlattening(t *testing.T) {
	g := testCfg().Geometry
	seen := map[int]bool{}
	for r := 0; r < g.Ranks; r++ {
		for grp := 0; grp < g.BankGroups; grp++ {
			for b := 0; b < g.BanksPerGroup; b++ {
				id := Command{Rank: r, Group: grp, Bank: b}.BankID(g)
				if seen[id] {
					t.Fatalf("duplicate bank id %d", id)
				}
				seen[id] = true
			}
		}
	}
	if len(seen) != g.TotalBanks() {
		t.Fatalf("%d distinct ids, want %d", len(seen), g.TotalBanks())
	}
}

func TestDDR5ConfigValid(t *testing.T) {
	cfg := DDR5_4800()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.ClockMHz != 2*DDR4_2400().ClockMHz {
		t.Fatal("DDR5-4800 should double the DDR4-2400 bus clock")
	}
	if cfg.Geometry.BankGroups <= DDR4_2400().Geometry.BankGroups {
		t.Fatal("DDR5 should expose more bank groups")
	}
	// The device model must run it: a basic ACT/RD sequence.
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	rd := Command{Kind: CmdRD, Row: 1, Mode: ModeX4}
	at := d.EarliestIssue(rd, 0)
	if res := d.Issue(rd, at); res.DataStart != at+Cycle(cfg.Timing.CL) {
		t.Fatal("DDR5 read timing broken")
	}
}

func TestGangedModeSwitchCoversBothRanks(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Rank: 0, Row: 1, GangRanks: true}, 0)
	srd := Command{Kind: CmdRD, Rank: 0, Row: 1, Mode: ModeStride1, GangRanks: true}
	at := d.EarliestIssue(srd, 0)
	res := d.Issue(srd, at)
	if !res.ModeSwitched {
		t.Fatal("gang switch not reported")
	}
	for r := 0; r < cfg.Geometry.Ranks; r++ {
		if d.RankMode(r) != ModeStride1 {
			t.Fatalf("rank %d mode %v after ganged switch", r, d.RankMode(r))
		}
	}
	if d.Stats.GangedBursts != 1 {
		t.Fatalf("ganged bursts = %d", d.Stats.GangedBursts)
	}
	// Ganged ACT accounts for the mirror rank's activation energy.
	if d.Stats.Acts != 2 {
		t.Fatalf("ganged ACT counted %d activations, want 2", d.Stats.Acts)
	}
}

func TestBackToBackGangedBurstsNoSwitchPenalty(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1, GangRanks: true}, 0)
	srd := Command{Kind: CmdRD, Row: 1, Mode: ModeStride0, GangRanks: true}
	a1 := d.EarliestIssue(srd, 0)
	d.Issue(srd, a1)
	srd.Col = 1
	a2 := d.EarliestIssue(srd, a1)
	d.Issue(srd, a2)
	if gap := a2 - a1; gap != Cycle(cfg.Timing.TCCDL) {
		t.Fatalf("ganged back-to-back gap %d, want tCCD_L (no extra tRTR)", gap)
	}
}

func TestRRAMWritePulseSpacing(t *testing.T) {
	cfg := RRAM()
	d := NewDevice(cfg)
	d.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	wr := Command{Kind: CmdWR, Row: 1, Mode: ModeX4}
	a1 := d.EarliestIssue(wr, 0)
	d.Issue(wr, a1)
	wr.Col = 1
	a2 := d.EarliestIssue(wr, a1)
	if a2-a1 < Cycle(cfg.Timing.TWRBurst) {
		t.Fatalf("RRAM write gap %d, want >= write pulse %d", a2-a1, cfg.Timing.TWRBurst)
	}
	// Reads are unaffected by the pulse spacing between themselves.
	rdDev := NewDevice(cfg)
	rdDev.Issue(Command{Kind: CmdACT, Row: 1}, 0)
	rd := Command{Kind: CmdRD, Row: 1, Mode: ModeX4}
	r1 := rdDev.EarliestIssue(rd, 0)
	rdDev.Issue(rd, r1)
	rd.Col = 1
	r2 := rdDev.EarliestIssue(rd, r1)
	if r2-r1 != Cycle(cfg.Timing.TCCDL) {
		t.Fatalf("RRAM read gap %d, want tCCD_L", r2-r1)
	}
}

// TestRandomScheduleAuditCleanAllConfigs extends the scheduler/auditor
// cross-validation to every device personality.
func TestRandomScheduleAuditCleanAllConfigs(t *testing.T) {
	for _, cfg := range []Config{RRAM(), DDR5_4800()} {
		d := NewDevice(cfg)
		a := NewAuditor(cfg)
		rng := rand.New(rand.NewSource(7777))
		type bankKey struct{ rank, group, bank int }
		open := map[bankKey]int{}
		now := Cycle(0)
		for i := 0; i < 1500; i++ {
			k := bankKey{rng.Intn(cfg.Geometry.Ranks), rng.Intn(cfg.Geometry.BankGroups), rng.Intn(cfg.Geometry.BanksPerGroup)}
			row := rng.Intn(64)
			if cur, ok := open[k]; ok && cur != row {
				pre := Command{Kind: CmdPRE, Rank: k.rank, Group: k.group, Bank: k.bank}
				at := d.EarliestIssue(pre, now)
				d.Issue(pre, at)
				a.Record(pre, at)
				delete(open, k)
				now = at
			}
			if _, ok := open[k]; !ok {
				act := Command{Kind: CmdACT, Rank: k.rank, Group: k.group, Bank: k.bank, Row: row}
				at := d.EarliestIssue(act, now)
				d.Issue(act, at)
				a.Record(act, at)
				open[k] = row
				now = at
			}
			kind := CmdRD
			if rng.Intn(3) == 0 {
				kind = CmdWR
			}
			col := Command{Kind: kind, Rank: k.rank, Group: k.group, Bank: k.bank, Row: open[k], Col: rng.Intn(8), Mode: ModeX4}
			at := d.EarliestIssue(col, now)
			d.Issue(col, at)
			a.Record(col, at)
			now = at
		}
		if !a.Ok() {
			t.Fatalf("%s: %s", cfg.Name, a.Violations[0])
		}
	}
}

func TestAuditorDetectsDataBusCollision(t *testing.T) {
	cfg := testCfg()
	a := NewAuditor(cfg)
	// Two reads to different bank groups issued 1 cycle apart: their data
	// bursts (CL later, tBL wide) overlap on the shared bus.
	a.Record(Command{Kind: CmdACT, Group: 0, Row: 1}, 0)
	a.Record(Command{Kind: CmdACT, Group: 1, Row: 1}, 6)
	a.Record(Command{Kind: CmdRD, Group: 0, Row: 1, Mode: ModeX4}, 30)
	a.Record(Command{Kind: CmdRD, Group: 1, Row: 1, Mode: ModeX4}, 31)
	if a.Ok() {
		t.Fatal("auditor missed a data bus collision (and a tCCD_S violation)")
	}
}

func TestModeRegisterCommand(t *testing.T) {
	cfg := testCfg()
	d := NewDevice(cfg)
	res := d.Issue(Command{Kind: CmdMRS, Rank: 0, Mode: ModeStride2}, 5)
	if !res.ModeSwitched || d.RankMode(0) != ModeStride2 {
		t.Fatal("MRS did not program the mode register")
	}
	if res.Done != 5+Cycle(cfg.Timing.TRTR) {
		t.Fatalf("MRS busy until %d", res.Done)
	}
	// Re-programming the same mode is not a switch.
	res = d.Issue(Command{Kind: CmdMRS, Rank: 0, Mode: ModeStride2}, 50)
	if res.ModeSwitched {
		t.Fatal("same-mode MRS counted as a switch")
	}
}

func TestMaxNEdges(t *testing.T) {
	// maxN must tolerate an empty argument list (it used to panic) and
	// must seed from the first element, since Cycle values go as low as
	// the `never` sentinel (negative).
	if got := maxN(); got != 0 {
		t.Fatalf("maxN() = %d, want 0", got)
	}
	if got := maxN(never); got != never {
		t.Fatalf("maxN(never) = %d, want never", got)
	}
	if got := maxN(never, -3, -7); got != -3 {
		t.Fatalf("maxN of negatives = %d, want -3", got)
	}
	if got := maxN(5, never, 12, 3); got != 12 {
		t.Fatalf("maxN mixed = %d, want 12", got)
	}
}

func TestOpenRowAtMatchesBankOpenRow(t *testing.T) {
	// The flat-index lookup the controller's scheduling index uses must
	// agree with the coordinate form for every bank, closed and open.
	cfg := DDR4_2400()
	d := NewDevice(cfg)
	g := cfg.Geometry
	if want := g.Ranks * g.Banks(); d.NumBanks() != want {
		t.Fatalf("NumBanks = %d, want %d", d.NumBanks(), want)
	}
	// Open a scattering of rows.
	for rk := 0; rk < g.Ranks; rk++ {
		for gr := 0; gr < g.BankGroups; gr++ {
			for bk := 0; bk < g.BanksPerGroup; bk++ {
				if (rk+gr+bk)%2 == 0 {
					continue
				}
				cmd := Command{Kind: CmdACT, Rank: rk, Group: gr, Bank: bk, Row: 7*rk + 3*gr + bk}
				d.Issue(cmd, d.EarliestIssue(cmd, 0))
			}
		}
	}
	for rk := 0; rk < g.Ranks; rk++ {
		for gr := 0; gr < g.BankGroups; gr++ {
			for bk := 0; bk < g.BanksPerGroup; bk++ {
				wantRow, wantOpen := d.BankOpenRow(rk, gr, bk)
				row, open := d.OpenRowAt(d.BankIndex(rk, gr, bk))
				if row != wantRow || open != wantOpen {
					t.Fatalf("OpenRowAt(%d,%d,%d) = (%d,%v), want (%d,%v)",
						rk, gr, bk, row, open, wantRow, wantOpen)
				}
			}
		}
	}
}
