package dram

import (
	"fmt"
	"sort"
)

// Auditor is an independent protocol checker: it replays the command stream
// a controller issued and verifies every JEDEC window pairwise, without
// sharing any state with Device's "earliest time" bookkeeping. Tests (and
// the simulator's debug mode) run it to catch scheduler bugs — invariant 6
// in DESIGN.md.
type Auditor struct {
	cfg      Config
	history  []timedCommand
	checked  int // history length already validated
	capacity int // max retained commands; 0 = unbounded
	dropped  uint64
	// Violations collects human-readable protocol violations (populated by
	// Ok / Validate).
	Violations []string
}

type timedCommand struct {
	cmd Command
	at  Cycle
}

// NewAuditor builds an auditor for the configuration.
func NewAuditor(cfg Config) *Auditor {
	return &Auditor{cfg: cfg}
}

// SetCapacity bounds the retained history to at most n commands so
// long-running audited simulations don't grow memory without limit. When
// the bound is hit, the oldest quarter (at least one command) is discarded
// in a batch — amortized O(1) per Record — and validation / History cover
// only the retained window. n <= 0 restores the unbounded default, which
// the differential tests rely on for exact stream comparison.
func (a *Auditor) SetCapacity(n int) {
	if n < 0 {
		n = 0
	}
	a.capacity = n
}

// Dropped reports how many commands the capacity bound has discarded.
func (a *Auditor) Dropped() uint64 { return a.dropped }

// Record logs one issued command. Commands may be recorded in any order;
// validation sorts by issue time.
func (a *Auditor) Record(cmd Command, at Cycle) {
	if a.capacity > 0 && len(a.history) >= a.capacity {
		drop := len(a.history) - a.capacity + 1
		if batch := a.capacity / 4; batch > drop {
			drop = batch
		}
		if drop > len(a.history) {
			drop = len(a.history)
		}
		a.history = append(a.history[:0], a.history[drop:]...)
		a.dropped += uint64(drop)
		if a.checked > drop {
			a.checked -= drop
		} else {
			a.checked = 0
		}
	}
	a.history = append(a.history, timedCommand{cmd, at})
}

// TimedCommand is one recorded command with its issue time.
type TimedCommand struct {
	Cmd Command
	At  Cycle
}

// History returns a copy of the recorded command stream in record order —
// scheduler-equivalence tests compare two controllers' streams with it.
func (a *Auditor) History() []TimedCommand {
	out := make([]TimedCommand, len(a.history))
	for i, tc := range a.history {
		out[i] = TimedCommand{Cmd: tc.cmd, At: tc.at}
	}
	return out
}

// Validate checks every recorded command pairwise in time order.
func (a *Auditor) Validate() {
	if a.checked == len(a.history) {
		return
	}
	sort.SliceStable(a.history, func(i, j int) bool { return a.history[i].at < a.history[j].at })
	saved := a.history
	a.history = a.history[:0]
	for _, h := range saved {
		a.check(h.cmd, h.at)
		a.history = a.history[:len(a.history)+1]
	}
	a.checked = len(a.history)
}

func (a *Auditor) fail(cmd Command, at Cycle, format string, args ...interface{}) {
	a.Violations = append(a.Violations,
		fmt.Sprintf("t=%d %v: %s", at, cmd, fmt.Sprintf(format, args...)))
}

// sameBank reports whether two commands address the same bank.
func sameBank(x, y Command) bool {
	return x.Rank == y.Rank && x.Group == y.Group && x.Bank == y.Bank
}

// check validates cmd at time at against the recorded history.
func (a *Auditor) check(cmd Command, at Cycle) {
	t := a.cfg.Timing
	require := func(ok bool, format string, args ...interface{}) {
		if !ok {
			a.fail(cmd, at, format, args...)
		}
	}
	// Scan history newest-first; windows are short, so stop once we are
	// past the longest one (tREFI dominates, but per-pair checks use their
	// own windows — we conservatively scan the last tRFC+tFAW span).
	horizon := at - Cycle(t.TRFC+t.TFAW+t.TRAS+t.TRP+t.TWR+t.CL+t.TBL+64)
	var actsInRank []Cycle
	for i := len(a.history) - 1; i >= 0; i-- {
		h := a.history[i]
		if h.at < horizon {
			break
		}
		gap := at - h.at
		switch {
		case cmd.Kind == CmdACT && h.cmd.Kind == CmdACT && h.cmd.Rank == cmd.Rank:
			if h.cmd.Group == cmd.Group {
				require(gap >= Cycle(t.TRRDL), "tRRD_L violated (gap %d)", gap)
			} else {
				require(gap >= Cycle(t.TRRDS), "tRRD_S violated (gap %d)", gap)
			}
			actsInRank = append(actsInRank, h.at)
		case cmd.Kind == CmdACT && h.cmd.Kind == CmdPRE && sameBank(cmd, h.cmd):
			require(gap >= Cycle(t.TRP), "tRP violated (gap %d)", gap)
		case cmd.Kind == CmdACT && h.cmd.Kind == CmdREF && h.cmd.Rank == cmd.Rank:
			require(gap >= Cycle(t.TRFC), "tRFC violated (gap %d)", gap)
		case cmd.Kind == CmdPRE && h.cmd.Kind == CmdACT && sameBank(cmd, h.cmd):
			require(gap >= Cycle(t.TRAS), "tRAS violated (gap %d)", gap)
			return // older same-bank history is behind this ACT
		case cmd.Kind == CmdPRE && h.cmd.Kind == CmdRD && sameBank(cmd, h.cmd):
			require(gap >= Cycle(t.TRTP), "tRTP violated (gap %d)", gap)
		case cmd.Kind == CmdPRE && h.cmd.Kind == CmdWR && sameBank(cmd, h.cmd):
			wrEnd := h.at + Cycle(t.CWL+t.TBL)
			require(at >= wrEnd+Cycle(t.TWR), "tWR violated (PRE at %d, write data ends %d)", at, wrEnd)
		case (cmd.Kind == CmdRD || cmd.Kind == CmdWR) && h.cmd.Kind == CmdACT && sameBank(cmd, h.cmd):
			require(gap >= Cycle(t.TRCD), "tRCD violated (gap %d)", gap)
		case (cmd.Kind == CmdRD || cmd.Kind == CmdWR) && (h.cmd.Kind == CmdRD || h.cmd.Kind == CmdWR) && h.cmd.Rank == cmd.Rank:
			if h.cmd.Group == cmd.Group {
				require(gap >= Cycle(t.TCCDL), "tCCD_L violated (gap %d)", gap)
			} else {
				require(gap >= Cycle(t.TCCDS), "tCCD_S violated (gap %d)", gap)
			}
		}
	}
	if cmd.Kind == CmdACT && len(actsInRank) >= 4 {
		// Four ACTs may share a tFAW window; cmd would be a 5th, so the
		// 4th-most-recent must already be tFAW behind.
		fourth := actsInRank[3]
		require(at-fourth >= Cycle(t.TFAW), "tFAW violated (4 ACTs within %d)", at-fourth)
	}
	// Data bus overlap: successive bursts must not collide.
	if cmd.Kind == CmdRD || cmd.Kind == CmdWR {
		lat := Cycle(t.CL)
		if cmd.Kind == CmdWR {
			lat = Cycle(t.CWL)
		}
		start := at + lat
		for i := len(a.history) - 1; i >= 0; i-- {
			h := a.history[i]
			if h.at < horizon {
				break
			}
			if h.cmd.Kind != CmdRD && h.cmd.Kind != CmdWR {
				continue
			}
			hlat := Cycle(t.CL)
			if h.cmd.Kind == CmdWR {
				hlat = Cycle(t.CWL)
			}
			hstart := h.at + hlat
			hend := hstart + Cycle(t.TBL)
			require(start >= hend || start+Cycle(t.TBL) <= hstart,
				"data bus collision with %v at t=%d", h.cmd, h.at)
		}
	}
}

// Ok validates the recorded stream and reports whether it is protocol
// clean.
func (a *Auditor) Ok() bool {
	a.Validate()
	return len(a.Violations) == 0
}
