package dram

import "fmt"

// This file is the functional model of the common-die I/O path of one x4
// chip (Fig. 7): four 32-bit I/O buffers, each divided into four 8-bit
// lanes, feeding sixteen drivers through serializers. Regular x4 operation
// uses one buffer and four drivers; SAM's stride modes fill all four
// buffers and serialize one lane of each; SAM-en adds a second serializer
// direction (the "two-dimensional I/O buffer", Fig. 8) and the interleaved
// MUX for 4-bit granularity (Fig. 9).

// I/O buffer geometry.
const (
	NumIOBuffers  = 4 // common die integrates the full x16 buffer set
	LanesPerBuf   = 4 // each 32-bit buffer has four 8-bit lanes
	LaneBits      = 8
	BufBytes      = 4  // 32 bits
	ChipBurstBits = 32 // 4 DQ x 8 beats in x4 mode
)

// IOBuffer models the chip's four I/O buffers. Buf[b][l] is lane l of
// buffer b; in x4 operation only buffer 0 is used.
type IOBuffer struct {
	Buf [NumIOBuffers][LanesPerBuf]byte
}

// LoadRegular loads one 32-bit column word (the chip's share of one
// cacheline burst) into buffer 0, the x4 path.
func (io *IOBuffer) LoadRegular(word [BufBytes]byte) {
	io.Buf[0] = word
}

// LoadWide loads four column words — the chip's share of four consecutive
// cachelines — into all four buffers, the x16-class internal fetch stride
// modes perform.
func (io *IOBuffer) LoadWide(words [NumIOBuffers][BufBytes]byte) {
	io.Buf = words
}

// SerializeRegular returns the 32 bits the four DQs emit over eight beats
// in x4 mode: buffer 0, all lanes.
func (io *IOBuffer) SerializeRegular() [BufBytes]byte {
	return io.Buf[0]
}

// SerializeStride returns the 32 bits emitted in Sx4_lane mode: lane
// `lane` of each of the four buffers, driven by drivers
// [lane, lane+4, lane+8, lane+12] (the table in Fig. 7).
func (io *IOBuffer) SerializeStride(lane int) [BufBytes]byte {
	if lane < 0 || lane >= LanesPerBuf {
		panic(fmt.Sprintf("dram: stride lane %d out of range", lane))
	}
	var out [BufBytes]byte
	for b := 0; b < NumIOBuffers; b++ {
		out[b] = io.Buf[b][lane]
	}
	return out
}

// SerializeYZ reads the two-dimensional buffer along the yz-plane
// (SAM-en option 2, Fig. 8d): conceptually the four buffers form a 4x4x(2b)
// cube, and the second serializer set reads the transposed view, returning
// "buffer" yz of the symmetric layout. SerializeYZ(i) of the original
// equals SerializeRegular() of the transposed buffer i.
func (io *IOBuffer) SerializeYZ(yzBuffer int) [BufBytes]byte {
	if yzBuffer < 0 || yzBuffer >= NumIOBuffers {
		panic(fmt.Sprintf("dram: yz buffer %d out of range", yzBuffer))
	}
	var out [BufBytes]byte
	for l := 0; l < LanesPerBuf; l++ {
		out[l] = io.Buf[l][yzBuffer]
	}
	return out
}

// Transpose returns the yz-plane view of the buffer cube: buffer and lane
// indices exchanged. Transposing twice is the identity — the symmetry that
// makes the two serializer directions equivalent in latency (Section 4.3).
func (io IOBuffer) Transpose() IOBuffer {
	var t IOBuffer
	for b := 0; b < NumIOBuffers; b++ {
		for l := 0; l < LanesPerBuf; l++ {
			t.Buf[l][b] = io.Buf[b][l]
		}
	}
	return t
}

// SerializeStrideFine returns the 16 bits two DQs emit for 4-bit strided
// granularity (Section 4.4): the interleaved MUX pairs lanes (2k, 2k+1) and
// picks the high or low nibble of each, so four 4-bit symbols — one per
// buffer-pair position — travel on two DQs in one burst.
//
// pair selects which lane pair (0 or 1), hi selects the nibble. The two
// returned bytes are the two DQs' eight beats each.
func (io *IOBuffer) SerializeStrideFine(pair int, hi bool) [2]byte {
	if pair < 0 || pair*2+1 >= LanesPerBuf {
		panic(fmt.Sprintf("dram: lane pair %d out of range", pair))
	}
	nib := func(b byte) byte {
		if hi {
			return b >> 4
		}
		return b & 0xF
	}
	var out [2]byte
	// DQ 0 carries buffers 0,1; DQ 1 carries buffers 2,3 — two 4-bit
	// symbols per DQ, interleaved between the paired lanes.
	out[0] = nib(io.Buf[0][pair*2]) | nib(io.Buf[1][pair*2+1])<<4
	out[1] = nib(io.Buf[2][pair*2]) | nib(io.Buf[3][pair*2+1])<<4
	return out
}

// FuseMask models the post-manufacturing electric fuses of the common die
// (Section 2.2): which buffers and drivers a configuration enables.
type FuseMask struct {
	Buffers [NumIOBuffers]bool
	Drivers [16]bool
}

// FuseFor returns the fuse configuration for an I/O mode, per the Fig. 7
// table.
func FuseFor(mode IOMode) FuseMask {
	var f FuseMask
	enableDrv := func(ids ...int) {
		for _, id := range ids {
			f.Drivers[id] = true
		}
	}
	switch mode {
	case ModeX4:
		f.Buffers[0] = true
		enableDrv(0, 1, 2, 3)
	case ModeX8:
		f.Buffers[0], f.Buffers[1] = true, true
		enableDrv(0, 1, 2, 3, 4, 5, 6, 7)
	case ModeX16:
		for i := range f.Buffers {
			f.Buffers[i] = true
		}
		for i := range f.Drivers {
			f.Drivers[i] = true
		}
	case ModeStride0, ModeStride1, ModeStride2, ModeStride3:
		lane := int(mode - ModeStride0)
		for i := range f.Buffers {
			f.Buffers[i] = true
		}
		enableDrv(lane, lane+4, lane+8, lane+12)
	default:
		panic(fmt.Sprintf("dram: no fuse config for mode %v", mode))
	}
	return f
}

// EnabledDrivers counts drivers a fuse mask enables.
func (f FuseMask) EnabledDrivers() int {
	n := 0
	for _, on := range f.Drivers {
		if on {
			n++
		}
	}
	return n
}

// EnabledBuffers counts buffers a fuse mask enables.
func (f FuseMask) EnabledBuffers() int {
	n := 0
	for _, on := range f.Buffers {
		if on {
			n++
		}
	}
	return n
}
