// Package imdb is the in-memory-database substrate the paper's workloads
// run on: relational tables of fixed-width 8-byte fields, deterministic
// synthetic data, and the record-alignment rules (Fig. 11) that the memory
// designs impose.
//
// Table values are generated lazily from a seeded mix function, so a
// "10M-record" table costs no memory until written; updates and inserts go
// to an overlay. Every executor result is therefore reproducible from
// (seed, schema) alone — the determinism invariant the tests lean on.
package imdb

import "fmt"

// FieldBytes is the fixed field width (Table 3: every field is 8 bytes).
const FieldBytes = 8

// Schema describes a table shape. Categorical maps a field index to its
// cardinality: such fields draw uniformly from {0..card-1} instead of the
// full uint64 range, which is how the benchmark's equality predicates
// (UPDATE ... WHERE f10 = z) achieve their 25% selectivity.
type Schema struct {
	Name        string
	Fields      int
	Records     int
	Categorical map[int]uint64
}

// RecordBytes returns the record size.
func (s Schema) RecordBytes() int { return s.Fields * FieldBytes }

// Validate checks the schema.
func (s Schema) Validate() error {
	if s.Fields <= 0 || s.Records < 0 {
		return fmt.Errorf("imdb: invalid schema %+v", s)
	}
	return nil
}

// PredicateField is the benchmark's selection column (f10), generated with
// four categories so that both "f10 > 2" (25% selectivity) and "f10 = 3"
// (25%) behave as the paper describes.
const PredicateField = 10

// PredicateCardinality is the category count of the benchmark predicate
// field.
const PredicateCardinality = 4

// Ta returns the paper's wide table: 128 fields (1KB records).
func Ta(records int) Schema {
	return Schema{Name: "Ta", Fields: 128, Records: records,
		Categorical: map[int]uint64{PredicateField: PredicateCardinality}}
}

// Tb returns the paper's narrow table: 16 fields (128B records).
func Tb(records int) Schema {
	return Schema{Name: "Tb", Fields: 16, Records: records,
		Categorical: map[int]uint64{PredicateField: PredicateCardinality}}
}

// Table is a lazily materialized relation.
type Table struct {
	Schema Schema
	seed   uint64
	// overlay holds values changed by UPDATE/INSERT, keyed by
	// record*Fields+field.
	overlay map[uint64]uint64
	// extraRecords counts rows appended past Schema.Records by INSERT.
	extraRecords int
}

// NewTable builds a table whose contents derive from seed.
func NewTable(s Schema, seed uint64) *Table {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return &Table{Schema: s, seed: seed, overlay: make(map[uint64]uint64)}
}

// Records returns the current record count (base plus inserted).
func (t *Table) Records() int { return t.Schema.Records + t.extraRecords }

// Fields returns the field count.
func (t *Table) Fields() int { return t.Schema.Fields }

// mix is a splitmix64-style hash: cheap, deterministic, well distributed.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *Table) key(rec, field int) uint64 {
	return uint64(rec)*uint64(t.Schema.Fields) + uint64(field)
}

// Value returns field `field` of record `rec`.
func (t *Table) Value(rec, field int) uint64 {
	if rec < 0 || rec >= t.Records() || field < 0 || field >= t.Schema.Fields {
		panic(fmt.Sprintf("imdb: value (%d,%d) out of range for %s", rec, field, t.Schema.Name))
	}
	k := t.key(rec, field)
	if v, ok := t.overlay[k]; ok {
		return v
	}
	if rec >= t.Schema.Records {
		return 0 // inserted records default to zero until written
	}
	v := mix(t.seed ^ mix(k))
	if card, ok := t.Schema.Categorical[field]; ok && card > 0 {
		v %= card
	}
	return v
}

// SetValue updates one field.
func (t *Table) SetValue(rec, field int, v uint64) {
	if rec < 0 || rec >= t.Records() || field < 0 || field >= t.Schema.Fields {
		panic(fmt.Sprintf("imdb: set (%d,%d) out of range for %s", rec, field, t.Schema.Name))
	}
	t.overlay[t.key(rec, field)] = v
}

// Append adds a record with the given field values (INSERT) and returns its
// index.
func (t *Table) Append(values []uint64) int {
	if len(values) != t.Schema.Fields {
		panic(fmt.Sprintf("imdb: append with %d values to %d-field table", len(values), t.Schema.Fields))
	}
	rec := t.Records()
	t.extraRecords++
	for f, v := range values {
		t.overlay[t.key(rec, f)] = v
	}
	return rec
}

// fracOfMax scales frac in [0,1] to the uint64 range. The naive
// uint64(frac*float64(^uint64(0))) is implementation-defined for frac just
// below 1: float64(^uint64(0)) rounds to 2^64, the product can round to
// exactly 2^64, and Go leaves the float→uint64 conversion of an
// out-of-range value unspecified. Instead scale by 2^53 — exact for every
// float64 in [0,1), since such values carry at most 53 significant bits —
// and shift the integer result up to the full range.
func fracOfMax(frac float64) uint64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return ^uint64(0)
	}
	return uint64(frac*(1<<53)) << 11
}

// SelectivityThreshold returns a predicate constant x such that
// "field > x" holds for approximately the requested fraction of the base
// records. Values are uniform over uint64, so the threshold is analytic.
func SelectivityThreshold(frac float64) uint64 {
	if frac <= 0 {
		return ^uint64(0)
	}
	if frac >= 1 {
		return 0
	}
	// 1-frac may round up to 1.0 for subnormal frac; fracOfMax clamps.
	return fracOfMax(1 - frac)
}

// Percentile returns the value v such that "field < v" selects
// approximately frac of uniform records.
func Percentile(frac float64) uint64 {
	return fracOfMax(frac)
}

// Alignment describes the record alignment a design requires (Fig. 11):
// records padded and grouped so that every group of GroupRecords records
// starts at a GroupBytes boundary.
type Alignment struct {
	GroupRecords int // N records per aligned group (SAM: stride reach)
	SegmentBytes int // GS-DRAM: records split into cacheline segments
}

// GroupOf returns the aligned group index of a record.
func (a Alignment) GroupOf(rec int) int {
	if a.GroupRecords <= 0 {
		return rec
	}
	return rec / a.GroupRecords
}

// Fragmentation estimates the wasted fraction when a table of the given
// record size is aligned in units of alignBytes (RC-NVM's KB-scale
// alignment wastes space whenever records do not pack evenly).
func Fragmentation(recordBytes, alignBytes int) float64 {
	if alignBytes <= 0 || recordBytes <= 0 {
		return 0
	}
	perUnit := alignBytes / recordBytes
	if perUnit == 0 {
		// Record larger than the unit: round up to whole units.
		units := (recordBytes + alignBytes - 1) / alignBytes
		return float64(units*alignBytes-recordBytes) / float64(units*alignBytes)
	}
	used := perUnit * recordBytes
	return float64(alignBytes-used) / float64(alignBytes)
}
