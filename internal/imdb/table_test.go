package imdb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSchemas(t *testing.T) {
	ta := Ta(1000)
	if ta.Fields != 128 || ta.RecordBytes() != 1024 {
		t.Fatalf("Ta: %+v", ta)
	}
	tb := Tb(1000)
	if tb.Fields != 16 || tb.RecordBytes() != 128 {
		t.Fatalf("Tb: %+v", tb)
	}
	if (Schema{Fields: 0}).Validate() == nil {
		t.Fatal("zero-field schema accepted")
	}
}

func TestValuesDeterministic(t *testing.T) {
	a := NewTable(Ta(100), 42)
	b := NewTable(Ta(100), 42)
	c := NewTable(Ta(100), 43)
	same, diff := 0, 0
	for r := 0; r < 100; r++ {
		for f := 0; f < 128; f += 17 {
			if a.Value(r, f) != b.Value(r, f) {
				t.Fatalf("same seed diverged at (%d,%d)", r, f)
			}
			if a.Value(r, f) == c.Value(r, f) {
				same++
			} else {
				diff++
			}
		}
	}
	if same > diff/100 {
		t.Fatalf("different seeds produce suspiciously equal data: %d same, %d diff", same, diff)
	}
}

func TestValueDistributionRoughlyUniform(t *testing.T) {
	// SelectivityThreshold relies on uniformity; check the top bit is fair.
	tb := NewTable(Tb(4000), 7)
	high := 0
	for r := 0; r < 4000; r++ {
		if tb.Value(r, 9) > math.MaxUint64/2 {
			high++
		}
	}
	if high < 1800 || high > 2200 {
		t.Fatalf("top-bit balance %d/4000", high)
	}
}

func TestOverlayUpdate(t *testing.T) {
	tb := NewTable(Tb(10), 1)
	orig := tb.Value(3, 5)
	tb.SetValue(3, 5, orig+1)
	if tb.Value(3, 5) != orig+1 {
		t.Fatal("update lost")
	}
	if tb.Value(3, 6) == orig+1 && tb.Value(4, 5) == orig+1 {
		t.Fatal("update leaked to other cells")
	}
}

func TestAppend(t *testing.T) {
	tb := NewTable(Tb(10), 1)
	vals := make([]uint64, 16)
	for i := range vals {
		vals[i] = uint64(i * 100)
	}
	rec := tb.Append(vals)
	if rec != 10 || tb.Records() != 11 {
		t.Fatalf("append landed at %d, records %d", rec, tb.Records())
	}
	if tb.Value(10, 3) != 300 {
		t.Fatalf("appended value = %d", tb.Value(10, 3))
	}
}

func TestAppendWrongWidthPanics(t *testing.T) {
	tb := NewTable(Tb(10), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("short append accepted")
		}
	}()
	tb.Append(make([]uint64, 3))
}

func TestOutOfRangePanics(t *testing.T) {
	tb := NewTable(Tb(10), 1)
	for name, fn := range map[string]func(){
		"value rec":   func() { tb.Value(10, 0) },
		"value field": func() { tb.Value(0, 16) },
		"set rec":     func() { tb.SetValue(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSelectivityThreshold(t *testing.T) {
	tb := NewTable(Tb(20000), 99)
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		x := SelectivityThreshold(frac)
		hits := 0
		for r := 0; r < 20000; r++ {
			if tb.Value(r, 9) > x {
				hits++
			}
		}
		got := float64(hits) / 20000
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("selectivity %.2f measured %.3f", frac, got)
		}
	}
	if SelectivityThreshold(0) != ^uint64(0) || SelectivityThreshold(1) != 0 {
		t.Fatal("threshold extremes")
	}
}

func TestPercentile(t *testing.T) {
	tb := NewTable(Tb(20000), 123)
	v := Percentile(0.1)
	hits := 0
	for r := 0; r < 20000; r++ {
		if tb.Value(r, 0) < v {
			hits++
		}
	}
	got := float64(hits) / 20000
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("percentile 0.1 measured %.3f", got)
	}
	if Percentile(0) != 0 || Percentile(1) != ^uint64(0) {
		t.Fatal("percentile extremes")
	}
}

// TestFracScalingEdges pins the numeric edges of the float→uint64 scaling:
// the old frac*float64(^uint64(0)) form rounded to exactly 2^64 for frac
// just below 1, making the conversion implementation-defined.
func TestFracScalingEdges(t *testing.T) {
	almostOne := math.Nextafter(1, 0) // 1 - 2^-53, the largest float64 < 1
	v := Percentile(almostOne)
	if want := uint64(1<<53-1) << 11; v != want {
		t.Fatalf("Percentile(almost 1) = %#x, want %#x", v, want)
	}
	if v >= ^uint64(0) {
		t.Fatalf("Percentile(almost 1) = %#x must stay below max", v)
	}
	if Percentile(almostOne) <= Percentile(0.5) {
		t.Fatal("Percentile not monotonic near 1")
	}
	// Exactly representable fractions keep their exact scaled value.
	if Percentile(0.5) != 1<<63 {
		t.Fatalf("Percentile(0.5) = %#x, want 2^63", Percentile(0.5))
	}
	if Percentile(0.25) != 1<<62 {
		t.Fatalf("Percentile(0.25) = %#x, want 2^62", Percentile(0.25))
	}
	// The mirrored threshold form: frac just above 0 means "select almost
	// nothing", so the threshold saturates at max (1-frac rounds to 1).
	tiny := math.Nextafter(0, 1)
	if x := SelectivityThreshold(tiny); x != ^uint64(0) {
		t.Fatalf("SelectivityThreshold(tiny) = %#x, want max", x)
	}
	if x := SelectivityThreshold(almostOne); x >= SelectivityThreshold(0.5) {
		t.Fatal("SelectivityThreshold not monotonic near 1")
	}
}

func TestAlignmentGroups(t *testing.T) {
	a := Alignment{GroupRecords: 4}
	if a.GroupOf(0) != 0 || a.GroupOf(3) != 0 || a.GroupOf(4) != 1 {
		t.Fatal("group mapping")
	}
	none := Alignment{}
	if none.GroupOf(7) != 7 {
		t.Fatal("no grouping should be identity")
	}
}

func TestFragmentation(t *testing.T) {
	// 128B records in 1KB units pack perfectly.
	if f := Fragmentation(128, 1024); f != 0 {
		t.Fatalf("perfect packing wastes %v", f)
	}
	// 100B records in 1KB units: 10 fit, 24B wasted.
	if f := Fragmentation(100, 1024); math.Abs(f-24.0/1024) > 1e-12 {
		t.Fatalf("fragmentation = %v", f)
	}
	// 1000B record in 512B units: 2 units, 24B wasted.
	if f := Fragmentation(1000, 512); math.Abs(f-24.0/1024) > 1e-12 {
		t.Fatalf("oversize fragmentation = %v", f)
	}
	if Fragmentation(0, 10) != 0 || Fragmentation(10, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestMixAvalanche(t *testing.T) {
	// Neighbouring keys must produce wildly different values (no strides in
	// the synthetic data itself).
	f := func(x uint64) bool {
		a, b := mix(x), mix(x+1)
		diff := a ^ b
		// At least 8 bits must differ.
		n := 0
		for diff != 0 {
			n++
			diff &= diff - 1
		}
		return n >= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCategoricalField(t *testing.T) {
	// The predicate field f10 draws from four categories with ~25% each.
	tb := NewTable(Tb(40000), 5)
	counts := map[uint64]int{}
	for r := 0; r < 40000; r++ {
		v := tb.Value(r, PredicateField)
		if v >= PredicateCardinality {
			t.Fatalf("categorical value %d out of range", v)
		}
		counts[v]++
	}
	for v, n := range counts {
		frac := float64(n) / 40000
		if frac < 0.23 || frac > 0.27 {
			t.Fatalf("category %d has share %.3f, want ~0.25", v, frac)
		}
	}
	// "f10 > 2" and "f10 = 3" therefore both select ~25%.
	gt2, eq3 := 0, 0
	for r := 0; r < 40000; r++ {
		v := tb.Value(r, PredicateField)
		if v > 2 {
			gt2++
		}
		if v == 3 {
			eq3++
		}
	}
	if gt2 != eq3 {
		t.Fatal("categorical predicate equivalence broken")
	}
}

func TestNonCategoricalFieldsFullRange(t *testing.T) {
	ta := NewTable(Ta(100), 6)
	big := 0
	for r := 0; r < 100; r++ {
		if ta.Value(r, 9) > 1<<32 {
			big++
		}
	}
	if big < 30 {
		t.Fatal("non-categorical field looks truncated")
	}
}
