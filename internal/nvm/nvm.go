// Package nvm holds the crossbar-RRAM personality RC-NVM runs on: Table 2
// timing (CL-tRCD-tRP = 17-35-1), write-pulse occupancy, the reshaped
// square subarray of RC-NVM-wd, and the dual-addressing geometry helpers
// behind the row/column symmetric access model.
package nvm

import "sam/internal/dram"

// RRAM returns the baseline crossbar configuration (re-exported from the
// device model so every consumer names it through this package).
func RRAM() dram.Config { return dram.RRAM() }

// ReshapedSquare returns the RC-NVM-wd configuration: subarrays reshaped to
// a square (2K x 2K cells per mat) so the column direction matches the row
// direction. The reshape multiplies global bitlines — the ~33% area cost
// Section 3.3.2 cites — and shrinks the effective row the open-page policy
// works with.
func ReshapedSquare() dram.Config {
	c := dram.RRAM()
	c.Name = "RRAM-square"
	// Square mats: as many rows as columns per subarray. The squarer
	// geometry leaves a much smaller row (1KB rank-level) for the open-page
	// policy, which is where RC-NVM's record-size sensitivity (Fig. 15i)
	// comes from.
	c.Geometry.RowBytes = 1024
	c.Geometry.RowsPerSubarray = 8192
	c.Geometry.SubarraysPerBank = 128
	return c
}

// Crossbar describes one crossbar mat for the dual-addressing model.
type Crossbar struct {
	Rows, Cols int // cell grid
}

// Square reports whether row- and column-direction accesses are symmetric.
func (x Crossbar) Square() bool { return x.Rows == x.Cols }

// RowAccessBits returns the bits one row-direction activation exposes.
func (x Crossbar) RowAccessBits() int { return x.Cols }

// ColAccessBits returns the bits one column-direction activation exposes;
// zero when the structure is not symmetric (RC-NVM requires the reshape or
// pays the bit-level gather cost).
func (x Crossbar) ColAccessBits() int {
	if !x.Square() {
		return 0
	}
	return x.Rows
}

// BitGatherAccesses returns how many column-direction accesses a
// word-granularity gather needs when the symmetry is at bit level: one per
// bit plane of the word (RC-NVM-bit, Section 3.3.2).
func BitGatherAccesses(wordBits, planeBits int) int {
	if planeBits <= 0 {
		return wordBits
	}
	n := wordBits / planeBits
	if n < 1 {
		n = 1
	}
	return n
}

// WriteEnergyRatio is the RRAM write-to-read energy ratio class the power
// model encodes (crossbar write pulses against near-zero standby).
func WriteEnergyRatio() float64 { return 3.25 }
