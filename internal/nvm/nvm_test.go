package nvm

import (
	"testing"

	"sam/internal/dram"
)

func TestRRAMPersonality(t *testing.T) {
	c := RRAM()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	d := dram.DDR4_2400()
	if c.Timing.TRCD <= d.Timing.TRCD {
		t.Error("RRAM activation should be slower than DRAM")
	}
	if c.Timing.TRP >= d.Timing.TRP {
		t.Error("RRAM precharge (non-destructive reads) should be near-free")
	}
	if c.Timing.TWRBurst == 0 {
		t.Error("crossbar writes need pulse spacing")
	}
	if c.Timing.TREFI <= d.Timing.TREFI {
		t.Error("non-volatile memory should not refresh on a DRAM cadence")
	}
}

func TestReshapedSquare(t *testing.T) {
	c := ReshapedSquare()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Geometry.RowBytes >= RRAM().Geometry.RowBytes {
		t.Error("reshaped square should expose smaller rows")
	}
	// Capacity must be preserved by the reshape (same cells, new aspect).
	cap1 := RRAM().Geometry.RowsPerBank() * RRAM().Geometry.RowBytes
	cap2 := c.Geometry.RowsPerBank() * c.Geometry.RowBytes
	if cap1 != cap2 {
		t.Errorf("reshape changed capacity: %d vs %d", cap1, cap2)
	}
}

func TestCrossbarSymmetry(t *testing.T) {
	sq := Crossbar{Rows: 2048, Cols: 2048}
	if !sq.Square() || sq.ColAccessBits() != 2048 || sq.RowAccessBits() != 2048 {
		t.Error("square crossbar should be fully symmetric")
	}
	rect := Crossbar{Rows: 512, Cols: 8192}
	if rect.Square() || rect.ColAccessBits() != 0 {
		t.Error("rectangular crossbar has no word-level column access")
	}
}

func TestBitGatherAccesses(t *testing.T) {
	// A 64-bit field gathered from 32-bit planes needs 2 accesses.
	if n := BitGatherAccesses(64, 32); n != 2 {
		t.Fatalf("gather = %d, want 2", n)
	}
	if n := BitGatherAccesses(64, 0); n != 64 {
		t.Fatal("bit-level symmetry needs one access per bit")
	}
	if n := BitGatherAccesses(8, 64); n != 1 {
		t.Fatal("plane wider than word still needs one access")
	}
}

func TestWriteEnergyRatio(t *testing.T) {
	if WriteEnergyRatio() <= 1 {
		t.Fatal("RRAM writes must cost more than reads")
	}
}
