// Package runner is the generic bounded worker-pool sweep runner behind
// the figure and sweep pipelines: every experiment in the paper's
// evaluation (Figs. 12-15) is a grid of independent (query, design,
// sweep-point) simulations, and this package fans such grids out across
// GOMAXPROCS workers while keeping the results deterministic.
//
// Guarantees:
//
//   - Bounded concurrency: at most Options.Workers goroutines run items,
//     and at most min(Workers, len(items)) goroutines are ever created —
//     never one per item. A single-worker pool runs inline on the caller's
//     goroutine, paying no dispatch overhead at all.
//   - Deterministic ordering: result i always corresponds to item i,
//     regardless of worker count or completion order.
//   - Full error aggregation: every failing item's error is collected and
//     returned via errors.Join, not just the first.
//   - Cancellation: once ctx is cancelled no new item starts; in-flight
//     items finish and the joined error includes ctx's cause.
//   - Panic containment: a panicking item is converted into that item's
//     error (with its stack) instead of crashing the whole sweep.
//
// Dispatch is chunked: workers draw contiguous index ranges, not single
// indices, so the per-item channel handoff is amortized over the chunk.
// Cheap items (single-design runs, small sweep cells) would otherwise spend
// a measurable share of the sweep on scheduler wakeups — the
// BenchmarkSweepParallelism regression this design removes.
//
// Workers must not share mutable state through the item function; each
// simulation run owns a fresh sim.System, which is what makes the fan-out
// sound (see internal/core).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Options configures one Map or Grid call.
type Options struct {
	// Workers bounds the number of concurrently running items.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is called after each item completes with
	// the number of completed items and the total. Calls are serialized,
	// so the callback needs no locking of its own, but it runs on worker
	// goroutines and should be cheap.
	OnProgress func(done, total int)
	// Observer, when non-nil, receives run-lifecycle callbacks for the
	// sweep: one SweepStarted per Map/Grid call, then per-item
	// started/finished callbacks from the worker goroutines (the observer
	// must be goroutine-safe). A nil Observer costs nothing — the fast
	// path has no per-item allocation or indirection.
	Observer SweepObserver
}

// SweepObserver receives run-lifecycle callbacks from Map and Grid — the
// hook the observability plane (internal/obs) uses to track job spans,
// queue waits, and worker occupancy without the pool knowing anything
// about metrics or logging.
type SweepObserver interface {
	// SweepStarted is called once per Map/Grid invocation, before any item
	// runs, with the item count. Every item is considered enqueued at this
	// point. The returned span receives the per-item callbacks; returning
	// nil disables them for this sweep.
	SweepStarted(total int) SweepSpan
}

// SweepSpan receives one sweep's per-item callbacks. Item indices are the
// Map item indices; worker is the pool worker slot running the item
// (0 for the inline single-worker path). Callbacks arrive from worker
// goroutines, concurrently across items; implementations must be
// goroutine-safe.
type SweepSpan interface {
	// JobStarted: item i began executing on worker w.
	JobStarted(i, worker int)
	// JobAnnotate attaches key=value to item i — e.g. the memo layer's
	// hit/miss attribution, delivered via Annotate from inside the item
	// function. It may arrive any time between JobStarted and JobFinished.
	JobAnnotate(i int, key, value string)
	// JobFinished: item i completed; err is the item's error (nil on
	// success). Items skipped by cancellation never start and never
	// finish.
	JobFinished(i, worker int, err error)
}

// jobCtxKey carries the current item's span reference through the context
// handed to the item function, so layers below the pool (the memo cache
// routing in internal/core) can annotate the job they run under.
type jobCtxKey struct{}

type jobRef struct {
	span SweepSpan
	i    int
}

// Annotate attaches key=value to the sweep item driving ctx, if ctx
// descends from an observed Map/Grid call; otherwise it is a no-op. This
// is how code inside an item function reports per-job attribution (memo
// hit/miss, retry counts) without threading the observer through every
// signature.
func Annotate(ctx context.Context, key, value string) {
	if r, ok := ctx.Value(jobCtxKey{}).(jobRef); ok {
		r.span.JobAnnotate(r.i, key, value)
	}
}

// workers resolves the effective worker count for n items.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in item order. fn receives the item's index so it can label its
// own errors; Map itself wraps only panics. On failure the returned slice
// still holds every successful result (failed slots keep R's zero value)
// and the error joins every per-item failure, plus the context cause if
// the sweep was cancelled.
func Map[T, R any](ctx context.Context, items []T, opts Options, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	res := make([]R, n)
	if n == 0 || ctx.Err() != nil {
		return res, ctx.Err()
	}
	errs := make([]error, n)
	workers := opts.workers(n)
	var span SweepSpan
	if opts.Observer != nil {
		span = opts.Observer.SweepStarted(n)
	}
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		done       int
	)
	progress := func() {
		if opts.OnProgress != nil {
			progressMu.Lock()
			done++
			opts.OnProgress(done, n)
			progressMu.Unlock()
		}
	}
	// runItem executes item i on worker w, bracketed by the span callbacks
	// when the sweep is observed. The nil-span fast path adds no context
	// allocation and no calls — the zero-overhead contract the alloc pin
	// in runner_test.go enforces.
	runItem := func(ctx context.Context, i, w int) {
		if span != nil {
			span.JobStarted(i, w)
			ctx = context.WithValue(ctx, jobCtxKey{}, jobRef{span, i})
		}
		errs[i] = runOne(ctx, i, items[i], fn, &res[i])
		if span != nil {
			span.JobFinished(i, w, errs[i])
		}
		progress()
	}
	if workers == 1 {
		// Degenerate pool: run every item inline on this goroutine. Same
		// semantics — per-item cancellation check, panic containment,
		// serialized progress — with zero goroutine/channel overhead, so a
		// Workers:1 (or single-CPU) sweep costs exactly a for loop.
		for i := 0; i < n && ctx.Err() == nil; i++ {
			runItem(ctx, i, 0)
		}
		return res, joinWith(ctx, errs)
	}
	// Chunked dispatch: hand each worker a contiguous index range so the
	// channel handoff (and the attendant scheduler wakeup) is paid once per
	// chunk, not once per item. ~8 chunks per worker keeps the tail balanced
	// while amortizing dispatch; cancellation is still checked per item.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	type chunkRange struct{ lo, hi int }
	chunks := make(chan chunkRange)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sp := range chunks {
				for i := sp.lo; i < sp.hi && ctx.Err() == nil; i++ {
					runItem(ctx, i, w)
				}
			}
		}(w)
	}
feed:
	for lo := 0; lo < n; lo += chunk {
		// The explicit Err check keeps the select's random choice from
		// feeding extra chunks once cancellation has been observed.
		if ctx.Err() != nil {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case chunks <- chunkRange{lo, hi}:
		case <-ctx.Done():
			break feed
		}
	}
	close(chunks)
	wg.Wait()
	return res, joinWith(ctx, errs)
}

// joinWith joins the per-item errors plus the context cause, if any.
func joinWith(ctx context.Context, errs []error) error {
	var all []error
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	return errors.Join(all...)
}

// runOne executes one item, converting a panic into its error.
func runOne[T, R any](ctx context.Context, i int, item T, fn func(context.Context, int, T) (R, error), out *R) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: item %d panicked: %v\n%s", i, p, debug.Stack())
		}
	}()
	r, ferr := fn(ctx, i, item)
	if ferr != nil {
		return ferr
	}
	*out = r
	return nil
}

// Grid applies fn to the cross product as x bs on one shared worker pool
// and returns results indexed [i][j] like the nested loops it replaces.
// Ordering, error aggregation, cancellation, and panic handling follow
// Map; the whole grid is a single flat sweep, so a slow row cannot
// serialize the rows behind it.
func Grid[A, B, R any](ctx context.Context, as []A, bs []B, opts Options, fn func(ctx context.Context, i, j int, a A, b B) (R, error)) ([][]R, error) {
	type cell struct{ i, j int }
	cells := make([]cell, 0, len(as)*len(bs))
	for i := range as {
		for j := range bs {
			cells = append(cells, cell{i, j})
		}
	}
	flat, err := Map(ctx, cells, opts, func(ctx context.Context, _ int, c cell) (R, error) {
		return fn(ctx, c.i, c.j, as[c.i], bs[c.j])
	})
	out := make([][]R, len(as))
	for i := range out {
		out[i] = flat[i*len(bs) : (i+1)*len(bs)]
	}
	return out, err
}
