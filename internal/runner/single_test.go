package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightDedup: concurrent callers on one key coalesce onto the
// leader's execution. A caller that only reaches Do after the leader
// completed legally re-executes (the group holds no history), so the
// invariant is executions + shared == callers, with every result correct;
// the gate keeps the leader in flight until every caller has started, so
// in practice executions is 1.
func TestFlightDedup(t *testing.T) {
	var f Flight[int]
	var execs, sharedCount atomic.Int32
	gate := make(chan struct{})
	ready := make(chan struct{}, 16)
	const callers = 16

	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready <- struct{}{}
			v, shared, err := f.Do("k", func() (int, error) {
				execs.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if v != 42 {
				t.Errorf("Do = %d, want 42", v)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	for i := 0; i < callers; i++ {
		<-ready
	}
	close(gate)
	wg.Wait()

	if int(execs.Load())+int(sharedCount.Load()) != callers {
		t.Fatalf("executions (%d) + shared (%d) != callers (%d)",
			execs.Load(), sharedCount.Load(), callers)
	}
	if execs.Load() < 1 {
		t.Fatal("fn never executed")
	}
	if f.InFlight() != 0 {
		t.Fatalf("InFlight = %d after completion, want 0", f.InFlight())
	}
}

// TestFlightSequentialReexecutes: once a call completes, the key leaves the
// group and a later Do runs fn again (caching is the layer above).
func TestFlightSequentialReexecutes(t *testing.T) {
	var f Flight[string]
	execs := 0
	for i := 0; i < 3; i++ {
		v, shared, err := f.Do("k", func() (string, error) {
			execs++
			return "v", nil
		})
		if err != nil || v != "v" || shared {
			t.Fatalf("Do = (%q, %v, %v)", v, shared, err)
		}
	}
	if execs != 3 {
		t.Fatalf("fn executed %d times, want 3", execs)
	}
}

// TestFlightErrorPropagates: the leader's error reaches every sharer, the
// failed key is not poisoned, and a retry succeeds.
func TestFlightErrorPropagates(t *testing.T) {
	var f Flight[int]
	boom := errors.New("boom")
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = f.Do("k", func() (int, error) {
			close(started)
			<-gate
			return 0, boom
		})
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stragglers that miss the in-flight window re-execute; their
			// fn fails the same way, so every caller must observe boom.
			_, _, errs[i] = f.Do("k", func() (int, error) { return 0, boom })
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want boom", i, err)
		}
	}

	// The key must be free again and succeed on retry.
	v, shared, err := f.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || shared || err != nil {
		t.Fatalf("retry Do = (%d, %v, %v), want (7, false, nil)", v, shared, err)
	}
}

// TestFlightDistinctKeysParallel: different keys never block each other.
func TestFlightDistinctKeysParallel(t *testing.T) {
	var f Flight[int]
	aInside := make(chan struct{})
	aRelease := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do("a", func() (int, error) {
			close(aInside)
			<-aRelease
			return 1, nil
		})
	}()
	<-aInside
	// With "a" still in flight, "b" must complete immediately.
	v, shared, err := f.Do("b", func() (int, error) { return 2, nil })
	if v != 2 || shared || err != nil {
		t.Fatalf("Do(b) = (%d, %v, %v)", v, shared, err)
	}
	if f.InFlight() != 1 {
		t.Fatalf("InFlight = %d with a still executing, want 1", f.InFlight())
	}
	close(aRelease)
	wg.Wait()
}
