package runner

import "sync"

// Flight is a generic singleflight group: concurrent Do calls with the
// same key share one execution of fn. It is the in-flight companion to a
// result cache — the cache stops *repeated* work, the flight stops
// *simultaneous* work (two sweep workers needing the same baseline point
// run it once and both get the leader's result).
//
// Unlike golang.org/x/sync/singleflight this version is generic (no
// interface{} boxing on the simulator's result values) and deliberately
// minimal: no Forget, no DoChan — completed keys leave the group
// immediately, so a later Do with the same key re-executes fn (the layer
// above is expected to consult its cache first).
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

// flightCall is one in-flight execution.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn under key, coalescing concurrent calls: the first caller
// (the leader) runs fn; callers arriving before the leader finishes wait
// and receive the leader's result with shared=true. Errors propagate to
// every waiter. A panic in fn is converted into a join on the leader only;
// waiters would deadlock, so fn must not panic — the runner pool's
// recovery wrapper (Map/Grid) already guarantees that for simulation work,
// and the memo layer passes only error-returning closures.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// InFlight reports how many keys are currently executing.
func (f *Flight[V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
