package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderDeterministic(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		res, err := Map(context.Background(), items, Options{Workers: workers},
			func(_ context.Context, i int, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range res {
			if r != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapCollectsAllErrors(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), items, Options{Workers: 3},
		func(_ context.Context, i int, v int) (int, error) {
			if v%2 == 1 {
				return 0, fmt.Errorf("item %d: %w", i, sentinel)
			}
			return v, nil
		})
	if err == nil {
		t.Fatal("want joined error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
	// Every failure must be present, not just the first.
	for _, want := range []string{"item 1", "item 3", "item 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
}

func TestMapPartialResultsSurviveErrors(t *testing.T) {
	res, err := Map(context.Background(), []int{1, 2, 3}, Options{Workers: 2},
		func(_ context.Context, i int, v int) (int, error) {
			if i == 1 {
				return 0, errors.New("middle fails")
			}
			return v * 10, nil
		})
	if err == nil {
		t.Fatal("want error")
	}
	if res[0] != 10 || res[1] != 0 || res[2] != 30 {
		t.Fatalf("partial results wrong: %v", res)
	}
}

func TestMapPanicBecomesItemError(t *testing.T) {
	res, err := Map(context.Background(), []int{0, 1, 2}, Options{Workers: 2},
		func(_ context.Context, i int, v int) (int, error) {
			if i == 1 {
				panic("kaboom")
			}
			return v + 1, nil
		})
	if err == nil {
		t.Fatal("want panic converted to error")
	}
	if !strings.Contains(err.Error(), "item 1 panicked: kaboom") {
		t.Fatalf("panic error missing context: %v", err)
	}
	if res[0] != 1 || res[2] != 3 {
		t.Fatalf("other items lost: %v", res)
	}
}

func TestMapBoundsConcurrencyAndGoroutines(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), items, Options{Workers: workers},
		func(_ context.Context, i int, _ int) (int, error) {
			n := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	items := make([]int, 1000)
	stop := make(chan struct{})
	var once sync.Once
	start := time.Now()
	_, err := Map(ctx, items, Options{Workers: 2},
		func(_ context.Context, i int, _ int) (int, error) {
			started.Add(1)
			once.Do(func() {
				cancel()
				close(stop)
			})
			<-stop // every in-flight item returns once cancel has fired
			return 0, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in joined error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	// Only items already picked up may have run; the bulk must be skipped.
	if n := started.Load(); n > 10 {
		t.Fatalf("%d items started after cancellation window, want a handful", n)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, []int{1, 2, 3}, Options{},
		func(_ context.Context, i int, v int) (int, error) {
			ran.Add(1)
			return v, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran on a dead context", ran.Load())
	}
}

func TestMapProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	n := 17
	items := make([]int, n)
	_, err := Map(context.Background(), items, Options{
		Workers: 4,
		OnProgress: func(done, total int) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
		},
	}, func(_ context.Context, i int, v int) (int, error) { return v, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("%d progress calls, want %d", len(seen), n)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress not monotonic: %v", seen)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	res, err := Map(context.Background(), nil, Options{},
		func(_ context.Context, i int, v int) (int, error) { return v, nil })
	if err != nil || len(res) != 0 {
		t.Fatalf("empty map: res=%v err=%v", res, err)
	}
}

func TestGridShapeAndOrder(t *testing.T) {
	as := []string{"a", "b", "c"}
	bs := []int{10, 20}
	res, err := Grid(context.Background(), as, bs, Options{Workers: 4},
		func(_ context.Context, i, j int, a string, b int) (string, error) {
			return fmt.Sprintf("%s%d", a, b), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(as) {
		t.Fatalf("%d rows", len(res))
	}
	for i, a := range as {
		for j, b := range bs {
			if want := fmt.Sprintf("%s%d", a, b); res[i][j] != want {
				t.Fatalf("res[%d][%d] = %q, want %q", i, j, res[i][j], want)
			}
		}
	}
}

func TestGridErrorsCarryCoordinates(t *testing.T) {
	_, err := Grid(context.Background(), []int{0, 1}, []int{0, 1}, Options{},
		func(_ context.Context, i, j int, a, b int) (int, error) {
			if i == 1 && j == 0 {
				return 0, fmt.Errorf("cell (%d,%d) failed", i, j)
			}
			return 0, nil
		})
	if err == nil || !strings.Contains(err.Error(), "cell (1,0) failed") {
		t.Fatalf("grid error lost coordinates: %v", err)
	}
}

func TestOptionsWorkerClamp(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 100, -1}, // GOMAXPROCS: just assert >= 1 below
		{-3, 5, -1},
		{8, 3, 3},
		{2, 100, 2},
		{5, 0, 1},
	}
	for _, c := range cases {
		got := Options{Workers: c.workers}.workers(c.n)
		if c.want >= 0 && got != c.want {
			t.Errorf("workers(%d) with Workers=%d: got %d, want %d", c.n, c.workers, got, c.want)
		}
		if got < 1 {
			t.Errorf("workers(%d) with Workers=%d: got %d < 1", c.n, c.workers, got)
		}
	}
}

// TestMapNilObserverZeroAllocs pins the nil-observer fast path: an
// unobserved Workers:1 Map must cost a constant number of allocations
// (the two result slices) regardless of item count — no per-item span
// contexts, no callback machinery. alloccheck.sh runs this pin; adding
// any per-item allocation to the fast path is a regression.
func TestMapNilObserverZeroAllocs(t *testing.T) {
	items := make([]int, 1024)
	fn := func(_ context.Context, _ int, v int) (int, error) { return v, nil }
	ctx := context.Background()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Map(ctx, items, Options{Workers: 1}, fn); err != nil {
			t.Fatal(err)
		}
	})
	// The fixed cost is the res and errs slices (plus small rounding
	// slack); anything scaling with len(items) lands far above this.
	if allocs > 8 {
		t.Fatalf("nil-observer Map allocates %.0f/run for 1024 items — per-item allocation crept into the fast path", allocs)
	}
}
