package runner

import (
	"strings"
	"testing"
)

func TestDomainsPerLaneOrderAcrossBarriers(t *testing.T) {
	const lanes, items = 5, 200
	d := NewDomains(lanes, 2)
	var got [lanes][]int
	for i := 0; i < items; i++ {
		for lane := 0; lane < lanes; lane++ {
			lane, i := lane, i
			d.Submit(lane, func() { got[lane] = append(got[lane], i) })
		}
		if i == items/2 {
			// A mid-stream barrier must not disturb per-lane FIFO order,
			// and the pool must stay usable after it.
			d.Barrier()
		}
	}
	d.Close()
	for lane := 0; lane < lanes; lane++ {
		if len(got[lane]) != items {
			t.Fatalf("lane %d ran %d items, want %d", lane, len(got[lane]), items)
		}
		for i, v := range got[lane] {
			if v != i {
				t.Fatalf("lane %d item %d ran out of order (got submission %d)", lane, i, v)
			}
		}
	}
}

func TestDomainsLanesRunConcurrently(t *testing.T) {
	// Two lanes on two workers rendezvous with each other: if the pool
	// serialized lanes, this would deadlock (and the test would time out).
	d := NewDomains(2, 2)
	defer d.Close()
	a, b := make(chan struct{}), make(chan struct{})
	d.Submit(0, func() { close(a); <-b })
	d.Submit(1, func() { <-a; close(b) })
	d.Barrier()
}

func TestDomainsWorkerClamp(t *testing.T) {
	auto := NewDomains(4, 0)
	if got := auto.Workers(); got != 4 {
		t.Fatalf("auto workers = %d, want one per lane", got)
	}
	auto.Close()
	clamped := NewDomains(2, 8)
	if got := clamped.Workers(); got != 2 {
		t.Fatalf("workers = %d, want clamped to lane count", got)
	}
	clamped.Close()
}

func TestDomainsPanicPropagatesAtBarrier(t *testing.T) {
	d := NewDomains(3, 3)
	d.Submit(0, func() { panic("boom") })
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Barrier did not re-raise the item panic")
		}
		if err, ok := p.(error); !ok || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("re-raised panic lost the cause: %v", p)
		}
	}()
	d.Barrier()
}
