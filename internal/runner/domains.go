package runner

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Domains is a reusable pool of worker goroutines for ordered work lanes —
// the execution substrate behind the simulator's per-channel event domains.
// Each lane (one per channel) is statically assigned to one worker
// (lane % workers), and every worker consumes its queue FIFO, which yields
// the two guarantees the sharded run engine needs:
//
//   - Per-lane order: items submitted to a lane run in submission order,
//     because a lane's items all land on one worker's FIFO queue.
//   - Cross-lane parallelism: different lanes on different workers run
//     concurrently.
//
// Submit is asynchronous with bounded queues (back-pressure blocks the
// producer, keeping staged work in flight bounded), so the producer
// overlaps its own work — staging the next epoch — with lane execution.
// Barrier flushes every queue and establishes a happens-before edge between
// all completed items and the caller, making lane-owned state safe to read
// until the next Submit.
//
// A panicking item does not kill its worker: the first panic is captured
// (with its stack), subsequent items are drained without running, and the
// panic is re-raised on the caller's goroutine at the next Barrier or
// Close — the same containment contract as Map, adapted to an asynchronous
// pool.
type Domains struct {
	workers []domainWorker
	pulse   func(worker int) // nil = unobserved; set before workers start
	wg      sync.WaitGroup

	mu       sync.Mutex
	panicked error
}

// domainQueueDepth bounds each worker's pending-item queue. Deep enough to
// keep a worker busy while the producer stages the next batch; shallow
// enough that a stalled worker quickly back-pressures the producer instead
// of accumulating unbounded staged state.
const domainQueueDepth = 4

type domainWorker struct {
	in chan domainItem
}

type domainItem struct {
	fn   func()
	sync *sync.WaitGroup // barrier token: Done and skip fn (fn is nil)
}

// NewDomains starts a pool serving lanes lanes with at most workers worker
// goroutines (workers <= 0 selects one per lane; workers is clamped to
// lanes). The pool must be Closed to release the goroutines.
func NewDomains(lanes, workers int) *Domains {
	return NewDomainsPulse(lanes, workers, nil)
}

// NewDomainsPulse is NewDomains with a liveness heartbeat attached: pulse,
// when non-nil, is called with the worker's index after each executed item
// — the stall watchdog's signal that a domain worker is still making
// progress. It runs on the worker goroutine and must be cheap and
// goroutine-safe. A nil pulse is the zero-overhead fast path (one nil
// check per item, no allocation).
func NewDomainsPulse(lanes, workers int, pulse func(worker int)) *Domains {
	if lanes < 1 {
		lanes = 1
	}
	if workers <= 0 || workers > lanes {
		workers = lanes
	}
	d := &Domains{workers: make([]domainWorker, workers), pulse: pulse}
	for w := range d.workers {
		d.workers[w].in = make(chan domainItem, domainQueueDepth)
		d.wg.Add(1)
		go d.serve(w, d.workers[w].in)
	}
	return d
}

// Workers returns the number of worker goroutines serving the lanes.
func (d *Domains) Workers() int { return len(d.workers) }

// serve is one worker's loop.
func (d *Domains) serve(w int, in chan domainItem) {
	defer d.wg.Done()
	for item := range in {
		if item.sync != nil {
			item.sync.Done()
			continue
		}
		d.mu.Lock()
		dead := d.panicked != nil
		d.mu.Unlock()
		if dead {
			continue // drain without running; Barrier will re-raise
		}
		d.run(item.fn)
		if d.pulse != nil {
			d.pulse(w)
		}
	}
}

// run executes one item, capturing the first panic.
func (d *Domains) run(fn func()) {
	defer func() {
		if p := recover(); p != nil {
			d.mu.Lock()
			if d.panicked == nil {
				d.panicked = fmt.Errorf("runner: domain item panicked: %v\n%s", p, debug.Stack())
			}
			d.mu.Unlock()
		}
	}()
	fn()
}

// Submit queues fn on lane's worker. It blocks only when that worker's
// queue is full (back-pressure). fn runs after every previously submitted
// item of every lane sharing the worker, and in particular after every
// earlier item of the same lane.
func (d *Domains) Submit(lane int, fn func()) {
	d.workers[lane%len(d.workers)].in <- domainItem{fn: fn}
}

// Barrier blocks until every item submitted before the call has completed,
// then re-raises the first captured item panic, if any. On return (without
// panic) the caller may freely read state owned by any lane.
func (d *Domains) Barrier() {
	var token sync.WaitGroup
	token.Add(len(d.workers))
	for w := range d.workers {
		d.workers[w].in <- domainItem{sync: &token}
	}
	token.Wait()
	d.mu.Lock()
	p := d.panicked
	d.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// Close drains every queue, stops the workers, and re-raises any captured
// panic. The pool must not be used after Close.
func (d *Domains) Close() {
	for w := range d.workers {
		close(d.workers[w].in)
	}
	d.wg.Wait()
	d.mu.Lock()
	p := d.panicked
	d.mu.Unlock()
	if p != nil {
		panic(p)
	}
}
