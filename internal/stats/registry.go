package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Registry is a named-instrument store: counters, gauges, and histograms
// registered under stable string names, with a snapshot-and-merge API so
// sweep workers (internal/runner) can each record into a private registry
// and the aggregator can combine them deterministically afterwards.
//
// Concurrency contract: instrument *registration* (Counter/Gauge/Histogram
// lookups) is goroutine-safe; the returned instruments themselves are not.
// The intended pattern is one registry per simulation run — each run is
// goroutine-confined — with cross-run aggregation done on Snapshots, which
// are plain values. Merging snapshots in item order yields byte-identical
// results for any worker count.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. Later lookups of an existing name ignore the
// bounds argument (the first registration wins), so every run of the same
// code registers identical shapes and snapshots stay mergeable.
func (r *Registry) Histogram(name string, bounds ...uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// GaugeSnap is a gauge's frozen state.
type GaugeSnap struct {
	Cur     float64 `json:"cur"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Sum     float64 `json:"sum"`
	Samples uint64  `json:"samples"`
}

// Mean returns the snapshot's arithmetic mean, or 0 with no samples.
func (g GaugeSnap) Mean() float64 {
	if g.Samples == 0 {
		return 0
	}
	return g.Sum / float64(g.Samples)
}

// HistogramSnap is a histogram's frozen state. Counts has one entry per
// bound plus the implicit +Inf overflow bucket.
type HistogramSnap struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
}

// Mean returns the snapshot's mean observation, or 0 with none.
func (h HistogramSnap) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Quantile returns an upper bound for quantile q in [0,1] from the bucket
// bounds (the overflow bucket reports the observed max), mirroring
// Histogram.Quantile.
func (h HistogramSnap) Quantile(q float64) uint64 {
	if h.Total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Snapshot is a registry's frozen, mergeable state. It is a plain value:
// safe to send across goroutines, compare, and serialize. encoding/json
// emits map keys in sorted order, so the JSON form is deterministic.
type Snapshot struct {
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnap     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnap, len(r.gauges)),
		Histograms: make(map[string]HistogramSnap, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnap{Cur: g.Cur(), Min: g.Min(), Max: g.Max(), Sum: g.Sum(), Samples: g.Samples()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnap{Bounds: h.Bounds(), Counts: h.Counts(), Total: h.Total(), Sum: h.Sum(), Max: h.Max()}
	}
	return s
}

// Merge folds o into s: counters and histogram buckets add, gauge extrema
// combine. Histograms sharing a name must share bucket bounds — mismatched
// shapes mean the two snapshots came from different instrument versions,
// which is an error, not something to paper over. Merging is commutative
// on the totals and deterministic for any merge order; merging in item
// order additionally makes Cur fields order-independent.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil {
		return nil
	}
	for name, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64)
		}
		s.Counters[name] += v
	}
	for name, og := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]GaugeSnap)
		}
		g, ok := s.Gauges[name]
		switch {
		case !ok || g.Samples == 0:
			g = og
		case og.Samples > 0:
			if og.Min < g.Min {
				g.Min = og.Min
			}
			if og.Max > g.Max {
				g.Max = og.Max
			}
			g.Sum += og.Sum
			g.Samples += og.Samples
			g.Cur = og.Cur // the merged-in run is the more recent one
		}
		s.Gauges[name] = g
	}
	for name, oh := range o.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnap)
		}
		h, ok := s.Histograms[name]
		if !ok || h.Total == 0 && len(h.Counts) == 0 {
			s.Histograms[name] = cloneHistSnap(oh)
			continue
		}
		if !equalBounds(h.Bounds, oh.Bounds) {
			return fmt.Errorf("stats: histogram %q bounds mismatch: %v vs %v", name, h.Bounds, oh.Bounds)
		}
		for i := range h.Counts {
			h.Counts[i] += oh.Counts[i]
		}
		h.Total += oh.Total
		h.Sum += oh.Sum
		if oh.Max > h.Max {
			h.Max = oh.Max
		}
		s.Histograms[name] = h
	}
	return nil
}

func cloneHistSnap(h HistogramSnap) HistogramSnap {
	h.Bounds = append([]uint64(nil), h.Bounds...)
	h.Counts = append([]uint64(nil), h.Counts...)
	return h
}

func equalBounds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Names returns every instrument name in the snapshot, sorted — the stable
// iteration order for rendering.
func (s *Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
