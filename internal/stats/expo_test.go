package stats

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// expoSnapshot builds the fixture rendered against the golden file: one of
// each instrument kind, with names exercising the character sanitization.
func expoSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("obs.jobs.finished").Add(7)
	r.Counter("mc.retries").Add(3)
	g := r.Gauge("obs.jobs.inflight")
	g.Set(5)
	g.Set(2.5)
	h := r.Histogram("mc.lat-read.normal", 10, 100, 1000)
	for _, v := range []uint64{1, 9, 10, 55, 120, 4000} {
		h.Observe(v)
	}
	return r.Snapshot()
}

// TestWritePromGolden pins the exposition rendering byte-for-byte: family
// ordering (counters, gauges, histograms — each sorted), HELP/TYPE
// headers, the _total counter suffix, name sanitization, and cumulative
// histogram buckets. Regenerate with -update-golden after a deliberate
// format change.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, "sam", expoSnapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition output diverged from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePromWellFormed validates the exposition structure on the
// fixture: every sample line belongs to an announced family, HELP
// precedes TYPE precedes samples, and histogram buckets are cumulative
// with the +Inf bucket equal to _count.
func TestWritePromWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, "sam", expoSnapshot()); err != nil {
		t.Fatal(err)
	}
	type family struct {
		typ     string
		hasHelp bool
	}
	families := map[string]*family{}
	var bucketCum map[string]uint64 // histogram -> last cumulative bucket count
	bucketCum = map[string]uint64{}
	infCount := map[string]uint64{}
	countVal := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if families[name] != nil {
				t.Fatalf("duplicate HELP for %s", name)
			}
			families[name] = &family{hasHelp: true}
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			name, typ := f[2], f[3]
			fam := families[name]
			if fam == nil || !fam.hasHelp {
				t.Fatalf("TYPE before HELP for %s", name)
			}
			fam.typ = typ
		default:
			name := line[:strings.IndexAny(line, "{ ")]
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b, ok := strings.CutSuffix(name, suf); ok {
					if families[b] != nil && families[b].typ == "histogram" {
						base = b
					}
					break
				}
			}
			fam := families[base]
			if fam == nil {
				t.Fatalf("sample %q outside any announced family", line)
			}
			if fam.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
				val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				if err != nil {
					t.Fatalf("bucket value in %q: %v", line, err)
				}
				if val < bucketCum[base] {
					t.Fatalf("non-cumulative bucket in %q: %d < %d", line, val, bucketCum[base])
				}
				bucketCum[base] = val
				if strings.Contains(line, `le="+Inf"`) {
					infCount[base] = val
				}
			}
			if fam.typ == "histogram" && strings.HasSuffix(name, "_count") {
				val, _ := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				countVal[base] = val
			}
		}
	}
	for base, inf := range infCount {
		if countVal[base] != inf {
			t.Errorf("%s: +Inf bucket %d != _count %d", base, inf, countVal[base])
		}
	}
	if len(infCount) == 0 {
		t.Fatal("fixture rendered no histogram buckets")
	}
}

// TestPromName pins the sanitization rule.
func TestPromName(t *testing.T) {
	for name, want := range map[string]string{
		"mc.lat-read.normal": "sam_mc_lat_read_normal",
		"obs.jobs.inflight":  "sam_obs_jobs_inflight",
		"plain":              "sam_plain",
		"a+b/c":              "sam_a_b_c",
	} {
		if got := PromName("sam", name); got != want {
			t.Errorf("PromName(sam, %q) = %q, want %q", name, got, want)
		}
	}
}

// TestSnapshotDelta covers the rate-derivation helper: counters and
// histograms subtract (clamped at zero on resets), gauges pass through.
func TestSnapshotDelta(t *testing.T) {
	prev := &Snapshot{
		Counters: map[string]uint64{"a": 5, "reset": 100},
		Histograms: map[string]HistogramSnap{
			"h": {Bounds: []uint64{10}, Counts: []uint64{2, 1}, Total: 3, Sum: 40},
		},
	}
	cur := &Snapshot{
		Counters: map[string]uint64{"a": 12, "reset": 30, "new": 4},
		Gauges:   map[string]GaugeSnap{"g": {Cur: 7}},
		Histograms: map[string]HistogramSnap{
			"h": {Bounds: []uint64{10}, Counts: []uint64{5, 2}, Total: 7, Sum: 90},
		},
	}
	d := cur.Delta(prev)
	if d.Counters["a"] != 7 || d.Counters["new"] != 4 {
		t.Errorf("counter deltas wrong: %v", d.Counters)
	}
	if d.Counters["reset"] != 30 {
		t.Errorf("reset counter should clamp to current value, got %d", d.Counters["reset"])
	}
	if g := d.Gauges["g"]; g.Cur != 7 {
		t.Errorf("gauge should pass through, got %+v", g)
	}
	h := d.Histograms["h"]
	if h.Total != 4 || h.Sum != 50 || h.Counts[0] != 3 || h.Counts[1] != 1 {
		t.Errorf("histogram delta wrong: %+v", h)
	}
	// cur must be unmodified (Delta clones).
	if cur.Histograms["h"].Counts[0] != 5 {
		t.Error("Delta mutated its receiver")
	}
	if nilDelta := cur.Delta(nil); nilDelta.Counters["a"] != 12 {
		t.Error("Delta(nil) should equal the snapshot")
	}
}
