package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// fillRegistry records a deterministic workload slice [lo, hi) into a fresh
// registry, standing in for one sweep worker's run.
func fillRegistry(lo, hi int) *Registry {
	r := NewRegistry()
	c := r.Counter("requests")
	g := r.Gauge("occupancy")
	h := r.Histogram("latency", 10, 100, 1000)
	for i := lo; i < hi; i++ {
		c.Add(1)
		g.Set(float64(i % 7))
		h.Observe(uint64(i * 3))
	}
	return r
}

func TestRegistryInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned distinct gauges")
	}
	h := r.Histogram("h", 1, 2, 3)
	if r.Histogram("h", 9, 9, 9, 9) != h {
		t.Fatal("same name returned distinct histograms")
	}
	// First registration wins: the second bounds argument is ignored.
	if b := h.Bounds(); len(b) != 3 || b[0] != 1 {
		t.Fatalf("histogram bounds overwritten: %v", b)
	}
}

func TestSnapshotMergeEqualsSerial(t *testing.T) {
	// One run over [0,100) must equal four merged runs over its quarters —
	// the property the sweep runner relies on for worker-count invariance.
	serial := fillRegistry(0, 100).Snapshot()
	merged := &Snapshot{}
	for _, part := range [][2]int{{0, 25}, {25, 50}, {50, 75}, {75, 100}} {
		if err := merged.Merge(fillRegistry(part[0], part[1]).Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("merged != serial:\n%s\n%s", a, b)
	}
}

func TestSnapshotMergeBoundsMismatch(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", 1, 2, 3).Observe(1)
	b := NewRegistry()
	b.Histogram("h", 10, 20).Observe(1)
	s := a.Snapshot()
	if err := s.Merge(b.Snapshot()); err == nil {
		t.Fatal("merging mismatched histogram bounds did not error")
	}
}

func TestSnapshotMergeDoesNotAliasSource(t *testing.T) {
	src := fillRegistry(0, 10).Snapshot()
	dst := &Snapshot{}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	dst.Histograms["latency"].Counts[0] += 100
	if src.Histograms["latency"].Counts[0] == dst.Histograms["latency"].Counts[0] {
		t.Fatal("merge aliased the source snapshot's count slice")
	}
}

func TestHistogramSnapQuantileMirrorsLive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10, 100, 1000)
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	snap := r.Snapshot().Histograms["h"]
	for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.99, 1} {
		if got, want := snap.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("q=%v: snapshot %d vs live %d", q, got, want)
		}
	}
	if snap.Mean() != h.Mean() {
		t.Fatalf("mean: snapshot %v vs live %v", snap.Mean(), h.Mean())
	}
}

func TestGaugeRejectsNonFinite(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(math.NaN())
	g.Set(math.Inf(1))
	g.Set(math.Inf(-1))
	g.Set(3)
	if g.Samples() != 2 {
		t.Fatalf("non-finite samples recorded: %d samples", g.Samples())
	}
	if g.Min() != 3 || g.Max() != 5 || g.Sum() != 8 {
		t.Fatalf("extrema poisoned: min=%v max=%v sum=%v", g.Min(), g.Max(), g.Sum())
	}
	if math.IsNaN(g.Mean()) {
		t.Fatal("NaN leaked into the mean")
	}
}

func TestSnapshotNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Gauge("a")
	r.Histogram("m", 1)
	names := r.Snapshot().Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names not sorted: %v", names)
	}
}
