package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders Snapshots in the Prometheus text exposition format
// (version 0.0.4) — the live /metrics surface of the observability plane
// (internal/obs). Rendering works on Snapshots, not registries, so the
// caller decides how to synchronize with writers: snapshot under the
// owning lock, render lock-free.

// PromName maps an instrument name to a valid Prometheus metric name
// under the given namespace: every character outside [a-zA-Z0-9_] becomes
// '_' (so "mc.lat-read.normal" renders as ns_mc_lat_read_normal). The
// mapping is stable — the golden exposition test pins it.
func PromName(ns, name string) string {
	var b strings.Builder
	b.Grow(len(ns) + 1 + len(name))
	b.WriteString(ns)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in Prometheus text exposition format:
// counters (with the conventional _total suffix), then gauges, then
// histograms (cumulative _bucket series plus _sum and _count), each group
// in sorted name order with HELP/TYPE headers. The output is
// deterministic for a given snapshot — scrape-to-scrape diffs reflect
// only instrument changes.
func WriteProm(w io.Writer, ns string, s *Snapshot) error {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(ns, n) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s (counter)\n# TYPE %s counter\n%s %d\n",
			pn, n, pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(ns, n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s (gauge)\n# TYPE %s gauge\n%s %s\n",
			pn, n, pn, pn, promFloat(s.Gauges[n].Cur)); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := PromName(ns, n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s (histogram)\n# TYPE %s histogram\n", pn, n, pn); err != nil {
			return err
		}
		// Counts are per-bucket; the exposition format wants cumulative
		// counts with the +Inf bucket equal to _count.
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatUint(h.Bounds[i], 10)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Total); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float in the exposition format's expected shape.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Delta returns the change from prev to s: counters and histogram
// buckets/totals subtract (clamping at zero, so an instrument reset reads
// as its current value rather than underflowing), gauges carry s's
// current state unchanged. prev may be nil, in which case the result
// equals s. Neither input is modified. The scrape loop uses this to
// derive rates (epochs/s, jobs/s) from two registry snapshots.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	out := &Snapshot{}
	if s == nil {
		return out
	}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(s.Counters))
		for n, v := range s.Counters {
			if prev != nil {
				if pv, ok := prev.Counters[n]; ok && pv <= v {
					v -= pv
				}
			}
			out.Counters[n] = v
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]GaugeSnap, len(s.Gauges))
		for n, g := range s.Gauges {
			out.Gauges[n] = g
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnap, len(s.Histograms))
		for n, h := range s.Histograms {
			d := cloneHistSnap(h)
			if prev != nil {
				if ph, ok := prev.Histograms[n]; ok && equalBounds(ph.Bounds, h.Bounds) &&
					ph.Total <= h.Total && ph.Sum <= h.Sum {
					for i := range d.Counts {
						if i < len(ph.Counts) && ph.Counts[i] <= d.Counts[i] {
							d.Counts[i] -= ph.Counts[i]
						}
					}
					d.Total -= ph.Total
					d.Sum -= ph.Sum
				}
			}
			out.Histograms[n] = d
		}
	}
	return out
}
