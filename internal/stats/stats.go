// Package stats provides counters, aggregates, and plain-text table
// rendering used by the simulator and the experiment harness.
//
// Everything in this package is deterministic and allocation-light; the
// simulator updates counters on its hot path.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Gauge tracks a value along with its running min/max/sum for averaging.
type Gauge struct {
	cur, min, max, sum float64
	samples            uint64
}

// Set records a new sample. Only finite samples are recorded: NaN and
// ±Inf are ignored entirely (no field is touched), so Min/Max/Mean and
// Samples always describe the same finite sample set. Before this
// contract a NaN sample failed both min/max comparisons (leaving them
// stale) while still poisoning the running sum.
func (g *Gauge) Set(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.cur = v
	if g.samples == 0 || v < g.min {
		g.min = v
	}
	if g.samples == 0 || v > g.max {
		g.max = v
	}
	g.sum += v
	g.samples++
}

// Cur returns the most recent sample.
func (g *Gauge) Cur() float64 { return g.cur }

// Min returns the smallest sample seen, or 0 if none.
func (g *Gauge) Min() float64 { return g.min }

// Max returns the largest sample seen, or 0 if none.
func (g *Gauge) Max() float64 { return g.max }

// Mean returns the arithmetic mean of all samples, or 0 if none.
func (g *Gauge) Mean() float64 {
	if g.samples == 0 {
		return 0
	}
	return g.sum / float64(g.samples)
}

// Samples returns how many recorded (finite) samples Set has seen.
func (g *Gauge) Samples() uint64 { return g.samples }

// Sum returns the running sum of all recorded samples.
func (g *Gauge) Sum() float64 { return g.sum }

// Histogram is a fixed-bucket histogram for latency-style distributions.
type Histogram struct {
	bounds []uint64 // upper bounds, ascending; implicit +Inf last bucket
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []uint64 { return append([]uint64(nil), h.bounds...) }

// Counts returns a copy of the per-bucket counts (len(Bounds())+1 entries;
// the final bucket is the implicit +Inf overflow bucket).
func (h *Histogram) Counts() []uint64 { return append([]uint64(nil), h.counts...) }

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the mean observation, or 0 if none.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound for quantile q in [0,1], using bucket
// upper bounds (the final bucket reports the observed max).
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Gmean returns the geometric mean of xs. Non-positive inputs are skipped;
// it returns 0 when no positive inputs exist.
func Gmean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells may be fewer than the header width.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting every value with the given verb (e.g.
// "%.2f") after the leading label.
func (t *Table) AddRowf(label, verb string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf(verb, v))
	}
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			} else if i >= len(width) {
				width = append(width, len(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := width[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
