package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 {
		t.Fatal("empty gauge mean should be 0")
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		g.Set(v)
	}
	if g.Min() != 1 || g.Max() != 5 || g.Cur() != 5 || g.Samples() != 5 {
		t.Fatalf("gauge state: min=%v max=%v cur=%v n=%d", g.Min(), g.Max(), g.Cur(), g.Samples())
	}
	if math.Abs(g.Mean()-2.8) > 1e-12 {
		t.Fatalf("mean = %v, want 2.8", g.Mean())
	}
}

func TestGaugeNegativeFirstSample(t *testing.T) {
	var g Gauge
	g.Set(-7)
	if g.Min() != -7 || g.Max() != -7 {
		t.Fatalf("first negative sample: min=%v max=%v", g.Min(), g.Max())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("p50 bucket bound = %d, want 100", got)
	}
	if got := h.Quantile(0.05); got != 10 {
		t.Fatalf("p5 bucket bound = %d, want 10", got)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(99)
	if h.Quantile(1.0) != 99 {
		t.Fatalf("overflow quantile = %d, want observed max", h.Quantile(1.0))
	}
	if NewHistogram(5).Quantile(0.9) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestGmean(t *testing.T) {
	if g := Gmean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if g := Gmean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("gmean(ones) = %v", g)
	}
	if Gmean(nil) != 0 || Gmean([]float64{0, -1}) != 0 {
		t.Fatal("gmean of no positive inputs should be 0")
	}
}

func TestGmeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint16) bool {
		x := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		scaled := []float64{2 * x[0], 2 * x[1], 2 * x[2]}
		return math.Abs(Gmean(scaled)-2*Gmean(x)) < 1e-9*Gmean(scaled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("ratio semantics")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("design", "speedup")
	tb.AddRow("baseline", "1.00")
	tb.AddRowf("SAM-en", "%.2f", 4.2)
	out := tb.String()
	if !strings.Contains(out, "SAM-en") || !strings.Contains(out, "4.20") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing separator row: %q", lines[1])
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(`has "quote"`, "plain, comma")
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quote"""`) {
		t.Fatalf("quote not escaped: %s", csv)
	}
	if !strings.Contains(csv, `"plain, comma"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow("1", "extra", "more")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("ragged row dropped: %s", out)
	}
}
