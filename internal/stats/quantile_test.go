package stats

import (
	"fmt"
	"testing"
)

// TestHistogramQuantileEmpty pins the empty-histogram contract: every
// quantile of zero observations is 0, live and snapshotted alike.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(5, 10, 20)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	r := NewRegistry()
	r.Histogram("h", 5, 10, 20)
	snap := r.Snapshot().Histograms["h"]
	if got := snap.Quantile(0.5); got != 0 {
		t.Fatalf("empty snap Quantile(0.5) = %d, want 0", got)
	}
}

// TestHistogramQuantileSingleSample: one observation lands in one bucket,
// so every quantile — including q=0, whose target clamps up to the first
// sample — reports that bucket's upper bound.
func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram(5, 10, 20)
	h.Observe(7) // bucket (5,10]
	for _, q := range []float64{0, 0.001, 0.5, 1} {
		if got := h.Quantile(q); got != 10 {
			t.Fatalf("single-sample Quantile(%v) = %d, want bucket bound 10", q, got)
		}
	}
}

// TestHistogramQuantileAllEqual: identical samples collapse to one bucket
// regardless of count, so the whole quantile curve is flat.
func TestHistogramQuantileAllEqual(t *testing.T) {
	h := NewHistogram(5, 10, 20)
	for i := 0; i < 1000; i++ {
		h.Observe(7)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.999, 1} {
		if got := h.Quantile(q); got != 10 {
			t.Fatalf("all-equal Quantile(%v) = %d, want 10", q, got)
		}
	}
}

// TestHistogramQuantileOverflowReportsMax: samples beyond the last bound
// fall in the +Inf bucket, whose quantile answer is the observed max, not
// a bound.
func TestHistogramQuantileOverflowReportsMax(t *testing.T) {
	h := NewHistogram(5, 10)
	h.Observe(7)
	h.Observe(9000)
	h.Observe(12345)
	// With 3 samples the median target is sample 2, the first overflow.
	if got := h.Quantile(0.5); got != 12345 {
		t.Fatalf("Quantile(0.5) = %d, want observed max 12345 (overflow bucket)", got)
	}
	if got := h.Quantile(1); got != 12345 {
		t.Fatalf("Quantile(1) = %d, want observed max 12345", got)
	}
	// Snapshot must mirror the overflow behaviour exactly.
	r := NewRegistry()
	hs := r.Histogram("h", 5, 10)
	hs.Observe(7)
	hs.Observe(9000)
	hs.Observe(12345)
	snap := r.Snapshot().Histograms["h"]
	for _, q := range []float64{0, 0.5, 1} {
		if snap.Quantile(q) != hs.Quantile(q) {
			t.Fatalf("snap Quantile(%v) = %d, live %d", q, snap.Quantile(q), hs.Quantile(q))
		}
	}
}

// shardSnapshots builds four differently-shaped worker snapshots, the
// inputs for the merge-order tests.
func shardSnapshots() []*Snapshot {
	shards := make([]*Snapshot, 4)
	for i := range shards {
		r := NewRegistry()
		r.Counter("reqs").Add(uint64(100 * (i + 1)))
		if i != 2 { // one shard never touches this counter
			r.Counter("errs").Add(uint64(i))
		}
		g := r.Gauge("occ")
		for j := 0; j <= i; j++ {
			g.Set(float64(i*10 + j))
		}
		h := r.Histogram("lat", 10, 100, 1000)
		for j := 0; j < 50*(i+1); j++ {
			h.Observe(uint64((i*37 + j*13) % 2000))
		}
		shards[i] = r.Snapshot()
	}
	return shards
}

// mergeInOrder merges the shards into a fresh snapshot following perm.
func mergeInOrder(t *testing.T, shards []*Snapshot, perm []int) Snapshot {
	t.Helper()
	var acc Snapshot
	for _, i := range perm {
		if err := acc.Merge(shards[i]); err != nil {
			t.Fatalf("merge shard %d: %v", i, err)
		}
	}
	return acc
}

// TestSnapshotMergeOrderInvariance merges four shards in several
// permutations and demands identical counters, histograms, and gauge
// aggregates. Gauge Cur is last-writer-wins by design and excluded.
func TestSnapshotMergeOrderInvariance(t *testing.T) {
	shards := shardSnapshots()
	ref := mergeInOrder(t, shards, []int{0, 1, 2, 3})
	perms := [][]int{
		{3, 2, 1, 0},
		{1, 3, 0, 2},
		{2, 0, 3, 1},
		{0, 2, 1, 3},
	}
	for _, perm := range perms {
		got := mergeInOrder(t, shards, perm)
		key := fmt.Sprint(perm)
		for name, want := range ref.Counters {
			if got.Counters[name] != want {
				t.Fatalf("%s: counter %s = %d, want %d", key, name, got.Counters[name], want)
			}
		}
		for name, want := range ref.Histograms {
			h := got.Histograms[name]
			if h.Total != want.Total || h.Sum != want.Sum || h.Max != want.Max {
				t.Fatalf("%s: histogram %s total/sum/max %d/%d/%d, want %d/%d/%d",
					key, name, h.Total, h.Sum, h.Max, want.Total, want.Sum, want.Max)
			}
			for i, c := range want.Counts {
				if h.Counts[i] != c {
					t.Fatalf("%s: histogram %s bucket %d = %d, want %d", key, name, i, h.Counts[i], c)
				}
			}
			if h.Quantile(0.5) != want.Quantile(0.5) || h.Quantile(0.99) != want.Quantile(0.99) {
				t.Fatalf("%s: histogram %s quantiles diverge", key, name)
			}
		}
		for name, want := range ref.Gauges {
			g := got.Gauges[name]
			if g.Min != want.Min || g.Max != want.Max || g.Sum != want.Sum || g.Samples != want.Samples {
				t.Fatalf("%s: gauge %s min/max/sum/samples %v/%v/%v/%d, want %v/%v/%v/%d",
					key, name, g.Min, g.Max, g.Sum, g.Samples, want.Min, want.Max, want.Sum, want.Samples)
			}
		}
	}
}
