// Package area is the analytical chip-area model of Section 6.1: wire
// routing overhead from metal-layer track counting per subarray, plus
// peripheral-logic overhead from CACTI-class constants. It reproduces the
// paper's numbers — SAM-sub ~7.2%, SAM-IO <0.01%, SAM-en ~0.7% — and the
// comparison bars of Fig. 14c.
package area

import "fmt"

// SubarrayTracks describes M2 routing of one DRAM subarray in the Rambus
// model the paper cites: a 512-row subarray routes 128 global wordlines
// plus 12 tracks for four differential local data-line pairs and four
// wordline-select lines.
type SubarrayTracks struct {
	GlobalWordlines int // M2 tracks for global WLs
	LDLAndWLSel     int // M2 tracks for differential LDLs + WL selects
}

// Baseline512 is the paper's reference subarray.
func Baseline512() SubarrayTracks {
	return SubarrayTracks{GlobalWordlines: 128, LDLAndWLSel: 12}
}

// Total returns baseline M2 tracks.
func (s SubarrayTracks) Total() int { return s.GlobalWordlines + s.LDLAndWLSel }

// WireOverhead returns the fractional area cost of adding extraTracks M2
// routing tracks to the subarray.
func (s SubarrayTracks) WireOverhead(extraTracks int) float64 {
	return float64(extraTracks) / float64(s.Total())
}

// DieModel holds the peripheral-logic reference areas (32nm CACTI-3DD
// class, Section 6.1): the 0.14 mm^2 extra global sense amps correspond to
// 0.8% of the die.
type DieModel struct {
	DieAreaMM2 float64
}

// ReferenceDie matches the paper's implied die size (0.14 mm^2 == 0.8%).
func ReferenceDie() DieModel { return DieModel{DieAreaMM2: 0.14 / 0.008} }

// LogicOverhead converts an absolute logic area into a die fraction.
func (d DieModel) LogicOverhead(mm2 float64) float64 { return mm2 / d.DieAreaMM2 }

// Overhead describes one design's cost (fractions of die/storage).
type Overhead struct {
	Design      string
	Wiring      float64 // in-array routing (M2/M3 tracks)
	Peripheral  float64 // extra logic (sense amps, decoders, registers)
	Storage     float64 // extra bits (embedded ECC, duplicated copies)
	MetalLayers int     // extra metal layers required (NVM designs)
}

// Area returns total silicon area overhead (wiring + peripheral).
func (o Overhead) Area() float64 { return o.Wiring + o.Peripheral }

// SAMSub derives the SAM-sub overhead from first principles: 8 extra M2
// tracks (4 differential row-wise global bitlines) -> 5.7%; M3 control
// lines for the column-wise subarray -> 0.7%; extra global SAs 0.14 mm^2 ->
// 0.8%; a simplified column decoder 0.002 mm^2 -> <0.01%.
func SAMSub() Overhead {
	sub := Baseline512()
	die := ReferenceDie()
	return Overhead{
		Design:     "SAM-sub",
		Wiring:     sub.WireOverhead(8) + 0.007,
		Peripheral: die.LogicOverhead(0.14) + die.LogicOverhead(0.002),
	}
}

// SAMIO has only the 7-bit I/O mode register.
func SAMIO() Overhead {
	die := ReferenceDie()
	return Overhead{
		Design:     "SAM-IO",
		Peripheral: die.LogicOverhead(0.0005),
	}
}

// SAMEn has SAM-sub's control lines plus a second serializer set.
func SAMEn() Overhead {
	die := ReferenceDie()
	return Overhead{
		Design:     "SAM-en",
		Wiring:     0.007,
		Peripheral: die.LogicOverhead(0.0005) + die.LogicOverhead(0.001),
	}
}

// RCNVMBit duplicates peripheral circuits and needs two extra metal layers
// (~15% silicon, Section 3.3.2).
func RCNVMBit() Overhead {
	return Overhead{Design: "RC-NVM-bit", Wiring: 0.05, Peripheral: 0.10, MetalLayers: 2}
}

// RCNVMWord reshapes subarrays to squares, multiplying global bitlines
// (~33%, Section 3.3.2).
func RCNVMWord() Overhead {
	return Overhead{Design: "RC-NVM-wd", Wiring: 0.28, Peripheral: 0.05, MetalLayers: 2}
}

// GSDRAM adds shift/gather logic near the chip I/O — small area, no
// reliability.
func GSDRAM() Overhead {
	return Overhead{Design: "GS-DRAM", Peripheral: 0.005}
}

// GSDRAMecc adds embedded ECC: the check bits move in-page, costing 1/8 of
// storage (8 ECC bytes per 64 data bytes) on top of GS-DRAM's logic.
func GSDRAMecc() Overhead {
	o := GSDRAM()
	o.Design = "GS-DRAM-ecc"
	o.Storage = 8.0 / 64.0
	return o
}

// All returns the Fig. 14c comparison set in presentation order.
func All() []Overhead {
	return []Overhead{
		RCNVMBit(), RCNVMWord(), GSDRAM(), GSDRAMecc(), SAMSub(), SAMIO(), SAMEn(),
	}
}

// Lookup finds a design's overhead by name.
func Lookup(design string) (Overhead, error) {
	for _, o := range All() {
		if o.Design == design {
			return o, nil
		}
	}
	return Overhead{}, fmt.Errorf("area: unknown design %q", design)
}

// TimingInflation returns the factor by which array timing parameters grow
// for a design, following the paper's rule that latencies scale
// proportionally with area overhead (Section 6.1's setup notes).
func TimingInflation(o Overhead) float64 { return 1 + o.Area() }
