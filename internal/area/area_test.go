package area

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestSection61Derivation(t *testing.T) {
	// The paper's own numbers, derived rather than hard-coded:
	sub := Baseline512()
	if sub.Total() != 140 {
		t.Fatalf("baseline M2 tracks = %d, want 140", sub.Total())
	}
	if w := sub.WireOverhead(8); !approx(w, 0.057, 0.0005) {
		t.Fatalf("8 extra tracks = %.4f, want ~5.7%%", w)
	}
	die := ReferenceDie()
	if p := die.LogicOverhead(0.14); !approx(p, 0.008, 1e-6) {
		t.Fatalf("global SA overhead = %.4f, want 0.8%%", p)
	}
	if p := die.LogicOverhead(0.002); p >= 0.0002 {
		t.Fatalf("column decoder overhead %.5f, want <0.01%%", p)
	}
}

func TestPaperHeadlineOverheads(t *testing.T) {
	cases := []struct {
		o    Overhead
		want float64
		tol  float64
	}{
		{SAMSub(), 0.072, 0.002},   // ~7.2%
		{SAMIO(), 0.0001, 0.0001},  // <0.01%
		{SAMEn(), 0.007, 0.0012},   // ~0.7%
		{RCNVMBit(), 0.15, 0.001},  // ~15%
		{RCNVMWord(), 0.33, 0.001}, // ~33%
	}
	for _, c := range cases {
		if !approx(c.o.Area(), c.want, c.tol) {
			t.Errorf("%s area = %.4f, want %.4f +- %.4f", c.o.Design, c.o.Area(), c.want, c.tol)
		}
	}
}

func TestGSDRAMStorageOverhead(t *testing.T) {
	if GSDRAM().Storage != 0 {
		t.Fatal("plain GS-DRAM has no storage overhead (and no ECC)")
	}
	if got := GSDRAMecc().Storage; !approx(got, 0.125, 1e-9) {
		t.Fatalf("embedded ECC storage = %v, want 12.5%%", got)
	}
}

func TestSAMOrdering(t *testing.T) {
	// Fig. 14c's qualitative shape: SAM-IO < SAM-en < SAM-sub << RC-NVM.
	if !(SAMIO().Area() < SAMEn().Area() && SAMEn().Area() < SAMSub().Area() &&
		SAMSub().Area() < RCNVMBit().Area() && RCNVMBit().Area() < RCNVMWord().Area()) {
		t.Fatal("area ordering violated")
	}
}

func TestMetalLayers(t *testing.T) {
	for _, o := range []Overhead{SAMSub(), SAMIO(), SAMEn(), GSDRAM()} {
		if o.MetalLayers != 0 {
			t.Errorf("%s should need no extra metal layers", o.Design)
		}
	}
	if RCNVMBit().MetalLayers != 2 || RCNVMWord().MetalLayers != 2 {
		t.Error("RC-NVM variants need two extra metal layers")
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"SAM-sub", "SAM-IO", "SAM-en", "GS-DRAM", "GS-DRAM-ecc", "RC-NVM-bit", "RC-NVM-wd"} {
		o, err := Lookup(name)
		if err != nil || o.Design != name {
			t.Errorf("lookup %q: %v", name, err)
		}
	}
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestTimingInflation(t *testing.T) {
	if f := TimingInflation(SAMSub()); !approx(f, 1.072, 0.002) {
		t.Fatalf("SAM-sub inflation %v, want ~1.072", f)
	}
	if f := TimingInflation(SAMIO()); f > 1.001 {
		t.Fatalf("SAM-IO inflation %v, want ~1", f)
	}
	if f := TimingInflation(RCNVMWord()); !approx(f, 1.33, 0.001) {
		t.Fatalf("RC-NVM-wd inflation %v", f)
	}
}

func TestAllSetComplete(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() has %d designs, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, o := range all {
		if seen[o.Design] {
			t.Fatalf("duplicate design %s", o.Design)
		}
		seen[o.Design] = true
	}
}
