package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"sam/internal/core"
	"sam/internal/memo"
	"sam/internal/obs"
	"sam/internal/sim"
	"sam/internal/stats"
)

// executor turns accepted jobs into deterministic runs over the shared
// caches. Two cache tiers cooperate:
//
//   - runMemo (core.Memo) caches individual simulation runs under their
//     canonical fingerprints — shared with the batch CLIs' keyspace, so a
//     daemon that reuses a samfig -cache-dir starts warm.
//   - results (memo.Cache[jobResult]) caches whole job payloads under the
//     submission's content address. Its Lookup feeds admission-time
//     instant serves; its Do (with the built-in singleflight) covers the
//     residual race where an identical job is resubmitted between a
//     leader's retirement and its result landing.
//
// Determinism contract: every payload byte is derived from sweeps that
// are worker-count-invariant (runner.Map/Grid ordered results) and from
// codecs that are map-order-stable (sim.EncodeResult, sorted sweep keys),
// so N concurrent clients observe byte-identical results for identical
// submissions regardless of arrival order, dedup, and cache state — the
// differential the concurrent-client test pins against the CLIs.
type executor struct {
	runMemo *core.Memo
	results *memo.Cache[jobResult]
	// innerWorkers sizes the worker pool of one figure/sweep/reliability
	// job's internal sweep.
	innerWorkers int
	// tracker, when non-nil, observes inner sweeps under "samd:<label>"
	// scopes (memo attribution per simulation run, inner-job histograms).
	tracker *obs.Tracker
}

// encodeJobResult / decodeJobResult are the results cache's codec (used
// for byte accounting; the cache is memory-only).
func encodeJobResult(r jobResult) ([]byte, error) { return json.Marshal(r) }
func decodeJobResult(b []byte) (jobResult, error) {
	var r jobResult
	err := json.Unmarshal(b, &r)
	return r, err
}

// newExecutor wires the two cache tiers.
func newExecutor(runMemo *core.Memo, maxResults, innerWorkers int, tracker *obs.Tracker) *executor {
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	return &executor{
		runMemo: runMemo,
		results: memo.New(memo.Config[jobResult]{
			MaxEntries: maxResults,
			Encode:     encodeJobResult,
			Decode:     decodeJobResult,
		}),
		innerWorkers: innerWorkers,
		tracker:      tracker,
	}
}

// lookup probes the job-result cache for admission-time instant serves.
func (e *executor) lookup(key string) (jobResult, string, bool) {
	res, out, ok := e.results.Lookup(key)
	if !ok {
		return jobResult{}, "", false
	}
	return res, out.String(), true
}

// resultStats exposes the job-result cache instruments re-prefixed as
// samd.results.* — the memo.* names stay reserved for the run-level cache
// (obs.Server merges source snapshots by name, so a shared prefix would
// silently sum the two tiers).
func (e *executor) resultStats() *stats.Snapshot {
	in := e.results.StatsSnapshot()
	out := &stats.Snapshot{
		Counters:   make(map[string]uint64, len(in.Counters)),
		Gauges:     in.Gauges,
		Histograms: in.Histograms,
	}
	for name, v := range in.Counters {
		out.Counters[strings.Replace(name, "memo.", "samd.results.", 1)] = v
	}
	return out
}

// run executes one leader job through the result cache. The returned memo
// string attributes the payload: the result tier's outcome when it served
// or deduplicated the job, otherwise the run tier's outcome (so a bench
// job whose simulation was already cached by a figure sweep reports
// "hit" even though the job itself was new).
func (e *executor) run(ctx context.Context, j *job) (jobResult, string, error) {
	inner := memo.Miss
	res, out, err := e.results.Do(j.key, func() (jobResult, error) {
		r, innerOut, err := e.compute(ctx, j)
		inner = innerOut
		return r, err
	})
	if err != nil {
		return jobResult{}, "", err
	}
	attribution := out
	if out == memo.Miss {
		attribution = inner
	}
	return res, attribution.String(), nil
}

// par builds the inner-sweep parallelism options for compound jobs.
func (e *executor) par(label string) core.Par {
	p := core.Par{Workers: e.innerWorkers, Memo: e.runMemo}
	if e.tracker != nil {
		p.Observer = e.tracker.Hooks("samd:" + label)
	}
	return p
}

// compute produces a job's payload. The inner memo.Outcome is meaningful
// for bench jobs (one run = one cache probe); compound jobs report Miss
// (their per-run attribution flows through the inner sweep's observer).
func (e *executor) compute(ctx context.Context, j *job) (jobResult, memo.Outcome, error) {
	req := j.req
	switch req.Kind {
	case KindBench:
		return e.computeBench(req)
	case KindFigure:
		return e.computeFigure(ctx, req)
	case KindSweep:
		return e.computeSweep(ctx, req)
	case KindReliability:
		return e.computeReliability(ctx, req)
	}
	return jobResult{}, memo.Miss, fmt.Errorf("serve: unvalidated job kind %q", req.Kind)
}

func (e *executor) computeBench(req *SubmitRequest) (jobResult, memo.Outcome, error) {
	kind, _ := core.KindByName(req.Bench.Design)
	q, _ := core.BenchQueryByName(req.Bench.Query)
	w := req.workload()
	var fm *sim.FaultModel
	if req.Bench.FaultRate > 0 {
		fm = &sim.FaultModel{Rate: req.Bench.FaultRate, Seed: req.Bench.FaultSeed}
		if fm.Seed == 0 {
			fm.Seed = w.Seed
		}
		if req.Bench.FaultRetries != nil {
			fm.MaxRetries = *req.Bench.FaultRetries
		} else {
			fm.MaxRetries = core.DefaultReliabilityCampaign().MaxRetries
		}
	}
	r, out, err := e.runMemo.RunOneFaultedObserved(kind, granOptions(req.Bench.Gran), w, q, fm)
	if err != nil {
		return jobResult{}, out, err
	}
	body, err := sim.EncodeResult(r)
	if err != nil {
		return jobResult{}, out, err
	}
	return jobResult{ContentType: "application/json", Body: body}, out, nil
}

// computeFigure renders the figure's table exactly as samfig prints it
// (minus the "== id ==" banner), so clients — and the CI smoke test —
// can byte-compare daemon output against the batch CLI.
func (e *executor) computeFigure(ctx context.Context, req *SubmitRequest) (jobResult, memo.Outcome, error) {
	w := req.workload()
	par := e.par(req.Figure.ID)
	var fig *core.Figure
	var err error
	switch req.Figure.ID {
	case "fig12":
		fig, err = core.Fig12(ctx, w, par)
	case "fig14a":
		fig, err = core.Fig14a(ctx, w, par)
	case "fig14b":
		fig, err = core.Fig14b(ctx, w, par)
	default:
		err = fmt.Errorf("serve: unvalidated figure %q", req.Figure.ID)
	}
	if err != nil {
		return jobResult{}, memo.Miss, err
	}
	return jobResult{
		ContentType: "text/plain; charset=utf-8",
		Body:        []byte(fig.Table().String()),
	}, memo.Miss, nil
}

// sweepPointOut is one grid cell in a sweep job's JSON payload.
type sweepPointOut struct {
	Selectivity  float64            `json:"selectivity"`
	Projectivity int                `json:"projectivity"`
	Speedups     map[string]float64 `json:"speedups"`
}

func (e *executor) computeSweep(ctx context.Context, req *SubmitRequest) (jobResult, memo.Outcome, error) {
	kind := core.Arithmetic
	if req.Sweep.Query == "aggr" {
		kind = core.Aggregate
	}
	records := req.Sweep.Records
	if records == 0 {
		records = 2048
	}
	type cell struct {
		sel  float64
		proj int
	}
	var cells []cell
	for _, sel := range req.Sweep.Selectivities {
		for _, p := range req.Sweep.Projectivities {
			cells = append(cells, cell{sel, p})
		}
	}
	par := e.par("sweep")
	out := make([]sweepPointOut, len(cells))
	// Points run serially; each point's per-design runs fan out on the
	// inner pool (mirroring samfig's fig15 loop). The ctx check between
	// points is the forced-drain cancellation boundary.
	for i, c := range cells {
		if err := ctx.Err(); err != nil {
			return jobResult{}, memo.Miss, err
		}
		p := core.SweepPoint{
			Query:       kind,
			Selectivity: c.sel,
			Projected:   c.proj,
			RecordBytes: req.Sweep.RecordBytes,
		}
		speedups, _, err := core.RunSweepPointStats(ctx, p, records, par)
		if err != nil {
			return jobResult{}, memo.Miss, err
		}
		out[i] = sweepPointOut{Selectivity: c.sel, Projectivity: c.proj, Speedups: speedups}
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return jobResult{}, memo.Miss, err
	}
	return jobResult{ContentType: "application/json", Body: body}, memo.Miss, nil
}

// reliabilityOut is a reliability job's JSON payload.
type reliabilityOut struct {
	Seed     uint64                   `json:"seed"`
	TotalSDC uint64                   `json:"total_sdc"`
	Cells    []core.ReliabilityResult `json:"cells"`
}

func (e *executor) computeReliability(ctx context.Context, req *SubmitRequest) (jobResult, memo.Outcome, error) {
	camp := core.DefaultReliabilityCampaign()
	if req.Reliability.Seed != 0 {
		camp.Seed = req.Reliability.Seed
	}
	if len(req.Reliability.Rates) > 0 {
		camp.Rates = req.Reliability.Rates
	}
	if req.Reliability.MaxRetries != nil {
		camp.MaxRetries = *req.Reliability.MaxRetries
	}
	results, err := core.RunReliability(ctx, camp, e.par("reliability"))
	if err != nil {
		return jobResult{}, memo.Miss, err
	}
	payload := reliabilityOut{Seed: camp.Seed, Cells: results}
	for _, r := range results {
		payload.TotalSDC += r.SilentCorruptions()
	}
	body, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return jobResult{}, memo.Miss, err
	}
	return jobResult{ContentType: "application/json", Body: body}, memo.Miss, nil
}
