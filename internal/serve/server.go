package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"sam/internal/core"
	"sam/internal/obs"
	"sam/internal/stats"
)

// Config sizes a Daemon. The zero value is serviceable (single worker,
// defaults everywhere, no event log).
type Config struct {
	// Workers is the job dispatch concurrency (simultaneous leader jobs).
	Workers int
	// InnerWorkers sizes each compound job's internal sweep pool
	// (0 = Workers — figure grids fan out as wide as the daemon itself).
	InnerWorkers int
	// QueueCap bounds queued leaders (0 = 256).
	QueueCap int
	// TenantQuota bounds one tenant's non-terminal jobs (0 = unlimited).
	TenantQuota int
	// MaxQueueWait is the anti-starvation promotion bound (0 = 30s).
	MaxQueueWait time.Duration
	// MemoEntries bounds the run-level cache's memory tier (0 = default).
	MemoEntries int
	// CacheDir, when set, adds the run-level cache's disk tier — sharing
	// a samfig/samsim -cache-dir starts the daemon warm.
	CacheDir string
	// ResultEntries bounds the job-result cache (0 = default).
	ResultEntries int
	// EventLog, when non-nil, receives the obs JSONL event stream.
	EventLog io.Writer
	// Clock overrides time.Now everywhere (scheduler aging, obs spans) —
	// injectable for the starvation and drain tests.
	Clock func() time.Time
}

// Daemon is the simulation-as-a-service engine behind cmd/samd: the HTTP
// API, the scheduler, both cache tiers, and the telemetry plane, wired
// together and torn down as one unit.
type Daemon struct {
	cfg     Config
	tracker *obs.Tracker
	obsSrv  *obs.Server
	exec    *executor
	sched   *sched
	mux     *http.ServeMux
}

// NewDaemon builds and starts the engine (workers launch immediately).
func NewDaemon(cfg Config) *Daemon {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.InnerWorkers < 1 {
		cfg.InnerWorkers = cfg.Workers
	}
	d := &Daemon{cfg: cfg}
	d.tracker = obs.NewTracker(obs.Config{Log: cfg.EventLog, Clock: cfg.Clock})
	runMemo := core.NewMemo(core.MemoOptions{MaxEntries: cfg.MemoEntries, Dir: cfg.CacheDir})
	d.exec = newExecutor(runMemo, cfg.ResultEntries, cfg.InnerWorkers, d.tracker)
	d.obsSrv = obs.NewServer(d.tracker)
	d.obsSrv.AddSource(runMemo.StatsSnapshot)
	d.obsSrv.AddSource(d.exec.resultStats)
	d.sched = newSched(schedConfig{
		Workers:      cfg.Workers,
		QueueCap:     cfg.QueueCap,
		TenantQuota:  cfg.TenantQuota,
		MaxQueueWait: cfg.MaxQueueWait,
		Clock:        cfg.Clock,
		Observer:     d.tracker.Hooks("samd"),
		Exec:         d.exec.run,
	})

	d.mux = http.NewServeMux()
	d.mux.HandleFunc("POST /jobs", d.handleSubmit)
	d.mux.HandleFunc("GET /jobs", d.handleList)
	d.mux.HandleFunc("GET /jobs/{id}", d.handleStatus)
	d.mux.HandleFunc("GET /jobs/{id}/result", d.handleResult)
	d.obsSrv.AttachTo(d.mux)
	return d
}

// Handler is the daemon's full HTTP surface: the job API plus the
// telemetry endpoints (/metrics, /progress, /healthz, /debug/pprof).
func (d *Daemon) Handler() http.Handler { return d.mux }

// Tracker exposes the telemetry plane (the stall watchdog's Watch loop is
// the caller's to start — cmd/samd runs it, tests drive CheckStalls).
func (d *Daemon) Tracker() *obs.Tracker { return d.tracker }

// AddSource attaches an extra /metrics snapshot source (cmd/samd adds the
// sharded-engine counters).
func (d *Daemon) AddSource(fn func() *stats.Snapshot) { d.obsSrv.AddSource(fn) }

// Drain executes the shutdown sequence: stop admitting (submissions get
// 503), let queued and running jobs finish while ctx lives, then cancel
// what remains; once every accepted job is terminal and the workers have
// exited, close the event log with the summary record. Returns the first
// event-log write error.
func (d *Daemon) Drain(ctx context.Context) error {
	d.sched.Drain(ctx)
	return d.tracker.Close()
}

// SubmitResponse is the POST /jobs reply.
type SubmitResponse struct {
	Job JobStatus `json:"job"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := ParseSubmit(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	j, err := d.sched.Submit(req, d.exec.lookup)
	switch {
	case err == nil:
	case err == ErrQuota:
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/jobs/"+j.id)
	status := http.StatusAccepted
	if d.sched.Status(j).State == StateDone {
		status = http.StatusOK // served instantly from the result cache
	}
	writeJSON(w, status, SubmitResponse{Job: d.sched.Status(j)})
}

// ListResponse is the GET /jobs reply, submission order.
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Jobs: d.sched.List()})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := d.sched.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, d.sched.Status(j))
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := d.sched.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	st := d.sched.Status(j)
	if st.State != StateDone {
		// Not ready (queued/running) or never will be (failed/canceled):
		// the status document says which.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	res := j.result // immutable once state is done
	w.Header().Set("Content-Type", res.ContentType)
	_, _ = w.Write(res.Body)
}
