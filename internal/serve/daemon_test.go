package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/obs"
	"sam/internal/sim"
)

// tinyWorkload mirrors internal/core's test workload: big enough to
// exercise every design, small enough for CI.
func tinyWorkload() core.Workload {
	return core.Workload{TaRecords: 512, TbRecords: 2048, Seed: 0xBEEF}
}

// tinyWorkloadJSON is the submission fragment selecting tinyWorkload.
const tinyWorkloadJSON = `{"ta":512,"tb":2048,"seed":48879}`

func startDaemon(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	d := NewDaemon(cfg)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func submitOK(t *testing.T, ts *httptest.Server, body string) JobStatus {
	t.Helper()
	code, b := postJob(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit %s: status %d: %s", body, code, b)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("submit response: %v: %s", err, b)
	}
	return sr.Job
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) (string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, b)
	}
	return resp.Header.Get("Content-Type"), b
}

// TestSubmitValidationHTTP pins the 4xx surface: every malformed or
// hostile submission is a clean 400, never an accepted job.
func TestSubmitValidationHTTP(t *testing.T) {
	d, ts := startDaemon(t, Config{Workers: 1})
	defer d.Drain(context.Background())
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `hello`},
		{"missing tenant", `{"kind":"bench","bench":{"design":"baseline","query":"Q1"}}`},
		{"bad tenant chars", `{"kind":"bench","tenant":"a b","bench":{"design":"baseline","query":"Q1"}}`},
		{"unknown field", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1"},"bogus":1}`},
		{"trailing garbage", `{"kind":"figure","tenant":"t","figure":{"id":"fig12"}} extra`},
		{"unknown kind", `{"kind":"magic","tenant":"t"}`},
		{"kind/payload mismatch", `{"kind":"bench","tenant":"t","figure":{"id":"fig12"}}`},
		{"two payloads", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1"},"figure":{"id":"fig12"}}`},
		{"unknown design", `{"kind":"bench","tenant":"t","bench":{"design":"TURBO-RAM","query":"Q1"}}`},
		{"unknown query", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q99"}}`},
		{"bad gran", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1","gran":5}}`},
		{"nan rate literal", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1","fault_rate":NaN}}`},
		{"inf rate overflow", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1","fault_rate":1e999}}`},
		{"rate above one", `{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1","fault_rate":1.5}}`},
		{"negative seed", `{"kind":"bench","tenant":"t","workload":{"seed":-1},"bench":{"design":"baseline","query":"Q1"}}`},
		{"oversized table", fmt.Sprintf(`{"kind":"bench","tenant":"t","workload":{"ta":%d},"bench":{"design":"baseline","query":"Q1"}}`, 1<<23)},
		{"unknown figure", `{"kind":"figure","tenant":"t","figure":{"id":"fig99"}}`},
		{"oversized sweep grid", `{"kind":"sweep","tenant":"t","sweep":{"query":"arith","selectivities":[0.01,0.02,0.03,0.04,0.05,0.06,0.07,0.08,0.09,0.1,0.11,0.12,0.13,0.14,0.15,0.16,0.17],"projectivities":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17]}}`},
		{"zero selectivity", `{"kind":"sweep","tenant":"t","sweep":{"query":"arith","selectivities":[0],"projectivities":[1]}}`},
		{"bad reliability rate", `{"kind":"reliability","tenant":"t","reliability":{"rates":[0]}}`},
		{"reliability retries over cap", `{"kind":"reliability","tenant":"t","reliability":{"max_retries":99}}`},
	}
	for _, tc := range cases {
		code, body := postJob(t, ts, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.name, code, body)
		}
	}
	if resp, err := http.Get(ts.URL + "/jobs/j-999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job id: status = %d, want 404", resp.StatusCode)
		}
	}
}

// benchBody builds a bench submission for design d and query q.
func benchBody(tenant, d, q string) string {
	return fmt.Sprintf(`{"kind":"bench","tenant":%q,"workload":%s,"bench":{"design":%q,"query":%q}}`,
		tenant, tinyWorkloadJSON, d, q)
}

// TestConcurrentClientsDeterministic is the tentpole differential: N
// concurrent clients submitting overlapping job sets in different orders
// observe byte-identical results — identical to each other, to a
// single-worker daemon, and to the batch API the CLIs use — while the
// content-addressed tiers ensure each unique job computes exactly once.
func TestConcurrentClientsDeterministic(t *testing.T) {
	designs := []string{"baseline", "SAM-en", "GS-DRAM"}
	queries := []string{"Q1", "Q3"}
	type jobSpec struct{ design, query string }
	var specs []jobSpec
	for _, d := range designs {
		for _, q := range queries {
			specs = append(specs, jobSpec{d, q})
		}
	}

	runDaemon := func(workers, clients int) map[jobSpec][]byte {
		d, ts := startDaemon(t, Config{Workers: workers, InnerWorkers: 1})
		results := make([]map[jobSpec][]byte, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				got := make(map[jobSpec][]byte)
				ids := make(map[jobSpec]string)
				// Each client walks the specs rotated by its index, so
				// arrival order differs per client.
				for i := range specs {
					s := specs[(i+c)%len(specs)]
					code, b := postJob(t, ts, benchBody(fmt.Sprintf("client%d", c), s.design, s.query))
					if code != http.StatusAccepted && code != http.StatusOK {
						t.Errorf("client %d submit: %d %s", c, code, b)
						return
					}
					var sr SubmitResponse
					if err := json.Unmarshal(b, &sr); err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					ids[s] = sr.Job.ID
				}
				for s, id := range ids {
					if st := pollTerminal(t, ts, id); st.State != StateDone {
						t.Errorf("client %d job %s: state %q err %q", c, id, st.State, st.Err)
						return
					}
					_, body := getResult(t, ts, id)
					got[s] = body
				}
				results[c] = got
			}(c)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatal("client failure")
		}

		// Every client saw identical bytes.
		for c := 1; c < clients; c++ {
			for _, s := range specs {
				if !bytes.Equal(results[0][s], results[c][s]) {
					t.Fatalf("client 0 and client %d disagree on %v", c, s)
				}
			}
		}

		// Dedup is observable: each unique job computed exactly once.
		if got := d.exec.results.Counters().Misses; got != uint64(len(specs)) {
			t.Fatalf("result-cache misses = %d, want %d (one compute per unique job)", got, len(specs))
		}
		missByLabel := map[string]int{}
		for _, st := range d.sched.List() {
			if st.Memo == "miss" {
				missByLabel[st.Label]++
			}
		}
		for label, n := range missByLabel {
			if n != 1 {
				t.Fatalf("label %q computed %d times, want 1", label, n)
			}
		}
		d.Drain(context.Background())
		return results[0]
	}

	wide := runDaemon(4, 4)
	narrow := runDaemon(1, 2)

	// Worker-count and client-count invariance.
	for _, s := range specs {
		if !bytes.Equal(wide[s], narrow[s]) {
			t.Fatalf("results differ between 4-worker and 1-worker daemons on %v", s)
		}
	}

	// Differential against the batch API the CLIs drive.
	w := tinyWorkload()
	for _, s := range specs {
		kind, ok := core.KindByName(s.design)
		if !ok {
			t.Fatalf("unknown design %q", s.design)
		}
		q, ok := core.BenchQueryByName(s.query)
		if !ok {
			t.Fatalf("unknown query %q", s.query)
		}
		r, err := core.RunOne(kind, design.Options{}, w, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.EncodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wide[s], want) {
			t.Fatalf("daemon result for %v differs from core.RunOne:\ndaemon: %s\nbatch:  %s", s, wide[s], want)
		}
	}
}

// TestFigureJobMatchesBatchCLI pins the figure payload byte-identical to
// the table samfig prints (minus the banner line) — the same comparison
// the CI samd-smoke job performs over a real socket.
func TestFigureJobMatchesBatchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig12 grid skipped in short mode")
	}
	d, ts := startDaemon(t, Config{Workers: 2, InnerWorkers: 4})
	defer d.Drain(context.Background())

	body := fmt.Sprintf(`{"kind":"figure","tenant":"ci","workload":%s,"figure":{"id":"fig12"}}`, tinyWorkloadJSON)
	st := submitOK(t, ts, body)
	if got := pollTerminal(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("figure job: state %q err %q", got.State, got.Err)
	}
	ct, got := getResult(t, ts, st.ID)
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("figure content type = %q", ct)
	}

	fig, err := core.Fig12(context.Background(), tinyWorkload(), core.Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := fig.Table().String(); string(got) != want {
		t.Fatalf("daemon fig12 differs from core.Fig12:\n--- daemon ---\n%s\n--- batch ---\n%s", got, want)
	}
}

// TestInstantResultCacheHit: resubmitting a completed job is served at
// admission (200, terminal, attributed to the cache tier) without
// occupying a queue slot.
func TestInstantResultCacheHit(t *testing.T) {
	d, ts := startDaemon(t, Config{Workers: 1})
	defer d.Drain(context.Background())

	body := benchBody("alice", "baseline", "Q2")
	first := submitOK(t, ts, body)
	if st := pollTerminal(t, ts, first.ID); st.State != StateDone {
		t.Fatalf("first run: %+v", st)
	}

	code, b := postJob(t, ts, benchBody("bob", "baseline", "Q2")) // different tenant, same work
	if code != http.StatusOK {
		t.Fatalf("repeat submit: status %d (%s), want 200 instant serve", code, b)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Job.State != StateDone || sr.Job.Memo != "hit" {
		t.Fatalf("repeat job = %+v, want done/hit", sr.Job)
	}
	_, b1 := getResult(t, ts, first.ID)
	_, b2 := getResult(t, ts, sr.Job.ID)
	if !bytes.Equal(b1, b2) {
		t.Fatal("instant-served result differs from computed result")
	}
}

// TestDaemonDrainEventLog runs the full lifecycle with the JSONL event
// log attached and SIGTERM semantics (forced via an expired context):
// every accepted job reaches a terminal state, no worker goroutines
// leak, and the log reconciles — every started job finishes, and the
// final record is the summary (the same invariants scripts/obscheck
// enforces on the file the CI smoke job captures).
func TestDaemonDrainEventLog(t *testing.T) {
	base := runtime.NumGoroutine()
	var log bytes.Buffer
	d, ts := startDaemon(t, Config{Workers: 1, EventLog: &log})

	var ids []string
	for i, q := range []string{"Q1", "Q2", "Q4", "Q5"} {
		st := submitOK(t, ts, benchBody(fmt.Sprintf("t%d", i), "baseline", q))
		ids = append(ids, st.ID)
	}
	// Expired grace: whatever is still queued is canceled, whatever is
	// running is interrupted; either way every job must end terminal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st := getStatus(t, ts, id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
		default:
			t.Fatalf("after drain job %s state = %q, not terminal", id, st.State)
		}
	}

	// Log reconciliation.
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("empty event log")
	}
	type ev struct {
		Ev      string `json:"ev"`
		Sweep   string `json:"sweep"`
		Job     int    `json:"job"`
		Summary *struct {
			Sweeps []struct {
				Sweep  string `json:"sweep"`
				Jobs   int    `json:"jobs"`
				Done   int    `json:"done"`
				Failed int    `json:"failed"`
			} `json:"sweeps"`
		} `json:"summary"`
	}
	starts := map[string]int{}
	ends := map[string]int{}
	var last ev
	for i, line := range lines {
		var e ev
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("log line %d: %v: %s", i, err, line)
		}
		switch e.Ev {
		case "start":
			starts[fmt.Sprintf("%s/%d", e.Sweep, e.Job)]++
		case "finish", "fail":
			ends[fmt.Sprintf("%s/%d", e.Sweep, e.Job)]++
		}
		last = e
	}
	if last.Ev != "summary" || last.Summary == nil {
		t.Fatalf("last event = %q, want summary", last.Ev)
	}
	for k, n := range starts {
		if ends[k] != n {
			t.Fatalf("job %s: %d starts but %d ends", k, n, ends[k])
		}
	}
	for _, s := range last.Summary.Sweeps {
		if s.Done+s.Failed != s.Jobs {
			t.Fatalf("summary sweep %s: done %d + failed %d != jobs %d", s.Sweep, s.Done, s.Failed, s.Jobs)
		}
	}

	// No leaked workers: with the HTTP server shut too, the goroutine
	// count returns to the pre-daemon baseline.
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d at start, %d after drain", base, runtime.NumGoroutine())
}

// TestTelemetryEndpoints: the obs plane rides the daemon's own mux, with
// both cache tiers' instruments visible under distinct metric prefixes.
func TestTelemetryEndpoints(t *testing.T) {
	d, ts := startDaemon(t, Config{Workers: 1})
	defer d.Drain(context.Background())

	st := submitOK(t, ts, benchBody("t", "baseline", "Q1"))
	pollTerminal(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sam_obs_jobs_enqueued", "sam_obs_jobs_finished", "sam_memo_misses", "sam_samd_results_misses"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	resp, err = http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	resp.Body.Close()
	found := false
	for _, s := range rep.Sweeps {
		if s.Sweep == "samd" && s.Done >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/progress has no completed samd jobs: %+v", rep)
	}
}
