package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sam/internal/runner"
)

// Job states a client can observe.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Admission rejections the HTTP layer maps onto status codes.
var (
	// ErrDraining: the daemon received SIGTERM and stopped admitting (503).
	ErrDraining = errors.New("daemon is draining; not accepting jobs")
	// ErrQueueFull: the global queue cap is reached (503 + Retry-After).
	ErrQueueFull = errors.New("job queue is full")
	// ErrQuota: the tenant is at its active-job quota (429).
	ErrQuota = errors.New("tenant active-job quota exceeded")
)

// classOf maps a wire priority to its dispatch class index (0 strongest).
func classOf(priority string) int {
	switch priority {
	case PriorityHigh:
		return 0
	case PriorityLow:
		return 2
	default:
		return 1
	}
}

const numClasses = 3

// jobResult is one completed job's payload, as served by GET
// /jobs/{id}/result. It is the job-cache value type, so it must be
// immutable once published — exec builds it and nothing mutates it after.
type jobResult struct {
	// ContentType: "application/json" for bench/sweep/reliability payloads,
	// "text/plain; charset=utf-8" for figure tables.
	ContentType string `json:"ct"`
	Body        []byte `json:"body"`
}

// job is one accepted submission's full lifecycle record. All fields are
// guarded by the owning sched's mutex; done is closed exactly once when
// the job reaches a terminal state, after every other field is final.
type job struct {
	id     string
	key    string
	tenant string
	class  int
	kind   string
	label  string
	req    *SubmitRequest

	state    string
	enqueued time.Time
	started  time.Time
	finished time.Time
	memo     string // cache attribution: miss/hit/disk-hit/dedup
	worker   int
	result   jobResult
	errMsg   string

	// leaderID is set on followers: jobs deduplicated onto an identical
	// in-flight submission. Followers never occupy a queue slot or worker;
	// they complete when their leader does.
	leaderID  string
	followers []*job

	// cancel interrupts the job's run context (set while running).
	cancel context.CancelFunc
	// sp is the job's telemetry span (a one-job sweep in the obs tracker);
	// nil when the daemon runs without a tracker.
	sp runner.SweepSpan

	done chan struct{}
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// schedConfig sizes the scheduler.
type schedConfig struct {
	// Workers is the dispatch concurrency (jobs running at once).
	Workers int
	// QueueCap bounds queued leaders across all classes (followers and
	// instantly-served cache hits don't consume slots).
	QueueCap int
	// TenantQuota bounds one tenant's non-terminal jobs, followers
	// included. 0 = unlimited.
	TenantQuota int
	// MaxQueueWait is the anti-starvation bound: a job queued at least
	// this long is dispatched before any fresher job of any class.
	MaxQueueWait time.Duration
	// Clock overrides time.Now — injectable for the starvation tests.
	Clock func() time.Time
	// Observer, when non-nil, receives a one-job span per accepted job
	// (the obs tracker's Hooks under the daemon's job label).
	Observer runner.SweepObserver
	// Exec runs one leader job. The context is canceled on forced drain.
	Exec func(ctx context.Context, j *job) (jobResult, string, error)
}

// sched is the session-scoped job scheduler: per-tenant admission quotas,
// three strict priority classes with a clock-bounded aging promotion, and
// content-addressed dedup (identical submissions attach to the in-flight
// leader instead of queueing twice).
type sched struct {
	cfg schedConfig

	mu   sync.Mutex
	cond *sync.Cond

	seq          int
	jobs         map[string]*job
	order        []string // submission order, for listing
	queues       [numClasses][]*job
	queuedN      int
	activeByKey  map[string]*job // in-flight leader per content key
	tenantActive map[string]int

	baseCtx   context.Context
	baseStop  context.CancelFunc
	draining  bool
	stopped   bool
	wg        sync.WaitGroup
	completed []time.Duration // run durations, for ETA estimates
}

// newSched builds and starts the worker pool.
func newSched(cfg schedConfig) *sched {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 256
	}
	if cfg.MaxQueueWait <= 0 {
		cfg.MaxQueueWait = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &sched{
		cfg:          cfg,
		jobs:         make(map[string]*job),
		activeByKey:  make(map[string]*job),
		tenantActive: make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// newJob allocates a job record under s.mu.
func (s *sched) newJobLocked(req *SubmitRequest, key, label string) *job {
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j-%06d", s.seq),
		key:      key,
		tenant:   req.Tenant,
		class:    classOf(req.Priority),
		kind:     req.Kind,
		label:    label,
		req:      req,
		state:    StateQueued,
		enqueued: s.cfg.Clock(),
		worker:   -1,
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if s.cfg.Observer != nil {
		j.sp = s.cfg.Observer.SweepStarted(1)
	}
	return j
}

// Submit admits one parsed submission: quota check, then content-address
// dedup against in-flight leaders, then queue-cap check and enqueue.
// cached, when non-nil, is consulted first — a repeat of an already
// completed job is served instantly without occupying a queue slot.
func (s *sched) Submit(req *SubmitRequest, cached func(key string) (jobResult, string, bool)) (*job, error) {
	key := req.Key()
	label := jobLabel(req)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if s.cfg.TenantQuota > 0 && s.tenantActive[req.Tenant] >= s.cfg.TenantQuota {
		return nil, ErrQuota
	}

	// Instant path: the exact job already completed and its result is
	// still cached. The job is born terminal; its span records a
	// zero-length run attributed to the cache tier that served it.
	if leader := s.activeByKey[key]; leader == nil && cached != nil {
		if res, outcome, ok := cached(key); ok {
			j := s.newJobLocked(req, key, label)
			j.state = StateDone
			j.memo = outcome
			now := s.cfg.Clock()
			j.started, j.finished = now, now
			j.result = res
			if j.sp != nil {
				j.sp.JobStarted(0, 0)
				j.sp.JobAnnotate(0, "memo", outcome)
				j.sp.JobFinished(0, 0, nil)
			}
			close(j.done)
			return j, nil
		}
	}

	// Dedup path: identical work is already queued or running — attach as
	// a follower. Followers count against their tenant's quota (they are
	// live submissions the client polls) but never occupy a queue slot.
	if leader := s.activeByKey[key]; leader != nil {
		j := s.newJobLocked(req, key, label)
		j.leaderID = leader.id
		j.state = leader.state // queued or running, mirroring the leader
		if leader.state == StateRunning {
			j.started = j.enqueued // joined mid-run: no queue wait of its own
		}
		leader.followers = append(leader.followers, j)
		s.tenantActive[req.Tenant]++
		return j, nil
	}

	if s.queuedN >= s.cfg.QueueCap {
		return nil, ErrQueueFull
	}
	j := s.newJobLocked(req, key, label)
	s.activeByKey[key] = j
	s.tenantActive[req.Tenant]++
	s.queues[j.class] = append(s.queues[j.class], j)
	s.queuedN++
	s.cond.Signal()
	return j, nil
}

// jobLabel renders a short human description for listings and logs.
func jobLabel(req *SubmitRequest) string {
	switch req.Kind {
	case KindBench:
		return fmt.Sprintf("bench %s/%s", req.Bench.Design, req.Bench.Query)
	case KindFigure:
		return "figure " + req.Figure.ID
	case KindSweep:
		return fmt.Sprintf("sweep %s %dx%d", req.Sweep.Query,
			len(req.Sweep.Selectivities), len(req.Sweep.Projectivities))
	case KindReliability:
		return "reliability campaign"
	}
	return req.Kind
}

// Get returns a job by ID.
func (s *sched) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker is one dispatch loop: pick, execute, complete, repeat.
func (s *sched) worker(i int) {
	defer s.wg.Done()
	for {
		j, ctx := s.next(i)
		if j == nil {
			return
		}
		res, memoOut, err := s.cfg.Exec(ctx, j)
		if j.cancel != nil {
			j.cancel()
		}
		s.complete(j, res, memoOut, err)
	}
}

// next blocks until a job is dispatchable (or the pool stops), removes it
// from its queue, and marks it running. Dispatch order is strict priority
// (high before normal before low, FIFO within a class) — except that any
// job queued at least MaxQueueWait is promoted ahead of every class,
// oldest first, so a flood of high-priority work can delay low-priority
// work by at most the bound.
func (s *sched) next(worker int) (*job, context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil, nil
		}
		if j := s.pickLocked(); j != nil {
			now := s.cfg.Clock()
			j.state = StateRunning
			j.started = now
			j.worker = worker
			for _, f := range j.followers {
				f.state = StateRunning
				f.started = now
			}
			ctx, cancel := context.WithCancel(s.baseCtx)
			j.cancel = cancel
			if j.sp != nil {
				j.sp.JobStarted(0, worker)
			}
			return j, ctx
		}
		s.cond.Wait()
	}
}

// pickLocked chooses the next queued job. Caller holds s.mu.
func (s *sched) pickLocked() *job {
	var pick *job
	pickClass := -1
	// Aged jobs first: the oldest job past the wait bound wins regardless
	// of class.
	now := s.cfg.Clock()
	for c := 0; c < numClasses; c++ {
		if len(s.queues[c]) == 0 {
			continue
		}
		head := s.queues[c][0] // FIFO per class ⇒ head is the class's oldest
		if now.Sub(head.enqueued) >= s.cfg.MaxQueueWait {
			if pick == nil || head.enqueued.Before(pick.enqueued) {
				pick, pickClass = head, c
			}
		}
	}
	// Otherwise strict priority.
	if pick == nil {
		for c := 0; c < numClasses; c++ {
			if len(s.queues[c]) > 0 {
				pick, pickClass = s.queues[c][0], c
				break
			}
		}
	}
	if pick == nil {
		return nil
	}
	s.queues[pickClass] = s.queues[pickClass][1:]
	s.queuedN--
	return pick
}

// complete publishes a leader's terminal state and fans it out to every
// follower (their result is the leader's, attributed "dedup").
func (s *sched) complete(j *job, res jobResult, memoOut string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	j.finished = now
	j.memo = memoOut
	if err != nil {
		if errors.Is(err, context.Canceled) {
			j.state = StateCanceled
		} else {
			j.state = StateFailed
		}
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = res
		s.completed = append(s.completed, now.Sub(j.started))
	}
	if j.sp != nil {
		if memoOut != "" && err == nil {
			j.sp.JobAnnotate(0, "memo", memoOut)
		}
		j.sp.JobFinished(0, j.worker, err)
	}
	s.retireLocked(j)
	close(j.done)

	for _, f := range j.followers {
		f.finished = now
		f.state = j.state
		f.errMsg = j.errMsg
		if err == nil {
			f.result = res
			f.memo = "dedup"
		}
		if f.sp != nil {
			// A follower's span starts when it would otherwise have run —
			// now — so its queue histogram records the real wait for the
			// shared result and its run duration is zero.
			f.sp.JobStarted(0, j.worker)
			if err == nil {
				f.sp.JobAnnotate(0, "memo", "dedup")
			}
			f.sp.JobFinished(0, j.worker, err)
		}
		s.retireLocked(f)
		close(f.done)
	}
	j.followers = nil
	s.cond.Broadcast() // wake the drain waiter
}

// retireLocked releases a job's admission accounting. Caller holds s.mu.
func (s *sched) retireLocked(j *job) {
	if n := s.tenantActive[j.tenant]; n > 1 {
		s.tenantActive[j.tenant] = n - 1
	} else {
		delete(s.tenantActive, j.tenant)
	}
	if s.activeByKey[j.key] == j {
		delete(s.activeByKey, j.key)
	}
}

// cancelQueuedLocked cancels every still-queued leader (and its
// followers). Each gets a synthetic start+finish span so the event log
// reconciles (obscheck requires every started job to finish) and the
// summary reflects the cancellation as a failed job. Caller holds s.mu.
func (s *sched) cancelQueuedLocked() {
	now := s.cfg.Clock()
	cancelOne := func(j *job) {
		j.state = StateCanceled
		j.started = now
		j.finished = now
		j.errMsg = context.Canceled.Error()
		if j.sp != nil {
			j.sp.JobStarted(0, 0)
			j.sp.JobFinished(0, 0, context.Canceled)
		}
		s.retireLocked(j)
		close(j.done)
	}
	for c := 0; c < numClasses; c++ {
		for _, j := range s.queues[c] {
			for _, f := range j.followers {
				cancelOne(f)
			}
			j.followers = nil
			cancelOne(j)
		}
		s.queues[c] = nil
	}
	s.queuedN = 0
}

// activeLocked counts non-terminal jobs. Caller holds s.mu.
func (s *sched) activeLocked() int {
	n := 0
	for _, id := range s.order {
		if !s.jobs[id].terminal() {
			n++
		}
	}
	return n
}

// Drain stops admissions, then waits for every accepted job to reach a
// terminal state. While ctx lives, running and queued jobs finish
// normally (graceful). Once ctx is done, queued jobs are canceled
// outright and running jobs' contexts are canceled (sweeps stop at the
// next cell boundary); Drain still waits for the workers to surface
// those cancellations — every accepted job is terminal when it returns.
func (s *sched) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	wake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer wake()

	s.mu.Lock()
	for s.activeLocked() > 0 && ctx.Err() == nil {
		s.cond.Wait()
	}
	if ctx.Err() != nil {
		s.cancelQueuedLocked()
		s.baseStop() // cancels every running job's context
		for s.activeLocked() > 0 {
			s.cond.Wait()
		}
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.baseStop()
}

// medianRunLocked estimates one job's run duration from completions so
// far. Caller holds s.mu.
func (s *sched) medianRunLocked() time.Duration {
	n := len(s.completed)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.completed...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	return sorted[n/2]
}

// JobStatus is the GET /jobs/{id} document.
type JobStatus struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Label    string `json:"label"`
	Tenant   string `json:"tenant"`
	Priority string `json:"priority"`
	State    string `json:"state"`
	// Memo attributes where the result came from: "miss" (computed),
	// "hit"/"disk-hit" (served from the result cache), "dedup" (shared an
	// identical in-flight submission).
	Memo string `json:"memo,omitempty"`
	// DedupOf names the leader job this submission attached to.
	DedupOf string `json:"dedup_of,omitempty"`
	QueueNS int64  `json:"queue_ns,omitempty"`
	RunNS   int64  `json:"run_ns,omitempty"`
	// ETANS estimates time to completion for queued/running jobs, from the
	// median completed run so far (0 until one exists).
	ETANS int64  `json:"eta_ns,omitempty"`
	Err   string `json:"err,omitempty"`
}

// Status snapshots one job for polling clients.
func (s *sched) Status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock()
	st := JobStatus{
		ID:       j.id,
		Kind:     j.kind,
		Label:    j.label,
		Tenant:   j.tenant,
		Priority: [numClasses]string{PriorityHigh, PriorityNormal, PriorityLow}[j.class],
		State:    j.state,
		Memo:     j.memo,
		DedupOf:  j.leaderID,
		Err:      j.errMsg,
	}
	med := s.medianRunLocked()
	switch j.state {
	case StateQueued:
		st.QueueNS = int64(now.Sub(j.enqueued))
		if med > 0 {
			// Rough position-aware bound: jobs ahead of it / workers, +1 for
			// its own run.
			ahead := 0
			for c := 0; c <= j.class; c++ {
				for _, q := range s.queues[c] {
					if q == j {
						break
					}
					ahead++
				}
			}
			st.ETANS = int64(med) * int64(ahead/s.cfg.Workers+1)
		}
	case StateRunning:
		st.QueueNS = int64(j.started.Sub(j.enqueued))
		st.RunNS = int64(now.Sub(j.started))
		if med > 0 {
			if rem := int64(med) - st.RunNS; rem > 0 {
				st.ETANS = rem
			}
		}
	default:
		st.QueueNS = int64(j.started.Sub(j.enqueued))
		st.RunNS = int64(j.finished.Sub(j.started))
	}
	return st
}

// List snapshots every job in submission order, newest last.
func (s *sched) List() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		out = append(out, s.Status(j))
	}
	return out
}
