package serve

import (
	"bytes"
	"testing"
)

// FuzzSubmitRequest fuzzes the job-submission decoder — the daemon's
// only hostile-input surface. The contract: any byte stream either
// parses into a request that re-validates cleanly (and has a stable
// content key), or is rejected with a RequestError (a 400) — never a
// panic, never an internal error class, never an accepted-but-invalid
// job.
func FuzzSubmitRequest(f *testing.F) {
	seeds := []string{
		// Valid submissions, one per kind.
		`{"kind":"bench","tenant":"alice","bench":{"design":"baseline","query":"Q1"}}`,
		`{"kind":"bench","tenant":"bob","priority":"high","workload":{"small":true,"seed":7},"bench":{"design":"SAM-en","query":"Qs3","gran":8,"fault_rate":0.001,"fault_seed":42,"fault_retries":3}}`,
		`{"kind":"figure","tenant":"ci","workload":{"ta":512,"tb":2048},"figure":{"id":"fig12"}}`,
		`{"kind":"sweep","tenant":"t","sweep":{"query":"arith","selectivities":[0.01,0.5],"projectivities":[1,16],"records":2048}}`,
		`{"kind":"reliability","tenant":"t","reliability":{"seed":99,"rates":[0.001],"max_retries":2}}`,
		// Defect shapes the validator must reject.
		``,
		`{`,
		`null`,
		`[]`,
		`"bench"`,
		`{"kind":"bench"}`,
		`{"kind":"bench","tenant":"t","bench":{"design":"nope","query":"Q1"}}`,
		`{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1","fault_rate":NaN}}`,
		`{"kind":"bench","tenant":"t","bench":{"design":"baseline","query":"Q1","fault_rate":1e999}}`,
		`{"kind":"bench","tenant":"t","workload":{"seed":-1},"bench":{"design":"baseline","query":"Q1"}}`,
		`{"kind":"sweep","tenant":"t","sweep":{"query":"arith","selectivities":[1e308],"projectivities":[1]}}`,
		`{"kind":"figure","tenant":"t","figure":{"id":"fig12"}} trailing`,
		`{"kind":"figure","tenant":"t","figure":{"id":"fig12"},"unknown_field":true}`,
		`{"kind":"reliability","tenant":"t","reliability":{"rates":[-0.5]}}`,
		`{"kind":"bench","tenant":"../../etc","bench":{"design":"baseline","query":"Q1"}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseSubmit(bytes.NewReader(data))
		if err != nil {
			if !IsRequestError(err) {
				t.Fatalf("rejection is not a RequestError (would 500, want 400): %v", err)
			}
			return
		}
		// Accepted submissions must be internally consistent: they
		// re-validate, carry a stable non-empty content key, and render a
		// label without panicking.
		if err := req.Validate(); err != nil {
			t.Fatalf("parsed request fails re-validation: %v", err)
		}
		k1, k2 := req.Key(), req.Key()
		if k1 == "" || k1 != k2 {
			t.Fatalf("unstable content key: %q vs %q", k1, k2)
		}
		_ = jobLabel(req)
		w := req.workload()
		if w.TaRecords <= 0 || w.TbRecords <= 0 {
			t.Fatalf("resolved workload degenerate: %+v", w)
		}
	})
}
