// Package serve is the simulation-as-a-service layer behind cmd/samd: a
// long-running HTTP/JSON daemon that accepts simulation, sweep, and
// reliability-campaign job submissions from many concurrent clients and
// multiplexes them onto one bounded worker pool with per-tenant quotas,
// priority classes, and content-addressed dedup — identical design ×
// config × seed submitted by different tenants runs once (memo.Fingerprint
// keys + the singleflight inside internal/memo), and repeated submissions
// are served from the job-result cache without occupying a queue slot.
//
// The package splits into four layers:
//
//   - api.go: the wire types and their strict decoding — malformed or
//     hostile submissions (unknown fields, NaN/Inf rates, negative seeds,
//     oversized sweep grids) are 4xx rejections, never panics and never
//     accepted-but-wrong jobs (FuzzSubmitRequest pins this).
//   - sched.go: the session-scoped scheduler — per-tenant admission
//     quotas, high/normal/low priority classes with a clock-bounded
//     anti-starvation promotion, follower attachment for deduplicated
//     jobs, and graceful/forced drain.
//   - exec.go: the bridge onto internal/core — each accepted job becomes
//     a deterministic run closure over the shared memo cache, so results
//     are byte-identical to the batch CLIs for any client count, worker
//     count, and arrival order.
//   - server.go: the Daemon — HTTP handlers, the internal/obs telemetry
//     plane (job spans feed /metrics, /progress, /healthz and the JSONL
//     event log), and the SIGTERM drain sequence.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/memo"
)

// Admission limits. Every bound is enforced at parse time so a hostile
// client cannot smuggle an unbounded amount of work past the scheduler.
const (
	// MaxBodyBytes bounds one submission body.
	MaxBodyBytes = 1 << 20
	// MaxTableRecords bounds the Ta/Tb/sweep table sizes.
	MaxTableRecords = 1 << 22
	// MaxSweepGrid bounds a sweep job's selectivity × projectivity grid.
	MaxSweepGrid = 256
	// MaxSweepAxis bounds each sweep axis on its own.
	MaxSweepAxis = 64
	// MaxRates bounds a reliability job's transient-rate sweep.
	MaxRates = 8
	// MaxRetries bounds the fault read-retry budget a job may request.
	MaxRetries = 16
	// MaxTenantLen bounds the tenant identifier.
	MaxTenantLen = 64
)

// Job kinds.
const (
	KindBench       = "bench"
	KindFigure      = "figure"
	KindSweep       = "sweep"
	KindReliability = "reliability"
)

// Priority classes, strongest first. The scheduler dispatches strictly by
// class, except that a job queued longer than the configured bound is
// promoted regardless of class (no class can starve another forever).
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// RequestError marks a submission defect the client can fix — the
// handlers map it to 400 Bad Request.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

// badf builds a RequestError.
func badf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// IsRequestError reports whether err is a client-side submission defect.
func IsRequestError(err error) bool {
	var re *RequestError
	return errors.As(err, &re)
}

// SubmitRequest is the POST /jobs body. Kind selects exactly one of the
// payload sections; the others must be absent.
type SubmitRequest struct {
	// Kind: "bench", "figure", "sweep", or "reliability".
	Kind string `json:"kind"`
	// Tenant is the submitting tenant's identifier (required; quota
	// accounting and job listing key on it).
	Tenant string `json:"tenant"`
	// Priority: "high", "normal" (default), or "low".
	Priority string `json:"priority,omitempty"`

	// Workload overrides the Ta/Tb database scale for bench and figure
	// jobs (nil = the default workload).
	Workload *WorkloadReq `json:"workload,omitempty"`

	Bench       *BenchReq       `json:"bench,omitempty"`
	Figure      *FigureReq      `json:"figure,omitempty"`
	Sweep       *SweepReq       `json:"sweep,omitempty"`
	Reliability *ReliabilityReq `json:"reliability,omitempty"`
}

// WorkloadReq selects the benchmark database scale.
type WorkloadReq struct {
	// Small selects the test-scale workload as the base (before Ta/Tb
	// overrides), like samfig -small.
	Small bool `json:"small,omitempty"`
	// Ta/Tb override the record counts (0 = keep the base).
	Ta int `json:"ta,omitempty"`
	Tb int `json:"tb,omitempty"`
	// Seed overrides the table-generation seed.
	Seed *uint64 `json:"seed,omitempty"`
}

// BenchReq runs one Table 3 benchmark query on one design.
type BenchReq struct {
	// Design is the design name exactly as the figures print it
	// ("baseline", "SAM-en", "GS-DRAM-ecc", ...).
	Design string `json:"design"`
	// Query is the Table 3 query name (Q1..Q12, Qs1..Qs6).
	Query string `json:"query"`
	// Gran selects the strided granularity in bits per chip: 0 (design
	// default), 4, 8, or 16.
	Gran int `json:"gran,omitempty"`
	// FaultRate attaches the transient fault model at this per-burst
	// probability (0 = fault-free). Must be a finite value in [0,1].
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultSeed seeds the fault stream (0 = the workload seed).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FaultRetries bounds read retries before poisoning (nil = controller
	// default; 0 = poison on first DUE).
	FaultRetries *int `json:"fault_retries,omitempty"`
}

// FigureReq regenerates one of the paper's figure tables.
type FigureReq struct {
	// ID: "fig12", "fig14a", or "fig14b".
	ID string `json:"id"`
}

// SweepReq runs a Fig. 15-style selectivity × projectivity grid and
// returns per-point speedups.
type SweepReq struct {
	// Query: "arith" or "aggr".
	Query string `json:"query"`
	// Selectivities are the fractions selected, each finite in (0, 1].
	Selectivities []float64 `json:"selectivities"`
	// Projectivities are the projected field counts, each in [1, 127].
	Projectivities []int `json:"projectivities"`
	// Records sets the generated table size (0 = 2048).
	Records int `json:"records,omitempty"`
	// RecordBytes sets the record size (0 = 1KB).
	RecordBytes int `json:"record_bytes,omitempty"`
}

// ReliabilityReq runs the Monte-Carlo fault campaign.
type ReliabilityReq struct {
	// Seed drives the whole campaign (0 = the default campaign seed).
	Seed uint64 `json:"seed,omitempty"`
	// Rates overrides the transient-rate sweep (each finite in (0, 1]).
	Rates []float64 `json:"rates,omitempty"`
	// MaxRetries overrides the retry budget (nil = campaign default).
	MaxRetries *int `json:"max_retries,omitempty"`
}

// ParseSubmit strictly decodes one submission: unknown fields, trailing
// garbage, bodies past MaxBodyBytes, and every semantic defect Validate
// catches are RequestErrors. It never panics on any input (the
// FuzzSubmitRequest contract).
func ParseSubmit(r io.Reader) (*SubmitRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	req := &SubmitRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, badf("malformed submission: %v", err)
	}
	// One complete JSON value and nothing else — mirror trace.parseLine's
	// rejection of trailing garbage.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, badf("trailing data after submission object")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// Validate checks every semantic invariant of the submission.
func (r *SubmitRequest) Validate() error {
	if r.Tenant == "" {
		return badf("tenant is required")
	}
	if len(r.Tenant) > MaxTenantLen {
		return badf("tenant name exceeds %d bytes", MaxTenantLen)
	}
	for _, c := range r.Tenant {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return badf("tenant name contains %q (allowed: letters, digits, '-', '_', '.')", c)
		}
	}
	switch r.Priority {
	case "", PriorityHigh, PriorityNormal, PriorityLow:
	default:
		return badf("unknown priority %q (high, normal, low)", r.Priority)
	}
	if r.Workload != nil {
		if err := r.Workload.validate(); err != nil {
			return err
		}
	}
	payloads := 0
	for _, p := range []bool{r.Bench != nil, r.Figure != nil, r.Sweep != nil, r.Reliability != nil} {
		if p {
			payloads++
		}
	}
	if payloads > 1 {
		return badf("exactly one job payload may be set")
	}
	switch r.Kind {
	case KindBench:
		if r.Bench == nil {
			return badf("kind %q requires the bench payload", r.Kind)
		}
		return r.Bench.validate()
	case KindFigure:
		if r.Figure == nil {
			return badf("kind %q requires the figure payload", r.Kind)
		}
		return r.Figure.validate()
	case KindSweep:
		if r.Sweep == nil {
			return badf("kind %q requires the sweep payload", r.Kind)
		}
		if r.Workload != nil {
			return badf("sweep jobs generate their own table; workload must be absent")
		}
		return r.Sweep.validate()
	case KindReliability:
		if r.Reliability == nil {
			return badf("kind %q requires the reliability payload", r.Kind)
		}
		if r.Workload != nil {
			return badf("reliability jobs use the campaign workload; workload must be absent")
		}
		return r.Reliability.validate()
	case "":
		return badf("kind is required (bench, figure, sweep, reliability)")
	default:
		return badf("unknown kind %q (bench, figure, sweep, reliability)", r.Kind)
	}
}

func (w *WorkloadReq) validate() error {
	if w.Ta < 0 || w.Tb < 0 {
		return badf("workload record counts must be non-negative")
	}
	if w.Ta > MaxTableRecords || w.Tb > MaxTableRecords {
		return badf("workload record counts exceed %d", MaxTableRecords)
	}
	return nil
}

func (b *BenchReq) validate() error {
	if _, ok := core.KindByName(b.Design); !ok {
		return badf("unknown design %q", b.Design)
	}
	if _, ok := core.BenchQueryByName(b.Query); !ok {
		return badf("unknown benchmark query %q (Q1..Q12, Qs1..Qs6)", b.Query)
	}
	switch b.Gran {
	case 0, 4, 8, 16:
	default:
		return badf("granularity %d bits/chip unsupported (0, 4, 8, 16)", b.Gran)
	}
	if math.IsNaN(b.FaultRate) || math.IsInf(b.FaultRate, 0) {
		return badf("fault rate must be finite")
	}
	if b.FaultRate < 0 || b.FaultRate > 1 {
		return badf("fault rate %g outside [0,1]", b.FaultRate)
	}
	if b.FaultRetries != nil && (*b.FaultRetries < 0 || *b.FaultRetries > MaxRetries) {
		return badf("fault retries %d outside [0,%d]", *b.FaultRetries, MaxRetries)
	}
	return nil
}

// FigureIDs lists the figure tables a figure job can regenerate.
func FigureIDs() []string { return []string{"fig12", "fig14a", "fig14b"} }

func (f *FigureReq) validate() error {
	for _, id := range FigureIDs() {
		if f.ID == id {
			return nil
		}
	}
	return badf("unknown figure %q (fig12, fig14a, fig14b)", f.ID)
}

func (s *SweepReq) validate() error {
	switch s.Query {
	case "arith", "aggr":
	default:
		return badf("unknown sweep query %q (arith, aggr)", s.Query)
	}
	if len(s.Selectivities) == 0 || len(s.Projectivities) == 0 {
		return badf("sweep requires at least one selectivity and one projectivity")
	}
	if len(s.Selectivities) > MaxSweepAxis || len(s.Projectivities) > MaxSweepAxis {
		return badf("sweep axis exceeds %d points", MaxSweepAxis)
	}
	if grid := len(s.Selectivities) * len(s.Projectivities); grid > MaxSweepGrid {
		return badf("sweep grid of %d cells exceeds %d", grid, MaxSweepGrid)
	}
	for _, sel := range s.Selectivities {
		if math.IsNaN(sel) || math.IsInf(sel, 0) || sel <= 0 || sel > 1 {
			return badf("selectivity %g outside (0,1]", sel)
		}
	}
	for _, p := range s.Projectivities {
		if p < 1 || p > 127 {
			return badf("projectivity %d outside [1,127]", p)
		}
	}
	if s.Records < 0 || s.Records > MaxTableRecords {
		return badf("sweep records %d outside [0,%d]", s.Records, MaxTableRecords)
	}
	if s.RecordBytes != 0 && (s.RecordBytes < 8 || s.RecordBytes > 65536) {
		return badf("record size %dB outside [8,65536]", s.RecordBytes)
	}
	return nil
}

func (r *ReliabilityReq) validate() error {
	if len(r.Rates) > MaxRates {
		return badf("reliability rate sweep exceeds %d rates", MaxRates)
	}
	for _, rate := range r.Rates {
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 || rate > 1 {
			return badf("fault rate %g outside (0,1]", rate)
		}
	}
	if r.MaxRetries != nil && (*r.MaxRetries < 0 || *r.MaxRetries > MaxRetries) {
		return badf("max retries %d outside [0,%d]", *r.MaxRetries, MaxRetries)
	}
	return nil
}

// workload resolves the effective database scale for bench/figure jobs:
// base (default or small) with per-field overrides, like samfig's flags.
func (r *SubmitRequest) workload() core.Workload {
	w := core.DefaultWorkload()
	if r.Workload == nil {
		return w
	}
	if r.Workload.Small {
		w = core.SmallWorkload()
	}
	if r.Workload.Ta > 0 {
		w.TaRecords = r.Workload.Ta
	}
	if r.Workload.Tb > 0 {
		w.TbRecords = r.Workload.Tb
	}
	if r.Workload.Seed != nil {
		w.Seed = *r.Workload.Seed
	}
	return w
}

// granOptions maps the wire granularity to design options.
func granOptions(bits int) design.Options {
	switch bits {
	case 4:
		return design.Options{Gran: design.Gran4}
	case 8:
		return design.Options{Gran: design.Gran8}
	case 16:
		return design.Options{Gran: design.Gran16}
	default:
		return design.Options{}
	}
}

// Key is the submission's content address: a memo.Fingerprint over every
// field that determines the job's result — and nothing else. Tenant and
// priority are scheduling metadata, so identical work submitted by
// different tenants at different priorities shares one key (and therefore
// one execution). Workload resolution happens before hashing, so
// {"small":true} collides with the equivalent explicit record counts.
func (r *SubmitRequest) Key() string {
	f := memo.NewFingerprint("samd")
	f.Str("kind", r.Kind)
	switch r.Kind {
	case KindBench:
		w := r.workload()
		kind, _ := core.KindByName(r.Bench.Design)
		retries := -1 // controller default
		if r.Bench.FaultRetries != nil {
			retries = *r.Bench.FaultRetries
		}
		f.I64("design", int64(kind)).
			Str("query", r.Bench.Query).
			I64("gran", int64(r.Bench.Gran)).
			I64("ta", int64(w.TaRecords)).
			I64("tb", int64(w.TbRecords)).
			U64("seed", w.Seed).
			F64("fault.rate", r.Bench.FaultRate).
			U64("fault.seed", r.Bench.FaultSeed).
			I64("fault.retries", int64(retries))
	case KindFigure:
		w := r.workload()
		f.Str("figure", r.Figure.ID).
			I64("ta", int64(w.TaRecords)).
			I64("tb", int64(w.TbRecords)).
			U64("seed", w.Seed)
	case KindSweep:
		f.Str("query", r.Sweep.Query).
			I64("records", int64(r.Sweep.Records)).
			I64("recordBytes", int64(r.Sweep.RecordBytes)).
			I64("sels", int64(len(r.Sweep.Selectivities)))
		for _, s := range r.Sweep.Selectivities {
			f.F64("sel", s)
		}
		f.I64("projs", int64(len(r.Sweep.Projectivities)))
		for _, p := range r.Sweep.Projectivities {
			f.I64("proj", int64(p))
		}
	case KindReliability:
		f.U64("seed", r.Reliability.Seed).
			I64("rates", int64(len(r.Reliability.Rates)))
		for _, rate := range r.Reliability.Rates {
			f.F64("rate", rate)
		}
		retries := -1
		if r.Reliability.MaxRetries != nil {
			retries = *r.Reliability.MaxRetries
		}
		f.I64("retries", int64(retries))
	}
	return f.Sum()
}
