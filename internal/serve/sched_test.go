package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable scheduler clock: time moves only when a
// test advances it, so queue-age thresholds are exact, not sleep-raced.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// benchReq builds a valid bench submission whose content key is unique
// per seed (the fault seed is part of the fingerprint even at rate 0).
func benchReq(tenant, priority string, seed uint64) *SubmitRequest {
	r := &SubmitRequest{
		Kind:     KindBench,
		Tenant:   tenant,
		Priority: priority,
		Bench:    &BenchReq{Design: "baseline", Query: "Q1", FaultSeed: seed},
	}
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return r
}

// waitState polls until the job reaches want (the scheduler publishes
// terminal states via the done channel; non-terminal transitions are
// polled).
func waitState(t *testing.T, s *sched, j *job, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Status(j); st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q (now %q)", j.id, want, s.Status(j).State)
}

// blockingSched builds a single-worker scheduler whose exec parks each
// job on release until the test lets it go, reporting dispatch order on
// started.
func blockingSched(clk *fakeClock, quota, queueCap int) (s *sched, started chan string, release chan struct{}) {
	started = make(chan string, 64)
	release = make(chan struct{})
	cfg := schedConfig{
		Workers:      1,
		QueueCap:     queueCap,
		TenantQuota:  quota,
		MaxQueueWait: time.Minute,
		Clock:        clk.Now,
		Exec: func(ctx context.Context, j *job) (jobResult, string, error) {
			started <- j.id
			select {
			case <-release:
				return jobResult{Body: []byte(j.id)}, "miss", nil
			case <-ctx.Done():
				return jobResult{}, "", ctx.Err()
			}
		},
	}
	return newSched(cfg), started, release
}

func nextStarted(t *testing.T, started chan string) string {
	t.Helper()
	select {
	case id := <-started:
		return id
	case <-time.After(10 * time.Second):
		t.Fatal("no job dispatched within 10s")
		return ""
	}
}

// TestPriorityDispatchAndAging pins the two dispatch rules with an
// injected clock: strict priority (a queued high-priority job is always
// picked before queued normal/low work), and the anti-starvation bound (a
// job queued at least MaxQueueWait is promoted ahead of every class, so a
// flood of high-priority submissions delays low-priority work by a
// bounded wait, never forever).
func TestPriorityDispatchAndAging(t *testing.T) {
	clk := newFakeClock()
	s, started, release := blockingSched(clk, 0, 100)

	a, err := s.Submit(benchReq("t1", PriorityLow, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := nextStarted(t, started); got != a.id {
		t.Fatalf("first dispatch = %s, want %s", got, a.id)
	}

	// Queue: two more lows, then a high. Strict priority must pick the
	// high next even though the lows are older.
	low2, _ := s.Submit(benchReq("t1", PriorityLow, 2), nil)
	if _, err := s.Submit(benchReq("t1", PriorityLow, 3), nil); err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(benchReq("t2", PriorityHigh, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	release <- struct{}{}
	if got := nextStarted(t, started); got != high.id {
		t.Fatalf("post-release dispatch = %s, want high-priority %s", got, high.id)
	}

	// Aging: low2 was enqueued at t0. Let 45s pass, then flood fresh highs,
	// then cross low2 over the 60s MaxQueueWait bound — the aged low must
	// beat the (20s-old) highs.
	clk.Advance(45 * time.Second)
	if _, err := s.Submit(benchReq("t2", PriorityHigh, 5), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(benchReq("t2", PriorityHigh, 6), nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Second)
	release <- struct{}{}
	if got := nextStarted(t, started); got != low2.id {
		t.Fatalf("aged dispatch = %s, want promoted low-priority %s", got, low2.id)
	}

	// Let everything finish and shut down.
	go func() {
		for {
			select {
			case release <- struct{}{}:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	s.Drain(context.Background())
}

// TestTenantQuota pins 429-class admission: a tenant at its active-job
// cap is refused while other tenants are not, and capacity frees when its
// jobs complete.
func TestTenantQuota(t *testing.T) {
	clk := newFakeClock()
	s, started, release := blockingSched(clk, 2, 100)

	j1, err := s.Submit(benchReq("alice", PriorityNormal, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	nextStarted(t, started)
	if _, err := s.Submit(benchReq("alice", PriorityNormal, 2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(benchReq("alice", PriorityNormal, 3), nil); err != ErrQuota {
		t.Fatalf("third active alice job: err = %v, want ErrQuota", err)
	}
	// Another tenant is unaffected.
	if _, err := s.Submit(benchReq("bob", PriorityNormal, 4), nil); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	// Completing an alice job frees her slot.
	release <- struct{}{}
	waitState(t, s, j1, StateDone)
	if _, err := s.Submit(benchReq("alice", PriorityNormal, 5), nil); err != nil {
		t.Fatalf("alice refused after a completion freed quota: %v", err)
	}

	go func() {
		for {
			select {
			case release <- struct{}{}:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	s.Drain(context.Background())
}

// TestQueueCap pins the global backpressure bound.
func TestQueueCap(t *testing.T) {
	clk := newFakeClock()
	s, started, release := blockingSched(clk, 0, 1)

	if _, err := s.Submit(benchReq("t1", PriorityNormal, 1), nil); err != nil {
		t.Fatal(err)
	}
	nextStarted(t, started) // running — queue empty again
	if _, err := s.Submit(benchReq("t1", PriorityNormal, 2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(benchReq("t1", PriorityNormal, 3), nil); err != ErrQueueFull {
		t.Fatalf("over-cap submit: err = %v, want ErrQueueFull", err)
	}
	// A duplicate of queued work attaches as a follower — no queue slot —
	// so dedup still admits at full queue.
	if _, err := s.Submit(benchReq("t1", PriorityNormal, 2), nil); err != nil {
		t.Fatalf("dedup submit refused at full queue: %v", err)
	}

	go func() {
		for {
			select {
			case release <- struct{}{}:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	s.Drain(context.Background())
}

// TestDedupFollowers pins content-addressed dedup: identical submissions
// from different tenants attach to the in-flight leader, run once, and
// all complete with the leader's result attributed "dedup".
func TestDedupFollowers(t *testing.T) {
	clk := newFakeClock()
	s, started, release := blockingSched(clk, 0, 100)

	leader, err := s.Submit(benchReq("alice", PriorityNormal, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	nextStarted(t, started)
	f1, err := s.Submit(benchReq("bob", PriorityHigh, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Submit(benchReq("carol", PriorityLow, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f1.leaderID != leader.id || f2.leaderID != leader.id {
		t.Fatalf("followers not attached to leader %s: %q %q", leader.id, f1.leaderID, f2.leaderID)
	}

	release <- struct{}{}
	for _, j := range []*job{leader, f1, f2} {
		waitState(t, s, j, StateDone)
	}
	if string(f1.result.Body) != string(leader.result.Body) {
		t.Fatalf("follower result %q != leader result %q", f1.result.Body, leader.result.Body)
	}
	if st := s.Status(f1); st.Memo != "dedup" || st.DedupOf != leader.id {
		t.Fatalf("follower status = %+v, want memo=dedup dedup_of=%s", st, leader.id)
	}
	if st := s.Status(leader); st.Memo != "miss" {
		t.Fatalf("leader memo = %q, want miss", st.Memo)
	}
	if got := len(started); got != 0 {
		t.Fatalf("%d extra dispatches after dedup — followers must not run", got)
	}
	s.Drain(context.Background())
}

// TestDrainGraceful: with a live context, Drain lets queued and running
// work finish; everything ends done, and submissions are refused.
func TestDrainGraceful(t *testing.T) {
	clk := newFakeClock()
	cfg := schedConfig{
		Workers: 2, QueueCap: 100, Clock: clk.Now,
		Exec: func(ctx context.Context, j *job) (jobResult, string, error) {
			return jobResult{Body: []byte(j.id)}, "miss", nil
		},
	}
	s := newSched(cfg)
	var jobs []*job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(benchReq("t1", PriorityNormal, uint64(i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Drain(context.Background())
	for _, j := range jobs {
		if st := s.Status(j); st.State != StateDone {
			t.Fatalf("after graceful drain job %s state = %q, want done", j.id, st.State)
		}
	}
	if _, err := s.Submit(benchReq("t1", PriorityNormal, 99), nil); err != ErrDraining {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}
}

// TestDrainForced: with an expired context, Drain cancels queued jobs
// outright and interrupts running ones via their contexts; every accepted
// job still reaches a terminal state before Drain returns.
func TestDrainForced(t *testing.T) {
	clk := newFakeClock()
	s, started, _ := blockingSched(clk, 0, 100)

	running, err := s.Submit(benchReq("t1", PriorityNormal, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	nextStarted(t, started)
	queued, err := s.Submit(benchReq("t1", PriorityNormal, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.Submit(benchReq("t2", PriorityNormal, 2), nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // grace already expired: force immediately
	s.Drain(ctx)

	for _, j := range []*job{running, queued, follower} {
		st := s.Status(j)
		if st.State != StateCanceled {
			t.Fatalf("after forced drain job %s state = %q, want canceled", j.id, st.State)
		}
	}
}

// TestStatusListing sanity-checks the polling document fields.
func TestStatusListing(t *testing.T) {
	clk := newFakeClock()
	s, started, release := blockingSched(clk, 0, 100)
	j, err := s.Submit(benchReq("t1", PriorityHigh, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	nextStarted(t, started)
	st := s.Status(j)
	if st.State != StateRunning || st.Priority != PriorityHigh || st.Kind != KindBench {
		t.Fatalf("running status = %+v", st)
	}
	release <- struct{}{}
	waitState(t, s, j, StateDone)
	if l := s.List(); len(l) != 1 || l[0].ID != j.id {
		t.Fatalf("listing = %+v", l)
	}
	s.Drain(context.Background())
}
