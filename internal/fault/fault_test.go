package fault

import (
	"reflect"
	"testing"

	"sam/internal/dram"
	"sam/internal/ecc"
)

func rdCmd(rank int, col int) dram.Command {
	return dram.Command{Kind: dram.CmdRD, Rank: rank, Col: col}
}

// TestInjectorDeterministic pins the replay contract: two injectors with the
// same config, fed the same command sequence, produce identical verdicts and
// bit-identical counters — the property the campaign's workers=1 vs
// workers=8 equivalence rests on.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{
		Seed:      42,
		Rate:      0.3,
		DeadChips: []ChipFault{{Rank: 0, Chip: 5}},
		StuckDQs:  []StuckDQ{{Rank: 1, Chip: 9, DQ: 2, Value: 1}},
	}
	a := New(cfg, ecc.SchemeSSC, true)
	b := New(cfg, ecc.SchemeSSC, true)
	for i := 0; i < 2000; i++ {
		cmd := rdCmd(i%2, i)
		va := a.DataBurst(cmd, dram.Cycle(i))
		vb := b.DataBurst(cmd, dram.Cycle(i))
		if va != vb {
			t.Fatalf("burst %d: verdicts diverge (%v vs %v)", i, va, vb)
		}
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("counters diverge:\n%+v\n%+v", a.Counters, b.Counters)
	}
	if a.Counters.Bursts != 2000 || a.Counters.Injected == 0 {
		t.Fatalf("expected injections over 2000 bursts: %+v", a.Counters)
	}
	// A different seed must move the fault sites.
	cfg.Seed = 43
	c := New(cfg, ecc.SchemeSSC, true)
	for i := 0; i < 2000; i++ {
		c.DataBurst(rdCmd(i%2, i), dram.Cycle(i))
	}
	if reflect.DeepEqual(a.Counters, c.Counters) {
		t.Fatal("different seeds produced identical counters")
	}
}

// TestInjectorSingleDeadChip: one dead chip is chipkill's home turf — every
// affected burst must come back corrected, none uncorrectable, none silent,
// and the attribution must name the dead chip on every hit.
func TestInjectorSingleDeadChip(t *testing.T) {
	for _, scheme := range []ecc.Scheme{ecc.SchemeSSC, ecc.SchemeSSCVariant, ecc.SchemeSSCDSD} {
		in := New(Config{Seed: 7, DeadChips: []ChipFault{{Rank: -1, Chip: 3}}}, scheme, true)
		for i := 0; i < 500; i++ {
			if v := in.DataBurst(rdCmd(0, i), dram.Cycle(i)); v != dram.BurstCorrected {
				t.Fatalf("%v burst %d: verdict %v, want corrected", scheme, i, v)
			}
		}
		c := in.Counters
		if c.CorrectedBursts != 500 || c.DUEs != 0 || c.SilentCorruptions != 0 {
			t.Fatalf("%v: %+v", scheme, c)
		}
		for ch, n := range c.PerChip {
			if ch == 3 && n != 500 {
				t.Fatalf("%v: chip 3 attributed %d, want 500", scheme, n)
			}
			if ch != 3 && n != 0 {
				t.Fatalf("%v: chip %d attributed %d, want 0", scheme, ch, n)
			}
		}
	}
}

// TestInjectorTwoChipMapDUE: a dead chip plus a stuck DQ on a different chip
// is outside every scheme's correction power. Under SSC-DSD (distance 5)
// detection of two faulty chips is guaranteed, so every burst where both
// faults bite must be a DUE — never a silent corruption. Persistence also
// means retries can't help, which is what drives the controller's poison
// path.
func TestInjectorTwoChipMapDUE(t *testing.T) {
	in := New(Config{
		Seed:      11,
		DeadChips: []ChipFault{{Rank: -1, Chip: 3}},
		StuckDQs:  []StuckDQ{{Rank: -1, Chip: 20, DQ: 1, Value: 1}},
	}, ecc.SchemeSSCDSD, true)
	for i := 0; i < 500; i++ {
		in.DataBurst(rdCmd(0, i), dram.Cycle(i))
	}
	c := in.Counters
	if c.SilentCorruptions != 0 {
		t.Fatalf("silent corruptions inside the SSC-DSD guarantee: %+v", c)
	}
	if c.DUEs == 0 {
		t.Fatalf("two-chip persistent map never produced a DUE: %+v", c)
	}
	// The stuck DQ sometimes matches the data (half its bits on average),
	// leaving only the dead chip — those bursts are corrected, not DUEs.
	if c.CorrectedBursts+c.DUEs != c.Injected {
		t.Fatalf("accounting identity broken: %+v", c)
	}
}

// TestInjectorTransientRate checks the drawn-event rate lands near the
// configured probability and that single-site transients never escalate
// beyond corrected (each event touches exactly one chip).
func TestInjectorTransientRate(t *testing.T) {
	const n = 20000
	in := New(Config{Seed: 3, Rate: 0.1}, ecc.SchemeSSC, true)
	for i := 0; i < n; i++ {
		in.DataBurst(rdCmd(0, i), dram.Cycle(i))
	}
	c := in.Counters
	events := c.TransientBits + c.TransientChips + c.TransientCorrelated
	if events < n/10-300 || events > n/10+300 {
		t.Fatalf("drew %d transient events over %d bursts at rate 0.1", events, n)
	}
	if c.DUEs != 0 || c.SilentCorruptions != 0 {
		t.Fatalf("single-chip transients escalated: %+v", c)
	}
	if c.CorrectedBursts != c.Injected {
		t.Fatalf("accounting identity broken: %+v", c)
	}
}

// TestInjectorNoECC: on a design that cannot keep codewords (plain GS-DRAM)
// every biting fault is a silent corruption — there is nothing to detect it.
func TestInjectorNoECC(t *testing.T) {
	in := New(Config{Seed: 5, DeadChips: []ChipFault{{Rank: -1, Chip: 2}}}, ecc.SchemeSSC, false)
	for i := 0; i < 100; i++ {
		if v := in.DataBurst(rdCmd(0, i), dram.Cycle(i)); v != dram.BurstOK {
			t.Fatalf("no-ECC verdict %v, want ok (silent)", v)
		}
	}
	c := in.Counters
	if c.SilentCorruptions != 100 || c.CorrectedBursts != 0 || c.DUEs != 0 {
		t.Fatalf("no-ECC accounting: %+v", c)
	}
}

// TestInjectorRankScoping: a rank-0 fault must not touch rank-1 bursts, but
// a ganged burst drives all ranks and sees every rank's faults.
func TestInjectorRankScoping(t *testing.T) {
	cfg := Config{Seed: 9, DeadChips: []ChipFault{{Rank: 0, Chip: 4}}}
	in := New(cfg, ecc.SchemeSSC, true)
	for i := 0; i < 200; i++ {
		if v := in.DataBurst(rdCmd(1, i), dram.Cycle(i)); v != dram.BurstOK {
			t.Fatalf("rank-1 burst saw rank-0 fault: %v", v)
		}
	}
	gang := dram.Command{Kind: dram.CmdRD, Rank: 1, GangRanks: true}
	if v := in.DataBurst(gang, 0); v != dram.BurstCorrected {
		t.Fatalf("ganged burst verdict %v, want corrected", v)
	}
}

// TestConfigValidate covers the sanity checks.
func TestConfigValidate(t *testing.T) {
	good := []Config{{}, {Rate: 1}, {Rate: 0.5, MaxRetries: 3}, {StuckDQs: []StuckDQ{{Value: 1}}}}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{{Rate: -0.1}, {Rate: 1.5}, {MaxRetries: -1},
		{BitWeight: -1}, {StuckDQs: []StuckDQ{{Value: 2}}}}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if (Config{}).Active() {
		t.Error("zero config reports active")
	}
	if !(Config{Rate: 0.1}).Active() || !(Config{DeadChips: []ChipFault{{}}}).Active() {
		t.Error("active config reports inactive")
	}
}
