// Package fault injects deterministic, seed-driven memory faults at the
// dram.Device burst boundary and adjudicates every data-carrying burst
// through the chipkill codecs in internal/ecc.
//
// The injector implements dram.BurstProbe: for each RD/WR burst the device
// moves, it synthesizes a deterministic payload, encodes it under the
// design's burst layout (ecc.Scheme), applies the configured faults —
// transient single-bit flips, correlated multi-bit bursts, transient
// whole-chip kills, and persistent per-rank fault maps (dead chips,
// stuck-at DQs) — then decodes and compares against ground truth. Because
// the injector knows the true payload, a decode that *accepts* wrong data
// is observable here as a silent data corruption, which is exactly the
// quantity the paper's chipkill-compatibility argument says must stay zero.
//
// Determinism: every random draw comes from a splitmix64 stream keyed by
// (Config.Seed, burst index), so a run that issues the same command
// sequence sees the same faults — regardless of wall clock, worker count,
// or anything outside the command stream. Retried reads are new bursts with
// new indices: transient faults are re-drawn (and usually vanish), while
// the persistent fault map reapplies, so a multi-chip map fault stays
// uncorrectable through every retry and ends in a poisoned completion.
package fault

import (
	"fmt"

	"sam/internal/dram"
	"sam/internal/ecc"
)

// ChipFault marks one chip dead. Rank < 0 applies the fault to every rank
// (a channel-wide part failure); otherwise only bursts driven by that rank
// (or ganged bursts, which drive all ranks) see it. Chip is reduced modulo
// the scheme's rank width.
type ChipFault struct {
	Rank int
	Chip int
}

// StuckDQ forces one DQ lane of one chip to a constant value on every beat.
// Rank semantics match ChipFault; DQ is reduced modulo 4.
type StuckDQ struct {
	Rank  int
	Chip  int
	DQ    int
	Value byte // 0 or 1
}

// Config selects the fault models and their rates.
type Config struct {
	// Seed keys the deterministic fault stream.
	Seed uint64
	// Rate is the per-burst probability of one transient fault event.
	Rate float64
	// Relative weights of the transient event kinds; all-zero selects the
	// default mix 0.6 bit / 0.2 chip / 0.2 correlated.
	BitWeight, ChipWeight, CorrelatedWeight float64
	// Persistent per-rank fault map, applied to every burst it covers.
	DeadChips []ChipFault
	StuckDQs  []StuckDQ
	// MaxRetries bounds the controller's read-retry loop before poisoning:
	// 0 means poison on the first detected-uncorrectable read (no
	// retries). The sim layer applies this budget on every fault-injected
	// run and restores the controller default on fault-free runs, so a
	// campaign point never inherits the previous point's budget. (Plumbed
	// by the sim layer — the injector itself never retries.)
	MaxRetries int
}

// Counters is the reliability accounting one injector accumulates. The
// per-burst identity Bursts = clean + Transparent + CorrectedBursts + DUEs +
// SilentCorruptions holds by construction (each adjudicated burst lands in
// exactly one class).
type Counters struct {
	// Bursts is every data burst adjudicated (including retries).
	Bursts uint64 `json:"bursts"`
	// Injected counts bursts where at least one chip's bits actually
	// changed (a drawn fault can be masked by the data, e.g. a stuck DQ
	// already at its value — those count as Transparent when nothing else
	// hit the burst).
	Injected uint64 `json:"injected"`
	// Transparent counts bursts where a fault was drawn or mapped but no
	// bit changed.
	Transparent uint64 `json:"transparent"`
	// CorrectedBursts/CorrectedSymbols: ECC corrected the burst in flight.
	CorrectedBursts  uint64 `json:"corrected_bursts"`
	CorrectedSymbols uint64 `json:"corrected_symbols"`
	// DUEs are detected-uncorrectable decodes (each retry attempt that
	// still fails counts again).
	DUEs uint64 `json:"dues"`
	// SilentCorruptions counts decodes that accepted wrong data — the
	// quantity the chipkill-compatibility argument requires to be zero —
	// plus, on no-ECC designs, every corrupted burst (nothing detects them).
	SilentCorruptions uint64 `json:"silent_corruptions"`
	// Transient event draws by kind.
	TransientBits       uint64 `json:"transient_bits"`
	TransientChips      uint64 `json:"transient_chips"`
	TransientCorrelated uint64 `json:"transient_correlated"`
	// PerChip attributes faulted bursts to the chips that changed.
	PerChip []uint64 `json:"per_chip"`
}

// Add accumulates o into c (cross-channel aggregation).
func (c *Counters) Add(o Counters) {
	c.Bursts += o.Bursts
	c.Injected += o.Injected
	c.Transparent += o.Transparent
	c.CorrectedBursts += o.CorrectedBursts
	c.CorrectedSymbols += o.CorrectedSymbols
	c.DUEs += o.DUEs
	c.SilentCorruptions += o.SilentCorruptions
	c.TransientBits += o.TransientBits
	c.TransientChips += o.TransientChips
	c.TransientCorrelated += o.TransientCorrelated
	for len(c.PerChip) < len(o.PerChip) {
		c.PerChip = append(c.PerChip, 0)
	}
	for i, v := range o.PerChip {
		c.PerChip[i] += v
	}
}

// Injector adjudicates bursts for one device (one channel). It is not
// goroutine-safe; attach one injector per device.
type Injector struct {
	cfg    Config
	codec  *ecc.Chipkill // nil on designs without ECC
	chips  int
	hasECC bool

	// Counters is the accumulated reliability accounting.
	Counters Counters

	n       uint64 // burst index: the deterministic stream key
	payload []byte
	decoded []byte
	burst   *ecc.Burst
	clean   [][ecc.BytesPerChip]byte
}

// New builds an injector for a design whose bursts carry the given layout
// scheme. hasECC=false models designs that physically cannot keep whole
// codewords in a burst (plain GS-DRAM, Section 3.3.1): faults hit raw data
// with nothing to detect them, so every corrupted burst counts as a silent
// corruption.
func New(cfg Config, scheme ecc.Scheme, hasECC bool) *Injector {
	in := &Injector{cfg: cfg, hasECC: hasECC}
	codec := ecc.NewChipkill(scheme)
	in.chips = codec.Chips()
	if hasECC {
		in.codec = codec
		in.payload = make([]byte, codec.DataBytes())
		in.decoded = make([]byte, codec.DataBytes())
	}
	in.burst = ecc.NewBurst(in.chips)
	in.clean = make([][ecc.BytesPerChip]byte, in.chips)
	in.Counters.PerChip = make([]uint64, in.chips)
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Reset rewinds the injector for a fresh run under a new configuration,
// keeping every workspace (codec scratch, burst, counters slice) so repeated
// sweep points and campaign cells reuse one injector per channel instead of
// rebuilding codecs and buffers each run. The deterministic stream restarts
// at burst index 0, exactly as a freshly built injector would.
func (in *Injector) Reset(cfg Config) {
	in.cfg = cfg
	in.n = 0
	per := in.Counters.PerChip
	for i := range per {
		per[i] = 0
	}
	in.Counters = Counters{PerChip: per}
}

// stream is a splitmix64 PRNG keyed per burst.
type stream struct{ s uint64 }

func newStream(seed, idx uint64) stream {
	// Pre-mix the key so consecutive indices land far apart.
	return stream{s: (seed ^ 0x6a09e667f3bcc909) + idx*0x9e3779b97f4a7c15}
}

func (st *stream) next() uint64 {
	st.s += 0x9e3779b97f4a7c15
	z := st.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (st *stream) intn(n int) int { return int(st.next() % uint64(n)) }

func (st *stream) float() float64 { return float64(st.next()>>11) / (1 << 53) }

// nonzeroByte draws a uniformly random byte in [1, 255].
func (st *stream) nonzeroByte() byte { return byte(st.next()%255) + 1 }

// rankApplies reports whether a per-rank fault entry covers this burst.
func rankApplies(entryRank int, cmd dram.Command) bool {
	return entryRank < 0 || entryRank == cmd.Rank || cmd.GangRanks
}

// DataBurst implements dram.BurstProbe: synthesize, corrupt, adjudicate.
func (in *Injector) DataBurst(cmd dram.Command, at dram.Cycle) dram.BurstVerdict {
	idx := in.n
	in.n++
	in.Counters.Bursts++
	st := newStream(in.cfg.Seed, idx)

	// The injector's one burst workspace: both branches overwrite every bit,
	// so no Reset is needed between bursts.
	b := in.burst
	if in.hasECC {
		for i := range in.payload {
			in.payload[i] = byte(st.next())
		}
		in.codec.EncodeInto(b, in.payload)
	} else {
		// No codec: the burst is raw data across the rank's chips.
		for ch := range b.Chips {
			for i := range b.Chips[ch] {
				b.Chips[ch][i] = byte(st.next())
			}
		}
	}
	copy(in.clean, b.Chips)

	touched := false
	// Persistent per-rank fault map.
	for _, f := range in.cfg.DeadChips {
		if rankApplies(f.Rank, cmd) {
			b.CorruptChip(((f.Chip%in.chips)+in.chips)%in.chips, st.nonzeroByte())
			touched = true
		}
	}
	for _, f := range in.cfg.StuckDQs {
		if rankApplies(f.Rank, cmd) {
			chip := ((f.Chip % in.chips) + in.chips) % in.chips
			dq := ((f.DQ % 4) + 4) % 4
			for beat := 0; beat < 8; beat++ {
				b.SetBit(chip, beat, dq, f.Value)
			}
			touched = true
		}
	}
	// At most one transient event per burst.
	if in.cfg.Rate > 0 && st.float() < in.cfg.Rate {
		touched = true
		bw, cw, rw := in.cfg.BitWeight, in.cfg.ChipWeight, in.cfg.CorrelatedWeight
		if bw == 0 && cw == 0 && rw == 0 {
			bw, cw, rw = 0.6, 0.2, 0.2
		}
		switch u := st.float() * (bw + cw + rw); {
		case u < bw:
			in.Counters.TransientBits++
			chip, beat, dq := st.intn(in.chips), st.intn(8), st.intn(4)
			b.SetBit(chip, beat, dq, b.Bit(chip, beat, dq)^1)
		case u < bw+cw:
			in.Counters.TransientChips++
			b.CorruptChip(st.intn(in.chips), st.nonzeroByte())
		default:
			// Correlated multi-bit burst confined to one chip: a contiguous
			// run of 2..8 bit positions within the chip's 32 burst bits
			// (the DRAMScope-style single-device multi-bit pattern).
			in.Counters.TransientCorrelated++
			chip := st.intn(in.chips)
			k := 2 + st.intn(7)
			start := st.intn(32 - k + 1)
			for i := start; i < start+k; i++ {
				beat, dq := i/4, i%4
				b.SetBit(chip, beat, dq, b.Bit(chip, beat, dq)^1)
			}
		}
	}

	// Ground truth: which chips actually changed.
	changed := 0
	for ch := range b.Chips {
		if b.Chips[ch] != in.clean[ch] {
			changed++
			in.Counters.PerChip[ch]++
		}
	}
	if changed == 0 {
		if touched {
			in.Counters.Transparent++
		}
		return dram.BurstOK
	}
	in.Counters.Injected++

	if !in.hasECC {
		// Nothing stands between the fault and the consumer.
		in.Counters.SilentCorruptions++
		return dram.BurstOK
	}

	corrected, err := in.codec.DecodeInto(in.decoded, b)
	switch {
	case err != nil:
		in.Counters.DUEs++
		return dram.BurstUncorrectable
	case equalBytes(in.decoded, in.payload):
		in.Counters.CorrectedBursts++
		in.Counters.CorrectedSymbols += uint64(corrected)
		return dram.BurstCorrected
	default:
		// The decoder accepted wrong data: a silent corruption, visible
		// only because we know the ground truth. The campaign asserts this
		// stays zero for every SAM layout.
		in.Counters.SilentCorruptions++
		return dram.BurstOK
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate sanity-checks a configuration.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("fault: rate %v outside [0,1]", c.Rate)
	}
	if c.BitWeight < 0 || c.ChipWeight < 0 || c.CorrelatedWeight < 0 {
		return fmt.Errorf("fault: negative model weight")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries")
	}
	for _, f := range c.StuckDQs {
		if f.Value > 1 {
			return fmt.Errorf("fault: stuck DQ value %d, want 0 or 1", f.Value)
		}
	}
	return nil
}

// Active reports whether the configuration injects anything at all.
func (c Config) Active() bool {
	return c.Rate > 0 || len(c.DeadChips) > 0 || len(c.StuckDQs) > 0
}
