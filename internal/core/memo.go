package core

import (
	"context"
	"sort"

	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/memo"
	"sam/internal/runner"
	"sam/internal/sim"
	"sam/internal/sql"
	"sam/internal/stats"
)

// Memo is the pipelines' content-addressed run-result cache: same design
// × options × workload × query × fault-config × seed ⇒ the cached
// QueryResult, behind in-flight singleflight dedup. Thread it through a
// sweep with Par.Memo (every driver honors it); a nil *Memo everywhere
// means "run everything", bit-for-bit the pre-cache behaviour.
//
// Correctness rests on two invariants the repo already pins: runs are
// deterministic and worker-count-invariant (frozen-scheduler and
// sharded-engine differentials), and cached QueryResults are never
// mutated by consumers (the drivers only read them). The key covers
// every run input; fixed simulator semantics (timing models, scheduler
// policy, cpu/cache defaults, workload generation) are covered by
// memo.SchemaVersion — see TestMemoSaltTripwire.
type Memo struct {
	cache *memo.Cache[*sim.QueryResult]
}

// MemoOptions configures a Memo.
type MemoOptions struct {
	// MaxEntries bounds the in-process tier (0 = memo.DefaultMaxEntries).
	MaxEntries int
	// Dir, when non-empty, adds the persistent disk tier (-cache-dir).
	Dir string
}

// NewMemo builds a run-result cache over the stable sim codec.
func NewMemo(o MemoOptions) *Memo {
	return &Memo{cache: memo.New(memo.Config[*sim.QueryResult]{
		MaxEntries: o.MaxEntries,
		Dir:        o.Dir,
		Encode:     sim.EncodeResult,
		Decode:     sim.DecodeResult,
	})}
}

// Counters reads the cache instruments (hits, misses, dedup, bytes, …).
func (m *Memo) Counters() memo.Counters { return m.cache.Counters() }

// StatsSnapshot freezes the memo.* instruments as an internal/stats
// snapshot for -stats-json and -metrics-dir dumps.
func (m *Memo) StatsSnapshot() *stats.Snapshot { return m.cache.StatsSnapshot() }

// RunOne is the cached form of core.RunOne: a hit returns the previously
// computed result, a miss runs the simulation and caches it. Safe for
// concurrent use; concurrent lookups of the same key run one simulation.
func (m *Memo) RunOne(kind design.Kind, opts design.Options, w Workload, q BenchQuery) (*sim.QueryResult, error) {
	r, _, err := m.runBench(kind, opts, w, q, nil)
	return r, err
}

// RunOneObserved is RunOne exposing the cache outcome, so callers feeding
// the telemetry plane can attribute the run (hit/miss/disk-hit/dedup).
func (m *Memo) RunOneObserved(kind design.Kind, opts design.Options, w Workload, q BenchQuery) (*sim.QueryResult, memo.Outcome, error) {
	return m.runBench(kind, opts, w, q, nil)
}

// RunOneFaultedObserved is the cached, outcome-exposing form of
// RunOneFaulted: the fault model is part of the fingerprint (an inactive
// or nil model collides with the fault-free key), so fault campaigns and
// the samd daemon's fault-enabled bench jobs share the cache safely.
func (m *Memo) RunOneFaultedObserved(kind design.Kind, opts design.Options, w Workload, q BenchQuery, fm *sim.FaultModel) (*sim.QueryResult, memo.Outcome, error) {
	return m.runBench(kind, opts, w, q, fm)
}

// runBench caches a benchmark-shaped run (both tables loaded, optional
// fault model) under its canonical fingerprint.
func (m *Memo) runBench(kind design.Kind, opts design.Options, w Workload, q BenchQuery, fm *sim.FaultModel) (*sim.QueryResult, memo.Outcome, error) {
	colStore := kind == design.Ideal && q.Class == ClassQ
	key := benchRunKey(kind, opts, w, q, colStore, fm)
	return m.cache.Do(key, func() (*sim.QueryResult, error) {
		s := NewSystem(kind, opts, w, colStore)
		if fm != nil {
			s.Faults = fm
		}
		return RunOn(s, q)
	})
}

// do caches an arbitrary run under a precomputed key (the sweep driver
// builds its own system shape).
func (m *Memo) do(key string, compute func() (*sim.QueryResult, error)) (*sim.QueryResult, memo.Outcome, error) {
	return m.cache.Do(key, compute)
}

// runOne routes a benchmark run through the Par's memo when present,
// annotating the job span (when the sweep is observed) with the cache
// outcome so the event log can attribute hits and misses per job.
func (p Par) runOne(ctx context.Context, kind design.Kind, opts design.Options, w Workload, q BenchQuery) (*sim.QueryResult, error) {
	if p.Memo == nil {
		return RunOne(kind, opts, w, q)
	}
	r, out, err := p.Memo.RunOneObserved(kind, opts, w, q)
	if err == nil {
		runner.Annotate(ctx, "memo", out.String())
	}
	return r, err
}

// annotateMemo tags the observed job span with a cache outcome — the
// shared helper for drivers that call Memo.do directly.
func annotateMemo(ctx context.Context, out memo.Outcome, err error) {
	if err == nil {
		runner.Annotate(ctx, "memo", out.String())
	}
}

// --- canonical fingerprints -------------------------------------------------
//
// The key covers everything that determines a run's outcome, and nothing
// that does not: BenchQuery.Name and IsWrite are presentation metadata
// (the run is fully determined by SQL + params + class), so Fig12 and
// Fig13 evaluating the same (design, query) cell share one simulation.
// design.Options canonicalize through Options.Canon, sql.Params through
// sorted keys, and a nil fault model collides with an inactive one —
// the "semantically identical inputs built two ways" property
// TestMemoKeyCanonicalization pins.

// addDesign fingerprints the resolved design point.
func addDesign(f *memo.Fingerprint, kind design.Kind, opts design.Options) {
	c := opts.Canon(kind)
	f.I64("design.kind", int64(kind)).
		I64("design.gran.bits", int64(c.Gran.BitsPerChip)).
		I64("design.gran.sector", int64(c.Gran.SectorBytes)).
		I64("design.gran.reach", int64(c.Gran.Reach)).
		Bool("design.gran.gang", c.Gran.Gang).
		I64("design.substrate", int64(c.Substrate))
}

// addParams fingerprints query parameters in sorted-key order; nil and
// empty collide (both resolve no parameters).
func addParams(f *memo.Fingerprint, p sql.Params) {
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Strings(names)
	f.I64("params.n", int64(len(names)))
	for _, n := range names {
		f.Str("param.name", n).U64("param.value", p[n])
	}
}

// addFault fingerprints the fault configuration. nil and inactive
// configurations collide: the engine treats both as a fault-free run
// (no injectors attached, default retry budget restored).
func addFault(f *memo.Fingerprint, fm *sim.FaultModel) {
	if fm == nil || !fm.Active() {
		f.Bool("fault.active", false)
		return
	}
	f.Bool("fault.active", true).
		U64("fault.seed", fm.Seed).
		F64("fault.rate", fm.Rate).
		I64("fault.retries", int64(fm.MaxRetries))
	// All-zero weights select the documented default mix, and the draw
	// normalizes by the sum — canonicalize both so scaled-equal mixes
	// collide.
	bw, cw, rw := fm.BitWeight, fm.ChipWeight, fm.CorrelatedWeight
	if bw == 0 && cw == 0 && rw == 0 {
		bw, cw, rw = 0.6, 0.2, 0.2
	}
	sum := bw + cw + rw
	f.F64("fault.w.bit", bw/sum).F64("fault.w.chip", cw/sum).F64("fault.w.corr", rw/sum)
	// Persistent maps keep list order: application order is part of the
	// deterministic replay (duplicate stuck-DQ entries are last-wins).
	f.I64("fault.dead.n", int64(len(fm.DeadChips)))
	for _, dc := range fm.DeadChips {
		f.I64("fault.dead.rank", int64(dc.Rank)).I64("fault.dead.chip", int64(dc.Chip))
	}
	f.I64("fault.stuck.n", int64(len(fm.StuckDQs)))
	for _, sd := range fm.StuckDQs {
		f.I64("fault.stuck.rank", int64(sd.Rank)).
			I64("fault.stuck.chip", int64(sd.Chip)).
			I64("fault.stuck.dq", int64(sd.DQ)).
			I64("fault.stuck.value", int64(sd.Value))
	}
}

// benchRunKey fingerprints a benchmark-shaped run: the standard Ta/Tb
// workload pair, one Table 3 query, optional fault injection.
func benchRunKey(kind design.Kind, opts design.Options, w Workload, q BenchQuery, colStore bool, fm *sim.FaultModel) string {
	f := memo.NewFingerprint("bench")
	addDesign(f, kind, opts)
	f.I64("workload.ta", int64(w.TaRecords)).
		I64("workload.tb", int64(w.TbRecords)).
		U64("workload.seed", w.Seed).
		Str("query.sql", q.SQL).
		I64("query.class", int64(q.Class)).
		Bool("colstore", colStore)
	addParams(f, q.Params)
	addFault(f, fm)
	return f.Sum()
}

// sweepRunKey fingerprints a Fig. 15 sweep-point run: a single generated
// table with its own schema and seed, the generated sweep query, and the
// store orientation (which also drives the row-wise FullScan rule).
func sweepRunKey(kind design.Kind, opts design.Options, schema imdb.Schema, tableSeed uint64, query string, params sql.Params, colStore bool) string {
	f := memo.NewFingerprint("sweep")
	addDesign(f, kind, opts)
	f.Str("table.name", schema.Name).
		I64("table.fields", int64(schema.Fields)).
		I64("table.records", int64(schema.Records)).
		U64("table.seed", tableSeed).
		Str("query.sql", query).
		Bool("colstore", colStore)
	addParams(f, params)
	addFault(f, nil)
	return f.Sum()
}
