package core

import "sam/internal/design"

// Name resolution for the external entry points (cmd/samsim, the samd
// daemon): every design kind and Table 3 benchmark query is addressable
// by the exact name the paper (and every figure table) prints.

// AllKinds returns every addressable design point: the normalization
// baseline, the per-query ideal, and the evaluated designs in paper
// order.
func AllKinds() []design.Kind {
	return append([]design.Kind{design.Baseline, design.Ideal}, design.AllEvaluated()...)
}

// KindByName resolves a design name ("baseline", "SAM-en", "GS-DRAM-ecc",
// ...) to its kind. Matching is exact — the API layers reject anything
// else rather than guess.
func KindByName(name string) (design.Kind, bool) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return design.Baseline, false
}

// KindNames lists every addressable design name, for error messages and
// usage strings.
func KindNames() []string {
	kinds := AllKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return names
}

// BenchQueryByName resolves a Table 3 query name (Q1..Q12, Qs1..Qs6).
func BenchQueryByName(name string) (BenchQuery, bool) {
	for _, q := range Benchmark() {
		if q.Name == name {
			return q, true
		}
	}
	return BenchQuery{}, false
}
