// Package core is the library's public face: it wires the Table 3
// benchmark queries, the evaluated designs, and the simulator into
// ready-to-run experiments — the programmatic API behind cmd/samfig, the
// examples, and the bench harness.
package core

import (
	"context"
	"errors"
	"fmt"

	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/runner"
	"sam/internal/sim"
	"sam/internal/sql"
)

// QueryClass separates the benchmark's column-preferring (Q) and
// row-preferring (Qs) query sets.
type QueryClass int

// Query classes.
const (
	ClassQ QueryClass = iota
	ClassQs
)

// String names the class.
func (c QueryClass) String() string {
	if c == ClassQs {
		return "Qs"
	}
	return "Q"
}

// BenchQuery is one Table 3 benchmark entry.
type BenchQuery struct {
	Name   string
	SQL    string
	Class  QueryClass
	Params sql.Params
	// IsWrite marks update/insert queries (the Fig. 13 categories).
	IsWrite bool
}

// The Table 3 predicate constants: the categorical predicate field has
// values {0..3}, so "> 2" and "= 3" both select 25%, and "> 3" is the
// mostly-false predicate of Q2.
var (
	sel25     = sql.Params{"x": 2, "y": 2, "z": 3}
	selNever  = sql.Params{"x": 3}
	sel25Pair = sql.Params{
		"x": imdb.SelectivityThreshold(0.5), // f1 > x: 50%
		"y": imdb.Percentile(0.5),           // f9 < y: 50% -> 25% joint
	}
)

// Benchmark returns the full Table 3 query set in paper order.
func Benchmark() []BenchQuery {
	return []BenchQuery{
		{Name: "Q1", SQL: "SELECT f3, f4 FROM Ta WHERE f10 > x", Class: ClassQ, Params: sel25},
		{Name: "Q2", SQL: "SELECT * FROM Tb WHERE f10 > x", Class: ClassQ, Params: selNever},
		{Name: "Q3", SQL: "SELECT SUM(f9) FROM Ta WHERE f10 > x", Class: ClassQ, Params: sel25},
		{Name: "Q4", SQL: "SELECT SUM(f9) FROM Tb WHERE f10 > x", Class: ClassQ, Params: sel25},
		{Name: "Q5", SQL: "SELECT AVG(f1) FROM Ta WHERE f10 > x", Class: ClassQ, Params: sel25},
		{Name: "Q6", SQL: "SELECT AVG(f1) FROM Tb WHERE f10 > x", Class: ClassQ, Params: sel25},
		{Name: "Q7", SQL: "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9", Class: ClassQ},
		{Name: "Q8", SQL: "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9", Class: ClassQ},
		{Name: "Q9", SQL: "SELECT f3, f4 FROM Ta WHERE f1 > x AND f9 < y", Class: ClassQ, Params: sel25Pair},
		{Name: "Q10", SQL: "SELECT f3, f4 FROM Ta WHERE f1 > x AND f2 < y", Class: ClassQ, Params: sel25Pair},
		{Name: "Q11", SQL: "UPDATE Tb SET f3 = x, f4 = y WHERE f10 = z", Class: ClassQ, Params: sel25, IsWrite: true},
		{Name: "Q12", SQL: "UPDATE Tb SET f9 = x WHERE f10 = z", Class: ClassQ, Params: sel25, IsWrite: true},
		{Name: "Qs1", SQL: "SELECT * FROM Ta LIMIT 1024", Class: ClassQs},
		{Name: "Qs2", SQL: "SELECT * FROM Tb LIMIT 1024", Class: ClassQs},
		{Name: "Qs3", SQL: "SELECT * FROM Ta WHERE f10 > x", Class: ClassQs, Params: sel25},
		{Name: "Qs4", SQL: "SELECT * FROM Tb WHERE f10 > x", Class: ClassQs, Params: sel25},
		{Name: "Qs5", SQL: "INSERT INTO Ta VALUES (f0, f1, f2, f3)", Class: ClassQs, IsWrite: true},
		{Name: "Qs6", SQL: "INSERT INTO Tb VALUES (f0, f1, f2, f3)", Class: ClassQs, IsWrite: true},
	}
}

// Workload describes the database scale for a run.
type Workload struct {
	TaRecords int
	TbRecords int
	Seed      uint64
}

// DefaultWorkload keeps both tables several times the LLC, like the
// paper's 10M-record tables dwarf its 8MB LLC, while staying simulable in
// seconds (see DESIGN.md section 7).
func DefaultWorkload() Workload {
	return Workload{TaRecords: 16 << 10, TbRecords: 128 << 10, Seed: 0xDA7ABA5E}
}

// SmallWorkload is the bench/test scale.
func SmallWorkload() Workload {
	return Workload{TaRecords: 2 << 10, TbRecords: 16 << 10, Seed: 0xDA7ABA5E}
}

// NewSystem builds a system for kind with both benchmark tables loaded.
// For the Ideal design, colStore selects the per-query preferred layout.
func NewSystem(kind design.Kind, opts design.Options, w Workload, colStore bool) *sim.System {
	d := design.New(kind, opts)
	s := sim.NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), colStore)
	s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), colStore)
	return s
}

// RunOne executes one benchmark query on a fresh system of the given kind
// and returns its result. The Ideal design automatically uses the
// preferred store for the query class, and Qs-class queries execute with
// row-preferring full-record scans.
func RunOne(kind design.Kind, opts design.Options, w Workload, q BenchQuery) (*sim.QueryResult, error) {
	colStore := kind == design.Ideal && q.Class == ClassQ
	return RunOn(NewSystem(kind, opts, w, colStore), q)
}

// RunOneFaulted is RunOne with fault injection attached: every data burst
// of the run is adjudicated through the design's chipkill codec with faults
// drawn from fm. The throughput benchmarks use it to measure the price of a
// live fault plane against the fault-free path.
func RunOneFaulted(kind design.Kind, opts design.Options, w Workload, q BenchQuery, fm *sim.FaultModel) (*sim.QueryResult, error) {
	colStore := kind == design.Ideal && q.Class == ClassQ
	s := NewSystem(kind, opts, w, colStore)
	s.Faults = fm
	return RunOn(s, q)
}

// RunOn executes one benchmark query on an already-built system, applying
// the same compile and scan-shape rules as RunOne. Tools that attach
// extras to the system first (event tracing, fault injection) run through
// this.
func RunOn(s *sim.System, q BenchQuery) (*sim.QueryResult, error) {
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		return nil, err
	}
	plan, err := sql.Compile(stmt, q.Params)
	if err != nil {
		return nil, err
	}
	plan.FullScan = q.Class == ClassQs && plan.WholeRecord
	return s.RunPlan(plan)
}

// Par configures how the experiment drivers fan their simulation grids
// out over the bounded worker pool (internal/runner). The zero value runs
// with GOMAXPROCS workers and no progress reporting; every driver is
// deterministic for any worker count.
type Par struct {
	// Workers bounds concurrent simulations per sweep level; <= 0 means
	// runtime.GOMAXPROCS(0). Workers = 1 reproduces serial execution.
	Workers int
	// Progress, when non-nil, receives (completed, total) after each
	// simulation of the current sweep finishes. Calls are serialized.
	Progress func(done, total int)
	// Metrics, when non-nil, receives every run's full statistics as the
	// driver aggregates its results. Calls happen in the driver's fixed
	// aggregation order (never from worker goroutines), so the emission
	// sequence is identical for any Workers value — the property the
	// figure pipelines rely on to dump byte-identical metrics files.
	Metrics func(figID, x, designName string, st sim.RunStats)
	// Memo, when non-nil, routes every simulation of the sweep through the
	// content-addressed run cache: identical (design, workload, query,
	// fault) cells — across figures, sweeps, and repeat invocations —
	// simulate once. Results are unchanged run-for-run (the cache returns
	// exactly what the simulation would have produced), so figures are
	// byte-identical with and without it.
	Memo *Memo
	// Observer, when non-nil, receives run-lifecycle callbacks for every
	// sweep the driver fans out: job enqueue/start/finish spans with memo
	// hit/miss attribution — the feed behind the live telemetry plane
	// (internal/obs). Observation never influences scheduling or results;
	// tables stay byte-identical with it attached.
	Observer runner.SweepObserver
}

func (p Par) opts() runner.Options {
	return runner.Options{Workers: p.Workers, OnProgress: p.Progress, Observer: p.Observer}
}

// SpeedupResult is one (query, design) cell of Fig. 12.
type SpeedupResult struct {
	Query   string
	Design  string
	Speedup float64
	Result  *sim.QueryResult
}

// checkFunctional enforces invariant 9: every design must return the same
// functional results as the row-store baseline.
func checkFunctional(q BenchQuery, k design.Kind, base, r *sim.QueryResult) error {
	if r.Rows != base.Rows || r.ProjChecks != base.ProjChecks || r.ArithChecks != base.ArithChecks {
		return fmt.Errorf("%s on %v: functional mismatch (rows %d vs %d)", q.Name, k, r.Rows, base.Rows)
	}
	return nil
}

// RunComparison runs the query on the baseline and every given design,
// returning speedups normalized to the row-store baseline. All runs
// (baseline included) share one bounded worker pool; every run owns a
// fresh system, so nothing is shared between workers. On failure the
// joined error lists every failing design, not just the first.
func RunComparison(ctx context.Context, kinds []design.Kind, opts design.Options, w Workload, q BenchQuery, par Par) ([]SpeedupResult, error) {
	all := append([]design.Kind{design.Baseline}, kinds...)
	runs, err := runner.Map(ctx, all, par.opts(), func(ctx context.Context, _ int, k design.Kind) (*sim.QueryResult, error) {
		r, err := par.runOne(ctx, k, opts, w, q)
		if err != nil {
			return nil, fmt.Errorf("%s on %v: %w", q.Name, k, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	base := runs[0]
	out := make([]SpeedupResult, len(kinds))
	var errs []error
	for i, k := range kinds {
		r := runs[i+1]
		if err := checkFunctional(q, k, base, r); err != nil {
			errs = append(errs, err)
			continue
		}
		out[i] = SpeedupResult{
			Query:   q.Name,
			Design:  k.String(),
			Speedup: sim.Speedup(base.Stats, r.Stats),
			Result:  r,
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}
