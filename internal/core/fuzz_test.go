package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/sim"
	"sam/internal/sql"
)

// genQuery produces a random statement from the dialect grammar. Every
// generated query is valid by construction; parameters are bound inline as
// literals.
func genQuery(rng *rand.Rand, fields int) string {
	field := func() string { return fmt.Sprintf("f%d", rng.Intn(fields)) }
	pred := func() string {
		ops := []string{">", "<", "="}
		op := ops[rng.Intn(len(ops))]
		var val uint64
		if rng.Intn(2) == 0 {
			// Values in the categorical range make = predicates selective
			// but satisfiable.
			val = uint64(rng.Intn(4))
		} else {
			val = imdb.SelectivityThreshold(rng.Float64())
		}
		return fmt.Sprintf("%s %s %d", field(), op, val)
	}
	where := ""
	if rng.Intn(4) > 0 {
		preds := []string{pred()}
		for rng.Intn(3) == 0 {
			preds = append(preds, pred())
		}
		where = " WHERE " + strings.Join(preds, " AND ")
	}

	switch rng.Intn(6) {
	case 0: // plain projection
		n := 1 + rng.Intn(3)
		cols := make([]string, n)
		for i := range cols {
			cols[i] = field()
		}
		return "SELECT " + strings.Join(cols, ", ") + " FROM T" + where
	case 1: // star with limit
		return fmt.Sprintf("SELECT * FROM T%s LIMIT %d", where, 1+rng.Intn(200))
	case 2: // aggregates
		aggs := []string{"SUM", "AVG", "COUNT", "MIN", "MAX"}
		n := 1 + rng.Intn(3)
		items := make([]string, n)
		for i := range items {
			a := aggs[rng.Intn(len(aggs))]
			if a == "COUNT" && rng.Intn(2) == 0 {
				items[i] = "COUNT(*)"
			} else {
				items[i] = fmt.Sprintf("%s(%s)", a, field())
			}
		}
		return "SELECT " + strings.Join(items, ", ") + " FROM T" + where
	case 3: // grouped aggregate over the categorical column
		return fmt.Sprintf("SELECT COUNT(*), SUM(%s) FROM T%s GROUP BY f10", field(), where)
	case 4: // arithmetic projection
		n := 2 + rng.Intn(4)
		cols := make([]string, n)
		for i := range cols {
			cols[i] = field()
		}
		return "SELECT " + strings.Join(cols, " + ") + " FROM T" + where
	default: // update
		return fmt.Sprintf("UPDATE T SET %s = %d%s", field(), rng.Uint64()>>1, where)
	}
}

// TestDifferentialRandomQueries is randomized differential testing of the
// whole stack: every generated query must return identical functional
// results on every memory design (invariant 9 under fuzz).
func TestDifferentialRandomQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzz skipped in short mode")
	}
	const trials = 40
	kinds := []design.Kind{design.Baseline, design.SAMEn, design.SAMSub, design.RCNVMWd, design.GSDRAMecc}
	rng := rand.New(rand.NewSource(0xD1FF))
	schema := imdb.Schema{
		Name: "T", Fields: 16, Records: 512,
		Categorical: map[int]uint64{10: 4},
	}
	for trial := 0; trial < trials; trial++ {
		query := genQuery(rng, schema.Fields)
		var ref *sim.QueryResult
		var refKind design.Kind
		for _, k := range kinds {
			d := design.New(k, design.Options{})
			s := sim.NewSystem(d)
			s.AddTable(imdb.NewTable(schema, 0xFEED), false)
			r, err := s.RunQuery(query, sql.Params{})
			if err != nil {
				t.Fatalf("trial %d %v: %q: %v", trial, k, query, err)
			}
			if ref == nil {
				ref, refKind = r, k
				continue
			}
			if r.Rows != ref.Rows || r.ProjChecks != ref.ProjChecks || r.ArithChecks != ref.ArithChecks {
				t.Fatalf("trial %d: %q differs between %v and %v (rows %d vs %d)",
					trial, query, refKind, k, ref.Rows, r.Rows)
			}
			for i := range r.Aggregates {
				if r.Aggregates[i] != ref.Aggregates[i] {
					t.Fatalf("trial %d: %q aggregate %d differs: %v vs %v",
						trial, query, i, ref.Aggregates[i], r.Aggregates[i])
				}
			}
			if len(r.Groups) != len(ref.Groups) {
				t.Fatalf("trial %d: %q group count differs", trial, query)
			}
			for key, vals := range ref.Groups {
				got, ok := r.Groups[key]
				if !ok {
					t.Fatalf("trial %d: %q missing group %d on %v", trial, query, key, k)
				}
				for i := range vals {
					if got[i] != vals[i] {
						t.Fatalf("trial %d: %q group %d agg %d differs", trial, query, key, i)
					}
				}
			}
		}
	}
}

// TestGeneratedQueriesAlwaysParse pins the generator to the dialect: every
// output must lex, parse, and compile.
func TestGeneratedQueriesAlwaysParse(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9E4))
	for trial := 0; trial < 500; trial++ {
		query := genQuery(rng, 16)
		stmt, err := sql.Parse(query)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, query, err)
		}
		if _, err := sql.Compile(stmt, sql.Params{}); err != nil {
			t.Fatalf("trial %d: %q: compile: %v", trial, query, err)
		}
	}
}
