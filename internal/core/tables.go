package core

import (
	"fmt"

	"sam/internal/design"
	"sam/internal/dram"
	"sam/internal/sql"
	"sam/internal/stats"
)

// Table1 reproduces the qualitative design comparison (Table 1). Marks
// follow the paper: "+" good/unmodified, "o" fair/slightly modified,
// "x" poor/modified.
func Table1() *stats.Table {
	kinds := []design.Kind{
		design.RCNVMBit, design.RCNVMWd, design.GSDRAM,
		design.SAMSub, design.SAMIO, design.SAMEn,
	}
	header := []string{"aspect"}
	for _, k := range kinds {
		header = append(header, k.String())
	}
	tb := stats.NewTable(header...)

	mark := func(vals ...string) []string { return vals }
	rows := []struct {
		aspect string
		marks  []string
	}{
		// System support: every design needs alignment, ISA, sector cache.
		{"database alignment", mark("o", "o", "o", "o", "o", "o")},
		{"ISA extension", mark("o", "o", "o", "o", "o", "o")},
		{"sector/MDA cache", mark("o", "o", "o", "o", "o", "o")},
		// Interface.
		{"memory controller", mark("+", "+", "x", "+", "+", "+")},
		{"command interface", mark("+", "+", "x", "+", "+", "+")},
		{"critical-word-first", mark("+", "+", "x", "+", "x", "+")},
		// Memory device.
		{"performance", mark("x", "x", "+", "o", "+", "+")},
		{"power consumption", mark("o", "o", "+", "+", "o", "+")},
		{"area overhead", mark("x", "x", "+", "o", "+", "+")},
		{"reliability", mark("+", "+", "x", "+", "+", "+")},
		{"mode switch delay", mark("o", "o", "+", "o", "o", "o")},
	}
	for _, r := range rows {
		tb.AddRow(append([]string{r.aspect}, r.marks...)...)
	}
	return tb
}

// Table1Derived cross-checks a few Table 1 marks against the quantitative
// models (used by tests: the matrix must agree with the constructed
// designs).
func Table1Derived() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, k := range []design.Kind{design.RCNVMBit, design.RCNVMWd, design.GSDRAM, design.SAMSub, design.SAMIO, design.SAMEn} {
		d := design.New(k, design.Options{})
		out[k.String()] = map[string]bool{
			"reliability":         d.HasECC,
			"critical-word-first": !d.NoCriticalWordFirst,
			"low-area":            d.Area.Area() < 0.01,
			"mode-switch":         d.ModeSwitch,
		}
	}
	return out
}

// Table2 dumps the simulated system parameters.
func Table2() *stats.Table {
	tb := stats.NewTable("component", "parameter", "value")
	add := func(c, p, v string) { tb.AddRow(c, p, v) }

	add("Processor", "cores", "4 @ 4.0 GHz, x86-class simple timing cores")
	add("Processor", "caches", "L1 32KB, L2 256KB, LLC 8MB; 64B lines, 8-way")
	add("Controller", "write queue", "32 entries, drain 24->8")
	add("Controller", "mapping", "rw:rk:bk:ch:cl:offset, open-page, FR-FCFS")

	for _, cfg := range []dram.Config{dram.DDR4_2400(), dram.RRAM()} {
		t := cfg.Timing
		g := cfg.Geometry
		add(cfg.Name, "interface", fmt.Sprintf("x4 I/O, %d channel, %d ranks, %d banks/rank", g.Channels, g.Ranks, g.Banks()))
		add(cfg.Name, "arrays", fmt.Sprintf("%d subarrays x %d rows, %dB row", g.SubarraysPerBank, g.RowsPerSubarray, g.RowBytes))
		add(cfg.Name, "CL-nRCD-nRP", fmt.Sprintf("%d-%d-%d", t.CL, t.TRCD, t.TRP))
		add(cfg.Name, "nRTR-nCCDS-nCCDL", fmt.Sprintf("%d-%d-%d", t.TRTR, t.TCCDS, t.TCCDL))
	}
	return tb
}

// Table3 parses and compiles every benchmark query, proving the SQL layer
// digests the paper's workload verbatim; the output lists each plan shape.
func Table3() (*stats.Table, error) {
	tb := stats.NewTable("query", "class", "plan", "pred fields", "proj fields", "sql")
	for _, q := range Benchmark() {
		stmt, err := sql.Parse(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		params := q.Params
		if params == nil {
			params = sql.Params{}
		}
		plan, err := sql.Compile(stmt, params)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		proj := fmt.Sprintf("%v", plan.ProjFields)
		if plan.WholeRecord {
			proj = "*"
		}
		tb.AddRow(q.Name, q.Class.String(), plan.Kind.String(),
			fmt.Sprintf("%v", plan.PredFields), proj, q.SQL)
	}
	return tb, nil
}
