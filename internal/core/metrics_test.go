package core

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"sam/internal/sim"
	"sam/internal/stats"
)

// TestSweepPointStatsDeterministicAcrossWorkers is the acceptance check for
// the observability layer: the full per-design statistics of a sweep point
// — histogram snapshots included — must be byte-identical whether the
// point's runs execute serially or on eight workers.
func TestSweepPointStatsDeterministicAcrossWorkers(t *testing.T) {
	p := SweepPoint{Query: Arithmetic, Selectivity: 0.5, Projected: 8}
	run := func(workers int) ([]byte, map[string]float64) {
		speedups, sts, err := RunSweepPointStats(context.Background(), p, 256, Par{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := json.Marshal(sts)
		if err != nil {
			t.Fatal(err)
		}
		return enc, speedups
	}
	serial, spSerial := run(1)
	parallel, spParallel := run(8)
	if string(serial) != string(parallel) {
		t.Fatal("per-design stats differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(spSerial, spParallel) {
		t.Fatalf("speedups differ: %v vs %v", spSerial, spParallel)
	}
	var decoded map[string]sim.RunStats
	if err := json.Unmarshal(serial, &decoded); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v", err)
	}
	st, ok := decoded["baseline"]
	if !ok || st.Metrics == nil {
		t.Fatal("baseline stats missing the metrics snapshot")
	}
	if h, ok := st.Metrics.Histograms["mc.lat.read.normal"]; !ok || h.Total == 0 {
		t.Fatalf("read-latency histogram missing or empty: %+v", st.Metrics.Histograms)
	}
}

// TestSweepFigureMetricsSink checks the Par.Metrics plumbing: every run of
// the sweep is emitted exactly once, in the same order for any worker
// count, and the merged histogram snapshot is worker-count invariant.
func TestSweepFigureMetricsSink(t *testing.T) {
	points := []SweepPoint{
		{Query: Arithmetic, Selectivity: 0.25, Projected: 4},
		{Query: Arithmetic, Selectivity: 0.75, Projected: 4},
	}
	type key struct{ fig, x, design string }
	collect := func(workers int) ([]key, *stats.Snapshot) {
		var order []key
		merged := &stats.Snapshot{}
		par := Par{Workers: workers, Metrics: func(figID, x, designName string, st sim.RunStats) {
			order = append(order, key{figID, x, designName})
			if err := merged.Merge(st.Metrics); err != nil {
				t.Fatal(err)
			}
		}}
		_, err := sweepFigure(context.Background(), "figtest", points, 256,
			func(i int) string { return fmt.Sprintf("p%d", i) }, par)
		if err != nil {
			t.Fatal(err)
		}
		return order, merged
	}
	serialOrder, serialMerged := collect(1)
	parallelOrder, parallelMerged := collect(8)
	// baseline + three sweep designs + ideal, per point.
	if want := len(points) * (len(SweepDesigns()) + 2); len(serialOrder) != want {
		t.Fatalf("emitted %d metric entries, want %d", len(serialOrder), want)
	}
	if !reflect.DeepEqual(serialOrder, parallelOrder) {
		t.Fatalf("emission order differs:\n%v\n%v", serialOrder, parallelOrder)
	}
	a, _ := json.Marshal(serialMerged)
	b, _ := json.Marshal(parallelMerged)
	if string(a) != string(b) {
		t.Fatal("merged snapshot differs between workers=1 and workers=8")
	}
	if len(serialMerged.Histograms) == 0 {
		t.Fatal("merged snapshot has no histograms")
	}
}
