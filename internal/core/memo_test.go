package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/memo"
	"sam/internal/sim"
	"sam/internal/sql"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files (memo salt tripwire)")

// TestMemoKeyCanonicalization is the key-schema property test: every
// semantically meaningful single-field mutation changes the key, and
// semantically identical inputs built different ways collide.
func TestMemoKeyCanonicalization(t *testing.T) {
	w := tiny()
	q := Benchmark()[2] // Q3
	base := func() string {
		return benchRunKey(design.SAMEn, design.Options{}, w, q, false, nil)
	}

	t.Run("mutations", func(t *testing.T) {
		seen := map[string]string{"base": base()}
		distinct := func(label, key string) {
			t.Helper()
			for prev, pk := range seen {
				if pk == key {
					t.Fatalf("%s collides with %s", label, prev)
				}
			}
			seen[label] = key
		}
		distinct("kind", benchRunKey(design.SAMIO, design.Options{}, w, q, false, nil))
		distinct("gran", benchRunKey(design.SAMEn, design.Options{Gran: design.Gran8}, w, q, false, nil))
		distinct("substrate", benchRunKey(design.SAMEn, design.Options{Substrate: design.NVM, SubstrateSet: true}, w, q, false, nil))
		wm := w
		wm.TaRecords++
		distinct("ta-records", benchRunKey(design.SAMEn, design.Options{}, wm, q, false, nil))
		wm = w
		wm.TbRecords++
		distinct("tb-records", benchRunKey(design.SAMEn, design.Options{}, wm, q, false, nil))
		wm = w
		wm.Seed++
		distinct("workload-seed", benchRunKey(design.SAMEn, design.Options{}, wm, q, false, nil))
		qm := q
		qm.SQL += " "
		distinct("sql", benchRunKey(design.SAMEn, design.Options{}, w, qm, false, nil))
		qm = q
		qm.Class = ClassQs
		distinct("class", benchRunKey(design.SAMEn, design.Options{}, w, qm, false, nil))
		qm = q
		qm.Params = sql.Params{"x": 2, "y": 2, "z": 4}
		distinct("param-value", benchRunKey(design.SAMEn, design.Options{}, w, qm, false, nil))
		qm = q
		qm.Params = sql.Params{"x": 2, "y": 2, "z": 3, "w": 0}
		distinct("param-extra", benchRunKey(design.SAMEn, design.Options{}, w, qm, false, nil))
		distinct("colstore", benchRunKey(design.SAMEn, design.Options{}, w, q, true, nil))
		distinct("fault-rate", benchRunKey(design.SAMEn, design.Options{}, w, q, false, &sim.FaultModel{Rate: 1e-3}))
		distinct("fault-rate2", benchRunKey(design.SAMEn, design.Options{}, w, q, false, &sim.FaultModel{Rate: 1e-2}))
		distinct("fault-seed", benchRunKey(design.SAMEn, design.Options{}, w, q, false, &sim.FaultModel{Rate: 1e-3, Seed: 1}))
		distinct("fault-retries", benchRunKey(design.SAMEn, design.Options{}, w, q, false, &sim.FaultModel{Rate: 1e-3, MaxRetries: 5}))
		distinct("fault-dead", benchRunKey(design.SAMEn, design.Options{}, w, q, false, sim.DeadChipFault(3, 9)))
		distinct("fault-dead-chip", benchRunKey(design.SAMEn, design.Options{}, w, q, false, sim.DeadChipFault(4, 9)))
		distinct("fault-weights", benchRunKey(design.SAMEn, design.Options{}, w, q, false,
			&sim.FaultModel{Rate: 1e-3, BitWeight: 1, ChipWeight: 1, CorrelatedWeight: 1}))
		distinct("sweep-shape", sweepRunKey(design.SAMEn, design.Options{}, testSweepSchema(), sweepTableSeed, q.SQL, q.Params, false))
	})

	t.Run("collisions", func(t *testing.T) {
		same := func(label, a, b string) {
			t.Helper()
			if a != b {
				t.Fatalf("%s: keys differ for semantically identical inputs", label)
			}
		}
		// Decorative metadata stays out of the key.
		qm := q
		qm.Name = "renamed"
		qm.IsWrite = !q.IsWrite
		same("name+iswrite", base(), benchRunKey(design.SAMEn, design.Options{}, w, qm, false, nil))
		// Option defaults resolve before keying: the zero Options, explicit
		// Gran4, and an explicit paper-default substrate are one design.
		same("gran-default", base(), benchRunKey(design.SAMEn, design.Options{Gran: design.Gran4}, w, q, false, nil))
		same("substrate-default", base(),
			benchRunKey(design.SAMEn, design.Options{Substrate: design.DRAM, SubstrateSet: true}, w, q, false, nil))
		same("nvm-design-default",
			benchRunKey(design.RCNVMWd, design.Options{}, w, q, false, nil),
			benchRunKey(design.RCNVMWd, design.Options{Substrate: design.NVM, SubstrateSet: true}, w, q, false, nil))
		// Params: nil and empty both bind nothing.
		qn := q
		qn.Params = nil
		qe := q
		qe.Params = sql.Params{}
		same("params-nil-empty",
			benchRunKey(design.SAMEn, design.Options{}, w, qn, false, nil),
			benchRunKey(design.SAMEn, design.Options{}, w, qe, false, nil))
		// Fault: nil, the zero config, and an inactive non-zero config all
		// run fault-free.
		same("fault-nil-zero", base(), benchRunKey(design.SAMEn, design.Options{}, w, q, false, &sim.FaultModel{}))
		same("fault-nil-inactive", base(),
			benchRunKey(design.SAMEn, design.Options{}, w, q, false, &sim.FaultModel{Seed: 99, MaxRetries: 7}))
		// Fault weights: the zero mix is the documented default, and the
		// draw normalizes by the sum.
		mk := func(bw, cw, rw float64) string {
			return benchRunKey(design.SAMEn, design.Options{}, w, q, false,
				&sim.FaultModel{Rate: 1e-3, BitWeight: bw, ChipWeight: cw, CorrelatedWeight: rw})
		}
		same("weights-default", mk(0, 0, 0), mk(0.6, 0.2, 0.2))
		same("weights-scaled", mk(0.6, 0.2, 0.2), mk(6, 2, 2))
	})
}

func testSweepSchema() imdb.Schema {
	return imdb.Schema{Name: "T", Fields: 128, Records: 512}
}

// TestMemoCachedRunsMatch: a memoized RunOne returns results equivalent
// to the plain path, for fault-free and fault-injected runs alike.
func TestMemoCachedRunsMatch(t *testing.T) {
	w := tiny()
	m := NewMemo(MemoOptions{})
	for _, q := range []BenchQuery{Benchmark()[0], Benchmark()[13]} { // Q1, Qs2
		for _, kind := range []design.Kind{design.Baseline, design.SAMEn, design.Ideal} {
			plain, err := RunOne(kind, design.Options{}, w, q)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := m.RunOne(kind, design.Options{}, w, q)
			if err != nil {
				t.Fatal(err)
			}
			if eq, err := sim.ResultsEquivalent(plain, cached); err != nil || !eq {
				t.Fatalf("%s on %v: memoized result differs (eq=%v err=%v)", q.Name, kind, eq, err)
			}
			// Second lookup serves the identical value without recomputing.
			again, err := m.RunOne(kind, design.Options{}, w, q)
			if err != nil {
				t.Fatal(err)
			}
			if again != cached {
				t.Fatalf("%s on %v: hit returned a different value", q.Name, kind)
			}
		}
	}
	ct := m.Counters()
	if ct.Misses != 6 || ct.Hits != 6 {
		t.Fatalf("counters %+v, want 6 misses / 6 hits", ct)
	}
}

// TestMemoDedupAcrossFigures is the in-process acceptance criterion: one
// shared cache across the fig12+fig13+fig14 pipelines must cut executed
// simulations by at least 30% — and produce byte-identical figures.
func TestMemoDedupAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-figure sweep")
	}
	ctx := context.Background()
	w := tiny()
	m := NewMemo(MemoOptions{})
	par := Par{Workers: 4, Memo: m}

	fig12, err := Fig12(ctx, w, par)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig13(ctx, w, par); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig14a(ctx, w, par); err != nil {
		t.Fatal(err)
	}
	fig14b, err := Fig14b(ctx, w, par)
	if err != nil {
		t.Fatal(err)
	}

	ct := m.Counters()
	lookups := ct.Lookups()
	saved := lookups - ct.Misses
	t.Logf("memo: %v", ct)
	if lookups == 0 || ct.InflightDedup+ct.Hits != saved {
		t.Fatalf("counter bookkeeping off: %+v", ct)
	}
	if frac := float64(saved) / float64(lookups); frac < 0.30 {
		t.Fatalf("dedup saved %.1f%% of %d simulations, acceptance floor is 30%%", frac*100, lookups)
	}

	// Figures are byte-identical to the uncached pipelines.
	plain12, err := Fig12(ctx, w, Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fig12.Table().String(), plain12.Table().String(); got != want {
		t.Fatalf("fig12 differs under memoization:\n%s\nvs\n%s", got, want)
	}
	plain14b, err := Fig14b(ctx, w, Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fig14b.Table().String(), plain14b.Table().String(); got != want {
		t.Fatal("fig14b differs under memoization")
	}
}

// TestMemoSweepPoint: the Fig. 15 sweep driver honors Par.Memo — repeat
// points hit, and speedups are bit-identical to the uncached run.
func TestMemoSweepPoint(t *testing.T) {
	ctx := context.Background()
	p := SweepPoint{Query: Arithmetic, Selectivity: 0.25, Projected: 4}
	const records = 512
	plain, err := RunSweepPoint(ctx, p, records, Par{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemo(MemoOptions{})
	cached, err := RunSweepPoint(ctx, p, records, Par{Workers: 2, Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Fatalf("sweep speedups differ under memoization:\n%v\nvs\n%v", cached, plain)
	}
	if ct := m.Counters(); ct.Misses == 0 {
		t.Fatalf("first sweep recorded no misses: %+v", ct)
	}
	before := m.Counters().Misses
	again, err := RunSweepPoint(ctx, p, records, Par{Workers: 2, Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, again) {
		t.Fatal("warm sweep speedups differ")
	}
	if ct := m.Counters(); ct.Misses != before {
		t.Fatalf("warm sweep recomputed: %+v", ct)
	}
}

// TestMemoReliability: the reliability campaign honors Par.Memo with
// bit-identical results, and a warm cache replays the grid without
// simulating.
func TestMemoReliability(t *testing.T) {
	ctx := context.Background()
	camp := testCampaign()
	plain, err := RunReliability(ctx, camp, Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemo(MemoOptions{})
	cached, err := RunReliability(ctx, camp, Par{Workers: 4, Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Fatal("reliability results differ under memoization")
	}
	warm, err := RunReliability(ctx, camp, Par{Workers: 4, Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Fatal("warm reliability results differ")
	}
	ct := m.Counters()
	cells := uint64(len(camp.Cells()))
	if ct.Misses != cells || ct.Hits != cells {
		t.Fatalf("counters %+v, want %d misses and %d hits", ct, cells, cells)
	}
}

// sameSpeedups compares comparison outcomes under the codec's semantic
// equality (a disk-decoded Result is equivalent to, not DeepEqual with,
// the computed one: the encoding erases nil-vs-empty map distinctions).
func sameSpeedups(t *testing.T, a, b []SpeedupResult) bool {
	t.Helper()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Query != b[i].Query || a[i].Design != b[i].Design || a[i].Speedup != b[i].Speedup {
			return false
		}
		eq, err := sim.ResultsEquivalent(a[i].Result, b[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			return false
		}
	}
	return true
}

// TestMemoDiskWarm: a fresh process (modeled as a fresh Memo) over the
// same cache directory serves every run from disk.
func TestMemoDiskWarm(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	w := tiny()
	q := Benchmark()[2] // Q3
	kinds := []design.Kind{design.SAMEn, design.SAMIO}

	cold := NewMemo(MemoOptions{Dir: dir})
	first, err := RunComparison(ctx, kinds, design.Options{}, w, q, Par{Workers: 2, Memo: cold})
	if err != nil {
		t.Fatal(err)
	}
	if ct := cold.Counters(); ct.Misses != 3 { // baseline + 2 designs
		t.Fatalf("cold counters %+v, want 3 misses", ct)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.memo"))
	if err != nil || len(entries) != 3 {
		t.Fatalf("disk tier holds %d entries (err=%v), want 3", len(entries), err)
	}

	warm := NewMemo(MemoOptions{Dir: dir})
	second, err := RunComparison(ctx, kinds, design.Options{}, w, q, Par{Workers: 2, Memo: warm})
	if err != nil {
		t.Fatal(err)
	}
	ct := warm.Counters()
	if ct.Misses != 0 || ct.DiskHits != 3 {
		t.Fatalf("warm counters %+v, want 0 misses / 3 disk hits", ct)
	}
	if !sameSpeedups(t, first, second) {
		t.Fatalf("warm speedups differ:\n%v\nvs\n%v", second, first)
	}

	// Corrupting one entry degrades to recomputation, never a wrong result.
	if err := os.WriteFile(entries[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	repair := NewMemo(MemoOptions{Dir: dir})
	third, err := RunComparison(ctx, kinds, design.Options{}, w, q, Par{Workers: 2, Memo: repair})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSpeedups(t, first, third) {
		t.Fatal("recovery run differs")
	}
	ct = repair.Counters()
	if ct.Misses != 1 || ct.DiskHits != 2 || ct.Corrupt != 1 {
		t.Fatalf("recovery counters %+v, want 1 miss / 2 disk hits / 1 corrupt", ct)
	}
}

// memoProbeDigest hashes the encoded results of a fixed probe set — a
// fault-free strided read, a baseline scan, and a fault-injected run —
// so the digest moves whenever simulator semantics move.
func memoProbeDigest(t *testing.T) string {
	t.Helper()
	w := Workload{TaRecords: 256, TbRecords: 512, Seed: 0xBEEF}
	h := sha256.New()
	feed := func(r *sim.QueryResult, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.EncodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	feed(RunOne(design.SAMEn, design.Options{}, w, Benchmark()[2]))      // strided Q read
	feed(RunOne(design.Baseline, design.Options{}, w, Benchmark()[13])) // row-wise Qs scan
	feed(RunOneFaulted(design.SAMEn, design.Options{}, w, Benchmark()[2], sim.DeadChipFault(7, 42)))
	return hex.EncodeToString(h.Sum(nil))
}

// TestMemoSaltTripwire pins (memo.SchemaVersion, probe digest) as a
// golden pair. If simulator semantics change — the probe digest moves —
// without bumping memo.SchemaVersion, this test fails: stale disk caches
// would silently serve wrong results. Bumping the version requires
// regenerating the golden with `go test ./internal/core -run SaltTripwire -update`.
func TestMemoSaltTripwire(t *testing.T) {
	digest := memoProbeDigest(t)
	golden := filepath.Join("testdata", "memo_salt.golden")
	body := fmt.Sprintf("schema %s\nprobe %s\n", memo.SchemaVersion, digest)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to generate)", err)
	}
	lines := strings.Split(strings.TrimSpace(string(want)), "\n")
	if len(lines) != 2 {
		t.Fatalf("malformed golden %q", want)
	}
	goldSchema := strings.TrimPrefix(lines[0], "schema ")
	goldProbe := strings.TrimPrefix(lines[1], "probe ")
	if digest != goldProbe && memo.SchemaVersion == goldSchema {
		t.Fatalf("simulator output changed (probe %s, golden %s) but memo.SchemaVersion is still %q — "+
			"stale caches would serve wrong results; bump the version and regenerate with -update",
			digest[:12], goldProbe[:12], memo.SchemaVersion)
	}
	if memo.SchemaVersion != goldSchema {
		t.Fatalf("memo.SchemaVersion is %q, golden pins %q — regenerate the golden with -update",
			memo.SchemaVersion, goldSchema)
	}
}
