package core

import (
	"context"
	"fmt"

	"sam/internal/design"
	"sam/internal/ecc"
	"sam/internal/fault"
	"sam/internal/memo"
	"sam/internal/runner"
	"sam/internal/sim"
)

// This file is the Monte-Carlo reliability campaign: a grid of timing runs
// with fault injection at the DRAM burst boundary, covering every chipkill
// scheme the paper evaluates (SSC, SAM-IO's transposed SSC variant, and the
// ganged SSC-DSD geometry) under transient and persistent fault models. Its
// headline assertion is the paper's: the SAM layouts keep full chipkill, so
// a campaign over {baseline, SAM-IO, SAM-en} ends with zero silent data
// corruptions — every injected fault is either corrected or detected (and
// then retried/poisoned by the controller).
//
// Fault-model scoping is deliberate, not timid: a distance-3 SSC code
// cannot *guarantee* detection of two simultaneously faulty chips (about 7%
// of two-chip patterns miscorrect consistently — an information-theoretic
// limit, demonstrated by FuzzChipkillDecode in internal/ecc). The campaign
// therefore confines multi-chip persistent maps to the SSC-DSD (distance-5)
// cells, whose detect-or-correct guarantee covers them, and exposes SSC
// cells to the single-chip models chipkill is specified for.

// Fault-model names for ReliabilityCell.Model.
const (
	// ModelTransient draws seed-driven transients (bit flips, chip-wide
	// garbage, correlated runs — each confined to one chip) at Rate per
	// burst.
	ModelTransient = "transient"
	// ModelDeadChip kills one chip on every rank for the whole run.
	ModelDeadChip = "dead-chip"
	// ModelTwoChip combines a dead chip with a stuck DQ on a second chip —
	// beyond correction for every scheme, detectable only at distance 5, so
	// it runs on SSC-DSD cells alone and drives the DUE -> retry -> poison
	// path.
	ModelTwoChip = "two-chip"
)

// ReliabilityCell is one campaign grid point.
type ReliabilityCell struct {
	Design design.Kind
	Gran   design.Granularity
	Model  string
	// Rate is the per-burst transient probability (ModelTransient only).
	Rate float64
}

// Scheme returns the burst-boundary codeword layout this cell decodes
// against (the design's orientation of its granularity's scheme).
func (c ReliabilityCell) Scheme() ecc.Scheme {
	return design.New(c.Design, design.Options{Gran: c.Gran}).BurstScheme()
}

// Label names the cell for reports.
func (c ReliabilityCell) Label() string {
	if c.Model == ModelTransient {
		return fmt.Sprintf("%v/%dbit/%s@%g", c.Design, c.Gran.BitsPerChip, c.Model, c.Rate)
	}
	return fmt.Sprintf("%v/%dbit/%s", c.Design, c.Gran.BitsPerChip, c.Model)
}

// ReliabilityCampaign configures the grid.
type ReliabilityCampaign struct {
	// Seed drives every cell's fault stream; cell seeds derive from it, so
	// one campaign seed replays the whole grid bit-identically.
	Seed uint64
	// Rates are the ModelTransient per-burst probabilities to sweep.
	Rates []float64
	// Designs and Grans span the grid. Granularity selects the scheme
	// (16/8-bit symbols -> SSC, 4-bit -> SSC-DSD).
	Designs []design.Kind
	Grans   []design.Granularity
	// Query and Workload shape the traffic every cell runs.
	Query    BenchQuery
	Workload Workload
	// MaxRetries is the controller's read-retry budget before poisoning.
	MaxRetries int
}

// DefaultReliabilityCampaign is the full grid behind `samfig -exp
// reliability`: three designs x three granularities x {two transient rates,
// a dead chip, and (SSC-DSD only) the two-chip map}.
func DefaultReliabilityCampaign() ReliabilityCampaign {
	return ReliabilityCampaign{
		Seed:       0x5EED0F4A17,
		Rates:      []float64{1e-3, 1e-2},
		Designs:    []design.Kind{design.Baseline, design.SAMIO, design.SAMEn},
		Grans:      []design.Granularity{design.Gran16, design.Gran8, design.Gran4},
		Query:      Benchmark()[2], // Q3: a strided read scan with a 25% predicate
		Workload:   SmallWorkload(),
		MaxRetries: 3,
	}
}

// Cells enumerates the grid in deterministic order.
func (c ReliabilityCampaign) Cells() []ReliabilityCell {
	var cells []ReliabilityCell
	for _, k := range c.Designs {
		for _, g := range c.Grans {
			for _, r := range c.Rates {
				cells = append(cells, ReliabilityCell{Design: k, Gran: g, Model: ModelTransient, Rate: r})
			}
			cells = append(cells, ReliabilityCell{Design: k, Gran: g, Model: ModelDeadChip})
			if g.BitsPerChip == 4 {
				cells = append(cells, ReliabilityCell{Design: k, Gran: g, Model: ModelTwoChip})
			}
		}
	}
	return cells
}

// mix64 is the splitmix64 finalizer, used to derive independent per-cell
// seeds from the campaign seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// faultsFor builds cell i's fault configuration. Fault sites (which chip
// dies, which DQ sticks) derive from the cell seed, so the campaign seed
// alone determines the whole grid.
func (c ReliabilityCampaign) faultsFor(cell ReliabilityCell, i int) *sim.FaultModel {
	seed := mix64(c.Seed ^ mix64(uint64(i)+1))
	cfg := &sim.FaultModel{Seed: seed, MaxRetries: c.MaxRetries}
	chips := ecc.NewChipkill(cell.Scheme()).Chips()
	switch cell.Model {
	case ModelTransient:
		cfg.Rate = cell.Rate
	case ModelDeadChip:
		cfg.DeadChips = []fault.ChipFault{{Rank: -1, Chip: int(seed>>8) % chips}}
	case ModelTwoChip:
		dead := int(seed>>8) % chips
		stuck := (dead + 1 + int(seed>>16)%(chips-1)) % chips
		cfg.DeadChips = []fault.ChipFault{{Rank: -1, Chip: dead}}
		cfg.StuckDQs = []fault.StuckDQ{{
			Rank: -1, Chip: stuck, DQ: int(seed>>24) % 4, Value: byte(seed>>28) & 1,
		}}
	default:
		panic(fmt.Sprintf("core: unknown fault model %q", cell.Model))
	}
	return cfg
}

// ReliabilityResult is one cell's outcome, JSON-shaped for the samfig sweep
// and the CI campaign summary.
type ReliabilityResult struct {
	Design string  `json:"design"`
	Bits   int     `json:"bits_per_chip"`
	Scheme string  `json:"scheme"`
	Model  string  `json:"model"`
	Rate   float64 `json:"rate"`

	Counters fault.Counters `json:"counters"`
	Retries  uint64         `json:"retries"`
	Poisoned uint64         `json:"poisoned"`
	Cycles   int64          `json:"cycles"`
}

// SilentCorruptions is the cell's SDC count — the number the campaign
// exists to show is zero.
func (r ReliabilityResult) SilentCorruptions() uint64 {
	return r.Counters.SilentCorruptions
}

// RunReliability executes the campaign on the worker pool. Results arrive
// in cell order and are bit-identical for any worker count: each cell owns
// a fresh system and a seed derived only from (campaign seed, cell index).
func RunReliability(ctx context.Context, camp ReliabilityCampaign, par Par) ([]ReliabilityResult, error) {
	cells := camp.Cells()
	return runner.Map(ctx, cells, par.opts(), func(ctx context.Context, i int, cell ReliabilityCell) (ReliabilityResult, error) {
		opts := design.Options{Gran: cell.Gran}
		fm := camp.faultsFor(cell, i)
		compute := func() (*sim.QueryResult, error) {
			s := NewSystem(cell.Design, opts, camp.Workload, false)
			s.Faults = fm
			return RunOn(s, camp.Query)
		}
		var r *sim.QueryResult
		var err error
		if par.Memo != nil {
			// The reliability grid always runs row-store (colStore false),
			// unlike the benchmark drivers' Ideal rule — key it explicitly.
			key := benchRunKey(cell.Design, opts, camp.Workload, camp.Query, false, fm)
			var out memo.Outcome
			r, out, err = par.Memo.do(key, compute)
			annotateMemo(ctx, out, err)
		} else {
			r, err = compute()
		}
		if err != nil {
			return ReliabilityResult{}, fmt.Errorf("%s: %w", cell.Label(), err)
		}
		rel := r.Stats.Reliability
		if rel == nil {
			return ReliabilityResult{}, fmt.Errorf("%s: run carried no reliability block", cell.Label())
		}
		return ReliabilityResult{
			Design:   cell.Design.String(),
			Bits:     cell.Gran.BitsPerChip,
			Scheme:   cell.Scheme().String(),
			Model:    cell.Model,
			Rate:     cell.Rate,
			Counters: *rel,
			Retries:  r.Stats.Controller.Retries,
			Poisoned: r.Stats.Controller.Poisoned,
			Cycles:   int64(r.Stats.Cycles),
		}, nil
	})
}

// TotalSDC sums silent corruptions across the campaign — the zero-SDC
// assertion's left-hand side.
func TotalSDC(results []ReliabilityResult) uint64 {
	var n uint64
	for _, r := range results {
		n += r.Counters.SilentCorruptions
	}
	return n
}
