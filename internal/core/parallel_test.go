package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sam/internal/design"
)

// TestFig12DeterministicAcrossWorkers asserts the tentpole guarantee: the
// rendered figure table is byte-identical no matter how many workers run
// the sweep grid.
func TestFig12DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig12 grid skipped in short mode")
	}
	w := tiny()
	serial, err := Fig12(context.Background(), w, Par{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig12(context.Background(), w, Par{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Table().String(), parallel.Table().String(); s != p {
		t.Fatalf("Fig12 tables differ between -workers=1 and -workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestFig15DeterministicAcrossWorkers is the same guarantee for the sweep
// pipelines, which additionally rely on the fixed design column order
// (the old code ranged over a map, so even two serial runs could differ).
func TestFig15DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid skipped in short mode")
	}
	serial, err := Fig15SelectivitySweep(context.Background(), Arithmetic, 8, 256, Par{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig15SelectivitySweep(context.Background(), Arithmetic, 8, 256, Par{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Table().String(), parallel.Table().String(); s != p {
		t.Fatalf("Fig15 tables differ between -workers=1 and -workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestSweepCancellation cancels a sweep from its own progress callback and
// checks it stops promptly with the context error surfaced.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	par := Par{
		Workers: 2,
		Progress: func(done, total int) {
			once.Do(cancel) // cancel as soon as the first point completes
		},
	}
	start := time.Now()
	_, err := Fig15SelectivitySweep(ctx, Arithmetic, 8, 256, par)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Generous bound: well under what the remaining points would cost, so
	// a sweep that ignores cancellation fails loudly.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("sweep did not stop promptly after cancel: %v", elapsed)
	}
}

// TestRunComparisonPreCancelled asserts no simulation starts on a dead
// context.
func TestRunComparisonPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunComparison(ctx, design.AllEvaluated(), design.Options{}, tiny(), Benchmark()[0], Par{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunComparisonJoinsAllErrors feeds an unparseable query so every
// design fails, and checks the joined error names each of them instead of
// dropping all but the first (the pre-runner behaviour).
func TestRunComparisonJoinsAllErrors(t *testing.T) {
	bad := BenchQuery{Name: "Qbad", SQL: "SELEKT nonsense FROM"}
	kinds := []design.Kind{design.SAMEn, design.RCNVMWd}
	_, err := RunComparison(context.Background(), kinds, design.Options{}, tiny(), bad, Par{})
	if err == nil {
		t.Fatal("want error for unparseable query")
	}
	for _, want := range []string{"baseline", "SAM-en", "RC-NVM-wd"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
}

// TestProgressReporting checks the callback covers the whole grid exactly
// once and in completed order.
func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var last, calls, total int
	par := Par{Workers: 4, Progress: func(done, n int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done != last+1 {
			t.Errorf("progress jumped from %d to %d", last, done)
		}
		last, total = done, n
	}}
	q := Benchmark()[2] // Q3
	kinds := []design.Kind{design.SAMEn, design.RCNVMWd}
	if _, err := RunComparison(context.Background(), kinds, design.Options{}, tiny(), q, par); err != nil {
		t.Fatal(err)
	}
	if wantTotal := len(kinds) + 1; total != wantTotal || calls != wantTotal {
		t.Fatalf("progress saw %d/%d runs, want %d (designs + baseline)", calls, total, wantTotal)
	}
}
