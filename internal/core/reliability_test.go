package core

import (
	"context"
	"reflect"
	"testing"

	"sam/internal/design"
	"sam/internal/ecc"
)

// testCampaign trims the default grid to test scale: same structure (every
// scheme, every model), smaller tables.
func testCampaign() ReliabilityCampaign {
	camp := DefaultReliabilityCampaign()
	camp.Workload = Workload{TaRecords: 512, TbRecords: 512, Seed: 0xDA7ABA5E}
	camp.Rates = []float64{1e-2}
	return camp
}

// TestReliabilityCampaignZeroSDC is the end-to-end acceptance run: the full
// scheme x design x model grid, with every burst of every run pushed through
// the real chipkill codec, must finish with zero silent data corruptions —
// and with each model leaving the signature it exists to produce.
func TestReliabilityCampaignZeroSDC(t *testing.T) {
	camp := testCampaign()
	results, err := RunReliability(context.Background(), camp, Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(camp.Cells()) {
		t.Fatalf("%d results for %d cells", len(results), len(camp.Cells()))
	}
	if n := TotalSDC(results); n != 0 {
		t.Fatalf("campaign took %d silent data corruptions", n)
	}
	schemes := map[string]bool{}
	for _, r := range results {
		schemes[r.Scheme] = true
		c := r.Counters
		if c.Bursts == 0 {
			t.Errorf("%s/%dbit/%s: no bursts probed", r.Design, r.Bits, r.Model)
		}
		// Verdict accounting: every injected burst is corrected, detected,
		// or silent — nothing leaks out of the taxonomy.
		if c.CorrectedBursts+c.DUEs+c.SilentCorruptions != c.Injected {
			t.Errorf("%s/%dbit/%s: verdicts %d+%d+%d don't cover %d injections",
				r.Design, r.Bits, r.Model, c.CorrectedBursts, c.DUEs, c.SilentCorruptions, c.Injected)
		}
		switch r.Model {
		case ModelDeadChip:
			if c.CorrectedBursts == 0 || c.DUEs != 0 {
				t.Errorf("%s/%dbit dead chip: corrected=%d DUEs=%d, want all corrected",
					r.Design, r.Bits, c.CorrectedBursts, c.DUEs)
			}
		case ModelTwoChip:
			if c.DUEs == 0 || r.Retries == 0 || r.Poisoned == 0 {
				t.Errorf("%s/%dbit two-chip map: DUEs=%d retries=%d poisoned=%d, want the full poison path",
					r.Design, r.Bits, c.DUEs, r.Retries, r.Poisoned)
			}
		case ModelTransient:
			if c.DUEs != 0 {
				t.Errorf("%s/%dbit transients: %d DUEs from single-chip events", r.Design, r.Bits, c.DUEs)
			}
		}
	}
	for _, want := range []string{"SSC", "SSC-variant", "SSC-DSD"} {
		if !schemes[want] {
			t.Errorf("campaign never exercised scheme %s (got %v)", want, schemes)
		}
	}
}

// TestReliabilityDeterministicReplay pins the replay contract end to end:
// the same campaign seed must reproduce identical fault sites, retry
// counts, and counters whether the grid runs serially or on eight workers.
func TestReliabilityDeterministicReplay(t *testing.T) {
	camp := testCampaign()
	serial, err := RunReliability(context.Background(), camp, Par{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunReliability(context.Background(), camp, Par{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Fatalf("cell %d diverged across worker counts:\n  w1: %+v\n  w8: %+v",
					i, serial[i], parallel[i])
			}
		}
		t.Fatal("results diverged across worker counts")
	}
	// A different campaign seed must move the fault sites.
	camp.Seed++
	moved, err := RunReliability(context.Background(), camp, Par{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(serial, moved) {
		t.Fatal("different campaign seeds replayed identically")
	}
}

// TestReliabilityCellScoping pins the fault-model scoping rule the SSC
// fuzzing result forces: multi-chip persistent maps appear only on
// distance-5 SSC-DSD cells, and every two-chip map really names two
// distinct chips within the scheme's rank width.
func TestReliabilityCellScoping(t *testing.T) {
	camp := DefaultReliabilityCampaign()
	for i, cell := range camp.Cells() {
		cfg := camp.faultsFor(cell, i)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", cell.Label(), err)
		}
		if cell.Model == ModelTwoChip {
			if cell.Scheme() != ecc.SchemeSSCDSD {
				t.Errorf("%s: two-chip map outside the distance-5 scheme", cell.Label())
			}
			dead, stuck := cfg.DeadChips[0].Chip, cfg.StuckDQs[0].Chip
			chips := ecc.NewChipkill(cell.Scheme()).Chips()
			if dead == stuck || dead >= chips || stuck >= chips {
				t.Errorf("%s: bad two-chip sites dead=%d stuck=%d", cell.Label(), dead, stuck)
			}
			continue
		}
		if len(cfg.DeadChips)+len(cfg.StuckDQs) > 1 {
			t.Errorf("%s: multi-chip persistent map on a single-chip cell: %+v", cell.Label(), cfg)
		}
	}
	// SAM-IO 8-bit cells decode against the transposed variant; SAM-en keeps
	// the canonical orientation.
	io := ReliabilityCell{Design: design.SAMIO, Gran: design.Gran8}
	en := ReliabilityCell{Design: design.SAMEn, Gran: design.Gran8}
	if io.Scheme() != ecc.SchemeSSCVariant || en.Scheme() != ecc.SchemeSSC {
		t.Fatalf("orientation mapping broken: SAM-IO=%v SAM-en=%v", io.Scheme(), en.Scheme())
	}
}
