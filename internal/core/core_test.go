package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sam/internal/design"
	"sam/internal/sql"
)

func tiny() Workload { return Workload{TaRecords: 512, TbRecords: 2048, Seed: 0xBEEF} }

func TestBenchmarkSetComplete(t *testing.T) {
	qs := Benchmark()
	if len(qs) != 18 {
		t.Fatalf("benchmark has %d queries, want 18 (Q1-Q12 + Qs1-Qs6)", len(qs))
	}
	var q, qsCount int
	for _, b := range qs {
		if b.Class == ClassQ {
			q++
		} else {
			qsCount++
		}
		// Every query must parse and compile with its bound parameters.
		stmt, err := sql.Parse(b.SQL)
		if err != nil {
			t.Errorf("%s: parse: %v", b.Name, err)
			continue
		}
		params := b.Params
		if params == nil {
			params = sql.Params{}
		}
		if _, err := sql.Compile(stmt, params); err != nil {
			t.Errorf("%s: compile: %v", b.Name, err)
		}
	}
	if q != 12 || qsCount != 6 {
		t.Fatalf("class split %d/%d, want 12/6", q, qsCount)
	}
	if ClassQ.String() != "Q" || ClassQs.String() != "Qs" {
		t.Error("class names")
	}
}

func TestWriteFlags(t *testing.T) {
	writes := map[string]bool{"Q11": true, "Q12": true, "Qs5": true, "Qs6": true}
	for _, q := range Benchmark() {
		if q.IsWrite != writes[q.Name] {
			t.Errorf("%s IsWrite = %v", q.Name, q.IsWrite)
		}
	}
}

func TestRunOneAndComparison(t *testing.T) {
	w := tiny()
	q := Benchmark()[2] // Q3
	rs, err := RunComparison(context.Background(), []design.Kind{design.SAMEn, design.RCNVMWd}, design.Options{}, w, q, Par{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	for _, r := range rs {
		if r.Speedup <= 0 {
			t.Fatalf("%s speedup %v", r.Design, r.Speedup)
		}
	}
	// On a column-preferring query SAM-en must beat RC-NVM-wd (Fig. 12's
	// core ordering).
	if rs[0].Speedup <= rs[1].Speedup {
		t.Fatalf("SAM-en (%.2f) should beat RC-NVM-wd (%.2f) on Q3", rs[0].Speedup, rs[1].Speedup)
	}
}

func TestHeadlineOrdering(t *testing.T) {
	// The paper's headline result at small scale: on Q queries,
	// SAM-en >= SAM-sub >= RC-NVM-wd and every SAM >= 1; on Qs queries,
	// SAM-IO/en do not degrade while RC-NVM does.
	w := tiny()
	q3 := Benchmark()[2]   // Q3 (column-preferring)
	qs4 := Benchmark()[15] // Qs4 (row-preferring)

	get := func(q BenchQuery, k design.Kind) float64 {
		rs, err := RunComparison(context.Background(), []design.Kind{k}, design.Options{}, w, q, Par{})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0].Speedup
	}
	samEn := get(q3, design.SAMEn)
	samSub := get(q3, design.SAMSub)
	rcWd := get(q3, design.RCNVMWd)
	if !(samEn >= samSub*0.95 && samSub > rcWd*0.95 && samEn > 2) {
		t.Fatalf("Q3 ordering broken: SAM-en %.2f SAM-sub %.2f RC-NVM-wd %.2f", samEn, samSub, rcWd)
	}
	if v := get(qs4, design.SAMEn); v < 0.97 {
		t.Fatalf("SAM-en degrades Qs4: %.2f", v)
	}
	if v := get(qs4, design.RCNVMWd); v > 0.9 {
		t.Fatalf("RC-NVM-wd should degrade Qs4, got %.2f", v)
	}
}

func TestFunctionalMismatchDetected(t *testing.T) {
	// RunComparison validates results; feeding it inconsistent workloads
	// must fail loudly. Simulate by comparing different seeds via direct
	// construction.
	w := tiny()
	q := Benchmark()[0]
	a, err := RunOne(design.Baseline, design.Options{}, w, q)
	if err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Seed++
	b, err := RunOne(design.Baseline, design.Options{}, w2, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows == b.Rows && a.ProjChecks == b.ProjChecks {
		t.Fatal("different seeds produced identical results; mismatch detection untestable")
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"SAM-en", "RC-NVM-bit", "reliability", "critical-word-first"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable1AgreesWithModels(t *testing.T) {
	derived := Table1Derived()
	if derived["GS-DRAM"]["reliability"] {
		t.Error("GS-DRAM must not have ECC")
	}
	if !derived["SAM-en"]["reliability"] || !derived["SAM-IO"]["reliability"] {
		t.Error("SAM designs keep chipkill")
	}
	if derived["SAM-IO"]["critical-word-first"] {
		t.Error("SAM-IO loses critical-word-first")
	}
	if !derived["SAM-en"]["critical-word-first"] {
		t.Error("SAM-en keeps critical-word-first")
	}
	if !derived["SAM-IO"]["low-area"] {
		t.Error("SAM-IO is the near-zero-area design")
	}
	if derived["RC-NVM-wd"]["low-area"] {
		t.Error("RC-NVM-wd is not low-area")
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"DDR4-2400", "RRAM", "17-17-17", "17-35-1", "FR-FCFS"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
}

func TestTable3PlansAll(t *testing.T) {
	tb, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, q := range Benchmark() {
		if !strings.Contains(out, q.Name+" ") && !strings.Contains(out, q.Name+"\t") && !strings.Contains(out, q.Name) {
			t.Errorf("table 3 missing %s", q.Name)
		}
	}
	if !strings.Contains(out, "join") || !strings.Contains(out, "update") || !strings.Contains(out, "insert") {
		t.Error("table 3 missing plan kinds")
	}
}

func TestFig14c(t *testing.T) {
	fig := Fig14c()
	samIO, ok := fig.Value("area", "SAM-IO")
	if !ok || samIO > 0.001 {
		t.Fatalf("SAM-IO area = %v", samIO)
	}
	rc, _ := fig.Value("area", "RC-NVM-wd")
	if rc < 0.3 {
		t.Fatalf("RC-NVM-wd area = %v", rc)
	}
	storage, _ := fig.Value("storage", "GS-DRAM-ecc")
	if storage < 0.12 || storage > 0.13 {
		t.Fatalf("GS-DRAM-ecc storage = %v", storage)
	}
	if tbl := fig.Table().String(); !strings.Contains(tbl, "storage") {
		t.Error("figure table missing rows")
	}
}

func TestFigureHelpers(t *testing.T) {
	fig := &Figure{ID: "t", Cells: []Cell{{X: "a", Design: "d1", Value: 2}}}
	if v, ok := fig.Value("a", "d1"); !ok || v != 2 {
		t.Fatal("figure value lookup")
	}
	if _, ok := fig.Value("a", "nope"); ok {
		t.Fatal("missing design found")
	}
	out := fig.Table().String()
	if !strings.Contains(out, "2.00") {
		t.Fatalf("figure table render: %s", out)
	}
}

func TestSweepPointShapes(t *testing.T) {
	// Selectivity up at fixed projectivity -> SAM-en speedup should not
	// collapse; full projectivity + full selectivity -> near parity.
	lo, err := RunSweepPoint(context.Background(), SweepPoint{Query: Arithmetic, Selectivity: 0.10, Projected: 8}, 512, Par{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunSweepPoint(context.Background(), SweepPoint{Query: Arithmetic, Selectivity: 1.0, Projected: 8}, 512, Par{})
	if err != nil {
		t.Fatal(err)
	}
	if hi["SAM-en"] <= lo["SAM-en"] {
		t.Fatalf("speedup should rise with selectivity: %.2f -> %.2f", lo["SAM-en"], hi["SAM-en"])
	}
	flat, err := RunSweepPoint(context.Background(), SweepPoint{Query: Arithmetic, Selectivity: 1.0, Projected: 128}, 512, Par{})
	if err != nil {
		t.Fatal(err)
	}
	if flat["SAM-en"] < 0.9 || flat["SAM-en"] > 1.3 {
		t.Fatalf("full projectivity should be near parity, got %.2f", flat["SAM-en"])
	}
	if flat["ideal"] < 1 || flat["ideal"] > 1.1 {
		t.Fatalf("ideal at full projectivity should sit at row-store parity, got %.3f", flat["ideal"])
	}
}

func TestSweepDegenerateRecordSize(t *testing.T) {
	vals, err := RunSweepPoint(context.Background(), SweepPoint{Query: Arithmetic, Selectivity: 1.0, Projected: 1, RecordBytes: 8}, 256, Par{})
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range vals {
		if v <= 0 {
			t.Errorf("%s: non-positive speedup %v", d, v)
		}
	}
}

func TestSweepAggregateTemplate(t *testing.T) {
	vals, err := RunSweepPoint(context.Background(), SweepPoint{Query: Aggregate, Selectivity: 0.5, Projected: 4}, 256, Par{})
	if err != nil {
		t.Fatal(err)
	}
	if vals["SAM-en"] <= 1 {
		t.Fatalf("aggregate sweep SAM-en = %.2f", vals["SAM-en"])
	}
}

func TestWorkloadDefaults(t *testing.T) {
	d := DefaultWorkload()
	if d.TaRecords*1024 < 16<<20 {
		t.Error("default Ta should exceed the 8MB LLC comfortably")
	}
	s := SmallWorkload()
	if s.TaRecords >= d.TaRecords {
		t.Error("small workload should be smaller")
	}
}

// TestPaperShapeRegression is the scientific regression suite: the
// qualitative claims of Section 6 must hold at test scale. Guarded by
// -short because it runs the whole benchmark on every design.
func TestPaperShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression skipped in short mode")
	}
	w := Workload{TaRecords: 1 << 10, TbRecords: 8 << 10, Seed: 0x9A9E12}
	fig, err := Fig12(context.Background(), w, Par{})
	if err != nil {
		t.Fatal(err)
	}
	gm := func(x, d string) float64 {
		v, ok := fig.Value(x, d)
		if !ok {
			t.Fatalf("missing cell (%s,%s)", x, d)
		}
		return v
	}

	samEn := gm("Gmean-Q", "SAM-en")
	samIO := gm("Gmean-Q", "SAM-IO")
	samSub := gm("Gmean-Q", "SAM-sub")
	gsEcc := gm("Gmean-Q", "GS-DRAM-ecc")
	rcWd := gm("Gmean-Q", "RC-NVM-wd")
	rcBit := gm("Gmean-Q", "RC-NVM-bit")

	// Headline ordering (paper: 4.2 >= 4.1 > 3.8 > 3.4 > 2.7 > 2.6).
	if !(samEn >= samIO && samIO > samSub && samSub > rcWd*0.95 && rcWd > gsEcc*0.9 && gsEcc > rcBit*0.9) {
		t.Fatalf("Q-gmean ordering broken: en=%.2f io=%.2f sub=%.2f rcwd=%.2f gsecc=%.2f rcbit=%.2f",
			samEn, samIO, samSub, rcWd, gsEcc, rcBit)
	}
	// Rough factors: SAM-en in the 3.5..6 band, baselines meaningfully less.
	if samEn < 3.5 || samEn > 6.5 {
		t.Fatalf("SAM-en Q gmean %.2f outside the expected band", samEn)
	}
	// The central claim: SAM-IO/en do not degrade the row-preferring set.
	for _, d := range []string{"SAM-IO", "SAM-en", "GS-DRAM", "ideal"} {
		if v := gm("Gmean-Qs", d); v < 0.97 {
			t.Fatalf("%s degrades Qs queries: %.3f", d, v)
		}
	}
	// The dual-addressing designs do.
	for _, d := range []string{"SAM-sub", "RC-NVM-wd", "RC-NVM-bit"} {
		if v := gm("Gmean-Qs", d); v > 0.95 {
			t.Fatalf("%s should show a Qs penalty, got %.3f", d, v)
		}
	}
	// Per-query spot checks: Q2 (mostly-false scan) is a best case for
	// every strided design; updates on NVM collapse below baseline.
	if v := gm("Q2", "SAM-en"); v < 4 {
		t.Fatalf("Q2 SAM-en = %.2f, want a large win", v)
	}
	if v := gm("Q12", "RC-NVM-wd"); v > 1 {
		t.Fatalf("Q12 RC-NVM-wd = %.2f, want below baseline (RRAM writes)", v)
	}
}

func TestFig14bMonotonicGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("granularity sweep skipped in short mode")
	}
	w := Workload{TaRecords: 512, TbRecords: 4096, Seed: 0x14B}
	fig, err := Fig14b(context.Background(), w, Par{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"SAM-en", "GS-DRAM-ecc", "RC-NVM-wd"} {
		g16, _ := fig.Value("16-bit", d)
		g8, _ := fig.Value("8-bit", d)
		g4, _ := fig.Value("4-bit", d)
		if !(g16 <= g8 && g8 <= g4) {
			t.Fatalf("%s granularity not monotonic: %.2f %.2f %.2f", d, g16, g8, g4)
		}
	}
	// SAM-en on top at every granularity (the paper's Fig. 14b).
	for _, x := range []string{"16-bit", "8-bit", "4-bit"} {
		sam, _ := fig.Value(x, "SAM-en")
		for _, d := range []string{"GS-DRAM-ecc", "RC-NVM-wd"} {
			v, _ := fig.Value(x, d)
			if v > sam {
				t.Fatalf("%s beats SAM-en at %s: %.2f vs %.2f", d, x, v, sam)
			}
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("power study skipped in short mode")
	}
	w := Workload{TaRecords: 512, TbRecords: 2048, Seed: 0xF13}
	rows, err := Fig13(context.Background(), w, Par{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(cat, d string) Fig13Row {
		for _, r := range rows {
			if r.Category == cat && r.Design == d {
				return r
			}
		}
		t.Fatalf("missing row (%s,%s)", cat, d)
		return Fig13Row{}
	}
	readCat := "Read(Q1-Q10)"
	base := get(readCat, "baseline")
	samIO := get(readCat, "SAM-IO")
	samEn := get(readCat, "SAM-en")
	rcWd := get(readCat, "RC-NVM-wd")

	// SAM-IO draws more power than baseline but is more energy efficient
	// (the Fig. 13 headline).
	if samIO.TotalMW <= base.TotalMW*1.2 {
		t.Fatalf("SAM-IO read power %.0f vs baseline %.0f: x16 fetch not visible", samIO.TotalMW, base.TotalMW)
	}
	if samIO.EnergyEff <= 1.5 {
		t.Fatalf("SAM-IO energy efficiency %.2f", samIO.EnergyEff)
	}
	// SAM-en's fine-grained activation keeps power near baseline.
	if samEn.TotalMW >= samIO.TotalMW*0.8 {
		t.Fatalf("SAM-en power %.0f not clearly below SAM-IO %.0f", samEn.TotalMW, samIO.TotalMW)
	}
	// RRAM background is near zero.
	if rcWd.Background >= base.Background/5 {
		t.Fatalf("RC-NVM background %.0f vs DRAM %.0f", rcWd.Background, base.Background)
	}
	// Write-Qs category: NVM efficiency collapses below baseline.
	if eff := get("Write(Qs5,Qs6)", "RC-NVM-wd").EnergyEff; eff >= 0.9 {
		t.Fatalf("RC-NVM write efficiency %.2f, want collapsed", eff)
	}
	// Every baseline row normalizes to 1.0.
	for _, cat := range Fig13Categories() {
		if eff := get(cat.Name, "baseline").EnergyEff; eff != 1 {
			t.Fatalf("baseline efficiency in %s = %v", cat.Name, eff)
		}
	}
}

func TestFig14aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("substrate swap skipped in short mode")
	}
	w := Workload{TaRecords: 512, TbRecords: 2048, Seed: 0xF14}
	fig, err := Fig14a(context.Background(), w, Par{})
	if err != nil {
		t.Fatal(err)
	}
	v := func(x, d string) float64 {
		val, ok := fig.Value(x, d)
		if !ok {
			t.Fatalf("missing (%s,%s)", x, d)
		}
		return val
	}
	// Claim 1: RC-NVM-wd and SAM-sub nearly identical per substrate.
	for _, sub := range []string{"NVM", "DRAM"} {
		rc, ss := v(sub, "RC-NVM-wd"), v(sub, "SAM-sub")
		if rc > ss*1.15 || ss > rc*1.25 {
			t.Fatalf("%s: RC-NVM-wd %.2f vs SAM-sub %.2f not 'nearly the same'", sub, rc, ss)
		}
	}
	// Claim 2: SAM-IO/en beat RC-NVM-wd on both substrates; DRAM beats NVM.
	for _, sub := range []string{"NVM", "DRAM"} {
		if v(sub, "SAM-en") <= v(sub, "RC-NVM-wd") {
			t.Fatalf("%s: SAM-en does not beat RC-NVM-wd", sub)
		}
	}
	for _, d := range []string{"RC-NVM-wd", "SAM-sub", "SAM-IO", "SAM-en"} {
		if v("DRAM", d) <= v("NVM", d) {
			t.Fatalf("%s: DRAM substrate not faster than NVM", d)
		}
	}
}

func TestFig15SweepRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runners skipped in short mode")
	}
	// Axes are sane.
	if len(Fig15Selectivities()) < 4 || Fig15Selectivities()[0] != 0.10 {
		t.Fatal("selectivity axis")
	}
	if len(Fig15Projectivities()) < 5 || len(Fig15RecordSizes()) < 5 {
		t.Fatal("axes too sparse")
	}
	// Each runner produces a full grid (trim the axes via tiny tables to
	// keep this fast: one point per axis value, four designs each).
	fig, err := Fig15SelectivitySweep(context.Background(), Arithmetic, 8, 256, Par{})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(Fig15Selectivities()) * 4 // three designs + ideal
	if len(fig.Cells) != wantCells {
		t.Fatalf("selectivity sweep has %d cells, want %d", len(fig.Cells), wantCells)
	}
	fig, err = Fig15ProjectivitySweep(context.Background(), Aggregate, 0.5, 256, Par{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != len(Fig15Projectivities())*4 {
		t.Fatalf("projectivity sweep cells: %d", len(fig.Cells))
	}
	fig, err = Fig15RecordSizeSweep(context.Background(), 256, Par{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != len(Fig15RecordSizes())*4 {
		t.Fatalf("record-size sweep cells: %d", len(fig.Cells))
	}
	// Panel (i)'s shape at test scale: SAM-en stays near parity everywhere.
	for _, rb := range Fig15RecordSizes() {
		v, ok := fig.Value(fmt.Sprintf("%dB", rb), "SAM-en")
		if !ok || v < 0.85 || v > 1.2 {
			t.Fatalf("record size %dB: SAM-en %.2f not near parity", rb, v)
		}
	}
}
