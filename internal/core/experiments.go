package core

import (
	"fmt"
	"math/rand"
	"strings"

	"sam/internal/area"
	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/sim"
	"sam/internal/sql"
	"sam/internal/stats"
)

// This file regenerates every table and figure of the paper's evaluation
// (Section 6). Each Fig* function returns both the rendered table and the
// raw series so tests and benches can assert on shapes.

// Cell is one (x, design) measurement of a figure.
type Cell struct {
	X      string
	Design string
	Value  float64
}

// Figure is a reproduced artifact: rows = x axis, columns = designs.
type Figure struct {
	ID    string
	Cells []Cell
}

// Value looks up one cell.
func (f *Figure) Value(x, designName string) (float64, bool) {
	for _, c := range f.Cells {
		if c.X == x && c.Design == designName {
			return c.Value, true
		}
	}
	return 0, false
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() *stats.Table {
	var xs []string
	var designs []string
	seenX := map[string]bool{}
	seenD := map[string]bool{}
	for _, c := range f.Cells {
		if !seenX[c.X] {
			seenX[c.X] = true
			xs = append(xs, c.X)
		}
		if !seenD[c.Design] {
			seenD[c.Design] = true
			designs = append(designs, c.Design)
		}
	}
	tb := stats.NewTable(append([]string{f.ID}, designs...)...)
	for _, x := range xs {
		row := []string{x}
		for _, d := range designs {
			if v, ok := f.Value(x, d); ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	return tb
}

// Fig12 reproduces the headline speedup comparison: every Table 3 query on
// every design, normalized to the row-store baseline, plus per-class
// geometric means.
func Fig12(w Workload) (*Figure, error) {
	fig := &Figure{ID: "fig12"}
	kinds := design.AllEvaluated()
	gmQ := map[string][]float64{}
	gmQs := map[string][]float64{}
	for _, q := range Benchmark() {
		rs, err := RunComparison(kinds, design.Options{}, w, q)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			fig.Cells = append(fig.Cells, Cell{X: q.Name, Design: r.Design, Value: r.Speedup})
			if q.Class == ClassQ {
				gmQ[r.Design] = append(gmQ[r.Design], r.Speedup)
			} else {
				gmQs[r.Design] = append(gmQs[r.Design], r.Speedup)
			}
		}
	}
	for _, k := range kinds {
		fig.Cells = append(fig.Cells,
			Cell{X: "Gmean-Q", Design: k.String(), Value: stats.Gmean(gmQ[k.String()])},
			Cell{X: "Gmean-Qs", Design: k.String(), Value: stats.Gmean(gmQs[k.String()])})
	}
	return fig, nil
}

// PowerCategory groups queries as Fig. 13 does.
type PowerCategory struct {
	Name    string
	Queries []string
}

// Fig13Categories returns the four categories of Fig. 13.
func Fig13Categories() []PowerCategory {
	return []PowerCategory{
		{Name: "Read(Q1-Q10)", Queries: []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10"}},
		{Name: "Write(Q11,Q12)", Queries: []string{"Q11", "Q12"}},
		{Name: "Read(Qs1-Qs4)", Queries: []string{"Qs1", "Qs2", "Qs3", "Qs4"}},
		{Name: "Write(Qs5,Qs6)", Queries: []string{"Qs5", "Qs6"}},
	}
}

// Fig13Row is one design's power and energy-efficiency numbers for a
// category.
type Fig13Row struct {
	Category   string
	Design     string
	Background float64 // mW
	RdWr       float64 // mW
	ActPre     float64 // mW
	TotalMW    float64
	// EnergyEff is work-per-energy normalized to the row-store baseline.
	EnergyEff float64
}

// Fig13 reproduces the power/energy-efficiency study.
func Fig13(w Workload) ([]Fig13Row, error) {
	byName := map[string]BenchQuery{}
	for _, q := range Benchmark() {
		byName[q.Name] = q
	}
	kinds := append([]design.Kind{Baseline()}, design.AllEvaluated()...)
	var rows []Fig13Row
	for _, cat := range Fig13Categories() {
		baseEnergy := map[string]float64{}
		for _, kind := range kinds {
			var bg, rw, act, total, energy, baseE float64
			for _, name := range cat.Queries {
				q := byName[name]
				r, err := RunOne(kind, design.Options{}, w, q)
				if err != nil {
					return nil, fmt.Errorf("fig13 %s %v: %w", name, kind, err)
				}
				p := r.Stats.PowerMW
				bg += p.Background
				rw += p.RdWr
				act += p.ActPre + p.Refresh
				total += p.Background + p.RdWr + p.ActPre + p.Refresh
				energy += r.Stats.Energy.Total()
				if kind == Baseline() {
					baseEnergy[name] = r.Stats.Energy.Total()
				}
				baseE += baseEnergy[name]
			}
			n := float64(len(cat.Queries))
			row := Fig13Row{
				Category:   cat.Name,
				Design:     kind.String(),
				Background: bg / n,
				RdWr:       rw / n,
				ActPre:     act / n,
				TotalMW:    total / n,
			}
			if energy > 0 && baseE > 0 {
				row.EnergyEff = baseE / energy
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Baseline returns the normalization design kind.
func Baseline() design.Kind { return design.Baseline }

// Fig14a reproduces the substrate swap: RC-NVM and SAM designs on both NVM
// and DRAM, all-query geometric mean speedup.
func Fig14a(w Workload) (*Figure, error) {
	fig := &Figure{ID: "fig14a"}
	kinds := []design.Kind{design.RCNVMWd, design.SAMSub, design.SAMIO, design.SAMEn}
	for _, sub := range []design.Substrate{design.NVM, design.DRAM} {
		opts := design.Options{Substrate: sub, SubstrateSet: true}
		gm := map[string][]float64{}
		for _, q := range Benchmark() {
			// Normalize against the plain DRAM baseline, like the paper.
			base, err := RunOne(design.Baseline, design.Options{}, w, q)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				r, err := RunOne(k, opts, w, q)
				if err != nil {
					return nil, err
				}
				gm[k.String()] = append(gm[k.String()], sim.Speedup(base.Stats, r.Stats))
			}
		}
		for _, k := range kinds {
			fig.Cells = append(fig.Cells, Cell{X: sub.String(), Design: k.String(), Value: stats.Gmean(gm[k.String()])})
		}
	}
	return fig, nil
}

// Fig14b reproduces the strided-granularity sweep (16/8/4 bits per chip)
// for RC-NVM-wd, GS-DRAM-ecc, and SAM-en: Q-query geometric mean.
func Fig14b(w Workload) (*Figure, error) {
	fig := &Figure{ID: "fig14b"}
	kinds := []design.Kind{design.RCNVMWd, design.GSDRAMecc, design.SAMEn}
	grans := []design.Granularity{design.Gran16, design.Gran8, design.Gran4}
	for _, g := range grans {
		opts := design.Options{Gran: g}
		gm := map[string][]float64{}
		for _, q := range Benchmark() {
			if q.Class != ClassQ {
				continue
			}
			base, err := RunOne(design.Baseline, design.Options{}, w, q)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				r, err := RunOne(k, opts, w, q)
				if err != nil {
					return nil, err
				}
				gm[k.String()] = append(gm[k.String()], sim.Speedup(base.Stats, r.Stats))
			}
		}
		label := fmt.Sprintf("%d-bit", g.BitsPerChip)
		for _, k := range kinds {
			fig.Cells = append(fig.Cells, Cell{X: label, Design: k.String(), Value: stats.Gmean(gm[k.String()])})
		}
	}
	return fig, nil
}

// Fig14c reproduces the area/storage overhead comparison.
func Fig14c() *Figure {
	fig := &Figure{ID: "fig14c"}
	for _, o := range area.All() {
		fig.Cells = append(fig.Cells,
			Cell{X: "area", Design: o.Design, Value: o.Area()},
			Cell{X: "storage", Design: o.Design, Value: o.Storage})
	}
	return fig
}

// SweepQueryKind selects the Fig. 15 query template.
type SweepQueryKind int

// Sweep templates.
const (
	Arithmetic SweepQueryKind = iota // SELECT fi + fj + ... FROM Ta WHERE f0 < x
	Aggregate                        // SELECT AVG(fi), ... FROM Ta WHERE f0 < x
)

// SweepPoint configures one Fig. 15 measurement.
type SweepPoint struct {
	Query       SweepQueryKind
	Selectivity float64 // fraction of records selected
	Projected   int     // number of fields projected
	RecordBytes int     // record size (fields * 8); 0 = Ta default (1KB)
	Records     int     // table size; 0 = workload default
}

// sweepSQL builds the query text for a point, choosing projected fields in
// the paper's "random manner" (deterministic seed).
func sweepSQL(p SweepPoint, tableFields int) string {
	var fields []int
	if p.Projected >= tableFields {
		// Full projectivity: every field, including the predicate column.
		for f := 0; f < tableFields; f++ {
			fields = append(fields, f)
		}
	} else {
		rng := rand.New(rand.NewSource(int64(p.Projected)*131 + 7))
		seen := map[int]bool{0: true} // f0 is the predicate column
		for len(fields) < p.Projected && len(seen) <= tableFields {
			f := 1 + rng.Intn(tableFields-1)
			if !seen[f] {
				seen[f] = true
				fields = append(fields, f)
			}
		}
	}
	var items []string
	switch p.Query {
	case Arithmetic:
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = fmt.Sprintf("f%d", f)
		}
		items = []string{strings.Join(parts, " + ")}
	case Aggregate:
		for _, f := range fields {
			items = append(items, fmt.Sprintf("AVG(f%d)", f))
		}
	}
	return fmt.Sprintf("SELECT %s FROM T WHERE f0 < x", strings.Join(items, ", "))
}

// SweepDesigns are the Fig. 15 representatives.
func SweepDesigns() []design.Kind {
	return []design.Kind{design.RCNVMWd, design.GSDRAMecc, design.SAMEn}
}

// RunSweepPoint measures all sweep designs (plus ideal) at one point,
// returning speedups over the row-store baseline.
func RunSweepPoint(p SweepPoint, records int) (map[string]float64, error) {
	if p.Records > 0 {
		records = p.Records
	}
	rb := p.RecordBytes
	if rb == 0 {
		rb = 1024
	}
	fields := rb / imdb.FieldBytes
	if fields < 1 {
		return nil, fmt.Errorf("core: record size %dB below one field", rb)
	}
	if p.Projected > fields {
		p.Projected = fields
	}
	if p.Projected < 1 {
		p.Projected = 1
	}
	if fields == 1 {
		p.Projected = 1 // degenerate single-field record: project f0 itself
	}
	schema := imdb.Schema{Name: "T", Fields: fields, Records: records}
	query := sweepSQL(p, fields)
	params := sql.Params{"x": imdb.Percentile(p.Selectivity)}

	run := func(kind design.Kind, colStore bool) (*sim.QueryResult, error) {
		d := design.New(kind, design.Options{})
		s := sim.NewSystem(d)
		s.AddTable(imdb.NewTable(schema, 0xF15), colStore)
		stmt, err := sql.Parse(query)
		if err != nil {
			return nil, err
		}
		plan, err := sql.Compile(stmt, params)
		if err != nil {
			return nil, err
		}
		// Near-total projectivity executes row-wise (whole-record reads),
		// like any engine that prefers a row store for such queries.
		touched := map[int]bool{}
		for _, f := range plan.PredFields {
			touched[f] = true
		}
		for _, f := range plan.ProjFields {
			touched[f] = true
		}
		plan.FullScan = !colStore && len(touched)*10 >= fields*9
		return s.RunPlan(plan)
	}

	base, err := run(design.Baseline, false)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, k := range SweepDesigns() {
		r, err := run(k, false)
		if err != nil {
			return nil, err
		}
		if r.Rows != base.Rows || r.ArithChecks != base.ArithChecks {
			return nil, fmt.Errorf("core: sweep functional mismatch on %v", k)
		}
		out[k.String()] = sim.Speedup(base.Stats, r.Stats)
	}
	// Ideal: preferred store — the better of row (baseline itself) and
	// column placement.
	col, err := run(design.Ideal, true)
	if err != nil {
		return nil, err
	}
	ideal := sim.Speedup(base.Stats, col.Stats)
	if ideal < 1 {
		ideal = 1
	}
	out["ideal"] = ideal
	return out, nil
}

// Fig15Selectivities is the x axis of panels (a)-(c) and (g) — the paper
// sweeps from 10% up.
func Fig15Selectivities() []float64 { return []float64{0.10, 0.20, 0.40, 0.60, 0.80, 1.0} }

// Fig15Projectivities is the x axis of panels (d)-(f) and (h).
func Fig15Projectivities() []int { return []int{1, 2, 4, 8, 16, 32, 64, 96, 127} }

// Fig15RecordSizes is the x axis of panel (i).
func Fig15RecordSizes() []int { return []int{8, 16, 32, 64, 128, 256, 512, 1024} }

// Fig15SelectivitySweep runs panels (a)-(c)/(g): speedup vs selectivity at
// fixed projectivity.
func Fig15SelectivitySweep(kind SweepQueryKind, projected, records int) (*Figure, error) {
	name := "fig15-arith-sel"
	if kind == Aggregate {
		name = "fig15-aggr-sel"
	}
	fig := &Figure{ID: fmt.Sprintf("%s-p%d", name, projected)}
	for _, sel := range Fig15Selectivities() {
		vals, err := RunSweepPoint(SweepPoint{Query: kind, Selectivity: sel, Projected: projected}, records)
		if err != nil {
			return nil, err
		}
		x := fmt.Sprintf("%.0f%%", sel*100)
		for d, v := range vals {
			fig.Cells = append(fig.Cells, Cell{X: x, Design: d, Value: v})
		}
	}
	return fig, nil
}

// Fig15ProjectivitySweep runs panels (d)-(f)/(h): speedup vs projectivity
// at fixed selectivity.
func Fig15ProjectivitySweep(kind SweepQueryKind, selectivity float64, records int) (*Figure, error) {
	name := "fig15-arith-proj"
	if kind == Aggregate {
		name = "fig15-aggr-proj"
	}
	fig := &Figure{ID: fmt.Sprintf("%s-s%.0f", name, selectivity*100)}
	for _, proj := range Fig15Projectivities() {
		vals, err := RunSweepPoint(SweepPoint{Query: kind, Selectivity: selectivity, Projected: proj}, records)
		if err != nil {
			return nil, err
		}
		x := fmt.Sprintf("%d", proj)
		for d, v := range vals {
			fig.Cells = append(fig.Cells, Cell{X: x, Design: d, Value: v})
		}
	}
	return fig, nil
}

// Fig15RecordSizeSweep runs panel (i): all fields projected, 100% selected,
// record size varied.
func Fig15RecordSizeSweep(records int) (*Figure, error) {
	fig := &Figure{ID: "fig15i"}
	for _, rb := range Fig15RecordSizes() {
		fields := rb / imdb.FieldBytes
		vals, err := RunSweepPoint(SweepPoint{
			Query: Arithmetic, Selectivity: 1.0, Projected: fields, RecordBytes: rb,
		}, records)
		if err != nil {
			return nil, err
		}
		x := fmt.Sprintf("%dB", rb)
		for d, v := range vals {
			fig.Cells = append(fig.Cells, Cell{X: x, Design: d, Value: v})
		}
	}
	return fig, nil
}
