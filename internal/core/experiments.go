package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"sam/internal/area"
	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/runner"
	"sam/internal/sim"
	"sam/internal/sql"
	"sam/internal/stats"
)

// This file regenerates every table and figure of the paper's evaluation
// (Section 6). Each Fig* function returns both the rendered table and the
// raw series so tests and benches can assert on shapes.
//
// Every driver fans its grid of independent (query, design, sweep-point)
// simulations out over the bounded worker pool in internal/runner: each
// simulation owns a fresh sim.System (goroutine-confined for the whole
// run), so the grid is embarrassingly parallel, and results are
// aggregated in a fixed order so the emitted tables are byte-identical
// for any Par.Workers value.

// Cell is one (x, design) measurement of a figure.
type Cell struct {
	X      string
	Design string
	Value  float64
}

// Figure is a reproduced artifact: rows = x axis, columns = designs.
type Figure struct {
	ID    string
	Cells []Cell
}

// Value looks up one cell.
func (f *Figure) Value(x, designName string) (float64, bool) {
	for _, c := range f.Cells {
		if c.X == x && c.Design == designName {
			return c.Value, true
		}
	}
	return 0, false
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() *stats.Table {
	var xs []string
	var designs []string
	seenX := map[string]bool{}
	seenD := map[string]bool{}
	for _, c := range f.Cells {
		if !seenX[c.X] {
			seenX[c.X] = true
			xs = append(xs, c.X)
		}
		if !seenD[c.Design] {
			seenD[c.Design] = true
			designs = append(designs, c.Design)
		}
	}
	tb := stats.NewTable(append([]string{f.ID}, designs...)...)
	for _, x := range xs {
		row := []string{x}
		for _, d := range designs {
			if v, ok := f.Value(x, d); ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	return tb
}

// Fig12 reproduces the headline speedup comparison: every Table 3 query on
// every design, normalized to the row-store baseline, plus per-class
// geometric means. The whole (query x design) grid — baseline runs
// included — is one flat parallel sweep.
func Fig12(ctx context.Context, w Workload, par Par) (*Figure, error) {
	kinds := design.AllEvaluated()
	queries := Benchmark()
	runKinds := append([]design.Kind{design.Baseline}, kinds...)
	grid, err := runner.Grid(ctx, queries, runKinds, par.opts(),
		func(ctx context.Context, _, _ int, q BenchQuery, k design.Kind) (*sim.QueryResult, error) {
			r, err := par.runOne(ctx, k, design.Options{}, w, q)
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", q.Name, k, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig12"}
	gmQ := map[string][]float64{}
	gmQs := map[string][]float64{}
	var errs []error
	for i, q := range queries {
		base := grid[i][0]
		if par.Metrics != nil {
			par.Metrics("fig12", q.Name, design.Baseline.String(), base.Stats)
		}
		for j, k := range kinds {
			r := grid[i][j+1]
			if err := checkFunctional(q, k, base, r); err != nil {
				errs = append(errs, err)
				continue
			}
			if par.Metrics != nil {
				par.Metrics("fig12", q.Name, k.String(), r.Stats)
			}
			sp := sim.Speedup(base.Stats, r.Stats)
			fig.Cells = append(fig.Cells, Cell{X: q.Name, Design: k.String(), Value: sp})
			if q.Class == ClassQ {
				gmQ[k.String()] = append(gmQ[k.String()], sp)
			} else {
				gmQs[k.String()] = append(gmQs[k.String()], sp)
			}
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	for _, k := range kinds {
		fig.Cells = append(fig.Cells,
			Cell{X: "Gmean-Q", Design: k.String(), Value: stats.Gmean(gmQ[k.String()])},
			Cell{X: "Gmean-Qs", Design: k.String(), Value: stats.Gmean(gmQs[k.String()])})
	}
	return fig, nil
}

// PowerCategory groups queries as Fig. 13 does.
type PowerCategory struct {
	Name    string
	Queries []string
}

// Fig13Categories returns the four categories of Fig. 13.
func Fig13Categories() []PowerCategory {
	return []PowerCategory{
		{Name: "Read(Q1-Q10)", Queries: []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10"}},
		{Name: "Write(Q11,Q12)", Queries: []string{"Q11", "Q12"}},
		{Name: "Read(Qs1-Qs4)", Queries: []string{"Qs1", "Qs2", "Qs3", "Qs4"}},
		{Name: "Write(Qs5,Qs6)", Queries: []string{"Qs5", "Qs6"}},
	}
}

// Fig13Row is one design's power and energy-efficiency numbers for a
// category.
type Fig13Row struct {
	Category   string
	Design     string
	Background float64 // mW
	RdWr       float64 // mW
	ActPre     float64 // mW
	TotalMW    float64
	// EnergyEff is work-per-energy normalized to the row-store baseline.
	EnergyEff float64
}

// Fig13 reproduces the power/energy-efficiency study. All (design, query)
// runs execute as one parallel grid; the category averages are then
// aggregated sequentially in the paper's order.
func Fig13(ctx context.Context, w Workload, par Par) ([]Fig13Row, error) {
	queries := Benchmark()
	kinds := append([]design.Kind{Baseline()}, design.AllEvaluated()...)
	grid, err := runner.Grid(ctx, kinds, queries, par.opts(),
		func(ctx context.Context, _, _ int, kind design.Kind, q BenchQuery) (*sim.QueryResult, error) {
			r, err := par.runOne(ctx, kind, design.Options{}, w, q)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s %v: %w", q.Name, kind, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	res := map[string]map[string]*sim.QueryResult{} // design -> query -> result
	for i, kind := range kinds {
		byQuery := make(map[string]*sim.QueryResult, len(queries))
		for j, q := range queries {
			byQuery[q.Name] = grid[i][j]
		}
		res[kind.String()] = byQuery
	}
	baseRes := res[Baseline().String()]
	var rows []Fig13Row
	for _, cat := range Fig13Categories() {
		for _, kind := range kinds {
			var bg, rw, act, total, energy, baseE float64
			for _, name := range cat.Queries {
				r := res[kind.String()][name]
				p := r.Stats.PowerMW
				bg += p.Background
				rw += p.RdWr
				act += p.ActPre + p.Refresh
				total += p.Background + p.RdWr + p.ActPre + p.Refresh
				energy += r.Stats.Energy.Total()
				baseE += baseRes[name].Stats.Energy.Total()
			}
			n := float64(len(cat.Queries))
			row := Fig13Row{
				Category:   cat.Name,
				Design:     kind.String(),
				Background: bg / n,
				RdWr:       rw / n,
				ActPre:     act / n,
				TotalMW:    total / n,
			}
			if energy > 0 && baseE > 0 {
				row.EnergyEff = baseE / energy
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Baseline returns the normalization design kind.
func Baseline() design.Kind { return design.Baseline }

// figJob is one (query, design, options) simulation of a Fig. 14 sweep.
type figJob struct {
	q    BenchQuery
	kind design.Kind
	opts design.Options
}

// runJobs executes a flat job list on the worker pool.
func runJobs(ctx context.Context, jobs []figJob, w Workload, par Par) ([]*sim.QueryResult, error) {
	return runner.Map(ctx, jobs, par.opts(),
		func(ctx context.Context, _ int, j figJob) (*sim.QueryResult, error) {
			r, err := par.runOne(ctx, j.kind, j.opts, w, j.q)
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", j.q.Name, j.kind, err)
			}
			return r, nil
		})
}

// Fig14a reproduces the substrate swap: RC-NVM and SAM designs on both NVM
// and DRAM, all-query geometric mean speedup. Baseline runs (normalization
// is always against the plain DRAM baseline, like the paper) execute once
// per query and share the same pool as the design runs.
func Fig14a(ctx context.Context, w Workload, par Par) (*Figure, error) {
	kinds := []design.Kind{design.RCNVMWd, design.SAMSub, design.SAMIO, design.SAMEn}
	subs := []design.Substrate{design.NVM, design.DRAM}
	queries := Benchmark()
	var jobs []figJob
	for _, q := range queries {
		jobs = append(jobs, figJob{q: q, kind: design.Baseline})
	}
	for _, sub := range subs {
		opts := design.Options{Substrate: sub, SubstrateSet: true}
		for _, q := range queries {
			for _, k := range kinds {
				jobs = append(jobs, figJob{q: q, kind: k, opts: opts})
			}
		}
	}
	res, err := runJobs(ctx, jobs, w, par)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig14a"}
	nq, nk := len(queries), len(kinds)
	for si, sub := range subs {
		gm := map[string][]float64{}
		for qi := range queries {
			base := res[qi]
			for ki, k := range kinds {
				r := res[nq+si*nq*nk+qi*nk+ki]
				gm[k.String()] = append(gm[k.String()], sim.Speedup(base.Stats, r.Stats))
			}
		}
		for _, k := range kinds {
			fig.Cells = append(fig.Cells, Cell{X: sub.String(), Design: k.String(), Value: stats.Gmean(gm[k.String()])})
		}
	}
	return fig, nil
}

// Fig14b reproduces the strided-granularity sweep (16/8/4 bits per chip)
// for RC-NVM-wd, GS-DRAM-ecc, and SAM-en: Q-query geometric mean.
func Fig14b(ctx context.Context, w Workload, par Par) (*Figure, error) {
	kinds := []design.Kind{design.RCNVMWd, design.GSDRAMecc, design.SAMEn}
	grans := []design.Granularity{design.Gran16, design.Gran8, design.Gran4}
	var queries []BenchQuery
	for _, q := range Benchmark() {
		if q.Class == ClassQ {
			queries = append(queries, q)
		}
	}
	var jobs []figJob
	for _, q := range queries {
		jobs = append(jobs, figJob{q: q, kind: design.Baseline})
	}
	for _, g := range grans {
		for _, q := range queries {
			for _, k := range kinds {
				jobs = append(jobs, figJob{q: q, kind: k, opts: design.Options{Gran: g}})
			}
		}
	}
	res, err := runJobs(ctx, jobs, w, par)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig14b"}
	nq, nk := len(queries), len(kinds)
	for gi, g := range grans {
		gm := map[string][]float64{}
		for qi := range queries {
			base := res[qi]
			for ki, k := range kinds {
				r := res[nq+gi*nq*nk+qi*nk+ki]
				gm[k.String()] = append(gm[k.String()], sim.Speedup(base.Stats, r.Stats))
			}
		}
		label := fmt.Sprintf("%d-bit", g.BitsPerChip)
		for _, k := range kinds {
			fig.Cells = append(fig.Cells, Cell{X: label, Design: k.String(), Value: stats.Gmean(gm[k.String()])})
		}
	}
	return fig, nil
}

// Fig14c reproduces the area/storage overhead comparison.
func Fig14c() *Figure {
	fig := &Figure{ID: "fig14c"}
	for _, o := range area.All() {
		fig.Cells = append(fig.Cells,
			Cell{X: "area", Design: o.Design, Value: o.Area()},
			Cell{X: "storage", Design: o.Design, Value: o.Storage})
	}
	return fig
}

// SweepQueryKind selects the Fig. 15 query template.
type SweepQueryKind int

// Sweep templates.
const (
	Arithmetic SweepQueryKind = iota // SELECT fi + fj + ... FROM Ta WHERE f0 < x
	Aggregate                        // SELECT AVG(fi), ... FROM Ta WHERE f0 < x
)

// SweepPoint configures one Fig. 15 measurement.
type SweepPoint struct {
	Query       SweepQueryKind
	Selectivity float64 // fraction of records selected
	Projected   int     // number of fields projected
	RecordBytes int     // record size (fields * 8); 0 = Ta default (1KB)
	Records     int     // table size; 0 = workload default
}

// sweepSQL builds the query text for a point, choosing projected fields in
// the paper's "random manner" (deterministic seed).
func sweepSQL(p SweepPoint, tableFields int) string {
	var fields []int
	if p.Projected >= tableFields {
		// Full projectivity: every field, including the predicate column.
		for f := 0; f < tableFields; f++ {
			fields = append(fields, f)
		}
	} else {
		rng := rand.New(rand.NewSource(int64(p.Projected)*131 + 7))
		seen := map[int]bool{0: true} // f0 is the predicate column
		for len(fields) < p.Projected && len(seen) <= tableFields {
			f := 1 + rng.Intn(tableFields-1)
			if !seen[f] {
				seen[f] = true
				fields = append(fields, f)
			}
		}
	}
	var items []string
	switch p.Query {
	case Arithmetic:
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = fmt.Sprintf("f%d", f)
		}
		items = []string{strings.Join(parts, " + ")}
	case Aggregate:
		for _, f := range fields {
			items = append(items, fmt.Sprintf("AVG(f%d)", f))
		}
	}
	return fmt.Sprintf("SELECT %s FROM T WHERE f0 < x", strings.Join(items, ", "))
}

// sweepTableSeed seeds every Fig. 15 generated table (part of the sweep
// cache key — see sweepRunKey).
const sweepTableSeed uint64 = 0xF15

// SweepDesigns are the Fig. 15 representatives.
func SweepDesigns() []design.Kind {
	return []design.Kind{design.RCNVMWd, design.GSDRAMecc, design.SAMEn}
}

// sweepDesignNames is the deterministic column order of every Fig. 15
// figure: the sweep designs in paper order, then the ideal bound. Iterating
// the RunSweepPoint map in this order (instead of Go's randomized map
// range) is what keeps sweep tables byte-identical across runs and worker
// counts.
func sweepDesignNames() []string {
	names := make([]string, 0, len(SweepDesigns())+1)
	for _, k := range SweepDesigns() {
		names = append(names, k.String())
	}
	return append(names, "ideal")
}

// RunSweepPoint measures all sweep designs (plus ideal) at one point,
// returning speedups over the row-store baseline. The per-design runs
// (baseline and ideal included) execute in parallel on the worker pool.
func RunSweepPoint(ctx context.Context, p SweepPoint, records int, par Par) (map[string]float64, error) {
	speedups, _, err := RunSweepPointStats(ctx, p, records, par)
	return speedups, err
}

// RunSweepPointStats is RunSweepPoint plus the raw per-design run
// statistics (keyed like the speedup map, with an extra "baseline" entry),
// for pipelines that dump per-point metrics alongside the figure values.
func RunSweepPointStats(ctx context.Context, p SweepPoint, records int, par Par) (map[string]float64, map[string]sim.RunStats, error) {
	if p.Records > 0 {
		records = p.Records
	}
	rb := p.RecordBytes
	if rb == 0 {
		rb = 1024
	}
	fields := rb / imdb.FieldBytes
	if fields < 1 {
		return nil, nil, fmt.Errorf("core: record size %dB below one field", rb)
	}
	if p.Projected > fields {
		p.Projected = fields
	}
	if p.Projected < 1 {
		p.Projected = 1
	}
	if fields == 1 {
		p.Projected = 1 // degenerate single-field record: project f0 itself
	}
	schema := imdb.Schema{Name: "T", Fields: fields, Records: records}
	query := sweepSQL(p, fields)
	params := sql.Params{"x": imdb.Percentile(p.Selectivity)}

	sim1 := func(kind design.Kind, colStore bool) (*sim.QueryResult, error) {
		d := design.New(kind, design.Options{})
		s := sim.NewSystem(d)
		s.AddTable(imdb.NewTable(schema, sweepTableSeed), colStore)
		stmt, err := sql.Parse(query)
		if err != nil {
			return nil, err
		}
		plan, err := sql.Compile(stmt, params)
		if err != nil {
			return nil, err
		}
		// Near-total projectivity executes row-wise (whole-record reads),
		// like any engine that prefers a row store for such queries.
		touched := map[int]bool{}
		for _, f := range plan.PredFields {
			touched[f] = true
		}
		for _, f := range plan.ProjFields {
			touched[f] = true
		}
		plan.FullScan = !colStore && len(touched)*10 >= fields*9
		return s.RunPlan(plan)
	}
	run := func(ctx context.Context, kind design.Kind, colStore bool) (*sim.QueryResult, error) {
		return sim1(kind, colStore)
	}
	if par.Memo != nil {
		run = func(ctx context.Context, kind design.Kind, colStore bool) (*sim.QueryResult, error) {
			key := sweepRunKey(kind, design.Options{}, schema, sweepTableSeed, query, params, colStore)
			r, out, err := par.Memo.do(key, func() (*sim.QueryResult, error) { return sim1(kind, colStore) })
			annotateMemo(ctx, out, err)
			return r, err
		}
	}

	type sweepRun struct {
		kind     design.Kind
		colStore bool
	}
	runs := []sweepRun{{design.Baseline, false}}
	for _, k := range SweepDesigns() {
		runs = append(runs, sweepRun{k, false})
	}
	// Ideal: preferred store — the better of row (baseline itself) and
	// column placement.
	runs = append(runs, sweepRun{design.Ideal, true})
	res, err := runner.Map(ctx, runs, par.opts(),
		func(ctx context.Context, _ int, sr sweepRun) (*sim.QueryResult, error) {
			r, err := run(ctx, sr.kind, sr.colStore)
			if err != nil {
				return nil, fmt.Errorf("sweep on %v: %w", sr.kind, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, nil, err
	}
	base := res[0]
	out := map[string]float64{}
	sts := map[string]sim.RunStats{"baseline": base.Stats}
	var errs []error
	for i, k := range SweepDesigns() {
		r := res[i+1]
		if r.Rows != base.Rows || r.ArithChecks != base.ArithChecks {
			errs = append(errs, fmt.Errorf("core: sweep functional mismatch on %v", k))
			continue
		}
		out[k.String()] = sim.Speedup(base.Stats, r.Stats)
		sts[k.String()] = r.Stats
	}
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	ideal := sim.Speedup(base.Stats, res[len(res)-1].Stats)
	if ideal < 1 {
		ideal = 1
	}
	out["ideal"] = ideal
	sts["ideal"] = res[len(res)-1].Stats
	return out, sts, nil
}

// Fig15Selectivities is the x axis of panels (a)-(c) and (g) — the paper
// sweeps from 10% up.
func Fig15Selectivities() []float64 { return []float64{0.10, 0.20, 0.40, 0.60, 0.80, 1.0} }

// Fig15Projectivities is the x axis of panels (d)-(f) and (h).
func Fig15Projectivities() []int { return []int{1, 2, 4, 8, 16, 32, 64, 96, 127} }

// Fig15RecordSizes is the x axis of panel (i).
func Fig15RecordSizes() []int { return []int{8, 16, 32, 64, 128, 256, 512, 1024} }

// sweepFigure runs one Fig. 15 sweep axis in parallel: points fan out on
// the outer pool (which owns the progress callback), and each point's
// per-design runs fan out on an inner pool with the same worker bound.
func sweepFigure(ctx context.Context, id string, points []SweepPoint, records int, labels func(i int) string, par Par) (*Figure, error) {
	inner := Par{Workers: par.Workers, Memo: par.Memo, Observer: par.Observer} // progress reports whole points only
	type pointResult struct {
		speedups map[string]float64
		stats    map[string]sim.RunStats
	}
	vals, err := runner.Map(ctx, points, par.opts(),
		func(ctx context.Context, _ int, p SweepPoint) (pointResult, error) {
			sp, st, err := RunSweepPointStats(ctx, p, records, inner)
			return pointResult{sp, st}, err
		})
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id}
	for i := range points {
		x := labels(i)
		if par.Metrics != nil {
			par.Metrics(id, x, "baseline", vals[i].stats["baseline"])
		}
		for _, d := range sweepDesignNames() {
			fig.Cells = append(fig.Cells, Cell{X: x, Design: d, Value: vals[i].speedups[d]})
			if par.Metrics != nil {
				par.Metrics(id, x, d, vals[i].stats[d])
			}
		}
	}
	return fig, nil
}

// Fig15SelectivitySweep runs panels (a)-(c)/(g): speedup vs selectivity at
// fixed projectivity.
func Fig15SelectivitySweep(ctx context.Context, kind SweepQueryKind, projected, records int, par Par) (*Figure, error) {
	name := "fig15-arith-sel"
	if kind == Aggregate {
		name = "fig15-aggr-sel"
	}
	sels := Fig15Selectivities()
	points := make([]SweepPoint, len(sels))
	for i, sel := range sels {
		points[i] = SweepPoint{Query: kind, Selectivity: sel, Projected: projected}
	}
	return sweepFigure(ctx, fmt.Sprintf("%s-p%d", name, projected), points, records,
		func(i int) string { return fmt.Sprintf("%.0f%%", sels[i]*100) }, par)
}

// Fig15ProjectivitySweep runs panels (d)-(f)/(h): speedup vs projectivity
// at fixed selectivity.
func Fig15ProjectivitySweep(ctx context.Context, kind SweepQueryKind, selectivity float64, records int, par Par) (*Figure, error) {
	name := "fig15-arith-proj"
	if kind == Aggregate {
		name = "fig15-aggr-proj"
	}
	projs := Fig15Projectivities()
	points := make([]SweepPoint, len(projs))
	for i, proj := range projs {
		points[i] = SweepPoint{Query: kind, Selectivity: selectivity, Projected: proj}
	}
	return sweepFigure(ctx, fmt.Sprintf("%s-s%.0f", name, selectivity*100), points, records,
		func(i int) string { return fmt.Sprintf("%d", projs[i]) }, par)
}

// Fig15RecordSizeSweep runs panel (i): all fields projected, 100% selected,
// record size varied.
func Fig15RecordSizeSweep(ctx context.Context, records int, par Par) (*Figure, error) {
	sizes := Fig15RecordSizes()
	points := make([]SweepPoint, len(sizes))
	for i, rb := range sizes {
		points[i] = SweepPoint{
			Query: Arithmetic, Selectivity: 1.0, Projected: rb / imdb.FieldBytes, RecordBytes: rb,
		}
	}
	return sweepFigure(ctx, "fig15i", points, records,
		func(i int) string { return fmt.Sprintf("%dB", sizes[i]) }, par)
}
