// Package memo is a content-addressed, deterministic run-result cache
// with in-flight singleflight deduplication — the "same design × config ×
// seed ⇒ cached RunStats" layer the figure, sweep, and reliability
// pipelines (and the future samd daemon) multiplex onto.
//
// Keys are Fingerprint sums: canonical hashes of everything that
// determines a run's outcome, salted with SchemaVersion so a simulator-
// semantics change invalidates every prior entry. Values are immutable by
// contract — callers on a hit receive the same value the miss computed,
// so cached values must never be mutated (the core pipelines only read
// run results).
//
// Two tiers: a bounded in-process LRU serves concurrent sweep workers
// (with a runner.Flight so two workers needing the same point run it
// once), and an optional disk tier (Config.Dir) makes a warm re-run of a
// whole figure pipeline near-instant. Disk entries are checksummed;
// corruption or truncation falls back to a miss, never an error.
package memo

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sam/internal/runner"
	"sam/internal/stats"
)

// DefaultMaxEntries bounds the in-process tier when Config.MaxEntries is
// zero. Run results are kilobytes, so the default keeps the resident set
// in the tens of megabytes even for campaign-scale sweeps.
const DefaultMaxEntries = 8192

// Config configures a Cache.
type Config[V any] struct {
	// MaxEntries bounds the in-process LRU tier; 0 means
	// DefaultMaxEntries, negative means unbounded.
	MaxEntries int
	// Dir, when non-empty, enables the disk tier: every computed value is
	// persisted under <Dir>/<key>.memo and survives the process. The
	// directory is created on first write.
	Dir string
	// Encode/Decode serialize values for the disk tier and for byte
	// accounting (memo.bytes). Encode is required when Dir is set; with
	// no encoder the cache is memory-only and memo.bytes stays 0.
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// Outcome classifies how Do satisfied a lookup.
type Outcome int

// Outcomes.
const (
	// Miss: the value was computed by this call.
	Miss Outcome = iota
	// Hit: served from the in-process tier.
	Hit
	// DiskHit: served from the disk tier (and promoted to memory).
	DiskHit
	// Dedup: coalesced onto a concurrent in-flight computation.
	Dedup
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case DiskHit:
		return "disk-hit"
	case Dedup:
		return "dedup"
	default:
		return "miss"
	}
}

// Counters is a point-in-time reading of the cache's instruments.
type Counters struct {
	Hits          uint64 // in-process tier hits
	DiskHits      uint64 // disk tier hits (promoted to memory)
	Misses        uint64 // computations actually executed
	InflightDedup uint64 // lookups coalesced onto an in-flight computation
	Evictions     uint64 // LRU entries dropped for capacity
	Corrupt       uint64 // disk entries rejected (bad magic/checksum/decode)
	DiskErrors    uint64 // disk writes that failed (cache stays correct)
	Bytes         int64  // encoded bytes resident in the in-process tier
	Entries       int    // entries resident in the in-process tier
}

// Lookups is the total number of Do calls the counters describe.
func (c Counters) Lookups() uint64 {
	return c.Hits + c.DiskHits + c.Misses + c.InflightDedup
}

// HitRate is the fraction of lookups served without computing (memory,
// disk, or in-flight coalescing), in [0,1]; 0 with no lookups.
func (c Counters) HitRate() float64 {
	l := c.Lookups()
	if l == 0 {
		return 0
	}
	return float64(l-c.Misses) / float64(l)
}

// String renders the one-line summary the CLIs print.
func (c Counters) String() string {
	return fmt.Sprintf("%d hits, %d disk hits, %d misses, %d inflight-dedup, %d entries (%d bytes)",
		c.Hits, c.DiskHits, c.Misses, c.InflightDedup, c.Entries, c.Bytes)
}

// entry is one resident value.
type entry[V any] struct {
	key  string
	val  V
	size int64
}

// flightRes carries the leader's value and how it obtained it.
type flightRes[V any] struct {
	val V
	out Outcome
}

// Cache is the two-tier memo cache. All methods are goroutine-safe.
type Cache[V any] struct {
	cfg Config[V]

	mu    sync.Mutex
	ll    *list.List               // front = most recent
	byKey map[string]*list.Element // key -> *entry
	bytes int64

	// Instruments live in an internal/stats registry so snapshots slot
	// straight into -stats-json and -metrics-dir dumps. Updates happen
	// under mu (registry instruments are not goroutine-safe themselves).
	reg      *stats.Registry
	hits     *stats.Counter
	diskHits *stats.Counter
	misses   *stats.Counter
	dedup    *stats.Counter
	evict    *stats.Counter
	corrupt  *stats.Counter
	diskErrs *stats.Counter
	bytesG   *stats.Gauge

	flight runner.Flight[flightRes[V]]
}

// New builds a cache. It panics if Dir is set without an Encode/Decode
// pair — a misconfiguration, not a runtime condition.
func New[V any](cfg Config[V]) *Cache[V] {
	if cfg.Dir != "" && (cfg.Encode == nil || cfg.Decode == nil) {
		panic("memo: Config.Dir requires Encode and Decode")
	}
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	c := &Cache[V]{
		cfg:   cfg,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		reg:   stats.NewRegistry(),
	}
	c.hits = c.reg.Counter("memo.hits")
	c.diskHits = c.reg.Counter("memo.disk_hits")
	c.misses = c.reg.Counter("memo.misses")
	c.dedup = c.reg.Counter("memo.inflight_dedup")
	c.evict = c.reg.Counter("memo.evictions")
	c.corrupt = c.reg.Counter("memo.corrupt_entries")
	c.diskErrs = c.reg.Counter("memo.disk_errors")
	c.bytesG = c.reg.Gauge("memo.bytes")
	c.bytesG.Set(0)
	return c
}

// Do returns the value for key, computing it with compute on a full miss.
// Concurrent Do calls with the same key coalesce onto one computation.
// Errors are never cached: a failed key recomputes on the next lookup.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, Outcome, error) {
	if v, ok := c.lookup(key); ok {
		return v, Hit, nil
	}
	res, shared, err := c.flight.Do(key, func() (flightRes[V], error) {
		// Re-check memory: a previous leader may have finished between
		// our lookup miss and winning the flight.
		if v, ok := c.lookup(key); ok {
			return flightRes[V]{v, Hit}, nil
		}
		if v, enc, ok := c.diskLoad(key); ok {
			c.insert(key, v, enc, false)
			c.mu.Lock()
			c.diskHits.Inc()
			c.mu.Unlock()
			return flightRes[V]{v, DiskHit}, nil
		}
		v, err := compute()
		if err != nil {
			return flightRes[V]{}, err
		}
		enc, err := c.encode(v)
		if err != nil {
			return flightRes[V]{}, fmt.Errorf("memo: encode %s: %w", key, err)
		}
		c.insert(key, v, enc, true)
		c.mu.Lock()
		c.misses.Inc()
		c.mu.Unlock()
		return flightRes[V]{v, Miss}, nil
	})
	if err != nil {
		var zero V
		return zero, Miss, err
	}
	if shared {
		c.mu.Lock()
		c.dedup.Inc()
		c.mu.Unlock()
		return res.val, Dedup, nil
	}
	return res.val, res.out, nil
}

// Lookup probes both tiers without computing: a memory hit counts as
// Hit, a disk hit is promoted and counted as DiskHit, and an absent key
// returns ok=false WITHOUT counting a miss — the caller is expected to
// follow up with Do, which accounts for the computation. This is the
// admission-time probe the samd daemon uses to serve a repeated job
// submission instantly instead of occupying a queue slot.
func (c *Cache[V]) Lookup(key string) (V, Outcome, bool) {
	if v, ok := c.lookup(key); ok {
		return v, Hit, true
	}
	if v, enc, ok := c.diskLoad(key); ok {
		c.insert(key, v, enc, false)
		c.mu.Lock()
		c.diskHits.Inc()
		c.mu.Unlock()
		return v, DiskHit, true
	}
	var zero V
	return zero, Miss, false
}

// Get returns the value for key from the in-process tier only, without
// counting a lookup (a peek for tests and diagnostics).
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Counters reads the instruments.
func (c *Cache[V]) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits:          c.hits.Value(),
		DiskHits:      c.diskHits.Value(),
		Misses:        c.misses.Value(),
		InflightDedup: c.dedup.Value(),
		Evictions:     c.evict.Value(),
		Corrupt:       c.corrupt.Value(),
		DiskErrors:    c.diskErrs.Value(),
		Bytes:         c.bytes,
		Entries:       c.ll.Len(),
	}
}

// StatsSnapshot freezes the instruments as an internal/stats snapshot
// (counter names memo.hits, memo.misses, memo.inflight_dedup, … and the
// memo.bytes gauge), ready to merge into run reports and metrics dumps.
func (c *Cache[V]) StatsSnapshot() *stats.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.Snapshot()
}

// lookup serves the in-process tier, counting a hit.
func (c *Cache[V]) lookup(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// encode serializes v if an encoder is configured.
func (c *Cache[V]) encode(v V) ([]byte, error) {
	if c.cfg.Encode == nil {
		return nil, nil
	}
	return c.cfg.Encode(v)
}

// insert stores v in the memory tier (evicting LRU entries beyond the
// bound) and, when persist is set, writes the disk entry.
func (c *Cache[V]) insert(key string, v V, enc []byte, persist bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		// Raced insert of the same key: keep the resident value.
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	e := &entry[V]{key: key, val: v, size: int64(len(enc))}
	c.byKey[key] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.cfg.MaxEntries > 0 && c.ll.Len() > c.cfg.MaxEntries {
		back := c.ll.Back()
		old := back.Value.(*entry[V])
		c.ll.Remove(back)
		delete(c.byKey, old.key)
		c.bytes -= old.size
		c.evict.Inc()
	}
	c.bytesG.Set(float64(c.bytes))
	c.mu.Unlock()

	if persist && c.cfg.Dir != "" {
		if err := c.diskStore(key, enc); err != nil {
			c.mu.Lock()
			c.diskErrs.Inc()
			c.mu.Unlock()
		}
	}
}

// Disk-entry framing: magic, payload checksum, payload length, payload.
// Anything that does not parse — short file, wrong magic, bad checksum,
// decoder rejection — is a miss (and the bad file is removed), never an
// error surfaced to the sweep.
const diskMagic = "SAMMEMO1"

func (c *Cache[V]) path(key string) string {
	return filepath.Join(c.cfg.Dir, key+".memo")
}

func frame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(diskMagic)+len(sum)+8+len(payload))
	out = append(out, diskMagic...)
	out = append(out, sum[:]...)
	var ln [8]byte
	binary.BigEndian.PutUint64(ln[:], uint64(len(payload)))
	out = append(out, ln[:]...)
	return append(out, payload...)
}

// unframe validates the on-disk framing and returns the payload.
func unframe(b []byte) ([]byte, bool) {
	head := len(diskMagic) + sha256.Size + 8
	if len(b) < head || string(b[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	var sum [sha256.Size]byte
	copy(sum[:], b[len(diskMagic):])
	ln := binary.BigEndian.Uint64(b[len(diskMagic)+sha256.Size : head])
	payload := b[head:]
	if uint64(len(payload)) != ln || sha256.Sum256(payload) != sum {
		return nil, false
	}
	return payload, true
}

// diskLoad reads and validates a disk entry; any defect counts as corrupt
// and falls back to a miss.
func (c *Cache[V]) diskLoad(key string) (V, []byte, bool) {
	var zero V
	if c.cfg.Dir == "" {
		return zero, nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return zero, nil, false // absent: a plain miss, not corruption
	}
	payload, ok := unframe(b)
	if !ok {
		c.rejectDiskEntry(key)
		return zero, nil, false
	}
	v, err := c.cfg.Decode(payload)
	if err != nil {
		c.rejectDiskEntry(key)
		return zero, nil, false
	}
	return v, payload, true
}

func (c *Cache[V]) rejectDiskEntry(key string) {
	os.Remove(c.path(key))
	c.mu.Lock()
	c.corrupt.Inc()
	c.mu.Unlock()
}

// diskStore writes the entry atomically (temp file + rename) so a
// crashed or concurrent writer can never leave a half-entry behind.
func (c *Cache[V]) diskStore(key string, payload []byte) error {
	if err := os.MkdirAll(c.cfg.Dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.cfg.Dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(frame(payload)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
