package memo

import (
	"strings"
	"testing"
)

// TestFingerprintDistinguishesFields: every single-field mutation — value,
// name, or type tag — changes the key.
func TestFingerprintDistinguishesFields(t *testing.T) {
	base := func() *Fingerprint { return NewFingerprint("t") }
	keys := map[string]string{}
	add := func(label string, f *Fingerprint) {
		k := f.Sum()
		if len(k) != 64 {
			t.Fatalf("%s: key length %d, want 64 hex digits", label, len(k))
		}
		for prev, pk := range keys {
			if pk == k {
				t.Fatalf("collision between %s and %s", label, prev)
			}
		}
		keys[label] = k
	}

	add("empty", base())
	add("str", base().Str("a", "x"))
	add("str-value", base().Str("a", "y"))
	add("str-name", base().Str("b", "x"))
	add("u64", base().U64("a", 1))
	add("u64-value", base().U64("a", 2))
	add("i64-same-bits", base().I64("a", 1)) // tag differs from u64
	add("f64", base().F64("a", 1))
	add("f64-negzero", base().F64("a", 0).F64("b", 1))
	add("bool-true", base().Bool("a", true))
	add("bool-false", base().Bool("a", false))
	add("bytes", base().Bytes("a", []byte("x")))
	add("order", base().Str("a", "x").Str("b", "y"))
	add("order-swapped", base().Str("b", "y").Str("a", "x"))
	// Concatenation ambiguity: name/value boundaries must be length-framed.
	add("split-ab-c", base().Str("ab", "c"))
	add("split-a-bc", base().Str("a", "bc"))
	add("split-empty-abc", base().Str("", "abc"))
	add("salt", NewFingerprint("t2"))
}

// TestFingerprintDeterministic: the same construction always yields the
// same key (the property cross-process disk hits depend on).
func TestFingerprintDeterministic(t *testing.T) {
	mk := func() string {
		return NewFingerprint("s").Str("q", "SELECT 1").U64("seed", 42).F64("rate", 0.25).Sum()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same fields, different keys: %s vs %s", a, b)
	}
}

// TestFingerprintSchemaSalt: the key visibly depends on SchemaVersion's
// value (bumping the constant invalidates every entry).
func TestFingerprintSchemaSalt(t *testing.T) {
	if !strings.HasPrefix(SchemaVersion, "sam-memo-v") {
		t.Fatalf("SchemaVersion %q does not follow the sam-memo-v<N> convention", SchemaVersion)
	}
}

// FuzzFingerprintFields: for arbitrary two-field inputs, keys collide
// exactly when the field sequences are identical.
func FuzzFingerprintFields(f *testing.F) {
	f.Add("a", "x", "b", uint64(1), "a", "x", "b", uint64(1))
	f.Add("a", "x", "b", uint64(1), "a", "x", "b", uint64(2))
	f.Add("ab", "c", "n", uint64(0), "a", "bc", "n", uint64(0))
	f.Add("", "", "", uint64(0), "", "", "", uint64(0))
	f.Fuzz(func(t *testing.T, n1, v1, n2 string, u2 uint64, m1, w1, m2 string, x2 uint64) {
		k1 := NewFingerprint("fz").Str(n1, v1).U64(n2, u2).Sum()
		k2 := NewFingerprint("fz").Str(m1, w1).U64(m2, x2).Sum()
		same := n1 == m1 && v1 == w1 && n2 == m2 && u2 == x2
		if same && k1 != k2 {
			t.Fatalf("identical fields, different keys")
		}
		if !same && k1 == k2 {
			t.Fatalf("different fields (%q=%q,%q=%d vs %q=%q,%q=%d), same key",
				n1, v1, n2, u2, m1, w1, m2, x2)
		}
	})
}
