package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// SchemaVersion is the cache-invalidation salt folded into every
// fingerprint. It must be bumped whenever the *meaning* of a cached run
// changes — any simulator-semantics change that makes an old RunStats
// wrong for the same inputs: timing-model edits, scheduler policy
// changes, power-model constants, workload generation, ECC adjudication.
// Structural changes that provably preserve behaviour (the frozen-
// scheduler 1000-mix differential and the sharded-engine differential
// are the tripwires that prove it) do not require a bump.
//
// TestMemoSaltTripwire in internal/core pins (SchemaVersion, probe-run
// digest) as a golden pair: changing simulator output without bumping
// this constant fails CI.
const SchemaVersion = "sam-memo-v1"

// Fingerprint accumulates a canonical, collision-resistant encoding of
// the fields that determine a run's outcome and reduces them to a cache
// key. Every field is written as (type tag, name length, name, value)
// with fixed-width big-endian numbers, so two different field sequences
// can never serialize to the same byte stream — a single-field mutation
// always changes the key, and there is no concatenation ambiguity
// ("ab"+"c" vs "a"+"bc").
//
// A Fingerprint is single-use: build, then Sum.
type Fingerprint struct {
	h hash.Hash
}

// Field type tags. Distinct per Go type so that, e.g., U64(1) and I64(1)
// never collide.
const (
	tagString byte = iota + 1
	tagU64
	tagI64
	tagF64
	tagBool
	tagBytes
)

// NewFingerprint starts a fingerprint salted with SchemaVersion plus the
// caller's salt (typically a shape discriminator like "bench" / "sweep").
func NewFingerprint(salt string) *Fingerprint {
	f := &Fingerprint{h: sha256.New()}
	f.writeHeader(tagString, "schema")
	f.writeStr(SchemaVersion)
	f.writeHeader(tagString, "salt")
	f.writeStr(salt)
	return f
}

func (f *Fingerprint) writeHeader(tag byte, name string) {
	var b [5]byte
	b[0] = tag
	binary.BigEndian.PutUint32(b[1:], uint32(len(name)))
	f.h.Write(b[:])
	f.h.Write([]byte(name))
}

func (f *Fingerprint) writeStr(v string) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(v)))
	f.h.Write(b[:])
	f.h.Write([]byte(v))
}

func (f *Fingerprint) writeU64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	f.h.Write(b[:])
}

// Str adds a named string field.
func (f *Fingerprint) Str(name, v string) *Fingerprint {
	f.writeHeader(tagString, name)
	f.writeStr(v)
	return f
}

// U64 adds a named unsigned field.
func (f *Fingerprint) U64(name string, v uint64) *Fingerprint {
	f.writeHeader(tagU64, name)
	f.writeU64(v)
	return f
}

// I64 adds a named signed field.
func (f *Fingerprint) I64(name string, v int64) *Fingerprint {
	f.writeHeader(tagI64, name)
	f.writeU64(uint64(v))
	return f
}

// F64 adds a named float field by its IEEE-754 bit pattern (exact — no
// formatting round-trip).
func (f *Fingerprint) F64(name string, v float64) *Fingerprint {
	f.writeHeader(tagF64, name)
	f.writeU64(math.Float64bits(v))
	return f
}

// Bool adds a named boolean field.
func (f *Fingerprint) Bool(name string, v bool) *Fingerprint {
	f.writeHeader(tagBool, name)
	if v {
		f.h.Write([]byte{1})
	} else {
		f.h.Write([]byte{0})
	}
	return f
}

// Bytes adds a named opaque byte field.
func (f *Fingerprint) Bytes(name string, v []byte) *Fingerprint {
	f.writeHeader(tagBytes, name)
	f.writeStr(string(v))
	return f
}

// Sum finalizes the fingerprint as a 64-hex-digit key, safe for use as a
// map key and a filename.
func (f *Fingerprint) Sum() string {
	return hex.EncodeToString(f.h.Sum(nil))
}
