package memo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// intCodec is the test value codec: decimal strings.
func intCodec() (func(int) ([]byte, error), func([]byte) (int, error)) {
	enc := func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil }
	dec := func(b []byte) (int, error) { return strconv.Atoi(string(b)) }
	return enc, dec
}

func TestCacheMissThenHit(t *testing.T) {
	c := New(Config[int]{})
	calls := 0
	compute := func() (int, error) { calls++; return 7, nil }

	v, out, err := c.Do("k", compute)
	if err != nil || v != 7 || out != Miss {
		t.Fatalf("first Do = (%d, %v, %v), want (7, miss, nil)", v, out, err)
	}
	v, out, err = c.Do("k", compute)
	if err != nil || v != 7 || out != Hit {
		t.Fatalf("second Do = (%d, %v, %v), want (7, hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	ct := c.Counters()
	if ct.Hits != 1 || ct.Misses != 1 || ct.Entries != 1 || ct.Lookups() != 2 {
		t.Fatalf("counters %+v", ct)
	}
	if hr := ct.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := New(Config[int]{})
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, out, err := c.Do("k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 || out != Miss {
		t.Fatalf("retry Do = (%d, %v, %v), want (9, miss, nil)", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	enc, dec := intCodec()
	c := New(Config[int]{MaxEntries: 2, Encode: enc, Decode: dec})
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(key, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 survived past the 2-entry bound")
	}
	for _, key := range []string{"k1", "k2"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s evicted, want resident", key)
		}
	}
	ct := c.Counters()
	if ct.Evictions != 1 || ct.Entries != 2 {
		t.Fatalf("counters %+v, want 1 eviction / 2 entries", ct)
	}
	// k1 and k2 are one decimal digit each.
	if ct.Bytes != 2 {
		t.Fatalf("bytes %d, want 2", ct.Bytes)
	}

	// Touching k1 makes k2 the LRU victim for the next insert.
	if _, _, err := c.Do("k1", func() (int, error) { t.Fatal("k1 recomputed"); return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do("k3", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived; LRU order ignores recency")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently used k1 evicted")
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	enc, dec := intCodec()

	cold := New(Config[int]{Dir: dir, Encode: enc, Decode: dec})
	if _, out, err := cold.Do("k", func() (int, error) { return 41, nil }); err != nil || out != Miss {
		t.Fatalf("cold Do = (%v, %v)", out, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.memo")); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	// A fresh cache over the same dir serves from disk without computing.
	warm := New(Config[int]{Dir: dir, Encode: enc, Decode: dec})
	v, out, err := warm.Do("k", func() (int, error) { t.Fatal("computed despite disk entry"); return 0, nil })
	if err != nil || v != 41 || out != DiskHit {
		t.Fatalf("warm Do = (%d, %v, %v), want (41, disk-hit, nil)", v, out, err)
	}
	// Promoted: the next lookup is a memory hit.
	if _, out, _ := warm.Do("k", nil); out != Hit {
		t.Fatalf("post-promotion outcome %v, want hit", out)
	}
	ct := warm.Counters()
	if ct.DiskHits != 1 || ct.Hits != 1 || ct.Misses != 0 {
		t.Fatalf("counters %+v", ct)
	}
}

func TestCacheDiskCorruptionFallsBackToMiss(t *testing.T) {
	enc, dec := intCodec()
	mangle := []struct {
		name string
		edit func(path string) error
	}{
		{"truncated", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)-1], 0o644)
		}},
		{"flipped-payload", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			b[len(b)-1] ^= 0xFF
			return os.WriteFile(p, b, 0o644)
		}},
		{"bad-magic", func(p string) error {
			return os.WriteFile(p, []byte("NOTMEMO0garbage"), 0o644)
		}},
		{"empty", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
	}
	for _, m := range mangle {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			cold := New(Config[int]{Dir: dir, Encode: enc, Decode: dec})
			if _, _, err := cold.Do("k", func() (int, error) { return 5, nil }); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "k.memo")
			if err := m.edit(path); err != nil {
				t.Fatal(err)
			}

			warm := New(Config[int]{Dir: dir, Encode: enc, Decode: dec})
			v, out, err := warm.Do("k", func() (int, error) { return 5, nil })
			if err != nil || v != 5 || out != Miss {
				t.Fatalf("Do over corrupt entry = (%d, %v, %v), want recompute miss", v, out, err)
			}
			if warm.Counters().Corrupt != 1 {
				t.Fatalf("corrupt counter %d, want 1", warm.Counters().Corrupt)
			}
			// The recompute rewrote a valid entry over the corrupt one.
			next := New(Config[int]{Dir: dir, Encode: enc, Decode: dec})
			if _, out, _ := next.Do("k", func() (int, error) { return 5, nil }); out != DiskHit {
				t.Fatalf("entry not repaired: outcome %v", out)
			}
		})
	}
}

// TestCacheDecodeRejectionIsCorruption: a framed-but-undecodable payload
// (e.g. written by a different value schema) counts as corrupt, not error.
func TestCacheDecodeRejectionIsCorruption(t *testing.T) {
	dir := t.TempDir()
	enc, dec := intCodec()
	path := filepath.Join(dir, "k.memo")
	if err := os.WriteFile(path, frame([]byte("not-a-number")), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config[int]{Dir: dir, Encode: enc, Decode: dec})
	v, out, err := c.Do("k", func() (int, error) { return 3, nil })
	if err != nil || v != 3 || out != Miss {
		t.Fatalf("Do = (%d, %v, %v), want recompute miss", v, out, err)
	}
	if c.Counters().Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", c.Counters().Corrupt)
	}
}

func TestCacheInflightDedup(t *testing.T) {
	c := New(Config[int]{})
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	executions := 0

	const waiters = 8
	results := make(chan Outcome, waiters+1)
	var wg sync.WaitGroup
	wg.Add(waiters + 1)
	for i := 0; i <= waiters; i++ {
		go func() {
			defer wg.Done()
			v, out, err := c.Do("k", func() (int, error) {
				executions++ // leader-only; flight serializes the fn
				once.Do(func() { close(entered) })
				<-gate
				return 13, nil
			})
			if err != nil || v != 13 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
			results <- out
		}()
	}
	<-entered
	close(gate)
	wg.Wait()
	close(results)

	var misses, dedups, hits int
	for out := range results {
		switch out {
		case Miss:
			misses++
		case Dedup:
			dedups++
		case Hit:
			hits++
		}
	}
	if executions != 1 {
		t.Fatalf("compute executed %d times, want 1", executions)
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (the leader)", misses)
	}
	if dedups+hits != waiters {
		t.Fatalf("misses=%d dedups=%d hits=%d across %d callers", misses, dedups, hits, waiters+1)
	}
	ct := c.Counters()
	if ct.Misses != 1 || ct.InflightDedup != uint64(dedups) || ct.Hits != uint64(hits) {
		t.Fatalf("counters %+v vs observed misses=1 dedups=%d hits=%d", ct, dedups, hits)
	}
}

func TestCachePanicsOnDirWithoutCodec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with Dir but no codec did not panic")
		}
	}()
	New(Config[int]{Dir: t.TempDir()})
}

func TestCacheStatsSnapshot(t *testing.T) {
	enc, dec := intCodec()
	c := New(Config[int]{Encode: enc, Decode: dec})
	if _, _, err := c.Do("k", func() (int, error) { return 123, nil }); err != nil {
		t.Fatal(err)
	}
	c.Do("k", nil)
	snap := c.StatsSnapshot()
	want := map[string]uint64{
		"memo.hits":           1,
		"memo.misses":         1,
		"memo.inflight_dedup": 0,
		"memo.evictions":      0,
	}
	for name, v := range want {
		if snap.Counters[name] != v {
			t.Fatalf("snapshot %s = %d, want %d (snapshot %+v)", name, snap.Counters[name], v, snap)
		}
	}
	g, ok := snap.Gauges["memo.bytes"]
	if !ok {
		t.Fatal("snapshot missing memo.bytes gauge")
	}
	if g.Cur != 3 { // "123"
		t.Fatalf("memo.bytes = %v, want 3", g.Cur)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), make([]byte, 4096)} {
		got, ok := unframe(frame(payload))
		if !ok || string(got) != string(payload) {
			t.Fatalf("frame round-trip failed for %d-byte payload", len(payload))
		}
	}
	if _, ok := unframe(nil); ok {
		t.Fatal("unframe accepted empty input")
	}
}
