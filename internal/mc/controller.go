package mc

import (
	"fmt"

	"sam/internal/dram"
	"sam/internal/stats"
)

// Request is one memory transaction the controller schedules: a cacheline
// (regular) or strided-sector-group (stride mode) read or write.
type Request struct {
	ID      uint64
	Addr    uint64
	IsWrite bool
	// Stride marks a SAM strided access; Lane selects the Sx4_n mode.
	Stride bool
	Lane   int
	// Gang marks a dual-rank fine-granularity burst (Section 4.4).
	Gang bool
	// Arrival is when the request reaches the controller (bus cycles).
	Arrival dram.Cycle
}

// Completion reports a serviced request.
type Completion struct {
	Req       Request
	IssueAt   dram.Cycle // column command issue (final attempt when retried)
	DataStart dram.Cycle
	DataEnd   dram.Cycle
	RowHit    bool
	RowEmpty  bool // bank was closed (neither hit nor conflict)
	// Retries counts re-issued column reads after detected-uncorrectable
	// ECC verdicts; Poisoned marks a read that stayed uncorrectable through
	// every retry — its data must not be consumed silently.
	Retries  uint8
	Poisoned bool
}

// Stats aggregates controller-level behaviour.
type Stats struct {
	Reads, Writes        uint64
	RowHits, RowMisses   uint64
	RowEmpties           uint64
	Refreshes            uint64
	WriteDrains          uint64
	TotalReadLatency     uint64 // arrival -> data end, reads only
	MaxQueueOccupancy    int
	IssuedCommands       uint64
	StrideAccesses       uint64
	ModeSwitches         uint64
	StarvationBreaks     uint64
	Retries              uint64 // column reads re-issued after DUE verdicts
	Poisoned             uint64 // reads surfaced as poisoned after retry exhaustion
	BusCycleOfLastAccess dram.Cycle
}

// Sub returns the per-run delta cur-minus-base of the monotonic tallies.
// MaxQueueOccupancy and BusCycleOfLastAccess are level values, not
// counters, and carry over from s unchanged.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Reads:                s.Reads - base.Reads,
		Writes:               s.Writes - base.Writes,
		RowHits:              s.RowHits - base.RowHits,
		RowMisses:            s.RowMisses - base.RowMisses,
		RowEmpties:           s.RowEmpties - base.RowEmpties,
		Refreshes:            s.Refreshes - base.Refreshes,
		WriteDrains:          s.WriteDrains - base.WriteDrains,
		TotalReadLatency:     s.TotalReadLatency - base.TotalReadLatency,
		MaxQueueOccupancy:    s.MaxQueueOccupancy,
		IssuedCommands:       s.IssuedCommands - base.IssuedCommands,
		StrideAccesses:       s.StrideAccesses - base.StrideAccesses,
		ModeSwitches:         s.ModeSwitches - base.ModeSwitches,
		StarvationBreaks:     s.StarvationBreaks - base.StarvationBreaks,
		Retries:              s.Retries - base.Retries,
		Poisoned:             s.Poisoned - base.Poisoned,
		BusCycleOfLastAccess: s.BusCycleOfLastAccess,
	}
}

// Add accumulates o into s (cross-channel aggregation): tallies sum, level
// values take the maximum.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowEmpties += o.RowEmpties
	s.Refreshes += o.Refreshes
	s.WriteDrains += o.WriteDrains
	s.TotalReadLatency += o.TotalReadLatency
	s.IssuedCommands += o.IssuedCommands
	s.StrideAccesses += o.StrideAccesses
	s.ModeSwitches += o.ModeSwitches
	s.StarvationBreaks += o.StarvationBreaks
	s.Retries += o.Retries
	s.Poisoned += o.Poisoned
	if o.MaxQueueOccupancy > s.MaxQueueOccupancy {
		s.MaxQueueOccupancy = o.MaxQueueOccupancy
	}
	if o.BusCycleOfLastAccess > s.BusCycleOfLastAccess {
		s.BusCycleOfLastAccess = o.BusCycleOfLastAccess
	}
}

// Tracer observes the controller's request lifecycle: enqueue, the moment
// FR-FCFS schedules a request, and its completion. It is the request-level
// event-tracing hook (implemented by internal/etrace); the Trace field is
// consulted only when non-nil, so with tracing disabled the service loop
// stays on the decode-once, allocation-free fast path. Per-command events
// are emitted by the device (dram.CmdTracer), not here.
type Tracer interface {
	// ReqEnqueued fires after the request is queued. bank is the flat
	// Device.BankIndex of its decoded address; queueDepth counts both
	// queues after the insert.
	ReqEnqueued(at dram.Cycle, r Request, bank int32, queueDepth int)
	// ReqScheduled fires when the scheduler dequeues the request, after
	// the controller clock has caught up to its arrival.
	ReqScheduled(at dram.Cycle, r Request, bank int32)
	// ReqCompleted fires once the request's column access is resolved.
	ReqCompleted(comp Completion, bank int32)
	// ReqFaulted fires when a read burst comes back detected-uncorrectable:
	// once for the initial failed attempt (attempt 0) and once per retry
	// that fails again; poisoned marks the final give-up after the retry
	// budget is exhausted.
	ReqFaulted(at dram.Cycle, r Request, bank int32, attempt int, poisoned bool)
}

// Controller schedules requests onto one dram.Device with FR-FCFS and an
// open-page policy. It is single-channel, matching the paper's setup; the
// simulator instantiates one per channel.
type Controller struct {
	dev  *dram.Device
	amap *AddrMap
	cfg  Config

	// readQ/writeQ hold value-typed entries with their addresses decoded
	// once at Enqueue and indexed per bank (see queue.go) — the service
	// loop is allocation- and decode-free.
	readQ  reqQueue
	writeQ reqQueue
	// seq tags entries with enqueue order so selection scans can break
	// arrival-time ties exactly as queue position used to.
	seq uint64
	// draining latches the write-drain state (hysteresis between high and
	// low watermarks).
	draining bool

	now   dram.Cycle
	Stats Stats

	// Audit, when set, receives every issued command (tests use this to
	// verify protocol legality end to end).
	Audit *dram.Auditor
	// Metrics, when set, observes per-request-class latency and queue
	// occupancy distributions (see NewMetrics).
	Metrics *Metrics
	// Trace, when set, receives request-lifecycle events (see Tracer).
	Trace Tracer
}

// LatencyBounds are the default request-latency bucket upper bounds in bus
// cycles: the low buckets resolve row-hit service, the tail captures
// refresh and drain stalls.
func LatencyBounds() []uint64 {
	return []uint64{25, 50, 75, 100, 150, 250, 500, 1000, 2500, 5000, 10000}
}

// OccupancyBounds are the default queue-occupancy bucket upper bounds,
// sized to the Table 2 queue capacities.
func OccupancyBounds() []uint64 {
	return []uint64{1, 2, 4, 8, 16, 32, 64}
}

// Metrics bundles the controller's distribution instruments. All are
// created in the caller's stats.Registry under stable "mc."-prefixed
// names, so per-run registries snapshot and merge deterministically:
//
//	mc.lat.read.normal / mc.lat.read.stride   arrival -> data-end latency
//	mc.lat.write.normal / mc.lat.write.stride (bus cycles, per class)
//	mc.queue.read / mc.queue.write            queue occupancy at enqueue
//
// One Metrics may be shared by several controllers (the simulator attaches
// the same instance to every channel of a single-threaded run).
type Metrics struct {
	LatReadNormal  *stats.Histogram
	LatReadStride  *stats.Histogram
	LatWriteNormal *stats.Histogram
	LatWriteStride *stats.Histogram
	QueueRead      *stats.Histogram
	QueueWrite     *stats.Histogram
}

// NewMetrics registers the controller instruments in reg.
func NewMetrics(reg *stats.Registry) *Metrics {
	lat, occ := LatencyBounds(), OccupancyBounds()
	return &Metrics{
		LatReadNormal:  reg.Histogram("mc.lat.read.normal", lat...),
		LatReadStride:  reg.Histogram("mc.lat.read.stride", lat...),
		LatWriteNormal: reg.Histogram("mc.lat.write.normal", lat...),
		LatWriteStride: reg.Histogram("mc.lat.write.stride", lat...),
		QueueRead:      reg.Histogram("mc.queue.read", occ...),
		QueueWrite:     reg.Histogram("mc.queue.write", occ...),
	}
}

// latency picks the instrument for a request's class.
func (m *Metrics) latency(isWrite, stride bool) *stats.Histogram {
	switch {
	case isWrite && stride:
		return m.LatWriteStride
	case isWrite:
		return m.LatWriteNormal
	case stride:
		return m.LatReadStride
	default:
		return m.LatReadNormal
	}
}

// Config tunes the controller.
type Config struct {
	WriteQueueCap  int // Table 2: 32
	WriteDrainHigh int // start draining at this occupancy
	WriteDrainLow  int // stop draining at this occupancy
	// ReadQueueCap bounds the read queue; enqueueing beyond it reports
	// back-pressure to the caller.
	ReadQueueCap int
	// MaxRetries bounds how many times a read whose burst decoded as
	// uncorrectable is re-issued before the completion is poisoned. 0 means
	// poison immediately on the first DUE.
	MaxRetries int
	// Interleave selects the physical address mapping (ablation knob;
	// defaults to the paper's columns-low order).
	Interleave Interleave
}

// DefaultConfig mirrors Table 2.
func DefaultConfig() Config {
	return Config{WriteQueueCap: 32, WriteDrainHigh: 24, WriteDrainLow: 8, ReadQueueCap: 64, MaxRetries: 3}
}

// PickKind is the controller's read-vs-write queue selection as a pure
// function of the queue occupancies and the drain latch: reads have
// priority, writes drain in batches between the hysteresis watermarks or
// opportunistically when no reads are pending. It returns the chosen kind
// (isWrite), whether the choice was a drain pick (counted in
// Stats.WriteDrains), the updated latch, and ok=false when both queues are
// empty.
//
// pickQueue delegates here, and the sharded run engine replays the same
// function over mirrored occupancy counts to precompute each channel's
// service schedule — keeping the two in one body is what makes the mirror
// drift-proof by construction.
func (cfg Config) PickKind(readN, writeN int, draining bool) (isWrite, drainPick, nowDraining, ok bool) {
	if writeN >= cfg.WriteDrainHigh {
		draining = true
	}
	if writeN <= cfg.WriteDrainLow {
		draining = false
	}
	switch {
	case draining && writeN > 0:
		return true, true, draining, true
	case readN > 0:
		return false, false, draining, true
	case writeN > 0:
		return true, false, draining, true
	default:
		return false, false, draining, false
	}
}

// NewController builds a controller over a device.
func NewController(dev *dram.Device, cfg Config) *Controller {
	if cfg.WriteQueueCap <= 0 || cfg.WriteDrainHigh > cfg.WriteQueueCap || cfg.WriteDrainLow >= cfg.WriteDrainHigh || cfg.ReadQueueCap <= 0 ||
		cfg.MaxRetries < 0 || cfg.MaxRetries > 255 {
		panic(fmt.Sprintf("mc: invalid config %+v", cfg))
	}
	banks := dev.NumBanks()
	return &Controller{
		dev:    dev,
		amap:   NewAddrMapInterleave(dev.Config().Geometry, cfg.Interleave),
		cfg:    cfg,
		readQ:  newReqQueue(cfg.ReadQueueCap, banks),
		writeQ: newReqQueue(cfg.WriteQueueCap, banks),
	}
}

// SetMaxRetries adjusts the bounded read-retry budget after construction
// (the fault campaign varies it per run without rebuilding controllers).
func (c *Controller) SetMaxRetries(n int) {
	if n < 0 || n > 255 {
		panic(fmt.Sprintf("mc: invalid retry budget %d", n))
	}
	c.cfg.MaxRetries = n
}

// AddrMap exposes the controller's address mapping.
func (c *Controller) AddrMap() *AddrMap { return c.amap }

// Config returns the controller's current configuration (including any
// SetMaxRetries adjustment). The sharded engine reads it to seed each
// channel's occupancy mirror with the exact watermarks the controller
// schedules by.
func (c *Controller) Config() Config { return c.cfg }

// Pending returns the number of queued requests.
func (c *Controller) Pending() int { return c.readQ.n + c.writeQ.n }

// CanAccept reports whether a request of the given kind can be enqueued.
func (c *Controller) CanAccept(isWrite bool) bool {
	if isWrite {
		return c.writeQ.n < c.cfg.WriteQueueCap
	}
	return c.readQ.n < c.cfg.ReadQueueCap
}

// Enqueue adds a request, decoding its address exactly once. Callers must
// respect CanAccept.
func (c *Controller) Enqueue(r Request) {
	if !c.CanAccept(r.IsWrite) {
		panic("mc: enqueue past queue capacity")
	}
	co := c.amap.Decode(r.Addr)
	bank := int32(c.dev.BankIndex(co.Rank, co.Group, co.Bank))
	if r.IsWrite {
		c.writeQ.push(r, co, bank, c.seq)
	} else {
		c.readQ.push(r, co, bank, c.seq)
	}
	c.seq++
	if occ := c.Pending(); occ > c.Stats.MaxQueueOccupancy {
		c.Stats.MaxQueueOccupancy = occ
	}
	if c.Metrics != nil {
		if r.IsWrite {
			c.Metrics.QueueWrite.Observe(uint64(c.writeQ.n))
		} else {
			c.Metrics.QueueRead.Observe(uint64(c.readQ.n))
		}
	}
	if c.Trace != nil {
		c.Trace.ReqEnqueued(r.Arrival, r, bank, c.Pending())
	}
}

// Now returns the controller's current time.
func (c *Controller) Now() dram.Cycle { return c.now }

// ServiceOne advances the controller until it completes one request and
// returns its completion. It returns ok=false when no requests are queued.
func (c *Controller) ServiceOne() (Completion, bool) {
	q := c.pickQueue()
	if q == nil {
		return Completion{}, false
	}
	slot := c.frFCFS(q)
	// Unlink first, then service through a pointer: remove only relinks
	// (the slot's payload is untouched until the next push, and no push
	// can happen mid-service), which saves copying the ~100-byte entry on
	// every service.
	q.remove(slot)
	e := &q.slots[slot]

	if c.now < e.req.Arrival {
		c.now = e.req.Arrival
	}
	if c.Trace != nil {
		c.Trace.ReqScheduled(c.now, e.req, e.bank)
	}
	c.serviceRefresh()
	c.prepareAhead(q, e)
	comp := c.access(e)
	if e.req.IsWrite {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
		c.Stats.TotalReadLatency += uint64(comp.DataEnd - e.req.Arrival)
	}
	if c.Metrics != nil {
		c.Metrics.latency(e.req.IsWrite, e.req.Stride).Observe(uint64(comp.DataEnd - e.req.Arrival))
	}
	if e.req.Stride {
		c.Stats.StrideAccesses++
	}
	c.Stats.BusCycleOfLastAccess = comp.DataEnd
	if c.Trace != nil {
		c.Trace.ReqCompleted(comp, e.bank)
	}
	return comp, true
}

// pickQueue decides between the read queue and the write queue via
// Config.PickKind, updating the drain latch and the drain tally.
func (c *Controller) pickQueue() *reqQueue {
	isWrite, drainPick, draining, ok := c.cfg.PickKind(c.readQ.n, c.writeQ.n, c.draining)
	c.draining = draining
	if !ok {
		return nil
	}
	if drainPick {
		c.Stats.WriteDrains++
	}
	if isWrite {
		return &c.writeQ
	}
	return &c.readQ
}

// starvationLimit caps FR-FCFS reordering: once the oldest *read* has
// waited this many cycles, it is serviced regardless of row-hit status
// (invariant 8 — no demand request waits unboundedly behind a hit stream).
// Writes are posted and latency-insensitive, so the drain keeps its
// row-batching freedom. The bound is generous: it exists to prevent
// unbounded starvation, not to second-guess FR-FCFS.
const starvationLimit = 16384

// frFCFS returns the slot of the best candidate: the oldest arrived
// row-buffer hit, else the oldest request overall (which, when nothing has
// arrived yet, is the earliest-arriving one). The hit scan consults the
// per-bank index: one open-row lookup per occupied bank, then only that
// bank's pending entries — never a re-decode. Ties on arrival time break
// by enqueue order (seq), matching the old in-queue-order slice scan.
func (c *Controller) frFCFS(q *reqQueue) int32 {
	// Oldest overall, in enqueue order with a strict < so the earliest
	// enqueued wins among equal arrivals. This doubles as pass 2. While
	// the queue's pushes have stayed arrival-sorted (the engine's clock is
	// monotone, so in practice always), the head is that pick by
	// construction and the scan is skipped.
	oldest := q.head
	if !q.sorted {
		for i := q.slots[oldest].next; i != nilSlot; i = q.slots[i].next {
			if q.slots[i].req.Arrival < q.slots[oldest].req.Arrival {
				oldest = i
			}
		}
	}
	// Starvation guard: an over-aged oldest read preempts the hit scan.
	if o := &q.slots[oldest]; !o.req.IsWrite && o.req.Arrival <= c.now-starvationLimit {
		c.Stats.StarvationBreaks++
		return oldest
	}
	// Pass 1: arrived row hits, oldest first, via the occupied-bank index.
	// The pick is the minimum of a strict (Arrival, seq) total order over
	// the hit candidates, so the walk order cannot change it. While the
	// queue is arrival-sorted each bank list is too (it is a subsequence
	// of the pushes), so the first arrived row match is that bank's
	// minimum and the first not-yet-arrived entry ends the bank's
	// candidates — both exits cut the scan short.
	best := nilSlot
	for _, bank := range q.occBanks {
		h := q.bankHead[bank]
		row, open := c.dev.OpenRowAt(int(bank))
		if !open {
			continue
		}
		for i := h; i != nilSlot; i = q.slots[i].bankNext {
			e := &q.slots[i]
			if e.req.Arrival > c.now {
				if q.sorted {
					break
				}
				continue
			}
			if e.co.Row != row {
				continue
			}
			if best == nilSlot {
				best = i
			} else if b := &q.slots[best]; e.req.Arrival < b.req.Arrival ||
				(e.req.Arrival == b.req.Arrival && e.seq < b.seq) {
				best = i
			}
			if q.sorted {
				break
			}
		}
	}
	if best != nilSlot {
		return best
	}
	return oldest
}

// prepareLookahead bounds how many future requests get their banks opened
// early while the current request's column access is still pending — the
// bank-preparation pipelining every real controller performs.
const prepareLookahead = 8

// prepareAhead issues PRE/ACT for upcoming queued requests whose banks are
// not ready, so their row activations overlap the current request's column
// access instead of serializing behind it. A bank is only prepared when no
// other arrived request still wants its currently open row. The scan walks
// the queue in enqueue order over pre-decoded entries; current has already
// been dequeued.
func (c *Controller) prepareAhead(q *reqQueue, current *entry) {
	prepared := 0
	for i := q.head; i != nilSlot; i = q.slots[i].next {
		if prepared >= prepareLookahead {
			return
		}
		e := &q.slots[i]
		if e.req.Arrival > c.now {
			continue
		}
		if e.bank == current.bank {
			continue // never disturb the bank the current request needs
		}
		row, open := c.dev.OpenRowAt(int(e.bank))
		if open && row == e.co.Row {
			continue // already a row hit
		}
		if open {
			if c.anyArrivedWantsRow(e.bank, row, q, i) {
				continue // precharging would kill a pending row hit
			}
			c.issue(dram.Command{Kind: dram.CmdPRE, Rank: e.co.Rank, Group: e.co.Group, Bank: e.co.Bank})
		}
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: e.co.Rank, Group: e.co.Group, Bank: e.co.Bank, Row: e.co.Row, GangRanks: e.req.Gang})
		prepared++
	}
}

// anyArrivedWantsRow reports whether any arrived queued request other than
// the skip entry targets the given open row of the bank. Only the two
// per-bank pending lists for that bank are consulted — O(candidates), not
// a rescan of both queues.
func (c *Controller) anyArrivedWantsRow(bank int32, row int, skipQ *reqQueue, skip int32) bool {
	for _, q := range [2]*reqQueue{&c.readQ, &c.writeQ} {
		for i := q.bankHead[bank]; i != nilSlot; i = q.slots[i].bankNext {
			if q == skipQ && i == skip {
				continue
			}
			e := &q.slots[i]
			if e.req.Arrival > c.now {
				if q.sorted {
					// Bank lists are arrival-sorted while the queue is:
					// nothing later in the list has arrived either.
					break
				}
				continue
			}
			if e.co.Row == row {
				return true
			}
		}
	}
	return false
}

// serviceRefresh issues REF commands for any rank whose deadline passed.
func (c *Controller) serviceRefresh() {
	for r := 0; r < c.dev.Config().Geometry.Ranks; r++ {
		for c.dev.RefreshDue(r) <= c.now {
			c.issue(dram.Command{Kind: dram.CmdREF, Rank: r})
			c.Stats.Refreshes++
		}
	}
}

// issue sends one command to the device at its earliest legal time and
// returns that time. The controller's `now` ratchets per serviced request,
// so bank-local command order is always preserved; prepared-ahead ACTs may
// land at later times than a subsequently issued column command to another
// bank, exactly as on a real C/A bus.
func (c *Controller) issue(cmd dram.Command) dram.Cycle {
	at := c.dev.EarliestIssue(cmd, c.now)
	c.dev.Issue(cmd, at)
	if c.Audit != nil {
		c.Audit.Record(cmd, at)
	}
	c.Stats.IssuedCommands++
	return at
}

// access performs the PRE/ACT/column sequence for one request, using the
// coordinates decoded at Enqueue.
func (c *Controller) access(e *entry) Completion {
	r, co := &e.req, e.co
	comp := Completion{Req: *r}

	openRow, open := c.dev.OpenRowAt(int(e.bank))
	switch {
	case open && openRow == co.Row:
		comp.RowHit = true
		c.Stats.RowHits++
	case open:
		c.Stats.RowMisses++
		c.issue(dram.Command{Kind: dram.CmdPRE, Rank: co.Rank, Group: co.Group, Bank: co.Bank})
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
	default:
		comp.RowEmpty = true
		c.Stats.RowEmpties++
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
	}

	kind := dram.CmdRD
	if r.IsWrite {
		kind = dram.CmdWR
	}
	mode := dram.ModeX4
	if r.Stride {
		mode = dram.ModeStride0 + dram.IOMode(r.Lane%4)
	}
	cmd := dram.Command{
		Kind: kind, Rank: co.Rank, Group: co.Group, Bank: co.Bank,
		Row: co.Row, Col: co.Col, Mode: mode, GangRanks: r.Gang,
	}
	at := c.dev.EarliestIssue(cmd, c.now)
	res := c.dev.Issue(cmd, at)
	if c.Audit != nil {
		c.Audit.Record(cmd, at)
	}
	c.Stats.IssuedCommands++
	if res.ModeSwitched {
		c.Stats.ModeSwitches++
	}
	if res.Fault == dram.BurstUncorrectable && !r.IsWrite {
		// Bounded retry: re-issue the column read — a retry is a fresh
		// burst, so transient faults are re-drawn while persistent faults
		// recur — and poison the completion when the budget runs out
		// instead of silently returning garbage. Each retry is a real
		// command on the bus: audited, counted, and spaced by tCCD.
		if c.Trace != nil {
			c.Trace.ReqFaulted(at, *r, e.bank, 0, false)
		}
		attempt := 0
		for attempt < c.cfg.MaxRetries {
			attempt++
			c.Stats.Retries++
			comp.Retries++
			c.now = at
			at = c.dev.EarliestIssue(cmd, c.now)
			res = c.dev.Issue(cmd, at)
			if c.Audit != nil {
				c.Audit.Record(cmd, at)
			}
			c.Stats.IssuedCommands++
			if res.ModeSwitched {
				c.Stats.ModeSwitches++
			}
			if res.Fault != dram.BurstUncorrectable {
				break
			}
			// The final attempt's failure is reported by the poisoned
			// event below, so every failed attempt traces exactly once.
			if attempt < c.cfg.MaxRetries && c.Trace != nil {
				c.Trace.ReqFaulted(at, *r, e.bank, attempt, false)
			}
		}
		if res.Fault == dram.BurstUncorrectable {
			comp.Poisoned = true
			c.Stats.Poisoned++
			if c.Trace != nil {
				c.Trace.ReqFaulted(at, *r, e.bank, attempt, true)
			}
		}
	}
	comp.IssueAt = at
	comp.DataStart = res.DataStart
	comp.DataEnd = res.DataEnd
	c.now = at
	return comp
}

// Drain services every queued request and returns the completions.
func (c *Controller) Drain() []Completion {
	var out []Completion
	for {
		comp, ok := c.ServiceOne()
		if !ok {
			return out
		}
		out = append(out, comp)
	}
}
