package mc

import (
	"fmt"

	"sam/internal/dram"
	"sam/internal/stats"
)

// Request is one memory transaction the controller schedules: a cacheline
// (regular) or strided-sector-group (stride mode) read or write.
type Request struct {
	ID      uint64
	Addr    uint64
	IsWrite bool
	// Stride marks a SAM strided access; Lane selects the Sx4_n mode.
	Stride bool
	Lane   int
	// Gang marks a dual-rank fine-granularity burst (Section 4.4).
	Gang bool
	// Arrival is when the request reaches the controller (bus cycles).
	Arrival dram.Cycle
}

// Completion reports a serviced request.
type Completion struct {
	Req       Request
	IssueAt   dram.Cycle // column command issue
	DataStart dram.Cycle
	DataEnd   dram.Cycle
	RowHit    bool
	RowEmpty  bool // bank was closed (neither hit nor conflict)
}

// Stats aggregates controller-level behaviour.
type Stats struct {
	Reads, Writes        uint64
	RowHits, RowMisses   uint64
	RowEmpties           uint64
	Refreshes            uint64
	WriteDrains          uint64
	TotalReadLatency     uint64 // arrival -> data end, reads only
	MaxQueueOccupancy    int
	IssuedCommands       uint64
	StrideAccesses       uint64
	ModeSwitches         uint64
	StarvationBreaks     uint64
	BusCycleOfLastAccess dram.Cycle
}

// Sub returns the per-run delta cur-minus-base of the monotonic tallies.
// MaxQueueOccupancy and BusCycleOfLastAccess are level values, not
// counters, and carry over from s unchanged.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Reads:                s.Reads - base.Reads,
		Writes:               s.Writes - base.Writes,
		RowHits:              s.RowHits - base.RowHits,
		RowMisses:            s.RowMisses - base.RowMisses,
		RowEmpties:           s.RowEmpties - base.RowEmpties,
		Refreshes:            s.Refreshes - base.Refreshes,
		WriteDrains:          s.WriteDrains - base.WriteDrains,
		TotalReadLatency:     s.TotalReadLatency - base.TotalReadLatency,
		MaxQueueOccupancy:    s.MaxQueueOccupancy,
		IssuedCommands:       s.IssuedCommands - base.IssuedCommands,
		StrideAccesses:       s.StrideAccesses - base.StrideAccesses,
		ModeSwitches:         s.ModeSwitches - base.ModeSwitches,
		StarvationBreaks:     s.StarvationBreaks - base.StarvationBreaks,
		BusCycleOfLastAccess: s.BusCycleOfLastAccess,
	}
}

// Add accumulates o into s (cross-channel aggregation): tallies sum, level
// values take the maximum.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowEmpties += o.RowEmpties
	s.Refreshes += o.Refreshes
	s.WriteDrains += o.WriteDrains
	s.TotalReadLatency += o.TotalReadLatency
	s.IssuedCommands += o.IssuedCommands
	s.StrideAccesses += o.StrideAccesses
	s.ModeSwitches += o.ModeSwitches
	s.StarvationBreaks += o.StarvationBreaks
	if o.MaxQueueOccupancy > s.MaxQueueOccupancy {
		s.MaxQueueOccupancy = o.MaxQueueOccupancy
	}
	if o.BusCycleOfLastAccess > s.BusCycleOfLastAccess {
		s.BusCycleOfLastAccess = o.BusCycleOfLastAccess
	}
}

// Controller schedules requests onto one dram.Device with FR-FCFS and an
// open-page policy. It is single-channel, matching the paper's setup; the
// simulator instantiates one per channel.
type Controller struct {
	dev  *dram.Device
	amap *AddrMap
	cfg  Config

	readQ  []*Request
	writeQ []*Request
	// draining latches the write-drain state (hysteresis between high and
	// low watermarks).
	draining bool

	now   dram.Cycle
	Stats Stats

	// Audit, when set, receives every issued command (tests use this to
	// verify protocol legality end to end).
	Audit *dram.Auditor
	// Metrics, when set, observes per-request-class latency and queue
	// occupancy distributions (see NewMetrics).
	Metrics *Metrics
}

// LatencyBounds are the default request-latency bucket upper bounds in bus
// cycles: the low buckets resolve row-hit service, the tail captures
// refresh and drain stalls.
func LatencyBounds() []uint64 {
	return []uint64{25, 50, 75, 100, 150, 250, 500, 1000, 2500, 5000, 10000}
}

// OccupancyBounds are the default queue-occupancy bucket upper bounds,
// sized to the Table 2 queue capacities.
func OccupancyBounds() []uint64 {
	return []uint64{1, 2, 4, 8, 16, 32, 64}
}

// Metrics bundles the controller's distribution instruments. All are
// created in the caller's stats.Registry under stable "mc."-prefixed
// names, so per-run registries snapshot and merge deterministically:
//
//	mc.lat.read.normal / mc.lat.read.stride   arrival -> data-end latency
//	mc.lat.write.normal / mc.lat.write.stride (bus cycles, per class)
//	mc.queue.read / mc.queue.write            queue occupancy at enqueue
//
// One Metrics may be shared by several controllers (the simulator attaches
// the same instance to every channel of a single-threaded run).
type Metrics struct {
	LatReadNormal  *stats.Histogram
	LatReadStride  *stats.Histogram
	LatWriteNormal *stats.Histogram
	LatWriteStride *stats.Histogram
	QueueRead      *stats.Histogram
	QueueWrite     *stats.Histogram
}

// NewMetrics registers the controller instruments in reg.
func NewMetrics(reg *stats.Registry) *Metrics {
	lat, occ := LatencyBounds(), OccupancyBounds()
	return &Metrics{
		LatReadNormal:  reg.Histogram("mc.lat.read.normal", lat...),
		LatReadStride:  reg.Histogram("mc.lat.read.stride", lat...),
		LatWriteNormal: reg.Histogram("mc.lat.write.normal", lat...),
		LatWriteStride: reg.Histogram("mc.lat.write.stride", lat...),
		QueueRead:      reg.Histogram("mc.queue.read", occ...),
		QueueWrite:     reg.Histogram("mc.queue.write", occ...),
	}
}

// latency picks the instrument for a request's class.
func (m *Metrics) latency(isWrite, stride bool) *stats.Histogram {
	switch {
	case isWrite && stride:
		return m.LatWriteStride
	case isWrite:
		return m.LatWriteNormal
	case stride:
		return m.LatReadStride
	default:
		return m.LatReadNormal
	}
}

// Config tunes the controller.
type Config struct {
	WriteQueueCap  int // Table 2: 32
	WriteDrainHigh int // start draining at this occupancy
	WriteDrainLow  int // stop draining at this occupancy
	// ReadQueueCap bounds the read queue; enqueueing beyond it reports
	// back-pressure to the caller.
	ReadQueueCap int
	// Interleave selects the physical address mapping (ablation knob;
	// defaults to the paper's columns-low order).
	Interleave Interleave
}

// DefaultConfig mirrors Table 2.
func DefaultConfig() Config {
	return Config{WriteQueueCap: 32, WriteDrainHigh: 24, WriteDrainLow: 8, ReadQueueCap: 64}
}

// NewController builds a controller over a device.
func NewController(dev *dram.Device, cfg Config) *Controller {
	if cfg.WriteQueueCap <= 0 || cfg.WriteDrainHigh > cfg.WriteQueueCap || cfg.WriteDrainLow >= cfg.WriteDrainHigh || cfg.ReadQueueCap <= 0 {
		panic(fmt.Sprintf("mc: invalid config %+v", cfg))
	}
	return &Controller{
		dev:  dev,
		amap: NewAddrMapInterleave(dev.Config().Geometry, cfg.Interleave),
		cfg:  cfg,
	}
}

// AddrMap exposes the controller's address mapping.
func (c *Controller) AddrMap() *AddrMap { return c.amap }

// Pending returns the number of queued requests.
func (c *Controller) Pending() int { return len(c.readQ) + len(c.writeQ) }

// CanAccept reports whether a request of the given kind can be enqueued.
func (c *Controller) CanAccept(isWrite bool) bool {
	if isWrite {
		return len(c.writeQ) < c.cfg.WriteQueueCap
	}
	return len(c.readQ) < c.cfg.ReadQueueCap
}

// Enqueue adds a request. Callers must respect CanAccept.
func (c *Controller) Enqueue(r Request) {
	if !c.CanAccept(r.IsWrite) {
		panic("mc: enqueue past queue capacity")
	}
	req := r
	if req.IsWrite {
		c.writeQ = append(c.writeQ, &req)
	} else {
		c.readQ = append(c.readQ, &req)
	}
	if occ := c.Pending(); occ > c.Stats.MaxQueueOccupancy {
		c.Stats.MaxQueueOccupancy = occ
	}
	if c.Metrics != nil {
		if r.IsWrite {
			c.Metrics.QueueWrite.Observe(uint64(len(c.writeQ)))
		} else {
			c.Metrics.QueueRead.Observe(uint64(len(c.readQ)))
		}
	}
}

// Now returns the controller's current time.
func (c *Controller) Now() dram.Cycle { return c.now }

// ServiceOne advances the controller until it completes one request and
// returns its completion. It returns ok=false when no requests are queued.
func (c *Controller) ServiceOne() (Completion, bool) {
	q := c.pickQueue()
	if q == nil {
		return Completion{}, false
	}
	idx := c.frFCFS(*q)
	req := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)

	if c.now < req.Arrival {
		c.now = req.Arrival
	}
	c.serviceRefresh()
	c.prepareAhead(*q, req)
	comp := c.access(req)
	if req.IsWrite {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
		c.Stats.TotalReadLatency += uint64(comp.DataEnd - req.Arrival)
	}
	if c.Metrics != nil {
		c.Metrics.latency(req.IsWrite, req.Stride).Observe(uint64(comp.DataEnd - req.Arrival))
	}
	if req.Stride {
		c.Stats.StrideAccesses++
	}
	c.Stats.BusCycleOfLastAccess = comp.DataEnd
	return comp, true
}

// pickQueue decides between the read queue and the write queue (reads have
// priority; writes drain in batches between watermarks or when no reads
// are pending).
func (c *Controller) pickQueue() *[]*Request {
	if len(c.writeQ) >= c.cfg.WriteDrainHigh {
		c.draining = true
	}
	if len(c.writeQ) <= c.cfg.WriteDrainLow {
		c.draining = false
	}
	switch {
	case c.draining && len(c.writeQ) > 0:
		c.Stats.WriteDrains++
		return &c.writeQ
	case len(c.readQ) > 0:
		return &c.readQ
	case len(c.writeQ) > 0:
		return &c.writeQ
	default:
		return nil
	}
}

// starvationLimit caps FR-FCFS reordering: once the oldest *read* has
// waited this many cycles, it is serviced regardless of row-hit status
// (invariant 8 — no demand request waits unboundedly behind a hit stream).
// Writes are posted and latency-insensitive, so the drain keeps its
// row-batching freedom. The bound is generous: it exists to prevent
// unbounded starvation, not to second-guess FR-FCFS.
const starvationLimit = 16384

// frFCFS returns the index of the best candidate: first ready row-buffer
// hit, else the oldest request. Only requests that have arrived by now are
// preferred; if none have arrived, the earliest-arriving one is chosen.
func (c *Controller) frFCFS(q []*Request) int {
	best := -1
	var bestArrival dram.Cycle
	// Starvation guard: an over-aged oldest read preempts the hit scan.
	oldest := 0
	for i, r := range q {
		if r.Arrival < q[oldest].Arrival {
			oldest = i
		}
	}
	if !q[oldest].IsWrite && q[oldest].Arrival <= c.now-starvationLimit {
		c.Stats.StarvationBreaks++
		return oldest
	}
	// Pass 1: arrived row hits, oldest first.
	for i, r := range q {
		if r.Arrival > c.now {
			continue
		}
		co := c.amap.Decode(r.Addr)
		if row, open := c.dev.BankOpenRow(co.Rank, co.Group, co.Bank); open && row == co.Row {
			if best == -1 || r.Arrival < bestArrival {
				best, bestArrival = i, r.Arrival
			}
		}
	}
	if best != -1 {
		return best
	}
	// Pass 2: oldest request overall.
	for i, r := range q {
		if best == -1 || r.Arrival < bestArrival {
			best, bestArrival = i, r.Arrival
		}
	}
	return best
}

// prepareLookahead bounds how many future requests get their banks opened
// early while the current request's column access is still pending — the
// bank-preparation pipelining every real controller performs.
const prepareLookahead = 8

// prepareAhead issues PRE/ACT for upcoming queued requests whose banks are
// not ready, so their row activations overlap the current request's column
// access instead of serializing behind it. A bank is only prepared when no
// other arrived request still wants its currently open row.
func (c *Controller) prepareAhead(q []*Request, current *Request) {
	prepared := 0
	for _, r := range q {
		if prepared >= prepareLookahead {
			return
		}
		if r == current || r.Arrival > c.now {
			continue
		}
		co := c.amap.Decode(r.Addr)
		cur := c.amap.Decode(current.Addr)
		if co.Rank == cur.Rank && co.Group == cur.Group && co.Bank == cur.Bank {
			continue // never disturb the bank the current request needs
		}
		row, open := c.dev.BankOpenRow(co.Rank, co.Group, co.Bank)
		if open && row == co.Row {
			continue // already a row hit
		}
		if open {
			if c.anyArrivedWantsRow(co, row, r) {
				continue // precharging would kill a pending row hit
			}
			c.issue(dram.Command{Kind: dram.CmdPRE, Rank: co.Rank, Group: co.Group, Bank: co.Bank})
		}
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
		prepared++
	}
}

// anyArrivedWantsRow reports whether any arrived queued request other than
// skip targets the given open row of the bank in co.
func (c *Controller) anyArrivedWantsRow(co Coord, row int, skip *Request) bool {
	check := func(q []*Request) bool {
		for _, r := range q {
			if r == skip || r.Arrival > c.now {
				continue
			}
			o := c.amap.Decode(r.Addr)
			if o.Rank == co.Rank && o.Group == co.Group && o.Bank == co.Bank && o.Row == row {
				return true
			}
		}
		return false
	}
	return check(c.readQ) || check(c.writeQ)
}

// serviceRefresh issues REF commands for any rank whose deadline passed.
func (c *Controller) serviceRefresh() {
	for r := 0; r < c.dev.Config().Geometry.Ranks; r++ {
		for c.dev.RefreshDue(r) <= c.now {
			cmd := dram.Command{Kind: dram.CmdREF, Rank: r}
			at := c.issue(cmd)
			c.Stats.Refreshes++
			_ = at
		}
	}
}

// issue sends one command to the device at its earliest legal time and
// returns that time. The controller's `now` ratchets per serviced request,
// so bank-local command order is always preserved; prepared-ahead ACTs may
// land at later times than a subsequently issued column command to another
// bank, exactly as on a real C/A bus.
func (c *Controller) issue(cmd dram.Command) dram.Cycle {
	at := c.dev.EarliestIssue(cmd, c.now)
	c.dev.Issue(cmd, at)
	if c.Audit != nil {
		c.Audit.Record(cmd, at)
	}
	c.Stats.IssuedCommands++
	return at
}

// access performs the PRE/ACT/column sequence for one request.
func (c *Controller) access(r *Request) Completion {
	co := c.amap.Decode(r.Addr)
	comp := Completion{Req: *r}

	openRow, open := c.dev.BankOpenRow(co.Rank, co.Group, co.Bank)
	switch {
	case open && openRow == co.Row:
		comp.RowHit = true
		c.Stats.RowHits++
	case open:
		c.Stats.RowMisses++
		c.issue(dram.Command{Kind: dram.CmdPRE, Rank: co.Rank, Group: co.Group, Bank: co.Bank})
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
	default:
		comp.RowEmpty = true
		c.Stats.RowEmpties++
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
	}

	kind := dram.CmdRD
	if r.IsWrite {
		kind = dram.CmdWR
	}
	mode := dram.ModeX4
	if r.Stride {
		mode = dram.ModeStride0 + dram.IOMode(r.Lane%4)
	}
	cmd := dram.Command{
		Kind: kind, Rank: co.Rank, Group: co.Group, Bank: co.Bank,
		Row: co.Row, Col: co.Col, Mode: mode, GangRanks: r.Gang,
	}
	at := c.dev.EarliestIssue(cmd, c.now)
	res := c.dev.Issue(cmd, at)
	if c.Audit != nil {
		c.Audit.Record(cmd, at)
	}
	c.Stats.IssuedCommands++
	if res.ModeSwitched {
		c.Stats.ModeSwitches++
	}
	comp.IssueAt = at
	comp.DataStart = res.DataStart
	comp.DataEnd = res.DataEnd
	c.now = at
	return comp
}

// Drain services every queued request and returns the completions.
func (c *Controller) Drain() []Completion {
	var out []Completion
	for {
		comp, ok := c.ServiceOne()
		if !ok {
			return out
		}
		out = append(out, comp)
	}
}
