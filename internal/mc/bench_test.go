package mc

import (
	"math/rand"
	"testing"

	"sam/internal/dram"
)

// benchStream pre-generates a request mix with realistic row locality:
// runs of row hits interleaved with conflicts, ~25% writes (enough to trip
// the drain watermarks), and ~20% strided requests. Arrival times are
// stamped at enqueue so the queue always has arrived work.
func benchStream(n int) []Request {
	rng := rand.New(rand.NewSource(0xBE7C4))
	m := NewAddrMap(dram.DDR4_2400().Geometry)
	reqs := make([]Request, n)
	base := m.Decode(uint64(rng.Intn(1 << 28)))
	for i := range reqs {
		var addr uint64
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // row-local
			co := base
			co.Col = rng.Intn(m.geo.LinesPerRow())
			addr = m.Encode(co)
		case 6: // conflict in the same bank
			co := base
			co.Row = rng.Intn(1 << 12)
			addr = m.Encode(co)
		case 7: // move the locality window
			base = m.Decode(uint64(rng.Intn(1 << 28)))
			addr = m.Encode(base)
		default:
			addr = uint64(rng.Intn(1 << 28))
		}
		reqs[i] = Request{ID: uint64(i), Addr: addr, IsWrite: rng.Intn(4) == 0}
		if rng.Intn(5) == 0 {
			reqs[i].Stride = true
			reqs[i].Lane = rng.Intn(4)
		}
	}
	return reqs
}

// benchServiceLoop drives a scheduler at steady-state queue depth: prefill
// to ~depth, then one enqueue + one service per iteration.
func benchServiceLoop(b *testing.B, s scheduler, depth int) {
	reqs := benchStream(4096)
	j := 0
	next := func() Request {
		r := reqs[j%len(reqs)]
		j++
		r.Arrival = s.Now()
		return r
	}
	for i := 0; i < depth; i++ {
		r := next()
		if !s.CanAccept(r.IsWrite) {
			s.ServiceOne()
		}
		if s.CanAccept(r.IsWrite) {
			s.Enqueue(r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := next()
		for !s.CanAccept(r.IsWrite) {
			s.ServiceOne()
		}
		s.Enqueue(r)
		s.ServiceOne()
	}
}

// BenchmarkControllerServiceOne measures the decode-once scheduler's
// steady-state service cost at a deep queue. The acceptance bar is >= 3x
// over BenchmarkControllerServiceOneReference with 0 allocs/op.
func BenchmarkControllerServiceOne(b *testing.B) {
	c := NewController(dram.NewDevice(dram.DDR4_2400()), DefaultConfig())
	benchServiceLoop(b, c, 48)
}

// BenchmarkControllerServiceOneReference is the same loop on the frozen
// pre-optimization scheduler — the denominator of the speedup claim.
func BenchmarkControllerServiceOneReference(b *testing.B) {
	c := newReferenceController(dram.NewDevice(dram.DDR4_2400()), DefaultConfig())
	benchServiceLoop(b, c, 48)
}

// BenchmarkControllerEnqueue isolates the enqueue path (one decode, no
// allocation) at a shallow standing queue.
func BenchmarkControllerEnqueue(b *testing.B) {
	c := NewController(dram.NewDevice(dram.DDR4_2400()), DefaultConfig())
	reqs := benchStream(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := reqs[i%len(reqs)]
		r.Arrival = c.Now()
		for !c.CanAccept(r.IsWrite) {
			c.ServiceOne()
		}
		c.Enqueue(r)
		if c.Pending() > 8 {
			c.ServiceOne()
		}
	}
}
