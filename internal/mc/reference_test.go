package mc

import (
	"sam/internal/dram"
)

// referenceController is the pre-optimization FR-FCFS scheduler, kept
// verbatim as a test-only oracle: []*Request queues, an O(n) slice-shift
// dequeue, and a full re-decode of every queued address in every
// scheduling pass. Its observable behaviour — completion stream, Stats,
// and the device command sequence — defines correctness for the
// decode-once Controller; differential_test.go drives both on randomized
// request mixes and requires byte-identical results.
//
// Do not "improve" this type: its value is that it stays frozen.
type referenceController struct {
	dev  *dram.Device
	amap *AddrMap
	cfg  Config

	readQ  []*Request
	writeQ []*Request

	draining bool

	now   dram.Cycle
	Stats Stats

	Audit   *dram.Auditor
	Metrics *Metrics
}

func newReferenceController(dev *dram.Device, cfg Config) *referenceController {
	if cfg.WriteQueueCap <= 0 || cfg.WriteDrainHigh > cfg.WriteQueueCap || cfg.WriteDrainLow >= cfg.WriteDrainHigh || cfg.ReadQueueCap <= 0 {
		panic("mc: invalid reference config")
	}
	return &referenceController{
		dev:  dev,
		amap: NewAddrMapInterleave(dev.Config().Geometry, cfg.Interleave),
		cfg:  cfg,
	}
}

func (c *referenceController) AddrMap() *AddrMap { return c.amap }

func (c *referenceController) Pending() int { return len(c.readQ) + len(c.writeQ) }

func (c *referenceController) CanAccept(isWrite bool) bool {
	if isWrite {
		return len(c.writeQ) < c.cfg.WriteQueueCap
	}
	return len(c.readQ) < c.cfg.ReadQueueCap
}

func (c *referenceController) Enqueue(r Request) {
	if !c.CanAccept(r.IsWrite) {
		panic("mc: enqueue past queue capacity")
	}
	req := r
	if req.IsWrite {
		c.writeQ = append(c.writeQ, &req)
	} else {
		c.readQ = append(c.readQ, &req)
	}
	if occ := c.Pending(); occ > c.Stats.MaxQueueOccupancy {
		c.Stats.MaxQueueOccupancy = occ
	}
	if c.Metrics != nil {
		if r.IsWrite {
			c.Metrics.QueueWrite.Observe(uint64(len(c.writeQ)))
		} else {
			c.Metrics.QueueRead.Observe(uint64(len(c.readQ)))
		}
	}
}

func (c *referenceController) Now() dram.Cycle { return c.now }

func (c *referenceController) ServiceOne() (Completion, bool) {
	q := c.pickQueue()
	if q == nil {
		return Completion{}, false
	}
	idx := c.frFCFS(*q)
	req := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)

	if c.now < req.Arrival {
		c.now = req.Arrival
	}
	c.serviceRefresh()
	c.prepareAhead(*q, req)
	comp := c.access(req)
	if req.IsWrite {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
		c.Stats.TotalReadLatency += uint64(comp.DataEnd - req.Arrival)
	}
	if c.Metrics != nil {
		c.Metrics.latency(req.IsWrite, req.Stride).Observe(uint64(comp.DataEnd - req.Arrival))
	}
	if req.Stride {
		c.Stats.StrideAccesses++
	}
	c.Stats.BusCycleOfLastAccess = comp.DataEnd
	return comp, true
}

func (c *referenceController) pickQueue() *[]*Request {
	if len(c.writeQ) >= c.cfg.WriteDrainHigh {
		c.draining = true
	}
	if len(c.writeQ) <= c.cfg.WriteDrainLow {
		c.draining = false
	}
	switch {
	case c.draining && len(c.writeQ) > 0:
		c.Stats.WriteDrains++
		return &c.writeQ
	case len(c.readQ) > 0:
		return &c.readQ
	case len(c.writeQ) > 0:
		return &c.writeQ
	default:
		return nil
	}
}

func (c *referenceController) frFCFS(q []*Request) int {
	best := -1
	var bestArrival dram.Cycle
	oldest := 0
	for i, r := range q {
		if r.Arrival < q[oldest].Arrival {
			oldest = i
		}
	}
	if !q[oldest].IsWrite && q[oldest].Arrival <= c.now-starvationLimit {
		c.Stats.StarvationBreaks++
		return oldest
	}
	for i, r := range q {
		if r.Arrival > c.now {
			continue
		}
		co := c.amap.Decode(r.Addr)
		if row, open := c.dev.BankOpenRow(co.Rank, co.Group, co.Bank); open && row == co.Row {
			if best == -1 || r.Arrival < bestArrival {
				best, bestArrival = i, r.Arrival
			}
		}
	}
	if best != -1 {
		return best
	}
	for i, r := range q {
		if best == -1 || r.Arrival < bestArrival {
			best, bestArrival = i, r.Arrival
		}
	}
	return best
}

func (c *referenceController) prepareAhead(q []*Request, current *Request) {
	prepared := 0
	for _, r := range q {
		if prepared >= prepareLookahead {
			return
		}
		if r == current || r.Arrival > c.now {
			continue
		}
		co := c.amap.Decode(r.Addr)
		cur := c.amap.Decode(current.Addr)
		if co.Rank == cur.Rank && co.Group == cur.Group && co.Bank == cur.Bank {
			continue
		}
		row, open := c.dev.BankOpenRow(co.Rank, co.Group, co.Bank)
		if open && row == co.Row {
			continue
		}
		if open {
			if c.anyArrivedWantsRow(co, row, r) {
				continue
			}
			c.issue(dram.Command{Kind: dram.CmdPRE, Rank: co.Rank, Group: co.Group, Bank: co.Bank})
		}
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
		prepared++
	}
}

func (c *referenceController) anyArrivedWantsRow(co Coord, row int, skip *Request) bool {
	check := func(q []*Request) bool {
		for _, r := range q {
			if r == skip || r.Arrival > c.now {
				continue
			}
			o := c.amap.Decode(r.Addr)
			if o.Rank == co.Rank && o.Group == co.Group && o.Bank == co.Bank && o.Row == row {
				return true
			}
		}
		return false
	}
	return check(c.readQ) || check(c.writeQ)
}

func (c *referenceController) serviceRefresh() {
	for r := 0; r < c.dev.Config().Geometry.Ranks; r++ {
		for c.dev.RefreshDue(r) <= c.now {
			c.issue(dram.Command{Kind: dram.CmdREF, Rank: r})
			c.Stats.Refreshes++
		}
	}
}

func (c *referenceController) issue(cmd dram.Command) dram.Cycle {
	at := c.dev.EarliestIssue(cmd, c.now)
	c.dev.Issue(cmd, at)
	if c.Audit != nil {
		c.Audit.Record(cmd, at)
	}
	c.Stats.IssuedCommands++
	return at
}

func (c *referenceController) access(r *Request) Completion {
	co := c.amap.Decode(r.Addr)
	comp := Completion{Req: *r}

	openRow, open := c.dev.BankOpenRow(co.Rank, co.Group, co.Bank)
	switch {
	case open && openRow == co.Row:
		comp.RowHit = true
		c.Stats.RowHits++
	case open:
		c.Stats.RowMisses++
		c.issue(dram.Command{Kind: dram.CmdPRE, Rank: co.Rank, Group: co.Group, Bank: co.Bank})
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
	default:
		comp.RowEmpty = true
		c.Stats.RowEmpties++
		c.issue(dram.Command{Kind: dram.CmdACT, Rank: co.Rank, Group: co.Group, Bank: co.Bank, Row: co.Row, GangRanks: r.Gang})
	}

	kind := dram.CmdRD
	if r.IsWrite {
		kind = dram.CmdWR
	}
	mode := dram.ModeX4
	if r.Stride {
		mode = dram.ModeStride0 + dram.IOMode(r.Lane%4)
	}
	cmd := dram.Command{
		Kind: kind, Rank: co.Rank, Group: co.Group, Bank: co.Bank,
		Row: co.Row, Col: co.Col, Mode: mode, GangRanks: r.Gang,
	}
	at := c.dev.EarliestIssue(cmd, c.now)
	res := c.dev.Issue(cmd, at)
	if c.Audit != nil {
		c.Audit.Record(cmd, at)
	}
	c.Stats.IssuedCommands++
	if res.ModeSwitched {
		c.Stats.ModeSwitches++
	}
	comp.IssueAt = at
	comp.DataStart = res.DataStart
	comp.DataEnd = res.DataEnd
	c.now = at
	return comp
}

func (c *referenceController) Drain() []Completion {
	var out []Completion
	for {
		comp, ok := c.ServiceOne()
		if !ok {
			return out
		}
		out = append(out, comp)
	}
}

// scheduler is the surface the differential and starvation tests drive on
// both implementations.
type scheduler interface {
	Enqueue(Request)
	ServiceOne() (Completion, bool)
	CanAccept(bool) bool
	Pending() int
	Now() dram.Cycle
	AddrMap() *AddrMap
	Drain() []Completion
	stats() *Stats
}

func (c *Controller) stats() *Stats          { return &c.Stats }
func (c *referenceController) stats() *Stats { return &c.Stats }
