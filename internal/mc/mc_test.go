package mc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sam/internal/dram"
	"sam/internal/stats"
)

func newTestController() *Controller {
	dev := dram.NewDevice(dram.DDR4_2400())
	return NewController(dev, DefaultConfig())
}

func TestAddrMapRoundTrip(t *testing.T) {
	m := NewAddrMap(dram.DDR4_2400().Geometry)
	f := func(addr uint64) bool {
		addr &= 1<<33 - 1 // keep rows in range
		return m.Encode(m.Decode(addr)) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAddrMapFieldOrder(t *testing.T) {
	m := NewAddrMap(dram.DDR4_2400().Geometry)
	// Consecutive cachelines must walk columns of one row (streaming scans
	// stay row-buffer resident).
	c0 := m.Decode(0)
	c1 := m.Decode(64)
	if c1.Col != c0.Col+1 || c1.Row != c0.Row || c1.Bank != c0.Bank || c1.Rank != c0.Rank {
		t.Fatalf("line+1 moved to %+v from %+v", c1, c0)
	}
	// Crossing a full row of columns advances the bank field (cl below bk).
	rowSpan := uint64(64 * 128)
	cr := m.Decode(rowSpan)
	if cr.Col != 0 || (cr.Group == 0 && cr.Bank == 0) {
		t.Fatalf("row-span cross: %+v", cr)
	}
}

func TestAddrMapRejectsNonPowerOfTwo(t *testing.T) {
	g := dram.DDR4_2400().Geometry
	g.Ranks = 3
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two geometry accepted")
		}
	}()
	NewAddrMap(g)
}

func TestLineAddr(t *testing.T) {
	m := NewAddrMap(dram.DDR4_2400().Geometry)
	if m.LineAddr(0x12345) != 0x12340 {
		t.Fatalf("line addr = %x", m.LineAddr(0x12345))
	}
	if m.LineBytes() != 64 {
		t.Fatal("line bytes")
	}
}

func TestStrideRemapInvolution(t *testing.T) {
	// For all paper configurations sector-index and line-index fields have
	// equal width (G = LineBytes/Reach), making the remap an involution.
	for _, cfg := range []StrideRemap{
		{SectorBytes: 16, Reach: 4, LineBytes: 64},
		{SectorBytes: 8, Reach: 8, LineBytes: 64},
		{SectorBytes: 32, Reach: 2, LineBytes: 64},
	} {
		if !cfg.Valid() {
			t.Fatalf("config %+v invalid", cfg)
		}
		f := func(addr uint64) bool {
			return cfg.Remap(cfg.Remap(addr)) == addr
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%+v: %v", cfg, err)
		}
	}
}

func TestStrideRemapGathersReach(t *testing.T) {
	// The defining property (Fig. 10): after remapping, the same-offset
	// sectors of the N group-aligned cachelines occupy N consecutive
	// sector slots of one line — i.e. one strided burst's worth.
	cfg := StrideRemap{SectorBytes: 16, Reach: 4, LineBytes: 64}
	base := uint64(0x100000)
	sector := 2 // pick sector 2 of each line
	var remapped []uint64
	for line := 0; line < cfg.Reach; line++ {
		va := base + uint64(line*cfg.LineBytes+sector*cfg.SectorBytes)
		remapped = append(remapped, cfg.Remap(va))
	}
	lineOf := func(a uint64) uint64 { return a / uint64(cfg.LineBytes) }
	for i := 1; i < len(remapped); i++ {
		if lineOf(remapped[i]) != lineOf(remapped[0]) {
			t.Fatalf("remapped sectors span lines: %x vs %x", remapped[i], remapped[0])
		}
		if remapped[i] != remapped[i-1]+uint64(cfg.SectorBytes) {
			t.Fatalf("remapped sectors not consecutive: %x after %x", remapped[i], remapped[i-1])
		}
	}
}

func TestStrideRemapBijectionOnPage(t *testing.T) {
	cfg := StrideRemap{SectorBytes: 16, Reach: 4, LineBytes: 64}
	seen := make(map[uint64]bool, 4096)
	for a := uint64(0); a < 4096; a++ {
		r := cfg.Remap(a)
		if r >= 4096 {
			t.Fatalf("remap leaves the page: %x -> %x", a, r)
		}
		if seen[r] {
			t.Fatalf("remap collision at %x", r)
		}
		seen[r] = true
	}
}

func TestControllerSingleRead(t *testing.T) {
	c := newTestController()
	c.Enqueue(Request{ID: 1, Addr: 0x1000, Arrival: 0})
	comp, ok := c.ServiceOne()
	if !ok {
		t.Fatal("no completion")
	}
	cfg := dram.DDR4_2400()
	// Cold access: ACT at ~1, RD at ACT+tRCD, data CL later.
	minEnd := dram.Cycle(cfg.Timing.TRCD + cfg.Timing.CL + cfg.Timing.TBL)
	if comp.DataEnd < minEnd {
		t.Fatalf("cold read finished at %d, faster than tRCD+CL+tBL=%d", comp.DataEnd, minEnd)
	}
	if !comp.RowEmpty || comp.RowHit {
		t.Fatalf("cold access misclassified: %+v", comp)
	}
}

func TestControllerRowHitFasterThanConflict(t *testing.T) {
	// Same row twice -> hit; different row same bank -> precharge penalty.
	cHit := newTestController()
	cHit.Enqueue(Request{ID: 1, Addr: 0, Arrival: 0})
	cHit.Enqueue(Request{ID: 2, Addr: 64, Arrival: 0})
	hits := cHit.Drain()
	hitGap := hits[1].DataEnd - hits[0].DataEnd

	cMiss := newTestController()
	rowSpan := uint64(64 * 128 * 32) // jump a full row within the same bank (past col+bank+rank bits? keep same bank: row bit stride)
	// Row field starts above rank; row+1 with identical bank/rank:
	m := cMiss.AddrMap()
	co := m.Decode(0)
	co.Row = 1
	addr2 := m.Encode(co)
	cMiss.Enqueue(Request{ID: 1, Addr: 0, Arrival: 0})
	cMiss.Enqueue(Request{ID: 2, Addr: addr2, Arrival: 0})
	misses := cMiss.Drain()
	missGap := misses[1].DataEnd - misses[0].DataEnd

	if hitGap >= missGap {
		t.Fatalf("row hit gap %d not faster than conflict gap %d", hitGap, missGap)
	}
	if cHit.Stats.RowHits != 1 || cMiss.Stats.RowMisses != 1 {
		t.Fatalf("hit/miss accounting: %+v vs %+v", cHit.Stats, cMiss.Stats)
	}
	_ = rowSpan
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := newTestController()
	m := c.AddrMap()
	// Open row 0 of bank (0,0,0) with request A.
	c.Enqueue(Request{ID: 1, Addr: 0, Arrival: 0})
	if _, ok := c.ServiceOne(); !ok {
		t.Fatal("A not serviced")
	}
	// B conflicts (row 1 same bank), C hits (row 0 col 5). B is older.
	co := m.Decode(0)
	co.Row = 1
	bAddr := m.Encode(co)
	co.Row = 0
	co.Col = 5
	cAddr := m.Encode(co)
	c.Enqueue(Request{ID: 2, Addr: bAddr, Arrival: 1})
	c.Enqueue(Request{ID: 3, Addr: cAddr, Arrival: 2})
	first, _ := c.ServiceOne()
	if first.Req.ID != 3 {
		t.Fatalf("FR-FCFS serviced ID %d first, want the row hit (3)", first.Req.ID)
	}
	second, _ := c.ServiceOne()
	if second.Req.ID != 2 {
		t.Fatalf("conflict request starved")
	}
}

func TestWriteQueueDrainHysteresis(t *testing.T) {
	c := newTestController()
	// Fill writes beyond the high watermark plus a single read.
	for i := 0; i < 25; i++ {
		c.Enqueue(Request{ID: uint64(i), Addr: uint64(i) * 64, IsWrite: true, Arrival: 0})
	}
	c.Enqueue(Request{ID: 100, Addr: 0x100000, Arrival: 0})
	first, _ := c.ServiceOne()
	if !first.Req.IsWrite {
		t.Fatal("drain mode should prioritize writes above high watermark")
	}
	// Drain proceeds past the read until low watermark.
	var sawRead bool
	writesBeforeRead := 1
	for {
		comp, ok := c.ServiceOne()
		if !ok {
			break
		}
		if comp.Req.IsWrite && !sawRead {
			writesBeforeRead++
		}
		if !comp.Req.IsWrite {
			sawRead = true
		}
	}
	if !sawRead {
		t.Fatal("read never serviced")
	}
	if writesBeforeRead < 25-8 {
		t.Fatalf("drain stopped after %d writes, want >= %d (down to low watermark)", writesBeforeRead, 25-8)
	}
}

func TestControllerRefreshIssued(t *testing.T) {
	c := newTestController()
	cfg := dram.DDR4_2400()
	// A request arriving after tREFI forces a refresh first.
	c.Enqueue(Request{ID: 1, Addr: 0, Arrival: dram.Cycle(cfg.Timing.TREFI + 10)})
	c.ServiceOne()
	if c.Stats.Refreshes == 0 {
		t.Fatal("no refresh issued despite deadline")
	}
}

func TestControllerStrideModeSwitchCounted(t *testing.T) {
	c := newTestController()
	c.Enqueue(Request{ID: 1, Addr: 0, Arrival: 0})
	c.Enqueue(Request{ID: 2, Addr: 64, Stride: true, Lane: 2, Arrival: 0})
	c.Enqueue(Request{ID: 3, Addr: 128, Arrival: 0})
	c.Drain()
	if c.Stats.ModeSwitches < 2 {
		t.Fatalf("mode switches = %d, want >= 2 (into and out of stride)", c.Stats.ModeSwitches)
	}
	if c.Stats.StrideAccesses != 1 {
		t.Fatalf("stride accesses = %d", c.Stats.StrideAccesses)
	}
}

func TestControllerAuditCleanUnderRandomLoad(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	c := NewController(dev, DefaultConfig())
	c.Audit = dram.NewAuditor(dram.DDR4_2400())
	rng := rand.New(rand.NewSource(17))
	var arrival dram.Cycle
	for i := 0; i < 2000; i++ {
		r := Request{
			ID:      uint64(i),
			Addr:    uint64(rng.Intn(1 << 28)),
			IsWrite: rng.Intn(4) == 0,
			Arrival: arrival,
		}
		if rng.Intn(5) == 0 {
			r.Stride = true
			r.Lane = rng.Intn(4)
		}
		arrival += dram.Cycle(rng.Intn(20))
		for !c.CanAccept(r.IsWrite) {
			if _, ok := c.ServiceOne(); !ok {
				t.Fatal("queue full but nothing to service")
			}
		}
		c.Enqueue(r)
		if rng.Intn(3) == 0 {
			c.ServiceOne()
		}
	}
	c.Drain()
	if !c.Audit.Ok() {
		t.Fatalf("protocol violations under random load; first: %s", c.Audit.Violations[0])
	}
	if c.Stats.Reads+c.Stats.Writes != 2000 {
		t.Fatalf("serviced %d, want 2000", c.Stats.Reads+c.Stats.Writes)
	}
}

func TestControllerConfigValidation(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	bad := []Config{
		{WriteQueueCap: 0, WriteDrainHigh: 0, WriteDrainLow: 0, ReadQueueCap: 4},
		{WriteQueueCap: 8, WriteDrainHigh: 16, WriteDrainLow: 2, ReadQueueCap: 4},
		{WriteQueueCap: 8, WriteDrainHigh: 6, WriteDrainLow: 7, ReadQueueCap: 4},
		{WriteQueueCap: 8, WriteDrainHigh: 6, WriteDrainLow: 2, ReadQueueCap: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			NewController(dev, cfg)
		}()
	}
}

func TestServiceOneEmptyQueue(t *testing.T) {
	c := newTestController()
	if _, ok := c.ServiceOne(); ok {
		t.Fatal("serviced from empty queue")
	}
}

func TestReadLatencyAccounting(t *testing.T) {
	c := newTestController()
	c.Enqueue(Request{ID: 1, Addr: 0, Arrival: 0})
	comp, _ := c.ServiceOne()
	if c.Stats.TotalReadLatency != uint64(comp.DataEnd) {
		t.Fatalf("latency %d, want %d", c.Stats.TotalReadLatency, comp.DataEnd)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	for _, il := range []Interleave{ColumnsLow, BanksLow} {
		m := NewAddrMapInterleave(dram.DDR4_2400().Geometry, il)
		f := func(addr uint64) bool {
			addr &= 1<<33 - 1
			return m.Encode(m.Decode(addr)) == addr
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", il, err)
		}
	}
}

func TestBanksLowRotatesBanks(t *testing.T) {
	m := NewAddrMapInterleave(dram.DDR4_2400().Geometry, BanksLow)
	c0 := m.Decode(0)
	c1 := m.Decode(64)
	if c0.Group == c1.Group && c0.Bank == c1.Bank && c0.Rank == c1.Rank {
		t.Fatal("banks-low interleave should rotate banks per line")
	}
	if c1.Row != c0.Row {
		t.Fatal("adjacent lines should stay in the same row index")
	}
	if ColumnsLow.String() != "columns-low" || BanksLow.String() != "banks-low" {
		t.Fatal("interleave names")
	}
}

func TestInterleaveChangesBankConflictBehavior(t *testing.T) {
	// A sequential line scan: columns-low keeps one bank busy (row hits),
	// banks-low spreads it (row empties early, more ACT work but more
	// parallelism). Both must stay protocol-clean.
	for _, il := range []Interleave{ColumnsLow, BanksLow} {
		dev := dram.NewDevice(dram.DDR4_2400())
		cfg := DefaultConfig()
		cfg.Interleave = il
		c := NewController(dev, cfg)
		c.Audit = dram.NewAuditor(dram.DDR4_2400())
		for i := 0; i < 256; i++ {
			c.Enqueue(Request{ID: uint64(i), Addr: uint64(i) * 64, Arrival: dram.Cycle(i)})
			if i%16 == 15 {
				for c.Pending() > 8 {
					c.ServiceOne()
				}
			}
		}
		c.Drain()
		if !c.Audit.Ok() {
			t.Fatalf("%v: %s", il, c.Audit.Violations[0])
		}
		acts := dev.Stats.Acts
		if il == ColumnsLow && acts > 4 {
			t.Fatalf("columns-low sequential scan opened %d rows, want ~2", acts)
		}
		if il == BanksLow && acts < 16 {
			t.Fatalf("banks-low scan should spread across banks, opened only %d rows", acts)
		}
	}
}

func TestLatencyHistogram(t *testing.T) {
	c := newTestController()
	reg := stats.NewRegistry()
	c.Metrics = NewMetrics(reg)
	for i := 0; i < 100; i++ {
		c.Enqueue(Request{ID: uint64(i), Addr: uint64(i) * 4096, Arrival: dram.Cycle(i * 2)})
		if i%8 == 7 {
			for c.Pending() > 4 {
				c.ServiceOne()
			}
		}
	}
	c.Drain()
	// All 100 requests are normal reads: they land in exactly one class.
	h := c.Metrics.LatReadNormal
	if h.Total() != 100 {
		t.Fatalf("read.normal histogram saw %d requests, want 100", h.Total())
	}
	for name, other := range map[string]*stats.Histogram{
		"read.stride":  c.Metrics.LatReadStride,
		"write.normal": c.Metrics.LatWriteNormal,
		"write.stride": c.Metrics.LatWriteStride,
	} {
		if other.Total() != 0 {
			t.Fatalf("class %s saw %d requests, want 0", name, other.Total())
		}
	}
	if h.Mean() <= 0 || h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatal("histogram statistics degenerate")
	}
	// Every Enqueue observed the post-enqueue read-queue depth.
	if got := c.Metrics.QueueRead.Total(); got != 100 {
		t.Fatalf("queue occupancy histogram saw %d enqueues, want 100", got)
	}
	if c.Metrics.QueueWrite.Total() != 0 {
		t.Fatal("write-queue histogram saw read traffic")
	}
}

func TestMetricsClassSplit(t *testing.T) {
	// One request of each class must land in its own histogram.
	c := newTestController()
	c.Metrics = NewMetrics(stats.NewRegistry())
	reqs := []Request{
		{ID: 0, Addr: 0x0000},
		{ID: 1, Addr: 0x4000, Stride: true},
		{ID: 2, Addr: 0x8000, IsWrite: true},
		{ID: 3, Addr: 0xc000, IsWrite: true, Stride: true},
	}
	for _, r := range reqs {
		c.Enqueue(r)
	}
	c.Drain()
	for name, h := range map[string]*stats.Histogram{
		"read.normal":  c.Metrics.LatReadNormal,
		"read.stride":  c.Metrics.LatReadStride,
		"write.normal": c.Metrics.LatWriteNormal,
		"write.stride": c.Metrics.LatWriteStride,
	} {
		if h.Total() != 1 {
			t.Fatalf("class %s saw %d requests, want 1", name, h.Total())
		}
	}
	if c.Metrics.QueueRead.Total() != 2 || c.Metrics.QueueWrite.Total() != 2 {
		t.Fatalf("queue histograms saw %d/%d enqueues, want 2/2",
			c.Metrics.QueueRead.Total(), c.Metrics.QueueWrite.Total())
	}
}

func TestStarvationGuard(t *testing.T) {
	// Invariant 8: a conflicting request must not wait unboundedly behind a
	// stream of row hits. Both the decode-once scheduler and the frozen
	// reference must break the hit stream for the aged read.
	for name, mk := range map[string]func() scheduler{
		"new":       func() scheduler { return newTestController() },
		"reference": func() scheduler { return newReferenceController(dram.NewDevice(dram.DDR4_2400()), DefaultConfig()) },
	} {
		t.Run(name, func(t *testing.T) {
			c := mk()
			m := c.AddrMap()
			// Open row 0 of bank 0.
			c.Enqueue(Request{ID: 0, Addr: 0, Arrival: 0})
			c.ServiceOne()
			// The victim: row 1 of the same bank, enqueued early.
			co := m.Decode(0)
			co.Row = 1
			victim := m.Encode(co)
			c.Enqueue(Request{ID: 1, Addr: victim, Arrival: 1})
			// Keep feeding row hits long past the starvation limit.
			var servicedVictimAt int
			for i := 2; i < 3000; i++ {
				co.Row = 0
				co.Col = i % 32
				c.Enqueue(Request{ID: uint64(i), Addr: m.Encode(co), Arrival: c.Now()})
				comp, _ := c.ServiceOne()
				if comp.Req.ID == 1 {
					servicedVictimAt = i
					break
				}
			}
			if servicedVictimAt == 0 {
				t.Fatal("victim starved for 3000 services")
			}
			if c.stats().StarvationBreaks == 0 {
				t.Fatal("starvation break not counted")
			}
			// And the victim waited at most ~limit plus scheduling slack.
			if c.Now() > starvationLimit+1024 {
				t.Fatalf("victim serviced only at t=%d", c.Now())
			}
		})
	}
}
