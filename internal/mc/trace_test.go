package mc

import (
	"testing"

	"sam/internal/dram"
)

// TestServiceOneZeroAllocsTraceDisabled pins the event-tracing contract on
// the fast path: with Trace nil, the steady-state enqueue + service loop
// must not allocate at all.
func TestServiceOneZeroAllocsTraceDisabled(t *testing.T) {
	c := NewController(dram.NewDevice(dram.DDR4_2400()), DefaultConfig())
	reqs := benchStream(4096)
	j := 0
	next := func() Request {
		r := reqs[j%len(reqs)]
		j++
		r.Arrival = c.Now()
		return r
	}
	for i := 0; i < 48; i++ {
		r := next()
		if !c.CanAccept(r.IsWrite) {
			c.ServiceOne()
		}
		if c.CanAccept(r.IsWrite) {
			c.Enqueue(r)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		r := next()
		for !c.CanAccept(r.IsWrite) {
			c.ServiceOne()
		}
		c.Enqueue(r)
		c.ServiceOne()
	})
	if allocs != 0 {
		t.Fatalf("service loop with tracing disabled: %.2f allocs/op, want 0", allocs)
	}
}

// recordedEvent is one tracer callback, flattened for ordering checks.
type recordedEvent struct {
	kind  byte // 'e'nqueue, 's'cheduled, 'c'ompleted
	id    uint64
	bank  int32
	at    dram.Cycle
	depth int
}

// recordingTracer captures every lifecycle callback in order.
type recordingTracer struct {
	events []recordedEvent
}

func (r *recordingTracer) ReqEnqueued(at dram.Cycle, req Request, bank int32, queueDepth int) {
	r.events = append(r.events, recordedEvent{'e', req.ID, bank, at, queueDepth})
}

func (r *recordingTracer) ReqScheduled(at dram.Cycle, req Request, bank int32) {
	r.events = append(r.events, recordedEvent{'s', req.ID, bank, at, 0})
}

func (r *recordingTracer) ReqCompleted(comp Completion, bank int32) {
	r.events = append(r.events, recordedEvent{'c', comp.Req.ID, bank, comp.DataEnd, 0})
}

func (r *recordingTracer) ReqFaulted(at dram.Cycle, req Request, bank int32, attempt int, poisoned bool) {
	r.events = append(r.events, recordedEvent{'f', req.ID, bank, at, attempt})
}

// TestTracerLifecycleOrdering drives a controller with a recording tracer
// and checks the per-request protocol: enqueue, then scheduled, then
// completed, with a consistent bank and a queue depth that matches the
// controller's own accounting at enqueue time.
func TestTracerLifecycleOrdering(t *testing.T) {
	c := NewController(dram.NewDevice(dram.DDR4_2400()), DefaultConfig())
	rec := &recordingTracer{}
	c.Trace = rec

	reqs := benchStream(500)
	enqueued := 0
	for i := range reqs {
		r := reqs[i]
		r.Arrival = c.Now()
		for !c.CanAccept(r.IsWrite) {
			c.ServiceOne()
		}
		c.Enqueue(r)
		enqueued++
		if c.Pending() > 24 {
			c.ServiceOne()
		}
	}
	c.Drain()

	stage := map[uint64]byte{}
	bank := map[uint64]int32{}
	pending := 0
	completed := 0
	for i, e := range rec.events {
		switch e.kind {
		case 'e':
			if _, dup := stage[e.id]; dup {
				t.Fatalf("event %d: request %d enqueued twice", i, e.id)
			}
			stage[e.id] = 'e'
			bank[e.id] = e.bank
			pending++
			if e.depth != pending {
				t.Fatalf("event %d: request %d enqueued with depth %d, tracker says %d", i, e.id, e.depth, pending)
			}
		case 's':
			if stage[e.id] != 'e' {
				t.Fatalf("event %d: request %d scheduled from stage %q", i, e.id, stage[e.id])
			}
			if e.bank != bank[e.id] {
				t.Fatalf("event %d: request %d bank %d at schedule, %d at enqueue", i, e.id, e.bank, bank[e.id])
			}
			stage[e.id] = 's'
			pending--
		case 'c':
			if stage[e.id] != 's' {
				t.Fatalf("event %d: request %d completed from stage %q", i, e.id, stage[e.id])
			}
			if e.bank != bank[e.id] {
				t.Fatalf("event %d: request %d bank %d at completion, %d at enqueue", i, e.id, e.bank, bank[e.id])
			}
			stage[e.id] = 'c'
			completed++
		default:
			t.Fatalf("event %d: unknown kind %q", i, e.kind)
		}
	}
	if completed != enqueued {
		t.Fatalf("%d completions for %d enqueues", completed, enqueued)
	}
	if pending != 0 {
		t.Fatalf("%d requests never scheduled after Drain", pending)
	}
}

// nopTracer is the cheapest possible Tracer/CmdTracer, isolating the hook
// overhead itself in BenchmarkControllerServiceOneTraced.
type nopTracer struct{}

func (nopTracer) ReqEnqueued(dram.Cycle, Request, int32, int)              {}
func (nopTracer) ReqScheduled(dram.Cycle, Request, int32)                  {}
func (nopTracer) ReqCompleted(Completion, int32)                           {}
func (nopTracer) ReqFaulted(dram.Cycle, Request, int32, int, bool)         {}
func (nopTracer) CommandIssued(dram.Command, dram.Cycle, dram.IssueResult) {}

// BenchmarkControllerServiceOneTraced is BenchmarkControllerServiceOne
// with a no-op tracer attached to both the controller and the device: the
// difference between the two is the pure cost of the tracing hooks.
func BenchmarkControllerServiceOneTraced(b *testing.B) {
	dev := dram.NewDevice(dram.DDR4_2400())
	c := NewController(dev, DefaultConfig())
	c.Trace = nopTracer{}
	dev.Trace = nopTracer{}
	benchServiceLoop(b, c, 48)
}
