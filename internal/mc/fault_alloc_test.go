package mc

import (
	"testing"

	"sam/internal/dram"
	"sam/internal/ecc"
	"sam/internal/fault"
)

// zeroAllocServiceLoop warms a controller with 48 in-flight requests and
// then pins the steady-state enqueue + service loop at exactly zero
// allocations per op — the fault-enabled mirror of
// TestServiceOneZeroAllocsTraceDisabled.
func zeroAllocServiceLoop(t *testing.T, c *Controller, label string) {
	t.Helper()
	reqs := benchStream(4096)
	j := 0
	next := func() Request {
		r := reqs[j%len(reqs)]
		j++
		r.Arrival = c.Now()
		return r
	}
	for i := 0; i < 48; i++ {
		r := next()
		if !c.CanAccept(r.IsWrite) {
			c.ServiceOne()
		}
		if c.CanAccept(r.IsWrite) {
			c.Enqueue(r)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		r := next()
		for !c.CanAccept(r.IsWrite) {
			c.ServiceOne()
		}
		c.Enqueue(r)
		c.ServiceOne()
	})
	if allocs != 0 {
		t.Fatalf("%s: %.2f allocs/op, want 0", label, allocs)
	}
}

// TestServiceOneZeroAllocsFaultInjection pins the fault-enabled service
// loop: with a live injector adjudicating every burst through the chipkill
// codec at rate>0, the warmed loop must still not allocate — the injector's
// burst workspace, codec scratch, and decode buffer are all owned, so
// injection costs cycles but never heap.
func TestServiceOneZeroAllocsFaultInjection(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	in := fault.New(fault.Config{Seed: 0xF00D, Rate: 0.05}, ecc.SchemeSSC, true)
	dev.Probe = in
	c := NewController(dev, DefaultConfig())
	zeroAllocServiceLoop(t, c, "transient injection")
	if in.Counters.Injected == 0 {
		t.Fatal("no faults injected: the pin never exercised the fault path")
	}
	if in.Counters.CorrectedBursts == 0 {
		t.Fatal("no bursts corrected: the pin never exercised the decode-correct path")
	}
}

// TestServiceOneZeroAllocsFaultRetryPoison drives the worst fault path —
// every burst uncorrectable (two dead chips), so every read walks the full
// retry loop and poisons — and requires the same zero-allocation bound.
func TestServiceOneZeroAllocsFaultRetryPoison(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	in := fault.New(fault.Config{
		Seed:      0xF00D,
		DeadChips: []fault.ChipFault{{Rank: -1, Chip: 2}, {Rank: -1, Chip: 9}},
	}, ecc.SchemeSSC, true)
	dev.Probe = in
	c := NewController(dev, DefaultConfig())
	c.SetMaxRetries(2)
	zeroAllocServiceLoop(t, c, "retry/poison path")
	if in.Counters.DUEs == 0 || c.Stats.Poisoned == 0 {
		t.Fatalf("DUEs=%d poisoned=%d: the pin never exercised retry/poison",
			in.Counters.DUEs, c.Stats.Poisoned)
	}
}
