package mc

import "sam/internal/dram"

// This file holds the controller's scheduling data structure: a
// fixed-capacity pool of value-typed queue entries threaded by two
// intrusive doubly-linked lists — arrival (enqueue) order for the FR-FCFS
// scans, and a per-bank pending list for row-hit selection and open-row
// conflict checks. Each request's address is decoded exactly once, at
// Enqueue; the service loop never allocates and never re-decodes.
//
// Dequeue-by-index is O(1) (unlink from both lists, slot returns to the
// freelist) and preserves the relative order of the remaining entries, so
// FR-FCFS tie-breaking ("first enqueued wins among equal arrivals") is
// byte-identical to the old slice-shift implementation — the differential
// test in differential_test.go enforces this against the frozen reference
// scheduler.

// nilSlot terminates the intrusive lists.
const nilSlot = int32(-1)

// entry is one queued request with its DRAM coordinates decoded once.
type entry struct {
	req  Request
	co   Coord
	bank int32  // flat Device.BankIndex of co
	seq  uint64 // enqueue order; breaks arrival ties like queue position did

	// Arrival-order list (the queue proper).
	prev, next int32
	// Per-bank pending list (unordered; selection compares (Arrival, seq)).
	bankPrev, bankNext int32
}

// reqQueue is the fixed-capacity slot pool plus its list heads. The zero
// value is not usable; call newReqQueue.
type reqQueue struct {
	slots    []entry
	bankHead []int32 // per flat bank index, head of the pending list
	bankTail []int32 // per flat bank index, tail (newest-enqueued entry)
	free     int32   // freelist threaded through entry.next
	head     int32   // oldest-enqueued live entry
	tail     int32   // newest-enqueued live entry
	n        int     // live entries
	// sorted tracks whether every push since the queue was last empty had
	// a nondecreasing Arrival. While it holds (always, for the engine's
	// monotone compute clock), the head IS the FR-FCFS "oldest arrived,
	// earliest enqueued" pick and the O(n) aging scan is skipped.
	sorted      bool
	lastArrival dram.Cycle
	// Occupied-bank index: occBanks lists the banks with a nonempty
	// pending list (unordered, swap-removed), bankPos is each bank's
	// position in it (-1 when empty). The FR-FCFS hit scan walks occBanks
	// instead of every flat bank index; its pick is order-independent (a
	// strict (Arrival, seq) total order), so the walk order doesn't matter.
	occBanks []int32
	bankPos  []int32
}

// newReqQueue builds a queue for `capacity` requests over `banks` flat
// bank indices. Both allocations happen here, once per controller; the
// queue never grows or allocates afterwards.
func newReqQueue(capacity, banks int) reqQueue {
	q := reqQueue{
		slots:    make([]entry, capacity),
		bankHead: make([]int32, banks),
		head:     nilSlot,
		tail:     nilSlot,
		sorted:   true,
		occBanks: make([]int32, 0, banks),
		bankPos:  make([]int32, banks),
		bankTail: make([]int32, banks),
	}
	for i := range q.slots {
		q.slots[i].next = int32(i) + 1
	}
	q.slots[capacity-1].next = nilSlot
	for b := range q.bankHead {
		q.bankHead[b] = nilSlot
		q.bankTail[b] = nilSlot
		q.bankPos[b] = nilSlot
	}
	return q
}

// push appends a decoded request at the queue tail and indexes it under
// its bank (at the bank list's tail, so bank lists share the queue's
// enqueue — and, while sorted, arrival — order). Callers must respect
// capacity (Controller.CanAccept).
func (q *reqQueue) push(req Request, co Coord, bank int32, seq uint64) {
	i := q.free
	if i == nilSlot {
		panic("mc: reqQueue overflow")
	}
	q.free = q.slots[i].next
	if q.n > 0 && req.Arrival < q.lastArrival {
		q.sorted = false
	}
	q.lastArrival = req.Arrival
	q.slots[i] = entry{
		req: req, co: co, bank: bank, seq: seq,
		prev: q.tail, next: nilSlot,
		bankPrev: q.bankTail[bank], bankNext: nilSlot,
	}
	if q.tail != nilSlot {
		q.slots[q.tail].next = i
	} else {
		q.head = i
	}
	q.tail = i
	if pv := q.slots[i].bankPrev; pv != nilSlot {
		q.slots[pv].bankNext = i
	} else {
		q.bankHead[bank] = i
		q.bankPos[bank] = int32(len(q.occBanks))
		q.occBanks = append(q.occBanks, bank)
	}
	q.bankTail[bank] = i
	q.n++
}

// remove unlinks slot i from both lists and returns it to the freelist.
func (q *reqQueue) remove(i int32) {
	e := &q.slots[i]
	if e.prev != nilSlot {
		q.slots[e.prev].next = e.next
	} else {
		q.head = e.next
	}
	if e.next != nilSlot {
		q.slots[e.next].prev = e.prev
	} else {
		q.tail = e.prev
	}
	if e.bankPrev != nilSlot {
		q.slots[e.bankPrev].bankNext = e.bankNext
	} else {
		q.bankHead[e.bank] = e.bankNext
		if e.bankNext == nilSlot {
			// Bank emptied: swap-remove it from the occupied list.
			pos := q.bankPos[e.bank]
			last := int32(len(q.occBanks) - 1)
			moved := q.occBanks[last]
			q.occBanks[pos] = moved
			q.bankPos[moved] = pos
			q.occBanks = q.occBanks[:last]
			q.bankPos[e.bank] = nilSlot
		}
	}
	if e.bankNext != nilSlot {
		q.slots[e.bankNext].bankPrev = e.bankPrev
	} else {
		q.bankTail[e.bank] = e.bankPrev
	}
	e.next = q.free
	q.free = i
	q.n--
	if q.n == 0 {
		q.sorted = true
	}
}
