package mc

import (
	"math/rand"
	"reflect"
	"testing"

	"sam/internal/dram"
	"sam/internal/ecc"
	"sam/internal/fault"
)

// TestSchedulerDifferentialFaultRateZero is the transparency proof for the
// fault-injection plumbing: a controller whose device carries a live
// fault.Injector at rate 0 (and an empty fault map) must be bit-identical to
// a controller with no probe at all — same completion stream, same Stats,
// same device accounting, same audited command sequence. The injector still
// adjudicates every data burst (Bursts grows), it just never changes one.
func TestSchedulerDifferentialFaultRateZero(t *testing.T) {
	mixes := 120
	if testing.Short() {
		mixes = 25
	}
	for mix := 0; mix < mixes; mix++ {
		rng := rand.New(rand.NewSource(int64(mix)*6959 + 3))
		devCfg, cfg := randomMixConfig(rng)

		devA := dram.NewDevice(devCfg)
		devB := dram.NewDevice(devCfg)
		in := fault.New(fault.Config{Seed: uint64(mix), Rate: 0}, ecc.SchemeSSC, true)
		devA.Probe = in
		cFault := NewController(devA, cfg)
		cPlain := NewController(devB, cfg)
		cFault.Audit = dram.NewAuditor(devCfg)
		cPlain.Audit = dram.NewAuditor(devCfg)

		n := 40 + rng.Intn(90)
		reqs := randomStream(rng, cFault.AddrMap(), devCfg, n)

		for _, r := range reqs {
			for !cFault.CanAccept(r.IsWrite) {
				if cPlain.CanAccept(r.IsWrite) {
					t.Fatalf("mix %d: CanAccept diverged before req %d", mix, r.ID)
				}
				if !serviceBoth(t, mix, cFault, cPlain) {
					t.Fatalf("mix %d: both queues at capacity with nothing to service", mix)
				}
			}
			cFault.Enqueue(r)
			cPlain.Enqueue(r)
			if rng.Intn(3) == 0 {
				serviceBoth(t, mix, cFault, cPlain)
			}
		}
		for serviceBoth(t, mix, cFault, cPlain) {
		}

		if cFault.Stats != cPlain.Stats {
			t.Fatalf("mix %d: Stats diverged:\n fault: %+v\n plain: %+v", mix, cFault.Stats, cPlain.Stats)
		}
		if !reflect.DeepEqual(devA.Stats, devB.Stats) {
			t.Fatalf("mix %d: device stats diverged:\n fault: %+v\n plain: %+v", mix, devA.Stats, devB.Stats)
		}
		if cFault.Now() != cPlain.Now() {
			t.Fatalf("mix %d: clocks diverged: fault=%d plain=%d", mix, cFault.Now(), cPlain.Now())
		}
		hA, hB := cFault.Audit.History(), cPlain.Audit.History()
		if len(hA) != len(hB) {
			t.Fatalf("mix %d: command counts diverged: fault=%d plain=%d", mix, len(hA), len(hB))
		}
		for i := range hA {
			if hA[i] != hB[i] {
				t.Fatalf("mix %d: command %d diverged:\n fault: %+v\n plain: %+v", mix, i, hA[i], hB[i])
			}
		}

		c := in.Counters
		if c.Bursts == 0 {
			t.Fatalf("mix %d: injector never saw a data burst", mix)
		}
		if c.Injected != 0 || c.Transparent != 0 || c.CorrectedBursts != 0 ||
			c.DUEs != 0 || c.SilentCorruptions != 0 {
			t.Fatalf("mix %d: rate-0 injector touched data: %+v", mix, c)
		}
		if cFault.Stats.Retries != 0 || cFault.Stats.Poisoned != 0 {
			t.Fatalf("mix %d: rate-0 run retried or poisoned: %+v", mix, cFault.Stats)
		}
	}
}

// scriptedProbe plays back a fixed verdict sequence, one per read burst
// (write bursts always come back clean), then reports clean forever.
type scriptedProbe struct {
	verdicts []dram.BurstVerdict
	reads    int
}

func (p *scriptedProbe) DataBurst(cmd dram.Command, _ dram.Cycle) dram.BurstVerdict {
	if cmd.Kind != dram.CmdRD {
		return dram.BurstOK
	}
	i := p.reads
	p.reads++
	if i < len(p.verdicts) {
		return p.verdicts[i]
	}
	return dram.BurstOK
}

// oneRead builds a controller over a scripted probe, services a single read,
// and returns the completion plus the pieces the assertions need.
func oneRead(t *testing.T, cfg Config, probe *scriptedProbe) (Completion, *Controller, *recordingTracer) {
	t.Helper()
	dev := dram.NewDevice(dram.DDR4_2400())
	dev.Probe = probe
	c := NewController(dev, cfg)
	rec := &recordingTracer{}
	c.Trace = rec
	c.Enqueue(Request{ID: 1, Addr: 0x4000})
	comp, ok := c.ServiceOne()
	if !ok {
		t.Fatal("ServiceOne serviced nothing")
	}
	return comp, c, rec
}

func faultEvents(rec *recordingTracer) []recordedEvent {
	var out []recordedEvent
	for _, e := range rec.events {
		if e.kind == 'f' {
			out = append(out, e)
		}
	}
	return out
}

// TestControllerRetryRecovers: a burst that decodes uncorrectable twice and
// then clean (a transient that is re-drawn away on the re-issued burst) must
// cost exactly two retries, no poison, and push the data window later than
// the fault-free run.
func TestControllerRetryRecovers(t *testing.T) {
	probe := &scriptedProbe{verdicts: []dram.BurstVerdict{
		dram.BurstUncorrectable, dram.BurstUncorrectable,
	}}
	comp, c, rec := oneRead(t, DefaultConfig(), probe)

	clean, cc, _ := oneRead(t, DefaultConfig(), &scriptedProbe{})

	if comp.Retries != 2 || comp.Poisoned {
		t.Fatalf("completion: retries=%d poisoned=%v, want 2/false", comp.Retries, comp.Poisoned)
	}
	if c.Stats.Retries != 2 || c.Stats.Poisoned != 0 {
		t.Fatalf("stats: %+v", c.Stats)
	}
	if probe.reads != 3 {
		t.Fatalf("probe saw %d read bursts, want 3 (initial + 2 retries)", probe.reads)
	}
	if got, want := c.Stats.IssuedCommands, cc.Stats.IssuedCommands+2; got != want {
		t.Fatalf("issued %d commands, want %d (clean + 2 re-issues)", got, want)
	}
	if comp.DataEnd <= clean.DataEnd {
		t.Fatalf("retried read finished at %d, clean at %d: retries must cost cycles",
			comp.DataEnd, clean.DataEnd)
	}
	fe := faultEvents(rec)
	if len(fe) != 2 {
		t.Fatalf("recorded %d fault events, want 2 failed attempts: %+v", len(fe), fe)
	}
	for i, e := range fe {
		if e.depth != i {
			t.Fatalf("fault event %d carries attempt %d", i, e.depth)
		}
	}
}

// TestControllerPoisonAfterMaxRetries: a persistently uncorrectable burst
// (a two-chip fault map never heals on re-read) exhausts MaxRetries and the
// completion comes back poisoned, with every failed attempt traced exactly
// once — attempts 0..MaxRetries-1 as plain faults, the last as the poison
// event.
func TestControllerPoisonAfterMaxRetries(t *testing.T) {
	always := make([]dram.BurstVerdict, 16)
	for i := range always {
		always[i] = dram.BurstUncorrectable
	}
	cfg := DefaultConfig()
	probe := &scriptedProbe{verdicts: always}
	comp, c, rec := oneRead(t, cfg, probe)

	if !comp.Poisoned || int(comp.Retries) != cfg.MaxRetries {
		t.Fatalf("completion: retries=%d poisoned=%v, want %d/true",
			comp.Retries, comp.Poisoned, cfg.MaxRetries)
	}
	if c.Stats.Retries != uint64(cfg.MaxRetries) || c.Stats.Poisoned != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
	if probe.reads != cfg.MaxRetries+1 {
		t.Fatalf("probe saw %d read bursts, want %d", probe.reads, cfg.MaxRetries+1)
	}
	fe := faultEvents(rec)
	if len(fe) != cfg.MaxRetries+1 {
		t.Fatalf("recorded %d fault events, want %d: %+v", len(fe), cfg.MaxRetries+1, fe)
	}
	for i, e := range fe {
		if e.depth != i {
			t.Fatalf("fault event %d carries attempt %d", i, e.depth)
		}
	}
}

// TestControllerPoisonNoRetries: MaxRetries 0 must poison immediately
// without re-issuing the column.
func TestControllerPoisonNoRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 0
	probe := &scriptedProbe{verdicts: []dram.BurstVerdict{dram.BurstUncorrectable}}
	comp, c, _ := oneRead(t, cfg, probe)
	if !comp.Poisoned || comp.Retries != 0 {
		t.Fatalf("completion: retries=%d poisoned=%v, want 0/true", comp.Retries, comp.Poisoned)
	}
	if c.Stats.Retries != 0 || c.Stats.Poisoned != 1 || probe.reads != 1 {
		t.Fatalf("stats %+v, probe reads %d", c.Stats, probe.reads)
	}
}

// TestControllerWriteFaultNotRetried: the retry path is read-only — an
// uncorrectable verdict on a write burst (scrubbing is the array's job, not
// the issue path's) must not retry or poison.
func TestControllerWriteFaultNotRetried(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	calls := 0
	dev.Probe = probeFunc(func(cmd dram.Command, _ dram.Cycle) dram.BurstVerdict {
		if cmd.Kind == dram.CmdWR {
			calls++
			return dram.BurstUncorrectable
		}
		return dram.BurstOK
	})
	c := NewController(dev, DefaultConfig())
	c.Enqueue(Request{ID: 1, Addr: 0x4000, IsWrite: true})
	comp, ok := c.ServiceOne()
	if !ok {
		t.Fatal("ServiceOne serviced nothing")
	}
	if calls != 1 {
		t.Fatalf("write burst probed %d times, want 1 (no retries)", calls)
	}
	if comp.Poisoned || comp.Retries != 0 || c.Stats.Retries != 0 || c.Stats.Poisoned != 0 {
		t.Fatalf("write fault escalated: comp=%+v stats=%+v", comp, c.Stats)
	}
}

// probeFunc adapts a closure to dram.BurstProbe.
type probeFunc func(dram.Command, dram.Cycle) dram.BurstVerdict

func (f probeFunc) DataBurst(cmd dram.Command, at dram.Cycle) dram.BurstVerdict {
	return f(cmd, at)
}
