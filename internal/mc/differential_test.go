package mc

import (
	"math/rand"
	"reflect"
	"testing"

	"sam/internal/dram"
)

// diffMixes is how many randomized request mixes the differential test
// drives through both schedulers (the acceptance bar is >= 1000).
const diffMixes = 1000

// randomMixConfig draws a controller configuration for one mix: varied
// queue capacities and drain watermarks (so back-pressure and write-drain
// hysteresis trip at different depths), both interleavings, and all three
// device personalities (DDR4 with refresh, refresh-free RRAM with write
// pulses, DDR5 with doubled bank groups).
func randomMixConfig(rng *rand.Rand) (dram.Config, Config) {
	devCfg := dram.DDR4_2400()
	switch rng.Intn(4) {
	case 0:
		devCfg = dram.RRAM()
	case 1:
		devCfg = dram.DDR5_4800()
	}
	cfg := DefaultConfig()
	if rng.Intn(2) == 0 {
		wcap := 8 << rng.Intn(3) // 8, 16, 32
		cfg.WriteQueueCap = wcap
		cfg.WriteDrainHigh = wcap * 3 / 4
		cfg.WriteDrainLow = wcap / 4
		cfg.ReadQueueCap = 8 << rng.Intn(4) // 8..64
	}
	if rng.Intn(2) == 0 {
		cfg.Interleave = BanksLow
	}
	return devCfg, cfg
}

// randomStream generates one mix's request sequence: row-local runs (row
// hits), scattered conflicts, bursts of writes (to trip the drain
// watermarks), strided requests with random lanes, ganged strided bursts,
// and occasional arrival jumps past tREFI (to force refresh batching).
func randomStream(rng *rand.Rand, m *AddrMap, devCfg dram.Config, n int) []Request {
	reqs := make([]Request, 0, n)
	var arrival dram.Cycle
	var writeRun int
	base := m.Decode(uint64(rng.Intn(1 << 28)))
	for i := 0; i < n; i++ {
		var addr uint64
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // row-local: same row as base, new column
			co := base
			co.Col = rng.Intn(m.geo.LinesPerRow())
			addr = m.Encode(co)
		case 4: // bank conflict: same bank as base, different row
			co := base
			co.Row = rng.Intn(1 << 12)
			addr = m.Encode(co)
		case 5: // re-anchor the locality window
			base = m.Decode(uint64(rng.Intn(1 << 28)))
			addr = m.Encode(base)
		default: // scattered
			addr = uint64(rng.Intn(1 << 28))
		}
		r := Request{ID: uint64(i), Addr: addr, Arrival: arrival}
		if writeRun > 0 {
			writeRun--
			r.IsWrite = true
		} else if rng.Intn(12) == 0 {
			// A write burst long enough to cross the drain high watermark.
			writeRun = 8 + rng.Intn(30)
			r.IsWrite = true
		} else if rng.Intn(4) == 0 {
			r.IsWrite = true
		}
		if rng.Intn(5) == 0 {
			r.Stride = true
			r.Lane = rng.Intn(4)
			r.Gang = rng.Intn(3) == 0
		}
		switch rng.Intn(50) {
		case 0: // jump past the refresh deadline
			arrival += dram.Cycle(devCfg.Timing.TREFI) + dram.Cycle(rng.Intn(500))
		case 1: // long idle gap (drains both queues between bursts)
			arrival += dram.Cycle(1000 + rng.Intn(4000))
		case 2, 3: // out-of-order delivery: step the clock backwards so the
			// queues lose arrival-sortedness and the scheduler's O(n)
			// fallback scans run instead of its sorted fast paths
			if arrival > 60 {
				arrival -= dram.Cycle(rng.Intn(60))
			}
		default:
			arrival += dram.Cycle(rng.Intn(25))
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// serviceBoth runs one ServiceOne on each scheduler and asserts the
// completions agree byte for byte.
func serviceBoth(t *testing.T, mix int, a, b scheduler) bool {
	t.Helper()
	ca, oka := a.ServiceOne()
	cb, okb := b.ServiceOne()
	if oka != okb {
		t.Fatalf("mix %d: ServiceOne ok diverged: new=%v ref=%v", mix, oka, okb)
	}
	if ca != cb {
		t.Fatalf("mix %d: completion diverged:\n new: %+v\n ref: %+v", mix, ca, cb)
	}
	return oka
}

// TestSchedulerDifferential is the equivalence proof for the decode-once
// scheduler: on randomized request mixes spanning stride/gang/write-drain/
// refresh behaviour, the new Controller and the frozen reference scheduler
// must produce identical completion streams, identical controller Stats,
// and identical device-level command accounting.
func TestSchedulerDifferential(t *testing.T) {
	mixes := diffMixes
	if testing.Short() {
		mixes = 150
	}
	for mix := 0; mix < mixes; mix++ {
		rng := rand.New(rand.NewSource(int64(mix)*7919 + 1))
		devCfg, cfg := randomMixConfig(rng)

		devA := dram.NewDevice(devCfg)
		devB := dram.NewDevice(devCfg)
		cNew := NewController(devA, cfg)
		cRef := newReferenceController(devB, cfg)

		n := 40 + rng.Intn(90)
		reqs := randomStream(rng, cNew.AddrMap(), devCfg, n)

		for _, r := range reqs {
			for !cNew.CanAccept(r.IsWrite) {
				if cRef.CanAccept(r.IsWrite) {
					t.Fatalf("mix %d: CanAccept diverged before req %d", mix, r.ID)
				}
				if !serviceBoth(t, mix, cNew, cRef) {
					t.Fatalf("mix %d: both queues at capacity with nothing to service", mix)
				}
			}
			if !cRef.CanAccept(r.IsWrite) {
				t.Fatalf("mix %d: reference rejects req %d the new scheduler accepts", mix, r.ID)
			}
			cNew.Enqueue(r)
			cRef.Enqueue(r)
			if rng.Intn(3) == 0 {
				serviceBoth(t, mix, cNew, cRef)
			}
		}
		for serviceBoth(t, mix, cNew, cRef) {
		}

		if cNew.Stats != cRef.Stats {
			t.Fatalf("mix %d: Stats diverged:\n new: %+v\n ref: %+v", mix, cNew.Stats, cRef.Stats)
		}
		if !reflect.DeepEqual(devA.Stats, devB.Stats) {
			t.Fatalf("mix %d: device stats diverged:\n new: %+v\n ref: %+v", mix, devA.Stats, devB.Stats)
		}
		if cNew.Now() != cRef.Now() {
			t.Fatalf("mix %d: clocks diverged: new=%d ref=%d", mix, cNew.Now(), cRef.Now())
		}
		if got, want := cNew.Stats.Reads+cNew.Stats.Writes, uint64(n); got != want {
			t.Fatalf("mix %d: serviced %d of %d requests", mix, got, want)
		}
	}
}

// TestSchedulerDifferentialAudited re-runs a slice of the differential
// space with protocol auditors attached to both schedulers: equivalence
// must hold for the issued command streams too, and both must stay
// JEDEC-legal (gang-free mixes; ganged ACTs intentionally skip the mirror
// rank's bookkeeping, which the auditor flags by design).
func TestSchedulerDifferentialAudited(t *testing.T) {
	mixes := 60
	if testing.Short() {
		mixes = 10
	}
	for mix := 0; mix < mixes; mix++ {
		rng := rand.New(rand.NewSource(int64(mix)*104729 + 5))
		devCfg, cfg := randomMixConfig(rng)

		devA := dram.NewDevice(devCfg)
		devB := dram.NewDevice(devCfg)
		cNew := NewController(devA, cfg)
		cRef := newReferenceController(devB, cfg)
		cNew.Audit = dram.NewAuditor(devCfg)
		cRef.Audit = dram.NewAuditor(devCfg)

		reqs := randomStream(rng, cNew.AddrMap(), devCfg, 60+rng.Intn(60))
		for i := range reqs {
			reqs[i].Gang = false
		}
		for _, r := range reqs {
			for !cNew.CanAccept(r.IsWrite) {
				serviceBoth(t, mix, cNew, cRef)
			}
			cNew.Enqueue(r)
			cRef.Enqueue(r)
			if rng.Intn(3) == 0 {
				serviceBoth(t, mix, cNew, cRef)
			}
		}
		for serviceBoth(t, mix, cNew, cRef) {
		}

		if !cNew.Audit.Ok() {
			t.Fatalf("mix %d: new scheduler protocol violation: %s", mix, cNew.Audit.Violations[0])
		}
		if !cRef.Audit.Ok() {
			t.Fatalf("mix %d: reference protocol violation: %s", mix, cRef.Audit.Violations[0])
		}
		hNew, hRef := cNew.Audit.History(), cRef.Audit.History()
		if len(hNew) != len(hRef) {
			t.Fatalf("mix %d: command counts diverged: new=%d ref=%d", mix, len(hNew), len(hRef))
		}
		for i := range hNew {
			if hNew[i] != hRef[i] {
				t.Fatalf("mix %d: command %d diverged:\n new: %+v\n ref: %+v",
					mix, i, hNew[i], hRef[i])
			}
		}
	}
}
