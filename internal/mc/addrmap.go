// Package mc implements the memory controller: physical address mapping,
// the FR-FCFS open-page command scheduler with a drained write queue, and
// refresh management — the controller personality Table 2 of the paper
// specifies (open-page, FR-FCFS, 32-entry write queue, rw:rk:bk:ch:cl:offset
// mapping).
package mc

import (
	"fmt"
	"math/bits"

	"sam/internal/dram"
)

// Interleave selects the field order of the physical address map.
type Interleave int

// Interleavings.
const (
	// ColumnsLow is the paper's rw:rk:bk:ch:cl:offset order: consecutive
	// cachelines walk the columns of one row (row-buffer friendly
	// streaming, tCCD_L-paced within a bank group).
	ColumnsLow Interleave = iota
	// BanksLow rotates consecutive cachelines across banks
	// (rw:cl:ch:rk:bk:offset): worse row locality, better bank-level
	// parallelism — the classic interleaving trade-off, exposed for the
	// ablation bench.
	BanksLow
)

// String names the interleaving.
func (i Interleave) String() string {
	if i == BanksLow {
		return "banks-low"
	}
	return "columns-low"
}

// AddrMap translates flat physical addresses to DRAM coordinates. The
// default order is the paper's rw:rk:bk:ch:cl:offset layout (row in the
// most significant bits, byte offset in the least).
type AddrMap struct {
	geo dram.Geometry
	il  Interleave

	offBits, colBits, chBits, bankBits, rankBits int
}

// NewAddrMap builds the paper's default mapping; it panics when a field is
// not a power of two (hardware address decoding requires it).
func NewAddrMap(geo dram.Geometry) *AddrMap {
	return NewAddrMapInterleave(geo, ColumnsLow)
}

// NewAddrMapInterleave builds a mapping with the chosen field order.
func NewAddrMapInterleave(geo dram.Geometry, il Interleave) *AddrMap {
	log2 := func(v int, what string) int {
		if v <= 0 || v&(v-1) != 0 {
			panic(fmt.Sprintf("mc: %s = %d is not a power of two", what, v))
		}
		return bits.TrailingZeros(uint(v))
	}
	return &AddrMap{
		geo:      geo,
		il:       il,
		offBits:  log2(geo.LineBytes, "line bytes"),
		colBits:  log2(geo.LinesPerRow(), "lines per row"),
		chBits:   log2(geo.Channels, "channels"),
		bankBits: log2(geo.Banks(), "banks per rank"),
		rankBits: log2(geo.Ranks, "ranks"),
	}
}

// Coord is a fully decoded DRAM location.
type Coord struct {
	Channel int
	Rank    int
	Group   int
	Bank    int
	Row     int
	Col     int // cacheline column within the row
	Offset  int // byte offset within the line
}

// Decode splits a physical address into DRAM coordinates.
func (m *AddrMap) Decode(addr uint64) Coord {
	take := func(n int) int {
		v := addr & (1<<uint(n) - 1)
		addr >>= uint(n)
		return int(v)
	}
	var c Coord
	c.Offset = take(m.offBits)
	switch m.il {
	case BanksLow:
		bank := take(m.bankBits)
		c.Group = bank % m.geo.BankGroups
		c.Bank = bank / m.geo.BankGroups
		c.Rank = take(m.rankBits)
		c.Channel = take(m.chBits)
		c.Col = take(m.colBits)
	default:
		c.Col = take(m.colBits)
		c.Channel = take(m.chBits)
		bank := take(m.bankBits)
		c.Group = bank % m.geo.BankGroups
		c.Bank = bank / m.geo.BankGroups
		c.Rank = take(m.rankBits)
	}
	c.Row = int(addr)
	return c
}

// Channel extracts just the channel field of addr without a full Decode —
// the per-request routing lookup the simulator performs on every enqueue.
func (m *AddrMap) Channel(addr uint64) int {
	var shift int
	switch m.il {
	case BanksLow:
		shift = m.offBits + m.bankBits + m.rankBits
	default:
		shift = m.offBits + m.colBits
	}
	return int((addr >> uint(shift)) & (1<<uint(m.chBits) - 1))
}

// Encode is the inverse of Decode.
func (m *AddrMap) Encode(c Coord) uint64 {
	addr := uint64(c.Row)
	switch m.il {
	case BanksLow:
		addr = addr<<uint(m.colBits) | uint64(c.Col)
		addr = addr<<uint(m.chBits) | uint64(c.Channel)
		addr = addr<<uint(m.rankBits) | uint64(c.Rank)
		addr = addr<<uint(m.bankBits) | uint64(c.Bank*m.geo.BankGroups+c.Group)
	default:
		addr = addr<<uint(m.rankBits) | uint64(c.Rank)
		addr = addr<<uint(m.bankBits) | uint64(c.Bank*m.geo.BankGroups+c.Group)
		addr = addr<<uint(m.chBits) | uint64(c.Channel)
		addr = addr<<uint(m.colBits) | uint64(c.Col)
	}
	addr = addr<<uint(m.offBits) | uint64(c.Offset)
	return addr
}

// LineAddr clears the intra-line offset.
func (m *AddrMap) LineAddr(addr uint64) uint64 {
	return addr &^ (1<<uint(m.offBits) - 1)
}

// LineBytes returns the cacheline size the map was built for.
func (m *AddrMap) LineBytes() int { return m.geo.LineBytes }

// StrideRemap implements the stride-mode virtual-to-physical bit swap of
// Fig. 10: under stride mode, a small segment of the page offset exchanges
// places with the bits selecting consecutive cachelines' rows/sub-rows, so
// that the same-offset sectors of N group-aligned cachelines land in the
// positions one strided burst gathers.
//
// Concretely, reachBits = log2(N) line-index bits are swapped with the
// sector-index bits directly above the sector offset. The transform is an
// involution (applying it twice yields the original address).
type StrideRemap struct {
	SectorBytes int // strided granularity in bytes (16 for SSC 8-bit/chip)
	Reach       int // cachelines gathered per strided burst (N = 4 or 8)
	LineBytes   int
}

// Remap applies the bit swap. With sectorBits = log2(LineBytes/SectorBytes)
// sector-index bits sitting above log2(SectorBytes) offset bits, and
// reachBits line-index bits above those, the two fields exchange places.
func (s StrideRemap) Remap(addr uint64) uint64 {
	secSize := uint(bits.TrailingZeros(uint(s.SectorBytes)))
	secBits := uint(bits.TrailingZeros(uint(s.LineBytes / s.SectorBytes)))
	reachBits := uint(bits.TrailingZeros(uint(s.Reach)))

	low := addr & (1<<secSize - 1)                             // offset within sector
	sector := (addr >> secSize) & (1<<secBits - 1)             // sector index within line
	line := (addr >> (secSize + secBits)) & (1<<reachBits - 1) // line index within group
	high := addr >> (secSize + secBits + reachBits)

	// Swap the sector and line fields.
	out := high
	out = out<<secBits | sector
	out = out<<reachBits | line
	out = out<<secSize | low
	return out
}

// Valid reports whether the remap geometry is self-consistent.
func (s StrideRemap) Valid() bool {
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	return pow2(s.SectorBytes) && pow2(s.Reach) && pow2(s.LineBytes) &&
		s.SectorBytes <= s.LineBytes &&
		s.LineBytes%s.SectorBytes == 0 &&
		// The swap only works when both fields have equal total width or,
		// as here, we relocate fields of possibly different widths — the
		// transform above is a bijection regardless, but reach and sector
		// counts must each fit their fields.
		s.Reach >= 1
}
