package mc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sam/internal/dram"
)

// qOrder walks the arrival-order list and returns the request IDs.
func qOrder(q *reqQueue) []uint64 {
	var ids []uint64
	for i := q.head; i != nilSlot; i = q.slots[i].next {
		ids = append(ids, q.slots[i].req.ID)
	}
	return ids
}

// qBank walks one bank's pending list and returns the request IDs as a set.
func qBank(q *reqQueue, bank int) map[uint64]bool {
	ids := make(map[uint64]bool)
	for i := q.bankHead[bank]; i != nilSlot; i = q.slots[i].bankNext {
		ids[q.slots[i].req.ID] = true
	}
	return ids
}

func TestReqQueueOrderAndBankIndex(t *testing.T) {
	// Model-based check: against a plain slice model, the queue must keep
	// enqueue order under arbitrary interleaved removals, and each bank
	// list must hold exactly the pending requests of that bank.
	rng := rand.New(rand.NewSource(99))
	const banks = 8
	q := newReqQueue(16, banks)
	type modelEntry struct {
		id   uint64
		bank int32
	}
	var model []modelEntry
	var nextID uint64
	for step := 0; step < 5000; step++ {
		if q.n != len(model) {
			t.Fatalf("step %d: n=%d model=%d", step, q.n, len(model))
		}
		if q.n < 16 && (q.n == 0 || rng.Intn(2) == 0) {
			bank := int32(rng.Intn(banks))
			q.push(Request{ID: nextID}, Coord{}, bank, nextID)
			model = append(model, modelEntry{nextID, bank})
			nextID++
		} else {
			// Remove a random live entry by walking to the k-th slot.
			k := rng.Intn(len(model))
			slot := q.head
			for j := 0; j < k; j++ {
				slot = q.slots[slot].next
			}
			if q.slots[slot].req.ID != model[k].id {
				t.Fatalf("step %d: order diverged at %d: %d vs %d", step, k, q.slots[slot].req.ID, model[k].id)
			}
			q.remove(slot)
			model = append(model[:k], model[k+1:]...)
		}
		// Full order check.
		ids := qOrder(&q)
		if len(ids) != len(model) {
			t.Fatalf("step %d: order length %d, want %d", step, len(ids), len(model))
		}
		for i, id := range ids {
			if id != model[i].id {
				t.Fatalf("step %d: order[%d]=%d, want %d", step, i, id, model[i].id)
			}
		}
		// Bank list check.
		for b := 0; b < banks; b++ {
			got := qBank(&q, b)
			want := make(map[uint64]bool)
			for _, e := range model {
				if e.bank == int32(b) {
					want[e.id] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("step %d bank %d: %v vs %v", step, b, got, want)
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("step %d bank %d: missing %d", step, b, id)
				}
			}
		}
	}
}

func TestReqQueueCapacityReuse(t *testing.T) {
	// Fill/drain cycles must recycle the same slots without growth.
	q := newReqQueue(4, 2)
	for round := 0; round < 100; round++ {
		for i := 0; i < 4; i++ {
			q.push(Request{ID: uint64(i)}, Coord{}, int32(i%2), uint64(i))
		}
		if q.n != 4 {
			t.Fatalf("n=%d", q.n)
		}
		// Remove out of order: middle, head, tail, last.
		order := qOrder(&q)
		_ = order
		q.remove(q.slots[q.head].next) // second
		q.remove(q.head)
		q.remove(q.tail)
		q.remove(q.head)
		if q.n != 0 || q.head != nilSlot || q.tail != nilSlot {
			t.Fatalf("round %d: queue not empty: n=%d head=%d tail=%d", round, q.n, q.head, q.tail)
		}
	}
}

func TestReqQueueOverflowPanics(t *testing.T) {
	q := newReqQueue(2, 1)
	q.push(Request{}, Coord{}, 0, 0)
	q.push(Request{}, Coord{}, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow accepted")
		}
	}()
	q.push(Request{}, Coord{}, 0, 2)
}

func TestAddrMapChannelAgreesWithDecode(t *testing.T) {
	geo := dram.DDR4_2400().Geometry
	geo.Channels = 4
	for _, il := range []Interleave{ColumnsLow, BanksLow} {
		m := NewAddrMapInterleave(geo, il)
		f := func(addr uint64) bool {
			addr &= 1<<33 - 1
			return m.Channel(addr) == m.Decode(addr).Channel
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%v: %v", il, err)
		}
	}
}

// TestEnqueueDecodesOnce pins the decode-once property structurally: the
// entry stored at Enqueue must carry the same coordinates and flat bank
// index the amap/device would produce on demand.
func TestEnqueueDecodesOnce(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	c := NewController(dev, DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1 << 28))
		c.Enqueue(Request{ID: uint64(i), Addr: addr, IsWrite: i%2 == 0})
		q := &c.readQ
		if i%2 == 0 {
			q = &c.writeQ
		}
		e := &q.slots[q.tail]
		if want := c.AddrMap().Decode(addr); e.co != want {
			t.Fatalf("stored coord %+v, want %+v", e.co, want)
		}
		if want := dev.BankIndex(e.co.Rank, e.co.Group, e.co.Bank); int(e.bank) != want {
			t.Fatalf("stored bank %d, want %d", e.bank, want)
		}
		if c.Pending() > 16 {
			c.ServiceOne()
			c.ServiceOne()
		}
	}
}
