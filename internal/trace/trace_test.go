package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sam/internal/dram"
	"sam/internal/mc"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.Add(Record{Addr: 0x1000, Arrival: 10})
	t.Add(Record{Addr: 0x2040, IsWrite: true, Arrival: 20})
	t.Add(Record{Addr: 0x3000, Stride: true, Lane: 2, Gang: true, Arrival: 30})
	t.Add(Record{Addr: 0x4000, Stride: true, IsWrite: true, Lane: 1, Arrival: 44})
	return t
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Records, back.Records) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr.Records, back.Records)
	}
}

func TestTraceTextFormat(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	tr.Write(&buf)
	out := buf.String()
	for _, want := range []string{"R 0x00001000 @10", "W 0x00002040 @20", "S 0x00003000 lane=2 gang @30", "T 0x00004000 lane=1 @44"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace text missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\nR 0x00000040 @5\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Records[0].Addr != 0x40 {
		t.Fatalf("parsed %+v", tr.Records)
	}
}

func TestTraceParseErrors(t *testing.T) {
	bad := []string{
		"X 0x1000 @5",
		"R nothex @5",
		"R 0x1000 lane=z @5",
		"R 0x1000 mystery @5",
		"R 0x1000",
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestRequestConversion(t *testing.T) {
	r := Record{Addr: 0xABC0, Stride: true, Lane: 3, Arrival: 99}
	req := r.Request(7)
	if req.ID != 7 || req.Addr != 0xABC0 || !req.Stride || req.Lane != 3 || req.Arrival != 99 {
		t.Fatalf("conversion lost fields: %+v", req)
	}
	if FromRequest(req) != r {
		t.Fatal("FromRequest not inverse of Request")
	}
}

func TestReplayDrivesController(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	ctrl := mc.NewController(dev, mc.DefaultConfig())
	tr := &Trace{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		tr.Add(Record{
			Addr:    uint64(rng.Intn(1 << 24)),
			IsWrite: rng.Intn(4) == 0,
			Arrival: dram.Cycle(i * 3),
		})
	}
	comps := Replay(tr, ctrl)
	if len(comps) != 500 {
		t.Fatalf("replayed %d completions, want 500", len(comps))
	}
	if ctrl.Stats.Reads+ctrl.Stats.Writes != 500 {
		t.Fatalf("controller stats: %+v", ctrl.Stats)
	}
}

func TestReplayDeterministic(t *testing.T) {
	mk := func() []mc.Completion {
		dev := dram.NewDevice(dram.DDR4_2400())
		ctrl := mc.NewController(dev, mc.DefaultConfig())
		tr := sampleTrace()
		return Replay(tr, ctrl)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replay not deterministic")
	}
}

// FuzzRead is a native fuzz target for the trace parser: arbitrary input
// must never panic, and anything that parses must round-trip through the
// text format.
func FuzzRead(f *testing.F) {
	f.Add("R 0x00001000 @10\n")
	f.Add("S 0x00003000 lane=2 gang @30\nT 0x00004000 lane=1 @44\n")
	f.Add("# comment\n\nW 0x0 @0\n")
	f.Add("X bogus\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("write of parsed trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !reflect.DeepEqual(tr.Records, back.Records) {
			t.Fatal("round trip changed records")
		}
	})
}
