package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sam/internal/dram"
	"sam/internal/mc"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.Add(Record{Addr: 0x1000, Arrival: 10})
	t.Add(Record{Addr: 0x2040, IsWrite: true, Arrival: 20})
	t.Add(Record{Addr: 0x3000, Stride: true, Lane: 2, Gang: true, Arrival: 30})
	t.Add(Record{Addr: 0x4000, Stride: true, IsWrite: true, Lane: 1, Arrival: 44})
	return t
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Records, back.Records) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr.Records, back.Records)
	}
}

func TestTraceTextFormat(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	tr.Write(&buf)
	out := buf.String()
	for _, want := range []string{"R 0x00001000 @10", "W 0x00002040 @20", "S 0x00003000 lane=2 gang @30", "T 0x00004000 lane=1 @44"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace text missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\nR 0x00000040 @5\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Records[0].Addr != 0x40 {
		t.Fatalf("parsed %+v", tr.Records)
	}
}

func TestTraceParseErrors(t *testing.T) {
	bad := []string{
		"X 0x1000 @5",
		"R nothex @5",
		"R 0x1000 lane=z @5",
		"R 0x1000 mystery @5",
		"R 0x1000",
		// Strict-token violations the old Sscanf parser accepted.
		"S 0x1000 lane=3junk @5",
		"R 0x1000 @12x",
		"R 0x1000x @5",
		"S 0x1000 lane=1 lane=2 @5",
		"S 0x1000 gang gang @5",
		"R 0x1000 @5 @6",
		"S 0x1000 lane=-1 @5",
		"R 0x1000 @-5",
		// Fields only legal on strided records, and a missing arrival.
		"R 0x1000 lane=1 @5",
		"W 0x1000 gang @5",
		"S 0x1000 lane=1",
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

// TestRecordRoundTripProperty asserts parseLine(rec.String()) == rec over
// every representable record shape: all four kinds, gang on/off, and
// boundary addresses/lanes/arrivals.
func TestRecordRoundTripProperty(t *testing.T) {
	addrs := []uint64{0, 0x40, 0x00001040, 1 << 33, ^uint64(0)}
	lanes := []int{0, 1, 3, 1 << 20}
	arrivals := []dram.Cycle{0, 1, 120, 1<<62 - 1}
	for _, isWrite := range []bool{false, true} {
		for _, stride := range []bool{false, true} {
			for _, gang := range []bool{false, true} {
				for _, addr := range addrs {
					for _, lane := range lanes {
						for _, at := range arrivals {
							rec := Record{Addr: addr, IsWrite: isWrite, Stride: stride, Arrival: at}
							if stride {
								rec.Lane, rec.Gang = lane, gang
							} else if lane != 0 || gang {
								continue // not representable in the text format
							}
							back, err := parseLine(rec.String())
							if err != nil {
								t.Fatalf("parseLine(%q): %v", rec.String(), err)
							}
							if back != rec {
								t.Fatalf("round trip changed %+v -> %+v (line %q)", rec, back, rec.String())
							}
						}
					}
				}
			}
		}
	}
}

// FuzzRecordRoundTrip is the fuzz form of the round-trip property: for any
// canonical record (lane/gang only on strided records, non-negative
// arrival), String followed by parseLine is the identity.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(0x1040), false, false, uint32(0), false, uint64(120))
	f.Add(uint64(0x3000), false, true, uint32(2), true, uint64(500))
	f.Add(^uint64(0), true, true, uint32(1<<31-1), false, uint64(1)<<62)
	f.Fuzz(func(t *testing.T, addr uint64, isWrite, stride bool, lane uint32, gang bool, arrival uint64) {
		rec := Record{Addr: addr, IsWrite: isWrite, Stride: stride, Arrival: dram.Cycle(arrival % (1 << 62))}
		if stride {
			rec.Lane = int(lane % (1 << 30))
			rec.Gang = gang
		}
		back, err := parseLine(rec.String())
		if err != nil {
			t.Fatalf("parseLine(%q): %v", rec.String(), err)
		}
		if back != rec {
			t.Fatalf("round trip changed %+v -> %+v", rec, back)
		}
	})
}

func TestRequestConversion(t *testing.T) {
	r := Record{Addr: 0xABC0, Stride: true, Lane: 3, Arrival: 99}
	req := r.Request(7)
	if req.ID != 7 || req.Addr != 0xABC0 || !req.Stride || req.Lane != 3 || req.Arrival != 99 {
		t.Fatalf("conversion lost fields: %+v", req)
	}
	if FromRequest(req) != r {
		t.Fatal("FromRequest not inverse of Request")
	}
}

func TestReplayDrivesController(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	ctrl := mc.NewController(dev, mc.DefaultConfig())
	tr := &Trace{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		tr.Add(Record{
			Addr:    uint64(rng.Intn(1 << 24)),
			IsWrite: rng.Intn(4) == 0,
			Arrival: dram.Cycle(i * 3),
		})
	}
	comps, err := Replay(tr, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 500 {
		t.Fatalf("replayed %d completions, want 500", len(comps))
	}
	if ctrl.Stats.Reads+ctrl.Stats.Writes != 500 {
		t.Fatalf("controller stats: %+v", ctrl.Stats)
	}
}

func TestReplayAtQueueCapacity(t *testing.T) {
	// Tiny queues with a same-cycle burst force the back-pressure loop to
	// service between every enqueue. All records must still complete — the
	// old Replay broke out of the loop and pushed past capacity.
	dev := dram.NewDevice(dram.DDR4_2400())
	cfg := mc.DefaultConfig()
	cfg.ReadQueueCap = 2
	cfg.WriteQueueCap = 2
	cfg.WriteDrainHigh = 2
	cfg.WriteDrainLow = 1
	ctrl := mc.NewController(dev, cfg)
	tr := &Trace{}
	for i := 0; i < 64; i++ {
		tr.Add(Record{Addr: uint64(i) * 4096, IsWrite: i%2 == 1, Arrival: 0})
	}
	comps, err := Replay(tr, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 64 {
		t.Fatalf("replayed %d completions, want 64", len(comps))
	}
	if ctrl.Pending() != 0 {
		t.Fatalf("%d requests left queued after drain", ctrl.Pending())
	}
}

func TestReplayDeterministic(t *testing.T) {
	mk := func() []mc.Completion {
		dev := dram.NewDevice(dram.DDR4_2400())
		ctrl := mc.NewController(dev, mc.DefaultConfig())
		tr := sampleTrace()
		comps, err := Replay(tr, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return comps
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replay not deterministic")
	}
}

// FuzzRead is a native fuzz target for the trace parser: arbitrary input
// must never panic, and anything that parses must round-trip through the
// text format.
func FuzzRead(f *testing.F) {
	f.Add("R 0x00001000 @10\n")
	f.Add("S 0x00003000 lane=2 gang @30\nT 0x00004000 lane=1 @44\n")
	f.Add("# comment\n\nW 0x0 @0\n")
	f.Add("X bogus\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("write of parsed trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !reflect.DeepEqual(tr.Records, back.Records) {
			t.Fatal("round trip changed records")
		}
	})
}

func TestReplayObservedSeesEveryCompletionInOrder(t *testing.T) {
	dev := dram.NewDevice(dram.DDR4_2400())
	ctrl := mc.NewController(dev, mc.DefaultConfig())
	tr := &Trace{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		tr.Add(Record{
			Addr:    uint64(rng.Intn(1 << 24)),
			IsWrite: rng.Intn(4) == 0,
			Stride:  rng.Intn(3) == 0,
			Lane:    rng.Intn(4),
			Arrival: dram.Cycle(i * 2),
		})
	}
	var seen []mc.Completion
	comps, err := ReplayObserved(tr, ctrl, func(c mc.Completion) { seen = append(seen, c) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, comps) {
		t.Fatalf("observer saw %d completions, return slice has %d (or order differs)", len(seen), len(comps))
	}
	if len(comps) != tr.Len() {
		t.Fatalf("%d completions for %d records", len(comps), tr.Len())
	}
}

func TestReplayObservedNilEqualsReplay(t *testing.T) {
	run := func(observe bool) []mc.Completion {
		dev := dram.NewDevice(dram.DDR4_2400())
		ctrl := mc.NewController(dev, mc.DefaultConfig())
		tr := sampleTrace()
		var comps []mc.Completion
		var err error
		if observe {
			comps, err = ReplayObserved(tr, ctrl, func(mc.Completion) {})
		} else {
			comps, err = Replay(tr, ctrl)
		}
		if err != nil {
			t.Fatal(err)
		}
		return comps
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("Replay and ReplayObserved diverge")
	}
}
