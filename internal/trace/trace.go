// Package trace records and replays memory access traces: the simulator
// can dump the request stream a workload produced, and tests/tools can
// replay a trace against a controller — useful for determinism checks
// (identical seeds must produce identical traces) and for driving the
// memory system without the query layer.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sam/internal/dram"
	"sam/internal/mc"
)

// Record is one traced request.
type Record struct {
	Addr    uint64
	IsWrite bool
	Stride  bool
	Lane    int
	Gang    bool
	Arrival dram.Cycle
}

// FromRequest captures a controller request.
func FromRequest(r mc.Request) Record {
	return Record{Addr: r.Addr, IsWrite: r.IsWrite, Stride: r.Stride, Lane: r.Lane, Gang: r.Gang, Arrival: r.Arrival}
}

// Request converts back to a controller request.
func (r Record) Request(id uint64) mc.Request {
	return mc.Request{ID: id, Addr: r.Addr, IsWrite: r.IsWrite, Stride: r.Stride, Lane: r.Lane, Gang: r.Gang, Arrival: r.Arrival}
}

// String renders one line of the text format:
//
//	R 0x00001040 @120
//	W 0x00002000 @340
//	S 0x00003000 lane=2 gang @500   (strided read)
//	T 0x00003000 lane=1 @600        (strided write)
func (r Record) String() string {
	kind := "R"
	switch {
	case r.IsWrite && r.Stride:
		kind = "T"
	case r.IsWrite:
		kind = "W"
	case r.Stride:
		kind = "S"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s 0x%08x", kind, r.Addr)
	if r.Stride {
		fmt.Fprintf(&b, " lane=%d", r.Lane)
		if r.Gang {
			b.WriteString(" gang")
		}
	}
	fmt.Fprintf(&b, " @%d", r.Arrival)
	return b.String()
}

// Trace is an in-order request log.
type Trace struct {
	Records []Record
}

// Add appends a record.
func (t *Trace) Add(r Record) { t.Records = append(t.Records, r) }

// Len returns the record count.
func (t *Trace) Len() int { return len(t.Records) }

// Write emits the text format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := fmt.Fprintln(bw, r.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Add(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseLine parses one trace line strictly: every token must be consumed
// in full (earlier fmt.Sscanf parsing silently ignored trailing garbage,
// so "lane=3junk" and "@12x" were accepted), duplicate fields are
// rejected instead of last-wins, lane/gang are only legal on strided
// records, and the arrival timestamp is mandatory. The accepted grammar
// is exactly the output of Record.String, so parseLine(rec.String())
// round-trips for every representable record.
func parseLine(text string) (Record, error) {
	fields := strings.Fields(text)
	if len(fields) < 3 {
		return Record{}, fmt.Errorf("too few fields in %q", text)
	}
	var rec Record
	switch fields[0] {
	case "R":
	case "W":
		rec.IsWrite = true
	case "S":
		rec.Stride = true
	case "T":
		rec.IsWrite, rec.Stride = true, true
	default:
		return Record{}, fmt.Errorf("unknown kind %q", fields[0])
	}
	addr := fields[1]
	if !strings.HasPrefix(addr, "0x") {
		return Record{}, fmt.Errorf("bad address %q (want 0x-prefixed hex)", addr)
	}
	v, err := strconv.ParseUint(addr[2:], 16, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad address %q", addr)
	}
	rec.Addr = v
	var haveLane, haveGang, haveArrival bool
	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "lane="):
			if !rec.Stride {
				return Record{}, fmt.Errorf("lane on non-strided record %q", text)
			}
			if haveLane {
				return Record{}, fmt.Errorf("duplicate lane in %q", text)
			}
			lane, err := strconv.ParseUint(f[len("lane="):], 10, 31)
			if err != nil {
				return Record{}, fmt.Errorf("bad lane %q", f)
			}
			rec.Lane = int(lane)
			haveLane = true
		case f == "gang":
			if !rec.Stride {
				return Record{}, fmt.Errorf("gang on non-strided record %q", text)
			}
			if haveGang {
				return Record{}, fmt.Errorf("duplicate gang in %q", text)
			}
			rec.Gang = true
			haveGang = true
		case strings.HasPrefix(f, "@"):
			if haveArrival {
				return Record{}, fmt.Errorf("duplicate arrival in %q", text)
			}
			at, err := strconv.ParseUint(f[1:], 10, 63)
			if err != nil {
				return Record{}, fmt.Errorf("bad arrival %q", f)
			}
			rec.Arrival = dram.Cycle(at)
			haveArrival = true
		default:
			return Record{}, fmt.Errorf("unknown field %q", f)
		}
	}
	if !haveArrival {
		return Record{}, fmt.Errorf("missing @arrival in %q", text)
	}
	return rec, nil
}

// Replay pushes the trace through a controller and returns the completions.
// Queue back-pressure is handled by servicing in between: while the
// controller cannot accept the next record it services queued requests. If
// the controller reports nothing to service while still refusing the
// record, Replay returns an error with the completions so far — the old
// behaviour broke out of the loop and enqueued anyway, silently pushing
// past queue capacity (which the controller now treats as a caller bug).
func Replay(t *Trace, c *mc.Controller) ([]mc.Completion, error) {
	return ReplayObserved(t, c, nil)
}

// ReplayObserved is Replay with a completion observer: obs (when non-nil)
// sees every completion as it retires, in service order — samtrace uses it
// to drive the windowed trace sampler. The returned slice is preallocated
// to the trace length and reused on every path, including the drain and the
// error return, so partial results carry no extra allocation and callers
// can report how far a failed replay got.
func ReplayObserved(t *Trace, c *mc.Controller, obs func(mc.Completion)) ([]mc.Completion, error) {
	comps := make([]mc.Completion, 0, len(t.Records))
	take := func(comp mc.Completion) {
		if obs != nil {
			obs(comp)
		}
		comps = append(comps, comp)
	}
	for i, rec := range t.Records {
		for !c.CanAccept(rec.IsWrite) {
			comp, ok := c.ServiceOne()
			if !ok {
				return comps, fmt.Errorf("trace: record %d: controller at capacity with nothing to service", i)
			}
			take(comp)
		}
		c.Enqueue(rec.Request(uint64(i)))
	}
	for {
		comp, ok := c.ServiceOne()
		if !ok {
			return comps, nil
		}
		take(comp)
	}
}
