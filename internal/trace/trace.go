// Package trace records and replays memory access traces: the simulator
// can dump the request stream a workload produced, and tests/tools can
// replay a trace against a controller — useful for determinism checks
// (identical seeds must produce identical traces) and for driving the
// memory system without the query layer.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sam/internal/dram"
	"sam/internal/mc"
)

// Record is one traced request.
type Record struct {
	Addr    uint64
	IsWrite bool
	Stride  bool
	Lane    int
	Gang    bool
	Arrival dram.Cycle
}

// FromRequest captures a controller request.
func FromRequest(r mc.Request) Record {
	return Record{Addr: r.Addr, IsWrite: r.IsWrite, Stride: r.Stride, Lane: r.Lane, Gang: r.Gang, Arrival: r.Arrival}
}

// Request converts back to a controller request.
func (r Record) Request(id uint64) mc.Request {
	return mc.Request{ID: id, Addr: r.Addr, IsWrite: r.IsWrite, Stride: r.Stride, Lane: r.Lane, Gang: r.Gang, Arrival: r.Arrival}
}

// String renders one line of the text format:
//
//	R 0x00001040 @120
//	W 0x00002000 @340
//	S 0x00003000 lane=2 gang @500   (strided read)
//	T 0x00003000 lane=1 @600        (strided write)
func (r Record) String() string {
	kind := "R"
	switch {
	case r.IsWrite && r.Stride:
		kind = "T"
	case r.IsWrite:
		kind = "W"
	case r.Stride:
		kind = "S"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s 0x%08x", kind, r.Addr)
	if r.Stride {
		fmt.Fprintf(&b, " lane=%d", r.Lane)
		if r.Gang {
			b.WriteString(" gang")
		}
	}
	fmt.Fprintf(&b, " @%d", r.Arrival)
	return b.String()
}

// Trace is an in-order request log.
type Trace struct {
	Records []Record
}

// Add appends a record.
func (t *Trace) Add(r Record) { t.Records = append(t.Records, r) }

// Len returns the record count.
func (t *Trace) Len() int { return len(t.Records) }

// Write emits the text format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := fmt.Fprintln(bw, r.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Add(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseLine(text string) (Record, error) {
	fields := strings.Fields(text)
	if len(fields) < 3 {
		return Record{}, fmt.Errorf("too few fields in %q", text)
	}
	var rec Record
	switch fields[0] {
	case "R":
	case "W":
		rec.IsWrite = true
	case "S":
		rec.Stride = true
	case "T":
		rec.IsWrite, rec.Stride = true, true
	default:
		return Record{}, fmt.Errorf("unknown kind %q", fields[0])
	}
	if _, err := fmt.Sscanf(fields[1], "0x%x", &rec.Addr); err != nil {
		return Record{}, fmt.Errorf("bad address %q", fields[1])
	}
	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "lane="):
			if _, err := fmt.Sscanf(f, "lane=%d", &rec.Lane); err != nil {
				return Record{}, fmt.Errorf("bad lane %q", f)
			}
		case f == "gang":
			rec.Gang = true
		case strings.HasPrefix(f, "@"):
			if _, err := fmt.Sscanf(f, "@%d", &rec.Arrival); err != nil {
				return Record{}, fmt.Errorf("bad arrival %q", f)
			}
		default:
			return Record{}, fmt.Errorf("unknown field %q", f)
		}
	}
	return rec, nil
}

// Replay pushes the trace through a controller and returns the completions.
// Queue back-pressure is handled by servicing in between.
func Replay(t *Trace, c *mc.Controller) []mc.Completion {
	var comps []mc.Completion
	for i, rec := range t.Records {
		for !c.CanAccept(rec.IsWrite) {
			comp, ok := c.ServiceOne()
			if !ok {
				break
			}
			comps = append(comps, comp)
		}
		c.Enqueue(rec.Request(uint64(i)))
	}
	comps = append(comps, c.Drain()...)
	return comps
}
