package vm

import (
	"testing"
	"testing/quick"

	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/mc"
)

func remap4bit() mc.StrideRemap {
	return mc.StrideRemap{SectorBytes: 8, Reach: 8, LineBytes: 64}
}

func space(t *testing.T) *AddressSpace {
	t.Helper()
	a := New(remap4bit())
	if err := a.Map(Mapping{VirtBase: 0x10000, PhysBase: 0x400000, Bytes: 64 * PageBytes}); err != nil {
		t.Fatal(err)
	}
	if err := a.Map(Mapping{VirtBase: 0x40000000, PhysBase: 0x80000000, Bytes: 2 * HugePageBytes, Huge: true, StrideMode: true}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTranslateRegularMapping(t *testing.T) {
	a := space(t)
	pa, err := a.Translate(0x10000 + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x400000+0x1234 {
		t.Fatalf("pa = %#x", pa)
	}
}

func TestTranslateFaults(t *testing.T) {
	a := space(t)
	for _, va := range []uint64{0x0, 0xFFFF, 0x10000 + 64*PageBytes, 0x3FFFFFFF} {
		if _, err := a.Translate(va); err == nil {
			t.Errorf("no fault at %#x", va)
		}
	}
}

func TestMapAlignmentAndOverlap(t *testing.T) {
	a := New(remap4bit())
	if err := a.Map(Mapping{VirtBase: 0x1001, PhysBase: 0, Bytes: PageBytes}); err == nil {
		t.Error("unaligned virt base accepted")
	}
	if err := a.Map(Mapping{VirtBase: 0x1000, PhysBase: 0x10, Bytes: PageBytes}); err == nil {
		t.Error("unaligned phys base accepted")
	}
	if err := a.Map(Mapping{VirtBase: 0x1000, PhysBase: 0, Bytes: 100}); err == nil {
		t.Error("unaligned length accepted")
	}
	if err := a.Map(Mapping{VirtBase: 0x1000, PhysBase: 0, Bytes: 4 * PageBytes}); err != nil {
		t.Fatal(err)
	}
	if err := a.Map(Mapping{VirtBase: 0x2000, PhysBase: 0x100000, Bytes: PageBytes}); err == nil {
		t.Error("overlapping mapping accepted")
	}
	if len(a.Mappings()) != 1 {
		t.Fatal("mapping list")
	}
}

func TestStrideModeRemapsWithinPage(t *testing.T) {
	a := space(t)
	base := uint64(0x40000000)
	// The remap is a bijection of each 4KB page onto itself.
	seen := map[uint64]bool{}
	for off := uint64(0); off < PageBytes; off += 8 {
		pa, err := a.Translate(base + off)
		if err != nil {
			t.Fatal(err)
		}
		page := pa &^ uint64(PageBytes-1)
		if page != 0x80000000 {
			t.Fatalf("offset %#x escaped its page: %#x", off, pa)
		}
		if seen[pa] {
			t.Fatalf("collision at %#x", pa)
		}
		seen[pa] = true
	}
}

func TestStrideModeGathersSectors(t *testing.T) {
	// The defining property: same-offset sectors of the reach-group's lines
	// become physically consecutive.
	a := space(t)
	base := uint64(0x40000000)
	sector := uint64(3 * 8) // sector 3 of each line
	var pas []uint64
	for line := uint64(0); line < 8; line++ {
		pa, err := a.Translate(base + line*64 + sector)
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
	}
	for i := 1; i < len(pas); i++ {
		if pas[i] != pas[i-1]+8 {
			t.Fatalf("gathered sectors not consecutive: %#x after %#x", pas[i], pas[i-1])
		}
	}
}

func TestTranslatePropertyBijective(t *testing.T) {
	a := space(t)
	base := uint64(0x40000000)
	f := func(x, y uint32) bool {
		va1 := base + uint64(x)%(2*HugePageBytes)
		va2 := base + uint64(y)%(2*HugePageBytes)
		p1, err1 := a.Translate(va1)
		p2, err2 := a.Translate(va2)
		if err1 != nil || err2 != nil {
			return false
		}
		return (va1 == va2) == (p1 == p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTranslateRange(t *testing.T) {
	a := space(t)
	if _, err := a.TranslateRange(0x10000, 64); err != nil {
		t.Fatal(err)
	}
	end := uint64(0x10000) + 64*PageBytes - 8
	if _, err := a.TranslateRange(end, 64); err == nil {
		t.Error("range crossing mapping end accepted")
	}
}

func TestStrideGather(t *testing.T) {
	a := space(t)
	// Regular mapping: gather degenerates to the address itself.
	vs, err := a.StrideGather(0x10040)
	if err != nil || len(vs) != 1 || vs[0] != 0x10040 {
		t.Fatalf("regular gather: %v %v", vs, err)
	}
	// Stride-mode mapping: eight same-sector addresses, one per line.
	va := uint64(0x40000000) + 2*64 + 5*8 // line 2, sector 5
	vs, err = a.StrideGather(va)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 8 {
		t.Fatalf("gather size %d", len(vs))
	}
	found := false
	for i, v := range vs {
		if v%64 != 5*8 {
			t.Fatalf("member %d has wrong sector offset: %#x", i, v)
		}
		if v == va {
			found = true
		}
	}
	if !found {
		t.Fatal("gather does not include the probe address")
	}
}

func TestAllocator(t *testing.T) {
	al := NewAllocator(0x1234)
	a := al.Alloc(100, false)
	if a%HugePageBytes != 0 {
		t.Fatalf("first allocation base %#x not huge-aligned start", a)
	}
	b := al.Alloc(PageBytes, false)
	if b < a+PageBytes {
		t.Fatal("allocations overlap")
	}
	h := al.Alloc(3*HugePageBytes, true)
	if h%HugePageBytes != 0 {
		t.Fatalf("huge allocation misaligned: %#x", h)
	}
	next := al.Alloc(PageBytes, false)
	if next < h+3*HugePageBytes {
		t.Fatal("huge allocation size not honored")
	}
}

func TestNewRejectsInvalidRemap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid remap accepted")
		}
	}()
	New(mc.StrideRemap{SectorBytes: 7, Reach: 3, LineBytes: 64})
}

func TestGatherAgreesWithDesignLayout(t *testing.T) {
	// Cross-module integration: for line-sized records, the OS layer's
	// stride gather and the design layer's gather group must name the same
	// lines — the contract that lets an IMDB lay out records for SAM.
	d := design.New(design.SAMEn, design.Options{})
	schema := imdb.Schema{Name: "T", Fields: 8, Records: 256} // 64B records
	p := design.NewPlacer(d, schema, 0, false)

	a := New(mc.StrideRemap{
		SectorBytes: d.Gran.SectorBytes,
		Reach:       d.Gran.Reach,
		LineBytes:   d.Mem.Geometry.LineBytes,
	})
	if err := a.Map(Mapping{VirtBase: 0, PhysBase: 0, Bytes: HugePageBytes, Huge: true, StrideMode: true}); err != nil {
		t.Fatal(err)
	}

	for _, rec := range []int{0, 7, 64, 200} {
		field := 5
		txn := p.ReadField(rec, field)
		if txn.Group == nil {
			t.Fatal("no gather group")
		}
		va := uint64(rec*64 + field*imdb.FieldBytes)
		gathered, err := a.StrideGather(va)
		if err != nil {
			t.Fatal(err)
		}
		if len(gathered) != len(txn.Group.Fills) {
			t.Fatalf("rec %d: OS gather %d lines, design gather %d", rec, len(gathered), len(txn.Group.Fills))
		}
		lines := map[uint64]bool{}
		for _, f := range txn.Group.Fills {
			lines[f.LineAddr] = true
		}
		for _, g := range gathered {
			if !lines[g&^63] {
				t.Fatalf("rec %d: OS gather names line %#x the design gather lacks", rec, g&^63)
			}
		}
	}
}
