// Package vm implements the OS support of Section 5.2: virtual-to-physical
// translation with 4KB and huge (2MB) pages, and the stride-mode address
// remapping of Fig. 10 applied per mapping — so an IMDB that knows the
// mapping can lay records out for strided access, exactly as the paper
// suggests implementing it ("leveraging the huge-page technique" or "a new
// kernel module").
package vm

import (
	"fmt"
	"sort"

	"sam/internal/mc"
)

// Page sizes.
const (
	PageBytes     = 4 << 10
	HugePageBytes = 2 << 20
)

// Mapping is one contiguous virtual range backed by physical memory.
type Mapping struct {
	VirtBase uint64
	PhysBase uint64
	Bytes    uint64
	Huge     bool
	// StrideMode applies the Fig. 10 bit swap inside every page of the
	// mapping, so same-offset sectors of group-aligned lines land where
	// one strided burst gathers them.
	StrideMode bool
}

// AddressSpace is a process's view of memory.
type AddressSpace struct {
	maps  []Mapping // sorted by VirtBase
	remap mc.StrideRemap
}

// New builds an address space whose stride-mode mappings use the given
// remap geometry (sector size and reach of the active SAM granularity).
func New(remap mc.StrideRemap) *AddressSpace {
	if !remap.Valid() {
		panic(fmt.Sprintf("vm: invalid stride remap %+v", remap))
	}
	return &AddressSpace{remap: remap}
}

// pageSize returns the mapping's page granularity.
func (m Mapping) pageSize() uint64 {
	if m.Huge {
		return HugePageBytes
	}
	return PageBytes
}

// Map adds a mapping. Base addresses and length must be page aligned, and
// the virtual range must not overlap an existing mapping.
func (a *AddressSpace) Map(m Mapping) error {
	ps := m.pageSize()
	if m.VirtBase%ps != 0 || m.PhysBase%ps != 0 || m.Bytes == 0 || m.Bytes%ps != 0 {
		return fmt.Errorf("vm: mapping not %d-aligned: %+v", ps, m)
	}
	for _, ex := range a.maps {
		if m.VirtBase < ex.VirtBase+ex.Bytes && ex.VirtBase < m.VirtBase+m.Bytes {
			return fmt.Errorf("vm: virtual range [%x,+%x) overlaps existing mapping", m.VirtBase, m.Bytes)
		}
	}
	a.maps = append(a.maps, m)
	sort.Slice(a.maps, func(i, j int) bool { return a.maps[i].VirtBase < a.maps[j].VirtBase })
	return nil
}

// lookup finds the mapping containing va.
func (a *AddressSpace) lookup(va uint64) (*Mapping, error) {
	i := sort.Search(len(a.maps), func(i int) bool { return a.maps[i].VirtBase+a.maps[i].Bytes > va })
	if i == len(a.maps) || va < a.maps[i].VirtBase {
		return nil, fmt.Errorf("vm: page fault at %#x", va)
	}
	return &a.maps[i], nil
}

// Translate resolves a virtual address. For stride-mode mappings the
// Fig. 10 bit swap is applied within the page, so the physical layout
// interleaves sectors across the gather group.
func (a *AddressSpace) Translate(va uint64) (uint64, error) {
	m, err := a.lookup(va)
	if err != nil {
		return 0, err
	}
	off := va - m.VirtBase
	ps := m.pageSize()
	pageOff := off % ps
	pageBase := off - pageOff
	if m.StrideMode {
		pageOff = a.remap.Remap(pageOff%PageBytes) + (pageOff - pageOff%PageBytes)
	}
	return m.PhysBase + pageBase + pageOff, nil
}

// TranslateRange resolves [va, va+n) and requires it not to cross a
// mapping boundary (callers split at boundaries).
func (a *AddressSpace) TranslateRange(va uint64, n int) (uint64, error) {
	m, err := a.lookup(va)
	if err != nil {
		return 0, err
	}
	if va+uint64(n) > m.VirtBase+m.Bytes {
		return 0, fmt.Errorf("vm: range [%#x,+%d) crosses mapping end", va, n)
	}
	return a.Translate(va)
}

// Mappings returns a copy of the mapping list (diagnostics).
func (a *AddressSpace) Mappings() []Mapping {
	return append([]Mapping(nil), a.maps...)
}

// StrideGather returns, for a stride-mode virtual address, the virtual
// addresses whose same-sector data one strided burst delivers together —
// the group-alignment contract (Fig. 11a) made explicit for applications.
func (a *AddressSpace) StrideGather(va uint64) ([]uint64, error) {
	m, err := a.lookup(va)
	if err != nil {
		return nil, err
	}
	if !m.StrideMode {
		return []uint64{va}, nil
	}
	lb := uint64(a.remap.LineBytes)
	reach := uint64(a.remap.Reach)
	sector := va % lb
	lineIdx := (va / lb) % reach
	base := va - sector - lineIdx*lb
	out := make([]uint64, 0, reach)
	for i := uint64(0); i < reach; i++ {
		out = append(out, base+i*lb+sector)
	}
	return out, nil
}

// Allocator hands out physical pages bump-style, the way the simulator's
// loader places tables.
type Allocator struct {
	next uint64
}

// NewAllocator starts allocation at base (rounded up to a huge page).
func NewAllocator(base uint64) *Allocator {
	rem := base % HugePageBytes
	if rem != 0 {
		base += HugePageBytes - rem
	}
	return &Allocator{next: base}
}

// Alloc reserves n bytes (rounded up to the page size) and returns the
// physical base.
func (al *Allocator) Alloc(n uint64, huge bool) uint64 {
	ps := uint64(PageBytes)
	if huge {
		ps = HugePageBytes
	}
	if rem := al.next % ps; rem != 0 {
		al.next += ps - rem
	}
	base := al.next
	if rem := n % ps; rem != 0 {
		n += ps - rem
	}
	al.next += n
	return base
}
