// Package cpu models the processor side of Table 2 at the fidelity the
// evaluation needs: four 4 GHz cores sharing one memory channel, each with
// a window of outstanding misses (memory-level parallelism) and small
// per-operation compute costs. Records are partitioned across cores, so
// compute throughput scales with the core count while the memory channel
// does not — which is exactly why the paper runs multiple cores: it keeps
// the IMDB scans memory-bound.
package cpu

import "fmt"

// Params describe the cores.
type Params struct {
	ClockGHz float64
	Cores    int
	// MissWindow is the outstanding read misses each core sustains.
	MissWindow int
	// ComputePerField is CPU cycles of work per field touched (predicate
	// evaluation, pointer arithmetic, loop overhead).
	ComputePerField float64
	// ComputePerMatch is CPU cycles per matching record (aggregation,
	// result assembly, update bookkeeping).
	ComputePerMatch float64
	// LatencyOverlap is the fraction of cache/memory access latency charged
	// to throughput; the rest overlaps across independent accesses in the
	// out-of-order window.
	LatencyOverlap float64
}

// Default mirrors the Table 2 processor: 4 cores, x86-class, 4.0 GHz.
func Default() Params {
	return Params{
		ClockGHz:        4.0,
		Cores:           4,
		MissWindow:      16,
		ComputePerField: 3,
		ComputePerMatch: 6,
		LatencyOverlap:  0.1,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.ClockGHz <= 0 || p.Cores < 1 || p.MissWindow < 1 {
		return fmt.Errorf("cpu: invalid core parameters %+v", p)
	}
	if p.ComputePerField < 0 || p.ComputePerMatch < 0 || p.LatencyOverlap < 0 || p.LatencyOverlap > 1 {
		return fmt.Errorf("cpu: invalid cost parameters %+v", p)
	}
	return nil
}

// BusCyclesPer converts CPU cycles of work into bus cycles of aggregate
// throughput across the cores.
func (p Params) BusCyclesPer(cpuCycles, busMHz float64) float64 {
	cores := p.Cores
	if cores < 1 {
		cores = 1
	}
	return cpuCycles * busMHz / (p.ClockGHz * 1e3) / float64(cores)
}

// WindowSize is the aggregate outstanding-miss budget across cores.
func (p Params) WindowSize() int {
	cores := p.Cores
	if cores < 1 {
		cores = 1
	}
	return p.MissWindow * cores
}

// ISA extension of Section 5.1.2: the sload/sstore instructions that put
// the memory system into stride mode for one access. The simulator's
// transaction stream uses these as markers; a real implementation would
// encode them in the instruction set.
type StrideOp int

// Stride operations.
const (
	SLoad StrideOp = iota
	SStore
)

// String names the operation mnemonic.
func (op StrideOp) String() string {
	if op == SStore {
		return "sstore"
	}
	return "sload"
}
