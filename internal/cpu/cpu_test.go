package cpu

import (
	"math"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{ClockGHz: 0, Cores: 4, MissWindow: 16},
		{ClockGHz: 4, Cores: 0, MissWindow: 16},
		{ClockGHz: 4, Cores: 4, MissWindow: 0},
		{ClockGHz: 4, Cores: 4, MissWindow: 16, LatencyOverlap: 2},
		{ClockGHz: 4, Cores: 4, MissWindow: 16, ComputePerField: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBusCyclesConversion(t *testing.T) {
	p := Default()
	// 4 CPU cycles at 4 GHz = 1 ns = 1.2 bus cycles at 1200 MHz, split
	// over 4 cores = 0.3.
	got := p.BusCyclesPer(4, 1200)
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("conversion = %v, want 0.3", got)
	}
	single := p
	single.Cores = 1
	if math.Abs(single.BusCyclesPer(4, 1200)-1.2) > 1e-12 {
		t.Fatal("single-core conversion")
	}
	zero := p
	zero.Cores = 0
	if zero.BusCyclesPer(4, 1200) != single.BusCyclesPer(4, 1200) {
		t.Fatal("zero cores should clamp to one")
	}
}

func TestWindowSize(t *testing.T) {
	p := Default()
	if p.WindowSize() != 64 {
		t.Fatalf("window = %d, want 16x4", p.WindowSize())
	}
	p.Cores = 0
	if p.WindowSize() != 16 {
		t.Fatal("zero cores should clamp to one")
	}
}

func TestStrideOpNames(t *testing.T) {
	if SLoad.String() != "sload" || SStore.String() != "sstore" {
		t.Fatal("ISA mnemonic names (Section 5.1.2)")
	}
}
