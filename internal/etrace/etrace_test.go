package etrace

import (
	"bytes"
	"strings"
	"testing"

	"sam/internal/dram"
	"sam/internal/mc"
	"sam/internal/stats"
)

// tracerFor builds a small ring and returns its channel-0 handle.
func tracerFor(capacity int) (*Buffer, *ChannelTracer) {
	b := NewBuffer(capacity)
	return b, b.Channel(0)
}

func TestRingOverflowDropsOldest(t *testing.T) {
	b, ct := tracerFor(8)
	for i := 0; i < 20; i++ {
		ct.ReqScheduled(dram.Cycle(i), mc.Request{ID: uint64(i)}, 0)
	}
	if b.Len() != 8 || b.Capacity() != 8 {
		t.Fatalf("Len=%d Cap=%d, want 8/8", b.Len(), b.Capacity())
	}
	if b.Dropped() != 12 {
		t.Fatalf("Dropped=%d, want 12", b.Dropped())
	}
	evs := b.Events()
	for i, e := range evs {
		if want := int64(12 + i); e.At != want {
			t.Fatalf("event %d at %d, want %d (oldest-first order)", i, e.At, want)
		}
	}
}

// TestPerChannelRingsIndependent pins the sharded-engine contract: each
// channel tracer owns its own ring, so one channel overflowing (and
// dropping its oldest events) never evicts another channel's events, drop
// accounting is per channel, and Events() concatenates the surviving
// blocks in channel order.
func TestPerChannelRingsIndependent(t *testing.T) {
	b := NewBuffer(4)
	noisy, quiet := b.Channel(0), b.Channel(1)
	quiet.ReqScheduled(1, mc.Request{ID: 100}, 0)
	for i := 0; i < 10; i++ {
		noisy.ReqScheduled(dram.Cycle(10 + i), mc.Request{ID: uint64(i)}, 0)
	}
	if b.Dropped() != 6 {
		t.Fatalf("Dropped=%d, want 6 (noisy channel only)", b.Dropped())
	}
	if b.Len() != 5 {
		t.Fatalf("Len=%d, want 4 noisy + 1 quiet", b.Len())
	}
	evs := b.Events()
	for i := 0; i < 4; i++ {
		if evs[i].Chan != 0 || evs[i].At != int64(16+i) {
			t.Fatalf("event %d = ch%d@%d, want ch0@%d (newest 4 survive)", i, evs[i].Chan, evs[i].At, 16+i)
		}
	}
	if last := evs[4]; last.Chan != 1 || last.At != 1 {
		t.Fatalf("quiet channel's event lost: got ch%d@%d", last.Chan, last.At)
	}
}

func TestChannelHandleCachedAndShared(t *testing.T) {
	b := NewBuffer(16)
	if b.Channel(2) != b.Channel(2) {
		t.Fatal("Channel(2) not cached")
	}
	if b.Channel(0) == b.Channel(2) {
		t.Fatal("distinct channels share a handle")
	}
	b.Channel(0).ReqScheduled(1, mc.Request{}, 0)
	b.Channel(2).ReqScheduled(2, mc.Request{}, 0)
	evs := b.Events()
	if evs[0].Chan != 0 || evs[1].Chan != 2 {
		t.Fatalf("channel tags %d,%d want 0,2", evs[0].Chan, evs[1].Chan)
	}
}

func TestEventFlagsAndClassNames(t *testing.T) {
	cases := []struct {
		write, stride bool
		want          string
	}{
		{false, false, "read"},
		{true, false, "write"},
		{false, true, "stride read"},
		{true, true, "stride write"},
	}
	for _, c := range cases {
		e := Event{Flags: reqFlags(c.write, c.stride, false)}
		if got := e.ClassName(); got != c.want {
			t.Fatalf("ClassName(write=%v,stride=%v) = %q, want %q", c.write, c.stride, got, c.want)
		}
	}
}

// driveStack runs a mixed request stream through a real controller+device
// with the tracer (and optionally an auditor / metrics) attached, and
// returns the stack plus the completions.
func driveStack(t *testing.T, buf *Buffer, audit bool) (*mc.Controller, *dram.Device, []mc.Completion) {
	t.Helper()
	cfg := dram.DDR4_2400()
	dev := dram.NewDevice(cfg)
	ctrl := mc.NewController(dev, mc.DefaultConfig())
	if audit {
		ctrl.Audit = dram.NewAuditor(cfg)
	}
	ct := buf.Channel(0)
	ctrl.Trace = ct
	dev.Trace = ct
	var comps []mc.Completion
	arrival := dram.Cycle(0)
	for i := 0; i < 300; i++ {
		r := mc.Request{
			ID:      uint64(i),
			Addr:    uint64(i) * 832, // crosses rows and banks
			IsWrite: i%5 == 0,
			Stride:  i%3 == 0,
			Lane:    i % 4,
			Arrival: arrival,
		}
		arrival += dram.Cycle(1 + i%7)
		for !ctrl.CanAccept(r.IsWrite) {
			comp, ok := ctrl.ServiceOne()
			if !ok {
				t.Fatal("controller full but idle")
			}
			comps = append(comps, comp)
		}
		ctrl.Enqueue(r)
	}
	comps = append(comps, ctrl.Drain()...)
	return ctrl, dev, comps
}

func TestLifecycleEventsPerRequest(t *testing.T) {
	buf := NewBuffer(0)
	_, _, comps := driveStack(t, buf, false)
	var enq, sched, done int
	completes := map[uint64]Event{}
	for _, e := range buf.Events() {
		switch e.Kind {
		case KindEnqueue:
			enq++
		case KindSchedule:
			sched++
		case KindComplete:
			done++
			completes[e.ID] = e
		}
	}
	if enq != 300 || sched != 300 || done != 300 {
		t.Fatalf("lifecycle counts enq=%d sched=%d done=%d, want 300 each", enq, sched, done)
	}
	for _, c := range comps {
		e, ok := completes[c.Req.ID]
		if !ok {
			t.Fatalf("no complete event for request %d", c.Req.ID)
		}
		if e.Arrival != c.Req.Arrival || e.DataEnd != c.DataEnd || e.DataStart != c.DataStart || e.At != c.IssueAt {
			t.Fatalf("request %d span %+v disagrees with completion %+v", c.Req.ID, e, c)
		}
		if got := e.Flags&FlagWrite != 0; got != c.Req.IsWrite {
			t.Fatalf("request %d write flag %v, want %v", c.Req.ID, got, c.Req.IsWrite)
		}
		if got := e.Flags&FlagRowHit != 0; got != c.RowHit {
			t.Fatalf("request %d row-hit flag %v, want %v", c.Req.ID, got, c.RowHit)
		}
	}
}

func TestCommandEventsMatchAuditorHistory(t *testing.T) {
	buf := NewBuffer(0)
	ctrl, _, _ := driveStack(t, buf, true)
	// History must be read before Ok: validation sorts the record order.
	hist := ctrl.Audit.History()
	if !ctrl.Audit.Ok() {
		t.Fatalf("protocol violations: %v", ctrl.Audit.Violations)
	}
	var cmds []Event
	for _, e := range buf.Events() {
		if e.Kind == KindCommand {
			cmds = append(cmds, e)
		}
	}
	if len(cmds) != len(hist) {
		t.Fatalf("%d command events vs %d audited commands", len(cmds), len(hist))
	}
	for i, h := range hist {
		e := cmds[i]
		if e.At != h.At || e.Cmd != h.Cmd.Kind ||
			int(e.Rank) != h.Cmd.Rank || int(e.Group) != h.Cmd.Group || int(e.Bank) != h.Cmd.Bank ||
			int(e.Row) != h.Cmd.Row || int(e.Col) != h.Cmd.Col || e.Mode != h.Cmd.Mode {
			t.Fatalf("command %d: event %+v disagrees with audited %+v at %d", i, e, h.Cmd, h.At)
		}
	}
}

func TestChromeExportValidates(t *testing.T) {
	buf := NewBuffer(0)
	buf.Name = "test"
	ctrl, dev, comps := driveStack(t, buf, false)
	sp := NewSampler(64)
	sp.Name = "test"
	var hw dram.Cycle
	for _, c := range comps {
		if c.DataEnd > hw {
			hw = c.DataEnd
		}
	}
	// One cumulative sample mid-run shape is enough for counter tracks.
	sp.Record(Sample{At: sp.Advance(), Ctl: ctrl.Stats, Dev: dev.Stats.Clone(), Queue: 0})

	var out bytes.Buffer
	if err := WriteChrome(&out, []*Buffer{buf}, []*Sampler{sp}); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChrome(out.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if sum.Spans != len(comps) {
		t.Fatalf("%d spans, want %d (one per completion)", sum.Spans, len(comps))
	}
	if sum.Slices == 0 || sum.Tracks < 3 || sum.Counters == 0 {
		t.Fatalf("thin summary: %+v", sum)
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	render := func() []byte {
		buf := NewBuffer(0)
		driveStack(t, buf, false)
		var out bytes.Buffer
		if err := WriteChrome(&out, []*Buffer{buf}, nil); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("identical runs rendered different traces")
	}
}

func TestSamplerDueAdvance(t *testing.T) {
	sp := NewSampler(100)
	if sp.Due(99) {
		t.Fatal("due before first boundary")
	}
	if !sp.Due(100) {
		t.Fatal("not due at the boundary")
	}
	// A clock jump across several windows yields one boundary per window.
	var ats []int64
	for sp.Due(350) {
		ats = append(ats, sp.Advance())
	}
	if len(ats) != 3 || ats[0] != 100 || ats[1] != 200 || ats[2] != 300 {
		t.Fatalf("boundaries %v, want [100 200 300]", ats)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0) did not panic")
		}
	}()
	NewSampler(0)
}

func TestWriteCSVDeltas(t *testing.T) {
	sp := NewSampler(100)
	mk := func(at int64, reads, busy uint64, q int) Sample {
		var s Sample
		s.At = at
		s.Dev.Reads = reads
		s.Dev.BusBusyCycles = busy
		s.Ctl.RowHits = reads
		s.Queue = q
		return s
	}
	sp.Record(mk(100, 10, 50, 3))
	sp.Record(mk(200, 30, 150, 1))
	var out bytes.Buffer
	if err := WriteCSV(&out, sp); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at,reads,") {
		t.Fatalf("header %q", lines[0])
	}
	// Second row is the delta 30-10 reads and (150-50)/100 bus utilization.
	if lines[2] != "200,20,0,0,0,0,0,0,100,100.00,100.00,1,0" {
		t.Fatalf("delta row %q", lines[2])
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown phase":      `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]}`,
		"missing ts":         `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1}]}`,
		"unnamed slice":      `{"traceEvents":[{"name":"","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]}`,
		"negative dur":       `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}]}`,
		"time went backward": `{"traceEvents":[{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}]}`,
		"overlapping slices": `{"traceEvents":[{"name":"a","ph":"X","ts":10,"dur":10,"pid":1,"tid":1},{"name":"b","ph":"X","ts":15,"dur":1,"pid":1,"tid":1}]}`,
		"counter no args":    `{"traceEvents":[{"name":"c","ph":"C","ts":1,"pid":0,"tid":0}]}`,
		"end without begin":  `{"traceEvents":[{"name":"s","ph":"e","ts":1,"cat":"req","id":"1","pid":1,"tid":1}]}`,
		"unclosed span":      `{"traceEvents":[{"name":"s","ph":"b","ts":1,"cat":"req","id":"1","pid":1,"tid":1}]}`,
		"end before begin":   `{"traceEvents":[{"name":"s","ph":"b","ts":5,"cat":"req","id":"1","pid":1,"tid":1},{"name":"s","ph":"e","ts":1,"cat":"req","id":"1","pid":1,"tid":1}]}`,
		"not a trace":        `42`,
		"no traceEvents":     `{"foo":1}`,
	}
	for name, data := range cases {
		if _, err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Overlap tracking is per track: same times on different tracks pass,
	// and the bare-array form is accepted.
	ok := `[{"name":"a","ph":"X","ts":10,"dur":10,"pid":1,"tid":1},{"name":"b","ph":"X","ts":15,"dur":1,"pid":1,"tid":2}]`
	sum, err := ValidateChrome([]byte(ok))
	if err != nil {
		t.Fatalf("bare array with distinct tracks rejected: %v", err)
	}
	if sum.Slices != 2 || sum.Tracks != 2 {
		t.Fatalf("summary %+v, want 2 slices on 2 tracks", sum)
	}
}

// BenchmarkTracedServiceLoop measures the controller service loop with a
// live ring attached (the enabled-path cost; the disabled path is pinned at
// 0 allocs/op by the mc benchmarks).
func BenchmarkTracedServiceLoop(b *testing.B) {
	cfg := dram.DDR4_2400()
	dev := dram.NewDevice(cfg)
	ctrl := mc.NewController(dev, mc.DefaultConfig())
	reg := stats.NewRegistry()
	ctrl.Metrics = mc.NewMetrics(reg)
	buf := NewBuffer(1 << 16)
	ct := buf.Channel(0)
	ctrl.Trace = ct
	dev.Trace = ct
	const depth = 48
	var id uint64
	fill := func() {
		for ctrl.Pending() < depth {
			ctrl.Enqueue(mc.Request{ID: id, Addr: (id * 832) % (1 << 30), Stride: id%3 == 0, Lane: int(id % 4)})
			id++
		}
	}
	fill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ctrl.ServiceOne(); !ok {
			b.Fatal("idle")
		}
		fill()
	}
}
