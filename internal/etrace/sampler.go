package etrace

import (
	"fmt"
	"io"

	"sam/internal/dram"
	"sam/internal/mc"
)

// Sample is one windowed snapshot of the system's cumulative run statistics.
// Ctl and Dev are run-relative cumulative totals at time At (aggregated
// across channels); consumers difference consecutive samples to recover
// per-window rates.
type Sample struct {
	// At is the sample boundary in bus cycles, relative to run start.
	At int64
	// Ctl aggregates controller stats across channels, cumulative since
	// run start.
	Ctl mc.Stats
	// Dev aggregates device stats across channels, cumulative since run
	// start (includes per-bank accounting).
	Dev dram.DeviceStats
	// Queue is the total queued requests across channels at sample time.
	Queue int
	// Inflight is the driver's outstanding-request count at sample time.
	Inflight int
}

// Sampler collects Samples every Window bus cycles. The driver (sim engine
// or a replay loop) owns the clock: it calls Due with its current relative
// time and, for each due boundary, Advance + Record.
type Sampler struct {
	// Name labels the series in exports (typically the design name).
	Name string
	// Window is the sampling period in bus cycles.
	Window int64
	// Samples holds the recorded series, oldest first.
	Samples []Sample

	next int64 // next due boundary
}

// NewSampler builds a sampler with the given window (bus cycles).
func NewSampler(window int64) *Sampler {
	if window <= 0 {
		panic("etrace: sampler window must be positive")
	}
	return &Sampler{Window: window, next: window}
}

// Due reports whether a sample boundary is at or behind now (relative
// cycles). Completion times arrive out of order across channels, so
// drivers ratchet a high-water clock and loop while Due.
func (s *Sampler) Due(now int64) bool { return now >= s.next }

// Advance consumes the due boundary and returns its timestamp. Callers pass
// it as Sample.At so the series stays on exact window multiples even when
// the driver's clock jumps several windows at once.
func (s *Sampler) Advance() int64 {
	at := s.next
	s.next += s.Window
	return at
}

// Record appends one sample.
func (s *Sampler) Record(smp Sample) { s.Samples = append(s.Samples, smp) }

// csvHeader lists the per-window CSV columns.
const csvHeader = "at,reads,writes,stride_reads,stride_writes,acts,pres,refs," +
	"bus_busy,bus_util_pct,row_hit_pct,queue,inflight\n"

// WriteCSV renders the series as per-window deltas, one row per sample:
// command counts within the window, bus utilization and row-hit rate over
// the window, and the instantaneous queue depth and inflight count at the
// boundary. Rates divide by the actual span to the previous sample, so a
// final partial-window flush sample stays correct.
func WriteCSV(w io.Writer, s *Sampler) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	var prev Sample
	for _, smp := range s.Samples {
		dc := smp.Ctl.Sub(prev.Ctl)
		dd := smp.Dev.Sub(prev.Dev)
		span := smp.At - prev.At
		busUtil, hitPct := 0.0, 0.0
		if span > 0 {
			busUtil = 100 * float64(dd.BusBusyCycles) / float64(span)
		}
		if n := dc.RowHits + dc.RowMisses + dc.RowEmpties; n > 0 {
			hitPct = 100 * float64(dc.RowHits) / float64(n)
		}
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.2f,%.2f,%d,%d\n",
			smp.At, dd.Reads, dd.Writes, dd.StrideReads, dd.StrideWrites,
			dd.Acts, dd.Pres, dd.Refs, dd.BusBusyCycles, busUtil, hitPct,
			smp.Queue, smp.Inflight)
		if err != nil {
			return err
		}
		prev = smp
	}
	return nil
}
