// Package etrace is the cycle-accurate event-tracing subsystem: a
// ring-buffered recorder for request-lifecycle spans (enqueue → scheduled →
// DRAM commands → completion) and per-command DRAM timelines, a windowed
// statistics sampler, and exporters to the Chrome trace-event / Perfetto
// JSON format and a CSV time series.
//
// The recorder attaches to the memory system through two consumer-side
// interfaces — mc.Tracer (request lifecycle, emitted by mc.Controller) and
// dram.CmdTracer (per-command, emitted by dram.Device.Issue) — both
// implemented by the per-channel handles Buffer.Channel returns. The hook
// fields are nil-checkable, so with tracing disabled the controller's
// service loop stays on its allocation-free fast path; with tracing enabled
// every event lands in a bounded ring that drops the oldest events beyond
// capacity (Dropped counts the loss).
//
// Timestamps are bus cycles throughout, matching dram.Cycle. The Chrome
// exporter writes one bus cycle per trace-event microsecond tick (the
// format's native unit), so a Perfetto timeline reads directly in cycles.
package etrace

import (
	"sam/internal/dram"
	"sam/internal/mc"
)

// Kind discriminates the event union.
type Kind uint8

// Event kinds.
const (
	// KindEnqueue is a request entering the controller queue.
	KindEnqueue Kind = iota
	// KindSchedule is FR-FCFS dequeuing a request for service.
	KindSchedule
	// KindComplete is a request's column access resolving; the event
	// carries the whole span (Arrival..DataEnd).
	KindComplete
	// KindCommand is one DRAM command applied by the device.
	KindCommand
	// KindFault is a detected-uncorrectable read burst: one event per
	// failed attempt (QDepth carries the attempt number), with FlagPoisoned
	// marking the final give-up.
	KindFault
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEnqueue:
		return "enqueue"
	case KindSchedule:
		return "schedule"
	case KindComplete:
		return "complete"
	case KindCommand:
		return "command"
	case KindFault:
		return "fault"
	default:
		return "unknown"
	}
}

// Event flags.
const (
	FlagWrite uint8 = 1 << iota
	FlagStride
	FlagGang
	FlagRowHit
	FlagRowEmpty
	FlagPoisoned
)

// Event is one fixed-size trace record. Request events (Enqueue, Schedule,
// Complete) fill the ID/Addr/Bank/QDepth fields and leave Rank/Group at -1;
// command events fill Cmd/Mode and the full Rank/Group/Bank coordinates.
type Event struct {
	Kind  Kind
	Cmd   dram.CmdKind
	Mode  dram.IOMode
	Flags uint8
	Lane  uint8
	Chan  int16
	Rank  int16
	Group int16
	Bank  int32
	Row   int32
	Col   int32
	// QDepth is the total queued requests after an enqueue.
	QDepth int32
	ID     uint64
	Addr   uint64
	// At is the event's own time: arrival for Enqueue, dequeue time for
	// Schedule, column issue for Complete, issue time for Command.
	At int64
	// Arrival..DataEnd bound the request span on Complete events;
	// DataStart/DataEnd also carry the burst window of column commands.
	Arrival   int64
	DataStart int64
	DataEnd   int64
	// Done is when a command's effects complete (tRCD after ACT, tRP after
	// PRE, tRFC after REF, data end for columns).
	Done int64
}

// ClassName is the request's class label ("read", "write", "stride read",
// "stride write") derived from the flags.
func (e Event) ClassName() string {
	switch e.Flags & (FlagWrite | FlagStride) {
	case FlagWrite | FlagStride:
		return "stride write"
	case FlagWrite:
		return "write"
	case FlagStride:
		return "stride read"
	default:
		return "read"
	}
}

// DefaultCapacity is the event-ring capacity used when none is given:
// plenty for any single benchmark query at the default workload scale.
const DefaultCapacity = 1 << 20

// Buffer is the bounded event recorder. One buffer serves every channel of
// a system, but each channel's tracer owns a private ring (bounded by the
// buffer capacity), so the per-channel event domains of a sharded run can
// record concurrently without locks — a channel's ring is only ever touched
// by the goroutine replaying that channel, exactly like the controller and
// device it instruments.
type Buffer struct {
	// Name labels the buffer in exports (typically the design name).
	Name string

	cap   int
	chans []*ChannelTracer
}

// NewBuffer builds a buffer whose per-channel rings hold at most capacity
// events each (<= 0 selects DefaultCapacity). Storage grows on demand up to
// the bound, so small runs never pay for an oversized ring.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Buffer{cap: capacity}
}

// Channel returns the tracer handle for one channel. Handles are cached:
// repeated calls return the same *ChannelTracer, so the controller and the
// device of a channel share one identity.
func (b *Buffer) Channel(ch int) *ChannelTracer {
	for len(b.chans) <= ch {
		b.chans = append(b.chans, nil)
	}
	if b.chans[ch] == nil {
		b.chans[ch] = &ChannelTracer{b: b, ch: int16(ch)}
	}
	return b.chans[ch]
}

// Len returns the number of retained events across all channels.
func (b *Buffer) Len() int {
	n := 0
	for _, t := range b.chans {
		if t != nil {
			n += len(t.events)
		}
	}
	return n
}

// Dropped returns how many events the rings have overwritten, summed across
// channels.
func (b *Buffer) Dropped() uint64 {
	var n uint64
	for _, t := range b.chans {
		if t != nil {
			n += t.dropped
		}
	}
	return n
}

// Capacity returns the per-channel ring bound.
func (b *Buffer) Capacity() int { return b.cap }

// Events returns the retained events, each channel's oldest-first, channels
// concatenated in index order. Within a channel the sequence is exact
// emission order; across channels events interleave by channel block, so
// time-ordered consumers (the Chrome exporter) sort by timestamp — which
// they already did, since even a single serial ring interleaves channels by
// completion order, not by time.
func (b *Buffer) Events() []Event {
	n := b.Len()
	out := make([]Event, 0, n)
	for _, t := range b.chans {
		if t == nil {
			continue
		}
		out = append(out, t.events[t.start:]...)
		out = append(out, t.events[:t.start]...)
	}
	return out
}

// ChannelTracer records one channel's events into that channel's private
// ring. It implements both mc.Tracer and dram.CmdTracer, so the same handle
// attaches to a channel's controller and device.
type ChannelTracer struct {
	b       *Buffer
	ch      int16
	events  []Event // grows up to b.cap, then wraps
	start   int     // index of the oldest event once wrapped
	dropped uint64
}

// add appends one event, overwriting the oldest once the ring is full.
func (t *ChannelTracer) add(e Event) {
	if len(t.events) < t.b.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.start] = e
	t.start++
	if t.start == t.b.cap {
		t.start = 0
	}
	t.dropped++
}

func reqFlags(isWrite, stride, gang bool) uint8 {
	var f uint8
	if isWrite {
		f |= FlagWrite
	}
	if stride {
		f |= FlagStride
	}
	if gang {
		f |= FlagGang
	}
	return f
}

// ReqEnqueued implements mc.Tracer.
func (t *ChannelTracer) ReqEnqueued(at dram.Cycle, r mc.Request, bank int32, queueDepth int) {
	t.add(Event{
		Kind: KindEnqueue, Chan: t.ch, Rank: -1, Group: -1,
		At: at, ID: r.ID, Addr: r.Addr, Bank: bank,
		Flags: reqFlags(r.IsWrite, r.Stride, r.Gang), Lane: uint8(r.Lane & 0xff),
		QDepth: int32(queueDepth),
	})
}

// ReqScheduled implements mc.Tracer.
func (t *ChannelTracer) ReqScheduled(at dram.Cycle, r mc.Request, bank int32) {
	t.add(Event{
		Kind: KindSchedule, Chan: t.ch, Rank: -1, Group: -1,
		At: at, ID: r.ID, Addr: r.Addr, Bank: bank,
		Flags: reqFlags(r.IsWrite, r.Stride, r.Gang), Lane: uint8(r.Lane & 0xff),
	})
}

// ReqCompleted implements mc.Tracer.
func (t *ChannelTracer) ReqCompleted(comp mc.Completion, bank int32) {
	r := comp.Req
	flags := reqFlags(r.IsWrite, r.Stride, r.Gang)
	if comp.RowHit {
		flags |= FlagRowHit
	}
	if comp.RowEmpty {
		flags |= FlagRowEmpty
	}
	if comp.Poisoned {
		flags |= FlagPoisoned
	}
	t.add(Event{
		Kind: KindComplete, Chan: t.ch, Rank: -1, Group: -1,
		At: comp.IssueAt, ID: r.ID, Addr: r.Addr, Bank: bank,
		Flags: flags, Lane: uint8(r.Lane & 0xff),
		Arrival: r.Arrival, DataStart: comp.DataStart, DataEnd: comp.DataEnd,
		Done: comp.DataEnd,
	})
}

// ReqFaulted implements mc.Tracer: a read burst decoded as uncorrectable.
// QDepth reuses the depth slot for the attempt number.
func (t *ChannelTracer) ReqFaulted(at dram.Cycle, r mc.Request, bank int32, attempt int, poisoned bool) {
	flags := reqFlags(r.IsWrite, r.Stride, r.Gang)
	if poisoned {
		flags |= FlagPoisoned
	}
	t.add(Event{
		Kind: KindFault, Chan: t.ch, Rank: -1, Group: -1,
		At: at, ID: r.ID, Addr: r.Addr, Bank: bank,
		Flags: flags, Lane: uint8(r.Lane & 0xff),
		QDepth: int32(attempt),
	})
}

// CommandIssued implements dram.CmdTracer.
func (t *ChannelTracer) CommandIssued(cmd dram.Command, at dram.Cycle, res dram.IssueResult) {
	var flags uint8
	if cmd.GangRanks {
		flags |= FlagGang
	}
	if cmd.Mode.IsStride() {
		flags |= FlagStride
	}
	t.add(Event{
		Kind: KindCommand, Chan: t.ch,
		Cmd: cmd.Kind, Mode: cmd.Mode, Flags: flags,
		Rank: int16(cmd.Rank), Group: int16(cmd.Group), Bank: int32(cmd.Bank),
		Row: int32(cmd.Row), Col: int32(cmd.Col),
		At: at, DataStart: res.DataStart, DataEnd: res.DataEnd, Done: res.Done,
	})
}
