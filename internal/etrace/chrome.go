package etrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"sam/internal/dram"
)

// chromeEvent is one JSON object in the Chrome trace-event format, the
// subset Perfetto and chrome://tracing load: metadata ("M"), complete
// slices ("X"), counters ("C"), nestable async begin/instant/end
// ("b"/"n"/"e"), and instants ("i").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Fixed per-channel thread (track) ids; rank-refresh and per-bank tracks
// are assigned dynamically after these.
const (
	tidRequests = 1 // request-lifecycle async spans
	tidDataBus  = 2 // RD/WR burst slices (globally serialized by the bus)
	tidQueue    = 3 // queue-depth counter fed by enqueue events
	tidDynamic  = 4 // first rank-refresh track
)

func procMeta(pid int, name string) chromeEvent {
	return chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}}
}

func threadMeta(pid, tid int, name string) chromeEvent {
	return chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

func counter(ts int64, name string, args map[string]any) chromeEvent {
	return chromeEvent{Name: name, Ph: "C", Ts: ts, Args: args}
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// bankKey orders per-bank tracks rank-major.
type bankKey struct {
	rank, group, bank int
}

// WriteChrome renders the trace as Chrome trace-event JSON. One tick of the
// format's microsecond timebase represents one DRAM bus cycle, so Perfetto
// timelines read directly in cycles.
//
// Layout: pid 0 holds the samplers' counter tracks (bus utilization,
// row-hit rate, queue depth, per-window command counts); each
// (buffer, channel) pair becomes its own process named "<buffer>/ch<N>"
// with a request-span track (async events per request class, begin at
// arrival, instant at schedule, end at data end), a data-bus track (RD/WR
// burst slices), a queue-depth counter, one refresh track per rank, and one
// ACT/PRE track per bank. Within every track, slices are emitted in
// non-decreasing time order and never overlap — the data bus is serialized
// by the device, ACT→PRE windows are separated by tRAS/tRP per bank, and
// refreshes by tREFI per rank — which trace validators check.
func WriteChrome(w io.Writer, bufs []*Buffer, samplers []*Sampler) error {
	var meta, data []chromeEvent

	if len(samplers) > 0 {
		meta = append(meta, procMeta(0, "counters"))
	}
	for _, sp := range samplers {
		prefix := sp.Name
		if prefix == "" {
			prefix = "series"
		}
		var prev Sample
		for _, smp := range sp.Samples {
			dc := smp.Ctl.Sub(prev.Ctl)
			dd := smp.Dev.Sub(prev.Dev)
			span := smp.At - prev.At
			busUtil, hitPct := 0.0, 0.0
			if span > 0 {
				busUtil = 100 * float64(dd.BusBusyCycles) / float64(span)
			}
			if n := dc.RowHits + dc.RowMisses + dc.RowEmpties; n > 0 {
				hitPct = 100 * float64(dc.RowHits) / float64(n)
			}
			data = append(data,
				counter(smp.At, prefix+"/bus_util_pct", map[string]any{"pct": round2(busUtil)}),
				counter(smp.At, prefix+"/row_hit_pct", map[string]any{"pct": round2(hitPct)}),
				counter(smp.At, prefix+"/queue", map[string]any{"depth": smp.Queue, "inflight": smp.Inflight}),
				counter(smp.At, prefix+"/window_bursts", map[string]any{
					"reads": dd.Reads, "writes": dd.Writes,
					"stride_reads": dd.StrideReads, "stride_writes": dd.StrideWrites,
				}),
			)
			prev = smp
		}
	}

	nextPid := 1
	for _, b := range bufs {
		if b == nil || b.Len() == 0 {
			continue
		}
		events := b.Events()

		// Discover the channels, refreshing ranks, and active banks this
		// buffer saw, so track ids are dense and deterministically ordered.
		chanSet := map[int16]bool{}
		rankSet := map[int16]map[int]bool{}     // per channel
		bankSet := map[int16]map[bankKey]bool{} // per channel
		for _, e := range events {
			chanSet[e.Chan] = true
			if e.Kind != KindCommand {
				continue
			}
			switch e.Cmd {
			case dram.CmdREF:
				if rankSet[e.Chan] == nil {
					rankSet[e.Chan] = map[int]bool{}
				}
				rankSet[e.Chan][int(e.Rank)] = true
			case dram.CmdACT, dram.CmdPRE:
				if bankSet[e.Chan] == nil {
					bankSet[e.Chan] = map[bankKey]bool{}
				}
				bankSet[e.Chan][bankKey{int(e.Rank), int(e.Group), int(e.Bank)}] = true
			}
		}
		chans := make([]int16, 0, len(chanSet))
		for ch := range chanSet {
			chans = append(chans, ch)
		}
		sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })

		chPid := map[int16]int{}
		refTid := map[int16]map[int]int{}
		bankTid := map[int16]map[bankKey]int{}
		for _, ch := range chans {
			pid := nextPid
			nextPid++
			chPid[ch] = pid
			name := fmt.Sprintf("ch%d", ch)
			if b.Name != "" {
				name = b.Name + "/" + name
			}
			meta = append(meta,
				procMeta(pid, name),
				threadMeta(pid, tidRequests, "requests"),
				threadMeta(pid, tidDataBus, "data bus"),
				threadMeta(pid, tidQueue, "queue"),
			)
			tid := tidDynamic
			ranks := make([]int, 0, len(rankSet[ch]))
			for r := range rankSet[ch] {
				ranks = append(ranks, r)
			}
			sort.Ints(ranks)
			refTid[ch] = map[int]int{}
			for _, r := range ranks {
				refTid[ch][r] = tid
				meta = append(meta, threadMeta(pid, tid, fmt.Sprintf("rank %d refresh", r)))
				tid++
			}
			keys := make([]bankKey, 0, len(bankSet[ch]))
			for k := range bankSet[ch] {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.rank != b.rank {
					return a.rank < b.rank
				}
				if a.group != b.group {
					return a.group < b.group
				}
				return a.bank < b.bank
			})
			bankTid[ch] = map[bankKey]int{}
			for _, k := range keys {
				bankTid[ch][k] = tid
				meta = append(meta, threadMeta(pid, tid,
					fmt.Sprintf("bank r%d.g%d.b%d", k.rank, k.group, k.bank)))
				tid++
			}
		}

		for _, e := range events {
			pid := chPid[e.Chan]
			switch e.Kind {
			case KindEnqueue:
				data = append(data, chromeEvent{
					Name: "queue", Ph: "C", Ts: e.At, Pid: pid, Tid: tidQueue,
					Args: map[string]any{"depth": e.QDepth},
				})
			case KindSchedule:
				data = append(data, chromeEvent{
					Name: e.ClassName(), Cat: "req", Ph: "n", Ts: e.At,
					Pid: pid, Tid: tidRequests,
					ID:   fmt.Sprintf("%d:%d", pid, e.ID),
					Args: map[string]any{"event": "scheduled"},
				})
			case KindComplete:
				id := fmt.Sprintf("%d:%d", pid, e.ID)
				data = append(data, chromeEvent{
					Name: e.ClassName(), Cat: "req", Ph: "b", Ts: e.Arrival,
					Pid: pid, Tid: tidRequests, ID: id,
					Args: map[string]any{
						"addr":       fmt.Sprintf("%#x", e.Addr),
						"bank":       e.Bank,
						"lane":       e.Lane,
						"gang":       e.Flags&FlagGang != 0,
						"row_hit":    e.Flags&FlagRowHit != 0,
						"row_empty":  e.Flags&FlagRowEmpty != 0,
						"issue":      e.At,
						"data_start": e.DataStart,
					},
				}, chromeEvent{
					Name: e.ClassName(), Cat: "req", Ph: "e", Ts: e.DataEnd,
					Pid: pid, Tid: tidRequests, ID: id,
				})
			case KindFault:
				data = append(data, chromeEvent{
					Name: "DUE", Cat: "fault", Ph: "i", Ts: e.At,
					Pid: pid, Tid: tidRequests,
					Args: map[string]any{
						"addr":     fmt.Sprintf("%#x", e.Addr),
						"attempt":  e.QDepth,
						"poisoned": e.Flags&FlagPoisoned != 0,
					},
				})
			case KindCommand:
				switch e.Cmd {
				case dram.CmdRD, dram.CmdWR:
					data = append(data, chromeEvent{
						Name: e.Cmd.String() + " " + e.Mode.String(),
						Cat:  "cmd", Ph: "X",
						Ts: e.DataStart, Dur: e.DataEnd - e.DataStart,
						Pid: pid, Tid: tidDataBus,
						Args: map[string]any{
							"rank": e.Rank, "group": e.Group, "bank": e.Bank,
							"row": e.Row, "col": e.Col,
							"issue": e.At, "gang": e.Flags&FlagGang != 0,
						},
					})
				case dram.CmdACT, dram.CmdPRE:
					data = append(data, chromeEvent{
						Name: e.Cmd.String(), Cat: "cmd", Ph: "X",
						Ts: e.At, Dur: e.Done - e.At,
						Pid:  pid,
						Tid:  bankTid[e.Chan][bankKey{int(e.Rank), int(e.Group), int(e.Bank)}],
						Args: map[string]any{"row": e.Row},
					})
				case dram.CmdREF:
					data = append(data, chromeEvent{
						Name: "REF", Cat: "cmd", Ph: "X",
						Ts: e.At, Dur: e.Done - e.At,
						Pid: pid, Tid: refTid[e.Chan][int(e.Rank)],
						Args: map[string]any{"rank": e.Rank},
					})
				default: // MRS or future kinds: a zero-width instant
					data = append(data, chromeEvent{
						Name: e.Cmd.String() + " " + e.Mode.String(),
						Cat:  "cmd", Ph: "i", Ts: e.At,
						Pid: pid, Tid: tidDataBus,
					})
				}
			}
		}
	}

	// Trace viewers require non-decreasing timestamps within a track;
	// stable sort keeps same-cycle events in emission order.
	sort.SliceStable(data, func(i, j int) bool { return data[i].Ts < data[j].Ts })

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := io.WriteString(bw,
		`{"otherData":{"ts_unit":"DRAM bus cycles (1 tick = 1 cycle)"},"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}
	for _, ev := range meta {
		if err := emit(ev); err != nil {
			return err
		}
	}
	for _, ev := range data {
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
