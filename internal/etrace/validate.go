package etrace

import (
	"encoding/json"
	"fmt"
)

// Summary reports what a validated trace contains.
type Summary struct {
	Events   int // total trace events
	Slices   int // complete ("X") slices
	Counters int // counter ("C") samples
	Spans    int // balanced async begin/end pairs
	Tracks   int // distinct (pid, tid) pairs carrying slices
}

func (s Summary) String() string {
	return fmt.Sprintf("%d events: %d slices on %d tracks, %d spans, %d counter samples",
		s.Events, s.Slices, s.Tracks, s.Spans, s.Counters)
}

// rawEvent is the schema ValidateChrome checks events against.
type rawEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

type trackID struct{ pid, tid int64 }
type spanID struct{ cat, id string }

// ValidateChrome checks that data is well-formed Chrome trace-event JSON
// with the invariants our exporter guarantees and trace viewers rely on:
// a known phase on every event, a timestamp on every non-metadata event,
// named non-negative-duration "X" slices in non-decreasing, non-overlapping
// time order per (pid, tid) track, counters with non-empty args, and async
// "b"/"e" pairs that balance per (cat, id) with the end at or after the
// begin. Both the {"traceEvents":[...]} object form and a bare event array
// are accepted. The CI trace-smoke job runs this via scripts/tracecheck.
func ValidateChrome(data []byte) (Summary, error) {
	var sum Summary
	var container struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	events := container.TraceEvents
	if err := json.Unmarshal(data, &container); err != nil {
		// Not an object — try the bare-array form.
		var arr []json.RawMessage
		if aerr := json.Unmarshal(data, &arr); aerr != nil {
			return sum, fmt.Errorf("trace is neither an object with traceEvents nor an array: %v", err)
		}
		events = arr
	} else {
		events = container.TraceEvents
		if events == nil {
			return sum, fmt.Errorf("trace object has no traceEvents array")
		}
	}

	type sliceState struct {
		lastTs  float64
		lastEnd float64
		seen    bool
	}
	slices := map[trackID]*sliceState{}
	spans := map[spanID][]float64{} // open begin timestamps
	for i, raw := range events {
		var e rawEvent
		if err := json.Unmarshal(raw, &e); err != nil {
			return sum, fmt.Errorf("event %d: malformed: %v", i, err)
		}
		sum.Events++
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "C", "b", "n", "e", "i":
		default:
			return sum, fmt.Errorf("event %d (%q): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts == nil {
			return sum, fmt.Errorf("event %d (%q, ph=%s): missing ts", i, e.Name, e.Ph)
		}
		ts := *e.Ts
		switch e.Ph {
		case "X":
			if e.Name == "" {
				return sum, fmt.Errorf("event %d: unnamed slice", i)
			}
			if e.Dur < 0 {
				return sum, fmt.Errorf("event %d (%q): negative dur %g", i, e.Name, e.Dur)
			}
			st := slices[trackID{e.Pid, e.Tid}]
			if st == nil {
				st = &sliceState{}
				slices[trackID{e.Pid, e.Tid}] = st
			}
			if st.seen {
				if ts < st.lastTs {
					return sum, fmt.Errorf("event %d (%q): ts %g before previous slice ts %g on track pid=%d tid=%d",
						i, e.Name, ts, st.lastTs, e.Pid, e.Tid)
				}
				if ts < st.lastEnd {
					return sum, fmt.Errorf("event %d (%q): ts %g overlaps previous slice ending %g on track pid=%d tid=%d",
						i, e.Name, ts, st.lastEnd, e.Pid, e.Tid)
				}
			}
			st.seen = true
			st.lastTs = ts
			st.lastEnd = ts + e.Dur
			sum.Slices++
		case "C":
			if len(e.Args) == 0 {
				return sum, fmt.Errorf("event %d (%q): counter without args", i, e.Name)
			}
			sum.Counters++
		case "b":
			spans[spanID{e.Cat, e.ID}] = append(spans[spanID{e.Cat, e.ID}], ts)
		case "e":
			open := spans[spanID{e.Cat, e.ID}]
			if len(open) == 0 {
				return sum, fmt.Errorf("event %d (%q): async end without begin (cat=%q id=%q)", i, e.Name, e.Cat, e.ID)
			}
			begin := open[len(open)-1]
			if ts < begin {
				return sum, fmt.Errorf("event %d (%q): async end at %g before begin at %g (cat=%q id=%q)",
					i, e.Name, ts, begin, e.Cat, e.ID)
			}
			spans[spanID{e.Cat, e.ID}] = open[:len(open)-1]
			sum.Spans++
		}
	}
	for k, open := range spans {
		if len(open) > 0 {
			return sum, fmt.Errorf("%d unclosed async span(s) for cat=%q id=%q", len(open), k.cat, k.id)
		}
	}
	sum.Tracks = len(slices)
	return sum, nil
}
