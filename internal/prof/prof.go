// Package prof wraps runtime/pprof for the command-line tools: one call
// starts CPU profiling, and the returned stop function finishes the CPU
// profile and writes a heap profile. Either path may be empty to skip
// that profile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins profiling. cpuPath, when non-empty, receives a CPU profile
// covering the time until stop is called; memPath, when non-empty, receives
// a heap profile taken at stop time (after a GC, so it reflects live
// objects rather than garbage). The returned stop function is idempotent:
// the first call does the work (and its error is remembered), later calls
// return that same result without touching the profiles again — so a
// command may both defer it and call it on an early-exit path. Even when
// the heap-profile write fails, the first call has already stopped and
// closed the CPU profile, leaving the process clean for a fresh Start.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	var once sync.Once
	var stopErr error
	return func() error {
		once.Do(func() { stopErr = finish(cpuFile, memPath) })
		return stopErr
	}, nil
}

// finish stops the CPU profile (if one is running) and writes the heap
// profile. The CPU half always runs to completion first, so a heap-write
// failure never leaves the runtime's CPU profiler started.
func finish(cpuFile *os.File, memPath string) error {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize live-object statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("prof: write heap profile: %w", err)
		}
	}
	return nil
}
