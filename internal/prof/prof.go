// Package prof wraps runtime/pprof for the command-line tools: one call
// starts CPU profiling, and the returned stop function finishes the CPU
// profile and writes a heap profile. Either path may be empty to skip
// that profile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling. cpuPath, when non-empty, receives a CPU profile
// covering the time until stop is called; memPath, when non-empty, receives
// a heap profile taken at stop time (after a GC, so it reflects live
// objects rather than garbage). The returned stop function is safe to call
// exactly once and must be called even on error paths that reach it, or the
// CPU profile will be truncated.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
