package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStopIdempotent pins the stop contract: the first call does the work,
// every later call returns the same result without re-running it (a second
// pass would double-stop the CPU profiler and rewrite the heap profile).
func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	st, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
	// Overwrite the heap profile; a second stop must NOT rewrite it.
	if err := os.WriteFile(mem, []byte("sentinel"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop returned %v, want the first call's nil", err)
	}
	after, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != int64(len("sentinel")) {
		t.Fatalf("second stop rewrote the heap profile (size %d, was sentinel %d from first stop size %d)",
			after.Size(), len("sentinel"), st.Size())
	}
}

// TestStopCPUOkMemFails pins the partial-failure path: with a valid CPU
// path but an uncreatable heap path, stop returns the heap error — once,
// with later calls repeating the remembered error — and still finishes
// the CPU profile, so a fresh Start succeeds immediately afterwards.
func TestStopCPUOkMemFails(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "does-not-exist", "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	first := stop()
	if first == nil {
		t.Fatal("stop succeeded despite uncreatable heap-profile path")
	}
	if second := stop(); second != first {
		t.Fatalf("second stop returned %v, want the remembered first error %v", second, first)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not finished despite heap failure: %v", err)
	}
	// The CPU profiler must be stopped: starting again would panic the
	// runtime ("cpu profiling already in use") via error otherwise.
	stop2, err := Start(filepath.Join(dir, "cpu2.prof"), "")
	if err != nil {
		t.Fatalf("fresh Start after failed stop: %v", err)
	}
	if err := stop2(); err != nil {
		t.Fatalf("fresh stop: %v", err)
	}
}

// TestStartNoop covers the both-paths-empty case: no profiler started, a
// no-op stop that stays a no-op on repeat calls.
func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := stop(); err != nil {
			t.Fatalf("stop #%d: %v", i+1, err)
		}
	}
}
