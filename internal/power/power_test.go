package power

import (
	"math"
	"testing"
)

func TestModelValidation(t *testing.T) {
	m := DDR4Model(18)
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := m
	bad.VDD = 0
	if bad.Validate() == nil {
		t.Error("zero VDD accepted")
	}
	bad = m
	bad.ActChipFraction = 0
	if bad.Validate() == nil {
		t.Error("zero ActChipFraction accepted")
	}
	bad = m
	bad.BackgroundScale = -1
	if bad.Validate() == nil {
		t.Error("negative BackgroundScale accepted")
	}
	bad = m
	bad.TRC = 0
	if bad.Validate() == nil {
		t.Error("zero tRC accepted")
	}
}

func TestEnergyAdditivity(t *testing.T) {
	// Invariant 10: the breakdown sums to the total, and activity is
	// additive — E(a+b) = E(a) + E(b) with matching cycle counts.
	m := DDR4Model(18)
	a := Activity{Acts: 100, Reads: 500, Writes: 50, Refreshes: 2, Cycles: 100000}
	b := Activity{Acts: 30, StrideReads: 200, StrideWrites: 10, Cycles: 50000}
	sum := Activity{
		Acts: a.Acts + b.Acts, Reads: a.Reads + b.Reads, Writes: a.Writes + b.Writes,
		StrideReads: a.StrideReads + b.StrideReads, StrideWrites: a.StrideWrites + b.StrideWrites,
		Refreshes: a.Refreshes + b.Refreshes, Cycles: a.Cycles + b.Cycles,
	}
	ea, eb, es := m.Energy(a), m.Energy(b), m.Energy(sum)
	if math.Abs(es.Total()-(ea.Total()+eb.Total())) > 1e-6*es.Total() {
		t.Fatalf("energy not additive: %v + %v != %v", ea.Total(), eb.Total(), es.Total())
	}
	if es.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
	if got := es.Background + es.ActPre + es.RdWr + es.Refresh; math.Abs(got-es.Total()) > 1e-9 {
		t.Fatal("breakdown does not sum to total")
	}
}

func TestStrideCurrentsRaiseSAMIOEnergy(t *testing.T) {
	// SAM-IO's stride bursts use x16-class currents: the same burst count
	// must cost more energy than regular bursts.
	samIO := DDR4Model(18)
	samIO.Stride = DDR4x16()
	regular := Activity{Reads: 1000, Cycles: 100000}
	strided := Activity{StrideReads: 1000, Cycles: 100000}
	er, es := samIO.Energy(regular), samIO.Energy(strided)
	if es.RdWr <= er.RdWr {
		t.Fatalf("stride RdWr energy %v not above regular %v", es.RdWr, er.RdWr)
	}
	// SAM-en (fine-grained activation) erases the difference.
	samEn := DDR4Model(18)
	if samEn.Energy(strided).RdWr != samEn.Energy(regular).RdWr {
		t.Fatal("SAM-en stride energy should equal regular")
	}
}

func TestFineGrainedActivationScalesActEnergy(t *testing.T) {
	full := DDR4Model(18)
	fine := DDR4Model(18)
	fine.ActChipFraction = 0.25
	a := Activity{Acts: 1000, Cycles: 1000}
	if got, want := fine.Energy(a).ActPre, full.Energy(a).ActPre*0.25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("fine-grained ACT energy %v, want %v", got, want)
	}
}

func TestRRAMCharacter(t *testing.T) {
	// RRAM: near-zero background, writes far more expensive than reads.
	rram := RRAMModel(18)
	ddr := DDR4Model(18)
	idle := Activity{Cycles: 1000000}
	if rram.Energy(idle).Background >= ddr.Energy(idle).Background/5 {
		t.Fatal("RRAM background power should be a small fraction of DRAM's")
	}
	wr := Activity{Writes: 1000, Cycles: 1000}
	rd := Activity{Reads: 1000, Cycles: 1000}
	if rram.Energy(wr).RdWr <= 2*rram.Energy(rd).RdWr {
		t.Fatal("RRAM writes should cost much more than reads")
	}
}

func TestAveragePowerConversion(t *testing.T) {
	m := DDR4Model(18)
	a := Activity{Reads: 1000, Acts: 100, Cycles: 1_200_000} // 1 ms at 1200 MHz
	e := m.Energy(a)
	p := m.AveragePowerMW(e, a.Cycles)
	// total mW = total nJ / 1e6 ns * 1e3... cross-check numerically:
	seconds := float64(a.Cycles) / 1200e6
	want := e.Total() * 1e-9 / seconds * 1e3
	got := p.Background + p.ActPre + p.RdWr + p.Refresh
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("power %v mW, want %v", got, want)
	}
	if zero := m.AveragePowerMW(e, 0); zero.Total() != 0 {
		t.Fatal("zero-cycle power should be zero")
	}
	// Background power of an idle DDR4 rank should land in a plausible
	// datasheet range (hundreds of mW for 18 chips).
	idleP := m.AveragePowerMW(m.Energy(Activity{Cycles: 1_200_000}), 1_200_000)
	if idleP.Background < 300 || idleP.Background > 2500 {
		t.Fatalf("idle rank background %v mW implausible", idleP.Background)
	}
}

func TestBackgroundScale(t *testing.T) {
	base := DDR4Model(18)
	scaled := DDR4Model(18)
	scaled.BackgroundScale = 1.02 // SAM-sub's +2%
	a := Activity{Cycles: 100000}
	ratio := scaled.Energy(a).Background / base.Energy(a).Background
	if math.Abs(ratio-1.02) > 1e-9 {
		t.Fatalf("background scale ratio %v, want 1.02", ratio)
	}
}

func TestPerBankActPreSumsToBreakdown(t *testing.T) {
	// The spatial split must reconstruct Breakdown.ActPre exactly: one ACT
	// costs ActPreEnergyNJ, and per-bank energies sum to the total.
	m := DDR4Model(18)
	if e := m.ActPreEnergyNJ(); e <= 0 {
		t.Fatalf("per-ACT energy %v, want > 0", e)
	}
	acts := []uint64{5, 0, 12, 3}
	var total uint64
	for _, n := range acts {
		total += n
	}
	b := m.Energy(Activity{Acts: total})
	per := m.PerBankActPre(acts)
	if len(per) != len(acts) {
		t.Fatalf("per-bank length %d, want %d", len(per), len(acts))
	}
	var sum float64
	for i, e := range per {
		if acts[i] == 0 && e != 0 {
			t.Fatalf("idle bank %d charged %v nJ", i, e)
		}
		sum += e
	}
	if math.Abs(sum-b.ActPre) > 1e-9*b.ActPre {
		t.Fatalf("per-bank sum %v != breakdown ActPre %v", sum, b.ActPre)
	}
}
