// Package power estimates memory power and energy with the IDD-based
// methodology of Micron's DDR4 power calculator, which the paper uses:
// per-command-class energies derived from datasheet supply currents, plus
// background power, summed over a run's command counts and duration.
//
// Absolute milliwatts depend on the datasheet excerpt; what the experiments
// rely on are the *mechanisms*: SAM-IO's stride fetches draw x16-class
// current, SAM-en's fine-grained activation restores x4-class draw, RRAM
// idles near zero but pays heavily per write.
package power

import "fmt"

// ChipCurrents holds per-chip IDD values in milliamps.
type ChipCurrents struct {
	IDD0  float64 // one-bank ACT/PRE cycle average
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh
}

// Model converts command activity into energy.
type Model struct {
	Name string
	VDD  float64 // volts
	// Chips is the rank width including check chips (18 for SSC x4).
	Chips int
	// Regular applies to normal-mode accesses; Stride to SAM stride-mode
	// accesses (SAM-IO fetches through the x16 path; SAM-en's fine-grained
	// activation makes Stride equal Regular again).
	Regular, Stride ChipCurrents
	// ActChipFraction scales activation energy by the fraction of mats a
	// row activation really opens (fine-grained activation, Fig. 8a).
	ActChipFraction float64
	// BackgroundScale inflates standby power (SAM-sub's +2% extra decode
	// and sense-amp logic).
	BackgroundScale float64
	// Timing inputs for per-command energy.
	TRC, TBL, TRFC int // cycles
	ClockMHz       float64
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.VDD <= 0 || m.Chips <= 0 || m.ClockMHz <= 0 {
		return fmt.Errorf("power: bad electrical params in %q", m.Name)
	}
	if m.TRC <= 0 || m.TBL <= 0 {
		return fmt.Errorf("power: bad timing params in %q", m.Name)
	}
	if m.ActChipFraction <= 0 || m.ActChipFraction > 1 {
		return fmt.Errorf("power: ActChipFraction %v out of (0,1]", m.ActChipFraction)
	}
	if m.BackgroundScale <= 0 {
		return fmt.Errorf("power: BackgroundScale %v not positive", m.BackgroundScale)
	}
	return nil
}

// Activity is the command tally of one run.
type Activity struct {
	Acts         uint64
	Reads        uint64 // regular-mode bursts
	Writes       uint64
	StrideReads  uint64 // stride-mode bursts
	StrideWrites uint64
	Refreshes    uint64
	Cycles       uint64 // run duration in bus cycles
}

// Breakdown is energy by category in nanojoules (the Fig. 13 stack).
type Breakdown struct {
	Background float64
	ActPre     float64
	RdWr       float64
	Refresh    float64
}

// Total sums the categories.
func (b Breakdown) Total() float64 {
	return b.Background + b.ActPre + b.RdWr + b.Refresh
}

// nsPerCycle converts the model clock.
func (m Model) nsPerCycle() float64 { return 1e3 / m.ClockMHz }

// Energy computes the run's energy breakdown in nanojoules.
// Per-command energies follow the Micron calculator's structure:
//
//	E_act    = (IDD0 - IDD3N) * VDD * tRC
//	E_rd/wr  = (IDD4x - IDD3N) * VDD * tBL
//	E_ref    = (IDD5B - IDD2N) * VDD * tRFC
//	E_bg     = IDD3N * VDD * cycles     (open-page: rows sit active)
//
// with currents in mA and times in ns, giving picojoule-scale products that
// are summed per chip across the rank (converted to nJ).
func (m Model) Energy(a Activity) Breakdown {
	ns := m.nsPerCycle()
	chips := float64(m.Chips)
	toNJ := 1e-3 // mA * V * ns = pJ; 1e-3 pJ->nJ

	rdE := (m.Regular.IDD4R - m.Regular.IDD3N) * m.VDD * float64(m.TBL) * ns * chips * toNJ
	wrE := (m.Regular.IDD4W - m.Regular.IDD3N) * m.VDD * float64(m.TBL) * ns * chips * toNJ
	srdE := (m.Stride.IDD4R - m.Stride.IDD3N) * m.VDD * float64(m.TBL) * ns * chips * toNJ
	swrE := (m.Stride.IDD4W - m.Stride.IDD3N) * m.VDD * float64(m.TBL) * ns * chips * toNJ
	refE := (m.Regular.IDD5B - m.Regular.IDD2N) * m.VDD * float64(m.TRFC) * ns * chips * toNJ
	bgP := m.Regular.IDD3N * m.VDD * m.BackgroundScale * chips // mW

	var b Breakdown
	b.ActPre = float64(a.Acts) * m.ActPreEnergyNJ()
	b.RdWr = float64(a.Reads)*rdE + float64(a.Writes)*wrE +
		float64(a.StrideReads)*srdE + float64(a.StrideWrites)*swrE
	b.Refresh = float64(a.Refreshes) * refE
	b.Background = bgP * float64(a.Cycles) * ns * toNJ
	return b
}

// ActPreEnergyNJ returns the activate/precharge-cycle energy of one ACT in
// nanojoules — the per-event cost Energy charges to Breakdown.ActPre,
// including the fine-grained-activation scaling.
func (m Model) ActPreEnergyNJ() float64 {
	return (m.Regular.IDD0 - m.Regular.IDD3N) * m.VDD * float64(m.TRC) * m.nsPerCycle() *
		float64(m.Chips) * 1e-3 * m.ActChipFraction
}

// PerBankActPre converts per-bank activate counts into per-bank activation
// energy in nanojoules — the spatial split of Breakdown.ActPre that the
// per-bank accounting in internal/dram feeds.
func (m Model) PerBankActPre(acts []uint64) []float64 {
	e := m.ActPreEnergyNJ()
	out := make([]float64, len(acts))
	for i, n := range acts {
		out[i] = float64(n) * e
	}
	return out
}

// AveragePowerMW converts a breakdown back to average power over the run.
func (m Model) AveragePowerMW(b Breakdown, cycles uint64) Breakdown {
	if cycles == 0 {
		return Breakdown{}
	}
	seconds := float64(cycles) * m.nsPerCycle() * 1e-9
	div := func(e float64) float64 { return e * 1e-9 / seconds * 1e3 } // nJ -> mW
	return Breakdown{
		Background: div(b.Background),
		ActPre:     div(b.ActPre),
		RdWr:       div(b.RdWr),
		Refresh:    div(b.Refresh),
	}
}

// DDR4x4 returns the regular x4 chip currents (Micron 8Gb DDR4-2400
// datasheet class values).
func DDR4x4() ChipCurrents {
	return ChipCurrents{IDD0: 58, IDD2N: 34, IDD3N: 44, IDD4R: 140, IDD4W: 130, IDD5B: 190}
}

// DDR4x16 returns x16-mode currents: the wide internal fetch moves four
// column words and drives four times the array datapath.
func DDR4x16() ChipCurrents {
	return ChipCurrents{IDD0: 68, IDD2N: 37, IDD3N: 55, IDD4R: 250, IDD4W: 230, IDD5B: 196}
}

// RRAMCurrents returns the crossbar-RRAM personality modeled after Lee et
// al.: near-zero standby (non-volatile, no refresh), moderate reads,
// expensive writes.
func RRAMCurrents() ChipCurrents {
	return ChipCurrents{IDD0: 22, IDD2N: 1.5, IDD3N: 2.5, IDD4R: 160, IDD4W: 520, IDD5B: 0}
}

// DDR4Model builds the baseline DRAM power model for a rank of chips.
func DDR4Model(chips int) Model {
	return Model{
		Name: "DDR4", VDD: 1.2, Chips: chips,
		Regular: DDR4x4(), Stride: DDR4x4(),
		ActChipFraction: 1, BackgroundScale: 1,
		TRC: 56, TBL: 4, TRFC: 420, ClockMHz: 1200,
	}
}

// RRAMModel builds the RRAM power model.
func RRAMModel(chips int) Model {
	m := DDR4Model(chips)
	m.Name = "RRAM"
	m.Regular, m.Stride = RRAMCurrents(), RRAMCurrents()
	m.TRFC = 1 // no refresh; refresh count will be zero anyway
	return m
}
