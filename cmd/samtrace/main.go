// Command samtrace generates and replays memory access traces against the
// controller+device stack, bypassing the query layer — useful for studying
// the raw timing behaviour of access patterns (and for feeding traces from
// other tools through SAM's memory system).
//
// Usage:
//
//	samtrace -gen strided -n 4096 > strided.trace
//	samtrace -replay strided.trace
//	samtrace -gen sequential -n 4096 | samtrace -replay -
//	samtrace -gen random -n 8192 -replay -   (generate and replay in one go)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sam/internal/dram"
	"sam/internal/etrace"
	"sam/internal/mc"
	"sam/internal/obs"
	"sam/internal/prof"
	"sam/internal/stats"
	"sam/internal/trace"
)

func main() {
	gen := flag.String("gen", "", "generate a trace: sequential, strided, random")
	n := flag.Int("n", 4096, "requests to generate")
	stride := flag.Int("stride", 1024, "byte stride for the strided pattern")
	replay := flag.String("replay", "", "replay a trace file ('-' for stdin)")
	rram := flag.Bool("rram", false, "replay against the RRAM personality")
	seed := flag.Int64("seed", 1, "generator seed")
	statsJSON := flag.String("stats-json", "", "write replay metrics as JSON to this file ('-' for stdout)")
	eventOut := flag.String("trace-out", "", "write a cycle-accurate Chrome/Perfetto trace-event JSON of the replay")
	traceCSV := flag.String("trace-csv", "", "write the windowed time-series samples as CSV to this file")
	traceWindow := flag.Int64("trace-window", 2048, "sampling window for the trace time series (bus cycles)")
	traceLimit := flag.Int("trace-limit", etrace.DefaultCapacity, "event-ring capacity; oldest events drop beyond this")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// fail closes the (idempotent, nil-safe) plane first: os.Exit skips
	// the deferred Close, and an aborted replay should still summarize
	// its event log.
	var plane *obs.Plane
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "samtrace:", err)
		_ = plane.Close()
		os.Exit(1)
	}

	plane, perr := obsFlags.Start(os.Stderr)
	if perr != nil {
		fail(perr)
	}
	defer func() {
		if err := plane.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "samtrace: obs:", err)
		}
	}()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	var tr *trace.Trace
	if *gen != "" {
		var err error
		tr, err = generate(*gen, *n, *stride, *seed)
		if err != nil {
			fail(err)
		}
		if *replay == "" {
			if err := tr.Write(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
	}
	if *replay != "" {
		if tr == nil {
			in := os.Stdin
			if *replay != "-" {
				f, err := os.Open(*replay)
				if err != nil {
					fail(err)
				}
				defer f.Close()
				in = f
			}
			var err error
			tr, err = trace.Read(in)
			if err != nil {
				fail(err)
			}
		}
		topts := traceOpts{out: *eventOut, csv: *traceCSV, window: *traceWindow, limit: *traceLimit}
		if err := report(tr, *rram, *statsJSON, topts, plane); err != nil {
			fail(err)
		}
		return
	}
	fail(fmt.Errorf("nothing to do: pass -gen and/or -replay"))
}

func generate(kind string, n, stride int, seed int64) (*trace.Trace, error) {
	tr := &trace.Trace{}
	rng := rand.New(rand.NewSource(seed))
	arrival := dram.Cycle(0)
	for i := 0; i < n; i++ {
		rec := trace.Record{Arrival: arrival}
		switch kind {
		case "sequential":
			rec.Addr = uint64(i) * 64
		case "strided":
			// Field-scan shape: one line per record at the given stride,
			// issued as SAM strided requests (one per group of 8).
			rec.Addr = uint64(i) * uint64(stride) * 8
			rec.Stride = true
			rec.Lane = (i / 64) % 4
			rec.Gang = true
		case "random":
			rec.Addr = uint64(rng.Intn(1<<28)) &^ 63
			rec.IsWrite = rng.Intn(4) == 0
		default:
			return nil, fmt.Errorf("unknown pattern %q", kind)
		}
		arrival += dram.Cycle(1 + rng.Intn(4))
		tr.Add(rec)
	}
	return tr, nil
}

// traceOpts carries the event-tracing flags into the replay.
type traceOpts struct {
	out, csv string
	window   int64
	limit    int
}

func (o traceOpts) enabled() bool { return o.out != "" || o.csv != "" }

func report(tr *trace.Trace, rram bool, statsJSON string, topts traceOpts, plane *obs.Plane) error {
	cfg := dram.DDR4_2400()
	if rram {
		cfg = dram.RRAM()
	}
	dev := dram.NewDevice(cfg)
	ctrl := mc.NewController(dev, mc.DefaultConfig())
	reg := stats.NewRegistry()
	ctrl.Metrics = mc.NewMetrics(reg)

	// Event tracing: the replay stack is single-channel and freshly built,
	// so the controller/device stats are already run-relative and the
	// completion observer can drive the windowed sampler directly.
	var buf *etrace.Buffer
	var sp *etrace.Sampler
	var observe func(mc.Completion)
	if topts.enabled() {
		buf = etrace.NewBuffer(topts.limit)
		sp = etrace.NewSampler(topts.window)
		ct := buf.Channel(0)
		ctrl.Trace = ct
		dev.Trace = ct
		var hw dram.Cycle
		observe = func(c mc.Completion) {
			if c.DataEnd > hw {
				hw = c.DataEnd
			}
			for sp.Due(int64(hw)) {
				sp.Record(etrace.Sample{
					At: sp.Advance(), Ctl: ctrl.Stats, Dev: dev.Stats.Clone(),
					Queue: ctrl.Pending(),
				})
			}
		}
	}
	finish := plane.Single("replay")
	comps, err := trace.ReplayObserved(tr, ctrl, observe)
	finish(err)
	// The replay mutates reg from this goroutine, so the controller
	// registry joins the /metrics surface only once it has quiesced.
	plane.AddSource(reg.Snapshot)
	if err != nil {
		// Surface how far the replay got instead of discarding the partial
		// result with the error.
		fmt.Fprintf(os.Stderr, "samtrace: replay stopped after %d of %d requests completed\n",
			len(comps), tr.Len())
		return err
	}

	var end dram.Cycle
	for _, c := range comps {
		if c.DataEnd > end {
			end = c.DataEnd
		}
	}
	st := ctrl.Stats
	fmt.Printf("device        %s\n", cfg.Name)
	fmt.Printf("requests      %d (%d reads, %d writes, %d strided)\n",
		len(comps), st.Reads, st.Writes, st.StrideAccesses)
	fmt.Printf("cycles        %d (%.3f us)\n", end, cfg.CyclesToNs(uint64(end))/1e3)
	if len(comps) > 0 {
		fmt.Printf("throughput    %.2f cycles/request\n", float64(end)/float64(len(comps)))
	}
	total := st.RowHits + st.RowMisses + st.RowEmpties
	if total > 0 {
		fmt.Printf("row buffer    %.1f%% hit, %.1f%% conflict, %.1f%% empty\n",
			100*float64(st.RowHits)/float64(total),
			100*float64(st.RowMisses)/float64(total),
			100*float64(st.RowEmpties)/float64(total))
	}
	for _, class := range []struct {
		name string
		h    *stats.Histogram
	}{
		{"read.normal ", ctrl.Metrics.LatReadNormal},
		{"read.stride ", ctrl.Metrics.LatReadStride},
		{"write.normal", ctrl.Metrics.LatWriteNormal},
		{"write.stride", ctrl.Metrics.LatWriteStride},
	} {
		if class.h.Total() == 0 {
			continue
		}
		fmt.Printf("lat %s  n=%d mean %.1f, p50 <=%d, p99 <=%d cycles\n",
			class.name, class.h.Total(), class.h.Mean(),
			class.h.Quantile(0.5), class.h.Quantile(0.99))
	}
	fmt.Printf("device cmds   ACT=%d PRE=%d REF=%d modeSwitch=%d\n",
		dev.Stats.Acts, dev.Stats.Pres, dev.Stats.Refs, dev.Stats.ModeSwitches)

	if topts.enabled() {
		// Close the last partial window so the series totals match the run.
		if n := len(sp.Samples); n == 0 || sp.Samples[n-1].At < int64(end) {
			sp.Record(etrace.Sample{
				At: int64(end), Ctl: ctrl.Stats, Dev: dev.Stats.Clone(),
				Queue: ctrl.Pending(),
			})
		}
		buf.Name = cfg.Name
		sp.Name = cfg.Name
		if topts.out != "" {
			if err := writeTraceFile(topts.out, func(f *os.File) error {
				return etrace.WriteChrome(f, []*etrace.Buffer{buf}, []*etrace.Sampler{sp})
			}); err != nil {
				return err
			}
			fmt.Printf("event trace   %d events (%d dropped), %d samples -> %s\n",
				buf.Len(), buf.Dropped(), len(sp.Samples), topts.out)
		}
		if topts.csv != "" {
			if err := writeTraceFile(topts.csv, func(f *os.File) error {
				return etrace.WriteCSV(f, sp)
			}); err != nil {
				return err
			}
			fmt.Printf("trace csv     %d samples (window %d cycles) -> %s\n",
				len(sp.Samples), sp.Window, topts.csv)
		}
	}

	if statsJSON != "" {
		out := struct {
			Device   string
			Requests int
			Cycles   dram.Cycle
			Metrics  *stats.Snapshot
		}{cfg.Name, len(comps), end, reg.Snapshot()}
		enc, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if statsJSON == "-" {
			_, err = os.Stdout.Write(enc)
			return err
		}
		return os.WriteFile(statsJSON, enc, 0o644)
	}
	return nil
}

func writeTraceFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
