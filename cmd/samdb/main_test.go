package main

import (
	"bytes"
	"strings"
	"testing"

	"sam/internal/core"
	"sam/internal/design"
)

func testShell(t *testing.T) (*shell, *bytes.Buffer) {
	t.Helper()
	sh := newShell(design.SAMEn, core.Workload{TaRecords: 256, TbRecords: 512, Seed: 1})
	var buf bytes.Buffer
	sh.out.Reset(&buf)
	return sh, &buf
}

func TestShellQuery(t *testing.T) {
	sh, buf := testShell(t)
	sh.run("SELECT SUM(f9) FROM Tb WHERE f10 > 2")
	out := buf.String()
	if !strings.Contains(out, "rows ") || !strings.Contains(out, "cycles") {
		t.Fatalf("query output: %q", out)
	}
	if !strings.Contains(out, "[SAM-en]") {
		t.Fatalf("design tag missing: %q", out)
	}
}

func TestShellDesignSwitch(t *testing.T) {
	sh, buf := testShell(t)
	sh.run(`\design RC-NVM-wd`)
	if sh.kind != design.RCNVMWd {
		t.Fatalf("design not switched: %v", sh.kind)
	}
	buf.Reset()
	sh.run(`\design bogus`)
	if !strings.Contains(buf.String(), "unknown design") {
		t.Fatalf("bad design accepted: %q", buf.String())
	}
}

func TestShellCompare(t *testing.T) {
	sh, buf := testShell(t)
	sh.run(`\compare SELECT SUM(f9) FROM Tb WHERE f10 > 2`)
	out := buf.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "baseline") {
		t.Fatalf("compare output: %q", out)
	}
}

func TestShellBench(t *testing.T) {
	sh, buf := testShell(t)
	sh.run(`\bench Q4`)
	out := buf.String()
	if !strings.Contains(out, "SELECT SUM(f9) FROM Tb") {
		t.Fatalf("bench output: %q", out)
	}
	buf.Reset()
	sh.run(`\bench nope`)
	if !strings.Contains(buf.String(), "unknown benchmark") {
		t.Fatal("bad bench name accepted")
	}
}

func TestShellMisc(t *testing.T) {
	sh, buf := testShell(t)
	sh.run(`\help`)
	if !strings.Contains(buf.String(), "compare") {
		t.Fatal("help output")
	}
	buf.Reset()
	sh.run(`\tables`)
	if !strings.Contains(buf.String(), "Ta: 256 records") {
		t.Fatalf("tables output: %q", buf.String())
	}
	buf.Reset()
	sh.run(`\wat`)
	if !strings.Contains(buf.String(), "unknown command") {
		t.Fatal("unknown command not reported")
	}
	buf.Reset()
	sh.run("")
	sh.run("-- a comment")
	if buf.String() != "" {
		t.Fatalf("blank/comment lines produced output: %q", buf.String())
	}
	buf.Reset()
	sh.run("SELECT nonsense")
	if !strings.Contains(buf.String(), "error:") {
		t.Fatal("bad SQL not reported")
	}
}

func TestShellWarmSystemsCached(t *testing.T) {
	sh, _ := testShell(t)
	a := sh.system(design.SAMEn)
	b := sh.system(design.SAMEn)
	if a != b {
		t.Fatal("system not cached per design")
	}
	if sh.system(design.Baseline) == a {
		t.Fatal("designs share a system")
	}
}

func TestKindByName(t *testing.T) {
	if k, ok := kindByName("sam-en"); !ok || k != design.SAMEn {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := kindByName("nope"); ok {
		t.Fatal("bogus design resolved")
	}
}
