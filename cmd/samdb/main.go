// Command samdb is an interactive SQL shell over the simulated memory
// system: type queries from the Table 3 dialect and see their results
// together with the memory-system cost on the chosen design — the fastest
// way to build intuition for what SAM does to a query.
//
//	$ go run ./cmd/samdb -design SAM-en
//	samdb> SELECT SUM(f9) FROM Ta WHERE f10 > 2
//	rows 4148   SUM(f9)=3.79066e+22
//	16434 cycles, 3893 requests (3893 strided), 99.9% row hits
//	samdb> \design baseline
//	samdb> SELECT SUM(f9) FROM Ta WHERE f10 > 2
//	...
//	samdb> \compare SELECT AVG(f1) FROM Tb WHERE f10 > 2
//	baseline 37211 cycles | SAM-en 8922 cycles | speedup 4.17x
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/etrace"
	"sam/internal/imdb"
	"sam/internal/obs"
	"sam/internal/prof"
	"sam/internal/sim"
	"sam/internal/sql"
	"sam/internal/stats"
)

type shell struct {
	kind     design.Kind
	workload core.Workload
	systems  map[design.Kind]*sim.System
	out      *bufio.Writer
	plane    *obs.Plane

	// The session accumulator: every query's metrics snapshot merged in
	// arrival order, behind a mutex because live /metrics scrapes read it
	// concurrently with the REPL goroutine.
	mu      sync.Mutex
	merged  *stats.Snapshot
	queries int
}

func newShell(kind design.Kind, w core.Workload) *shell {
	return &shell{
		kind:     kind,
		workload: w,
		systems:  map[design.Kind]*sim.System{},
		out:      bufio.NewWriter(os.Stdout),
		merged:   &stats.Snapshot{},
	}
}

// record folds one run's metrics into the session accumulator.
func (sh *shell) record(st sim.RunStats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.queries++
	_ = sh.merged.Merge(st.Metrics)
}

// sessionSnapshot copies the accumulator — the shell's /metrics source
// and the -stats-json payload.
func (sh *shell) sessionSnapshot() *stats.Snapshot {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := &stats.Snapshot{}
	_ = out.Merge(sh.merged)
	return out
}

// system lazily builds (and caches) a system per design so repeated queries
// see warm caches, like a resident database would.
func (sh *shell) system(kind design.Kind) *sim.System {
	if s, ok := sh.systems[kind]; ok {
		return s
	}
	d := design.New(kind, design.Options{})
	s := sim.NewSystem(d)
	s.AddTable(imdb.NewTable(imdb.Ta(sh.workload.TaRecords), sh.workload.Seed), false)
	s.AddTable(imdb.NewTable(imdb.Tb(sh.workload.TbRecords), sh.workload.Seed+1), false)
	sh.systems[kind] = s
	return s
}

func kindByName(name string) (design.Kind, bool) {
	for _, k := range append([]design.Kind{design.Baseline, design.Ideal}, design.AllEvaluated()...) {
		if strings.EqualFold(k.String(), name) {
			return k, true
		}
	}
	return 0, false
}

func (sh *shell) printf(format string, args ...interface{}) {
	fmt.Fprintf(sh.out, format, args...)
}

func (sh *shell) run(line string) {
	defer sh.out.Flush()
	line = strings.TrimSpace(line)
	switch {
	case line == "" || strings.HasPrefix(line, "--"):
		return
	case line == `\help` || line == `\h`:
		sh.printf("  <sql>              run on the current design (%s)\n", sh.kind)
		sh.printf("  \\design <name>     switch design (baseline, ideal, SAM-sub, SAM-IO, SAM-en,\n")
		sh.printf("                     GS-DRAM, GS-DRAM-ecc, RC-NVM-bit, RC-NVM-wd)\n")
		sh.printf("  \\compare <sql>     run on baseline and the current design, report speedup\n")
		sh.printf("  \\tables            show loaded tables\n")
		sh.printf("  \\bench <name>      run a Table 3 benchmark query (Q1..Qs6)\n")
		sh.printf("  \\trace <file> <sql> run with cycle-accurate tracing, write Perfetto JSON\n")
		sh.printf("  \\quit              exit\n")
	case strings.HasPrefix(line, `\design`):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\design`))
		if k, ok := kindByName(name); ok {
			sh.kind = k
			sh.printf("design: %s\n", k)
		} else {
			sh.printf("unknown design %q\n", name)
		}
	case line == `\tables`:
		sh.printf("  Ta: %d records x 128 fields (1KB records)\n", sh.workload.TaRecords)
		sh.printf("  Tb: %d records x 16 fields (128B records)\n", sh.workload.TbRecords)
	case strings.HasPrefix(line, `\compare`):
		q := strings.TrimSpace(strings.TrimPrefix(line, `\compare`))
		sh.compare(q)
	case strings.HasPrefix(line, `\trace`):
		rest := strings.TrimSpace(strings.TrimPrefix(line, `\trace`))
		file, q, ok := strings.Cut(rest, " ")
		if !ok || file == "" || strings.TrimSpace(q) == "" {
			sh.printf("usage: \\trace <file> <sql>\n")
			return
		}
		sh.trace(file, strings.TrimSpace(q))
	case strings.HasPrefix(line, `\bench`):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\bench`))
		for _, b := range core.Benchmark() {
			if strings.EqualFold(b.Name, name) {
				sh.printf("%s: %s\n", b.Name, b.SQL)
				sh.query(b.SQL, b.Params)
				return
			}
		}
		sh.printf("unknown benchmark %q\n", name)
	case strings.HasPrefix(line, `\`):
		sh.printf("unknown command %q (try \\help)\n", line)
	default:
		sh.query(line, sql.Params{})
	}
}

func (sh *shell) query(text string, params sql.Params) {
	finish := sh.plane.Single("query")
	r, err := sh.system(sh.kind).RunQuery(text, params)
	finish(err)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	sh.record(r.Stats)
	sh.printf("rows %d", r.Rows)
	for i, agg := range r.Aggregates {
		sh.printf("   agg[%d]=%.6g", i, agg)
	}
	sh.printf("\n%d cycles, %d requests (%d strided), %.1f%% row hits [%s]\n",
		r.Stats.Cycles, r.Stats.MemRequests,
		r.Stats.Device.StrideReads+r.Stats.Device.StrideWrites,
		r.Stats.RowHitRate*100, sh.kind)
}

// traceWindow is the sampling window for \trace time series (bus cycles).
const traceWindow = 2048

// trace runs one query on the current design with cycle-accurate event
// tracing attached and writes the Chrome/Perfetto JSON to file. The
// attachment is removed afterwards, so subsequent queries pay no tracing
// cost.
func (sh *shell) trace(file, text string) {
	s := sh.system(sh.kind)
	buf := etrace.NewBuffer(0)
	buf.Name = sh.kind.String()
	sp := etrace.NewSampler(traceWindow)
	sp.Name = sh.kind.String()
	s.AttachEventTrace(buf, sp)
	defer s.AttachEventTrace(nil, nil)
	finish := sh.plane.Single("trace")
	r, err := s.RunQuery(text, sql.Params{})
	finish(err)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	sh.record(r.Stats)
	f, err := os.Create(file)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	if err := etrace.WriteChrome(f, []*etrace.Buffer{buf}, []*etrace.Sampler{sp}); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	sh.printf("rows %d, %d cycles [%s]\n", r.Rows, r.Stats.Cycles, sh.kind)
	sh.printf("event trace: %d events (%d dropped), %d samples -> %s\n",
		buf.Len(), buf.Dropped(), len(sp.Samples), file)
}

func (sh *shell) compare(text string) {
	finish := sh.plane.Single("compare")
	base, err := sh.system(design.Baseline).RunQuery(text, sql.Params{})
	if err != nil {
		finish(err)
		sh.printf("error: %v\n", err)
		return
	}
	sh.record(base.Stats)
	r, err := sh.system(sh.kind).RunQuery(text, sql.Params{})
	finish(err)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	sh.record(r.Stats)
	if r.Rows != base.Rows {
		sh.printf("RESULT MISMATCH: %d vs %d rows\n", base.Rows, r.Rows)
		return
	}
	sh.printf("baseline %d cycles | %s %d cycles | speedup %.2fx\n",
		base.Stats.Cycles, sh.kind, r.Stats.Cycles, sim.Speedup(base.Stats, r.Stats))
}

func main() {
	designName := flag.String("design", "SAM-en", "initial design")
	ta := flag.Int("ta", 4096, "Ta records")
	tb := flag.Int("tb", 32768, "Tb records")
	statsJSON := flag.String("stats-json", "", "write the session's merged run metrics as JSON on exit ('-' for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// fail closes the (idempotent, nil-safe) plane first: os.Exit skips
	// the deferred Close, and an aborted session should still summarize
	// its event log.
	var plane *obs.Plane
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "samdb:", err)
		_ = plane.Close()
		os.Exit(1)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	kind, ok := kindByName(*designName)
	if !ok {
		fmt.Fprintf(os.Stderr, "samdb: unknown design %q\n", *designName)
		os.Exit(1)
	}
	sh := newShell(kind, core.Workload{TaRecords: *ta, TbRecords: *tb, Seed: 0xDB})

	plane, err = obsFlags.Start(os.Stderr)
	if err != nil {
		fail(err)
	}
	sh.plane = plane
	plane.AddSource(sh.sessionSnapshot)
	defer func() {
		if err := plane.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "samdb: obs:", err)
		}
	}()

	interactive := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}
	if interactive {
		fmt.Printf("samdb — SQL over the SAM memory simulator (design: %s). \\help for commands.\n", kind)
	}
	sc := bufio.NewScanner(os.Stdin)
	for {
		if interactive {
			fmt.Print("samdb> ")
		}
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if t := strings.TrimSpace(line); t == `\quit` || t == `\q` {
			break
		}
		sh.run(line)
	}

	if *statsJSON != "" {
		out := struct {
			Queries int             `json:"queries"`
			Metrics *stats.Snapshot `json:"metrics"`
		}{sh.queries, sh.sessionSnapshot()}
		enc, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fail(err)
		}
		enc = append(enc, '\n')
		if *statsJSON == "-" {
			if _, err := os.Stdout.Write(enc); err != nil {
				fail(err)
			}
		} else if err := os.WriteFile(*statsJSON, enc, 0o644); err != nil {
			fail(err)
		}
	}
}
